package analysis

import (
	"math"
	"testing"
)

func TestExceedanceCurve(t *testing.T) {
	values := []float64{0.1, 0.2, 0.3, 0.4}
	th := []float64{0.05, 0.15, 0.25, 0.35, 0.5}
	got := ExceedanceCurve(values, th)
	want := []float64{1.0, 0.75, 0.5, 0.25, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("P(>%g) = %g, want %g", th[i], got[i], want[i])
		}
	}
	// Ties: exceedance is strict (P(V > v)), so a threshold exactly at a
	// sample excludes that sample.
	got = ExceedanceCurve(values, []float64{0.2})
	if got[0] != 0.5 {
		t.Fatalf("P(>0.2) = %g, want 0.5 (strict)", got[0])
	}
	// Empty ensemble.
	got = ExceedanceCurve(nil, th)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("empty ensemble P(>%g) = %g", th[i], v)
		}
	}
	// Monotone non-increasing in the threshold.
	got = ExceedanceCurve(values, HazardThresholds(0.01, 1, 16))
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Fatalf("curve not monotone at %d: %g > %g", i, got[i], got[i-1])
		}
	}
}

func TestHazardThresholds(t *testing.T) {
	th := HazardThresholds(0.01, 1.0, 5)
	if len(th) != 5 {
		t.Fatalf("len = %d", len(th))
	}
	if math.Abs(th[0]-0.01) > 1e-15 || math.Abs(th[4]-1.0) > 1e-12 {
		t.Fatalf("endpoints %g..%g", th[0], th[4])
	}
	// Log-spaced: constant ratio between consecutive thresholds.
	r := th[1] / th[0]
	for i := 2; i < len(th); i++ {
		if math.Abs(th[i]/th[i-1]-r) > 1e-9 {
			t.Fatalf("ratio drift at %d: %g vs %g", i, th[i]/th[i-1], r)
		}
	}
	if got := HazardThresholds(2, 8, 1); len(got) != 2 || got[0] != 2 || got[1] != 8 {
		t.Fatalf("degenerate bins: %v", got)
	}
}
