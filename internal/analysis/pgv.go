package analysis

import (
	"math"
	"sort"
)

// SeriesPGV returns the peak absolute value of a velocity component
// series.
func SeriesPGV(series []float32) float64 {
	var m float64
	for _, v := range series {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// PGVHFromSeries returns the peak root-sum-square horizontal velocity of a
// 3-component seismogram (the Fig 21 measure).
func PGVHFromSeries(series [][3]float32) float64 {
	var m float64
	for _, v := range series {
		h := math.Hypot(float64(v[0]), float64(v[1]))
		if h > m {
			m = h
		}
	}
	return m
}

// GeomMeanPGV returns the geometric mean of the two horizontal component
// peaks — the measure used by the NGA relations (§VII.C: "typically
// 1.5-2 times smaller" than the RSS peak).
func GeomMeanPGV(series [][3]float32) float64 {
	var px, py float64
	for _, v := range series {
		if a := math.Abs(float64(v[0])); a > px {
			px = a
		}
		if a := math.Abs(float64(v[1])); a > py {
			py = a
		}
	}
	return math.Sqrt(px * py)
}

// GeomMeanFromPeaks combines per-component peak maps.
func GeomMeanFromPeaks(pgvx, pgvy float64) float64 {
	return math.Sqrt(pgvx * pgvy)
}

// DistanceBin is one row of the Fig 23 distance profile.
type DistanceBin struct {
	RMin, RMax float64 // km
	Count      int
	Median     float64
	P16, P84   float64 // 16th/84th percentiles
	MeanLogPGV float64
}

// Site is one surface sample for binning.
type Site struct {
	DistKM float64 // distance to the fault trace, km
	PGV    float64 // cm/s (or any consistent unit)
	Rock   bool
}

// BinByDistance groups rock sites into distance bins and returns the
// median and 16/84 percentile PGV per bin — the M8 side of Fig 23.
func BinByDistance(sites []Site, edges []float64) []DistanceBin {
	bins := make([]DistanceBin, len(edges)-1)
	values := make([][]float64, len(bins))
	for i := range bins {
		bins[i].RMin, bins[i].RMax = edges[i], edges[i+1]
	}
	for _, s := range sites {
		if !s.Rock || s.PGV <= 0 {
			continue
		}
		for i := range bins {
			if s.DistKM >= bins[i].RMin && s.DistKM < bins[i].RMax {
				values[i] = append(values[i], s.PGV)
				break
			}
		}
	}
	for i := range bins {
		v := values[i]
		if len(v) == 0 {
			continue
		}
		sort.Float64s(v)
		bins[i].Count = len(v)
		bins[i].Median = quantile(v, 0.5)
		bins[i].P16 = quantile(v, 0.16)
		bins[i].P84 = quantile(v, 0.84)
		var s float64
		for _, x := range v {
			s += math.Log(x)
		}
		bins[i].MeanLogPGV = s / float64(len(v))
	}
	return bins
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	f := pos - float64(lo)
	return sorted[lo]*(1-f) + sorted[lo+1]*f
}

// FaultTraceDistanceKM returns the horizontal distance (km) from surface
// point (x, y) to the polyline trace (all in meters).
func FaultTraceDistanceKM(x, y float64, trace [][2]float64) float64 {
	if len(trace) == 0 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for i := 0; i+1 < len(trace); i++ {
		d := pointSegDist(x, y, trace[i][0], trace[i][1], trace[i+1][0], trace[i+1][1])
		if d < best {
			best = d
		}
	}
	if len(trace) == 1 {
		best = math.Hypot(x-trace[0][0], y-trace[0][1])
	}
	return best / 1000
}

func pointSegDist(px, py, ax, ay, bx, by float64) float64 {
	dx, dy := bx-ax, by-ay
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return math.Hypot(px-ax, py-ay)
	}
	t := ((px-ax)*dx + (py-ay)*dy) / l2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return math.Hypot(px-(ax+t*dx), py-(ay+t*dy))
}
