package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBA08Behaviour(t *testing.T) {
	g := BooreAtkinson2008{}
	// Distance decay: monotone beyond a few km.
	prev := math.Inf(1)
	for _, r := range []float64{1, 5, 10, 20, 50, 100, 200} {
		v := g.MedianPGV(8.0, r, 760)
		if v >= prev {
			t.Fatalf("PGV not decaying at %g km: %g >= %g", r, v, prev)
		}
		prev = v
	}
	// Magnitude scaling.
	if g.MedianPGV(8, 10, 760) <= g.MedianPGV(7, 10, 760) {
		t.Error("M8 not stronger than M7")
	}
	// Softer site amplifies (blin < 0).
	if g.MedianPGV(8, 10, 360) <= g.MedianPGV(8, 10, 760) {
		t.Error("soft site should amplify PGV")
	}
	// Plausible absolute level: an M8 at 10 km on rock gives tens of cm/s.
	v := g.MedianPGV(8.0, 10, 760)
	if v < 10 || v > 300 {
		t.Errorf("M8 @ 10 km PGV %g cm/s implausible", v)
	}
}

func TestCB08CloseToBA08(t *testing.T) {
	ba, cb := BooreAtkinson2008{}, CampbellBozorgnia2008{}
	for _, r := range []float64{2, 10, 30, 80, 150, 200} {
		a := ba.MedianPGV(8, r, 760)
		c := cb.MedianPGV(8, r, 760)
		ratio := c / a
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("NGA curves diverge at %g km: ratio %g", r, ratio)
		}
	}
	if ba.Name() == cb.Name() {
		t.Error("names must differ")
	}
}

func TestPOEProperties(t *testing.T) {
	g := BooreAtkinson2008{}
	med := g.MedianPGV(8, 20, 760)
	// At the median, POE = 50%.
	if p := POE(g, med, 8, 20, 760); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("POE at median = %g", p)
	}
	// +1 sigma -> ~16%.
	if p := POE(g, med*math.Exp(g.Sigma()), 8, 20, 760); math.Abs(p-0.1587) > 0.01 {
		t.Errorf("POE at +1 sigma = %g, want ~0.159", p)
	}
	// Monotone decreasing in observed value.
	if POE(g, 10, 8, 20, 760) <= POE(g, 100, 8, 20, 760) {
		t.Error("POE not monotone")
	}
	p84, p16 := PlusMinusSigma(g, 8, 20, 760)
	if !(p84 < med && med < p16) {
		t.Errorf("sigma band wrong: %g %g %g", p84, med, p16)
	}
}

func TestSeriesPGVAndPGVH(t *testing.T) {
	series := [][3]float32{{3, 4, 1}, {-6, 0, 0}, {0.5, 0.5, 10}}
	if got := PGVHFromSeries(series); math.Abs(got-6) > 1e-9 {
		t.Errorf("PGVH = %g, want 6", got)
	}
	if got := SeriesPGV([]float32{1, -7, 3}); got != 7 {
		t.Errorf("SeriesPGV = %g", got)
	}
	// Geometric mean uses per-component peaks: px=6, py=4 -> sqrt(24).
	if got := GeomMeanPGV(series); math.Abs(got-math.Sqrt(24)) > 1e-9 {
		t.Errorf("GeomMeanPGV = %g", got)
	}
	if GeomMeanFromPeaks(4, 9) != 6 {
		t.Error("GeomMeanFromPeaks wrong")
	}
}

func TestGeomMeanBelowRSS(t *testing.T) {
	// §VII.C: the geometric mean is typically 1.5-2x smaller than the RSS
	// peak for strongly polarized motion; it can never exceed it.
	prop := func(a, b float32) bool {
		s := [][3]float32{{a, b, 0}}
		return GeomMeanPGV(s) <= PGVHFromSeries(s)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinByDistance(t *testing.T) {
	var sites []Site
	for r := 0.5; r < 100; r += 0.5 {
		sites = append(sites, Site{DistKM: r, PGV: 100 / (r + 1), Rock: true})
		sites = append(sites, Site{DistKM: r, PGV: 1e6, Rock: false}) // ignored
	}
	bins := BinByDistance(sites, []float64{0, 10, 50, 100})
	if len(bins) != 3 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Count == 0 || bins[1].Count == 0 || bins[2].Count == 0 {
		t.Fatal("empty bins")
	}
	if !(bins[0].Median > bins[1].Median && bins[1].Median > bins[2].Median) {
		t.Fatalf("medians not decaying: %g %g %g", bins[0].Median, bins[1].Median, bins[2].Median)
	}
	if !(bins[0].P16 <= bins[0].Median && bins[0].Median <= bins[0].P84) {
		t.Fatal("percentiles out of order")
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if quantile(v, 0.5) != 3 {
		t.Errorf("median = %g", quantile(v, 0.5))
	}
	if quantile(v, 0) != 1 || quantile(v, 1) != 5 {
		t.Error("extremes wrong")
	}
	if quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestFaultTraceDistance(t *testing.T) {
	trace := [][2]float64{{0, 0}, {10000, 0}} // 10 km segment on y=0
	if d := FaultTraceDistanceKM(5000, 3000, trace); math.Abs(d-3) > 1e-9 {
		t.Errorf("mid-segment distance = %g, want 3", d)
	}
	if d := FaultTraceDistanceKM(-4000, 3000, trace); math.Abs(d-5) > 1e-9 {
		t.Errorf("endpoint distance = %g, want 5", d)
	}
	if d := FaultTraceDistanceKM(0, 0, nil); !math.IsInf(d, 1) {
		t.Error("empty trace should be infinite")
	}
	// Degenerate single-point segment.
	pt := [][2]float64{{1000, 1000}, {1000, 1000}}
	if d := FaultTraceDistanceKM(1000, 2000, pt); math.Abs(d-1) > 1e-9 {
		t.Errorf("point distance = %g", d)
	}
}
