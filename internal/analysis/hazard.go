package analysis

import (
	"math"
	"sort"
)

// ExceedanceCurve is the ensemble hazard product the farm's front end
// serves: for each intensity threshold, the fraction of ensemble members
// whose value exceeds it — the empirical P(PGV > v) curve a CyberShake-
// style study reads off its rupture-scenario ensemble at one site.
//
// values are the per-member intensities (e.g. PGVH at a site, m/s);
// thresholds must be ascending. The returned slice is parallel to
// thresholds. An empty ensemble yields all zeros.
func ExceedanceCurve(values, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	if len(values) == 0 {
		return out
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	for i, th := range thresholds {
		// First index with value > th, via binary search.
		k := sort.SearchFloat64s(sorted, th)
		for k < len(sorted) && sorted[k] == th {
			k++
		}
		out[i] = float64(len(sorted)-k) / n
	}
	return out
}

// HazardThresholds returns nBins log-spaced intensity thresholds spanning
// [lo, hi] — the standard hazard-curve abscissa. lo and hi must be
// positive with lo < hi; nBins < 2 yields just {lo, hi}.
func HazardThresholds(lo, hi float64, nBins int) []float64 {
	if nBins < 2 {
		return []float64{lo, hi}
	}
	out := make([]float64, nBins)
	ratio := hi / lo
	for i := range out {
		t := float64(i) / float64(nBins-1)
		out[i] = lo * math.Pow(ratio, t)
	}
	return out
}
