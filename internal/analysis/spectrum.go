package analysis

import "math"

// Spectral analysis for derived data products (dPDA, §III.I) — the tool
// behind observations like §VII.C's "a spectral analysis shows that these
// peaks correspond to periods of 2–4 s" at San Bernardino.

// Amplitude returns the Fourier amplitude of a uniformly sampled series at
// frequency f (Hz), evaluated with the Goertzel recurrence (no FFT length
// restrictions).
func Amplitude(series []float32, dt, f float64) float64 {
	n := len(series)
	if n == 0 || dt <= 0 {
		return 0
	}
	w := 2 * math.Pi * f * dt
	cw := math.Cos(w)
	coeff := 2 * cw
	var s0, s1, s2 float64
	for _, v := range series {
		s0 = float64(v) + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	re := s1 - s2*cw
	im := s2 * math.Sin(w)
	return 2 * math.Hypot(re, im) / float64(n)
}

// Spectrum evaluates the amplitude spectrum at the given frequencies.
func Spectrum(series []float32, dt float64, freqs []float64) []float64 {
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		out[i] = Amplitude(series, dt, f)
	}
	return out
}

// LogFreqs returns n log-spaced frequencies spanning [fmin, fmax].
func LogFreqs(fmin, fmax float64, n int) []float64 {
	if n < 2 {
		return []float64{fmin}
	}
	out := make([]float64, n)
	l0, l1 := math.Log(fmin), math.Log(fmax)
	for i := range out {
		out[i] = math.Exp(l0 + float64(i)/float64(n-1)*(l1-l0))
	}
	return out
}

// DominantPeriod returns the period (s) of the largest spectral amplitude
// of the series within the band [fmin, fmax], scanning nProbe log-spaced
// frequencies — the quantity quoted for the San Bernardino basin response.
func DominantPeriod(series []float32, dt, fmin, fmax float64, nProbe int) float64 {
	if nProbe < 8 {
		nProbe = 8
	}
	freqs := LogFreqs(fmin, fmax, nProbe)
	best, bestAmp := freqs[0], -1.0
	for _, f := range freqs {
		if a := Amplitude(series, dt, f); a > bestAmp {
			bestAmp = a
			best = f
		}
	}
	return 1 / best
}

// BandEnergyFraction returns the fraction of total spectral energy (over
// [fTotMin, fTotMax]) contained in [f0, f1] — used to quantify statements
// like "a significant amount of energy between 1 and 2 Hz" (§VII.C).
func BandEnergyFraction(series []float32, dt, f0, f1, fTotMin, fTotMax float64) float64 {
	probe := LogFreqs(fTotMin, fTotMax, 64)
	var in, tot float64
	for _, f := range probe {
		a := Amplitude(series, dt, f)
		e := a * a
		tot += e
		if f >= f0 && f <= f1 {
			in += e
		}
	}
	if tot == 0 {
		return 0
	}
	return in / tot
}
