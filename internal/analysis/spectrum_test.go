package analysis

import (
	"math"
	"testing"
)

func sine(f, dt float64, n int, amp float64) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(amp * math.Sin(2*math.Pi*f*float64(i)*dt))
	}
	return out
}

func TestAmplitudeRecoversSine(t *testing.T) {
	dt := 0.01
	s := sine(1.5, dt, 4000, 2.5)
	if got := Amplitude(s, dt, 1.5); math.Abs(got-2.5) > 0.05 {
		t.Fatalf("amplitude at 1.5 Hz = %g, want 2.5", got)
	}
	// Off-peak: small.
	if got := Amplitude(s, dt, 0.4); got > 0.2 {
		t.Fatalf("off-peak amplitude %g too large", got)
	}
	if Amplitude(nil, dt, 1) != 0 || Amplitude(s, 0, 1) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestDominantPeriod(t *testing.T) {
	dt := 0.01
	// 0.35 Hz dominant + weaker 2 Hz component.
	s := sine(0.35, dt, 6000, 3)
	hi := sine(2.0, dt, 6000, 1)
	for i := range s {
		s[i] += hi[i]
	}
	period := DominantPeriod(s, dt, 0.1, 5, 200)
	if math.Abs(period-1/0.35) > 0.3 {
		t.Fatalf("dominant period %g s, want ~%g s", period, 1/0.35)
	}
}

func TestBandEnergyFraction(t *testing.T) {
	dt := 0.005
	s := sine(1.5, dt, 8000, 1) // all energy near 1.5 Hz
	frac := BandEnergyFraction(s, dt, 1.0, 2.0, 0.05, 10)
	if frac < 0.8 {
		t.Fatalf("in-band fraction %g, want > 0.8", frac)
	}
	out := BandEnergyFraction(s, dt, 4, 8, 0.05, 10)
	if out > 0.1 {
		t.Fatalf("out-of-band fraction %g, want small", out)
	}
}

func TestSpectrumAndLogFreqs(t *testing.T) {
	freqs := LogFreqs(0.1, 10, 5)
	if len(freqs) != 5 || math.Abs(freqs[0]-0.1) > 1e-12 || math.Abs(freqs[4]-10) > 1e-9 {
		t.Fatalf("LogFreqs = %v", freqs)
	}
	for i := 1; i < len(freqs); i++ {
		if freqs[i] <= freqs[i-1] {
			t.Fatal("not increasing")
		}
	}
	dt := 0.01
	s := sine(1.0, dt, 2000, 1)
	spec := Spectrum(s, dt, freqs)
	if len(spec) != len(freqs) {
		t.Fatal("length mismatch")
	}
	if LogFreqs(1, 2, 1)[0] != 1 {
		t.Fatal("degenerate LogFreqs")
	}
}
