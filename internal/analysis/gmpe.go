// Package analysis provides the ground-motion analysis used in §VII:
// peak-ground-velocity maps and statistics, distance binning against the
// fault trace, and the Next Generation Attenuation (NGA) empirical
// relations the paper compares M8 against in Fig. 23 — Boore & Atkinson
// (2008) and Campbell & Bozorgnia (2008) PGV models for rock sites.
//
// The B&A08 implementation uses the published PGV coefficients for
// strike-slip events; the C&B08 curve is a simplified rock-site form
// calibrated to the published model's behaviour (the two NGA curves agree
// within tens of percent over the Fig. 23 distance range, which is the
// property the comparison needs).
package analysis

import "math"

// GMPE is an empirical ground-motion prediction equation for PGV.
type GMPE interface {
	// MedianPGV returns the median PGV in cm/s for moment magnitude mw at
	// Joyner-Boore distance rjb (km) on a site with Vs30 (m/s).
	MedianPGV(mw, rjb, vs30 float64) float64
	// Sigma returns the total aleatory standard deviation in ln units.
	Sigma() float64
	Name() string
}

// BooreAtkinson2008 is the B&A08 PGV relation (strike-slip mechanism).
type BooreAtkinson2008 struct{}

func (BooreAtkinson2008) Name() string   { return "B&A08" }
func (BooreAtkinson2008) Sigma() float64 { return 0.560 }

// PGV coefficients from Boore & Atkinson (2008), Earthquake Spectra 24(1).
const (
	baE1   = 5.00121 // unspecified mechanism
	baE2   = 5.04727 // strike-slip
	baE5   = 0.18322
	baE6   = -0.12736
	baMh   = 8.5
	baC1   = -0.87370
	baC2   = 0.10060
	baC3   = -0.00334
	baH    = 2.54
	baMref = 4.5
	baRref = 1.0
	baBlin = -0.600
	baVref = 760.0
)

// MedianPGV implements the B&A08 functional form for a strike-slip event.
func (BooreAtkinson2008) MedianPGV(mw, rjb, vs30 float64) float64 {
	// Magnitude scaling (strike-slip branch, M <= Mh for all M of interest).
	var fm float64
	if mw <= baMh {
		fm = baE2 + baE5*(mw-baMh) + baE6*(mw-baMh)*(mw-baMh)
	} else {
		fm = baE2 + baE5*(mw-baMh)
	}
	// Distance scaling.
	r := math.Sqrt(rjb*rjb + baH*baH)
	fd := (baC1+baC2*(mw-baMref))*math.Log(r/baRref) + baC3*(r-baRref)
	// Linear site term (rock).
	fs := baBlin * math.Log(vs30/baVref)
	return math.Exp(fm + fd + fs)
}

// CampbellBozorgnia2008 is a simplified rock-site C&B08 PGV curve.
type CampbellBozorgnia2008 struct{}

func (CampbellBozorgnia2008) Name() string   { return "C&B08" }
func (CampbellBozorgnia2008) Sigma() float64 { return 0.525 }

// MedianPGV follows the C&B08 shape: slightly higher near-fault medians
// and a marginally steeper far-field decay than B&A08, staying within
// ~40% of it across 0–200 km — the behaviour visible in Fig. 23.
func (CampbellBozorgnia2008) MedianPGV(mw, rjb, vs30 float64) float64 {
	base := BooreAtkinson2008{}.MedianPGV(mw, rjb, vs30)
	nearBoost := 1.25 * math.Exp(-rjb/40)
	farDecay := math.Pow((rjb+10)/10, -0.08)
	return base * (1 + nearBoost) * farDecay * 0.85
}

// POE returns the probability of exceedance of the observed PGV given the
// GMPE's lognormal distribution at (mw, rjb, vs30).
func POE(g GMPE, observed, mw, rjb, vs30 float64) float64 {
	med := g.MedianPGV(mw, rjb, vs30)
	if observed <= 0 || med <= 0 {
		return 1
	}
	z := math.Log(observed/med) / g.Sigma()
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// PlusMinusSigma returns the 16% and 84% exceedance levels (median
// exp(+-sigma)) for Fig 23's band comparison.
func PlusMinusSigma(g GMPE, mw, rjb, vs30 float64) (p84, p16 float64) {
	med := g.MedianPGV(mw, rjb, vs30)
	return med * math.Exp(-g.Sigma()), med * math.Exp(g.Sigma())
}
