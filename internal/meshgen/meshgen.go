// Package meshgen implements CVM2MESH (§III.B): parallel extraction of
// material properties from a community velocity model onto a uniform mesh
// file. The mesh region is partitioned into z slices; each core queries
// the CVM for its slices only and writes them into the single global mesh
// file at computed offsets via MPI-IO — the scheme that cut extraction
// from hundreds of hours to minutes.
//
// Two write paths are provided. Generate is the original one-shot path:
// each core materializes all of its planes and writes them itself (one
// open per core). GenerateStreamed is the out-of-core M8 pipeline: cores
// hold at most ChunkPlanes z-planes at a time — peak live mesh bytes per
// core are O(chunk), independent of NZ — and each round's chunks are
// written collectively through the internal/agg two-phase aggregator, so
// the file sees a few large stripe-aligned streams instead of one stream
// per core.
package meshgen

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
)

// RecBytes is the mesh record size: three float32 (Vp, Vs, rho) per point.
const RecBytes = 12

// Spec describes a mesh extraction job.
type Spec struct {
	Path   string // mesh file path on the simulated PFS
	Global grid.Dims
	H      float64 // grid spacing, m
	Cores  int     // extraction cores (z-slice parallelism)
}

// Stats reports the extraction outcome.
type Stats struct {
	Points     int
	Bytes      int
	WritePhase pfs.PhaseStats
}

func (sp Spec) check() error {
	if sp.Cores <= 0 || sp.Cores > sp.Global.NZ {
		return fmt.Errorf("meshgen: cores %d must be in [1, NZ=%d]", sp.Cores, sp.Global.NZ)
	}
	if !sp.Global.Valid() || sp.H <= 0 {
		return fmt.Errorf("meshgen: invalid spec %+v", sp)
	}
	return nil
}

// extractPlane fills vals with plane k of the mesh (x fastest, then y) —
// the one place that defines the record layout, shared by both write
// paths so they are bit-identical.
func extractPlane(q cvm.Querier, sp Spec, k int, vals []float32) {
	idx := 0
	for j := 0; j < sp.Global.NY; j++ {
		for i := 0; i < sp.Global.NX; i++ {
			m := q.Query(float64(i)*sp.H, float64(j)*sp.H, float64(k)*sp.H)
			vals[idx] = float32(m.Vp)
			vals[idx+1] = float32(m.Vs)
			vals[idx+2] = float32(m.Rho)
			idx += 3
		}
	}
}

// Generate extracts the mesh in parallel and writes the global mesh file,
// one writer stream per core. A failed plane write (after the bounded
// retry of the indexed-write path) fails the whole extraction.
func Generate(fsys *pfs.FS, q cvm.Querier, sp Spec) (Stats, error) {
	if err := sp.check(); err != nil {
		return Stats{}, err
	}
	planeBytes := sp.Global.NX * sp.Global.NY * RecBytes
	views := make([][]mpiio.Segment, sp.Cores)

	world := mpi.NewWorld(sp.Cores)
	err := world.RunErr(func(c *mpi.Comm) error {
		rank := c.Rank()
		var view []mpiio.Segment
		vals := make([]float32, sp.Global.NX*sp.Global.NY*3)
		// Round-robin z-slice assignment.
		for k := rank; k < sp.Global.NZ; k += sp.Cores {
			extractPlane(q, sp, k, vals)
			// Seek to the slice offset and write — one contiguous chunk.
			seg := []mpiio.Segment{{Off: k * planeBytes, Len: planeBytes}}
			if err := mpiio.WriteIndexed(fsys, sp.Path, seg, mpiio.PutFloat32s(vals)); err != nil {
				return fmt.Errorf("meshgen: plane %d: %w", k, err)
			}
			view = append(view, seg[0])
		}
		views[rank] = view
		return nil
	})
	if err != nil {
		return Stats{}, err
	}

	st := Stats{
		Points: sp.Global.Cells(),
		Bytes:  sp.Global.Cells() * RecBytes,
	}
	st.WritePhase = fsys.SimulatePhase(mpiio.PhaseOps(sp.Path, views, true))
	return st, nil
}

// StreamSpec tunes the out-of-core streaming extraction.
type StreamSpec struct {
	Spec
	// ChunkPlanes is the most z-planes one core materializes at a time
	// (the out-of-core bound). <= 0 means 1.
	ChunkPlanes int
	// Agg tunes the collective aggregated write of each round.
	Agg agg.Config
}

// StreamStats extends Stats with the streaming pipeline's accounting.
type StreamStats struct {
	Stats
	Rounds        int // collective write rounds
	PeakCoreBytes int // max live mesh bytes on any one core at any time
	Writers       int // aggregator ranks per round
	Writes        int // coalesced writes issued, summed over rounds
	Opens         int // file opens, summed over rounds
	MaxConcurrentOpens int // max opens in flight at any point of any round
	ShippedBytes  int // bytes shipped core→aggregator, summed over rounds
}

// GenerateStreamed extracts the mesh out-of-core: cores sweep the z
// range in rounds of Cores×ChunkPlanes planes, each core holding only
// its current chunk, and every round is written collectively through the
// two-phase aggregator. The file is bit-identical to Generate's.
func GenerateStreamed(fsys *pfs.FS, q cvm.Querier, ssp StreamSpec) (StreamStats, error) {
	sp := ssp.Spec
	if err := sp.check(); err != nil {
		return StreamStats{}, err
	}
	chunk := ssp.ChunkPlanes
	if chunk <= 0 {
		chunk = 1
	}
	planeBytes := sp.Global.NX * sp.Global.NY * RecBytes
	stride := sp.Cores * chunk
	rounds := (sp.Global.NZ + stride - 1) / stride

	peaks := make([]int, sp.Cores)
	var st StreamStats
	st.Points = sp.Global.Cells()
	st.Bytes = sp.Global.Cells() * RecBytes
	st.Rounds = rounds

	world := mpi.NewWorld(sp.Cores)
	err := world.RunErr(func(c *mpi.Comm) error {
		rank := c.Rank()
		vals := make([]float32, 0, chunk*sp.Global.NX*sp.Global.NY*3)
		for round := 0; round < rounds; round++ {
			k0 := round*stride + rank*chunk
			k1 := k0 + chunk
			if k0 > sp.Global.NZ {
				k0 = sp.Global.NZ
			}
			if k1 > sp.Global.NZ {
				k1 = sp.Global.NZ
			}
			vals = vals[:(k1-k0)*sp.Global.NX*sp.Global.NY*3]
			for k := k0; k < k1; k++ {
				extractPlane(q, sp, k, vals[(k-k0)*sp.Global.NX*sp.Global.NY*3:(k-k0+1)*sp.Global.NX*sp.Global.NY*3])
			}
			var segs []mpiio.Segment
			var data []byte
			if k1 > k0 {
				segs = []mpiio.Segment{{Off: k0 * planeBytes, Len: (k1 - k0) * planeBytes}}
				data = mpiio.PutFloat32s(vals)
			}
			if live := len(data); live > peaks[rank] {
				peaks[rank] = live
			}
			ws, err := agg.WriteIndexed(c, fsys, sp.Path, segs, data, ssp.Agg)
			if err != nil {
				return fmt.Errorf("meshgen: round %d: %w", round, err)
			}
			if rank == 0 {
				st.Writers = ws.Writers
				st.Writes += ws.Writes
				st.Opens += ws.Opens
				st.ShippedBytes += ws.ShippedBytes
				if ws.MaxConcurrentOpens > st.MaxConcurrentOpens {
					st.MaxConcurrentOpens = ws.MaxConcurrentOpens
				}
				st.WritePhase.Elapsed += ws.Phase.Elapsed
				st.WritePhase.MDSTime += ws.Phase.MDSTime
				st.WritePhase.IOTime += ws.Phase.IOTime
				st.WritePhase.Bytes += ws.Phase.Bytes
				if ws.Phase.MaxOSTLoad > st.WritePhase.MaxOSTLoad {
					st.WritePhase.MaxOSTLoad = ws.Phase.MaxOSTLoad
				}
			}
		}
		return nil
	})
	if err != nil {
		return StreamStats{}, err
	}
	for _, p := range peaks {
		if p > st.PeakCoreBytes {
			st.PeakCoreBytes = p
		}
	}
	if st.WritePhase.Elapsed > 0 {
		st.WritePhase.Throughput = float64(st.WritePhase.Bytes) / st.WritePhase.Elapsed
	}
	return st, nil
}

// ReadPoint fetches one mesh record, for verification.
func ReadPoint(fsys *pfs.FS, path string, g grid.Dims, i, j, k int) (cvm.Material, error) {
	off := ((k*g.NY+j)*g.NX + i) * RecBytes
	buf := make([]byte, RecBytes)
	if err := fsys.ReadAt(path, off, buf); err != nil {
		return cvm.Material{}, err
	}
	v := mpiio.GetFloat32s(buf)
	return cvm.Material{Vp: float64(v[0]), Vs: float64(v[1]), Rho: float64(v[2])}, nil
}
