// Package meshgen implements CVM2MESH (§III.B): parallel extraction of
// material properties from a community velocity model onto a uniform mesh
// file. The mesh region is partitioned into z slices; each core queries
// the CVM for its slices only and writes them into the single global mesh
// file at computed offsets via MPI-IO — the scheme that cut extraction
// from hundreds of hours to minutes.
package meshgen

import (
	"fmt"

	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
)

// RecBytes is the mesh record size: three float32 (Vp, Vs, rho) per point.
const RecBytes = 12

// Spec describes a mesh extraction job.
type Spec struct {
	Path   string // mesh file path on the simulated PFS
	Global grid.Dims
	H      float64 // grid spacing, m
	Cores  int     // extraction cores (z-slice parallelism)
}

// Stats reports the extraction outcome.
type Stats struct {
	Points     int
	Bytes      int
	WritePhase pfs.PhaseStats
}

// Generate extracts the mesh in parallel and writes the global mesh file.
func Generate(fsys *pfs.FS, q cvm.Querier, sp Spec) (Stats, error) {
	if sp.Cores <= 0 || sp.Cores > sp.Global.NZ {
		return Stats{}, fmt.Errorf("meshgen: cores %d must be in [1, NZ=%d]", sp.Cores, sp.Global.NZ)
	}
	if !sp.Global.Valid() || sp.H <= 0 {
		return Stats{}, fmt.Errorf("meshgen: invalid spec %+v", sp)
	}
	planeBytes := sp.Global.NX * sp.Global.NY * RecBytes
	views := make([][]mpiio.Segment, sp.Cores)

	world := mpi.NewWorld(sp.Cores)
	world.Run(func(c *mpi.Comm) {
		rank := c.Rank()
		var view []mpiio.Segment
		// Round-robin z-slice assignment.
		for k := rank; k < sp.Global.NZ; k += sp.Cores {
			vals := make([]float32, sp.Global.NX*sp.Global.NY*3)
			idx := 0
			for j := 0; j < sp.Global.NY; j++ {
				for i := 0; i < sp.Global.NX; i++ {
					m := q.Query(float64(i)*sp.H, float64(j)*sp.H, float64(k)*sp.H)
					vals[idx] = float32(m.Vp)
					vals[idx+1] = float32(m.Vs)
					vals[idx+2] = float32(m.Rho)
					idx += 3
				}
			}
			// Seek to the slice offset and write — one contiguous chunk.
			fsys.WriteAt(sp.Path, k*planeBytes, mpiio.PutFloat32s(vals))
			view = append(view, mpiio.Segment{Off: k * planeBytes, Len: planeBytes})
		}
		views[rank] = view
	})

	st := Stats{
		Points: sp.Global.Cells(),
		Bytes:  sp.Global.Cells() * RecBytes,
	}
	st.WritePhase = fsys.SimulatePhase(mpiio.PhaseOps(sp.Path, views, true))
	return st, nil
}

// ReadPoint fetches one mesh record, for verification.
func ReadPoint(fsys *pfs.FS, path string, g grid.Dims, i, j, k int) (cvm.Material, error) {
	off := ((k*g.NY+j)*g.NX + i) * RecBytes
	buf := make([]byte, RecBytes)
	if err := fsys.ReadAt(path, off, buf); err != nil {
		return cvm.Material{}, err
	}
	v := mpiio.GetFloat32s(buf)
	return cvm.Material{Vp: float64(v[0]), Vs: float64(v[1]), Rho: float64(v[2])}, nil
}
