package meshgen

import (
	"testing"

	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/pfs"
)

func TestGenerateCoreCountInvariance(t *testing.T) {
	// The mesh file must be identical no matter how many extraction cores
	// are used (the z-slice parallelization is pure decomposition).
	g := grid.Dims{NX: 6, NY: 5, NZ: 8}
	q := cvm.SoCal(3000, 2500, 4000, 400)
	var ref []byte
	for _, cores := range []int{1, 2, 4, 8} {
		fsys := pfs.New(pfs.Config{OSTs: 4, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 8})
		st, err := Generate(fsys, q, Spec{Path: "mesh", Global: g, H: 500, Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		if st.Points != g.Cells() || st.Bytes != g.Cells()*RecBytes {
			t.Fatalf("stats %+v", st)
		}
		if st.WritePhase.Bytes == 0 {
			t.Error("write phase not priced")
		}
		raw := make([]byte, fsys.Size("mesh"))
		if err := fsys.ReadAt("mesh", 0, raw); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = raw
			continue
		}
		if len(raw) != len(ref) {
			t.Fatalf("cores=%d: size differs", cores)
		}
		for i := range raw {
			if raw[i] != ref[i] {
				t.Fatalf("cores=%d: byte %d differs", cores, i)
			}
		}
	}
}

func TestReadPointMissing(t *testing.T) {
	fsys := pfs.New(pfs.Config{OSTs: 4, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 8})
	if _, err := ReadPoint(fsys, "none", grid.Dims{NX: 2, NY: 2, NZ: 2}, 0, 0, 0); err == nil {
		t.Fatal("missing mesh accepted")
	}
}
