package meshgen

import (
	"bytes"
	"testing"

	"repro/internal/agg"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/pfs"
)

func streamFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 8, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 16})
}

func readAll(t *testing.T, fsys *pfs.FS, path string) []byte {
	t.Helper()
	n := fsys.Size(path)
	if n < 0 {
		t.Fatalf("%s missing", path)
	}
	raw := make([]byte, n)
	if err := fsys.ReadAt(path, 0, raw); err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestGenerateStreamedBitIdenticalToGenerate(t *testing.T) {
	g := grid.Dims{NX: 7, NY: 5, NZ: 12}
	q := cvm.SoCal(3000, 2500, 4000, 400)
	fsys := streamFS()
	fsys.SetStripe("m/", 4, 1<<9)
	if _, err := Generate(fsys, q, Spec{Path: "m/ref", Global: g, H: 500, Cores: 3}); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 2, 5} {
		for _, cores := range []int{1, 3, 4} {
			st, err := GenerateStreamed(fsys, q, StreamSpec{
				Spec:        Spec{Path: "m/str", Global: g, H: 500, Cores: cores},
				ChunkPlanes: chunk,
				Agg:         agg.Config{Aggregators: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(readAll(t, fsys, "m/ref"), readAll(t, fsys, "m/str")) {
				t.Fatalf("cores=%d chunk=%d: streamed mesh differs from one-shot mesh", cores, chunk)
			}
			planeBytes := g.NX * g.NY * RecBytes
			if st.PeakCoreBytes > chunk*planeBytes {
				t.Fatalf("cores=%d chunk=%d: peak %d bytes exceeds chunk bound %d",
					cores, chunk, st.PeakCoreBytes, chunk*planeBytes)
			}
			if st.Rounds != (g.NZ+cores*chunk-1)/(cores*chunk) {
				t.Fatalf("rounds = %d", st.Rounds)
			}
			fsys.Remove("m/str")
		}
	}
}

func TestGenerateStreamedBoundedMemoryInNZ(t *testing.T) {
	// The out-of-core gate: peak live mesh bytes per core depend on the
	// chunk size, not on NZ.
	q := cvm.SoCal(3000, 2500, 4000, 400)
	const chunk, cores = 2, 4
	var peak int
	for i, nz := range []int{8, 32, 128} {
		fsys := streamFS()
		g := grid.Dims{NX: 6, NY: 4, NZ: nz}
		st, err := GenerateStreamed(fsys, q, StreamSpec{
			Spec:        Spec{Path: "mesh", Global: g, H: 500, Cores: cores},
			ChunkPlanes: chunk,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Bytes != g.Cells()*RecBytes {
			t.Fatalf("NZ=%d: bytes %d", nz, st.Bytes)
		}
		if i == 0 {
			peak = st.PeakCoreBytes
			if peak != chunk*g.NX*g.NY*RecBytes {
				t.Fatalf("peak %d, want one chunk %d", peak, chunk*g.NX*g.NY*RecBytes)
			}
			continue
		}
		if st.PeakCoreBytes != peak {
			t.Fatalf("NZ=%d: peak grew to %d (was %d at NZ=8) — not out-of-core", nz, st.PeakCoreBytes, peak)
		}
	}
}

// TestGenerateWriteFaultPropagates is the regression test for the
// silently dropped WriteAt error: a permanently failing PFS must fail
// Generate, and a transiently failing one must heal through retry with
// the file intact.
func TestGenerateWriteFaultPropagates(t *testing.T) {
	g := grid.Dims{NX: 5, NY: 4, NZ: 6}
	q := cvm.SoCal(3000, 2500, 4000, 400)
	sp := Spec{Path: "mesh", Global: g, H: 500, Cores: 2}

	fsys := streamFS()
	fsys.InjectFaults(pfs.FaultPlan{Seed: 3, WriteFailProb: 1, MaxConsecutive: 1 << 30})
	if _, err := Generate(fsys, q, sp); err == nil {
		t.Fatal("Generate succeeded on a permanently failing PFS")
	}

	ref := streamFS()
	if _, err := Generate(ref, q, sp); err != nil {
		t.Fatal(err)
	}
	healed := streamFS()
	healed.InjectFaults(pfs.FaultPlan{Seed: 3, WriteFailProb: 0.5, MaxConsecutive: 1})
	if _, err := Generate(healed, q, sp); err != nil {
		t.Fatalf("Generate did not heal transient faults: %v", err)
	}
	if !bytes.Equal(readAll(t, ref, "mesh"), readAll(t, healed, "mesh")) {
		t.Fatal("mesh written under transient faults differs")
	}
	if healed.FaultStats().FailedWrites == 0 {
		t.Fatal("fault plan never fired — test is vacuous")
	}
}

func TestGenerateStreamedWriteFaultPropagates(t *testing.T) {
	g := grid.Dims{NX: 5, NY: 4, NZ: 6}
	q := cvm.SoCal(3000, 2500, 4000, 400)
	fsys := streamFS()
	fsys.InjectFaults(pfs.FaultPlan{Seed: 7, WriteFailProb: 1, MaxConsecutive: 1 << 30})
	if _, err := GenerateStreamed(fsys, q, StreamSpec{
		Spec: Spec{Path: "mesh", Global: g, H: 500, Cores: 2}, ChunkPlanes: 2,
	}); err == nil {
		t.Fatal("GenerateStreamed succeeded on a permanently failing PFS")
	}
}
