// Package checkpoint implements application-level checkpoint/restart
// (§III.F): each rank periodically serializes its full solver state — all
// nine wavefield components including ghost cells, plus the attenuation
// memory variables — to its own file on the simulated parallel file
// system, with open throttling to protect the metadata server. Restart
// reproduces the uninterrupted run bit-for-bit.
package checkpoint

import (
	"fmt"

	"repro/internal/core/attenuation"
	"repro/internal/core/fd"
	"repro/internal/grid"
	"repro/internal/mpiio"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// FileName is the per-rank checkpoint naming scheme.
func FileName(dir string, rank, step int) string {
	return fmt.Sprintf("%s/ckpt.%06d.step%09d", dir, rank, step)
}

// Save writes one rank's state at the given step. atten may be nil. An
// optional telemetry recorder (at most one) attributes the serialization
// wall time to the Checkpoint phase; existing call sites need no change.
func Save(fsys *pfs.FS, dir string, rank, step int, s *fd.State, atten *attenuation.Model, rec ...*telemetry.Recorder) pfs.PhaseStats {
	defer ckptSpan(rec).End()
	var buf []float32
	buf = append(buf, float32(step), float32(s.Dims.NX), float32(s.Dims.NY), float32(s.Dims.NZ))
	hasAtten := float32(0)
	if atten != nil {
		hasAtten = 1
	}
	buf = append(buf, hasAtten)
	for _, f := range s.Fields() {
		buf = append(buf, f.Data()...)
	}
	if atten != nil {
		for _, f := range attenFields(atten) {
			buf = append(buf, f.Data()...)
		}
	}
	data := mpiio.PutFloat32s(buf)
	path := FileName(dir, rank, step)
	fsys.WriteAt(path, 0, data)
	return fsys.SimulatePhase([]pfs.Op{{Path: path, Bytes: len(data), Write: true, Open: true}})
}

// Load restores one rank's state saved at step. The destination state and
// attenuation model must already have the right dims. An optional
// telemetry recorder (at most one) attributes the restore wall time to the
// Checkpoint phase.
func Load(fsys *pfs.FS, dir string, rank, step int, s *fd.State, atten *attenuation.Model, rec ...*telemetry.Recorder) error {
	defer ckptSpan(rec).End()
	path := FileName(dir, rank, step)
	sz := fsys.Size(path)
	if sz < 0 {
		return fmt.Errorf("checkpoint: %s not found", path)
	}
	raw := make([]byte, sz)
	if err := fsys.ReadAt(path, 0, raw); err != nil {
		return err
	}
	vals := mpiio.GetFloat32s(raw)
	if len(vals) < 5 {
		return fmt.Errorf("checkpoint: %s truncated", path)
	}
	if int(vals[0]) != step {
		return fmt.Errorf("checkpoint: %s step %d, want %d", path, int(vals[0]), step)
	}
	d := grid.Dims{NX: int(vals[1]), NY: int(vals[2]), NZ: int(vals[3])}
	if d != s.Dims {
		return fmt.Errorf("checkpoint: dims %v, state has %v", d, s.Dims)
	}
	hasAtten := vals[4] == 1
	if hasAtten != (atten != nil) {
		return fmt.Errorf("checkpoint: attenuation presence mismatch")
	}
	p := 5
	for _, f := range s.Fields() {
		n := len(f.Data())
		if p+n > len(vals) {
			return fmt.Errorf("checkpoint: %s truncated in wavefield", path)
		}
		copy(f.Data(), vals[p:p+n])
		p += n
	}
	if atten != nil {
		for _, f := range attenFields(atten) {
			n := len(f.Data())
			if p+n > len(vals) {
				return fmt.Errorf("checkpoint: %s truncated in memory variables", path)
			}
			copy(f.Data(), vals[p:p+n])
			p += n
		}
	}
	return nil
}

func attenFields(a *attenuation.Model) []*grid.Field3 {
	return []*grid.Field3{a.ZXX, a.ZYY, a.ZZZ, a.ZXY, a.ZXZ, a.ZYZ}
}

// ckptSpan opens a Checkpoint span on the first recorder, if any; a nil
// recorder (or none) yields the no-op span.
func ckptSpan(rec []*telemetry.Recorder) telemetry.Span {
	if len(rec) == 0 {
		return telemetry.Span{}
	}
	return rec[0].Span(telemetry.Checkpoint)
}

// ThrottledSave prices a full-job checkpoint phase in which nranks ranks
// write `bytes` each, with at most maxConcurrent files open at once (the
// §IV.E open-throttling policy). It returns the total simulated elapsed
// time; untrottled behaviour is obtained with maxConcurrent >= nranks.
func ThrottledSave(fsys *pfs.FS, dir string, nranks, bytes, maxConcurrent int) float64 {
	if maxConcurrent <= 0 {
		maxConcurrent = nranks
	}
	var total float64
	for w := 0; w < nranks; w += maxConcurrent {
		hi := min(w+maxConcurrent, nranks)
		ops := make([]pfs.Op, 0, hi-w)
		for r := w; r < hi; r++ {
			ops = append(ops, pfs.Op{Path: FileName(dir, r, 0), Bytes: bytes, Write: true, Open: true})
		}
		total += fsys.SimulatePhase(ops).Elapsed
	}
	return total
}
