// Package checkpoint implements application-level checkpoint/restart
// (§III.F): each rank periodically serializes its full solver state — all
// nine wavefield components including ghost cells, plus the attenuation
// memory variables — to its own file on the simulated parallel file
// system, with open throttling to protect the metadata server. Restart
// reproduces the uninterrupted run bit-for-bit.
package checkpoint

import (
	"fmt"

	"repro/internal/core/attenuation"
	"repro/internal/core/fd"
	"repro/internal/grid"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// FileName is the per-rank checkpoint naming scheme.
func FileName(dir string, rank, step int) string {
	return fmt.Sprintf("%s/ckpt.%06d.step%09d", dir, rank, step)
}

// Save writes one rank's state at the given step as a v2 checkpoint file
// (exact int64 header, CRC64 trailer) using the atomic write-temp-then-
// rename protocol: a reader concurrently scanning the directory never
// observes a half-written file under the final name. Transient PFS
// faults are retried with bounded backoff; a torn write that slips
// through is caught later by the CRC in Load/FindLatestValid. atten may
// be nil. An optional telemetry recorder (at most one) attributes the
// serialization wall time to the Checkpoint phase.
func Save(fsys *pfs.FS, dir string, rank, step int, s *fd.State, atten *attenuation.Model, rec ...*telemetry.Recorder) (pfs.PhaseStats, error) {
	defer ckptSpan(rec).End()
	var buf []float32
	for _, f := range s.Fields() {
		buf = append(buf, f.Data()...)
	}
	if atten != nil {
		for _, f := range attenFields(atten) {
			buf = append(buf, f.Data()...)
		}
	}
	data := Encode(step, s.Dims, atten != nil, buf)
	path := FileName(dir, rank, step)
	tmp := path + ".tmp"
	retry := pfs.DefaultRetry()
	if err := retry.Do(func() error { return fsys.WriteAt(tmp, 0, data) }); err != nil {
		return pfs.PhaseStats{}, fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err := retry.Do(func() error { return fsys.Rename(tmp, path) }); err != nil {
		return pfs.PhaseStats{}, fmt.Errorf("checkpoint: commit %s: %w", path, err)
	}
	return fsys.SimulatePhase([]pfs.Op{{Path: path, Bytes: len(data), Write: true, Open: true}}), nil
}

// Load restores one rank's state saved at step. The destination state and
// attenuation model must already have the right dims. An optional
// telemetry recorder (at most one) attributes the restore wall time to the
// Checkpoint phase.
func Load(fsys *pfs.FS, dir string, rank, step int, s *fd.State, atten *attenuation.Model, rec ...*telemetry.Recorder) error {
	defer ckptSpan(rec).End()
	path := FileName(dir, rank, step)
	sz := fsys.Size(path)
	if sz < 0 {
		return fmt.Errorf("checkpoint: %s not found", path)
	}
	raw := make([]byte, sz)
	if err := fsys.ReadAt(path, 0, raw); err != nil {
		return err
	}
	h, vals, err := Decode(raw)
	if err != nil {
		return fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if h.Step != int64(step) {
		return fmt.Errorf("checkpoint: %s step %d, want %d", path, h.Step, step)
	}
	if h.Dims != s.Dims {
		return fmt.Errorf("checkpoint: dims %v, state has %v", h.Dims, s.Dims)
	}
	if h.HasAtten != (atten != nil) {
		return fmt.Errorf("checkpoint: attenuation presence mismatch")
	}
	p := 0
	for _, f := range s.Fields() {
		n := len(f.Data())
		if p+n > len(vals) {
			return fmt.Errorf("checkpoint: %s truncated in wavefield", path)
		}
		copy(f.Data(), vals[p:p+n])
		p += n
	}
	if atten != nil {
		for _, f := range attenFields(atten) {
			n := len(f.Data())
			if p+n > len(vals) {
				return fmt.Errorf("checkpoint: %s truncated in memory variables", path)
			}
			copy(f.Data(), vals[p:p+n])
			p += n
		}
	}
	if p != len(vals) {
		return fmt.Errorf("checkpoint: %s has %d trailing payload values", path, len(vals)-p)
	}
	return nil
}

// FindLatestValid scans dir for per-rank checkpoint files and returns
// the newest coordinated step: the largest step for which every rank in
// [0, nranks) has a checkpoint whose CRC64 verifies and whose header
// step matches its filename. Truncated, torn, bit-flipped, legacy-v1,
// and in-flight .tmp files are skipped. Returns -1 when no coordinated
// step exists.
func FindLatestValid(fsys *pfs.FS, dir string, nranks int) int {
	valid := map[int]map[int]bool{} // step -> set of ranks with a valid file
	prefix := dir + "/"
	for _, path := range fsys.List() {
		if len(path) <= len(prefix) || path[:len(prefix)] != prefix {
			continue
		}
		var rank, step int
		if n, err := fmt.Sscanf(path[len(prefix):], "ckpt.%d.step%d", &rank, &step); n != 2 || err != nil {
			continue
		}
		if path != FileName(dir, rank, step) { // excludes .tmp files
			continue
		}
		if rank < 0 || rank >= nranks {
			continue
		}
		raw := make([]byte, fsys.Size(path))
		if err := fsys.ReadAt(path, 0, raw); err != nil {
			continue
		}
		h, _, err := Decode(raw)
		if err != nil || h.Step != int64(step) {
			continue
		}
		if valid[step] == nil {
			valid[step] = map[int]bool{}
		}
		valid[step][rank] = true
	}
	best := -1
	for step, ranks := range valid {
		if len(ranks) == nranks && step > best {
			best = step
		}
	}
	return best
}

func attenFields(a *attenuation.Model) []*grid.Field3 {
	return []*grid.Field3{a.ZXX, a.ZYY, a.ZZZ, a.ZXY, a.ZXZ, a.ZYZ}
}

// ckptSpan opens a Checkpoint span on the first recorder, if any; a nil
// recorder (or none) yields the no-op span.
func ckptSpan(rec []*telemetry.Recorder) telemetry.Span {
	if len(rec) == 0 {
		return telemetry.Span{}
	}
	return rec[0].Span(telemetry.Checkpoint)
}

// ThrottledSave prices a full-job checkpoint phase in which nranks ranks
// write `bytes` each, with at most maxConcurrent files open at once (the
// §IV.E open-throttling policy). It returns the total simulated elapsed
// time; untrottled behaviour is obtained with maxConcurrent >= nranks.
func ThrottledSave(fsys *pfs.FS, dir string, nranks, bytes, maxConcurrent int) float64 {
	if maxConcurrent <= 0 {
		maxConcurrent = nranks
	}
	var total float64
	for w := 0; w < nranks; w += maxConcurrent {
		hi := min(w+maxConcurrent, nranks)
		ops := make([]pfs.Op, 0, hi-w)
		for r := w; r < hi; r++ {
			ops = append(ops, pfs.Op{Path: FileName(dir, r, 0), Bytes: bytes, Write: true, Open: true})
		}
		total += fsys.SimulatePhase(ops).Elapsed
	}
	return total
}
