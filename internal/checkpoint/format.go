// Checkpoint file format v2 — the on-disk contract of the coordinated
// restart protocol (§III.F). Version 1 encoded step and dims as float32
// in-band with the payload, silently losing precision past 2^24 and
// offering no integrity check at all; a torn or bit-flipped file loaded
// cleanly and corrupted the restart. Version 2 fixes both:
//
//	offset  size  field
//	0       4     magic "AWPC" (little-endian uint32)
//	4       4     version (2)
//	8       4     flags (bit 0: attenuation memory variables present)
//	12      4     reserved (zero)
//	16      8     step   (int64, exact)
//	24      8     NX     (int64)
//	32      8     NY     (int64)
//	40      8     NZ     (int64)
//	48      4n    payload: n float32 values, little-endian
//	48+4n   8     CRC64-ECMA of bytes [0, 48+4n)
//
// The trailer covers the header too, so a corrupted step/dims field is as
// detectable as a corrupted wavefield value, and a truncated file always
// fails (the length implied by the header never matches, or the CRC
// does not).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"

	"repro/internal/grid"
	"repro/internal/mpiio"
)

const (
	// FormatMagic identifies a v2+ checkpoint file ("AWPC" LE).
	FormatMagic = uint32(0x43505741)
	// FormatVersion is the current format version.
	FormatVersion = uint32(2)

	flagAtten = uint32(1 << 0)

	headerLen  = 48
	trailerLen = 8
)

// Format/validation failure classes, wrapped in the errors Decode
// returns; classify with errors.Is.
var (
	// ErrNotCheckpoint marks a file without the v2 magic — including
	// legacy v1 files, which stored float32 step/dims with no magic and
	// no checksum and are rejected rather than trusted.
	ErrNotCheckpoint = errors.New("not a v2+ checkpoint file (legacy v1 float32-header files are no longer readable; re-checkpoint)")
	// ErrVersion marks an unsupported (future) format version.
	ErrVersion = errors.New("unsupported checkpoint format version")
	// ErrTruncated marks a file shorter than its header implies.
	ErrTruncated = errors.New("truncated checkpoint file")
	// ErrChecksum marks a CRC64 mismatch (bit rot, torn write).
	ErrChecksum = errors.New("checkpoint CRC64 mismatch")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Header is the decoded fixed-size prefix of a v2 checkpoint file.
type Header struct {
	Version  uint32
	Step     int64
	Dims     grid.Dims
	HasAtten bool
	// PayloadVals is the number of float32 payload values implied by the
	// file length (only set by Decode, which has the whole file).
	PayloadVals int
}

// Encode serializes one rank's state snapshot into a v2 checkpoint file
// image: header, float32 payload, CRC64 trailer.
func Encode(step int, dims grid.Dims, hasAtten bool, vals []float32) []byte {
	out := make([]byte, headerLen+4*len(vals)+trailerLen)
	binary.LittleEndian.PutUint32(out[0:], FormatMagic)
	binary.LittleEndian.PutUint32(out[4:], FormatVersion)
	flags := uint32(0)
	if hasAtten {
		flags |= flagAtten
	}
	binary.LittleEndian.PutUint32(out[8:], flags)
	binary.LittleEndian.PutUint64(out[16:], uint64(step))
	binary.LittleEndian.PutUint64(out[24:], uint64(dims.NX))
	binary.LittleEndian.PutUint64(out[32:], uint64(dims.NY))
	binary.LittleEndian.PutUint64(out[40:], uint64(dims.NZ))
	copy(out[headerLen:], mpiio.PutFloat32s(vals))
	sum := crc64.Checksum(out[:headerLen+4*len(vals)], crcTable)
	binary.LittleEndian.PutUint64(out[headerLen+4*len(vals):], sum)
	return out
}

// DecodeHeader parses and validates the fixed-size prefix without
// verifying the payload CRC (cheap screening for directory scans).
func DecodeHeader(raw []byte) (Header, error) {
	var h Header
	// Magic screens first: a legacy v1 file (float32 header, often shorter
	// than the v2 header) must report ErrNotCheckpoint, not ErrTruncated.
	if len(raw) >= 4 {
		if magic := binary.LittleEndian.Uint32(raw[0:]); magic != FormatMagic {
			return h, fmt.Errorf("checkpoint: magic %#x: %w", magic, ErrNotCheckpoint)
		}
	}
	if len(raw) < headerLen {
		return h, fmt.Errorf("checkpoint: %d-byte file: %w", len(raw), ErrTruncated)
	}
	h.Version = binary.LittleEndian.Uint32(raw[4:])
	if h.Version != FormatVersion {
		return h, fmt.Errorf("checkpoint: version %d (supported: %d): %w", h.Version, FormatVersion, ErrVersion)
	}
	flags := binary.LittleEndian.Uint32(raw[8:])
	h.HasAtten = flags&flagAtten != 0
	h.Step = int64(binary.LittleEndian.Uint64(raw[16:]))
	h.Dims = grid.Dims{
		NX: int(int64(binary.LittleEndian.Uint64(raw[24:]))),
		NY: int(int64(binary.LittleEndian.Uint64(raw[32:]))),
		NZ: int(int64(binary.LittleEndian.Uint64(raw[40:]))),
	}
	if h.Step < 0 || h.Dims.NX <= 0 || h.Dims.NY <= 0 || h.Dims.NZ <= 0 {
		return h, fmt.Errorf("checkpoint: implausible header (step %d dims %v): %w", h.Step, h.Dims, ErrNotCheckpoint)
	}
	return h, nil
}

// Decode parses a whole v2 file image, verifying the CRC64 trailer, and
// returns the header and payload values.
func Decode(raw []byte) (Header, []float32, error) {
	h, err := DecodeHeader(raw)
	if err != nil {
		return h, nil, err
	}
	body := len(raw) - trailerLen
	if body < headerLen || (body-headerLen)%4 != 0 {
		return h, nil, fmt.Errorf("checkpoint: %d-byte file: %w", len(raw), ErrTruncated)
	}
	want := binary.LittleEndian.Uint64(raw[body:])
	if got := crc64.Checksum(raw[:body], crcTable); got != want {
		return h, nil, fmt.Errorf("checkpoint: crc %#x, trailer %#x: %w", got, want, ErrChecksum)
	}
	h.PayloadVals = (body - headerLen) / 4
	return h, mpiio.GetFloat32s(raw[headerLen:body]), nil
}
