package checkpoint

import (
	"testing"

	"repro/internal/core/attenuation"
	"repro/internal/core/fd"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
	"repro/internal/pfs"
)

func testFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 8, OSTBandwidth: 1e8, MDSLatency: 1e-3, MDSConcurrent: 4})
}

func makeMedium(t testing.TB, d grid.Dims) *medium.Medium {
	t.Helper()
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return medium.FromCVM(cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}), dc, dc.SubFor(0), 100)
}

func step(s *fd.State, m *medium.Medium, a *attenuation.Model, dt float64) {
	box := fd.FullBox(s.Dims)
	fd.UpdateVelocity(s, m, dt, box, fd.Precomp, fd.Blocking{})
	fd.UpdateStress(s, m, dt, box, fd.Precomp, fd.Blocking{})
	if a != nil {
		a.Apply(s, m, dt, box)
	}
}

// The fundamental checkpoint property: save at step N, continue to 2N,
// then restore at N and re-run to 2N — the wavefields must be identical
// bit for bit.
func TestRestartBitIdentical(t *testing.T) {
	d := grid.Dims{NX: 12, NY: 12, NZ: 12}
	m := makeMedium(t, d)
	dt := m.StableDt(0.5)
	a := attenuation.New(m, attenuation.DefaultBand, dt)
	fsys := testFS()

	s := fd.NewState(d)
	s.VX.Set(6, 6, 6, 1)
	for n := 0; n < 30; n++ {
		step(s, m, a, dt)
	}
	st, err := Save(fsys, "ckpt", 0, 30, s, a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes == 0 {
		t.Fatal("no checkpoint bytes")
	}
	for n := 0; n < 30; n++ {
		step(s, m, a, dt)
	}
	want := s.Clone()

	// Restore into fresh state and recompute.
	s2 := fd.NewState(d)
	a2 := attenuation.New(m, attenuation.DefaultBand, dt)
	if err := Load(fsys, "ckpt", 0, 30, s2, a2); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 30; n++ {
		step(s2, m, a2, dt)
	}
	if diff := s2.L2Diff(want); diff != 0 {
		t.Fatalf("restart differs from uninterrupted run: L2 %g", diff)
	}
}

func TestSaveWithoutAttenuation(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 6, NZ: 6}
	fsys := testFS()
	s := fd.NewState(d)
	s.XY.Set(2, 2, 2, 5)
	if _, err := Save(fsys, "c", 3, 100, s, nil); err != nil {
		t.Fatal(err)
	}
	s2 := fd.NewState(d)
	if err := Load(fsys, "c", 3, 100, s2, nil); err != nil {
		t.Fatal(err)
	}
	if s2.XY.At(2, 2, 2) != 5 {
		t.Fatal("value lost")
	}
}

func TestLoadErrors(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 6, NZ: 6}
	m := makeMedium(t, d)
	fsys := testFS()
	s := fd.NewState(d)
	a := attenuation.New(m, attenuation.DefaultBand, 0.001)

	if err := Load(fsys, "c", 0, 1, s, nil); err == nil {
		t.Error("missing checkpoint loaded")
	}
	if _, err := Save(fsys, "c", 0, 1, s, nil); err != nil {
		t.Fatal(err)
	}
	if err := Load(fsys, "c", 0, 2, s, nil); err == nil {
		t.Error("wrong step loaded")
	}
	if err := Load(fsys, "c", 0, 1, s, a); err == nil {
		t.Error("attenuation mismatch accepted")
	}
	s2 := fd.NewState(grid.Dims{NX: 4, NY: 4, NZ: 4})
	if err := Load(fsys, "c", 0, 1, s2, nil); err == nil {
		t.Error("dims mismatch accepted")
	}
}

// Throttled checkpointing must beat the unthrottled metadata storm at
// scale (§IV.E applied to checkpoint files).
func TestThrottledSaveFaster(t *testing.T) {
	fsys := pfs.New(pfs.Config{OSTs: 64, OSTBandwidth: 1e8, MDSLatency: 1e-3, MDSConcurrent: 50})
	nranks := 400
	bytes := 1 << 20
	unthrottled := ThrottledSave(fsys, "a", nranks, bytes, nranks)
	throttled := ThrottledSave(fsys, "b", nranks, bytes, 50)
	if throttled >= unthrottled {
		t.Fatalf("throttling did not help: %g vs %g", throttled, unthrottled)
	}
}
