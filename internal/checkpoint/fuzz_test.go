package checkpoint

import (
	"testing"

	"repro/internal/grid"
)

// FuzzDecode throws arbitrary bytes at the v2 header/CRC decoder. The
// invariants: never panic, never accept a payload whose CRC does not
// verify, and accept-then-reencode must be stable.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(0, grid.Dims{NX: 1, NY: 1, NZ: 1}, false, nil))
	f.Add(Encode(1<<30, grid.Dims{NX: 3, NY: 2, NZ: 1}, true, []float32{1, 2, 3}))
	damaged := Encode(7, grid.Dims{NX: 2, NY: 2, NZ: 2}, false, []float32{4, 5})
	damaged[headerLen] ^= 0x80
	f.Add(damaged)
	f.Add(damaged[:headerLen+1])
	f.Add([]byte("AWPC not really a checkpoint"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		h, vals, err := Decode(raw)
		if err != nil {
			return
		}
		// Accepted: the header must be self-consistent and re-encoding the
		// decoded content must reproduce the input exactly.
		if h.Version != FormatVersion || h.PayloadVals != len(vals) {
			t.Fatalf("accepted inconsistent header %+v with %d vals", h, len(vals))
		}
		re := Encode(int(h.Step), h.Dims, h.HasAtten, vals)
		if string(re) != string(raw) {
			t.Fatalf("re-encode of accepted file differs: %d vs %d bytes", len(re), len(raw))
		}
	})
}
