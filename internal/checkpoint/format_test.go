package checkpoint

import (
	"errors"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/grid"
	"repro/internal/mpiio"
	"repro/internal/pfs"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	dims := grid.Dims{NX: 7, NY: 5, NZ: 3}
	vals := []float32{1.5, -2.25, 0, 3e-38, 1e20}
	raw := Encode(123456789, dims, true, vals)
	h, got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if h.Step != 123456789 || h.Dims != dims || !h.HasAtten || h.PayloadVals != len(vals) {
		t.Fatalf("header = %+v", h)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
}

// Steps past 2^24 were silently rounded by the v1 float32 header — the
// exact-int64 regression the format change exists for.
func TestLargeStepExact(t *testing.T) {
	const step = 1<<24 + 1 // not representable in float32
	raw := Encode(step, grid.Dims{NX: 1, NY: 1, NZ: 1}, false, []float32{0})
	h, _, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if h.Step != step {
		t.Fatalf("step %d round-tripped as %d", step, h.Step)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	dims := grid.Dims{NX: 4, NY: 4, NZ: 4}
	clean := Encode(10, dims, false, make([]float32, 64))

	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bit flip in payload", func(b []byte) []byte { b[headerLen+9] ^= 0x10; return b }, ErrChecksum},
		{"bit flip in header step", func(b []byte) []byte { b[17] ^= 0x01; return b }, ErrChecksum},
		{"truncated mid-payload", func(b []byte) []byte { return b[:len(b)-40] }, ErrChecksum},
		{"truncated to sub-header", func(b []byte) []byte { return b[:20] }, ErrTruncated},
		{"header only, no trailer room", func(b []byte) []byte { return b[:headerLen+2] }, ErrTruncated},
		{"wrong magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrNotCheckpoint},
		{"future version", func(b []byte) []byte { b[4] = 99; return b }, ErrVersion},
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
	} {
		raw := tc.mutate(append([]byte(nil), clean...))
		if _, _, err := Decode(raw); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// Legacy v1 files (float32 header, no magic, no CRC) must be rejected
// with the versioned ErrNotCheckpoint, not silently mis-parsed.
func TestLegacyV1Rejected(t *testing.T) {
	v1 := mpiio.PutFloat32s([]float32{10, 6, 6, 6, 0, 1, 2, 3})
	if _, _, err := Decode(v1); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("err = %v, want ErrNotCheckpoint", err)
	}
	fsys := testFS()
	if err := fsys.WriteAt(FileName("c", 0, 10), 0, v1); err != nil {
		t.Fatal(err)
	}
	s := fd.NewState(grid.Dims{NX: 6, NY: 6, NZ: 6})
	if err := Load(fsys, "c", 0, 10, s, nil); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("Load err = %v, want ErrNotCheckpoint", err)
	}
}

// FindLatestValid must pick the newest step where EVERY rank's file
// verifies, skipping truncated and bit-flipped files.
func TestFindLatestValidSkipsDamage(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 6, NZ: 6}
	fsys := testFS()
	const nranks = 3

	save := func(rank, step int) {
		s := fd.NewState(d)
		s.VX.Set(1, 1, 1, float32(rank*1000+step))
		if _, err := Save(fsys, "c", rank, step, s, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, step := range []int{10, 20, 30} {
		for r := 0; r < nranks; r++ {
			save(r, step)
		}
	}
	if got := FindLatestValid(fsys, "c", nranks); got != 30 {
		t.Fatalf("clean scan = %d, want 30", got)
	}

	// Truncate rank 1's step-30 file: 30 is no longer coordinated.
	path := FileName("c", 1, 30)
	raw := make([]byte, fsys.Size(path))
	if err := fsys.ReadAt(path, 0, raw); err != nil {
		t.Fatal(err)
	}
	fsys.Remove(path)
	if err := fsys.WriteAt(path, 0, raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	if got := FindLatestValid(fsys, "c", nranks); got != 20 {
		t.Fatalf("after truncation = %d, want 20", got)
	}

	// Flip one payload bit in rank 2's step-20 file: fall back to 10.
	path2 := FileName("c", 2, 20)
	raw2 := make([]byte, fsys.Size(path2))
	if err := fsys.ReadAt(path2, 0, raw2); err != nil {
		t.Fatal(err)
	}
	raw2[headerLen+5] ^= 0x40
	if err := fsys.WriteAt(path2, 0, raw2); err != nil {
		t.Fatal(err)
	}
	if got := FindLatestValid(fsys, "c", nranks); got != 10 {
		t.Fatalf("after bit flip = %d, want 10", got)
	}

	// A step missing one rank entirely never counts as coordinated.
	save(0, 40)
	save(1, 40)
	if got := FindLatestValid(fsys, "c", nranks); got != 10 {
		t.Fatalf("partial step counted: got %d, want 10", got)
	}
	if got := FindLatestValid(fsys, "empty", nranks); got != -1 {
		t.Fatalf("empty dir = %d, want -1", got)
	}
}

// A .tmp file left by a crashed writer must never be picked up.
func TestFindLatestValidIgnoresTempFiles(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 6, NZ: 6}
	fsys := testFS()
	s := fd.NewState(d)
	if _, err := Save(fsys, "c", 0, 10, s, nil); err != nil {
		t.Fatal(err)
	}
	// Orphaned in-flight temp for a newer step.
	orphan := Encode(50, d, false, make([]float32, 16))
	if err := fsys.WriteAt(FileName("c", 0, 50)+".tmp", 0, orphan); err != nil {
		t.Fatal(err)
	}
	if got := FindLatestValid(fsys, "c", 1); got != 10 {
		t.Fatalf("got %d, want 10 (tmp file must not count)", got)
	}
}

// Saves through a faulty PFS must either commit a CRC-valid file or be
// detectable — torn writes land but fail validation.
func TestSaveUnderPFSFaults(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 6, NZ: 6}
	fsys := testFS()
	fsys.InjectFaults(pfs.FaultPlan{
		Seed: 31, WriteFailProb: 0.2, ShortWriteProb: 0.1, TornWriteProb: 0.1, MDSTimeoutProb: 0.1,
	})
	s := fd.NewState(d)
	s.VZ.Set(3, 3, 3, 7)

	valid := 0
	for step := 0; step < 40; step++ {
		if _, err := Save(fsys, "c", 0, step, s, nil); err != nil {
			continue // retry budget exhausted: no commit, fine
		}
		s2 := fd.NewState(d)
		err := Load(fsys, "c", 0, step, s2, nil)
		if err == nil {
			valid++
			if s2.VZ.At(3, 3, 3) != 7 {
				t.Fatalf("step %d: loaded wrong data", step)
			}
		}
	}
	if valid == 0 {
		t.Fatal("no checkpoint survived the fault plan")
	}
	st := fsys.FaultStats()
	if st.FailedWrites+st.ShortWrites+st.TornWrites+st.MDSTimeouts == 0 {
		t.Fatal("fault plan never fired")
	}
}
