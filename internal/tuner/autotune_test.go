package tuner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/grid"
)

// The profile must round-trip: the first call benchmarks and writes, the
// second call for the same key returns the cached winner without invoking
// the benchmark at all.
func TestAutotuneRoundTrip(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "profile.json")
	calls := 0
	opt := AutotuneOptions{
		Dims:      grid.Dims{NX: 96, NY: 80, NZ: 64},
		Threads:   4,
		CachePath: cache,
		benchFn: func(v fd.Variant, blk fd.Blocking, tdepth int) float64 {
			calls++
			// Craft a clear winner: Fused {16,16} at depth 2.
			cost := 10.0
			if v == fd.Fused {
				cost = 5.0
			}
			if v == fd.Fused && blk.JBlock == 16 && blk.KBlock == 16 {
				cost = 2.0
				if tdepth == 2 {
					cost = 1.0
				}
			}
			return cost
		},
	}
	choice, samples, err := AutotuneKernels(opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("benchmark never invoked on cold cache")
	}
	if choice.FromCache {
		t.Fatal("cold-cache choice reported FromCache")
	}
	if choice.Variant != fd.Fused || choice.Blocking.JBlock != 16 ||
		choice.Blocking.KBlock != 16 || choice.TemporalDepth != 2 {
		t.Fatalf("wrong winner: %v %+v depth %d", choice.Variant, choice.Blocking, choice.TemporalDepth)
	}
	if len(samples) != len(autotuneCandidates(false, false)) {
		t.Fatalf("expected %d samples, got %d", len(autotuneCandidates(false, false)), len(samples))
	}

	calls = 0
	cached, samples2, err := AutotuneKernels(opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("benchmark re-invoked %d times despite cached profile", calls)
	}
	if !cached.FromCache {
		t.Fatal("warm-cache choice not reported FromCache")
	}
	if cached.Variant != choice.Variant || cached.Blocking != choice.Blocking ||
		cached.TemporalDepth != choice.TemporalDepth || cached.NsPerCell != choice.NsPerCell {
		t.Fatalf("cached choice %+v differs from original %+v", cached, choice)
	}
	if len(samples2) != len(samples) {
		t.Fatalf("cached samples %d != original %d", len(samples2), len(samples))
	}
}

// Different dims / threads / attenuation must key separate profile entries.
func TestAutotuneKeySeparation(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "profile.json")
	calls := 0
	mk := func(d grid.Dims, threads int, atten bool) AutotuneOptions {
		return AutotuneOptions{
			Dims: d, Threads: threads, Attenuation: atten, CachePath: cache,
			benchFn: func(fd.Variant, fd.Blocking, int) float64 { calls++; return 1 },
		}
	}
	base := grid.Dims{NX: 32, NY: 32, NZ: 32}
	for _, o := range []AutotuneOptions{
		mk(base, 1, false),
		mk(grid.Dims{NX: 64, NY: 32, NZ: 32}, 1, false), // different shape
		mk(base, 2, false), // different threads
		mk(base, 1, true),  // attenuation on
	} {
		before := calls
		if _, _, err := AutotuneKernels(o); err != nil {
			t.Fatal(err)
		}
		if calls == before {
			t.Fatalf("options %+v hit a cache entry it should not share", o)
		}
	}
	// And each re-read hits its own entry.
	before := calls
	if _, _, err := AutotuneKernels(mk(base, 1, true)); err != nil {
		t.Fatal(err)
	}
	if calls != before {
		t.Fatal("repeat lookup re-benchmarked")
	}
}

// A corrupt profile is a cache miss, not an error.
func TestAutotuneCorruptProfile(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "profile.json")
	if err := os.WriteFile(cache, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	calls := 0
	opt := AutotuneOptions{
		Dims: grid.Dims{NX: 16, NY: 16, NZ: 16}, Threads: 1, CachePath: cache,
		benchFn: func(fd.Variant, fd.Blocking, int) float64 { calls++; return 1 },
	}
	if _, _, err := AutotuneKernels(opt); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("corrupt profile treated as a hit")
	}
	// The rewrite must leave valid JSON behind.
	data, err := os.ReadFile(cache)
	if err != nil {
		t.Fatal(err)
	}
	var p kernelProfile
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("profile not rewritten as valid JSON: %v", err)
	}
	if len(p.Entries) != 1 {
		t.Fatalf("expected 1 entry after rewrite, got %d", len(p.Entries))
	}
}

// End-to-end with the real micro-benchmark on a tiny grid: the sweep must
// complete, return a valid ladder variant, and persist a parseable profile.
func TestAutotuneEndToEndQuick(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "profile.json")
	opt := AutotuneOptions{
		Dims:        grid.Dims{NX: 16, NY: 12, NZ: 10},
		Threads:     2,
		Attenuation: true,
		CachePath:   cache,
		Quick:       true,
	}
	choice, samples, err := AutotuneKernels(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := choice.Variant.Validate(); err != nil {
		t.Fatalf("winner has invalid variant: %v", err)
	}
	if choice.NsPerCell <= 0 {
		t.Fatalf("non-positive measurement: %g", choice.NsPerCell)
	}
	if len(samples) != len(autotuneCandidates(true, false)) {
		t.Fatalf("expected %d quick samples, got %d", len(autotuneCandidates(true, false)), len(samples))
	}
	for _, s := range samples {
		if s.NsPerCell <= 0 {
			t.Fatalf("sample %+v has non-positive timing", s)
		}
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	// Warm call must not re-run kernels (FromCache observable).
	again, _, err := AutotuneKernels(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !again.FromCache {
		t.Fatal("second end-to-end call did not hit the cache")
	}
}

func TestDefaultProfilePath(t *testing.T) {
	p, err := DefaultProfilePath()
	if err != nil {
		t.Skipf("no user cache dir in this environment: %v", err)
	}
	if filepath.Base(p) != "kernel-profile.json" {
		t.Fatalf("unexpected profile path %q", p)
	}
}

// A profile with an unknown format version — older (including the
// implicit 0 of pre-versioning files) or newer — is a cache miss, and the
// rewrite stamps the current version.
func TestAutotuneProfileVersionMismatch(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "profile.json")
	calls := 0
	opt := AutotuneOptions{
		Dims: grid.Dims{NX: 16, NY: 16, NZ: 16}, Threads: 1, CachePath: cache,
		benchFn: func(fd.Variant, fd.Blocking, int) float64 { calls++; return 1 },
	}
	if _, _, err := AutotuneKernels(opt); err != nil {
		t.Fatal(err)
	}
	for _, version := range []int{0, profileVersion - 1, profileVersion + 1} {
		data, err := os.ReadFile(cache)
		if err != nil {
			t.Fatal(err)
		}
		var p kernelProfile
		if err := json.Unmarshal(data, &p); err != nil {
			t.Fatal(err)
		}
		if p.Version != profileVersion {
			t.Fatalf("saved profile has version %d, want %d", p.Version, profileVersion)
		}
		p.Version = version
		forged, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cache, forged, 0o644); err != nil {
			t.Fatal(err)
		}
		before := calls
		if _, _, err := AutotuneKernels(opt); err != nil {
			t.Fatal(err)
		}
		if calls == before {
			t.Fatalf("profile version %d treated as a hit", version)
		}
	}
	// After the rewrites the current version must hit again.
	before := calls
	if _, _, err := AutotuneKernels(opt); err != nil {
		t.Fatal(err)
	}
	if calls != before {
		t.Fatal("rewritten current-version profile missed")
	}
}

// TestAutotuneLTSKeySeparation pins the LTS cache discipline: an LTS run
// never reuses a classic run's cached winner (whose depth may exceed 1),
// its candidate sweep is depth-1 only, and its winner is cached under a
// separate key so the classic entry survives.
func TestAutotuneLTSKeySeparation(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "profile.json")
	calls := 0
	opt := AutotuneOptions{
		Dims:      grid.Dims{NX: 64, NY: 48, NZ: 32},
		Threads:   2,
		CachePath: cache,
		benchFn: func(v fd.Variant, blk fd.Blocking, tdepth int) float64 {
			calls++
			if tdepth > 1 {
				return 1.0 // classic tuning prefers depth > 1
			}
			return 2.0
		},
	}
	classic, _, err := AutotuneKernels(opt)
	if err != nil {
		t.Fatal(err)
	}
	if classic.TemporalDepth <= 1 {
		t.Fatalf("classic winner depth %d, expected > 1", classic.TemporalDepth)
	}

	calls = 0
	opt.LTS = true
	lts, samples, err := AutotuneKernels(opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("LTS run reused the classic cache entry")
	}
	if lts.TemporalDepth != 1 {
		t.Fatalf("LTS winner depth %d, want 1", lts.TemporalDepth)
	}
	for _, s := range samples {
		if s.TDepth != 1 {
			t.Fatalf("LTS sweep benchmarked depth %d", s.TDepth)
		}
	}

	// Both entries must coexist in the profile.
	calls = 0
	if again, _, err := AutotuneKernels(opt); err != nil || calls != 0 || !again.FromCache {
		t.Fatalf("LTS entry not cached (err %v, calls %d)", err, calls)
	}
	opt.LTS = false
	if again, _, err := AutotuneKernels(opt); err != nil || calls != 0 || !again.FromCache {
		t.Fatalf("classic entry lost after LTS tuning (err %v, calls %d)", err, calls)
	}
	if again, _, _ := AutotuneKernels(opt); again.TemporalDepth != classic.TemporalDepth {
		t.Fatalf("classic cached depth changed to %d", again.TemporalDepth)
	}
}
