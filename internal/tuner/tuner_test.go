package tuner

import (
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
)

func baseInputs() Inputs {
	return Inputs{
		Machine: perfmodel.Jaguar,
		FS:      pfs.Jaguar(),
		Global:  grid.Dims{NX: 20250, NY: 10125, NZ: 2125},
		Cores:   223074,
		Steps:   100000,
	}
}

func TestM8ProductionChoices(t *testing.T) {
	cfg := Tune(baseInputs())
	// The v7.2 production configuration.
	if cfg.Comm != solver.AsyncReduced {
		t.Errorf("comm = %v, want async-reduced at 223K cores", cfg.Comm)
	}
	if cfg.ABC != solver.MPMLABC {
		t.Errorf("ABC = %v, want M-PML on smooth media", cfg.ABC)
	}
	if cfg.Variant != fd.Blocked {
		t.Errorf("variant = %v, want blocked at production subgrids", cfg.Variant)
	}
	if cfg.MaxOpenFiles != 650 {
		t.Errorf("open throttle = %d, want the 650-OST policy", cfg.MaxOpenFiles)
	}
	if cfg.AggregateSteps != 20000 {
		t.Errorf("aggregation = %d, want 20000", cfg.AggregateSteps)
	}
	if cfg.CheckpointEvery != 0 {
		t.Errorf("checkpointing enabled on a reliable system")
	}
}

func TestStrongGradientsFallBackToSponge(t *testing.T) {
	in := baseInputs()
	in.MediaGradient = 0.8
	if cfg := Tune(in); cfg.ABC != solver.SpongeABC {
		t.Errorf("ABC = %v, want sponge under strong gradients (§II.D)", cfg.ABC)
	}
}

func TestSmallSubgridsSkipBlocking(t *testing.T) {
	in := baseInputs()
	in.Global = grid.Dims{NX: 512, NY: 512, NZ: 256}
	in.Cores = 4096 // ~16K cells/core: fits in cache
	if cfg := Tune(in); cfg.Variant != fd.Precomp {
		t.Errorf("variant = %v, want precomp for cache-resident subgrids", cfg.Variant)
	}
}

func TestBGLKeepsSimplerComm(t *testing.T) {
	in := baseInputs()
	in.Machine = perfmodel.BGL
	in.Cores = 16384
	cfg := Tune(in)
	if cfg.Comm != solver.Asynchronous {
		t.Errorf("comm = %v on BG/L at 16K", cfg.Comm)
	}
}

func TestIOModeSwitchesWithScale(t *testing.T) {
	in := baseInputs()
	in.Cores = 4096
	if cfg := Tune(in); cfg.IOMode != PrePartitioned {
		t.Errorf("IO = %v at 4K ranks, want pre-partitioned", cfg.IOMode)
	}
	in.FS.MDSConcurrent = 10 // weak metadata server
	in.Cores = 100000
	if cfg := Tune(in); cfg.IOMode != OnDemandMPIIO {
		t.Errorf("IO = %v with weak MDS at 100K ranks, want on-demand", cfg.IOMode)
	}
	if PrePartitioned.String() == OnDemandMPIIO.String() {
		t.Error("IO mode strings aliased")
	}
}

func TestPureMPIDefaultsToOneThread(t *testing.T) {
	cfg := Tune(baseInputs())
	if cfg.Threads != 1 {
		t.Errorf("Threads = %d with ThreadsPerRank unset, want 1", cfg.Threads)
	}
	if cfg.Comm != solver.AsyncReduced {
		t.Errorf("comm = %v, pure-MPI choice must be unchanged", cfg.Comm)
	}
}

func TestHybridThreadsSelectOverlap(t *testing.T) {
	in := baseInputs()
	in.ThreadsPerRank = 4
	cfg := Tune(in)
	if cfg.Threads != 4 {
		t.Errorf("Threads = %d, want 4", cfg.Threads)
	}
	if cfg.Comm != solver.AsyncOverlap {
		t.Errorf("comm = %v, want overlap when the pool can hide the exchange", cfg.Comm)
	}
}

func TestHybridShrinksTilesForLoadBalance(t *testing.T) {
	in := baseInputs()
	// Small subgrid (~32^3 per rank) with a wide pool: the default 8x16
	// tiles would yield too few work units.
	in.Global = grid.Dims{NX: 256, NY: 256, NZ: 128}
	in.Cores = 256
	in.ThreadsPerRank = 8
	cfg := Tune(in)
	def := fd.DefaultBlocking
	if cfg.Blocking.JBlock > def.JBlock || cfg.Blocking.KBlock > def.KBlock {
		t.Fatalf("blocking %+v grew beyond default %+v", cfg.Blocking, def)
	}
	if cfg.Blocking == def {
		t.Errorf("blocking %+v unchanged; small hybrid subgrids need more tiles than workers", cfg.Blocking)
	}
	if cfg.Blocking.JBlock < 2 || cfg.Blocking.KBlock < 2 {
		t.Errorf("blocking %+v shrank below the floor", cfg.Blocking)
	}
	// Production-size subgrids already yield plenty of tiles: unchanged.
	big := baseInputs()
	big.ThreadsPerRank = 4
	if got := Tune(big).Blocking; got != def {
		t.Errorf("production blocking %+v, want default %+v", got, def)
	}
}

func TestCheckpointIntervalFromMTBF(t *testing.T) {
	in := baseInputs()
	in.FailureMTBF = 5000
	cfg := Tune(in)
	if cfg.CheckpointEvery <= 0 {
		t.Fatal("checkpointing disabled despite failures")
	}
	// Young: sqrt(2*3*5000) ~ 173.
	if cfg.CheckpointEvery < 100 || cfg.CheckpointEvery > 300 {
		t.Errorf("interval = %d, want ~173", cfg.CheckpointEvery)
	}
	// More reliable system -> longer interval.
	in.FailureMTBF = 500000
	if Tune(in).CheckpointEvery <= cfg.CheckpointEvery {
		t.Error("interval not increasing with MTBF")
	}
}

// Message layout: coalescing is enabled whenever per-message latency is
// visible against a phase-aggregate face transfer, and never for runs that
// have no neighbors to message.
func TestCoalesceHaloFollowsLatencyRule(t *testing.T) {
	in := baseInputs()
	in.Global = grid.Dims{NX: 512, NY: 512, NZ: 256}
	in.Cores = 4096 // side ~25: one phase-aggregate face is ~46 KB
	in.Machine.Alpha, in.Machine.Beta = 3e-6, 4e-10
	if cfg := Tune(in); !cfg.CoalesceHalo {
		t.Error("small faces on a latency-bound machine: want coalesced halos")
	}

	in.Cores = 1
	if cfg := Tune(in); cfg.CoalesceHalo {
		t.Error("single-rank run: no messages to coalesce")
	}

	// Huge subgrid faces: one message latency is far below 1% of a
	// phase-aggregate transfer, so the per-field layout is kept.
	in = baseInputs()
	in.Cores = 512 // side ~948: aggregate face ~65 MB
	in.Machine.Alpha, in.Machine.Beta = 3e-6, 7e-10
	if cfg := Tune(in); cfg.CoalesceHalo {
		t.Error("bandwidth-dominated faces: want per-field layout")
	}

	// No bandwidth model at all: the rule cannot price the comparison and
	// must leave the default layout alone.
	in.Machine.Beta = 0
	if cfg := Tune(in); cfg.CoalesceHalo {
		t.Error("beta=0: rule should not fire")
	}
}
