package tuner

import (
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
)

func baseInputs() Inputs {
	return Inputs{
		Machine: perfmodel.Jaguar,
		FS:      pfs.Jaguar(),
		Global:  grid.Dims{NX: 20250, NY: 10125, NZ: 2125},
		Cores:   223074,
		Steps:   100000,
	}
}

func TestM8ProductionChoices(t *testing.T) {
	cfg := Tune(baseInputs())
	// The v7.2 production configuration.
	if cfg.Comm != solver.AsyncReduced {
		t.Errorf("comm = %v, want async-reduced at 223K cores", cfg.Comm)
	}
	if cfg.ABC != solver.MPMLABC {
		t.Errorf("ABC = %v, want M-PML on smooth media", cfg.ABC)
	}
	if cfg.Variant != fd.Blocked {
		t.Errorf("variant = %v, want blocked at production subgrids", cfg.Variant)
	}
	if cfg.MaxOpenFiles != 650 {
		t.Errorf("open throttle = %d, want the 650-OST policy", cfg.MaxOpenFiles)
	}
	if cfg.AggregateSteps != 20000 {
		t.Errorf("aggregation = %d, want 20000", cfg.AggregateSteps)
	}
	if cfg.CheckpointEvery != 0 {
		t.Errorf("checkpointing enabled on a reliable system")
	}
}

func TestStrongGradientsFallBackToSponge(t *testing.T) {
	in := baseInputs()
	in.MediaGradient = 0.8
	if cfg := Tune(in); cfg.ABC != solver.SpongeABC {
		t.Errorf("ABC = %v, want sponge under strong gradients (§II.D)", cfg.ABC)
	}
}

func TestSmallSubgridsSkipBlocking(t *testing.T) {
	in := baseInputs()
	in.Global = grid.Dims{NX: 512, NY: 512, NZ: 256}
	in.Cores = 4096 // ~16K cells/core: fits in cache
	if cfg := Tune(in); cfg.Variant != fd.Precomp {
		t.Errorf("variant = %v, want precomp for cache-resident subgrids", cfg.Variant)
	}
}

func TestBGLKeepsSimplerComm(t *testing.T) {
	in := baseInputs()
	in.Machine = perfmodel.BGL
	in.Cores = 16384
	cfg := Tune(in)
	if cfg.Comm != solver.Asynchronous {
		t.Errorf("comm = %v on BG/L at 16K", cfg.Comm)
	}
}

func TestIOModeSwitchesWithScale(t *testing.T) {
	in := baseInputs()
	in.Cores = 4096
	if cfg := Tune(in); cfg.IOMode != PrePartitioned {
		t.Errorf("IO = %v at 4K ranks, want pre-partitioned", cfg.IOMode)
	}
	in.FS.MDSConcurrent = 10 // weak metadata server
	in.Cores = 100000
	if cfg := Tune(in); cfg.IOMode != OnDemandMPIIO {
		t.Errorf("IO = %v with weak MDS at 100K ranks, want on-demand", cfg.IOMode)
	}
	if PrePartitioned.String() == OnDemandMPIIO.String() {
		t.Error("IO mode strings aliased")
	}
}

func TestCheckpointIntervalFromMTBF(t *testing.T) {
	in := baseInputs()
	in.FailureMTBF = 5000
	cfg := Tune(in)
	if cfg.CheckpointEvery <= 0 {
		t.Fatal("checkpointing disabled despite failures")
	}
	// Young: sqrt(2*3*5000) ~ 173.
	if cfg.CheckpointEvery < 100 || cfg.CheckpointEvery > 300 {
		t.Errorf("interval = %d, want ~173", cfg.CheckpointEvery)
	}
	// More reliable system -> longer interval.
	in.FailureMTBF = 500000
	if Tune(in).CheckpointEvery <= cfg.CheckpointEvery {
		t.Error("interval not increasing with MTBF")
	}
}
