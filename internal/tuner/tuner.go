// Package tuner implements the run-time architecture adaptation of
// §III.G: AWP-ODC determines fundamental system attributes at startup and
// selects cache-blocking sizes, communication model, I/O model, buffer
// aggregation, and checkpoint policy to match the machine — "a unique
// feature [that] facilitates a run-time simulation configuration".
package tuner

import (
	"math"

	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
)

// IOMode selects the mesh-input strategy (§III.C).
type IOMode int

const (
	// PrePartitioned uses per-rank serial files (best data locality; needs
	// MDS headroom).
	PrePartitioned IOMode = iota
	// OnDemandMPIIO uses collective reads with reader/receiver
	// redistribution (best for strong collective-I/O file systems).
	OnDemandMPIIO
)

func (m IOMode) String() string {
	if m == PrePartitioned {
		return "pre-partitioned"
	}
	return "on-demand MPI-IO"
}

// Config is the tuned run-time configuration.
type Config struct {
	Variant  fd.Variant
	Blocking fd.Blocking // cache-blocking factors, also the pool tile shape
	Comm     solver.CommModel
	// Threads is the per-rank persistent worker-pool size of the hybrid
	// MPI/OpenMP execution engine (solver.Options.Threads).
	Threads int
	// CoalesceHalo selects the one-message-per-neighbor-per-phase halo
	// layout (solver.Options.CoalesceHalo) when per-message latency is
	// visible against the per-neighbor volume cost.
	CoalesceHalo    bool
	ABC             solver.ABCKind
	IOMode          IOMode
	MaxOpenFiles    int // concurrent-open throttle (§IV.E)
	AggregateSteps  int // output buffer flush interval
	OutputBufferMB  int // per-core aggregation buffer (M8 used 46 MB)
	CheckpointEvery int // steps; 0 disables (M8 disabled checkpointing)
}

// Inputs describes what the runtime can observe about the job.
type Inputs struct {
	Machine       perfmodel.Machine
	FS            pfs.Config
	Global        grid.Dims
	Cores         int
	Steps         int
	MediaGradient float64 // max relative Vs jump between neighbor cells
	FailureMTBF   int     // expected steps between failures; 0 = reliable
	// ThreadsPerRank is the hardware concurrency available to one MPI
	// rank (hybrid mode, §IV.D); 0 means one core per rank (pure MPI).
	ThreadsPerRank int
}

// Tune selects the configuration for the observed system, encoding the
// paper's decision rules.
func Tune(in Inputs) Config {
	cfg := Config{
		Variant:  fd.Blocked,
		Blocking: fd.DefaultBlocking,
	}

	// Communication: synchronous survives only on single-socket torus
	// machines at modest scale; NUMA systems need the async redesign, and
	// at scale the reduced set pays for itself (§IV.A).
	switch {
	case in.Machine.NUMAFactor <= 1 && in.Cores <= 32768:
		cfg.Comm = solver.Asynchronous // async never loses; sync merely tolerable
	case in.Cores >= 50000:
		cfg.Comm = solver.AsyncReduced
	default:
		cfg.Comm = solver.Asynchronous
	}

	// Hybrid execution engine: with spare hardware threads per rank, the
	// persistent pool makes computation/communication overlap win — the
	// interior update no longer serializes behind the exchange (§IV.C+D),
	// so overlap supersedes the flat async models.
	cfg.Threads = in.ThreadsPerRank
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Threads > 1 {
		cfg.Comm = solver.AsyncOverlap
	}

	// Message layout: coalescing cuts the per-step message count 3-4.5x
	// for one pooled-buffer indirection, so it wins whenever per-message
	// latency is visible against the per-neighbor volume cost. Enable it
	// for multi-rank runs unless the subgrid faces are so large that one
	// message latency is under ~1% of a single phase-aggregate transfer.
	if in.Cores > 1 && in.Machine.Beta > 0 {
		side := math.Cbrt(float64(in.Global.Cells()) / float64(in.Cores))
		aggBytes := 9 * side * side * float64(grid.Ghost) * 4 // all 9 fields, one face, float32
		if in.Machine.Alpha >= 0.01*aggBytes*in.Machine.Beta {
			cfg.CoalesceHalo = true
		}
	}

	// ABCs: split-field PMLs are unstable under strong media gradients
	// (§II.D); fall back to sponge layers there.
	if in.MediaGradient > 0.5 {
		cfg.ABC = solver.SpongeABC
	} else {
		cfg.ABC = solver.MPMLABC
	}

	// Small subgrids fit in cache: blocking buys nothing, skip the tiling
	// overhead (§IV.B found blocking's 7% at production sizes only).
	if in.Cores > 0 {
		cellsPerCore := float64(in.Global.Cells()) / float64(in.Cores)
		if cellsPerCore < 64*64*64 {
			cfg.Variant = fd.Precomp
		}
		// Tile shape doubles as the pool's work-unit size: the queue needs
		// ~4 tiles per worker for dynamic load balance when PML trimming
		// makes panels uneven. Halve the blocking factors (floor 2) until
		// the per-rank subgrid yields enough tiles.
		if cfg.Threads > 1 {
			side := int(math.Cbrt(cellsPerCore))
			if side < 1 {
				side = 1
			}
			tiles := func(b fd.Blocking) int {
				return ((side + b.JBlock - 1) / b.JBlock) * ((side + b.KBlock - 1) / b.KBlock)
			}
			for tiles(cfg.Blocking) < 4*cfg.Threads && (cfg.Blocking.JBlock > 2 || cfg.Blocking.KBlock > 2) {
				if cfg.Blocking.KBlock >= cfg.Blocking.JBlock {
					cfg.Blocking.KBlock /= 2
				} else {
					cfg.Blocking.JBlock /= 2
				}
			}
		}
	}

	// I/O model: per-rank pre-partitioned files need the MDS to tolerate
	// the rank count (with throttling); otherwise use collective MPI-IO
	// (§III.C: "direct I/O for strong MDS tolerance, MPI-IO for highly
	// scalable collective accesses").
	cfg.MaxOpenFiles = in.FS.MDSConcurrent
	if cfg.MaxOpenFiles <= 0 {
		cfg.MaxOpenFiles = 650 // the Jaguar policy
	}
	if in.Cores <= 50*cfg.MaxOpenFiles {
		cfg.IOMode = PrePartitioned
	} else {
		cfg.IOMode = OnDemandMPIIO
	}

	// Output aggregation: flush as rarely as memory allows (M8: every
	// 20,000 steps with 46 MB buffers).
	cfg.AggregateSteps = min(in.Steps, 20000)
	if cfg.AggregateSteps < 1 {
		cfg.AggregateSteps = 1
	}
	cfg.OutputBufferMB = 46

	// Checkpointing: Young's interval given the failure rate; disabled on
	// reliable systems (M8 ran 24 h without checkpoints to spare the FS).
	if in.FailureMTBF > 0 {
		// Checkpoint cost ~ a few steps of wall clock.
		cfg.CheckpointEvery = optimalInterval(3, in.FailureMTBF)
	}
	return cfg
}

func optimalInterval(costSteps, mtbf int) int {
	n := 1
	for n*n < 2*costSteps*mtbf {
		n++
	}
	return n
}
