package tuner

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core/attenuation"
	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
)

// The heuristic Tune above encodes the paper's Jaguar-era decision rules;
// the kernel autotuner below replaces the hard-coded {JBlock:8, KBlock:16}
// with a startup micro-benchmark on the actual machine: it sweeps kernel
// variant x blocking factors on a representative tile of the per-rank
// subgrid, picks the fastest, and caches the winner in a JSON profile keyed
// by grid shape + threads + GOMAXPROCS so later runs skip the benchmark
// entirely (awp-run -variant=auto).

// KernelChoice is the autotuned kernel configuration.
type KernelChoice struct {
	Variant  fd.Variant
	Blocking fd.Blocking
	// TemporalDepth is the autotuned super-step length: 1 is classic
	// stepping; T > 1 runs the time-skewed chunk sweep (fd.SuperStepSweep)
	// that keeps each k-chunk cache-resident for T steps.
	TemporalDepth int
	NsPerCell     float64 // measured cost per cell per step of the winner
	FromCache     bool    // true when loaded from the profile without re-benchmarking
}

// KernelSample is one micro-benchmark measurement of the sweep.
type KernelSample struct {
	Variant   string  `json:"variant"`
	JBlock    int     `json:"jblock"`
	KBlock    int     `json:"kblock"`
	TDepth    int     `json:"tdepth"`
	NsPerCell float64 `json:"ns_per_cell"`
}

// AutotuneOptions configures the kernel micro-benchmark.
type AutotuneOptions struct {
	// Dims is the per-rank subgrid shape the run will use; the benchmark
	// runs on a capped-but-representative tile of it and the profile entry
	// is keyed by the full shape.
	Dims grid.Dims
	// Threads is the per-rank worker-pool size the run will use.
	Threads int
	// Attenuation includes the memory-variable update in the benchmarked
	// sweep (it roughly doubles stress-phase traffic on the two-pass path,
	// which is exactly what the Fused variant removes — tuning without it
	// would mis-rank the candidates).
	Attenuation bool
	// LTS marks that the run uses multi-rate local time stepping, which
	// is mutually exclusive with temporal tiling: the candidate sweep is
	// restricted to depth 1 and the profile entry is keyed separately so
	// a depth > 1 winner cached by a classic run never leaks into an LTS
	// run (and vice versa).
	LTS bool
	// CachePath overrides the profile location ("" uses DefaultProfilePath).
	CachePath string
	// Quick restricts the sweep to two blockings and one timed repetition —
	// for smoke tests and CI, not production tuning.
	Quick bool

	// benchFn replaces the micro-benchmark in tests; it returns ns/cell/step
	// for one candidate.
	benchFn func(v fd.Variant, blk fd.Blocking, tdepth int) float64
}

// profileEntry is the cached winner for one key.
type profileEntry struct {
	Variant   string         `json:"variant"`
	JBlock    int            `json:"jblock"`
	KBlock    int            `json:"kblock"`
	TDepth    int            `json:"tdepth"`
	NsPerCell float64        `json:"ns_per_cell"`
	Samples   []KernelSample `json:"samples,omitempty"`
	CreatedAt string         `json:"created_at,omitempty"`
}

// profileVersion is the on-disk profile format version. Bump it whenever
// the entry schema or the meaning of a key changes (v2 added the temporal
// depth dimension); a profile with any other version — including the
// implicit 0 of pre-versioning files — is treated as a cache miss and
// rewritten, never migrated or trusted.
const profileVersion = 2

// kernelProfile is the on-disk JSON profile: one entry per machine-visible
// configuration key.
type kernelProfile struct {
	Version int                     `json:"version"`
	Entries map[string]profileEntry `json:"entries"`
}

// DefaultProfilePath is the per-user profile location
// (<user-cache-dir>/awp-odc/kernel-profile.json).
func DefaultProfilePath() (string, error) {
	dir, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("tuner: no user cache dir: %w", err)
	}
	return filepath.Join(dir, "awp-odc", "kernel-profile.json"), nil
}

// profileKey identifies a tuning configuration: the kernel ranking depends
// on the subgrid shape (cache footprint), the pool size (tile parallelism),
// the machine's scheduling width, whether attenuation rides along, and
// whether the run is LTS (which forbids temporal depth > 1).
func profileKey(d grid.Dims, threads int, atten, lts bool) string {
	a := 0
	if atten {
		a = 1
	}
	key := fmt.Sprintf("%dx%dx%d|t%d|p%d|a%d", d.NX, d.NY, d.NZ, threads, runtime.GOMAXPROCS(0), a)
	if lts {
		key += "|lts"
	}
	return key
}

// autotuneCandidates returns the (variant, blocking) sweep. Precomp is the
// unblocked baseline; Blocked/Unrolled are the paper's §IV.B ladder;
// Fused is the subslice-window engine. The blocking also shapes the pool
// tiles, so it matters for every variant.
func autotuneCandidates(quick, lts bool) []KernelChoice {
	variants := []fd.Variant{fd.Blocked, fd.Unrolled, fd.Fused}
	blockings := []fd.Blocking{
		{JBlock: 4, KBlock: 8},
		{JBlock: 8, KBlock: 8},
		{JBlock: 8, KBlock: 16}, // the paper's Jaguar tuning
		{JBlock: 16, KBlock: 16},
		{JBlock: 16, KBlock: 32},
		{JBlock: 32, KBlock: 32},
	}
	depths := []int{1, 2, 4}
	if quick {
		blockings = []fd.Blocking{{JBlock: 8, KBlock: 16}, {JBlock: 16, KBlock: 16}}
		depths = []int{1, 2}
	}
	if lts {
		depths = []int{1}
	}
	var out []KernelChoice
	for _, v := range variants {
		for _, b := range blockings {
			for _, td := range depths {
				out = append(out, KernelChoice{Variant: v, Blocking: b, TemporalDepth: td})
			}
		}
	}
	return out
}

// AutotuneKernels returns the fastest kernel configuration for the given
// subgrid, benchmarking at most once per profile key: if the cached profile
// already holds an entry for this shape/threads/GOMAXPROCS, it is returned
// immediately (FromCache=true) and no kernels run. A missing or unreadable
// profile is not an error — the benchmark runs and a fresh profile is
// written; only a failure to produce any measurement is.
func AutotuneKernels(opt AutotuneOptions) (KernelChoice, []KernelSample, error) {
	if opt.Dims.NX <= 0 || opt.Dims.NY <= 0 || opt.Dims.NZ <= 0 {
		return KernelChoice{}, nil, fmt.Errorf("tuner: invalid dims %+v", opt.Dims)
	}
	if opt.Threads <= 0 {
		opt.Threads = 1
	}
	path := opt.CachePath
	if path == "" {
		var err error
		if path, err = DefaultProfilePath(); err != nil {
			return KernelChoice{}, nil, err
		}
	}
	key := profileKey(opt.Dims, opt.Threads, opt.Attenuation, opt.LTS)

	prof := loadProfile(path)
	if e, ok := prof.Entries[key]; ok {
		if v, err := fd.ParseVariant(e.Variant); err == nil && e.TDepth >= 1 {
			return KernelChoice{
				Variant:       v,
				Blocking:      fd.Blocking{JBlock: e.JBlock, KBlock: e.KBlock},
				TemporalDepth: e.TDepth,
				NsPerCell:     e.NsPerCell,
				FromCache:     true,
			}, e.Samples, nil
		}
		// Unknown variant name or invalid depth: re-benchmark.
	}

	bench := opt.benchFn
	if bench == nil {
		bd := benchDims(opt.Dims)
		reps := 3
		if opt.Quick {
			reps = 1
		}
		env, err := newBenchEnv(bd, opt.Threads, opt.Attenuation)
		if err != nil {
			return KernelChoice{}, nil, err
		}
		defer env.close()
		bench = func(v fd.Variant, blk fd.Blocking, tdepth int) float64 {
			return env.measure(v, blk, tdepth, reps)
		}
	}

	best := KernelChoice{NsPerCell: math.Inf(1)}
	var samples []KernelSample
	for _, cand := range autotuneCandidates(opt.Quick, opt.LTS) {
		ns := bench(cand.Variant, cand.Blocking, cand.TemporalDepth)
		samples = append(samples, KernelSample{
			Variant: cand.Variant.String(),
			JBlock:  cand.Blocking.JBlock, KBlock: cand.Blocking.KBlock,
			TDepth:    cand.TemporalDepth,
			NsPerCell: ns,
		})
		if ns < best.NsPerCell {
			best = cand
			best.NsPerCell = ns
		}
	}
	if math.IsInf(best.NsPerCell, 1) {
		return KernelChoice{}, nil, fmt.Errorf("tuner: no kernel candidate produced a measurement")
	}

	if prof.Entries == nil {
		prof.Entries = map[string]profileEntry{}
	}
	prof.Entries[key] = profileEntry{
		Variant: best.Variant.String(),
		JBlock:  best.Blocking.JBlock, KBlock: best.Blocking.KBlock,
		TDepth:    best.TemporalDepth,
		NsPerCell: best.NsPerCell,
		Samples:   samples,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
	if err := saveProfile(path, prof); err != nil {
		// A read-only cache dir should not fail the run; the choice is
		// still valid, it just will not be remembered.
		return best, samples, nil
	}
	return best, samples, nil
}

// loadProfile reads the profile, returning an empty one on any error or on
// a format-version mismatch (the profile is a cache, never a source of
// truth; an unknown version — older or newer — is a miss, not an error).
func loadProfile(path string) kernelProfile {
	var p kernelProfile
	data, err := os.ReadFile(path)
	if err != nil {
		return p
	}
	if json.Unmarshal(data, &p) != nil || p.Version != profileVersion {
		return kernelProfile{}
	}
	return p
}

// saveProfile writes the profile atomically (temp file + rename), always
// stamping the current format version.
func saveProfile(path string, p kernelProfile) error {
	p.Version = profileVersion
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".kernel-profile-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// benchDims caps the benchmark tile so tuning stays a startup cost (a few
// hundred ms) even for production subgrids, while keeping the real shape's
// aspect when it is smaller than the cap.
func benchDims(d grid.Dims) grid.Dims {
	cap := func(n int) int {
		if n > 48 {
			return 48
		}
		return n
	}
	return grid.Dims{NX: cap(d.NX), NY: cap(d.NY), NZ: cap(d.NZ)}
}

// benchEnv owns the state reused across candidate measurements.
type benchEnv struct {
	dims  grid.Dims
	med   *medium.Medium
	state *fd.State
	atten *attenuation.Model
	pool  *sched.Pool
	dt    float64
}

func newBenchEnv(d grid.Dims, threads int, useAtten bool) (*benchEnv, error) {
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		return nil, fmt.Errorf("tuner: bench decomp: %w", err)
	}
	m := medium.FromCVM(cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}), dc, dc.SubFor(0), 100)
	env := &benchEnv{dims: d, med: m, state: fd.NewState(d), pool: sched.NewPool(threads)}
	env.dt = m.StableDt(0.5)
	if useAtten {
		env.atten = attenuation.New(m, attenuation.DefaultBand, env.dt)
	}
	// Non-zero field values so the kernels stream realistic data (denormal
	// flushing aside, the timing is value-independent).
	for _, f := range env.state.Fields() {
		data := f.Data()
		for n := range data {
			data[n] = float32(n%251) * 1e-5
		}
	}
	return env, nil
}

func (e *benchEnv) close() { e.pool.Close() }

// measure times the candidate and returns the best ns/cell/step over reps
// timed repetitions (after one warmup). Using the minimum rejects
// scheduler noise — the quantity of interest is the kernel's cost, not
// the machine's worst case. At tdepth 1 a repetition is one full
// velocity+stress(+attenuation) sweep; at tdepth > 1 it is one
// time-skewed super-step (fd.SuperStepSweep) advancing tdepth steps, and
// the measured time is divided by tdepth so depths rank on equal terms.
func (e *benchEnv) measure(v fd.Variant, blk fd.Blocking, tdepth, reps int) float64 {
	box := fd.FullBox(e.dims)
	velocity := func(b fd.Box) {
		fd.UpdateVelocityTiled(e.state, e.med, e.dt, b, v, blk, e.pool)
	}
	stress := func(b fd.Box) {
		if e.atten != nil {
			if v == fd.Fused {
				e.atten.FusedStressTiled(e.state, e.med, e.dt, b, blk, e.pool)
			} else {
				fd.UpdateStressTiled(e.state, e.med, e.dt, b, v, blk, e.pool)
				e.atten.ApplyTiled(e.state, e.med, e.dt, b, blk, e.pool)
			}
		} else {
			fd.UpdateStressTiled(e.state, e.med, e.dt, b, v, blk, e.pool)
		}
	}
	nsteps := 1.0
	var step func()
	if tdepth <= 1 {
		step = func() {
			velocity(box)
			stress(box)
		}
	} else {
		nsteps = float64(tdepth)
		step = func() {
			fd.SuperStepSweep(e.dims, tdepth, blk.KBlock, velocity, stress)
		}
	}
	step() // warmup: page in fields, settle the pool
	cells := float64(box.Cells()) * nsteps
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		step()
		if ns := time.Since(t0).Seconds() * 1e9 / cells; ns < best {
			best = ns
		}
	}
	return best
}
