package pfs

import (
	"bytes"
	"testing"
)

func testFS() *FS {
	return New(Config{OSTs: 8, OSTBandwidth: 100e6, MDSLatency: 1e-3, MDSConcurrent: 16})
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := testFS()
	fs.WriteAt("a/mesh.bin", 10, []byte("hello"))
	buf := make([]byte, 5)
	if err := fs.ReadAt("a/mesh.bin", 10, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("hello")) {
		t.Fatalf("got %q", buf)
	}
	if fs.Size("a/mesh.bin") != 15 {
		t.Fatalf("size = %d", fs.Size("a/mesh.bin"))
	}
	// Sparse region reads as zeros.
	z := make([]byte, 10)
	if err := fs.ReadAt("a/mesh.bin", 0, z); err != nil {
		t.Fatal(err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestReadErrors(t *testing.T) {
	fs := testFS()
	if err := fs.ReadAt("none", 0, make([]byte, 1)); err == nil {
		t.Error("missing file read succeeded")
	}
	fs.WriteAt("f", 0, []byte{1, 2, 3})
	if err := fs.ReadAt("f", 2, make([]byte, 5)); err == nil {
		t.Error("beyond-EOF read succeeded")
	}
}

func TestOverlappingWrites(t *testing.T) {
	fs := testFS()
	fs.WriteAt("f", 0, []byte{1, 1, 1, 1})
	fs.WriteAt("f", 2, []byte{9, 9})
	buf := make([]byte, 4)
	fs.ReadAt("f", 0, buf)
	if !bytes.Equal(buf, []byte{1, 1, 9, 9}) {
		t.Fatalf("got %v", buf)
	}
}

func TestListRemoveExists(t *testing.T) {
	fs := testFS()
	fs.WriteAt("b", 0, []byte{1})
	fs.WriteAt("a", 0, []byte{1})
	l := fs.List()
	if len(l) != 2 || l[0] != "a" || l[1] != "b" {
		t.Fatalf("List = %v", l)
	}
	if !fs.Exists("a") {
		t.Error("a should exist")
	}
	fs.Remove("a")
	if fs.Exists("a") {
		t.Error("a should be gone")
	}
}

func TestStripeInheritance(t *testing.T) {
	fs := testFS()
	fs.SetStripe("out/", 4, 1024)
	fs.WriteAt("out/vol.bin", 0, make([]byte, 10))
	fs.WriteAt("in/mesh.bin", 0, make([]byte, 10))
	if f := fs.files["out/vol.bin"]; f.stripeCount != 4 || f.stripeSize != 1024 {
		t.Fatalf("out stripe = %d/%d", f.stripeCount, f.stripeSize)
	}
	if f := fs.files["in/mesh.bin"]; f.stripeCount != 1 {
		t.Fatalf("default stripe = %d", f.stripeCount)
	}
}

func TestStripingSpreadsLoad(t *testing.T) {
	fs := testFS()
	fs.SetStripe("wide/", 0, 1<<10) // all OSTs
	fs.SetStripe("narrow/", 1, 1<<10)
	fs.WriteAt("wide/f", 0, make([]byte, 1))
	fs.WriteAt("narrow/f", 0, make([]byte, 1))
	sz := 1 << 20
	wide := fs.SimulatePhase([]Op{{Path: "wide/f", Bytes: sz, Write: true}})
	narrow := fs.SimulatePhase([]Op{{Path: "narrow/f", Bytes: sz, Write: true}})
	if !(wide.IOTime < narrow.IOTime/4) {
		t.Fatalf("striping gave no speedup: wide %g vs narrow %g", wide.IOTime, narrow.IOTime)
	}
	if wide.Throughput <= narrow.Throughput {
		t.Fatal("wide stripe throughput not higher")
	}
}

func TestMDSContentionDegradesSuperlinearly(t *testing.T) {
	fs := testFS() // MDSConcurrent = 16
	mkOps := func(n int) []Op {
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = Op{Path: "ckpt/f", Bytes: 0, Open: true}
		}
		return ops
	}
	within := fs.SimulatePhase(mkOps(16))
	over := fs.SimulatePhase(mkOps(64)) // 4x the opens
	// Superlinear: 4x opens with 16x degradation factor -> 64x MDS time.
	ratio := over.MDSTime / within.MDSTime
	if ratio < 16 {
		t.Fatalf("MDS degradation ratio %g, want superlinear (>16)", ratio)
	}
}

// Reader throttling (§IV.E): reading the same volume with opens capped at
// the MDS limit, in several waves, beats opening everything at once.
func TestThrottledOpensBeatUnthrottled(t *testing.T) {
	fs := New(Config{OSTs: 64, OSTBandwidth: 100e6, MDSLatency: 1e-3, MDSConcurrent: 50})
	fs.SetStripe("parts/", 1, 1<<20)
	nFiles := 400
	perFile := 1 << 20
	for i := 0; i < nFiles; i++ {
		fs.WriteAt(pathN(i), 0, make([]byte, 1))
	}
	// Unthrottled: all 400 opens in one phase.
	var all []Op
	for i := 0; i < nFiles; i++ {
		all = append(all, Op{Path: pathN(i), Bytes: perFile, Open: true})
	}
	unthrottled := fs.SimulatePhase(all).Elapsed

	// Throttled: waves of 50.
	var throttled float64
	for w := 0; w < nFiles; w += 50 {
		throttled += fs.SimulatePhase(all[w : w+50]).Elapsed
	}
	if throttled >= unthrottled {
		t.Fatalf("throttling did not help: %g vs %g", throttled, unthrottled)
	}
}

func pathN(i int) string {
	return "parts/mesh." + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

func TestSimulatePhaseStripeAccounting(t *testing.T) {
	fs := testFS()
	fs.SetStripe("s/", 4, 100)
	fs.WriteAt("s/f", 0, make([]byte, 1))
	st := fs.SimulatePhase([]Op{{Path: "s/f", Bytes: 400, Off: 0, Write: true}})
	// 400 bytes over 4 stripes of 100 -> 100 bytes per OST.
	if st.MaxOSTLoad != 100 {
		t.Fatalf("MaxOSTLoad = %g, want 100", st.MaxOSTLoad)
	}
	if st.Bytes != 400 {
		t.Fatalf("Bytes = %d", st.Bytes)
	}
}

func TestJaguarConfigSane(t *testing.T) {
	cfg := Jaguar()
	if cfg.OSTs != 670 || cfg.MDSConcurrent != 650 {
		t.Fatalf("Jaguar config = %+v", cfg)
	}
	// Aggregate bandwidth ~ 20 GB/s as the paper measured.
	agg := float64(cfg.OSTs) * cfg.OSTBandwidth
	if agg < 15e9 || agg > 30e9 {
		t.Fatalf("aggregate bandwidth %g implausible vs 20 GB/s", agg)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestStripeForDeterministicTieBreak(t *testing.T) {
	// Longest matching prefix wins regardless of registration order, and
	// the resolution never depends on map iteration order: run many
	// freshly built file systems and demand identical answers.
	for trial := 0; trial < 50; trial++ {
		fs := testFS()
		fs.SetStripe("out/", 2, 1<<20)
		fs.SetStripe("out/deep/", 4, 2<<20)
		fs.SetStripe("o", 8, 4<<20)
		if c, s := fs.Stripe("out/deep/file"); c != 4 || s != 2<<20 {
			t.Fatalf("trial %d: out/deep/file -> (%d,%d), want (4,%d)", trial, c, s, 2<<20)
		}
		if c, s := fs.Stripe("out/file"); c != 2 || s != 1<<20 {
			t.Fatalf("trial %d: out/file -> (%d,%d), want (2,%d)", trial, c, s, 1<<20)
		}
		if c, s := fs.Stripe("other"); c != 8 || s != 4<<20 {
			t.Fatalf("trial %d: other -> (%d,%d), want (8,%d)", trial, c, s, 4<<20)
		}
		if c, s := fs.Stripe("elsewhere"); c != 1 || s != 1<<20 {
			t.Fatalf("trial %d: elsewhere -> defaults, got (%d,%d)", trial, c, s)
		}
	}
}

func TestStripeReportsExistingFileGeometry(t *testing.T) {
	fs := testFS()
	fs.SetStripe("d/", 4, 2<<20)
	fs.WriteAt("d/f", 0, []byte{1})
	// Re-striping the directory must not retroactively change the file.
	fs.SetStripe("d/", 8, 1<<20)
	if c, s := fs.Stripe("d/f"); c != 4 || s != 2<<20 {
		t.Fatalf("existing file -> (%d,%d), want creation-time (4,%d)", c, s, 2<<20)
	}
	if c, s := fs.Stripe("d/new"); c != 8 || s != 1<<20 {
		t.Fatalf("new path -> (%d,%d), want current (8,%d)", c, s, 1<<20)
	}
}
