// Package pfs simulates a parallel file system (Lustre/GPFS-like) — the
// substrate for the paper's I/O engineering (§III.C, §IV.E). Files hold
// real bytes in memory; every operation also accrues *virtual* cost from a
// performance model with object storage targets (OSTs), striping, and a
// metadata server (MDS) whose service degrades under excessive concurrent
// opens — the failure mode that motivated AWP-ODC's reader throttling
// (limit ~650 concurrent opens on Jaguar) and I/O aggregation.
package pfs

import (
	"fmt"
	"sort"
	"sync"
)

// Config sets the performance model.
type Config struct {
	OSTs          int     // object storage targets (670 on Jaguar)
	OSTBandwidth  float64 // bytes/s per OST
	MDSLatency    float64 // seconds per metadata op at low load
	MDSConcurrent int     // opens the MDS sustains before degrading
}

// Jaguar returns the model parameters of the NCCS Jaguar Lustre system:
// 670 OSTs, ~32 MB/s effective per-OST stream bandwidth (20 GB/s in
// aggregate), and an MDS comfortable up to ~650 concurrent opens.
func Jaguar() Config {
	return Config{OSTs: 670, OSTBandwidth: 32e6, MDSLatency: 1e-3, MDSConcurrent: 650}
}

// FS is the simulated file system.
type FS struct {
	mu    sync.Mutex
	cfg   Config
	files map[string]*file
	// Default striping for newly created files.
	defStripeCount int
	defStripeSize  int
	// Directory-level stripe settings (longest-prefix match), the
	// `lfs setstripe` emulation.
	dirStripes map[string][2]int
	// faults, when non-nil, injects transient I/O failures (faults.go).
	faults *faultEngine
}

type file struct {
	data        []byte
	stripeCount int
	stripeSize  int
	ostBase     int
}

// New creates an empty file system.
func New(cfg Config) *FS {
	if cfg.OSTs <= 0 || cfg.OSTBandwidth <= 0 {
		panic(fmt.Sprintf("pfs: invalid config %+v", cfg))
	}
	if cfg.MDSConcurrent <= 0 {
		cfg.MDSConcurrent = 1
	}
	return &FS{
		cfg:            cfg,
		files:          map[string]*file{},
		defStripeCount: 1,
		defStripeSize:  1 << 20,
		dirStripes:     map[string][2]int{},
	}
}

// SetStripe sets the striping for files subsequently created under the
// directory prefix (the lfs setstripe analogue). count is clamped to the
// number of OSTs; count <= 0 means "all OSTs".
func (fs *FS) SetStripe(dirPrefix string, count, size int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if count <= 0 || count > fs.cfg.OSTs {
		count = fs.cfg.OSTs
	}
	if size <= 0 {
		size = 1 << 20
	}
	fs.dirStripes[dirPrefix] = [2]int{count, size}
}

// stripeFor resolves striping for a new file path by longest-prefix
// match. Resolution is deterministic: the longest matching prefix wins,
// and equal-length matches tie-break to the lexicographically smallest
// prefix (never map iteration order).
func (fs *FS) stripeFor(path string) (count, size int) {
	best := ""
	found := false
	count, size = fs.defStripeCount, fs.defStripeSize
	for prefix, cs := range fs.dirStripes {
		if len(prefix) > len(path) || path[:len(prefix)] != prefix {
			continue
		}
		if !found || len(prefix) > len(best) || (len(prefix) == len(best) && prefix < best) {
			best = prefix
			found = true
			count, size = cs[0], cs[1]
		}
	}
	return
}

// Stripe reports the striping geometry of the file at path, or — for a
// path with no file yet — the geometry a file created there would get.
// The aggregation layer uses it to place one writer per stripe-aligned
// file extent.
func (fs *FS) Stripe(path string) (count, size int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f := fs.files[path]; f != nil {
		return f.stripeCount, f.stripeSize
	}
	return fs.stripeFor(path)
}

// create makes the file if absent (caller holds the lock).
func (fs *FS) create(path string) *file {
	f := fs.files[path]
	if f == nil {
		count, size := fs.stripeFor(path)
		f = &file{stripeCount: count, stripeSize: size, ostBase: hashPath(path) % fs.cfg.OSTs}
		fs.files[path] = f
	}
	return f
}

func hashPath(p string) int {
	h := 2166136261
	for i := 0; i < len(p); i++ {
		h = (h ^ int(p[i])) * 16777619 & 0x7fffffff
	}
	return h
}

// WriteAt stores data at offset, growing the file as needed. With a
// FaultPlan armed it may fail transiently (nothing or only a prefix
// persisted — retryable via RetryPolicy) or tear silently (prefix
// persisted, nil returned — only end-to-end checksums catch that).
// Without a plan it always succeeds.
func (fs *FS) WriteAt(path string, off int, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fe := fs.faults; fe != nil {
		if fs.files[path] == nil && fe.drawMDS() {
			return &TransientError{Op: "create", Path: path}
		}
		fate, n := fe.drawWrite(len(data))
		switch fate {
		case wfFail:
			return &TransientError{Op: "write", Path: path}
		case wfShort:
			fs.writeLocked(path, off, data[:n])
			return &TransientError{Op: "write", Path: path}
		case wfTorn:
			fs.writeLocked(path, off, data[:n])
			return nil
		}
	}
	fs.writeLocked(path, off, data)
	return nil
}

// writeLocked persists data at offset; caller holds the lock.
func (fs *FS) writeLocked(path string, off int, data []byte) {
	f := fs.create(path)
	if need := off + len(data); need > len(f.data) {
		grown := make([]byte, need)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], data)
}

// Rename atomically replaces newPath with oldPath's file — the metadata
// operation behind the checkpoint writer's write-temp-then-rename
// protocol. A reader never observes a half-written file at newPath: it
// sees the old content (or nothing) until the rename commits. With a
// FaultPlan armed, the MDS may time out with no side effect (retryable).
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[oldPath]
	if f == nil {
		return fmt.Errorf("pfs: rename %s: no such file", oldPath)
	}
	if fe := fs.faults; fe != nil && fe.drawMDS() {
		return &TransientError{Op: "rename", Path: oldPath}
	}
	delete(fs.files, oldPath)
	fs.files[newPath] = f
	return nil
}

// ReadAt reads len(buf) bytes at offset; it returns an error if the range
// is not fully populated. With a FaultPlan armed it may fail transiently
// (nothing delivered, retryable via RetryPolicy) — the MDS/OST read
// hiccup that kills an unprotected restart.
func (fs *FS) ReadAt(path string, off int, buf []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path]
	if f == nil {
		return fmt.Errorf("pfs: %s: no such file", path)
	}
	if off+len(buf) > len(f.data) {
		return fmt.Errorf("pfs: %s: read [%d,%d) beyond EOF %d", path, off, off+len(buf), len(f.data))
	}
	if fe := fs.faults; fe != nil && fe.drawRead() {
		return &TransientError{Op: "read", Path: path}
	}
	copy(buf, f.data[off:])
	return nil
}

// Size returns the file size or -1 if absent.
func (fs *FS) Size(path string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path]
	if f == nil {
		return -1
	}
	return len(f.data)
}

// Exists reports whether the file exists.
func (fs *FS) Exists(path string) bool { return fs.Size(path) >= 0 }

// Remove deletes a file.
func (fs *FS) Remove(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, path)
}

// List returns all file paths, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Op is one I/O request in a synchronized phase of a parallel job.
type Op struct {
	Path  string
	Bytes int
	Off   int
	Write bool
	Open  bool // whether this op pays a file-open metadata cost
}

// PhaseStats is the virtual-time outcome of a synchronized I/O phase in
// which all listed ops proceed concurrently.
type PhaseStats struct {
	Elapsed    float64 // seconds: MDS time + slowest-OST transfer time
	MDSTime    float64
	IOTime     float64
	Bytes      int
	Throughput float64 // bytes/s aggregate
	MaxOSTLoad float64 // bytes on the most loaded OST
}

// SimulatePhase prices one synchronized parallel I/O phase: all ops start
// together; opens queue at the MDS (degrading superlinearly beyond the
// concurrency limit); bytes stripe across OSTs and the slowest OST gates
// completion. Data is not moved — pair with ReadAt/WriteAt for content.
func (fs *FS) SimulatePhase(ops []Op) PhaseStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var st PhaseStats
	ostBytes := make([]float64, fs.cfg.OSTs)
	opens := 0
	for _, op := range ops {
		if op.Open {
			opens++
		}
		st.Bytes += op.Bytes
		f := fs.files[op.Path]
		count, size, base := fs.defStripeCount, fs.defStripeSize, hashPath(op.Path)%fs.cfg.OSTs
		if f != nil {
			count, size, base = f.stripeCount, f.stripeSize, f.ostBase
		}
		// Distribute the byte range across the file's stripe set.
		stripe := (op.Off / size) % count
		remaining := op.Bytes
		off := op.Off
		for remaining > 0 {
			chunk := size - off%size
			if chunk > remaining {
				chunk = remaining
			}
			ost := (base + stripe) % fs.cfg.OSTs
			ostBytes[ost] += float64(chunk)
			remaining -= chunk
			off += chunk
			stripe = (stripe + 1) % count
		}
	}
	// MDS: service is serial at MDSLatency per op while load <= limit;
	// beyond the limit, lock contention degrades it quadratically (the
	// observed >100K-file pathology, §IV.E).
	if opens > 0 {
		factor := 1.0
		if opens > fs.cfg.MDSConcurrent {
			over := float64(opens) / float64(fs.cfg.MDSConcurrent)
			factor = over * over
		}
		st.MDSTime = float64(opens) * fs.cfg.MDSLatency * factor / float64(fs.cfg.MDSConcurrent)
	}
	for _, b := range ostBytes {
		if b > st.MaxOSTLoad {
			st.MaxOSTLoad = b
		}
	}
	st.IOTime = st.MaxOSTLoad / fs.cfg.OSTBandwidth
	st.Elapsed = st.MDSTime + st.IOTime
	if st.Elapsed > 0 {
		st.Throughput = float64(st.Bytes) / st.Elapsed
	}
	return st
}
