package pfs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFailedWriteLeavesNothing(t *testing.T) {
	fs := New(Jaguar())
	fs.InjectFaults(FaultPlan{Seed: 1, WriteFailProb: 1, MaxConsecutive: 1 << 30})
	err := fs.WriteAt("f", 0, []byte{1, 2, 3})
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if fs.Exists("f") {
		t.Fatal("failed write must not create the file")
	}
	if st := fs.FaultStats(); st.FailedWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShortWritePersistsPrefixAndErrors(t *testing.T) {
	fs := New(Jaguar())
	fs.InjectFaults(FaultPlan{Seed: 5, ShortWriteProb: 1, MaxConsecutive: 1 << 30})
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	err := fs.WriteAt("f", 0, data)
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	n := fs.Size("f")
	if n <= 0 || n >= len(data) {
		t.Fatalf("short write persisted %d of %d bytes, want a strict prefix", n, len(data))
	}
	got := make([]byte, n)
	if err := fs.ReadAt("f", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:n]) {
		t.Fatalf("prefix mismatch: %v vs %v", got, data[:n])
	}
}

func TestTornWriteReportsSuccess(t *testing.T) {
	fs := New(Jaguar())
	fs.InjectFaults(FaultPlan{Seed: 9, TornWriteProb: 1, MaxConsecutive: 1 << 30})
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := fs.WriteAt("f", 0, data); err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	if n := fs.Size("f"); n >= len(data) {
		t.Fatalf("torn write persisted all %d bytes", n)
	}
	if st := fs.FaultStats(); st.TornWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMDSTimeoutOnCreateAndRename(t *testing.T) {
	fs := New(Jaguar())
	if err := fs.WriteAt("existing", 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	fs.InjectFaults(FaultPlan{Seed: 2, MDSTimeoutProb: 1, MaxConsecutive: 1 << 30})
	if err := fs.WriteAt("newfile", 0, []byte{1}); !IsTransient(err) {
		t.Fatalf("create: err = %v, want transient MDS timeout", err)
	}
	if fs.Exists("newfile") {
		t.Fatal("timed-out create must have no side effect")
	}
	if err := fs.Rename("existing", "moved"); !IsTransient(err) {
		t.Fatalf("rename: err = %v, want transient MDS timeout", err)
	}
	if !fs.Exists("existing") || fs.Exists("moved") {
		t.Fatal("timed-out rename must have no side effect")
	}
}

func TestRenameCommitsAtomically(t *testing.T) {
	fs := New(Jaguar())
	if err := fs.WriteAt("dir/f.tmp", 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("dir/f", 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("dir/f.tmp", "dir/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("dir/f.tmp") {
		t.Fatal("temp file survived rename")
	}
	got := make([]byte, 3)
	if err := fs.ReadAt("dir/f", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("content = %v after rename", got)
	}
	if err := fs.Rename("missing", "x"); err == nil || IsTransient(err) {
		t.Fatalf("rename of missing file: err = %v, want permanent error", err)
	}
}

func TestMaxConsecutiveBoundsFaultRuns(t *testing.T) {
	fs := New(Jaguar())
	fs.InjectFaults(FaultPlan{Seed: 3, WriteFailProb: 1, MaxConsecutive: 2})
	fails := 0
	for i := 0; i < 3; i++ {
		if err := fs.WriteAt("f", 0, []byte{1, 2}); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("got %d failures in 3 writes, want exactly 2 (bound forces 3rd clean)", fails)
	}
}

func TestRetryHealsTransientFaults(t *testing.T) {
	fs := New(Jaguar())
	fs.InjectFaults(FaultPlan{Seed: 4, WriteFailProb: 0.6, ShortWriteProb: 0.3, MaxConsecutive: 2})
	var slept []time.Duration
	pol := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	data := []byte{10, 20, 30, 40}
	for i := 0; i < 50; i++ {
		if err := pol.Do(func() error { return fs.WriteAt("f", 0, data) }); err != nil {
			t.Fatalf("write %d not healed by retry: %v", i, err)
		}
	}
	got := make([]byte, len(data))
	if err := fs.ReadAt("f", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("content = %v, want %v", got, data)
	}
	if len(slept) == 0 {
		t.Fatal("no retries happened at 90% fault probability")
	}
	if st := fs.FaultStats(); st.FailedWrites+st.ShortWrites == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryGivesUpBounded(t *testing.T) {
	calls := 0
	pol := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Nanosecond, Sleep: func(time.Duration) {}}
	err := pol.Do(func() error { calls++; return &TransientError{Op: "write", Path: "f"} })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if err == nil || !IsTransient(err) {
		t.Fatalf("err = %v, want wrapped transient", err)
	}
}

func TestRetryPassesThroughPermanentErrors(t *testing.T) {
	perm := errors.New("disk on fire")
	calls := 0
	err := DefaultRetry().Do(func() error { calls++; return perm })
	if calls != 1 || !errors.Is(err, perm) {
		t.Fatalf("calls=%d err=%v, want immediate pass-through", calls, err)
	}
}

func TestFaultsDeterministic(t *testing.T) {
	run := func() FaultStats {
		fs := New(Jaguar())
		fs.InjectFaults(FaultPlan{Seed: 77, WriteFailProb: 0.3, ShortWriteProb: 0.2, TornWriteProb: 0.1, MDSTimeoutProb: 0.1})
		for i := 0; i < 100; i++ {
			fs.WriteAt("f", i, []byte{1, 2, 3, 4})
		}
		return fs.FaultStats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different faults:\n a=%+v\n b=%+v", a, b)
	}
	if a.FailedWrites == 0 || a.ShortWrites == 0 || a.TornWrites == 0 {
		t.Fatalf("expected all write fault classes to fire: %+v", a)
	}
}

// TestConcurrentOpensUnderRace drives SimulatePhase and data-plane
// writes from many goroutines at once — the MDS-degradation model must
// be safe under concurrent opens (run with -race).
func TestConcurrentOpensUnderRace(t *testing.T) {
	fs := New(Config{OSTs: 8, OSTBandwidth: 1e6, MDSLatency: 1e-3, MDSConcurrent: 4})
	fs.InjectFaults(FaultPlan{Seed: 8, WriteFailProb: 0.2, MDSTimeoutProb: 0.1})
	const workers = 16
	var wg sync.WaitGroup
	elapsed := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pol := RetryPolicy{MaxAttempts: 8, BaseDelay: time.Nanosecond, Sleep: func(time.Duration) {}}
			for i := 0; i < 20; i++ {
				path := "dir/file" + string(rune('a'+w))
				if err := pol.Do(func() error { return fs.WriteAt(path, i*4, []byte{1, 2, 3, 4}) }); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				st := fs.SimulatePhase([]Op{{Path: path, Bytes: 4, Off: i * 4, Write: true, Open: true}})
				elapsed[w] += st.Elapsed
			}
		}(w)
	}
	wg.Wait()
	for w, e := range elapsed {
		if e <= 0 {
			t.Fatalf("worker %d accrued no virtual time", w)
		}
	}
}

// TestStripePrefixEdgeCases pins the longest-prefix-match resolution of
// directory stripe settings, including nested prefixes, the empty (root)
// prefix, and a prefix longer than the path.
func TestStripePrefixEdgeCases(t *testing.T) {
	fs := New(Config{OSTs: 64, OSTBandwidth: 1e6, MDSLatency: 1e-3, MDSConcurrent: 4})
	fs.SetStripe("", 2, 1<<10)           // root default
	fs.SetStripe("out/", 4, 1<<10)       // mid prefix
	fs.SetStripe("out/ckpt/", 8, 1<<10)  // nested, longer prefix wins
	fs.SetStripe("out/ckpt/deep/very/long/prefix/", 16, 1<<10)

	cases := []struct {
		path  string
		count int
	}{
		{"misc", 2},                // only root matches
		{"out/x", 4},               // mid prefix
		{"out/ckpt/r0", 8},         // nested beats mid
		{"out/ckptX", 4},           // "out/ckpt/" is NOT a prefix of this
		{"out/", 4},                // path exactly equals the prefix
		{"ou", 2},                  // prefix longer than path cannot match
		{"out/ckpt/deep/very/long/prefix/f", 16},
	}
	for _, tc := range cases {
		fs.WriteAt(tc.path, 0, []byte{1})
		fs.mu.Lock()
		got := fs.files[tc.path].stripeCount
		fs.mu.Unlock()
		if got != tc.count {
			t.Errorf("%s: stripeCount = %d, want %d", tc.path, got, tc.count)
		}
	}
}

// TestStripeZeroAndOversizeCountClamps pins the "count <= 0 means all
// OSTs" rule and the clamp of counts beyond the OST pool.
func TestStripeZeroAndOversizeCountClamps(t *testing.T) {
	fs := New(Config{OSTs: 16, OSTBandwidth: 1e6, MDSLatency: 1e-3, MDSConcurrent: 4})
	fs.SetStripe("all/", 0, 0)
	fs.SetStripe("big/", 999, 1<<20)
	for _, path := range []string{"all/f", "big/f"} {
		fs.WriteAt(path, 0, []byte{1})
		fs.mu.Lock()
		got := fs.files[path].stripeCount
		fs.mu.Unlock()
		if got != 16 {
			t.Errorf("%s: stripeCount = %d, want clamp to 16 OSTs", path, got)
		}
	}
}

func TestReadFaultTransientAndRetryable(t *testing.T) {
	fs := New(Jaguar())
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := fs.WriteAt("f", 0, data); err != nil {
		t.Fatal(err)
	}
	fs.InjectFaults(FaultPlan{Seed: 3, ReadFailProb: 1, MaxConsecutive: 1})
	buf := make([]byte, len(data))
	err := fs.ReadAt("f", 0, buf)
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient read fault", err)
	}
	if st := fs.FaultStats(); st.FailedReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// MaxConsecutive=1 guarantees the immediate retry succeeds, so the
	// default retry policy heals the fault.
	p := DefaultRetry()
	p.Sleep = func(time.Duration) {}
	if err := p.Do(func() error { return fs.ReadAt("f", 0, buf) }); err != nil {
		t.Fatalf("retry did not heal read fault: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %v, want %v", buf, data)
	}
}

func TestReadFaultNeverFiresDisarmed(t *testing.T) {
	// A zero ReadFailProb must not consume randomness, so write-fault
	// sequences are identical with and without the read class configured.
	trace := func(plan FaultPlan) []bool {
		fs := New(Jaguar())
		fs.InjectFaults(plan)
		var outcome []bool
		buf := make([]byte, 4)
		for i := 0; i < 64; i++ {
			err := fs.WriteAt("f", 0, []byte{1, 2, 3, 4})
			outcome = append(outcome, err == nil)
			fs.ReadAt("f", 0, buf)
		}
		return outcome
	}
	a := trace(FaultPlan{Seed: 11, WriteFailProb: 0.3})
	b := trace(FaultPlan{Seed: 11, WriteFailProb: 0.3, ReadFailProb: 0})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("write-fault trace diverged at op %d", i)
		}
	}
}
