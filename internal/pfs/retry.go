package pfs

import (
	"fmt"
	"time"
)

// RetryPolicy is a bounded exponential-backoff retry loop for transient
// I/O faults, shared by the checkpoint writer and the MPI-IO layer. Only
// *TransientError failures are retried; anything else aborts immediately.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (default 5).
	MaxAttempts int
	// BaseDelay is the first backoff; it doubles per retry (default 50µs).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5ms).
	MaxDelay time.Duration
	// Sleep is a test hook; nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetry is the policy used by checkpoint and mpiio.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Microsecond, MaxDelay: 5 * time.Millisecond}
}

// Do runs op, retrying transient failures with exponential backoff. It
// returns nil on the first success, the original error for non-transient
// failures, and a wrapped "giving up" error when the attempt budget is
// exhausted (still IsTransient, so callers can classify).
func (p RetryPolicy) Do(op func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	delay := p.BaseDelay
	if delay <= 0 {
		delay = 50 * time.Microsecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Millisecond
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		if i < attempts-1 {
			sleep(delay)
			delay *= 2
			if delay > maxDelay {
				delay = maxDelay
			}
		}
	}
	return fmt.Errorf("pfs: giving up after %d attempts: %w", attempts, err)
}
