// Transient I/O fault injection — the storage half of the distributed
// chaos harness. A FaultPlan armed on an FS perturbs writes and metadata
// operations with the failure modes week-long Lustre campaigns actually
// see (§III.F motivation):
//
//   - failed write: the OST rejects the request; nothing is persisted and
//     the caller gets a *TransientError (retryable);
//   - short write: only a seeded prefix of the payload lands before the
//     error — a retry that rewrites the full range heals it;
//   - torn write: a seeded prefix lands and the call REPORTS SUCCESS —
//     the silent-corruption case that only end-to-end verification
//     (the checkpoint CRC64 trailer) can catch;
//   - MDS timeout: file creation or rename times out at the metadata
//     server with no side effect (retryable).
//
// Decisions come from one seeded rand.Rand guarded by the FS mutex, so a
// given (plan, operation sequence) faults identically on every run.
package pfs

import (
	"errors"
	"fmt"
	"math/rand"
)

// FaultPlan configures deterministic transient-fault injection. The zero
// value of each probability disables that fault class.
type FaultPlan struct {
	// Seed drives every decision; same seed + same op sequence = same
	// faults.
	Seed int64

	// WriteFailProb is the per-write probability of a rejected write
	// (nothing persisted, *TransientError returned).
	WriteFailProb float64
	// ShortWriteProb is the per-write probability that only a prefix is
	// persisted before the error.
	ShortWriteProb float64
	// TornWriteProb is the per-write probability that only a prefix is
	// persisted and the write still reports success.
	TornWriteProb float64
	// MDSTimeoutProb is the per-metadata-op (file create, rename)
	// probability of a timeout with no side effect.
	MDSTimeoutProb float64
	// ReadFailProb is the per-read probability of a transient failure
	// with nothing delivered (retryable) — the restart-killing read
	// hiccup of an overloaded MDS/OST.
	ReadFailProb float64

	// MaxConsecutive bounds back-to-back injected faults (default 2), so
	// a bounded retry loop always converges.
	MaxConsecutive int
}

// FaultStats counts injected faults since the plan was armed.
type FaultStats struct {
	FailedWrites uint64
	ShortWrites  uint64
	TornWrites   uint64
	MDSTimeouts  uint64
	FailedReads  uint64
}

// TransientError marks a retryable injected I/O failure. Use IsTransient
// (or errors.As) to classify; RetryPolicy.Do retries exactly these.
type TransientError struct {
	Op   string // "write", "create", "rename"
	Path string
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("pfs: transient %s fault on %s", e.Op, e.Path)
}

// IsTransient reports whether err wraps a *TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// faultEngine is the per-FS injection state; fs.mu guards it.
type faultEngine struct {
	plan   FaultPlan
	rng    *rand.Rand
	consec int
	stats  FaultStats
}

// writeFate is one write operation's injected outcome.
type writeFate int

const (
	wfOK writeFate = iota
	wfFail
	wfShort
	wfTorn
)

func newFaultEngine(plan FaultPlan) *faultEngine {
	if plan.MaxConsecutive <= 0 {
		plan.MaxConsecutive = 2
	}
	return &faultEngine{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// drawWrite decides one write's fate and, for partial outcomes, how many
// of n bytes land. Caller holds fs.mu.
func (e *faultEngine) drawWrite(n int) (writeFate, int) {
	if e.consec >= e.plan.MaxConsecutive {
		e.consec = 0
		return wfOK, n
	}
	u := e.rng.Float64()
	p := e.plan
	switch {
	case u < p.WriteFailProb:
		e.consec++
		e.stats.FailedWrites++
		return wfFail, 0
	case u < p.WriteFailProb+p.ShortWriteProb && n > 1:
		e.consec++
		e.stats.ShortWrites++
		return wfShort, 1 + e.rng.Intn(n-1)
	case u < p.WriteFailProb+p.ShortWriteProb+p.TornWriteProb && n > 1:
		// Torn writes report success, so they never trip the retry loop
		// and do not count toward the consecutive-fault bound.
		e.stats.TornWrites++
		return wfTorn, 1 + e.rng.Intn(n-1)
	}
	e.consec = 0
	return wfOK, n
}

// drawMDS decides whether a metadata op times out. Caller holds fs.mu.
// A disarmed class (prob 0) draws nothing, so it neither consumes
// randomness nor breaks a consecutive-fault run of another class.
func (e *faultEngine) drawMDS() bool {
	if e.plan.MDSTimeoutProb <= 0 {
		return false
	}
	if e.consec >= e.plan.MaxConsecutive {
		e.consec = 0
		return false
	}
	if e.rng.Float64() < e.plan.MDSTimeoutProb {
		e.consec++
		e.stats.MDSTimeouts++
		return true
	}
	e.consec = 0
	return false
}

// drawRead decides whether a read fails transiently. Caller holds fs.mu.
// A disarmed class (prob 0) draws nothing, so it neither consumes
// randomness nor breaks a consecutive-fault run of another class.
func (e *faultEngine) drawRead() bool {
	if e.plan.ReadFailProb <= 0 {
		return false
	}
	if e.consec >= e.plan.MaxConsecutive {
		e.consec = 0
		return false
	}
	if e.rng.Float64() < e.plan.ReadFailProb {
		e.consec++
		e.stats.FailedReads++
		return true
	}
	e.consec = 0
	return false
}

// InjectFaults arms the file system with a transient-fault plan.
func (fs *FS) InjectFaults(plan FaultPlan) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.faults = newFaultEngine(plan)
}

// ClearFaults disarms fault injection.
func (fs *FS) ClearFaults() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.faults = nil
}

// FaultStats returns cumulative injected-fault counters (zero when no
// plan is armed).
func (fs *FS) FaultStats() FaultStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.faults == nil {
		return FaultStats{}
	}
	return fs.faults.stats
}
