// Package mpiio provides the MPI-IO-style collective access layer AWP-ODC
// uses for mesh input and velocity output (§III.E): indexed file views
// (segment lists describing a rank's 3D sub-block of a global record
// file), explicit-offset reads/writes with no shared file pointers, and
// collective-phase cost accounting against the simulated parallel file
// system.
package mpiio

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// Segment is one contiguous byte range of a file view.
type Segment struct {
	Off, Len int
}

// BlockSegments builds the file view for the sub-block
// [i0,i1)x[j0,j1)x[k0,k1) of a global x-fastest record file with rec bytes
// per grid point: one segment per contiguous x-run — the "new indexed data
// types representing segmented output blocks" of §III.E.
func BlockSegments(g grid.Dims, i0, i1, j0, j1, k0, k1, rec int) []Segment {
	if i0 < 0 || i1 > g.NX || j0 < 0 || j1 > g.NY || k0 < 0 || k1 > g.NZ || i1 <= i0 || j1 <= j0 || k1 <= k0 {
		panic(fmt.Sprintf("mpiio: block [%d,%d)x[%d,%d)x[%d,%d) invalid for %v", i0, i1, j0, j1, k0, k1, g))
	}
	segs := make([]Segment, 0, (j1-j0)*(k1-k0))
	rowLen := (i1 - i0) * rec
	for k := k0; k < k1; k++ {
		for j := j0; j < j1; j++ {
			off := ((k*g.NY+j)*g.NX + i0) * rec
			segs = append(segs, Segment{Off: off, Len: rowLen})
		}
	}
	return segs
}

// TotalLen returns the byte length of a view.
func TotalLen(segs []Segment) int {
	n := 0
	for _, s := range segs {
		n += s.Len
	}
	return n
}

// WriteIndexed writes data through the view with explicit displacements.
// Each segment write retries transient PFS faults with bounded
// exponential backoff. An optional telemetry recorder (at most one)
// attributes the wall time to the IO phase; existing call sites need no
// change.
func WriteIndexed(fsys *pfs.FS, path string, segs []Segment, data []byte, rec ...*telemetry.Recorder) error {
	defer ioSpan(rec).End()
	if len(data) != TotalLen(segs) {
		return fmt.Errorf("mpiio: data %d bytes, view %d", len(data), TotalLen(segs))
	}
	retry := pfs.DefaultRetry()
	p := 0
	for _, s := range segs {
		seg := s
		chunk := data[p : p+seg.Len]
		if err := retry.Do(func() error { return fsys.WriteAt(path, seg.Off, chunk) }); err != nil {
			return fmt.Errorf("mpiio: write %s seg [%d,%d): %w", path, seg.Off, seg.Off+seg.Len, err)
		}
		p += s.Len
	}
	return nil
}

// ReadIndexed reads the view into a new buffer. Each segment read retries
// transient PFS faults with the same bounded backoff as WriteIndexed, so
// a single MDS/read hiccup cannot kill a restart. An optional telemetry
// recorder (at most one) attributes the wall time to the IO phase.
func ReadIndexed(fsys *pfs.FS, path string, segs []Segment, rec ...*telemetry.Recorder) ([]byte, error) {
	defer ioSpan(rec).End()
	out := make([]byte, TotalLen(segs))
	retry := pfs.DefaultRetry()
	p := 0
	for _, s := range segs {
		seg := s
		chunk := out[p : p+seg.Len]
		if err := retry.Do(func() error { return fsys.ReadAt(path, seg.Off, chunk) }); err != nil {
			return nil, fmt.Errorf("mpiio: read %s seg [%d,%d): %w", path, seg.Off, seg.Off+seg.Len, err)
		}
		p += s.Len
	}
	return out, nil
}

// ioSpan opens an IO span on the first recorder, if any; a nil recorder
// (or none) yields the no-op span.
func ioSpan(rec []*telemetry.Recorder) telemetry.Span {
	if len(rec) == 0 {
		return telemetry.Span{}
	}
	return rec[0].Span(telemetry.IO)
}

// PhaseOps converts per-rank views into the op list of one collective
// phase (each rank pays one open).
func PhaseOps(path string, views [][]Segment, write bool) []pfs.Op {
	var ops []pfs.Op
	for _, view := range views {
		open := true
		for _, s := range view {
			ops = append(ops, pfs.Op{Path: path, Off: s.Off, Bytes: s.Len, Write: write, Open: open})
			open = false
		}
	}
	return ops
}

// Float32 codecs for record files (little-endian, matching the real
// AWP-ODC binary formats).

// PutFloat32s encodes vals into a new byte slice.
func PutFloat32s(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// GetFloat32s decodes a byte slice into float32 values.
func GetFloat32s(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
