package mpiio

import (
	"bytes"
	"testing"

	"repro/internal/grid"
	"repro/internal/pfs"
)

// TestReadIndexedRetriesTransientFaults pins the read/write retry
// symmetry: a transient read fault with MaxConsecutive=1 (so the
// immediate retry is guaranteed to succeed) must be healed inside
// ReadIndexed, exactly as WriteIndexed heals transient write faults.
func TestReadIndexedRetriesTransientFaults(t *testing.T) {
	fsys := pfs.New(pfs.Jaguar())
	g := grid.Dims{NX: 8, NY: 4, NZ: 3}
	segs := BlockSegments(g, 1, 7, 0, 4, 0, 3, 4)
	data := make([]byte, TotalLen(segs))
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := WriteIndexed(fsys, "mesh", segs, data); err != nil {
		t.Fatal(err)
	}

	fsys.InjectFaults(pfs.FaultPlan{Seed: 21, ReadFailProb: 0.6, MaxConsecutive: 1})
	got, err := ReadIndexed(fsys, "mesh", segs)
	if err != nil {
		t.Fatalf("ReadIndexed did not survive transient read faults: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retried read returned wrong bytes")
	}
	if st := fsys.FaultStats(); st.FailedReads == 0 {
		t.Fatal("fault plan injected no read faults — test proves nothing")
	}
}

// TestReadIndexedGivesUpAfterBudget: with an unbounded consecutive-fault
// run the bounded retry loop must give up with a transient-classified
// error rather than hanging or succeeding.
func TestReadIndexedGivesUpAfterBudget(t *testing.T) {
	fsys := pfs.New(pfs.Jaguar())
	if err := fsys.WriteAt("mesh", 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	fsys.InjectFaults(pfs.FaultPlan{Seed: 2, ReadFailProb: 1, MaxConsecutive: 1 << 30})
	_, err := ReadIndexed(fsys, "mesh", []Segment{{Off: 0, Len: 64}})
	if err == nil {
		t.Fatal("read succeeded under permanent transient faults")
	}
	if !pfs.IsTransient(err) {
		t.Fatalf("giving-up error lost transient classification: %v", err)
	}
}

// TestWriteIndexedRetriesTransientFaults is the pre-existing write-side
// behavior, pinned here so the symmetry is tested in one place.
func TestWriteIndexedRetriesTransientFaults(t *testing.T) {
	fsys := pfs.New(pfs.Jaguar())
	fsys.InjectFaults(pfs.FaultPlan{Seed: 8, WriteFailProb: 0.6, MaxConsecutive: 1})
	segs := []Segment{{Off: 0, Len: 32}, {Off: 64, Len: 32}}
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i + 1)
	}
	if err := WriteIndexed(fsys, "out", segs, data); err != nil {
		t.Fatalf("WriteIndexed did not survive transient write faults: %v", err)
	}
	fsys.ClearFaults()
	got, err := ReadIndexed(fsys, "out", segs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retried write landed wrong bytes")
	}
}
