package mpiio

import (
	"sort"
	"testing"

	"repro/internal/grid"
)

// FuzzBlockSegmentsRoundTrip checks the file-view invariants for random
// sub-blocks of random global grids: the segments tile exactly the
// x-runs of the sub-block (no overlap, no gap), their total length is the
// sub-block volume times the record size, and every byte offset they
// cover maps back to a grid point inside the block.
func FuzzBlockSegmentsRoundTrip(f *testing.F) {
	f.Add(uint16(6), uint16(5), uint16(8), uint8(1), uint8(4), uint8(0), uint8(5), uint8(2), uint8(8), uint8(12))
	f.Add(uint16(1), uint16(1), uint16(1), uint8(0), uint8(1), uint8(0), uint8(1), uint8(0), uint8(1), uint8(4))
	f.Add(uint16(32), uint16(7), uint16(3), uint8(3), uint8(9), uint8(2), uint8(7), uint8(1), uint8(3), uint8(8))
	f.Fuzz(func(t *testing.T, nx, ny, nz uint16, ai0, ai1, aj0, aj1, ak0, ak1, arec uint8) {
		g := grid.Dims{NX: int(nx%64) + 1, NY: int(ny%64) + 1, NZ: int(nz%64) + 1}
		// Map the raw bounds into a valid non-empty sub-block.
		i0 := int(ai0) % g.NX
		i1 := i0 + 1 + int(ai1)%(g.NX-i0)
		j0 := int(aj0) % g.NY
		j1 := j0 + 1 + int(aj1)%(g.NY-j0)
		k0 := int(ak0) % g.NZ
		k1 := k0 + 1 + int(ak1)%(g.NZ-k0)
		rec := int(arec)%16 + 1

		segs := BlockSegments(g, i0, i1, j0, j1, k0, k1, rec)

		// One segment per (j,k) row.
		if want := (j1 - j0) * (k1 - k0); len(segs) != want {
			t.Fatalf("%d segments, want %d", len(segs), want)
		}
		// Total length = block volume * rec.
		vol := (i1 - i0) * (j1 - j0) * (k1 - k0)
		if TotalLen(segs) != vol*rec {
			t.Fatalf("total %d, want %d", TotalLen(segs), vol*rec)
		}
		// Sorted by offset, non-overlapping, each inside the file.
		sorted := append([]Segment(nil), segs...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].Off < sorted[b].Off })
		fileLen := g.NX * g.NY * g.NZ * rec
		for n, s := range sorted {
			if s.Len != (i1-i0)*rec {
				t.Fatalf("seg %d len %d, want row length %d", n, s.Len, (i1-i0)*rec)
			}
			if s.Off < 0 || s.Off+s.Len > fileLen {
				t.Fatalf("seg %d [%d,%d) outside file [0,%d)", n, s.Off, s.Off+s.Len, fileLen)
			}
			if n > 0 && s.Off < sorted[n-1].Off+sorted[n-1].Len {
				t.Fatalf("seg %d overlaps predecessor", n)
			}
		}
		// Every covered offset maps back into the block; every block
		// point is covered exactly once.
		covered := map[int]bool{}
		for _, s := range segs {
			if s.Off%rec != 0 || s.Len%rec != 0 {
				t.Fatalf("segment [%d,%d) not record-aligned (rec %d)", s.Off, s.Off+s.Len, rec)
			}
			for p := s.Off / rec; p < (s.Off+s.Len)/rec; p++ {
				i := p % g.NX
				j := (p / g.NX) % g.NY
				k := p / (g.NX * g.NY)
				if i < i0 || i >= i1 || j < j0 || j >= j1 || k < k0 || k >= k1 {
					t.Fatalf("covered point (%d,%d,%d) outside block [%d,%d)x[%d,%d)x[%d,%d)",
						i, j, k, i0, i1, j0, j1, k0, k1)
				}
				if covered[p] {
					t.Fatalf("point %d covered twice", p)
				}
				covered[p] = true
			}
		}
		if len(covered) != vol {
			t.Fatalf("covered %d points, want %d", len(covered), vol)
		}
	})
}
