package mpiio

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/pfs"
)

func testFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 4, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 8})
}

func TestBlockSegments(t *testing.T) {
	g := grid.Dims{NX: 8, NY: 4, NZ: 3}
	segs := BlockSegments(g, 2, 6, 1, 3, 0, 2, 4)
	// (3-1) rows x (2-0) planes = 4 segments of 4 cells x 4 bytes.
	if len(segs) != 4 {
		t.Fatalf("segments = %d", len(segs))
	}
	if segs[0].Off != ((0*4+1)*8+2)*4 || segs[0].Len != 16 {
		t.Fatalf("first segment %+v", segs[0])
	}
	if TotalLen(segs) != 64 {
		t.Fatalf("TotalLen = %d", TotalLen(segs))
	}
}

func TestBlockSegmentsPanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BlockSegments(grid.Dims{NX: 4, NY: 4, NZ: 4}, 0, 5, 0, 1, 0, 1, 4)
}

func TestIndexedRoundTrip(t *testing.T) {
	fsys := testFS()
	g := grid.Dims{NX: 6, NY: 6, NZ: 4}
	// Fill a global record file with identifiable values.
	all := make([]float32, g.Cells())
	for i := range all {
		all[i] = float32(i)
	}
	fsys.WriteAt("f", 0, PutFloat32s(all))

	segs := BlockSegments(g, 1, 4, 2, 5, 1, 3, 4)
	raw, err := ReadIndexed(fsys, "f", segs)
	if err != nil {
		t.Fatal(err)
	}
	vals := GetFloat32s(raw)
	// First value should be global (k=1, j=2, i=1).
	want := float32((1*6+2)*6 + 1)
	if vals[0] != want {
		t.Fatalf("vals[0] = %g, want %g", vals[0], want)
	}
	// Write the block to a second file and read it back.
	if err := WriteIndexed(fsys, "g", segs, raw); err != nil {
		t.Fatal(err)
	}
	raw2, err := ReadIndexed(fsys, "g", segs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if raw[i] != raw2[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestWriteIndexedLengthCheck(t *testing.T) {
	fsys := testFS()
	segs := []Segment{{Off: 0, Len: 8}}
	if err := WriteIndexed(fsys, "f", segs, make([]byte, 4)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestReadIndexedMissing(t *testing.T) {
	if _, err := ReadIndexed(testFS(), "none", []Segment{{0, 4}}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPhaseOpsOpenAccounting(t *testing.T) {
	views := [][]Segment{
		{{0, 100}, {200, 100}},
		{{400, 100}},
	}
	ops := PhaseOps("f", views, true)
	if len(ops) != 3 {
		t.Fatalf("ops = %d", len(ops))
	}
	opens := 0
	for _, op := range ops {
		if op.Open {
			opens++
		}
		if !op.Write {
			t.Fatal("write flag lost")
		}
	}
	if opens != 2 {
		t.Fatalf("opens = %d, want one per rank", opens)
	}
}

func TestFloat32Codec(t *testing.T) {
	in := []float32{0, 1.5, -3.25e7, 1e-20}
	out := GetFloat32s(PutFloat32s(in))
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("codec mismatch at %d", i)
		}
	}
}
