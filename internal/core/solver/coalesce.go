package solver

import (
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// Coalesced halo messaging: instead of one message per (field, axis, side)
// — up to 54 per step under the unique-tag scheme — every face bound for
// one neighbor in one phase is packed at planner-computed offsets into a
// single pooled buffer and sent as one message. On 2x2x1 this cuts the
// stress phase from 6 messages per neighbor (async models) to 1, which is
// what the per-message latency term of the extended performance model
// (perfmodel Eq. 7/8, alpha*nmsgs) prices.
//
// Bit-identity with the per-field path holds by construction: packing
// reads interior cells only, sections within one buffer are disjoint
// sub-slices, and the ghost regions written by distinct (field, axis,
// side) unpacks are disjoint — so neither the coalesced layout nor the
// pool's tile schedule can reorder any load/store pair that aliases.

// planKey caches coalesced layouts: the section set depends only on the
// phase and on whether the reduced stress axis set applies.
type planKey struct {
	phase   int
	reduced bool
}

// coalSection is one face's slot inside a coalesced message: field index
// in the phase's field list, offset into the buffer, and length.
type coalSection struct {
	fi, off, n int
}

// coalMsg is the aggregate message for one (axis, side) neighbor.
type coalMsg struct {
	ax    grid.Axis
	side  grid.Side
	peer  int
	total int // buffer length: sum of section lengths
	secs  []coalSection
}

// coalPlan is the cached layout of one phase: the per-neighbor messages
// plus a flattened (message, section) list that pack/unpack tiles index.
type coalPlan struct {
	msgs []coalMsg
	flat []struct{ mi, si int }
}

// ctag builds the coalesced-message tag from phase, axis and direction of
// travel. The 4096 base keeps the space disjoint from the per-field tags
// (slot*3+ax)*2+1 <= 65, so mixed-discipline runs can never alias.
func ctag(phase int, ax grid.Axis, dirHigh bool) int {
	t := 4096 + (phase*3+int(ax))*2
	if dirHigh {
		t++
	}
	return t
}

// planFor returns (building and caching on first use) the coalesced layout
// for one phase. fields must be the phase's field list in slot order; all
// fields share the rank's subgrid dims, so the layout is stable for the
// life of the halo.
func (h *halo) planFor(phase int, model CommModel, fields []*grid.Field3) *coalPlan {
	reduced := phase == phaseStress && (model == AsyncReduced || model == AsyncOverlap)
	key := planKey{phase, reduced}
	if p, ok := h.plans[key]; ok {
		return p
	}
	axesOf := func(fi int) []grid.Axis {
		if reduced {
			return stressAxesReduced[fi]
		}
		return axesAll
	}
	p := &coalPlan{}
	for ax := grid.X; ax <= grid.Z; ax++ {
		for side := grid.Low; side <= grid.High; side++ {
			peer := h.nbr[ax][side]
			if peer < 0 {
				continue
			}
			m := coalMsg{ax: ax, side: side, peer: peer}
			for fi, f := range fields {
				exchanged := false
				for _, a := range axesOf(fi) {
					if a == ax {
						exchanged = true
						break
					}
				}
				if !exchanged {
					continue
				}
				n := f.FaceLen(ax, grid.Ghost)
				m.secs = append(m.secs, coalSection{fi: fi, off: m.total, n: n})
				m.total += n
			}
			if len(m.secs) == 0 {
				continue
			}
			mi := len(p.msgs)
			p.msgs = append(p.msgs, m)
			for si := range m.secs {
				p.flat = append(p.flat, struct{ mi, si int }{mi, si})
			}
		}
	}
	h.plans[key] = p
	return p
}

// coalesced buffer keys for the copy discipline, disjoint from the
// per-field keys (<= ~2100): send 6000+, recv 6500+ per phase block.
func ckeySend(phase, mi int) int { return 6000 + phase*100 + mi }
func ckeyRecv(phase, mi int) int { return 6500 + phase*100 + mi }

// postCoalesced posts the phase's exchange as one message per neighbor and
// returns the finish function that waits and unpacks. Pack and unpack of
// the face sections run as tiles on the rank's worker pool.
func (h *halo) postCoalesced(phase int, model CommModel, fields []*grid.Field3) func() {
	p := h.planFor(phase, model, fields)
	if len(p.msgs) == 0 {
		return func() {}
	}

	// Receives first: a message from the low neighbor was sent as its
	// high-going message, and vice versa.
	recvReqs := make([]*mpi.Request, len(p.msgs))
	recvBufs := make([][]float32, len(p.msgs))
	for mi := range p.msgs {
		m := &p.msgs[mi]
		rt := ctag(phase, m.ax, m.side == grid.Low)
		if h.copyMode {
			recvBufs[mi] = h.buf(ckeyRecv(phase, mi), m.total)
			recvReqs[mi] = h.comm.Irecv(recvBufs[mi], m.peer, rt)
		} else {
			recvReqs[mi] = h.comm.IrecvTake(m.peer, rt)
		}
	}

	// Pack all sections of all outgoing buffers as one tile queue, then
	// send each aggregate.
	sendBufs := make([][]float32, len(p.msgs))
	for mi := range p.msgs {
		m := &p.msgs[mi]
		if h.copyMode {
			sendBufs[mi] = h.buf(ckeySend(phase, mi), m.total)
		} else {
			sendBufs[mi] = mpi.GetBuffer(m.total)
		}
	}
	sp := h.tel.Span(telemetry.Pack)
	h.pool.ForEachN(len(p.flat), func(t int) {
		ft := p.flat[t]
		m := &p.msgs[ft.mi]
		sec := m.secs[ft.si]
		fields[sec.fi].PackFaceAt(m.ax, m.side, grid.Ghost, sendBufs[ft.mi], sec.off)
	})
	sp.End()
	sp = h.tel.Span(telemetry.Send)
	for mi := range p.msgs {
		m := &p.msgs[mi]
		st := ctag(phase, m.ax, m.side == grid.High)
		if h.copyMode {
			h.comm.Isend(m.peer, st, sendBufs[mi])
		} else {
			h.comm.IsendOwned(m.peer, st, sendBufs[mi])
		}
	}
	sp.End()

	return func() {
		sp := h.tel.Span(telemetry.Recv)
		for mi := range p.msgs {
			recvReqs[mi].Wait()
			if !h.copyMode {
				recvBufs[mi] = recvReqs[mi].Data()
			}
		}
		sp.End()
		sp = h.tel.Span(telemetry.Unpack)
		h.pool.ForEachN(len(p.flat), func(t int) {
			ft := p.flat[t]
			m := &p.msgs[ft.mi]
			sec := m.secs[ft.si]
			fields[sec.fi].UnpackFaceAt(m.ax, m.side, grid.Ghost, recvBufs[ft.mi], sec.off)
		})
		if !h.copyMode {
			for mi := range recvBufs {
				mpi.PutBuffer(recvBufs[mi])
			}
		}
		sp.End()
	}
}
