package solver

import (
	"fmt"
	"math"

	"repro/internal/core/rupture"
	"repro/internal/decomp"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// collect gathers all per-rank outputs at rank 0 and assembles the Result.
func (rs *rankState) collect(c *mpi.Comm, dc decomp.Decomp, opt Options, dt float64,
	momentRate []float64, tm Timing) (*Result, error) {

	// Timing: max across ranks (the slowest rank sets the pace).
	tmax := c.Allreduce([]float64{tm.Comp, tm.Comm, tm.Sync, tm.Output}, mpi.Max)

	// Moment rate: sum across ranks per step.
	if opt.Fault != nil {
		if len(momentRate) < opt.Steps {
			// Ranks without fault nodes contribute zeros.
			momentRate = make([]float64, opt.Steps)
		}
		momentRate = c.Reduce(momentRate, mpi.Sum, 0)
	}

	// Seismograms: flatten owned receivers.
	var seisPayload []float32
	for _, r := range rs.receivers {
		seisPayload = append(seisPayload, float32(r.idx), float32(len(r.series)))
		for _, v := range r.series {
			seisPayload = append(seisPayload, v[0], v[1], v[2])
		}
	}
	seisAll := c.Gather(seisPayload, 0)

	// PGV maps.
	var pgvPayload []float32
	if rs.pgvh != nil {
		pgvPayload = append(pgvPayload,
			float32(rs.sub.OffX), float32(rs.sub.OffY),
			float32(rs.sub.Local.NX), float32(rs.sub.Local.NY))
		for _, arr := range [][]float64{rs.pgvh, rs.pgvx, rs.pgvy, rs.pgvz} {
			for _, v := range arr {
				pgvPayload = append(pgvPayload, float32(v))
			}
		}
	}
	pgvAll := c.Gather(pgvPayload, 0)

	// Fault arrays (slip, peak rate, rupture time, local Vs for the
	// supershear classification).
	var faultPayload []float32
	if rs.fault != nil {
		f := opt.Fault
		i0 := max(f.I0, rs.sub.OffX)
		i1 := min(f.I1, rs.sub.OffX+rs.sub.Local.NX)
		k0 := max(f.K0, rs.sub.OffZ)
		k1 := min(f.K1, rs.sub.OffZ+rs.sub.Local.NZ)
		faultPayload = append(faultPayload,
			float32(i0), float32(i1), float32(k0), float32(k1))
		for _, arr := range [][]float64{rs.fault.Slip, rs.fault.PeakRate, rs.fault.RupTime} {
			for _, v := range arr {
				faultPayload = append(faultPayload, float32(v))
			}
		}
		j0 := f.J0 - rs.sub.OffY
		for k := k0; k < k1; k++ {
			for i := i0; i < i1; i++ {
				li, lk := i-rs.sub.OffX, k-rs.sub.OffZ
				mu := float64(rs.med.Mu.At(li, j0, lk))
				rho := float64(rs.med.Rho.At(li, j0, lk))
				faultPayload = append(faultPayload, float32(math.Sqrt(mu/rho)))
			}
		}
	}
	faultAll := c.Gather(faultPayload, 0)

	// Slip-rate histories.
	var slipPayload []float32
	if rs.recorder != nil {
		for n, series := range rs.recorder.Series {
			if len(series) == 0 {
				continue
			}
			gi, _, gk := rs.recorder.NodeGlobal(n)
			gi += rs.sub.OffX
			gk += rs.sub.OffZ
			slipPayload = append(slipPayload, float32(gi), float32(gk), float32(len(series)))
			slipPayload = append(slipPayload, series...)
		}
	}
	var slipAll [][]float32
	if opt.Fault != nil && opt.Fault.RecordEvery > 0 {
		slipAll = c.Gather(slipPayload, 0)
	}

	// Telemetry: gather every rank's snapshot (step samples, neighbor
	// counters, event trace) at rank 0 — the way the paper aggregates
	// Jaguar timings — and reduce to the per-phase report.
	var telAll [][]float32
	if rs.tel != nil {
		telAll = c.Gather(rs.tel.EncodeSnapshot(), 0)
	}

	if c.Rank() != 0 {
		return nil, nil
	}

	res := &Result{
		Steps: opt.Steps,
		Dt:    dt,
		Timing: Timing{
			Comp: tmax[0], Comm: tmax[1], Sync: tmax[2], Output: tmax[3],
		},
	}

	if telAll != nil {
		rep, err := telemetry.BuildReport(telAll)
		if err != nil {
			return nil, fmt.Errorf("solver: telemetry aggregation: %w", err)
		}
		res.Telemetry = rep
	}

	// Decode seismograms.
	res.Seismograms = make([][][3]float32, len(opt.Receivers))
	for _, payload := range seisAll {
		p := 0
		for p < len(payload) {
			idx := int(payload[p])
			nt := int(payload[p+1])
			p += 2
			series := make([][3]float32, nt)
			for n := 0; n < nt; n++ {
				series[n] = [3]float32{payload[p], payload[p+1], payload[p+2]}
				p += 3
			}
			res.Seismograms[idx] = series
		}
	}

	// Decode PGV maps.
	if opt.TrackPGV {
		nx, ny := opt.Global.NX, opt.Global.NY
		res.PGVH = make([]float64, nx*ny)
		res.PGVX = make([]float64, nx*ny)
		res.PGVY = make([]float64, nx*ny)
		res.PGVZ = make([]float64, nx*ny)
		for _, payload := range pgvAll {
			if len(payload) == 0 {
				continue
			}
			ox, oy := int(payload[0]), int(payload[1])
			lnx, lny := int(payload[2]), int(payload[3])
			block := lnx * lny
			maps := []([]float64){res.PGVH, res.PGVX, res.PGVY, res.PGVZ}
			for mi, m := range maps {
				base := 4 + mi*block
				for j := 0; j < lny; j++ {
					for i := 0; i < lnx; i++ {
						m[(oy+j)*nx+(ox+i)] = float64(payload[base+j*lnx+i])
					}
				}
			}
		}
	}

	// Decode fault arrays.
	if opt.Fault != nil {
		f := opt.Fault
		ni, nk := f.I1-f.I0, f.K1-f.K0
		res.FaultSlip = alloc2(nk, ni)
		res.FaultPeakRate = alloc2(nk, ni)
		res.FaultRupTime = alloc2(nk, ni, -1)
		vsMap := alloc2(nk, ni)
		for _, payload := range faultAll {
			if len(payload) == 0 {
				continue
			}
			i0, i1 := int(payload[0]), int(payload[1])
			k0, k1 := int(payload[2]), int(payload[3])
			lni, lnk := i1-i0, k1-k0
			block := lni * lnk
			arrs := [][][]float64{res.FaultSlip, res.FaultPeakRate, res.FaultRupTime, vsMap}
			for ai, arr := range arrs {
				base := 4 + ai*block
				for k := 0; k < lnk; k++ {
					for i := 0; i < lni; i++ {
						arr[k0+k-f.K0][i0+i-f.I0] = float64(payload[base+k*lni+i])
					}
				}
			}
		}
		res.MomentRate = momentRate
		res.FaultStats = globalFaultStats(res, vsMap, opt)

		if f.RecordEvery > 0 {
			for _, payload := range slipAll {
				p := 0
				for p < len(payload) {
					gi, gk := int(payload[p]), int(payload[p+1])
					nt := int(payload[p+2])
					p += 3
					series := make([]float32, nt)
					copy(series, payload[p:p+nt])
					p += nt
					res.SlipNodes = append(res.SlipNodes, [3]int{gi, f.J0, gk})
					res.SlipSeries = append(res.SlipSeries, series)
				}
			}
			res.SlipDt = dt * float64(f.RecordEvery)
		}
	}

	return res, nil
}

func alloc2(nk, ni int, fill ...float64) [][]float64 {
	v := 0.0
	if len(fill) > 0 {
		v = fill[0]
	}
	out := make([][]float64, nk)
	for k := range out {
		out[k] = make([]float64, ni)
		if v != 0 {
			for i := range out[k] {
				out[k][i] = v
			}
		}
	}
	return out
}

// globalFaultStats recomputes the Fig 19 summary from the assembled global
// fault arrays (rupture velocity needs the full rupture-time field).
func globalFaultStats(res *Result, vsMap [][]float64, opt Options) rupture.Stats {
	var st rupture.Stats
	slip := res.FaultSlip
	rate := res.FaultPeakRate
	rup := res.FaultRupTime
	nk := len(slip)
	if nk == 0 {
		return st
	}
	ni := len(slip[0])
	var sum float64
	nRup := 0
	for k := 0; k < nk; k++ {
		for i := 0; i < ni; i++ {
			if slip[k][i] > st.MaxSlip {
				st.MaxSlip = slip[k][i]
			}
			sum += slip[k][i]
			if rate[k][i] > st.MaxPeakRate {
				st.MaxPeakRate = rate[k][i]
			}
			if rup[k][i] >= 0 {
				nRup++
			}
		}
	}
	st.MeanSlip = sum / float64(nk*ni)
	st.RupturedFraction = float64(nRup) / float64(nk*ni)

	h := opt.H
	var vrSum float64
	var nvr, nss int
	for k := 1; k < nk-1; k++ {
		for i := 1; i < ni-1; i++ {
			if rup[k][i] < 0 || rup[k][i-1] < 0 || rup[k][i+1] < 0 ||
				rup[k-1][i] < 0 || rup[k+1][i] < 0 {
				continue
			}
			gx := (rup[k][i+1] - rup[k][i-1]) / (2 * h)
			gz := (rup[k+1][i] - rup[k-1][i]) / (2 * h)
			g := gx*gx + gz*gz
			if g < 1e-18 {
				continue
			}
			vr := 1 / math.Sqrt(g)
			vrSum += vr
			nvr++
			if vr > vsMap[k][i] {
				nss++
			}
		}
	}
	if nvr > 0 {
		st.MeanRuptureVelocity = vrSum / float64(nvr)
		st.SupershearFraction = float64(nss) / float64(nvr)
	}
	return st
}
