package solver

import (
	"fmt"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// ttileOptions builds a wave-propagation problem exercising every feature
// the time-tiled engine must reproduce: sponge ABC, free surface,
// attenuation, a moment-rate source, receivers, and PGV tracking.
func ttileOptions(g grid.Dims, steps int, topo mpi.Cart) Options {
	src := source.PointSource{
		GI: g.NX / 2, GJ: g.NY / 2, GK: g.NZ / 2,
		M0:     1e15,
		Tensor: source.Explosion,
		STF:    source.GaussianPulse(0.08, 0.02),
	}
	return Options{
		Global:      g,
		H:           100,
		Steps:       steps,
		Topo:        topo,
		Comm:        Asynchronous,
		Variant:     fd.Precomp,
		ABC:         SpongeABC,
		SpongeWidth: 4,
		FreeSurface: true,
		Attenuation: true,
		Sources:     []source.SampledSource{src.Sample(0.002, 400)},
		Receivers: [][3]int{
			{g.NX / 4, g.NY / 2, g.NZ / 2}, {g.NX - 2, g.NY / 2, 2},
			{g.NX / 2, g.NY / 4, 1}, {1, 1, g.NZ / 2},
		},
		TrackPGV: true,
	}
}

// compareResults asserts exact equality of seismograms and PGV maps.
func compareResults(t *testing.T, tag string, ref, res *Result) {
	t.Helper()
	for r := range ref.Seismograms {
		a, b := ref.Seismograms[r], res.Seismograms[r]
		if len(a) != len(b) {
			t.Fatalf("%s: receiver %d: %d vs %d samples", tag, r, len(a), len(b))
		}
		for n := range a {
			if a[n] != b[n] {
				t.Fatalf("%s: receiver %d sample %d: %v != %v", tag, r, n, a[n], b[n])
			}
		}
	}
	if len(ref.PGVH) != len(res.PGVH) {
		t.Fatalf("%s: PGV length %d vs %d", tag, len(ref.PGVH), len(res.PGVH))
	}
	for i := range ref.PGVH {
		if ref.PGVH[i] != res.PGVH[i] || ref.PGVX[i] != res.PGVX[i] ||
			ref.PGVY[i] != res.PGVY[i] || ref.PGVZ[i] != res.PGVZ[i] {
			t.Fatalf("%s: PGV mismatch at %d", tag, i)
		}
	}
}

// TestTemporalDepthBitIdentitySingleRank pins the tentpole invariant on
// one rank: depths 2 and 4 reproduce the depth-1 observables exactly,
// including a final partial super-step (Steps not a multiple of T).
func TestTemporalDepthBitIdentitySingleRank(t *testing.T) {
	for _, variant := range []fd.Variant{fd.Precomp, fd.Fused} {
		opt := ttileOptions(grid.Dims{NX: 24, NY: 20, NZ: 18}, 50, mpi.NewCart(1, 1, 1))
		opt.Variant = variant
		ref, err := Run(cvm.SoCal(2400, 2400, 1600, 400), opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, depth := range []int{2, 4} {
			o := opt
			o.TemporalDepth = depth
			res, err := Run(cvm.SoCal(2400, 2400, 1600, 400), o)
			if err != nil {
				t.Fatalf("%v depth %d: %v", variant, depth, err)
			}
			compareResults(t, fmt.Sprintf("%v depth %d", variant, depth), ref, res)
		}
	}
}

// TestTemporalDepthBitIdentityMatrix sweeps comm model x threads x halo
// coalescing x depth on a decomposed topology against the single-rank
// depth-1 reference.
func TestTemporalDepthBitIdentityMatrix(t *testing.T) {
	g := grid.Dims{NX: 32, NY: 32, NZ: 16}
	q := cvm.SoCal(2400, 2400, 1600, 400)
	ref, err := Run(q, ttileOptions(g, 30, mpi.NewCart(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []CommModel{Synchronous, Asynchronous, AsyncReduced} {
		for _, threads := range []int{1, 4} {
			for _, coalesce := range []bool{false, true} {
				for _, depth := range []int{1, 2, 4} {
					opt := ttileOptions(g, 30, mpi.NewCart(2, 2, 1))
					opt.Comm = model
					opt.Threads = threads
					opt.CoalesceHalo = coalesce
					opt.TemporalDepth = depth
					tag := fmt.Sprintf("%v/threads=%d/coalesce=%v/depth=%d",
						model, threads, coalesce, depth)
					res, err := Run(q, opt)
					if err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					compareResults(t, tag, ref, res)
				}
			}
		}
	}
}

// TestTemporalDepthCopyHalo pins the legacy copying message discipline at
// depth > 1 (both per-field and coalesced paths reuse keyed buffers).
func TestTemporalDepthCopyHalo(t *testing.T) {
	g := grid.Dims{NX: 32, NY: 24, NZ: 16}
	q := cvm.SoCal(2400, 2400, 1600, 400)
	ref, err := Run(q, ttileOptions(g, 24, mpi.NewCart(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, coalesce := range []bool{false, true} {
		opt := ttileOptions(g, 24, mpi.NewCart(2, 1, 1))
		opt.CopyHalo = true
		opt.CoalesceHalo = coalesce
		opt.TemporalDepth = 2
		res, err := Run(q, opt)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, fmt.Sprintf("copy/coalesce=%v", coalesce), ref, res)
	}
}

// collectState runs a full simulation stepping rank-local Steppers and
// assembles the interior of every wavefield component and attenuation
// memory variable into global arrays, so tests can compare the complete
// final state bit-for-bit (observables alone would miss interior cells).
func collectState(t *testing.T, q cvm.Querier, opt Options) [][]float32 {
	t.Helper()
	dc, opt, err := Prepare(opt)
	if err != nil {
		t.Fatal(err)
	}
	g := opt.Global
	out := make([][]float32, 15)
	for i := range out {
		out[i] = make([]float32, g.NX*g.NY*g.NZ)
	}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	world := mpi.NewWorld(opt.Topo.Size())
	var worldErr error
	world.Run(func(c *mpi.Comm) {
		st, err := NewStepper(c, q, dc, opt)
		if err != nil {
			if c.Rank() == 0 {
				worldErr = err
			}
			return
		}
		defer st.Close()
		for !st.Done() {
			st.Step()
		}
		sub := dc.SubFor(c.Rank())
		fields := st.State().Fields()
		if a := st.Atten(); a != nil {
			fields = append(fields, a.ZXX, a.ZYY, a.ZZZ, a.ZXY, a.ZXZ, a.ZYZ)
		}
		<-mu
		for fi, f := range fields {
			blk := f.ExtractBlock(0, sub.Local.NX, 0, sub.Local.NY, 0, sub.Local.NZ)
			n := 0
			for k := 0; k < sub.Local.NZ; k++ {
				for j := 0; j < sub.Local.NY; j++ {
					for i := 0; i < sub.Local.NX; i++ {
						gi := (k+sub.OffZ)*g.NX*g.NY + (j+sub.OffY)*g.NX + (i + sub.OffX)
						out[fi][gi] = blk[n]
						n++
					}
				}
			}
		}
		mu <- struct{}{}
		// Finish is collective; run it so no rank blocks.
		if _, err := st.Finish(); err != nil && c.Rank() == 0 {
			worldErr = err
		}
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return out
}

var ttileFieldNames = []string{
	"vx", "vy", "vz", "sxx", "syy", "szz", "sxy", "sxz", "syz",
	"zxx", "zyy", "zzz", "zxy", "zxz", "zyz",
}

// FuzzTemporalTiling drives randomized domain shapes, decompositions and
// depths and requires the complete final state — nine wavefield
// components and six memory variables at every interior cell — to match
// the step-by-step reference exactly.
func FuzzTemporalTiling(f *testing.F) {
	f.Add(uint8(25), uint8(21), uint8(17), uint8(2), uint8(1), uint8(1), uint8(2), uint8(11), false)
	f.Add(uint8(33), uint8(18), uint8(16), uint8(1), uint8(2), uint8(1), uint8(4), uint8(9), true)
	f.Add(uint8(20), uint8(20), uint8(34), uint8(1), uint8(1), uint8(2), uint8(2), uint8(7), false)
	f.Add(uint8(26), uint8(27), uint8(28), uint8(2), uint8(2), uint8(1), uint8(4), uint8(13), true)
	f.Fuzz(func(t *testing.T, nx, ny, nz, px, py, pz, depth, steps uint8, coalesce bool) {
		g := grid.Dims{
			NX: 16 + int(nx)%24, NY: 16 + int(ny)%24, NZ: 12 + int(nz)%24,
		}
		topo := mpi.NewCart(1+int(px)%2, 1+int(py)%2, 1+int(pz)%2)
		T := 2
		if depth%2 == 0 {
			T = 4
		}
		nsteps := 5 + int(steps)%16
		if g.NX/topo.PX < 4*T || g.NY/topo.PY < 4*T || g.NZ/topo.PZ < 4*T {
			t.Skip("subgrid too small for this depth")
		}
		q := cvm.SoCal(2400, 2400, 1600, 400)

		opt := ttileOptions(g, nsteps, mpi.NewCart(1, 1, 1))
		ref := collectState(t, q, opt)
		refRes, err := Run(q, opt)
		if err != nil {
			t.Fatal(err)
		}

		opt = ttileOptions(g, nsteps, topo)
		opt.TemporalDepth = T
		opt.CoalesceHalo = coalesce
		got := collectState(t, q, opt)
		res, err := Run(q, opt)
		if err != nil {
			t.Fatal(err)
		}

		for fi := range ref {
			for i := range ref[fi] {
				if ref[fi][i] != got[fi][i] {
					k := i / (g.NX * g.NY)
					j := i % (g.NX * g.NY) / g.NX
					t.Fatalf("field %s cell (%d,%d,%d): ref %g got %g (T=%d topo=%v steps=%d)",
						ttileFieldNames[fi], i%g.NX, j, k, ref[fi][i], got[fi][i], T, topo, nsteps)
				}
			}
		}
		compareResults(t, fmt.Sprintf("T=%d topo=%v", T, topo), refRes, res)
	})
}

// TestTemporalDepthSoakRace is the depth>1 workload CI runs under the race
// detector: multi-rank, threaded pools, coalesced deep exchange.
func TestTemporalDepthSoakRace(t *testing.T) {
	g := grid.Dims{NX: 34, NY: 30, NZ: 20}
	q := cvm.SoCal(2400, 2400, 1600, 400)
	ref, err := Run(q, ttileOptions(g, 25, mpi.NewCart(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	opt := ttileOptions(g, 25, mpi.NewCart(2, 2, 2))
	opt.TemporalDepth = 2
	opt.Threads = 4
	opt.CoalesceHalo = true
	opt.Comm = Synchronous
	res, err := Run(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "soak", ref, res)
}

// TestTemporalDepthValidation pins Prepare's depth gating.
func TestTemporalDepthValidation(t *testing.T) {
	base := ttileOptions(grid.Dims{NX: 24, NY: 24, NZ: 16}, 10, mpi.NewCart(1, 1, 1))

	bad := base
	bad.TemporalDepth = fd.MaxTemporalDepth + 1
	if _, _, err := Prepare(bad); err == nil {
		t.Error("depth above MaxTemporalDepth accepted")
	}
	bad = base
	bad.TemporalDepth = 2
	bad.Comm = AsyncOverlap
	if _, _, err := Prepare(bad); err == nil {
		t.Error("overlap comm model accepted at depth > 1")
	}
	bad = base
	bad.TemporalDepth = 2
	bad.ABC = MPMLABC
	if _, _, err := Prepare(bad); err == nil {
		t.Error("M-PML accepted at depth > 1")
	}
	bad = ttileOptions(grid.Dims{NX: 24, NY: 24, NZ: 16}, 10, mpi.NewCart(2, 1, 1))
	bad.TemporalDepth = 4 // 24/2 = 12 < 16 cells per rank
	if _, _, err := Prepare(bad); err == nil {
		t.Error("undersized decomposed axis accepted at depth 4")
	}
	ok := base
	ok.TemporalDepth = 4
	if _, _, err := Prepare(ok); err != nil {
		t.Errorf("single-rank depth 4 rejected: %v", err)
	}
}

// TestSetStepIndexSuperStepBoundary pins the rollback alignment contract.
func TestSetStepIndexSuperStepBoundary(t *testing.T) {
	opt := ttileOptions(grid.Dims{NX: 20, NY: 20, NZ: 16}, 8, mpi.NewCart(1, 1, 1))
	opt.TemporalDepth = 2
	dc, opt, err := Prepare(opt)
	if err != nil {
		t.Fatal(err)
	}
	world := mpi.NewWorld(1)
	world.Run(func(c *mpi.Comm) {
		st, err := NewStepper(c, cvm.HardRock(), dc, opt)
		if err != nil {
			t.Error(err)
			return
		}
		defer st.Close()
		if err := st.SetStepIndex(3); err == nil {
			t.Error("off-boundary step index accepted at depth 2")
		}
		if err := st.SetStepIndex(4); err != nil {
			t.Errorf("super-step boundary rejected: %v", err)
		}
		for !st.Done() {
			st.Step()
		}
		if _, err := st.Finish(); err != nil {
			t.Error(err)
		}
	})
}

// TestTemporalHaloStatsMatchAnalytic cross-checks the analytic deep-halo
// stats against a hand count for a middle rank of a 3x1x1 decomposition.
func TestTemporalHaloStatsMatchAnalytic(t *testing.T) {
	d := grid.Dims{NX: 16, NY: 20, NZ: 24}
	mask := [3][2]bool{{true, true}, {false, false}, {false, false}}
	T := 2
	st := TemporalHaloStats(d, mask, false, T, true, true)
	// Per side: 3 velocity (depth 6) + 6 stress (depth 8) + 6 memvar
	// (depth 4) sections over (NY) x (NZ+2) cross cells.
	cross := d.NY * (d.NZ + 2)
	wantFloats := 2 * cross * (3*6 + 6*8 + 6*4)
	if st.Floats != wantFloats {
		t.Errorf("floats: got %d want %d", st.Floats, wantFloats)
	}
	if st.VelMsgs != 6 || st.StressMsgs != 24 {
		t.Errorf("msgs: got %d+%d want 6+24", st.VelMsgs, st.StressMsgs)
	}
	co := TemporalHaloStats(d, mask, true, T, true, true)
	if co.Floats != wantFloats {
		t.Errorf("coalesced floats: got %d want %d", co.Floats, wantFloats)
	}
	if co.Msgs() != 2 {
		t.Errorf("coalesced msgs: got %d want 2 (one per neighbor per super-step)", co.Msgs())
	}
}
