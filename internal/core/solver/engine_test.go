package solver

import (
	"math"
	"testing"

	"repro/internal/core/rupture"
	"repro/internal/cvm"
	"repro/internal/mpi"
)

func TestNegativeThreadsRejected(t *testing.T) {
	opt := baseOptions(mpi.NewCart(1, 1, 1))
	opt.Threads = -1
	if _, err := Run(cvm.HardRock(), opt); err == nil {
		t.Fatal("Threads=-1 accepted; must be rejected, not silently serialized")
	}
}

// Every communication model must honor Threads: a 4-thread multi-rank run
// reproduces the serial single-rank wavefield bit-exactly (the pool only
// reschedules independent tiles).
func TestThreadedAllCommModelsBitIdentical(t *testing.T) {
	q := cvm.SoCal(2400, 2400, 1600, 400)
	ref, err := Run(q, baseOptions(mpi.NewCart(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []CommModel{Synchronous, Asynchronous, AsyncReduced, AsyncOverlap} {
		opt := baseOptions(mpi.NewCart(2, 2, 1))
		opt.Comm = model
		opt.Threads = 4
		res, err := Run(q, opt)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		for r := range ref.Seismograms {
			for n := range ref.Seismograms[r] {
				if ref.Seismograms[r][n] != res.Seismograms[r][n] {
					t.Fatalf("%v: receiver %d sample %d differs from serial reference", model, r, n)
				}
			}
		}
		for i := range ref.PGVH {
			if math.Abs(ref.PGVH[i]-res.PGVH[i]) > 1e-12 {
				t.Fatalf("%v: PGV mismatch at %d", model, i)
			}
		}
	}
}

// The legacy copying message path and the zero-copy lending path carry the
// same bytes; only allocation behavior differs.
func TestCopyHaloBitIdentical(t *testing.T) {
	q := cvm.SoCal(2400, 2400, 1600, 400)
	for _, model := range []CommModel{Synchronous, AsyncReduced, AsyncOverlap} {
		mk := func(copyMode bool) *Result {
			opt := baseOptions(mpi.NewCart(2, 1, 2))
			opt.Comm = model
			opt.Threads = 2
			opt.CopyHalo = copyMode
			res, err := Run(q, opt)
			if err != nil {
				t.Fatalf("%v copy=%v: %v", model, copyMode, err)
			}
			return res
		}
		zero, legacy := mk(false), mk(true)
		for r := range zero.Seismograms {
			for n := range zero.Seismograms[r] {
				if zero.Seismograms[r][n] != legacy.Seismograms[r][n] {
					t.Fatalf("%v: copy and zero-copy paths diverge at receiver %d sample %d", model, r, n)
				}
			}
		}
	}
}

// The DFR path orders attenuation after the split-node stress correction;
// the threaded engine must preserve that (it cannot fuse attenuation into
// the stress tiles when a fault is present).
func TestDFRThreadedBitIdentical(t *testing.T) {
	g := baseOptions(mpi.NewCart(1, 1, 1)).Global
	ni, nk := 16, 8
	tau := make([][]float64, nk)
	sn := make([][]float64, nk)
	fr := make([][]rupture.Friction, nk)
	for k := 0; k < nk; k++ {
		tau[k] = make([]float64, ni)
		sn[k] = make([]float64, ni)
		fr[k] = make([]rupture.Friction, ni)
		for i := 0; i < ni; i++ {
			sn[k][i] = 120e6
			tau[k][i] = 70e6
			fr[k][i] = rupture.Friction{MuS: 0.677, MuD: 0.525, Dc: 0.02}
			di, dk := i-ni/2, k-nk/2
			if di*di+dk*dk <= 9 {
				tau[k][i] = 84e6
			}
		}
	}
	mk := func(threads int) *Result {
		opt := baseOptions(mpi.NewCart(2, 1, 1))
		opt.Global = g
		opt.Comm = AsyncReduced
		opt.Threads = threads
		opt.Sources = nil
		opt.Attenuation = true
		opt.Fault = &FaultSpec{
			J0: 12, I0: 4, I1: 4 + ni, K0: 4, K1: 4 + nk,
			Tau0: tau, SigmaN: sn, Friction: fr,
		}
		res, err := Run(cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}), opt)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		return res
	}
	serial, pooled := mk(1), mk(4)
	if serial.FaultStats.MaxSlip == 0 {
		t.Fatal("rupture did not slip")
	}
	for k := range serial.FaultSlip {
		for i := range serial.FaultSlip[k] {
			if serial.FaultSlip[k][i] != pooled.FaultSlip[k][i] {
				t.Fatalf("slip differs at k=%d i=%d: %g vs %g",
					k, i, serial.FaultSlip[k][i], pooled.FaultSlip[k][i])
			}
		}
	}
	if serial.FaultStats.MaxPeakRate != pooled.FaultStats.MaxPeakRate {
		t.Errorf("peak rate differs: %g vs %g",
			serial.FaultStats.MaxPeakRate, pooled.FaultStats.MaxPeakRate)
	}
}
