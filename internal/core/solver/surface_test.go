package solver

import (
	"bytes"
	"testing"

	"repro/internal/agg"
	"repro/internal/cvm"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
)

func surfaceFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 8, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 16})
}

func surfaceOptions(topo mpi.Cart, fsys *pfs.FS, every, flushEvery int) Options {
	opt := baseOptions(topo)
	opt.Steps = 24
	opt.Surface = &SurfaceOptions{
		FS: fsys, Path: "out/surface.bin",
		Every: every, FlushEvery: flushEvery,
		Agg: agg.Config{Aggregators: 2},
	}
	return opt
}

func readSurface(t *testing.T, fsys *pfs.FS, path string) []byte {
	t.Helper()
	n := fsys.Size(path)
	if n <= 0 {
		t.Fatalf("surface file %q missing", path)
	}
	raw := make([]byte, n)
	if err := fsys.ReadAt(path, 0, raw); err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSurfaceOutputMatchesReceivers cross-checks the aggregated file
// against an independent observable path: a frame's record at a surface
// receiver location must equal the seismogram sample of the same step
// exactly.
func TestSurfaceOutputMatchesReceivers(t *testing.T) {
	fsys := surfaceFS()
	fsys.SetStripe("out/", 4, 1<<12)
	const every = 2
	opt := surfaceOptions(mpi.NewCart(2, 2, 1), fsys, every, 4)
	opt.Receivers = [][3]int{{5, 7, 0}, {17, 3, 0}, {12, 12, 0}}
	q := cvm.SoCal(2400, 2400, 1600, 400)
	res, err := Run(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Surface == nil {
		t.Fatal("no surface stats")
	}
	raw := readSurface(t, fsys, "out/surface.bin")
	frameBytes := opt.Global.NX * opt.Global.NY * SurfaceRecBytes
	frames := opt.Steps / every
	if len(raw) != frames*frameBytes {
		t.Fatalf("file %d bytes, want %d frames x %d", len(raw), frames, frameBytes)
	}
	if res.Surface.Frames != frames || res.Surface.Bytes != len(raw) {
		t.Fatalf("stats %+v, want %d frames / %d bytes", res.Surface, frames, len(raw))
	}
	vals := mpiio.GetFloat32s(raw)
	nonzero := false
	for f := 0; f < frames; f++ {
		step := f * every
		for r, loc := range opt.Receivers {
			base := f*opt.Global.NX*opt.Global.NY*3 + (loc[1]*opt.Global.NX+loc[0])*3
			want := res.Seismograms[r][step]
			got := [3]float32{vals[base], vals[base+1], vals[base+2]}
			if got != want {
				t.Fatalf("frame %d receiver %d: file %v, seismogram %v", f, r, got, want)
			}
			if got != (([3]float32{})) {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("all compared records are zero — the cross-check is vacuous")
	}
}

// TestSurfaceOutputInvariants: the file is bit-identical across rank
// topologies and flush intervals, and flush accounting follows the
// configuration.
func TestSurfaceOutputInvariants(t *testing.T) {
	q := cvm.SoCal(2400, 2400, 1600, 400)
	var ref []byte
	var refStats [2]int // flushes, opens with flushEvery=1 baseline below
	for i, tc := range []struct {
		topo       mpi.Cart
		flushEvery int
	}{
		{mpi.NewCart(1, 1, 1), 1},
		{mpi.NewCart(2, 2, 1), 6},
		{mpi.NewCart(2, 1, 2), 3},
		{mpi.NewCart(1, 2, 2), 100}, // single flush at Finish
	} {
		fsys := surfaceFS()
		fsys.SetStripe("out/", 4, 1<<12)
		opt := surfaceOptions(tc.topo, fsys, 2, tc.flushEvery)
		res, err := Run(q, opt)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		raw := readSurface(t, fsys, "out/surface.bin")
		if i == 0 {
			ref = raw
			refStats = [2]int{res.Surface.Flushes, res.Surface.Opens}
			frames := opt.Steps / 2
			if res.Surface.Flushes != frames {
				t.Fatalf("flushEvery=1: %d flushes for %d frames", res.Surface.Flushes, frames)
			}
			continue
		}
		if !bytes.Equal(raw, ref) {
			t.Fatalf("%+v: surface file differs from single-rank per-frame-flush reference", tc)
		}
		if res.Surface.Flushes >= refStats[0] {
			t.Fatalf("%+v: aggregation did not reduce flushes (%d vs %d)", tc, res.Surface.Flushes, refStats[0])
		}
		if res.Surface.Opens >= refStats[1] {
			t.Fatalf("%+v: aggregation did not reduce opens (%d vs %d)", tc, res.Surface.Opens, refStats[1])
		}
		if res.Surface.MaxConcurrentOpens > agg.DefaultOpenThrottle {
			t.Fatalf("%+v: %d concurrent opens", tc, res.Surface.MaxConcurrentOpens)
		}
	}
}

func TestSurfaceOptionValidation(t *testing.T) {
	fsys := surfaceFS()
	opt := surfaceOptions(mpi.NewCart(1, 1, 1), fsys, 1, 1)
	opt.TemporalDepth = 2
	if _, _, err := Prepare(opt); err == nil {
		t.Error("Surface + TemporalDepth accepted")
	}
	opt = surfaceOptions(mpi.NewCart(1, 1, 1), fsys, 1, 1)
	opt.LTS.Enabled = true
	if _, _, err := Prepare(opt); err == nil {
		t.Error("Surface + LTS accepted")
	}
	opt = surfaceOptions(mpi.NewCart(1, 1, 1), fsys, 1, 1)
	opt.Surface.FS = nil
	if _, _, err := Prepare(opt); err == nil {
		t.Error("Surface without FS accepted")
	}
	// Prepare must not mutate the caller's SurfaceOptions when defaulting.
	shared := &SurfaceOptions{FS: fsys, Path: "s"}
	opt = surfaceOptions(mpi.NewCart(1, 1, 1), fsys, 1, 1)
	opt.Surface = shared
	if _, opt2, err := Prepare(opt); err != nil {
		t.Fatal(err)
	} else if shared.Every != 0 || opt2.Surface.Every != 1 {
		t.Errorf("defaulting leaked into the shared options (%d) or did not apply (%d)", shared.Every, opt2.Surface.Every)
	}
}
