package solver

import (
	"time"

	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// HaloBenchConfig configures a communication-only benchmark run: a full
// multi-rank world exchanging both wavefield phases with no kernel work,
// so the per-field and coalesced message layouts can be compared in
// isolation (cmd/benchtab -exp halo).
type HaloBenchConfig struct {
	Topo     mpi.Cart
	Local    grid.Dims // per-rank subgrid
	Model    CommModel
	CopyHalo bool
	Coalesce bool
	Threads  int
	Steps    int // measured exchange steps (velocity + stress per step)

	// EmulatedAlpha, when positive, arms mpi.World.SetLinkLatency so
	// every transmission charges the sender a fixed per-message overhead
	// of EmulatedAlpha. The in-process transport has near-zero
	// per-message startup cost, so protocols that trade message count
	// for message volume cannot be separated without it; a few
	// microseconds matches the Alpha terms of the perfmodel machine
	// descriptions (Jaguar-class: 8µs). Zero leaves the transport
	// unmodified.
	EmulatedAlpha time.Duration
}

// HaloBenchResult reports the measured exchange cost and the observed
// (not modeled) message traffic, counted at the runtime's delivery point.
type HaloBenchResult struct {
	SecPerStep float64 // wall time per (velocity+stress) exchange step

	// Per-step totals across all ranks, measured per phase.
	VelMsgs      float64
	VelFloats    float64
	StressMsgs   float64
	StressFloats float64

	// Checksum over every rank's full padded fields (ghosts included)
	// after the exchanges — identical across layouts and disciplines by
	// the bit-identity guarantee.
	Checksum float64
}

// RunHaloExchangeBench runs cfg.Steps velocity+stress halo exchanges on a
// world of cfg.Topo.Size() ranks with deterministic field contents and
// returns timing, per-phase message counts and a cross-layout checksum.
func RunHaloExchangeBench(cfg HaloBenchConfig) HaloBenchResult {
	if cfg.Steps <= 0 {
		cfg.Steps = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	var res HaloBenchResult
	world := mpi.NewWorld(cfg.Topo.Size())
	steps := cfg.Steps
	world.Run(func(c *mpi.Comm) {
		st := fd.NewState(cfg.Local)
		fillDeterministic(st, c.Rank())
		pool := sched.NewPool(cfg.Threads)
		defer pool.Close()
		hx := newHalo(c, cfg.Topo, cfg.CopyHalo, cfg.Coalesce, pool)

		exchange := func(n int) {
			for s := 0; s < n; s++ {
				hx.exchangeVelocities(st, cfg.Model)
				hx.exchangeStresses(st, cfg.Model)
			}
		}

		// Warm up buffers and plans, then count each phase separately:
		// exchanges are idempotent (fields never change), so phase-only
		// loops measure exactly the traffic the layout produces.
		exchange(2)
		c.Barrier()
		if c.Rank() == 0 {
			world.ResetMessageStats()
		}
		c.Barrier()
		for s := 0; s < steps; s++ {
			hx.exchangeVelocities(st, cfg.Model)
		}
		c.Barrier()
		if c.Rank() == 0 {
			m, f := world.MessageStats()
			res.VelMsgs = float64(m) / float64(steps)
			res.VelFloats = float64(f) / float64(steps)
			world.ResetMessageStats()
		}
		c.Barrier()
		for s := 0; s < steps; s++ {
			hx.exchangeStresses(st, cfg.Model)
		}
		c.Barrier()
		if c.Rank() == 0 {
			m, f := world.MessageStats()
			res.StressMsgs = float64(m) / float64(steps)
			res.StressFloats = float64(f) / float64(steps)
		}

		// Timed section: both phases per step, best of five repetitions
		// (the robust estimator under scheduler noise — GOMAXPROCS=1 runs
		// serialize every rank onto one OS thread).
		for rep := 0; rep < 5; rep++ {
			c.Barrier()
			t0 := time.Now()
			exchange(steps)
			c.Barrier()
			if c.Rank() == 0 {
				if sec := time.Since(t0).Seconds() / float64(steps); rep == 0 || sec < res.SecPerStep {
					res.SecPerStep = sec
				}
			}
		}

		// Cross-layout checksum (ghosts included).
		var sum float64
		for _, f := range append(st.Velocities(), st.Stresses()...) {
			for _, v := range f.Data() {
				sum += float64(v)
			}
		}
		total := c.Allreduce([]float64{sum}, mpi.Sum)[0]
		if c.Rank() == 0 {
			res.Checksum = total
		}
	})
	return res
}

// RunHaloLayoutDuel measures per-field vs coalesced sec/step in one world
// with interleaved repetitions — per-field, coalesced, per-field, ... —
// taking the per-layout minimum. The paired design cancels the scheduler
// and heap drift that separate runs suffer on a busy host, which at
// bandwidth-dominated sizes is larger than the layout difference itself.
// The two layouts share the comm (their tag spaces are disjoint) and the
// same fields, so both time exactly the same exchange.
func RunHaloLayoutDuel(cfg HaloBenchConfig) (perField, coalesced float64) {
	if cfg.Steps <= 0 {
		cfg.Steps = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	steps := cfg.Steps
	world := mpi.NewWorld(cfg.Topo.Size())
	world.Run(func(c *mpi.Comm) {
		st := fd.NewState(cfg.Local)
		fillDeterministic(st, c.Rank())
		pool := sched.NewPool(cfg.Threads)
		defer pool.Close()
		halos := [2]*halo{
			newHalo(c, cfg.Topo, cfg.CopyHalo, false, pool),
			newHalo(c, cfg.Topo, cfg.CopyHalo, true, pool),
		}
		times := [2]float64{}
		run := func(h *halo) {
			for s := 0; s < steps; s++ {
				h.exchangeVelocities(st, cfg.Model)
				h.exchangeStresses(st, cfg.Model)
			}
		}
		run(halos[0])
		run(halos[1]) // warm buffers and plans
		for rep := 0; rep < 5; rep++ {
			for li, h := range halos {
				c.Barrier()
				t0 := time.Now()
				run(h)
				c.Barrier()
				if c.Rank() == 0 {
					if sec := time.Since(t0).Seconds() / float64(steps); rep == 0 || sec < times[li] {
						times[li] = sec
					}
				}
			}
		}
		if c.Rank() == 0 {
			perField, coalesced = times[0], times[1]
		}
	})
	return perField, coalesced
}

// fillDeterministic gives every interior cell of every field a value that
// depends only on (rank, field, i, j, k), so two runs with different
// message layouts exchange identical data.
func fillDeterministic(st *fd.State, rank int) {
	fields := append(st.Velocities(), st.Stresses()...)
	for fi, f := range fields {
		d := f.Dims
		for k := 0; k < d.NZ; k++ {
			for j := 0; j < d.NY; j++ {
				for i := 0; i < d.NX; i++ {
					h := uint32(rank*9+fi)*2654435761 + uint32(((k*d.NY+j)*d.NX+i))*40503
					f.Set(i, j, k, float32(h%8191)/8191)
				}
			}
		}
	}
}

// RunTemporalHaloDuel measures the classic two-exchanges-per-step protocol
// against the deep super-step exchange at temporal depth T in one world,
// on an equal per-step basis: each timed repetition advances cfg.Steps
// steps' worth of communication — cfg.Steps velocity+stress exchange pairs
// on the classic side, cfg.Steps/T deep exchanges on the other. The
// interleaved minimum-of-reps design matches RunHaloLayoutDuel: both
// protocols share the comm (disjoint tag spaces) and the scheduler drift
// of a busy host hits each alike. Returns wall seconds per simulated step
// for each protocol (rank-0 values). Fields are exchanged without
// attenuation memory variables on either side, so the duel compares the
// protocols on the same nine wavefields.
func RunTemporalHaloDuel(cfg HaloBenchConfig, T int) (classic, deep float64) {
	if cfg.Steps < T {
		cfg.Steps = T
	}
	cfg.Steps -= cfg.Steps % T
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	steps := cfg.Steps
	world := mpi.NewWorld(cfg.Topo.Size())
	if cfg.EmulatedAlpha > 0 {
		world.SetLinkLatency(cfg.EmulatedAlpha)
	}
	world.Run(func(c *mpi.Comm) {
		stC := fd.NewState(cfg.Local)
		stD := fd.NewStateG(cfg.Local, fd.TemporalGhost(T))
		fillDeterministic(stC, c.Rank())
		fillDeterministic(stD, c.Rank())
		pool := sched.NewPool(cfg.Threads)
		defer pool.Close()
		hc := newHalo(c, cfg.Topo, cfg.CopyHalo, cfg.Coalesce, pool)
		hd := newHalo(c, cfg.Topo, cfg.CopyHalo, cfg.Coalesce, pool)

		spec := deepSpec{d: cfg.Local}
		dv, ds := fd.VelDepth(T), fd.StressDepth(T)
		for slot, f := range stD.Fields() {
			depth := ds
			if slot < 3 {
				depth = dv
			}
			spec.fields = append(spec.fields, deepField{f: f, slot: slot, depth: depth})
		}

		runClassic := func() {
			for s := 0; s < steps; s++ {
				hc.exchangeVelocities(stC, cfg.Model)
				hc.exchangeStresses(stC, cfg.Model)
			}
		}
		runDeep := func() {
			for s := 0; s < steps/T; s++ {
				hd.exchangeDeep(spec)
			}
		}
		runClassic()
		runDeep() // warm buffers and plans
		times := [2]float64{}
		for rep := 0; rep < 5; rep++ {
			for li, run := range []func(){runClassic, runDeep} {
				c.Barrier()
				t0 := time.Now()
				run()
				c.Barrier()
				if c.Rank() == 0 {
					if sec := time.Since(t0).Seconds() / float64(steps); rep == 0 || sec < times[li] {
						times[li] = sec
					}
				}
			}
		}
		if c.Rank() == 0 {
			classic, deep = times[0], times[1]
		}
	})
	return classic, deep
}
