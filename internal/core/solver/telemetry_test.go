package solver

import (
	"bytes"
	"testing"

	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// Telemetry must be a pure observer: enabling it cannot change a single
// bit of the physics, under any comm model, thread count, or halo layout.
func TestTelemetryBitIdentity(t *testing.T) {
	q := cvm.SoCal(2400, 2400, 1600, 400)
	models := []CommModel{Synchronous, Asynchronous, AsyncReduced, AsyncOverlap}
	for _, model := range models {
		for _, threads := range []int{1, 4} {
			for _, coalesce := range []bool{false, true} {
				mk := func(tel *telemetry.Options) Options {
					opt := baseOptions(mpi.NewCart(2, 2, 1))
					opt.Steps = 40
					opt.Comm = model
					opt.Threads = threads
					opt.CoalesceHalo = coalesce
					opt.Telemetry = tel
					return opt
				}
				ref, err := Run(q, mk(nil))
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(q, mk(&telemetry.Options{TraceEvents: 256}))
				if err != nil {
					t.Fatal(err)
				}
				label := model.String()
				for r := range ref.Seismograms {
					for n := range ref.Seismograms[r] {
						if ref.Seismograms[r][n] != got.Seismograms[r][n] {
							t.Fatalf("%s/threads=%d/coalesce=%v: telemetry changed receiver %d sample %d",
								label, threads, coalesce, r, n)
						}
					}
				}
				for i := range ref.PGVH {
					if ref.PGVH[i] != got.PGVH[i] {
						t.Fatalf("%s/threads=%d/coalesce=%v: telemetry changed PGV at %d",
							label, threads, coalesce, i)
					}
				}
				if ref.Telemetry != nil {
					t.Fatal("report present with telemetry off")
				}
				rep := got.Telemetry
				if rep == nil {
					t.Fatal("report missing with telemetry on")
				}
				if rep.Ranks != 4 || rep.StepWindows != 40 {
					t.Fatalf("%s: report ranks=%d windows=%d", label, rep.Ranks, rep.StepWindows)
				}
				if rep.Stat(telemetry.Velocity).Spans == 0 || rep.Stat(telemetry.Stress).Spans == 0 {
					t.Fatalf("%s: compute phases unrecorded", label)
				}
				for _, p := range []telemetry.Phase{telemetry.Pack, telemetry.Send, telemetry.Recv, telemetry.Unpack} {
					if rep.Stat(p).Spans == 0 {
						t.Fatalf("%s: comm phase %v unrecorded", label, p)
					}
				}
				if syncSpans := rep.Stat(telemetry.Sync).Spans; (model == Synchronous) != (syncSpans > 0) {
					t.Fatalf("%s: sync spans = %d", label, syncSpans)
				}
				if len(rep.Neighbors) == 0 {
					t.Fatalf("%s: neighbor counters missing", label)
				}
				if len(rep.Events) == 0 {
					t.Fatalf("%s: event trace empty", label)
				}
			}
		}
	}
}

// The aggregated trace must export as loadable Chrome trace-event JSON.
func TestTelemetryTraceExport(t *testing.T) {
	opt := baseOptions(mpi.NewCart(2, 1, 1))
	opt.Steps = 10
	opt.Telemetry = &telemetry.Options{TraceEvents: 128}
	res, err := Run(cvm.HardRock(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Telemetry.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) {
		t.Error("trace JSON missing traceEvents array")
	}
}

// stepLoopSeconds runs the fixture and returns the measured step-loop time
// (the Eq. 7 terms; setup and teardown excluded).
func stepLoopSeconds(q cvm.Querier, opt Options) float64 {
	res, err := Run(q, opt)
	if err != nil {
		panic(err)
	}
	tm := res.Timing
	return tm.Comp + tm.Comm + tm.Sync + tm.Output
}

// Telemetry-on must stay within 5% of telemetry-off at the strong-scaling
// subgrid (16^3 per rank), where per-step work is smallest and fixed
// per-probe cost hurts most. Wall-clock sensitive: skipped in short mode
// and under the race detector.
func TestTelemetryOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in short mode")
	}
	if telemetry.RaceEnabled {
		t.Skip("timing-sensitive; skipped under the race detector")
	}
	q := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	mk := func(tel *telemetry.Options) Options {
		opt := baseOptions(mpi.NewCart(2, 1, 1))
		opt.Global = grid.Dims{NX: 32, NY: 16, NZ: 16} // 16^3 per rank
		opt.Steps = 60
		opt.Telemetry = tel
		return opt
	}
	// Warm up caches, pools and the scheduler once, then interleave the two
	// configurations and keep each one's best time, so drift hits both.
	stepLoopSeconds(q, mk(nil))
	bestOff, bestOn := 1e18, 1e18
	for i := 0; i < 7; i++ {
		if s := stepLoopSeconds(q, mk(nil)); s < bestOff {
			bestOff = s
		}
		if s := stepLoopSeconds(q, mk(&telemetry.Options{TraceEvents: 1 << 15})); s < bestOn {
			bestOn = s
		}
	}
	overhead := bestOn/bestOff - 1
	t.Logf("step loop: off %.4fs, on %.4fs, overhead %.2f%%", bestOff, bestOn, 100*overhead)
	// 0.5 ms of absolute slack absorbs scheduler jitter on loaded runners
	// without masking a real per-probe regression at this problem size.
	if bestOn > bestOff*1.05+500e-6 {
		t.Errorf("telemetry overhead %.2f%% exceeds the 5%% budget (off %.4fs, on %.4fs)",
			100*overhead, bestOff, bestOn)
	}
}
