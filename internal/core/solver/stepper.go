package solver

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core/attenuation"
	"repro/internal/core/boundary"
	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/output"
	"repro/internal/telemetry"
)

// Prepare normalizes opt (defaulting exactly as Run does) and builds the
// domain decomposition. External harnesses (internal/ft) call it once
// before spawning ranks so every rank sees identical resolved options.
func Prepare(opt Options) (decomp.Decomp, Options, error) {
	if opt.Topo.Size() == 0 {
		opt.Topo = mpi.NewCart(1, 1, 1)
	}
	if opt.Threads < 0 {
		return decomp.Decomp{}, opt, fmt.Errorf("solver: Threads must be >= 0, got %d", opt.Threads)
	}
	if opt.Dt < 0 {
		return decomp.Decomp{}, opt, fmt.Errorf("solver: Dt must be positive, or zero for automatic; got %g", opt.Dt)
	}
	if opt.CFL < 0 || opt.CFL > 1 {
		return decomp.Decomp{}, opt, fmt.Errorf("solver: CFL must lie in (0, 1], got %g", opt.CFL)
	}
	if opt.CFL == 0 {
		opt.CFL = 0.5
	}
	if err := opt.Variant.Validate(); err != nil {
		return decomp.Decomp{}, opt, fmt.Errorf("solver: %w", err)
	}
	if opt.Threads == 0 {
		opt.Threads = 1
	}
	if opt.RecordEvery <= 0 {
		opt.RecordEvery = 1
	}
	if opt.PMLWidth <= 0 {
		opt.PMLWidth = boundary.DefaultPMLWidth
	}
	if opt.SpongeWidth <= 0 {
		opt.SpongeWidth = boundary.DefaultSpongeWidth
	}
	if opt.SpongeAlpha <= 0 {
		opt.SpongeAlpha = boundary.DefaultSpongeAlpha
	}
	if opt.Band.FMax <= 0 {
		opt.Band = attenuation.DefaultBand
	}
	if opt.TemporalDepth == 0 {
		opt.TemporalDepth = 1
	}
	if opt.TemporalDepth < 1 || opt.TemporalDepth > fd.MaxTemporalDepth {
		return decomp.Decomp{}, opt, fmt.Errorf("solver: TemporalDepth must be in [1, %d], got %d",
			fd.MaxTemporalDepth, opt.TemporalDepth)
	}
	if T := opt.TemporalDepth; T > 1 {
		if opt.Comm == AsyncOverlap {
			return decomp.Decomp{}, opt, fmt.Errorf("solver: TemporalDepth > 1 does not support the overlap comm model (the super-step has no per-step exchange to overlap)")
		}
		if opt.ABC == MPMLABC {
			return decomp.Decomp{}, opt, fmt.Errorf("solver: TemporalDepth > 1 does not support M-PML boundaries (split-field zone state cannot be recomputed in ghost extensions)")
		}
		if opt.Fault != nil {
			return decomp.Decomp{}, opt, fmt.Errorf("solver: TemporalDepth > 1 does not support DFR fault mode")
		}
		need := 4 * T
		dims := [3]int{opt.Global.NX, opt.Global.NY, opt.Global.NZ}
		parts := [3]int{opt.Topo.PX, opt.Topo.PY, opt.Topo.PZ}
		for ax := 0; ax < 3; ax++ {
			if parts[ax] > 1 && dims[ax]/parts[ax] < need {
				return decomp.Decomp{}, opt, fmt.Errorf("solver: TemporalDepth %d needs >= %d cells per rank on decomposed axes; axis %d gives %d",
					T, need, ax, dims[ax]/parts[ax])
			}
		}
	}
	if so := opt.Surface; so != nil {
		if so.FS == nil || so.Path == "" {
			return decomp.Decomp{}, opt, fmt.Errorf("solver: Surface output needs FS and Path")
		}
		if opt.TemporalDepth > 1 || opt.LTS.Enabled {
			return decomp.Decomp{}, opt, fmt.Errorf("solver: Surface output requires classic stepping (TemporalDepth <= 1, LTS off): collective flushes need step-lockstep ranks")
		}
		// Normalize a copy so shared Options values are not mutated.
		ns := *so
		if ns.Every <= 0 {
			ns.Every = 1
		}
		if ns.FlushEvery <= 0 {
			ns.FlushEvery = 1
		}
		opt.Surface = &ns
	}
	if opt.LTS.Enabled {
		if opt.TemporalDepth > 1 {
			return decomp.Decomp{}, opt, fmt.Errorf("solver: LTS and TemporalDepth > 1 are mutually exclusive (pick one step-batching scheme)")
		}
		if opt.ABC == MPMLABC {
			return decomp.Decomp{}, opt, fmt.Errorf("solver: LTS does not support M-PML boundaries (split-field zone state has no rate-boundary interpolant)")
		}
		if opt.Fault != nil {
			return decomp.Decomp{}, opt, fmt.Errorf("solver: LTS does not support DFR fault mode")
		}
		switch opt.LTS.MaxK {
		case 0:
			opt.LTS.MaxK = 2
		case 1, 2:
		default:
			return decomp.Decomp{}, opt, fmt.Errorf("solver: LTS.MaxK must be 1 or 2 (0 defaults to 2), got %d", opt.LTS.MaxK)
		}
		switch opt.LTS.MaxRateRatio {
		case 0:
			opt.LTS.MaxRateRatio = 2
		case 2, 4:
		default:
			return decomp.Decomp{}, opt, fmt.Errorf("solver: LTS.MaxRateRatio must be 2 or 4 (0 defaults to 2), got %d", opt.LTS.MaxRateRatio)
		}
	}
	var dc decomp.Decomp
	var err error
	if pr := opt.LTS.PlaneRates; opt.LTS.Enabled && pr != nil {
		dc, err = decomp.NewWorkBalanced(opt.Global, opt.Topo, pr.X, pr.Y, pr.Z)
	} else {
		dc, err = decomp.New(opt.Global, opt.Topo)
	}
	if err != nil {
		return decomp.Decomp{}, opt, err
	}
	if opt.Fault != nil && opt.Topo.PY != 1 {
		return decomp.Decomp{}, opt, fmt.Errorf("solver: DFR mode requires PY=1 (fault plane may not cross rank seams in y)")
	}
	if opt.Fault != nil && opt.Comm == AsyncOverlap {
		return decomp.Decomp{}, opt, fmt.Errorf("solver: DFR mode does not support the overlap comm model")
	}
	return dc, opt, nil
}

// Stepper drives one rank of a prepared run one time step at a time —
// the re-entrant core of runRank, exposed so the fault-tolerance harness
// can interleave stepping with checkpointing and roll the step cursor
// back after a coordinated recovery. All per-step observables are
// index-addressed (receiver samples by sample index, moment rate by step,
// PGV by monotone max-fold), so replaying a step range after a rollback
// overwrites identical values and the final outputs stay bit-identical
// to an uninterrupted run. (DFR slip-rate *history* recording appends and
// is not replay-safe; harnesses must not combine Fault.RecordEvery with
// rollback.)
type Stepper struct {
	rs         *rankState
	opt        Options
	dc         decomp.Decomp
	c          *mpi.Comm
	dt         float64
	step       int
	momentRate []float64
	tm         Timing
	surfErr    error
}

// NewStepper builds one rank's solver state inside a world body. opt and
// dc must come from Prepare. Callers must Close the Stepper.
func NewStepper(c *mpi.Comm, q cvm.Querier, dc decomp.Decomp, opt Options) (*Stepper, error) {
	rs := &rankState{comm: c, sub: dc.SubFor(c.Rank())}
	// Depth > 1 pads every field (state, medium, memory variables) with a
	// uniform 4T-cell ghost frame; the kernels share one flat index across
	// the arrays, so the widths must agree.
	gw := fd.TemporalGhost(opt.TemporalDepth)
	rs.med = medium.FromCVMGhost(q, dc, rs.sub, opt.H, gw)
	rs.st = fd.NewStateG(rs.sub.Local, gw)
	rs.pool = sched.NewPool(opt.Threads)
	ok := false
	defer func() {
		if !ok {
			rs.pool.Close()
		}
	}()
	rs.hx = newHalo(c, opt.Topo, opt.CopyHalo, opt.CoalesceHalo, rs.pool)
	if opt.Telemetry != nil {
		rs.tel = telemetry.NewRecorder(c.Rank(), opt.Telemetry.TraceEvents)
		c.SetTelemetry(rs.tel)
		rs.pool.SetTelemetry(rs.tel)
		rs.hx.tel = rs.tel
	}
	for ax := 0; ax < 3; ax++ {
		rs.nbrMask[ax][0] = opt.Topo.Neighbor(c.Rank(), ax, -1) >= 0
		rs.nbrMask[ax][1] = opt.Topo.Neighbor(c.Rank(), ax, +1) >= 0
	}

	// Global stable dt at the configured CFL safety factor.
	dt := opt.Dt
	if dt <= 0 {
		dt = c.Allreduce([]float64{rs.med.StableDt(opt.CFL)}, mpi.Min)[0]
	}
	// Multi-rate local time stepping: assign per-rank rate-2^k clusters.
	// This rank's own state (attenuation coefficients, sponge strength,
	// source injection) is built against its local step dt·rate below.
	stepDt := dt
	if opt.LTS.Enabled {
		rs.lts = newLTSRank(c, opt, rs, dt)
		stepDt = rs.lts.localDt
	}

	// Boundary conditions on the physical faces this rank owns.
	faces := ownedFaces(dc, c.Rank(), opt)
	rs.compBox = fd.FullBox(rs.sub.Local)
	switch opt.ABC {
	case MPMLABC:
		vpMax := c.Allreduce([]float64{rs.med.MaxVp}, mpi.Max)[0]
		rs.zones, rs.compBox = boundary.BuildPML(rs.sub.Local, faces, opt.PMLWidth,
			boundary.DefaultMPMLRatio, boundary.DefaultPMLReflection, vpMax, opt.H)
	case SpongeABC:
		globalFaces := boundary.FaceSet{
			XLo: true, XHi: true, YLo: true, YHi: true,
			ZLo: !opt.FreeSurface, ZHi: true,
		}
		alpha := opt.SpongeAlpha
		if rs.lts != nil && rs.lts.rate > 1 {
			// One coarse-step application must damp like `rate` base-step
			// applications; the exponential taper g = exp(-(αx)²)
			// composes exactly as g^rate = exp(-(α√rate·x)²).
			alpha *= math.Sqrt(float64(rs.lts.rate))
		}
		rs.sponge = boundary.NewSpongeGlobal(rs.sub.Local, opt.Global,
			[3]int{rs.sub.OffX, rs.sub.OffY, rs.sub.OffZ},
			opt.SpongeWidth, alpha, globalFaces)
	}
	if opt.FreeSurface && rs.sub.OffZ == 0 {
		rs.fs = boundary.NewFreeSurface(rs.sub.Local)
	}
	if opt.Attenuation {
		rs.atten = attenuation.New(rs.med, opt.Band, stepDt)
		rs.atten.Origin = [3]int{rs.sub.OffX, rs.sub.OffY, rs.sub.OffZ}
	}
	// At depth > 1 the stress stages recompute ghost cells up to 4T-4 deep
	// toward neighbors; a neighbor-owned source in that region must inject
	// here too, or the recomputed cells diverge from the owner's.
	var srcLo, srcHi [3]int
	if e := 4*opt.TemporalDepth - 4; opt.TemporalDepth > 1 {
		for ax := 0; ax < 3; ax++ {
			if rs.nbrMask[ax][0] {
				srcLo[ax] = e
			}
			if rs.nbrMask[ax][1] {
				srcHi[ax] = e
			}
		}
	}
	rs.srcs = source.LocalizeExt(opt.Sources, rs.sub, opt.H, srcLo, srcHi)

	if opt.Fault != nil {
		if err := rs.setupFault(opt, dt); err != nil {
			return nil, err
		}
	}

	// Receiver series are preallocated and sample-indexed so a replayed
	// step overwrites its own sample instead of appending a duplicate.
	nSamples := (opt.Steps + opt.RecordEvery - 1) / opt.RecordEvery
	for idx, r := range opt.Receivers {
		if li, lj, lk, ok := rs.sub.Contains(r[0], r[1], r[2]); ok {
			or := ownedReceiver{
				idx: idx, li: li, lj: lj, lk: lk,
				series: make([][3]float32, nSamples),
			}
			if rs.lts != nil && rs.lts.rate > 1 {
				or.sampled = make([]bool, nSamples)
			}
			rs.receivers = append(rs.receivers, or)
		}
	}
	if opt.TrackPGV && rs.sub.OffZ == 0 {
		n := rs.sub.Local.NX * rs.sub.Local.NY
		rs.pgvh = make([]float64, n)
		rs.pgvx = make([]float64, n)
		rs.pgvy = make([]float64, n)
		rs.pgvz = make([]float64, n)
	}
	rs.pgvFolded = opt.Variant == fd.Fused && rs.sponge != nil && rs.pgvh != nil &&
		opt.TemporalDepth <= 1

	if so := opt.Surface; so != nil {
		var segs []mpiio.Segment
		if rs.sub.OffZ == 0 {
			segs = mpiio.BlockSegments(grid.Dims{NX: opt.Global.NX, NY: opt.Global.NY, NZ: 1},
				rs.sub.OffX, rs.sub.OffX+rs.sub.Local.NX,
				rs.sub.OffY, rs.sub.OffY+rs.sub.Local.NY, 0, 1, SurfaceRecBytes)
		}
		frameBytes := opt.Global.NX * opt.Global.NY * SurfaceRecBytes
		d, err := output.NewDist(c, so.FS, so.Path, frameBytes, segs, so.FlushEvery, so.Agg, rs.tel)
		if err != nil {
			return nil, err
		}
		rs.surf = d
	}

	s := &Stepper{rs: rs, opt: opt, dc: dc, c: c, dt: dt}
	if opt.Fault != nil {
		s.momentRate = make([]float64, opt.Steps)
	}
	ok = true
	return s, nil
}

// Dt returns the resolved global time step.
func (s *Stepper) Dt() float64 { return s.dt }

// StepIndex returns the index of the next step to execute.
func (s *Stepper) StepIndex() int { return s.step }

// SetStepIndex rewinds (or advances) the step cursor — the rollback half
// of coordinated recovery, paired with a checkpoint.Load into State(). At
// temporal depth T > 1 the cursor must land on a super-step boundary (a
// multiple of T): mid-super-step wavefield states never exist to roll back
// to, and resuming off-boundary would misalign the erosion schedule.
func (s *Stepper) SetStepIndex(n int) error {
	if T := s.opt.TemporalDepth; T > 1 && n%T != 0 {
		return fmt.Errorf("solver: step index %d is not a super-step boundary (TemporalDepth %d)", n, T)
	}
	if l := s.rs.lts; l != nil && l.maxRate > 1 && n%l.maxRate != 0 {
		return fmt.Errorf("solver: step index %d is not an LTS cycle boundary (max rate %d)", n, l.maxRate)
	}
	if s.rs.surf != nil {
		// Drop buffered surface frames the replay will re-extract; flushed
		// frames are offset-addressed and overwrite identically.
		e := s.opt.Surface.Every
		s.rs.surf.Rewind((n + e - 1) / e)
	}
	s.step = n
	return nil
}

// StepAlign returns the alignment unit of checkpointable step indices:
// one LTS cycle (the maximum rate — mid-cycle, coarse ranks have no
// wavefield state to save), one temporal-tiling super-step, or 1 for
// classic stepping. Harnesses round checkpoint intervals up to it.
func (s *Stepper) StepAlign() int {
	if l := s.rs.lts; l != nil && l.maxRate > 1 {
		return l.maxRate
	}
	if T := s.opt.TemporalDepth; T > 1 {
		return T
	}
	return 1
}

// LTSRates returns the per-rank step-rate multipliers of an LTS run
// (identical on every rank), or nil when LTS is disabled.
func (s *Stepper) LTSRates() []int {
	if s.rs.lts == nil {
		return nil
	}
	return append([]int(nil), s.rs.lts.rates...)
}

// Done reports whether every configured step has executed.
func (s *Stepper) Done() bool { return s.step >= s.opt.Steps }

// State exposes the rank's wavefield state for checkpoint save/restore.
func (s *Stepper) State() *fd.State { return s.rs.st }

// Atten exposes the rank's attenuation memory variables (nil when
// attenuation is off) for checkpoint save/restore.
func (s *Stepper) Atten() *attenuation.Model { return s.rs.atten }

// Recorder exposes the rank's telemetry recorder (nil when telemetry is
// disabled) so harnesses can attribute checkpoint and recovery spans.
func (s *Stepper) Recorder() *telemetry.Recorder { return s.rs.tel }

// Step executes one full time step: kernels, halo exchange, sources,
// boundaries, and index-addressed observable extraction. At temporal depth
// T > 1 one call executes a whole super-step — T steps (fewer on the final
// partial super-step) with a single deep exchange — and the observables of
// every contained step are extracted inside the sweep; the step cursor
// advances by the number of steps executed.
func (s *Stepper) Step() {
	if l := s.rs.lts; l != nil && l.maxRate > 1 {
		// One call executes a whole cycle: maxRate base steps, during
		// which this rank takes maxRate/rate local steps. All messages a
		// cycle produces are consumed within it, so cycle boundaries are
		// clean checkpoint/rollback points.
		for u := 0; u < l.maxRate; u++ {
			sub := s.step + u
			if sub%l.rate != 0 {
				continue
			}
			s.rs.ltsAdvance(s.opt, l, sub, &s.tm)
			// Observables land on the base-step index this local step
			// reaches (its post-step state).
			rec := sub + l.rate - 1
			t0 := time.Now()
			sp := s.rs.tel.Span(telemetry.Output)
			if rec%s.opt.RecordEvery == 0 {
				si := rec / s.opt.RecordEvery
				for i := range s.rs.receivers {
					r := &s.rs.receivers[i]
					r.series[si] = [3]float32{
						s.rs.st.VX.At(r.li, r.lj, r.lk),
						s.rs.st.VY.At(r.li, r.lj, r.lk),
						s.rs.st.VZ.At(r.li, r.lj, r.lk),
					}
					if r.sampled != nil {
						r.sampled[si] = true
					}
				}
			}
			s.rs.trackPGV()
			sp.End()
			s.tm.Output += time.Since(t0).Seconds()
		}
		s.rs.tel.StepEnd()
		s.step += l.maxRate
		return
	}
	if T := s.opt.TemporalDepth; T > 1 {
		if left := s.opt.Steps - s.step; left < T {
			T = left
		}
		s.rs.advanceSuper(s.opt, s.dt, s.step, T, &s.tm)
		s.rs.tel.StepEnd()
		s.step += T
		return
	}
	step := s.step
	tNow := float64(step+1) * s.dt
	s.rs.advance(s.opt, s.dt, tNow, &s.tm)

	if s.rs.fault != nil {
		s.momentRate[step] = s.rs.fault.MomentRate(s.rs.med)
		if s.rs.recorder != nil && step%s.opt.Fault.RecordEvery == 0 {
			s.rs.recorder.Record()
		}
	}

	t0 := time.Now()
	sp := s.rs.tel.Span(telemetry.Output)
	if step%s.opt.RecordEvery == 0 {
		si := step / s.opt.RecordEvery
		for i := range s.rs.receivers {
			r := &s.rs.receivers[i]
			r.series[si] = [3]float32{
				s.rs.st.VX.At(r.li, r.lj, r.lk),
				s.rs.st.VY.At(r.li, r.lj, r.lk),
				s.rs.st.VZ.At(r.li, r.lj, r.lk),
			}
		}
	}
	s.rs.trackPGV()
	sp.End()
	if s.rs.surf != nil && step%s.opt.Surface.Every == 0 {
		if err := s.rs.surf.AppendFrame(step/s.opt.Surface.Every, s.rs.packSurfaceFrame()); err != nil && s.surfErr == nil {
			s.surfErr = err
		}
	}
	s.tm.Output += time.Since(t0).Seconds()
	s.rs.tel.StepEnd()
	s.step = step + 1
}

// Finish gathers all per-rank outputs at rank 0 (collective: every rank
// must call it) and returns the rank-0 Result (nil on other ranks).
func (s *Stepper) Finish() (*Result, error) {
	// Final surface flush first — a collective, like the gathers below,
	// so every rank takes it in the same order.
	if s.rs.surf != nil {
		if err := s.rs.surf.Flush(); err != nil && s.surfErr == nil {
			s.surfErr = err
		}
	}
	// Coarse LTS ranks fill the seismogram samples they never computed
	// by linear interpolation before the gather.
	s.rs.ltsFillReceivers()
	res, err := s.rs.collect(s.c, s.dc, s.opt, s.dt, s.momentRate, s.tm)
	if err == nil && s.surfErr != nil {
		err = s.surfErr
	}
	if err != nil {
		return nil, err
	}
	if res != nil && s.rs.surf != nil {
		res.Surface = &s.rs.surf.Stats
	}
	return res, nil
}

// SurfaceWriter exposes the rank's aggregated surface-output writer
// (nil when Options.Surface is unset) so harnesses can verify stripe
// checksums after a run.
func (s *Stepper) SurfaceWriter() *output.Dist { return s.rs.surf }

// Close releases the rank's worker pool.
func (s *Stepper) Close() { s.rs.pool.Close() }
