package solver

import (
	"fmt"
	"time"

	"repro/internal/core/fd"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// LTSOptions configures multi-rate local time stepping: ranks whose local
// medium admits a larger stable step advance with dt·2^k, exchanging
// halos with faster neighbors through time-interpolated ghost sections.
// Work drops by the fraction of cells running above rate 1; accuracy at
// rate boundaries degrades to the linear-in-time interpolation error (and
// one velocity-ghost time level of lag on the coarse side), which the
// `-exp lts` benchmark quantifies against the global-dt reference.
type LTSOptions struct {
	// Enabled turns the multi-rate schedule on. A run whose assigned
	// rates are all 1 dispatches to the classic path and is bit-identical
	// to LTS off.
	Enabled bool
	// MaxK caps the rate exponent: ranks step at dt·2^k with k <= MaxK.
	// 0 defaults to 2 (rates 1/2/4); valid explicit values are 1 and 2.
	MaxK int
	// MaxRateRatio caps the step-rate ratio between face neighbors (the
	// cluster grading constraint). 0 defaults to 2; valid explicit
	// values are 2 and 4.
	MaxRateRatio int
	// WorkBalance requests work-weighted cut placement: partition costs
	// count cells/rate instead of raw cells, shrinking base-rate
	// subdomains so the critical path reflects the LTS work reduction.
	// Run and ft.RunWorld fill PlaneRates via PlanLTS when it is unset.
	WorkBalance bool
	// PlaneRates, when non-nil, is consumed by Prepare to place
	// work-balanced cuts (usually filled by PlanLTS from the velocity
	// model). Nil axes keep the balanced block distribution.
	PlaneRates *PlaneRates
}

// PlaneRates carries per-axis per-plane step-rate estimates for the
// work-balanced decomposition: X[i] is the rate of the most restrictive
// cell in global x-plane i, and likewise for Y/Z.
type PlaneRates struct {
	X, Y, Z []int
}

// PlanLTS scans the velocity model once and fills Options.LTS.PlaneRates
// with per-plane rate estimates for the work-balanced decomposition. It
// is a no-op unless LTS with WorkBalance is enabled and the rates are not
// already present. Axes whose planes all share one rate are left nil so a
// uniform medium keeps the classic block layout (and hence rate-1-only
// runs stay bit-identical to the classic path).
func PlanLTS(q cvm.Querier, opt Options) (Options, error) {
	if !opt.LTS.Enabled || !opt.LTS.WorkBalance || opt.LTS.PlaneRates != nil {
		return opt, nil
	}
	if !opt.Global.Valid() {
		return opt, fmt.Errorf("solver: PlanLTS needs valid global dims, got %v", opt.Global)
	}
	cfl := opt.CFL
	if cfl == 0 {
		cfl = 0.5
	}
	maxK := opt.LTS.MaxK
	if maxK == 0 {
		maxK = 2
	}
	nx, ny, nz := opt.Global.NX, opt.Global.NY, opt.Global.NZ
	maxVpX := make([]float64, nx)
	maxVpY := make([]float64, ny)
	maxVpZ := make([]float64, nz)
	for k := 0; k < nz; k++ {
		z := float64(k) * opt.H
		for j := 0; j < ny; j++ {
			y := float64(j) * opt.H
			for i := 0; i < nx; i++ {
				vp := q.Query(float64(i)*opt.H, y, z).Vp
				if vp > maxVpX[i] {
					maxVpX[i] = vp
				}
				if vp > maxVpY[j] {
					maxVpY[j] = vp
				}
				if vp > maxVpZ[k] {
					maxVpZ[k] = vp
				}
			}
		}
	}
	globalMax := 0.0
	for _, vp := range maxVpX {
		if vp > globalMax {
			globalMax = vp
		}
	}
	if globalMax <= 0 {
		return opt, fmt.Errorf("solver: PlanLTS found no positive P-wave speed in the model")
	}
	baseDt := opt.Dt
	if baseDt <= 0 {
		baseDt = medium.StableDtFor(globalMax, opt.H, cfl)
	}
	rateOf := func(vps []float64) []int {
		rates := make([]int, len(vps))
		mixed := false
		for i, vp := range vps {
			rates[i] = ltsRateFor(medium.StableDtFor(vp, opt.H, cfl), baseDt, maxK, opt.Steps)
			if rates[i] != rates[0] {
				mixed = true
			}
		}
		if !mixed {
			return nil
		}
		return rates
	}
	opt.LTS.PlaneRates = &PlaneRates{X: rateOf(maxVpX), Y: rateOf(maxVpY), Z: rateOf(maxVpZ)}
	return opt, nil
}

// ltsRateFor computes the rate-2^k multiplier a subdomain with stable
// step localDt earns over the base step: the largest power of two <= 2^maxK
// that both fits under localDt/baseDt and divides the step count (cycles
// must tile the run exactly; an odd Steps degrades everything to rate 1).
func ltsRateFor(localDt, baseDt float64, maxK, steps int) int {
	rate := 1
	for k := 0; k < maxK; k++ {
		next := rate * 2
		if steps%next != 0 || localDt < baseDt*float64(next) {
			break
		}
		rate = next
	}
	return rate
}

// ltsGradeRates enforces the cluster grading constraint in place: no rank
// may step more than maxRatio times slower than a face neighbor. Rates
// only decrease (staying powers of two), so the fixpoint terminates; the
// deterministic sweep order makes every rank compute the identical vector.
func ltsGradeRates(rates []int, topo mpi.Cart, maxRatio int) {
	for changed := true; changed; {
		changed = false
		for r := range rates {
			for ax := 0; ax < 3; ax++ {
				for _, dir := range [2]int{-1, +1} {
					n := topo.Neighbor(r, ax, dir)
					if n < 0 {
						continue
					}
					if lim := rates[n] * maxRatio; rates[r] > lim {
						rates[r] = lim
						changed = true
					}
				}
			}
		}
	}
}

// ltsRank is one rank's view of the multi-rate schedule: the global rate
// vector, this rank's step multiplier, and its face neighbors classified
// by relative rate. All cross-rate buffering lives on the fine side, so
// the schedule needs no state that survives a cycle boundary — checkpoint
// rollback to a cycle boundary replays bit-identically.
type ltsRank struct {
	rates   []int // per-rank step-rate multipliers (identical on all ranks)
	rate    int   // this rank's multiplier
	maxRate int   // cycle length in base steps
	baseDt  float64
	localDt float64 // baseDt * rate

	equal  []ltsNbr        // neighbors at the same rate: classic exchange
	finer  []ltsNbr        // neighbors stepping more often: this rank is coarse
	coarse []*ltsCoarseNbr // neighbors stepping less often: window interpolation
}

type ltsNbr struct {
	ax   grid.Axis
	sd   grid.Side
	peer int
}

// ltsCoarseNbr buffers one coarse neighbor's face sections over a window
// of nbRate base steps: Old holds the window-start time level (captured
// from the ghost region), New the window-end level (received once per
// window), and ghost fills blend the two linearly in time.
type ltsCoarseNbr struct {
	ltsNbr
	nbRate                 int
	vOld, vNew, sOld, sNew [][]float32
	scratch                []float32
}

// ltsTag builds a unique message tag in the LTS tag space (8192+,
// disjoint from the per-field, coalesced and temporal-tiling spaces) from
// exchange phase, the sender's face axis/side, and field slot.
func ltsTag(phase int, ax grid.Axis, sd grid.Side, field int) int {
	return 8192 + ((phase*3+int(ax))*2+int(sd))*8 + field
}

func ltsOpp(sd grid.Side) grid.Side { return 1 - sd }

// newLTSRank assigns rates from the already-extracted media (every rank
// learns the full per-rank stable-dt vector through one allreduce and
// derives the identical graded rate vector) and classifies neighbors.
func newLTSRank(c *mpi.Comm, opt Options, rs *rankState, baseDt float64) *ltsRank {
	// Zero-filled sentinel with a Max reduction (stable steps are always
	// positive; an Inf sentinel would not survive the split-float packing
	// of the reduction payload).
	vec := make([]float64, c.Size())
	vec[c.Rank()] = rs.med.StableDt(opt.CFL)
	dts := c.Allreduce(vec, mpi.Max)
	rates := make([]int, len(dts))
	for r, d := range dts {
		rates[r] = ltsRateFor(d, baseDt, opt.LTS.MaxK, opt.Steps)
	}
	ltsGradeRates(rates, opt.Topo, opt.LTS.MaxRateRatio)

	me := c.Rank()
	l := &ltsRank{rates: rates, rate: rates[me], baseDt: baseDt}
	for _, r := range rates {
		if r > l.maxRate {
			l.maxRate = r
		}
	}
	l.localDt = baseDt * float64(l.rate)
	for ax := grid.X; ax <= grid.Z; ax++ {
		for side := 0; side < 2; side++ {
			dir := -1
			if side == 1 {
				dir = +1
			}
			peer := opt.Topo.Neighbor(me, int(ax), dir)
			if peer < 0 {
				continue
			}
			nb := ltsNbr{ax: ax, sd: grid.Side(side), peer: peer}
			switch {
			case rates[peer] == l.rate:
				l.equal = append(l.equal, nb)
			case rates[peer] < l.rate:
				l.finer = append(l.finer, nb)
			default:
				cn := &ltsCoarseNbr{ltsNbr: nb, nbRate: rates[peer]}
				n := rs.st.VX.FaceLen(ax, grid.Ghost)
				alloc := func(k int) [][]float32 {
					out := make([][]float32, k)
					for i := range out {
						out[i] = make([]float32, n)
					}
					return out
				}
				cn.vOld, cn.vNew = alloc(3), alloc(3)
				cn.sOld, cn.sNew = alloc(6), alloc(6)
				cn.scratch = make([]float32, n)
				l.coarse = append(l.coarse, cn)
			}
		}
	}
	return l
}

// ghostExtents returns the loop bounds of the count-deep ghost slab of
// the (ax, sd) face — the region UnpackFace writes, used to capture the
// window-start interpolation anchor with PackRange.
func ghostExtents(f *grid.Field3, ax grid.Axis, sd grid.Side, count int) (i0, i1, j0, j1, k0, k1 int) {
	i0, i1, j0, j1, k0, k1 = 0, f.NX, 0, f.NY, 0, f.NZ
	switch ax {
	case grid.X:
		if sd == grid.Low {
			i0, i1 = -count, 0
		} else {
			i0, i1 = f.NX, f.NX+count
		}
	case grid.Y:
		if sd == grid.Low {
			j0, j1 = -count, 0
		} else {
			j0, j1 = f.NY, f.NY+count
		}
	default:
		if sd == grid.Low {
			k0, k1 = -count, 0
		} else {
			k0, k1 = f.NZ, f.NZ+count
		}
	}
	return
}

// ltsExchange runs one phase of the mixed-rate halo exchange at global
// base-step index sub. Same-rate neighbor pairs exchange classically
// (asynchronous per-field messages); toward finer neighbors this rank
// ships its post-kernel faces every local step; toward coarser neighbors
// it runs the window protocol — capture the window-start anchor from the
// ghost region, receive the window-end faces once, blend ghosts to the
// time level the next kernel needs, and ship its own faces only on the
// window's last sub-step. Every send precedes every blocking receive
// within a phase, so the schedule cannot deadlock. The mixed-rate path
// ignores the configured comm model: there is no per-sub-step collective
// a barrier could pair with (documented in DESIGN.md §12).
func (rs *rankState) ltsExchange(l *ltsRank, sub, phase int) {
	var fields []*grid.Field3
	if phase == phaseVelocity {
		fields = rs.st.Velocities()
	} else {
		fields = rs.st.Stresses()
	}
	c := rs.comm

	// Same-rate neighbors: post receives first (lazy — they block only
	// when drained below).
	type pend struct {
		f   *grid.Field3
		ax  grid.Axis
		sd  grid.Side
		req *mpi.Request
	}
	var pends []pend
	for _, nb := range l.equal {
		for fi, f := range fields {
			req := c.IrecvTake(nb.peer, ltsTag(phase, nb.ax, ltsOpp(nb.sd), fi))
			pends = append(pends, pend{f, nb.ax, nb.sd, req})
		}
	}
	send := func(peer int, ax grid.Axis, sd grid.Side, fi int, f *grid.Field3) {
		n := f.FaceLen(ax, grid.Ghost)
		out := mpi.GetBuffer(n)
		sp := rs.tel.Span(telemetry.Pack)
		f.PackFace(ax, sd, grid.Ghost, out)
		sp.End()
		sp = rs.tel.Span(telemetry.Send)
		c.IsendOwned(peer, ltsTag(phase, ax, sd, fi), out)
		sp.End()
	}
	for _, nb := range l.equal {
		for fi, f := range fields {
			send(nb.peer, nb.ax, nb.sd, fi, f)
		}
	}
	// Finer neighbors: this rank is their coarse side; every local step
	// opens one of their windows, so ship this step's post-kernel faces.
	for _, nb := range l.finer {
		for fi, f := range fields {
			send(nb.peer, nb.ax, nb.sd, fi, f)
		}
	}
	// Coarser neighbors: window protocol.
	for _, cn := range l.coarse {
		old, fresh := cn.vOld, cn.vNew
		if phase == phaseStress {
			old, fresh = cn.sOld, cn.sNew
		}
		pos := sub % cn.nbRate
		if pos == 0 {
			// Window start: the ghost region still holds the coarse
			// neighbor's window-start time level (left there by the
			// previous window's final fill, or zero initial state).
			for fi, f := range fields {
				i0, i1, j0, j1, k0, k1 := ghostExtents(f, cn.ax, cn.sd, grid.Ghost)
				f.PackRange(i0, i1, j0, j1, k0, k1, old[fi])
			}
			sp := rs.tel.Span(telemetry.Recv)
			for fi := range fields {
				c.MustRecv(fresh[fi], cn.peer, ltsTag(phase, cn.ax, ltsOpp(cn.sd), fi))
			}
			sp.End()
		}
		if pos+l.rate == cn.nbRate {
			// Window end: ship this rank's own window-end faces; the
			// coarse neighbor absorbs them at the end of its step.
			for fi, f := range fields {
				send(cn.peer, cn.ax, cn.sd, fi, f)
			}
		}
		// Blend ghosts to the time level the next kernel reads
		// (velocity fills feed the stress kernel of this sub-step,
		// stress fills feed the velocity kernel of the next one).
		theta := float32(pos+l.rate) / float32(cn.nbRate)
		sp := rs.tel.Span(telemetry.Interp)
		for fi, f := range fields {
			src := fresh[fi]
			if theta < 1 {
				fd.Lerp(cn.scratch, old[fi], fresh[fi], theta)
				src = cn.scratch
			}
			f.UnpackFace(cn.ax, cn.sd, grid.Ghost, src)
		}
		sp.End()
	}
	// Drain the same-rate receives.
	for _, p := range pends {
		sp := rs.tel.Span(telemetry.Recv)
		p.req.Wait()
		sp.End()
		sp = rs.tel.Span(telemetry.Unpack)
		in := p.req.Data()
		p.f.UnpackFace(p.ax, p.sd, grid.Ghost, in)
		mpi.PutBuffer(in)
		sp.End()
	}
}

// ltsAdvance performs one local step of the multi-rate schedule at
// global base-step index sub (a multiple of this rank's rate), advancing
// by localDt = baseDt·rate. The body mirrors the classic advance without
// the features Prepare excludes under LTS (M-PML, DFR, overlap).
func (rs *rankState) ltsAdvance(opt Options, l *ltsRank, sub int, tm *Timing) {
	dt := l.localDt
	tNow := float64(sub+l.rate) * l.baseDt

	// --- Velocity phase ---
	t0 := time.Now()
	sp := rs.tel.Span(telemetry.Velocity)
	fd.UpdateVelocityTiled(rs.st, rs.med, dt, rs.compBox, opt.Variant, opt.Blocking, rs.pool)
	sp.End()
	tm.Comp += time.Since(t0).Seconds()
	t0 = time.Now()
	rs.ltsExchange(l, sub, phaseVelocity)
	tm.Comm += time.Since(t0).Seconds()
	t0 = time.Now()
	if rs.fs != nil {
		sp = rs.tel.Span(telemetry.Boundary)
		rs.fs.ApplyVelocity(rs.st, rs.med)
		sp.End()
	}

	// --- Stress phase ---
	fd.ForEachTile(rs.compBox, opt.Blocking, rs.pool, rs.stressTile(opt, dt))
	rs.srcs.Inject(rs.st, dt, tNow)
	tm.Comp += time.Since(t0).Seconds()
	t0 = time.Now()
	rs.ltsExchange(l, sub, phaseStress)
	tm.Comm += time.Since(t0).Seconds()
	t0 = time.Now()
	if rs.sponge != nil {
		sp = rs.tel.Span(telemetry.Boundary)
		if rs.pgvFolded {
			rs.sponge.ApplySurfaceFused(rs.st, rs.pool, rs.trackPGVRow)
		} else {
			rs.sponge.ApplyPool(rs.st, rs.pool)
		}
		sp.End()
	}
	if rs.fs != nil {
		sp = rs.tel.Span(telemetry.Boundary)
		rs.fs.ApplyStress(rs.st)
		sp.End()
	}
	tm.Comp += time.Since(t0).Seconds()

	// Absorb finer neighbors' window-end faces last, leaving the ghost
	// region at the new time level for the next step.
	t0 = time.Now()
	rs.ltsAbsorbFiner(l)
	tm.Comm += time.Since(t0).Seconds()
}

// ltsAbsorbFiner receives the window-end faces every finer neighbor sent
// during this rank's step and writes them into the ghost region, leaving
// it at this rank's new time level for the next step's kernels (the
// velocity ghosts it absorbs are one coarse step stale when the stress
// kernel reads them — the documented one-sided lag of the scheme).
func (rs *rankState) ltsAbsorbFiner(l *ltsRank) {
	if len(l.finer) == 0 {
		return
	}
	c := rs.comm
	for _, nb := range l.finer {
		for phase, fields := range [2][]*grid.Field3{rs.st.Velocities(), rs.st.Stresses()} {
			for fi, f := range fields {
				sp := rs.tel.Span(telemetry.Recv)
				in, _ := c.MustRecvTake(nb.peer, ltsTag(phase, nb.ax, ltsOpp(nb.sd), fi))
				sp.End()
				sp = rs.tel.Span(telemetry.Unpack)
				f.UnpackFace(nb.ax, nb.sd, grid.Ghost, in)
				sp.End()
				mpi.PutBuffer(in)
			}
		}
	}
}

// ltsFillReceivers linearly interpolates the seismogram samples a
// rate-2^k rank never computed (its states only exist every `rate` base
// steps) from the neighboring recorded samples, anchored at the zero
// initial state before the first record. Runs once per rank in Finish,
// before the gather.
func (rs *rankState) ltsFillReceivers() {
	for i := range rs.receivers {
		r := &rs.receivers[i]
		if r.sampled == nil {
			continue
		}
		last := -1 // virtual zero-valued sample before index 0
		for si := range r.series {
			if !r.sampled[si] {
				continue
			}
			var a [3]float32
			if last >= 0 {
				a = r.series[last]
			}
			b := r.series[si]
			for g := last + 1; g < si; g++ {
				t := float32(g-last) / float32(si-last)
				r.series[g] = [3]float32{
					a[0] + (b[0]-a[0])*t,
					a[1] + (b[1]-a[1])*t,
					a[2] + (b[2]-a[2])*t,
				}
			}
			last = si
		}
		if last >= 0 {
			for g := last + 1; g < len(r.series); g++ {
				r.series[g] = r.series[last]
			}
		}
	}
}
