package solver

import (
	"math"
	"testing"

	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// The coalesced message layout must be bit-identical to the per-field
// unique-tag layout under every communication model, thread count and
// buffer discipline: packing reads interior cells only, sections are
// disjoint sub-slices, and unpacked ghost regions are disjoint, so no
// load/store pair that aliases can be reordered by the layout or the
// pool's tile schedule.
func TestCoalescedBitIdenticalAllModels(t *testing.T) {
	q := cvm.SoCal(2400, 2400, 1600, 400)
	topo := mpi.NewCart(2, 2, 1)
	for _, model := range []CommModel{Synchronous, Asynchronous, AsyncReduced, AsyncOverlap} {
		refOpt := baseOptions(topo)
		refOpt.Comm = model
		ref, err := Run(q, refOpt)
		if err != nil {
			t.Fatalf("%v per-field: %v", model, err)
		}
		for _, threads := range []int{1, 4} {
			for _, copyHalo := range []bool{false, true} {
				opt := baseOptions(topo)
				opt.Comm = model
				opt.Threads = threads
				opt.CopyHalo = copyHalo
				opt.CoalesceHalo = true
				got, err := Run(q, opt)
				if err != nil {
					t.Fatalf("%v coalesced threads=%d copy=%v: %v", model, threads, copyHalo, err)
				}
				for r := range ref.Seismograms {
					for n := range ref.Seismograms[r] {
						if ref.Seismograms[r][n] != got.Seismograms[r][n] {
							t.Fatalf("%v threads=%d copy=%v: receiver %d sample %d differs",
								model, threads, copyHalo, r, n)
						}
					}
				}
				for i := range ref.PGVH {
					if ref.PGVH[i] != got.PGVH[i] {
						t.Fatalf("%v threads=%d copy=%v: PGV differs at %d", model, threads, copyHalo, i)
					}
				}
			}
		}
	}
}

// Coalescing changes message counts, never float volume, and the counts
// follow the one-message-per-neighbor-per-phase rule exactly.
func TestHaloStatsCoalescingInvariance(t *testing.T) {
	d := grid.Dims{NX: 20, NY: 24, NZ: 16}
	all := [3][2]bool{{true, true}, {true, true}, {true, true}}
	for _, model := range []CommModel{Synchronous, Asynchronous, AsyncReduced, AsyncOverlap} {
		pf := HaloStats(d, all, model, false)
		co := HaloStats(d, all, model, true)
		if pf.Floats != co.Floats {
			t.Fatalf("%v: coalescing changed float volume %d -> %d", model, pf.Floats, co.Floats)
		}
		if co.VelMsgs != 6 || co.StressMsgs != 6 {
			t.Fatalf("%v: coalesced counts %d/%d, want 6/6", model, co.VelMsgs, co.StressMsgs)
		}
		if pf.VelMsgs != 18 {
			t.Fatalf("%v: per-field velocity msgs %d, want 18", model, pf.VelMsgs)
		}
		wantStress := 36
		if model == AsyncReduced || model == AsyncOverlap {
			wantStress = 18
		}
		if pf.StressMsgs != wantStress {
			t.Fatalf("%v: per-field stress msgs %d, want %d", model, pf.StressMsgs, wantStress)
		}
		if pf.Msgs() != pf.VelMsgs+pf.StressMsgs {
			t.Fatalf("Msgs() inconsistent")
		}
		if pf.Floats != MessageVolume(d, all, model) {
			t.Fatalf("%v: MessageVolume disagrees with HaloStats", model)
		}
	}
	// Partial neighbor masks: counts follow the faces that exist.
	mask := [3][2]bool{{true, false}, {false, false}, {false, true}}
	co := HaloStats(d, mask, Asynchronous, true)
	if co.VelMsgs != 2 || co.StressMsgs != 2 {
		t.Fatalf("partial mask coalesced counts %d/%d, want 2/2", co.VelMsgs, co.StressMsgs)
	}
}

// The communication-only benchmark must observe the modeled counts at the
// runtime's delivery point and identical checksums across layouts — the
// measured (not modeled) form of the >=6x stress-phase reduction claim.
func TestHaloExchangeBenchCountsAndChecksum(t *testing.T) {
	cfg := HaloBenchConfig{
		Topo: mpi.NewCart(2, 2, 1), Local: grid.Dims{NX: 12, NY: 12, NZ: 8},
		Model: Asynchronous, Steps: 2,
	}
	pf := RunHaloExchangeBench(cfg)
	cfg.Coalesce = true
	co := RunHaloExchangeBench(cfg)
	// 2x2x1: every rank has exactly 2 neighbors. Per-field async: 3
	// velocity and 6 stress messages per neighbor; coalesced: 1 and 1.
	if pf.VelMsgs != 24 || pf.StressMsgs != 48 {
		t.Fatalf("per-field counts %g/%g, want 24/48", pf.VelMsgs, pf.StressMsgs)
	}
	if co.VelMsgs != 8 || co.StressMsgs != 8 {
		t.Fatalf("coalesced counts %g/%g, want 8/8", co.VelMsgs, co.StressMsgs)
	}
	if r := pf.StressMsgs / co.StressMsgs; r < 6 {
		t.Fatalf("stress-phase reduction %gx, want >= 6x", r)
	}
	if pf.VelFloats != co.VelFloats || pf.StressFloats != co.StressFloats {
		t.Fatalf("coalescing changed float volume: %g/%g vs %g/%g",
			pf.VelFloats, pf.StressFloats, co.VelFloats, co.StressFloats)
	}
	if pf.Checksum != co.Checksum || math.IsNaN(pf.Checksum) || pf.Checksum == 0 {
		t.Fatalf("checksums differ or degenerate: %g vs %g", pf.Checksum, co.Checksum)
	}
	// The paired-duel timer must return positive times for both layouts.
	cfg.Coalesce = false
	a, b := RunHaloLayoutDuel(cfg)
	if a <= 0 || b <= 0 {
		t.Fatalf("duel times %g/%g", a, b)
	}
}
