package solver

import (
	"math"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/rupture"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// baseOptions builds a small wave-propagation problem with a central
// explosion source.
func baseOptions(topo mpi.Cart) Options {
	g := grid.Dims{NX: 24, NY: 24, NZ: 16}
	src := source.PointSource{
		GI: 12, GJ: 12, GK: 8,
		M0:     1e15,
		Tensor: source.Explosion,
		STF:    source.GaussianPulse(0.08, 0.02),
	}
	return Options{
		Global:      g,
		H:           100,
		Steps:       60,
		Topo:        topo,
		Comm:        Asynchronous,
		Variant:     fd.Precomp,
		ABC:         SpongeABC,
		SpongeWidth: 4,
		FreeSurface: true,
		Attenuation: true,
		Sources:     []source.SampledSource{src.Sample(0.002, 200)},
		Receivers:   [][3]int{{6, 12, 8}, {18, 12, 8}, {12, 6, 8}, {12, 12, 2}},
		TrackPGV:    true,
	}
}

func maxSeriesAbs(s [][3]float32) float64 {
	var m float64
	for _, v := range s {
		for _, c := range v {
			if a := math.Abs(float64(c)); a > m {
				m = a
			}
		}
	}
	return m
}

func TestPointSourceRadiates(t *testing.T) {
	res, err := Run(cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}),
		baseOptions(mpi.NewCart(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result at rank 0")
	}
	for r, s := range res.Seismograms {
		if len(s) != 60 {
			t.Fatalf("receiver %d: %d samples, want 60", r, len(s))
		}
		if maxSeriesAbs(s) == 0 {
			t.Errorf("receiver %d recorded nothing", r)
		}
	}
	// Symmetry: an explosion in a homogeneous medium radiates
	// symmetrically; receivers on either side of the source record the
	// same peak amplitude (vx staggering shifts the two receivers by one
	// cell, so compare peaks rather than samples).
	p0 := maxSeriesAbs(res.Seismograms[0])
	p1 := maxSeriesAbs(res.Seismograms[1])
	if math.Abs(p0-p1)/math.Max(p0, p1) > 0.25 {
		t.Errorf("mirror receivers peak mismatch: %g vs %g", p0, p1)
	}
	if res.PGVH == nil {
		t.Fatal("PGV map missing")
	}
	var pgvMax float64
	for _, v := range res.PGVH {
		if v > pgvMax {
			pgvMax = v
		}
	}
	if pgvMax == 0 {
		t.Error("surface PGV all zero (free-surface wave should arrive)")
	}
	if res.Timing.Comp <= 0 {
		t.Error("timing not recorded")
	}
}

// The decomposition invariant: an N-rank run must reproduce the 1-rank
// wavefield exactly, for every communication model (halo-exchange
// correctness, §IV.A).
func TestDecompositionInvariantAllCommModels(t *testing.T) {
	q := cvm.SoCal(2400, 2400, 1600, 400)
	ref, err := Run(q, baseOptions(mpi.NewCart(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	topos := []mpi.Cart{
		mpi.NewCart(2, 1, 1),
		mpi.NewCart(2, 2, 1),
		mpi.NewCart(2, 2, 2),
		mpi.NewCart(1, 3, 1),
	}
	models := []CommModel{Synchronous, Asynchronous, AsyncReduced, AsyncOverlap}
	for _, topo := range topos {
		for _, model := range models {
			opt := baseOptions(topo)
			opt.Comm = model
			res, err := Run(q, opt)
			if err != nil {
				t.Fatalf("%v/%v: %v", topo, model, err)
			}
			for r := range ref.Seismograms {
				a, b := ref.Seismograms[r], res.Seismograms[r]
				if len(a) != len(b) {
					t.Fatalf("%v/%v: receiver %d length mismatch", topo, model, r)
				}
				for n := range a {
					for cpt := 0; cpt < 3; cpt++ {
						if a[n][cpt] != b[n][cpt] {
							t.Fatalf("%+v/%v: receiver %d sample %d comp %d: %g != %g",
								topo, model, r, n, cpt, a[n][cpt], b[n][cpt])
						}
					}
				}
			}
			// PGV maps must also assemble identically.
			for i := range ref.PGVH {
				if math.Abs(ref.PGVH[i]-res.PGVH[i]) > 1e-12 {
					t.Fatalf("%+v/%v: PGV mismatch at %d", topo, model, i)
				}
			}
		}
	}
}

func TestMPMLInSolver(t *testing.T) {
	opt := baseOptions(mpi.NewCart(1, 1, 1))
	opt.Global = grid.Dims{NX: 32, NY: 32, NZ: 24}
	opt.Sources = []source.SampledSource{(source.PointSource{
		GI: 16, GJ: 16, GK: 12, M0: 1e15, Tensor: source.Explosion,
		STF: source.GaussianPulse(0.08, 0.02),
	}).Sample(0.002, 200)}
	opt.Receivers = [][3]int{{16, 16, 6}}
	opt.ABC = MPMLABC
	opt.PMLWidth = 6
	opt.Steps = 120
	res, err := Run(cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}), opt)
	if err != nil {
		t.Fatal(err)
	}
	// After the wave leaves, the receiver should settle to near zero (no
	// strong boundary reflections, no instability).
	tail := res.Seismograms[0][100:]
	head := res.Seismograms[0]
	peak := maxSeriesAbs(head)
	if peak == 0 {
		t.Fatal("no signal")
	}
	if maxSeriesAbs(tail) > 0.2*peak {
		t.Errorf("PML tail %g vs peak %g: reflections too strong", maxSeriesAbs(tail), peak)
	}
}

func TestDFRModeMultiRankMatchesSingle(t *testing.T) {
	g := grid.Dims{NX: 48, NY: 24, NZ: 24}
	h := 100.0
	ni, nk := 40, 18
	tau := make([][]float64, nk)
	sn := make([][]float64, nk)
	fr := make([][]rupture.Friction, nk)
	for k := 0; k < nk; k++ {
		tau[k] = make([]float64, ni)
		sn[k] = make([]float64, ni)
		fr[k] = make([]rupture.Friction, ni)
		for i := 0; i < ni; i++ {
			sn[k][i] = 120e6
			tau[k][i] = 70e6
			fr[k][i] = rupture.Friction{MuS: 0.677, MuD: 0.525, Dc: 0.02}
			di, dk := i-ni/2, k-nk/2
			if di*di+dk*dk <= 25 {
				tau[k][i] = 84e6
			}
		}
	}
	mkOpt := func(topo mpi.Cart) Options {
		return Options{
			Global: g, H: h, Steps: 150, Topo: topo,
			Comm: AsyncReduced, Variant: fd.Precomp,
			ABC: SpongeABC, SpongeWidth: 4,
			Fault: &FaultSpec{
				J0: 12, I0: 4, I1: 4 + ni, K0: 3, K1: 3 + nk,
				Tau0: tau, SigmaN: sn, Friction: fr,
				RecordEvery: 2,
			},
			TrackPGV: true,
		}
	}
	q := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	ref, err := Run(q, mkOpt(mpi.NewCart(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if ref.FaultStats.MaxSlip == 0 {
		t.Fatal("reference rupture did not slip")
	}
	multi, err := Run(q, mkOpt(mpi.NewCart(2, 1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	// Fault fields must match across the rank seams.
	for k := range ref.FaultSlip {
		for i := range ref.FaultSlip[k] {
			if d := math.Abs(ref.FaultSlip[k][i] - multi.FaultSlip[k][i]); d > 1e-9 {
				t.Fatalf("slip mismatch at k=%d i=%d: %g vs %g",
					k, i, ref.FaultSlip[k][i], multi.FaultSlip[k][i])
			}
		}
	}
	if math.Abs(ref.FaultStats.MaxPeakRate-multi.FaultStats.MaxPeakRate) > 1e-9 {
		t.Errorf("peak rate differs: %g vs %g", ref.FaultStats.MaxPeakRate, multi.FaultStats.MaxPeakRate)
	}
	// Moment-rate series identical.
	for n := range ref.MomentRate {
		if d := math.Abs(ref.MomentRate[n] - multi.MomentRate[n]); d > 1e-3*math.Abs(ref.MomentRate[n])+1 {
			t.Fatalf("moment rate differs at step %d: %g vs %g", n, ref.MomentRate[n], multi.MomentRate[n])
		}
	}
	// Slip-rate recordings present and matched in node count.
	if len(ref.SlipSeries) == 0 || len(ref.SlipSeries) != len(multi.SlipSeries) {
		t.Errorf("slip series counts: %d vs %d", len(ref.SlipSeries), len(multi.SlipSeries))
	}
}

func TestDFRRejectsBadConfigs(t *testing.T) {
	opt := baseOptions(mpi.NewCart(1, 2, 1))
	opt.Fault = &FaultSpec{J0: 12, I0: 0, I1: 4, K0: 0, K1: 4,
		Tau0: [][]float64{{0}}, SigmaN: [][]float64{{0}}, Friction: [][]rupture.Friction{{{}}}}
	if _, err := Run(cvm.HardRock(), opt); err == nil {
		t.Error("DFR with PY=2 accepted")
	}
	opt = baseOptions(mpi.NewCart(1, 1, 1))
	opt.Comm = AsyncOverlap
	opt.Fault = &FaultSpec{}
	if _, err := Run(cvm.HardRock(), opt); err == nil {
		t.Error("DFR with overlap accepted")
	}
}

func TestBoundaryStripsTile(t *testing.T) {
	d := grid.Dims{NX: 12, NY: 10, NZ: 8}
	mask := [3][2]bool{{true, false}, {true, true}, {false, true}}
	strips, interior := boundaryStrips(d, mask, 2)
	counts := map[[3]int]int{}
	mark := func(b fd.Box) {
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					counts[[3]int{i, j, k}]++
				}
			}
		}
	}
	for _, b := range strips {
		mark(b)
	}
	mark(interior)
	if len(counts) != d.Cells() {
		t.Fatalf("covered %d, want %d", len(counts), d.Cells())
	}
	for c, n := range counts {
		if n != 1 {
			t.Fatalf("cell %v covered %d times", c, n)
		}
	}
}

func TestMessageVolumeReduction(t *testing.T) {
	d := grid.Dims{NX: 20, NY: 20, NZ: 20}
	all := [3][2]bool{{true, true}, {true, true}, {true, true}}
	full := MessageVolume(d, all, Asynchronous)
	reduced := MessageVolume(d, all, AsyncReduced)
	// Full: 9 components x 3 axes; reduced: velocities 3x3, stresses
	// 1+1+1+2+2+2 = 9 axes -> (9+9)/(9+18) = 2/3.
	want := 2.0 / 3.0
	if got := float64(reduced) / float64(full); math.Abs(got-want) > 1e-12 {
		t.Fatalf("reduction ratio %g, want %g", got, want)
	}
	// Normal-stress-only reduction is 75% fewer messages than exchanging
	// each in 3 axes x 2 dirs... the paper's statement: sxx goes from 3
	// directions (6 faces) to x only, with 2+1 planes instead of 2x2 — at
	// the message-count level each normal stress drops from 6 to 2 faces.
	vol1 := MessageVolume(grid.Dims{NX: 10, NY: 10, NZ: 10}, all, Asynchronous)
	vol2 := MessageVolume(grid.Dims{NX: 10, NY: 10, NZ: 10}, all, AsyncReduced)
	if vol2 >= vol1 {
		t.Fatal("reduced model does not reduce volume")
	}
}

func TestCommModelStrings(t *testing.T) {
	for m, want := range map[CommModel]string{
		Synchronous: "sync", Asynchronous: "async",
		AsyncReduced: "async-reduced", AsyncOverlap: "overlap",
	} {
		if m.String() != want {
			t.Errorf("String = %q", m.String())
		}
	}
}

// §IV.D hybrid mode: per-rank threading must not change the physics.
func TestHybridThreadsBitIdentical(t *testing.T) {
	q := cvm.SoCal(2400, 2400, 1600, 400)
	ref, err := Run(q, baseOptions(mpi.NewCart(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	opt := baseOptions(mpi.NewCart(2, 1, 1))
	opt.Threads = 3
	got, err := Run(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	for r := range ref.Seismograms {
		for n := range ref.Seismograms[r] {
			if ref.Seismograms[r][n] != got.Seismograms[r][n] {
				t.Fatalf("hybrid mode changed receiver %d sample %d", r, n)
			}
		}
	}
}
