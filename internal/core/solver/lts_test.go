package solver

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// splitXModel is a basin-over-rock toy: hard rock for x < split, a soft
// low-velocity block at x >= split, constant in y and depth. The x-contrast
// drives rank-rate divergence along the x topology axis.
type splitXModel struct {
	split      float64
	rock, soft cvm.Material
}

func (m splitXModel) Query(x, _, _ float64) cvm.Material {
	if x < m.split {
		return m.rock
	}
	return m.soft
}

// ltsContrast returns the test media pair: Vp ratio 5200/1200 > 4, so the
// soft side earns rate 4 (capped by MaxK/grading) with float margin.
func ltsContrast() (rock, soft cvm.Material) {
	rock = cvm.Material{Vp: 5200, Vs: 3000, Rho: 2700}
	soft = cvm.Material{Vp: 1200, Vs: 700, Rho: 1900}
	return
}

// ltsOptions builds a two-sided wave problem on a PX-rank x-decomposition
// with source in the rock half and receivers in both halves.
func ltsOptions(g grid.Dims, steps int, topo mpi.Cart) Options {
	src := source.PointSource{
		GI: g.NX / 4, GJ: g.NY / 2, GK: g.NZ / 2,
		M0:     1e15,
		Tensor: source.Explosion,
		STF:    source.GaussianPulse(0.08, 0.02),
	}
	return Options{
		Global:      g,
		H:           100,
		Steps:       steps,
		Topo:        topo,
		Comm:        Asynchronous,
		ABC:         SpongeABC,
		SpongeWidth: 4,
		FreeSurface: true,
		Attenuation: true,
		Sources:     []source.SampledSource{src.Sample(0.002, 400)},
		Receivers: [][3]int{
			{g.NX / 4, g.NY / 2, 2},     // rock side
			{3 * g.NX / 4, g.NY / 2, 2}, // soft side
			{g.NX / 2, g.NY / 4, g.NZ / 2},
		},
		TrackPGV: true,
	}
}

// runStepperWorld runs opt via rank-local Steppers and returns the rank-0
// result along with the (all-rank-identical) LTS rate vector.
func runStepperWorld(t *testing.T, q cvm.Querier, opt Options) (*Result, []int) {
	t.Helper()
	opt, err := PlanLTS(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	dc, opt, err := Prepare(opt)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var result *Result
	var rates []int
	var worldErr error
	world := mpi.NewWorld(opt.Topo.Size())
	world.Run(func(c *mpi.Comm) {
		st, err := NewStepper(c, q, dc, opt)
		if err != nil {
			mu.Lock()
			worldErr = err
			mu.Unlock()
			return
		}
		defer st.Close()
		for !st.Done() {
			st.Step()
		}
		res, err := st.Finish()
		if c.Rank() == 0 {
			mu.Lock()
			result, rates = res, st.LTSRates()
			if err != nil {
				worldErr = err
			}
			mu.Unlock()
		}
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return result, rates
}

func TestLTSRateFor(t *testing.T) {
	cases := []struct {
		localDt, baseDt float64
		maxK, steps     int
		want            int
	}{
		{1.0, 1.0, 2, 16, 1},  // no headroom
		{2.5, 1.0, 2, 16, 2},  // fits 2x, not 4x
		{4.5, 1.0, 2, 16, 4},  // fits 4x
		{9.0, 1.0, 2, 16, 4},  // capped by maxK=2
		{4.5, 1.0, 1, 16, 2},  // capped by maxK=1
		{4.5, 1.0, 2, 15, 1},  // odd steps: no cycle tiles
		{4.5, 1.0, 2, 18, 2},  // 18 divisible by 2, not 4
		{1.99, 1.0, 2, 16, 1}, // just under the 2x threshold
		{2.0, 1.0, 2, 16, 2},  // exactly at the threshold
	}
	for _, c := range cases {
		if got := ltsRateFor(c.localDt, c.baseDt, c.maxK, c.steps); got != c.want {
			t.Errorf("ltsRateFor(%g, %g, %d, %d) = %d, want %d",
				c.localDt, c.baseDt, c.maxK, c.steps, got, c.want)
		}
	}
}

func TestLTSGradeRates(t *testing.T) {
	// 4 ranks in a line: [4 4 1 1] at ratio 2 must grade the seam to
	// [4 2 1 1]; at ratio 4 the vector is already admissible.
	topo := mpi.NewCart(4, 1, 1)
	rates := []int{4, 4, 1, 1}
	ltsGradeRates(rates, topo, 2)
	if want := []int{4, 2, 1, 1}; !equalInts(rates, want) {
		t.Errorf("ratio 2: got %v, want %v", rates, want)
	}
	rates = []int{4, 4, 1, 1}
	ltsGradeRates(rates, topo, 4)
	if want := []int{4, 4, 1, 1}; !equalInts(rates, want) {
		t.Errorf("ratio 4: got %v, want %v", rates, want)
	}
	// Cascading: [4 1 4] must pull both ends down through the middle.
	rates = []int{4, 1, 4}
	ltsGradeRates(rates, mpi.NewCart(3, 1, 1), 2)
	if want := []int{2, 1, 2}; !equalInts(rates, want) {
		t.Errorf("cascade: got %v, want %v", rates, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDtAndCFLValidation pins the new Options validation: explicitly
// negative Dt and out-of-range CFL are rejected; CFL 0 defaults to the
// historical 0.5 bit-identically.
func TestDtAndCFLValidation(t *testing.T) {
	base := ltsOptions(grid.Dims{NX: 16, NY: 12, NZ: 12}, 4, mpi.NewCart(1, 1, 1))

	bad := base
	bad.Dt = -0.001
	if _, _, err := Prepare(bad); err == nil {
		t.Error("negative Dt accepted")
	}
	bad = base
	bad.CFL = -0.1
	if _, _, err := Prepare(bad); err == nil {
		t.Error("negative CFL accepted")
	}
	bad = base
	bad.CFL = 1.5
	if _, _, err := Prepare(bad); err == nil {
		t.Error("CFL above the stability bound accepted")
	}
	ok := base
	ok.CFL = 1.0
	if _, _, err := Prepare(ok); err != nil {
		t.Errorf("CFL 1.0 rejected: %v", err)
	}

	// Explicit CFL 0.5 must reproduce the default run exactly.
	q := cvm.HardRock()
	ref, err := Run(q, base)
	if err != nil {
		t.Fatal(err)
	}
	withCFL := base
	withCFL.CFL = 0.5
	res, err := Run(q, withCFL)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "cfl 0.5 vs default", ref, res)
}

// TestLTSValidation pins Prepare's LTS gating.
func TestLTSValidation(t *testing.T) {
	base := ltsOptions(grid.Dims{NX: 16, NY: 12, NZ: 12}, 8, mpi.NewCart(1, 1, 1))
	base.LTS.Enabled = true

	bad := base
	bad.TemporalDepth = 2
	if _, _, err := Prepare(bad); err == nil {
		t.Error("LTS + TemporalDepth > 1 accepted")
	}
	bad = base
	bad.ABC = MPMLABC
	if _, _, err := Prepare(bad); err == nil {
		t.Error("LTS + M-PML accepted")
	}
	bad = base
	bad.LTS.MaxK = 3
	if _, _, err := Prepare(bad); err == nil {
		t.Error("MaxK 3 accepted")
	}
	bad = base
	bad.LTS.MaxRateRatio = 3
	if _, _, err := Prepare(bad); err == nil {
		t.Error("MaxRateRatio 3 accepted")
	}
	ok := base
	ok.LTS.MaxK = 1
	ok.LTS.MaxRateRatio = 4
	if _, opt, err := Prepare(ok); err != nil {
		t.Errorf("valid LTS options rejected: %v", err)
	} else if opt.LTS.MaxK != 1 || opt.LTS.MaxRateRatio != 4 {
		t.Errorf("explicit LTS options overwritten: %+v", opt.LTS)
	}
	if _, opt, err := Prepare(base); err != nil {
		t.Errorf("default LTS options rejected: %v", err)
	} else if opt.LTS.MaxK != 2 || opt.LTS.MaxRateRatio != 2 {
		t.Errorf("LTS defaults wrong: %+v", opt.LTS)
	}
}

// TestPlanLTS pins the plane-rate planner: a lateral basin-over-rock
// contrast rates the x-axis and leaves uniform axes nil; a uniform medium
// leaves every axis nil (preserving the classic block layout).
func TestPlanLTS(t *testing.T) {
	rock, soft := ltsContrast()
	g := grid.Dims{NX: 32, NY: 12, NZ: 12}
	opt := ltsOptions(g, 16, mpi.NewCart(2, 1, 1))
	opt.LTS = LTSOptions{Enabled: true, WorkBalance: true}
	q := splitXModel{split: float64(g.NX/2) * opt.H, rock: rock, soft: soft}

	planned, err := PlanLTS(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	pr := planned.LTS.PlaneRates
	if pr == nil || pr.X == nil {
		t.Fatalf("x-axis plane rates missing: %+v", pr)
	}
	if pr.Y != nil || pr.Z != nil {
		t.Errorf("uniform axes should stay nil, got Y=%v Z=%v", pr.Y, pr.Z)
	}
	for i, r := range pr.X {
		want := 1
		if i >= g.NX/2 {
			want = 4
		}
		if r != want {
			t.Fatalf("plane %d: rate %d, want %d", i, r, want)
		}
	}

	uni := ltsOptions(g, 16, mpi.NewCart(2, 1, 1))
	uni.LTS = LTSOptions{Enabled: true, WorkBalance: true}
	planned, err = PlanLTS(cvm.Homogeneous(rock), uni)
	if err != nil {
		t.Fatal(err)
	}
	pr = planned.LTS.PlaneRates
	if pr == nil || pr.X != nil || pr.Y != nil || pr.Z != nil {
		t.Errorf("uniform medium should plan all-nil axes, got %+v", pr)
	}
}

// TestLTSRate1BitIdentityMatrix pins the acceptance criterion that
// rate-1-only LTS configs (uniform medium: every rank earns rate 1) are
// bit-identical to the classic path across all four comm models x Threads
// {1, 4}. WorkBalance is on, so the test also covers PlanLTS leaving a
// uniform medium on the classic block layout.
func TestLTSRate1BitIdentityMatrix(t *testing.T) {
	g := grid.Dims{NX: 28, NY: 24, NZ: 16}
	q := cvm.Homogeneous(cvm.Material{Vp: 5200, Vs: 3000, Rho: 2700})
	topo := mpi.NewCart(2, 2, 1)
	for _, comm := range []CommModel{Synchronous, Asynchronous, AsyncReduced, AsyncOverlap} {
		for _, threads := range []int{1, 4} {
			opt := ltsOptions(g, 12, topo)
			opt.Comm = comm
			opt.Threads = threads
			ref, err := Run(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.LTS = LTSOptions{Enabled: true, WorkBalance: true}
			res, err := Run(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, fmt.Sprintf("comm %d threads %d", comm, threads), ref, res)
		}
	}
}

// relL2 returns ||a-b|| / ||b|| over flattened [3]float32 series.
func relL2(a, b [][3]float32) float64 {
	var num, den float64
	for i := range a {
		for c := 0; c < 3; c++ {
			d := float64(a[i][c]) - float64(b[i][c])
			num += d * d
			den += float64(b[i][c]) * float64(b[i][c])
		}
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestLTSMixedRateAccuracy runs the basin-over-rock contrast at mixed
// rates across a 2-rank x-seam, long enough for real signal to cross into
// the soft half, and requires the seismograms and PGV to stay within a
// documented tolerance of the global-dt reference. The tolerances track
// the inherent cost of coarser leapfrog steps: a uniform soft medium
// stepped at 2x/4x the reference dt (no LTS, no seam) already shows relL2
// up to ~0.25/~1.5 on the same receivers, so the rate-boundary scheme
// adds little beyond time-refinement error (measured: rate 2 <= 0.18,
// rate 4 <= 0.39; PGV <= 2.3%/3.6%). `benchtab -exp lts` enforces the
// same bounds on its benchmark scenario.
func TestLTSMixedRateAccuracy(t *testing.T) {
	rock, soft := ltsContrast()
	g := grid.Dims{NX: 32, NY: 16, NZ: 16}
	q := splitXModel{split: float64(g.NX/2) * 100, rock: rock, soft: soft}
	topo := mpi.NewCart(2, 1, 1)
	steps := 192

	ref, err := Run(q, ltsOptions(g, steps, topo))
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		ratio, wantRate int
		seisTol, pgvTol float64
	}{
		{2, 2, 0.25, 0.05},
		{4, 4, 0.50, 0.08},
	} {
		opt := ltsOptions(g, steps, topo)
		opt.LTS = LTSOptions{Enabled: true, MaxRateRatio: tc.ratio}
		res, rates := runStepperWorld(t, q, opt)
		if want := []int{1, tc.wantRate}; !equalInts(rates, want) {
			t.Fatalf("ratio %d: rates %v, want %v (test medium no longer drives mixed rates)",
				tc.ratio, rates, want)
		}
		for r := range ref.Seismograms {
			e := relL2(res.Seismograms[r], ref.Seismograms[r])
			t.Logf("ratio %d receiver %d: rel L2 %.4f", tc.ratio, r, e)
			if e > tc.seisTol {
				t.Errorf("ratio %d receiver %d: rel L2 error %.4f exceeds %.2f",
					tc.ratio, r, e, tc.seisTol)
			}
		}
		var maxRef, maxDiff float64
		for i := range ref.PGVH {
			if ref.PGVH[i] > maxRef {
				maxRef = ref.PGVH[i]
			}
			if d := math.Abs(res.PGVH[i] - ref.PGVH[i]); d > maxDiff {
				maxDiff = d
			}
		}
		t.Logf("ratio %d PGV: max abs diff %.3e vs peak %.3e (%.4f rel)",
			tc.ratio, maxDiff, maxRef, maxDiff/maxRef)
		if maxDiff > tc.pgvTol*maxRef {
			t.Errorf("ratio %d: PGV max deviation %.3e exceeds %.0f%% of peak %.3e",
				tc.ratio, maxDiff, tc.pgvTol*100, maxRef)
		}
	}
}

// TestLTSMixedRateGrading checks the default MaxRateRatio 2 caps the soft
// side at rate 2 across the seam.
func TestLTSMixedRateGrading(t *testing.T) {
	rock, soft := ltsContrast()
	g := grid.Dims{NX: 24, NY: 12, NZ: 12}
	q := splitXModel{split: float64(g.NX/2) * 100, rock: rock, soft: soft}
	opt := ltsOptions(g, 8, mpi.NewCart(2, 1, 1))
	opt.LTS.Enabled = true
	_, rates := runStepperWorld(t, q, opt)
	if want := []int{1, 2}; !equalInts(rates, want) {
		t.Errorf("rates %v, want %v under default grading", rates, want)
	}
}

// TestLTSInterpolationSoakRace exercises the rate-boundary interpolation
// exchange under threading (run with -race in CI): a 4-rank topology with
// mixed rates 1/2/4, pooled kernels, and enough cycles to cycle every
// window position. Correctness is pinned by the accuracy test; this one
// is about the memory discipline of the window buffers.
func TestLTSInterpolationSoakRace(t *testing.T) {
	rock, soft := ltsContrast()
	g := grid.Dims{NX: 48, NY: 12, NZ: 12}
	// Three bands: rock | intermediate | soft across a 4-rank x-line,
	// yielding rates [1 1 2 4] under ratio 4.
	mid := cvm.Material{Vp: 2500, Vs: 1450, Rho: 2200}
	q := bandedXModel{
		edges: []float64{float64(g.NX/2) * 100, float64(3*g.NX/4) * 100},
		mats:  []cvm.Material{rock, mid, soft},
	}
	opt := ltsOptions(g, 16, mpi.NewCart(4, 1, 1))
	opt.Threads = 4
	opt.LTS = LTSOptions{Enabled: true, MaxRateRatio: 4}
	res, rates := runStepperWorld(t, q, opt)
	if want := []int{1, 1, 2, 4}; !equalInts(rates, want) {
		t.Fatalf("rates %v, want %v", rates, want)
	}
	for r, s := range res.Seismograms {
		for i, v := range s {
			if math.IsNaN(float64(v[0])) || math.IsNaN(float64(v[1])) || math.IsNaN(float64(v[2])) {
				t.Fatalf("receiver %d sample %d is NaN", r, i)
			}
		}
	}
}

// bandedXModel maps x-bands to materials: mats[i] applies to
// x < edges[i], the last material beyond the final edge.
type bandedXModel struct {
	edges []float64
	mats  []cvm.Material
}

func (m bandedXModel) Query(x, _, _ float64) cvm.Material {
	for i, e := range m.edges {
		if x < e {
			return m.mats[i]
		}
	}
	return m.mats[len(m.mats)-1]
}

// TestLTSCheckpointRollbackBitIdentity pins cycle self-containment: a
// coordinated rollback to an LTS cycle boundary (restore wavefield state,
// rewind the cursor, replay) reproduces the uninterrupted run exactly.
func TestLTSCheckpointRollbackBitIdentity(t *testing.T) {
	rock, soft := ltsContrast()
	g := grid.Dims{NX: 24, NY: 12, NZ: 12}
	q := splitXModel{split: float64(g.NX/2) * 100, rock: rock, soft: soft}
	topo := mpi.NewCart(2, 1, 1)

	mkOpt := func() Options {
		opt := ltsOptions(g, 16, topo)
		opt.Attenuation = false // keep the snapshot to wavefield state
		opt.LTS = LTSOptions{Enabled: true, MaxRateRatio: 4}
		return opt
	}
	ref, _ := runStepperWorld(t, q, mkOpt())

	opt, err := PlanLTS(q, mkOpt())
	if err != nil {
		t.Fatal(err)
	}
	dc, opt, err := Prepare(opt)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var result *Result
	var worldErr error
	world := mpi.NewWorld(opt.Topo.Size())
	world.Run(func(c *mpi.Comm) {
		st, err := NewStepper(c, q, dc, opt)
		if err != nil {
			mu.Lock()
			worldErr = err
			mu.Unlock()
			return
		}
		defer st.Close()
		align := st.StepAlign()
		if align != 4 {
			mu.Lock()
			worldErr = fmt.Errorf("StepAlign = %d, want 4", align)
			mu.Unlock()
			return
		}
		if err := st.SetStepIndex(align + 1); err == nil {
			mu.Lock()
			worldErr = fmt.Errorf("mid-cycle step index accepted")
			mu.Unlock()
			return
		}
		// Run two cycles, snapshot, run one more, roll back, replay.
		for st.StepIndex() < 2*align {
			st.Step()
		}
		var snap [][]float32
		for _, f := range st.State().Fields() {
			snap = append(snap, append([]float32(nil), f.Data()...))
		}
		st.Step()
		for i, f := range st.State().Fields() {
			copy(f.Data(), snap[i])
		}
		if err := st.SetStepIndex(2 * align); err != nil {
			mu.Lock()
			worldErr = err
			mu.Unlock()
			return
		}
		for !st.Done() {
			st.Step()
		}
		res, err := st.Finish()
		if c.Rank() == 0 {
			mu.Lock()
			result = res
			if err != nil {
				worldErr = err
			}
			mu.Unlock()
		}
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	compareResults(t, "rollback replay", ref, result)
}
