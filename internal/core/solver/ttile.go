package solver

import (
	"time"

	"repro/internal/core/fd"
	"repro/internal/telemetry"
)

// Time-tiled execution (Options.TemporalDepth > 1): one super-step advances
// the wavefield T leapfrog steps with a single deep halo exchange and one
// skewed pass over the subgrid, instead of T passes with 2T exchanges. The
// k-chunk/stage geometry lives in internal/core/fd (ttile.go); this file
// composes the full per-step schedule — kernels, sponge damping, free
// surface, source injection, observables — onto that geometry so the run
// is bit-identical to the step-by-step path.
//
// Stage composition per chunk (stage order = time order within the chunk):
//
//	h=1:    velocity step 1 (ext 4T-2), then FS velocity images
//	h=2s:   stress step s + attenuation (ext 4T-4s) + source injection
//	h=2s+1: sponge-damp stress s (stress window) -> FS stress images ->
//	        sponge-damp velocity s (lag 4s, ext 4T-4s-2) -> step-s
//	        observables (receivers, PGV) -> velocity step s+1 (same
//	        window) -> FS velocity images
//	h=2T+1: the trailing damp/observable stage of step T (no velocity)
//
// The damp operations of step s run one stage after the updates of step s
// so that the stress of step s reads the *undamped* velocity planes right
// below its window (the reference damps velocities only after the stress
// update has consumed them), while the velocity of step s+1 — which runs
// after the damps within the same stage — reads damped stress and
// accumulates onto damped velocity, exactly as in the reference order
// update -> exchange -> sponge -> free surface.
//
// Ghost extensions shrink by 4 cells per step (2 per stage): an op with
// extension e recomputes the e ghost planes next to each interior face
// that has a neighbor, reproducing bit-for-bit the values the neighbor
// computes, so the exchanged 4T-deep halo data stays valid for T steps.
// Free-surface images are refreshed over the extension the next reader
// needs; sponge damping uses the global-coordinate taper, so recomputed
// ghost cells damp exactly like the neighbor's own cells.

// advanceSuper advances T steps (global indices baseStep..baseStep+T-1) as
// one super-step. T may be smaller than opt.TemporalDepth on the final
// partial super-step; the exchange always runs at the configured depth.
func (rs *rankState) advanceSuper(opt Options, dt float64, baseStep, T int, tm *Timing) {
	d := rs.sub.Local

	t0 := time.Now()
	rs.hx.exchangeDeep(rs.deepFields(opt.TemporalDepth))
	tm.Comm += time.Since(t0).Seconds()
	if opt.Comm == Synchronous {
		t0 = time.Now()
		sp := rs.tel.Span(telemetry.Sync)
		rs.comm.Barrier()
		sp.End()
		tm.Sync += time.Since(t0).Seconds()
	}

	t0 = time.Now()
	var outSec float64

	stress := rs.stressTile(opt, dt)
	vels := rs.st.Velocities()
	strs := rs.st.Stresses()
	kChunk := opt.Blocking.KBlock
	if kChunk < fd.MinKChunk {
		kChunk = fd.MinKChunk
	}

	// kRange is the valid k-span of an op with ghost extension ext: it
	// extends into the ghosts only toward faces with a neighbor.
	kRange := func(ext int) (int, int) {
		k0, k1 := 0, d.NZ
		if rs.nbrMask[2][0] {
			k0 = -ext
		}
		if rs.nbrMask[2][1] {
			k1 = d.NZ + ext
		}
		return k0, k1
	}
	hBox := func(ext int) (i0, i1, j0, j1 int) {
		i0, i1, j0, j1 = 0, d.NX, 0, d.NY
		if rs.nbrMask[0][0] {
			i0 = -ext
		}
		if rs.nbrMask[0][1] {
			i1 = d.NX + ext
		}
		if rs.nbrMask[1][0] {
			j0 = -ext
		}
		if rs.nbrMask[1][1] {
			j1 = d.NY + ext
		}
		return
	}
	window := func(c0, lag, ext int) (int, int) {
		k0, k1 := kRange(ext)
		return fd.StageWindow(c0, kChunk, lag, k0, k1)
	}
	opBox := func(ext, w0, w1 int) fd.Box {
		i0, i1, j0, j1 := hBox(ext)
		return fd.Box{I0: i0, I1: i1, J0: j0, J1: j1, K0: w0, K1: w1}
	}

	// velocity runs the velocity update of step s (stage 2s-1) over its
	// chunk window, then refreshes the free-surface velocity images once
	// the window covers plane 1 (the vz image reads planes 0 and 1).
	velocity := func(c0, s int) {
		ext := fd.VelExt(T, s)
		w0, w1 := window(c0, fd.StageLag(2*s-1), ext)
		if w1 > w0 {
			sp := rs.tel.Span(telemetry.Velocity)
			fd.UpdateVelocityTiled(rs.st, rs.med, dt, opBox(ext, w0, w1), opt.Variant, opt.Blocking, rs.pool)
			sp.End()
		}
		if rs.fs != nil && w0 <= 1 && 1 < w1 {
			// The next stress stage reads the images at z-offsets of its
			// own columns, so the image window is the stress extension.
			sp := rs.tel.Span(telemetry.Boundary)
			i0, i1, j0, j1 := hBox(fd.StressExt(T, s))
			rs.fs.ApplyVelocityBox(rs.st, rs.med, i0, i1, j0, j1)
			sp.End()
		}
	}

	// stressStage runs stress+attenuation of step s (stage 2s) and injects
	// the step's moment-rate increments into the cells it just recomputed
	// (each source cell is injected exactly once per step — the windows of
	// one stage tile the valid range).
	stressStage := func(c0, s int) {
		ext := fd.StressExt(T, s)
		w0, w1 := window(c0, fd.StageLag(2*s), ext)
		if w1 <= w0 {
			return
		}
		b := opBox(ext, w0, w1)
		fd.ForEachTile(b, opt.Blocking, rs.pool, stress)
		rs.srcs.InjectRegion(rs.st, dt, float64(baseStep+s)*dt, b, true)
	}

	// dampStage completes step s (stage 2s+1): damp the stress window of
	// step s, refresh stress images, damp the step-s velocities one stage
	// deeper, extract observables, and (for s < T) run the velocity update
	// of step s+1 over the just-damped window.
	dampStage := func(c0, s int) {
		sExt := fd.StressExt(T, s)
		sw0, sw1 := window(c0, fd.StageLag(2*s), sExt)
		if rs.sponge != nil && sw1 > sw0 {
			sp := rs.tel.Span(telemetry.Boundary)
			rs.sponge.ApplyBoxFields(strs, opBox(sExt, sw0, sw1), rs.pool)
			sp.End()
		}
		if rs.fs != nil && sw0 <= 1 && 1 < sw1 {
			// The next velocity stage (ext sExt-2) reads the images at
			// z-offsets of its own columns.
			fsExt := sExt - 2
			if fsExt < 0 {
				fsExt = 0
			}
			sp := rs.tel.Span(telemetry.Boundary)
			i0, i1, j0, j1 := hBox(fsExt)
			rs.fs.ApplyStressBox(rs.st, i0, i1, j0, j1)
			sp.End()
		}

		vExt := fd.VelExt(T, s+1) // clip(4T-4s-2), 0 at s=T
		vw0, vw1 := window(c0, fd.StageLag(2*s+1), vExt)
		if rs.sponge != nil && vw1 > vw0 {
			sp := rs.tel.Span(telemetry.Boundary)
			rs.sponge.ApplyBoxFields(vels, opBox(vExt, vw0, vw1), rs.pool)
			sp.End()
		}

		// Observables of global step baseStep+s-1 read the damped step-s
		// velocities before the step-s+1 update overwrites the window.
		step := baseStep + s - 1
		to := time.Now()
		sp := rs.tel.Span(telemetry.Output)
		if step%opt.RecordEvery == 0 {
			si := step / opt.RecordEvery
			for i := range rs.receivers {
				r := &rs.receivers[i]
				if r.lk >= vw0 && r.lk < vw1 {
					r.series[si] = [3]float32{
						rs.st.VX.At(r.li, r.lj, r.lk),
						rs.st.VY.At(r.li, r.lj, r.lk),
						rs.st.VZ.At(r.li, r.lj, r.lk),
					}
				}
			}
		}
		if rs.pgvh != nil && vw0 <= 0 && 0 < vw1 {
			rs.pool.ForEachN(d.NY, rs.trackPGVRow)
		}
		sp.End()
		outSec += time.Since(to).Seconds()

		if s < T {
			velocity(c0, s+1)
		}
	}

	for c0 := fd.ChunkStart(T, rs.nbrMask[2][0]); c0 < fd.ChunkEnd(T, d.NZ); c0 += kChunk {
		velocity(c0, 1)
		for s := 1; s <= T; s++ {
			stressStage(c0, s)
			dampStage(c0, s)
		}
	}

	tm.Comp += time.Since(t0).Seconds() - outSec
	tm.Output += outSec
}
