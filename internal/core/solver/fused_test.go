package solver

import (
	"fmt"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/cvm"
	"repro/internal/mpi"
)

// expectResultsExact asserts exact float equality of seismograms and all
// four PGV maps — the rank-0 observables of every wavefield the run
// touches.
func expectResultsExact(t *testing.T, label string, ref, res *Result) {
	t.Helper()
	for r := range ref.Seismograms {
		for n := range ref.Seismograms[r] {
			if ref.Seismograms[r][n] != res.Seismograms[r][n] {
				t.Fatalf("%s: receiver %d sample %d differs from reference", label, r, n)
			}
		}
	}
	maps := [][2][]float64{{ref.PGVH, res.PGVH}, {ref.PGVX, res.PGVX}, {ref.PGVY, res.PGVY}, {ref.PGVZ, res.PGVZ}}
	for mi, m := range maps {
		for i := range m[0] {
			if m[0][i] != m[1][i] {
				t.Fatalf("%s: PGV map %d mismatch at %d: %g != %g", label, mi, i, m[0][i], m[1][i])
			}
		}
	}
}

// The fused sweep (single-pass stress+attenuation, folded sponge/PGV) must
// reproduce the two-pass Precomp reference bit-exactly across every comm
// model, threading level, and halo discipline — the engine only changes
// how memory is streamed, never a single arithmetic result.
func TestFusedBitIdentityMatrix(t *testing.T) {
	q := cvm.SoCal(2400, 2400, 1600, 400)
	ref, err := Run(q, baseOptions(mpi.NewCart(1, 1, 1))) // serial Precomp + ApplyTiled
	if err != nil {
		t.Fatal(err)
	}

	// Serial fused first: isolates the kernel restructuring from the
	// decomposition.
	serial := baseOptions(mpi.NewCart(1, 1, 1))
	serial.Variant = fd.Fused
	res, err := Run(q, serial)
	if err != nil {
		t.Fatal(err)
	}
	expectResultsExact(t, "serial fused", ref, res)

	for _, model := range []CommModel{Synchronous, Asynchronous, AsyncReduced, AsyncOverlap} {
		for _, threads := range []int{1, 4} {
			for _, coalesce := range []bool{false, true} {
				opt := baseOptions(mpi.NewCart(2, 2, 1))
				opt.Comm = model
				opt.Threads = threads
				opt.CoalesceHalo = coalesce
				opt.Variant = fd.Fused
				res, err := Run(q, opt)
				if err != nil {
					t.Fatalf("%v threads=%d coalesce=%v: %v", model, threads, coalesce, err)
				}
				expectResultsExact(t, fmt.Sprintf("%v threads=%d coalesce=%v", model, threads, coalesce), ref, res)
			}
		}
	}
}

// Unknown variants must be rejected at configuration time, not panic deep
// inside the first kernel call.
func TestUnknownVariantRejected(t *testing.T) {
	opt := baseOptions(mpi.NewCart(1, 1, 1))
	opt.Variant = fd.Variant(99)
	if _, err := Run(cvm.HardRock(), opt); err == nil {
		t.Fatal("Variant=99 accepted; must be rejected by Run")
	}
	opt.Variant = fd.Variant(-1)
	if _, err := Run(cvm.HardRock(), opt); err == nil {
		t.Fatal("Variant=-1 accepted; must be rejected by Run")
	}
}
