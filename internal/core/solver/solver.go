package solver

import (
	"math"
	"time"

	"repro/internal/agg"
	"repro/internal/core/attenuation"
	"repro/internal/core/boundary"
	"repro/internal/core/fd"
	"repro/internal/core/rupture"
	"repro/internal/core/sched"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/output"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// ABCKind selects the absorbing boundary treatment (§II.D).
type ABCKind int

const (
	// NoABC leaves rigid outer boundaries (verification runs only).
	NoABC ABCKind = iota
	// SpongeABC uses Cerjan sponge layers — unconditionally stable.
	SpongeABC
	// MPMLABC uses split-field multi-axial PMLs (the M8 production choice).
	MPMLABC
)

// FaultSpec configures DFR (SGSN) mode: a dynamic rupture on the plane
// y = J0*h, with per-node initial stress and friction given on the global
// fault window [I0,I1) x [K0,K1).
type FaultSpec struct {
	J0             int
	I0, I1, K0, K1 int
	Tau0           [][]float64
	SigmaN         [][]float64
	Friction       [][]rupture.Friction
	// RecordEvery > 0 records slip-rate histories every that many steps
	// (for the dynamic-to-kinematic transfer).
	RecordEvery int
}

// Options configures a run.
type Options struct {
	Global grid.Dims
	H      float64
	// Dt is the time step. 0 derives it from the medium at the CFL
	// safety factor; explicitly negative values are rejected.
	Dt    float64
	Steps int
	Topo  mpi.Cart // zero value: single rank

	// CFL is the safety factor applied to the medium's 4th-order
	// stability bound when Dt is derived automatically. 0 defaults to
	// the historical 0.5; explicit values must lie in (0, 1] (1 is the
	// stability bound itself — the cfl4 and sqrt(3) factors are already
	// part of the bound). LTS rate assignment reuses the same factor for
	// per-rank stable steps.
	CFL float64

	// LTS configures multi-rate local time stepping (see LTSOptions).
	// Mutually exclusive with TemporalDepth > 1, M-PML and DFR mode.
	LTS LTSOptions

	Comm     CommModel
	Variant  fd.Variant
	Blocking fd.Blocking
	// TemporalDepth T > 1 enables time-tiled execution: each super-step
	// advances T leapfrog steps over cache-resident k-chunks with skewed
	// stage windows, exchanging 4T-deep halos once per super-step (one
	// message per neighbor per super-step when coalesced) instead of two
	// 2-deep exchanges per step. Results are bit-identical to depth 1.
	// 0 defaults to 1 (classic stepping); the maximum is
	// fd.MaxTemporalDepth. Depth > 1 requires the AsyncOverlap comm
	// model, M-PML boundaries and DFR fault mode to be off, and every
	// decomposed axis to give each rank at least 4T cells.
	TemporalDepth int
	// Threads sets the per-rank worker-pool size of the hybrid MPI/OpenMP
	// mode (§IV.D): a persistent pool of Threads goroutines executes the
	// kernel loops as a queue of j/k tiles (shape Blocking). 0 defaults to
	// 1 (pure MPI); negative values are rejected by Run. Every comm model
	// honors Threads: Synchronous, Asynchronous and AsyncReduced run the
	// bulk kernels, attenuation, sponge and PGV tracking on the pool;
	// AsyncOverlap additionally runs the boundary strips and the interior
	// update on the pool while halo messages are in flight.
	Threads int
	// CopyHalo selects the legacy copying message path (mpi.Comm.Send's
	// defensive copy) instead of the default zero-copy buffer-lending
	// path. Results are bit-identical; the switch exists so benchmarks can
	// isolate the messaging-layer gain.
	CopyHalo bool
	// CoalesceHalo packs every face bound for one neighbor in one phase
	// into a single pooled buffer sent as one message (see coalesce.go),
	// instead of the per-field unique-tag scheme — at most one message per
	// neighbor per phase. Pack/unpack run as tiles on the rank's worker
	// pool. Results are bit-identical under every comm model and both
	// buffer disciplines; the tuner enables it when the per-message cost
	// dominates (multi-rank runs with small faces).
	CoalesceHalo bool

	ABC         ABCKind
	PMLWidth    int
	SpongeWidth int
	SpongeAlpha float64
	FreeSurface bool

	Attenuation bool
	Band        attenuation.Band

	Sources []source.SampledSource
	Fault   *FaultSpec

	Receivers   [][3]int // global (i,j,k) seismogram locations
	RecordEvery int      // seismogram decimation (default 1)
	TrackPGV    bool     // accumulate surface peak velocity maps

	// Surface streams decimated free-surface velocity frames to a single
	// file through the two-phase aggregated I/O layer (internal/agg) —
	// the production M8 output path. nil disables it. Requires classic
	// stepping (TemporalDepth <= 1, LTS off): frames are extracted in
	// step lockstep across ranks because each flush is a collective.
	Surface *SurfaceOptions

	// Telemetry enables the per-rank instrumentation subsystem
	// (internal/telemetry): span timers per phase, per-neighbor message
	// counters, optional ring-buffered event traces, and the cross-rank
	// aggregated report in Result.Telemetry. nil (the default) disables
	// every probe — hot paths see only nil checks, the step schedule is
	// unchanged, and results are bit-identical either way.
	Telemetry *telemetry.Options
}

// Result collects rank-0 outputs of a run.
type Result struct {
	Steps int
	Dt    float64

	// Seismograms[r][n] is the velocity vector at receiver r, sample n.
	Seismograms [][][3]float32

	// Surface peak-velocity maps (global NX x NY, row-major y-fastest...
	// indexed [j*NX+i]); nil unless TrackPGV.
	PGVH []float64 // peak root-sum-square horizontal velocity
	PGVX []float64 // peak |vx|
	PGVY []float64 // peak |vy|
	PGVZ []float64 // peak |vz|

	// Fault outputs (DFR mode): global window arrays [K1-K0][I1-I0].
	FaultSlip     [][]float64
	FaultPeakRate [][]float64
	FaultRupTime  [][]float64
	FaultStats    rupture.Stats
	MomentRate    []float64 // per step, N*m/s

	// Slip-rate histories for the kinematic transfer: series[node] with
	// node coordinates in SlipNodes; populated when Fault.RecordEvery > 0.
	SlipNodes  [][3]int
	SlipSeries [][]float32
	SlipDt     float64

	// Timing is the per-phase max across ranks (the Eq. 7 decomposition).
	Timing Timing

	// Telemetry is the aggregated per-phase instrumentation report; nil
	// unless Options.Telemetry was set.
	Telemetry *telemetry.Report

	// Surface is the aggregated surface-output accounting (frames,
	// flushes, opens, virtual phase cost, per-stripe checksums); nil
	// unless Options.Surface was set.
	Surface *output.DistStats
}

// SurfaceOptions configures the aggregated surface-velocity output path.
type SurfaceOptions struct {
	FS   *pfs.FS
	Path string
	// Every is the step decimation: frame f holds the state after step
	// f·Every. <= 0 defaults to 1.
	Every int
	// FlushEvery is how many buffered frames trigger one collective
	// aggregated flush. <= 0 defaults to 1 (the pathological
	// per-step-flush mode the paper's aggregation removed).
	FlushEvery int
	// Agg tunes the aggregated collective write (writer count, open
	// throttle, tag).
	Agg agg.Config
}

// SurfaceRecBytes is the per-point record of a surface frame: vx, vy, vz
// as float32.
const SurfaceRecBytes = 12

// Timing is the measured Eq. 7 decomposition.
type Timing struct {
	Comp, Comm, Sync, Output float64 // seconds
}

// Run executes the simulation and returns the rank-0 result.
func Run(q cvm.Querier, opt Options) (*Result, error) {
	opt, err := PlanLTS(q, opt)
	if err != nil {
		return nil, err
	}
	dc, opt, err := Prepare(opt)
	if err != nil {
		return nil, err
	}

	var result *Result
	var runErr error
	world := mpi.NewWorld(opt.Topo.Size())
	world.Run(func(c *mpi.Comm) {
		r, e := runRank(c, q, dc, opt)
		if c.Rank() == 0 {
			result, runErr = r, e
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return result, nil
}

// rank-local solver state.
type rankState struct {
	comm *mpi.Comm
	sub  decomp.Sub
	med  *medium.Medium
	st   *fd.State
	hx   *halo
	pool *sched.Pool
	tel  *telemetry.Recorder // nil: telemetry disabled

	nbrMask [3][2]bool

	zones    []*boundary.PML
	compBox  fd.Box // non-PML region the bulk kernels cover
	sponge   *boundary.Sponge
	fs       *boundary.FreeSurface
	atten    *attenuation.Model
	srcs     *source.Set
	fault    *rupture.Fault
	recorder *rupture.SlipRateHistoryRecorder

	lts *ltsRank // non-nil when Options.LTS.Enabled

	surf *output.Dist // aggregated surface output (nil: disabled)

	receivers []ownedReceiver
	pgvh      []float64
	pgvx      []float64
	pgvy      []float64
	pgvz      []float64
	// pgvFolded marks that the PGV fold rides inside the sponge's fused
	// surface pass (Fused variant + sponge ABC), so the Output-phase
	// trackPGV call must not fold a second time.
	pgvFolded bool
}

type ownedReceiver struct {
	idx        int
	li, lj, lk int
	series     [][3]float32
	// sampled marks the indices a rate-2^k LTS rank actually recorded;
	// the gaps are interpolated in Finish. Nil on rate-1 ranks.
	sampled []bool
}

func runRank(c *mpi.Comm, q cvm.Querier, dc decomp.Decomp, opt Options) (*Result, error) {
	s, err := NewStepper(c, q, dc, opt)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	for !s.Done() {
		s.Step()
	}
	return s.Finish()
}

// ownedFaces reduces the ABC face set to the physical faces of this rank,
// excluding the free surface.
func ownedFaces(dc decomp.Decomp, rank int, opt Options) boundary.FaceSet {
	bf := dc.BoundaryFaces(rank)
	fs := boundary.FaceSet{
		XLo: bf[grid.X][0], XHi: bf[grid.X][1],
		YLo: bf[grid.Y][0], YHi: bf[grid.Y][1],
		ZLo: bf[grid.Z][0] && !opt.FreeSurface,
		ZHi: bf[grid.Z][1],
	}
	return fs
}

func (rs *rankState) setupFault(opt Options, dt float64) error {
	f := opt.Fault
	// Clip the global window to this rank's x/z extent.
	i0 := max(f.I0, rs.sub.OffX)
	i1 := min(f.I1, rs.sub.OffX+rs.sub.Local.NX)
	k0 := max(f.K0, rs.sub.OffZ)
	k1 := min(f.K1, rs.sub.OffZ+rs.sub.Local.NZ)
	if i1 <= i0 || k1 <= k0 {
		return nil // no fault nodes on this rank
	}
	nk, ni := k1-k0, i1-i0
	tau := make([][]float64, nk)
	sn := make([][]float64, nk)
	fr := make([][]rupture.Friction, nk)
	for k := 0; k < nk; k++ {
		gk := k0 + k - f.K0
		tau[k] = f.Tau0[gk][i0-f.I0 : i0-f.I0+ni]
		sn[k] = f.SigmaN[gk][i0-f.I0 : i0-f.I0+ni]
		fr[k] = f.Friction[gk][i0-f.I0 : i0-f.I0+ni]
	}
	cfg := rupture.Config{
		J0: f.J0 - rs.sub.OffY,
		I0: i0 - rs.sub.OffX, I1: i1 - rs.sub.OffX,
		K0: k0 - rs.sub.OffZ, K1: k1 - rs.sub.OffZ,
		Tau0: tau, SigmaN: sn, Friction: fr,
	}
	ft, err := rupture.NewFault(cfg, rs.sub.Local, rs.med.H)
	if err != nil {
		return err
	}
	rs.fault = ft
	if f.RecordEvery > 0 {
		rs.recorder = rupture.NewRecorder(ft, dt*float64(f.RecordEvery), 1<<20)
	}
	return nil
}

// advance performs one full time step with the configured comm model,
// accumulating the Eq. 7 timing decomposition. All bulk work runs as tile
// queues on the rank's persistent worker pool; with Threads=1 the pool
// degenerates to inline serial execution and the schedule is identical to
// the original code.
func (rs *rankState) advance(opt Options, dt, tNow float64, tm *Timing) {
	// --- Velocity phase ---
	t0 := time.Now()
	if opt.Comm == AsyncOverlap {
		strips, inner := boundaryStrips(rs.sub.Local, rs.nbrMask, grid.Ghost)
		sp := rs.tel.Span(telemetry.Velocity)
		fd.ForEachTileMulti(rs.clipStrips(strips), opt.Blocking, rs.pool, func(b fd.Box) {
			fd.UpdateVelocity(rs.st, rs.med, dt, b, opt.Variant, opt.Blocking)
		})
		sp.End()
		sp = rs.tel.Span(telemetry.Boundary)
		for _, z := range rs.zones {
			z.UpdateVelocity(rs.st, rs.med, dt)
		}
		sp.End()
		tm.Comp += time.Since(t0).Seconds()
		t0 = time.Now()
		fin := rs.hx.post(phaseVelocity, opt.Comm, rs.st.Velocities(), []int{0, 1, 2})
		tm.Comm += time.Since(t0).Seconds()
		t0 = time.Now()
		sp = rs.tel.Span(telemetry.Velocity)
		fd.UpdateVelocityTiled(rs.st, rs.med, dt, intersect(inner, rs.compBox), opt.Variant, opt.Blocking, rs.pool)
		sp.End()
		tm.Comp += time.Since(t0).Seconds()
		t0 = time.Now()
		fin()
		tm.Comm += time.Since(t0).Seconds()
	} else {
		sp := rs.tel.Span(telemetry.Velocity)
		fd.UpdateVelocityTiled(rs.st, rs.med, dt, rs.compBox, opt.Variant, opt.Blocking, rs.pool)
		sp.End()
		sp = rs.tel.Span(telemetry.Boundary)
		for _, z := range rs.zones {
			z.UpdateVelocity(rs.st, rs.med, dt)
		}
		sp.End()
		if rs.fault != nil {
			rs.fault.UpdateVelocity(rs.st, rs.med, dt)
		}
		tm.Comp += time.Since(t0).Seconds()
		t0 = time.Now()
		rs.hx.exchangeVelocities(rs.st, opt.Comm)
		tm.Comm += time.Since(t0).Seconds()
		if opt.Comm == Synchronous {
			t0 = time.Now()
			sp = rs.tel.Span(telemetry.Sync)
			rs.comm.Barrier()
			sp.End()
			tm.Sync += time.Since(t0).Seconds()
		}
	}
	t0 = time.Now()
	if rs.fs != nil {
		sp := rs.tel.Span(telemetry.Boundary)
		rs.fs.ApplyVelocity(rs.st, rs.med)
		sp.End()
	}
	tm.Comp += time.Since(t0).Seconds()

	// --- Stress phase ---
	// The sponge runs after the exchange (it damps ghost copies with the
	// same global taper, so every rank damps identical physical cells);
	// source injection runs before the strips are packed so neighbor
	// ghosts include it. Attenuation rides in the same tile as the elastic
	// stress update: it writes the same disjoint tile region, so the pair
	// stays race-free and cell-ordered.
	t0 = time.Now()
	if opt.Comm == AsyncOverlap {
		strips, inner := boundaryStrips(rs.sub.Local, rs.nbrMask, grid.Ghost)
		fd.ForEachTileMulti(rs.clipStrips(strips), opt.Blocking, rs.pool, rs.stressTile(opt, dt))
		sp := rs.tel.Span(telemetry.Boundary)
		for _, z := range rs.zones {
			z.UpdateStress(rs.st, rs.med, dt)
		}
		sp.End()
		inner2 := intersect(inner, rs.compBox)
		rs.srcs.InjectRegion(rs.st, dt, tNow, inner2, false) // strip sources
		tm.Comp += time.Since(t0).Seconds()
		t0 = time.Now()
		fin := rs.hx.post(phaseStress, opt.Comm, rs.st.Stresses(), []int{3, 4, 5, 6, 7, 8})
		tm.Comm += time.Since(t0).Seconds()
		t0 = time.Now()
		fd.ForEachTile(inner2, opt.Blocking, rs.pool, rs.stressTile(opt, dt))
		rs.srcs.InjectRegion(rs.st, dt, tNow, inner2, true) // interior sources
		tm.Comp += time.Since(t0).Seconds()
		t0 = time.Now()
		fin()
		tm.Comm += time.Since(t0).Seconds()
	} else {
		if rs.fault == nil {
			fd.ForEachTile(rs.compBox, opt.Blocking, rs.pool, rs.stressTile(opt, dt))
			sp := rs.tel.Span(telemetry.Boundary)
			for _, z := range rs.zones {
				z.UpdateStress(rs.st, rs.med, dt)
			}
			sp.End()
		} else {
			// DFR mode: the split-node correction must see the purely
			// elastic stress, so attenuation runs after it (the seed
			// ordering) instead of fused into the stress tiles.
			sp := rs.tel.Span(telemetry.Stress)
			fd.UpdateStressTiled(rs.st, rs.med, dt, rs.compBox, opt.Variant, opt.Blocking, rs.pool)
			sp.End()
			sp = rs.tel.Span(telemetry.Boundary)
			for _, z := range rs.zones {
				z.UpdateStress(rs.st, rs.med, dt)
			}
			sp.End()
			rs.fault.CorrectStress(rs.st, rs.med, dt)
			if rs.atten != nil {
				sp = rs.tel.Span(telemetry.Attenuation)
				rs.atten.ApplyTiled(rs.st, rs.med, dt, rs.compBox, opt.Blocking, rs.pool)
				sp.End()
			}
		}
		rs.srcs.Inject(rs.st, dt, tNow)
		tm.Comp += time.Since(t0).Seconds()
		t0 = time.Now()
		rs.hx.exchangeStresses(rs.st, opt.Comm)
		tm.Comm += time.Since(t0).Seconds()
		if opt.Comm == Synchronous {
			t0 = time.Now()
			sp := rs.tel.Span(telemetry.Sync)
			rs.comm.Barrier()
			sp.End()
			tm.Sync += time.Since(t0).Seconds()
		}
	}
	t0 = time.Now()
	if rs.sponge != nil {
		sp := rs.tel.Span(telemetry.Boundary)
		if rs.pgvFolded {
			rs.sponge.ApplySurfaceFused(rs.st, rs.pool, rs.trackPGVRow)
		} else {
			rs.sponge.ApplyPool(rs.st, rs.pool)
		}
		sp.End()
	}
	if rs.fs != nil {
		sp := rs.tel.Span(telemetry.Boundary)
		rs.fs.ApplyStress(rs.st)
		sp.End()
	}
	tm.Comp += time.Since(t0).Seconds()
}

// stressTile returns the fused stress+attenuation tile body shared by the
// bulk and overlap stress phases. Spans sit inside the tile so the fusion
// (and hence the pool schedule and bit-identity) is untouched while
// attenuation time is still attributed separately; Span.End is safe from
// concurrent pool workers.
func (rs *rankState) stressTile(opt Options, dt float64) func(fd.Box) {
	if opt.Variant == fd.Fused && rs.atten != nil {
		// Fully fused sweep: the memory-variable update runs point-by-point
		// inside the elastic i-loop, one read/modify/write of the six
		// stress fields per step instead of two. Bit-identical to the
		// two-pass tile below; the combined time lands in the Stress span
		// (there is no separate attenuation pass to time).
		return func(b fd.Box) {
			sp := rs.tel.Span(telemetry.Stress)
			rs.atten.FusedStress(rs.st, rs.med, dt, b)
			sp.End()
		}
	}
	return func(b fd.Box) {
		sp := rs.tel.Span(telemetry.Stress)
		fd.UpdateStress(rs.st, rs.med, dt, b, opt.Variant, opt.Blocking)
		sp.End()
		if rs.atten != nil {
			sp = rs.tel.Span(telemetry.Attenuation)
			rs.atten.Apply(rs.st, rs.med, dt, b)
			sp.End()
		}
	}
}

// clipStrips intersects the overlap boundary strips with the non-PML
// computation box, dropping strips the PML zones fully absorb.
func (rs *rankState) clipStrips(strips []fd.Box) []fd.Box {
	out := strips[:0]
	for _, b := range strips {
		if sb := intersect(b, rs.compBox); !sb.Empty() {
			out = append(out, sb)
		}
	}
	return out
}

// trackPGV folds the current surface velocities into the peak maps,
// row-sliced over the pool (rows are disjoint, so the parallel fold is
// race-free and bit-identical to the serial one).
func (rs *rankState) trackPGV() {
	if rs.pgvh == nil || rs.pgvFolded {
		return
	}
	rs.pool.ForEachN(rs.sub.Local.NY, rs.trackPGVRow)
}

// trackPGVRow folds surface row j through contiguous row slices instead
// of per-point bounds-checked At() calls.
func (rs *rankState) trackPGVRow(j int) {
	nx := rs.sub.Local.NX
	base := rs.st.VX.Idx(0, j, 0) // identical layout across components
	vxr := rs.st.VX.Data()[base : base+nx]
	vyr := rs.st.VY.Data()[base : base+nx]
	vzr := rs.st.VZ.Data()[base : base+nx]
	ph := rs.pgvh[j*nx : (j+1)*nx]
	px := rs.pgvx[j*nx : (j+1)*nx]
	py := rs.pgvy[j*nx : (j+1)*nx]
	pz := rs.pgvz[j*nx : (j+1)*nx]
	for i := 0; i < nx; i++ {
		vx, vy, vz := float64(vxr[i]), float64(vyr[i]), float64(vzr[i])
		if h := math.Hypot(vx, vy); h > ph[i] {
			ph[i] = h
		}
		if a := math.Abs(vx); a > px[i] {
			px[i] = a
		}
		if a := math.Abs(vy); a > py[i] {
			py[i] = a
		}
		if a := math.Abs(vz); a > pz[i] {
			pz[i] = a
		}
	}
}

// packSurfaceFrame serializes this rank's free-surface velocity
// rectangle for one output frame: vx, vy, vz per point, x fastest then
// y, matching the in-frame file view built in NewStepper. Returns nil on
// ranks that own no surface points.
func (rs *rankState) packSurfaceFrame() []byte {
	if rs.sub.OffZ != 0 {
		return nil
	}
	nx, ny := rs.sub.Local.NX, rs.sub.Local.NY
	buf := make([]float32, nx*ny*3)
	for j := 0; j < ny; j++ {
		base := rs.st.VX.Idx(0, j, 0)
		vxr := rs.st.VX.Data()[base : base+nx]
		vyr := rs.st.VY.Data()[base : base+nx]
		vzr := rs.st.VZ.Data()[base : base+nx]
		o := j * nx * 3
		for i := 0; i < nx; i++ {
			buf[o] = vxr[i]
			buf[o+1] = vyr[i]
			buf[o+2] = vzr[i]
			o += 3
		}
	}
	return mpiio.PutFloat32s(buf)
}

func intersect(a, b fd.Box) fd.Box {
	return fd.Box{
		I0: max(a.I0, b.I0), I1: min(a.I1, b.I1),
		J0: max(a.J0, b.J0), J1: min(a.J1, b.J1),
		K0: max(a.K0, b.K0), K1: min(a.K1, b.K1),
	}
}
