package solver

import (
	"math"
	"testing"

	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/telemetry"
)

func hybridTestConfig() HybridConfig {
	return HybridConfig{
		PerRank:     grid.Dims{NX: 10, NY: 10, NZ: 10},
		SampleRanks: 8,
		Steps:       10,
		Reps:        3,
		Ranks:       []int{64, 512, 4096, 10240},
	}
}

func hybridQuerier(cfg HybridConfig) cvm.Querier {
	g := cfg.PerRank
	return cvm.SoCal(float64(g.NX)*100*8, float64(g.NY)*100*8, float64(g.NZ)*100*4, 500)
}

// TestHybridMatchesFullRun is the end-to-end parity gate: the hybrid
// mode measures per-rank constants on an 8-rank sample, projects what a
// full execution of the P=64 weak-scaling point would cost on this
// host, and the projection must match a really-executed 64-rank run
// within tolerance. This is the check that keeps the extrapolated
// Fig. 5/6 curves anchored to something the host can still verify.
func TestHybridMatchesFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid parity needs real timed runs; skipped in -short")
	}
	cfg := hybridTestConfig()
	q := hybridQuerier(cfg)

	// Timer-sensitive gate: the race detector inflates every atomic and
	// lock by an order of magnitude, and does so non-uniformly between
	// the sampled measurement and the 64-rank verification run.
	tol := 0.15
	if telemetry.RaceEnabled {
		tol = 0.50
	}
	// The parity gate retries: host noise on a shared single core is
	// episodic (whole seconds of slowdown), so one attempt can have its
	// measurement and verification phases land in different regimes. A
	// genuinely biased projection fails every attempt; an episodic
	// mismeasure fails at most one or two.
	const attempts = 4
	var hs *HybridScaling
	passed := false
	for attempt := 1; attempt <= attempts; attempt++ {
		var err error
		hs, err = HybridRun(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var p64 *HybridPoint
		for i := range hs.Weak {
			if hs.Weak[i].Ranks == 64 {
				p64 = &hs.Weak[i]
			}
		}
		if p64 == nil {
			t.Fatal("no P=64 weak point")
		}
		measured, err := RunFullWeakPoint(q, cfg, 64)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(p64.HostProjStepSec-measured) / measured
		t.Logf("attempt %d: P=64 parity: projected %.4g s/step, measured %.4g s/step, rel err %.1f%%",
			attempt, p64.HostProjStepSec, measured, 100*relErr)
		if relErr <= tol {
			passed = true
			break
		}
	}
	if !passed {
		t.Fatalf("hybrid host projection missed the %.0f%% parity gate on all %d attempts", 100*tol, attempts)
	}

	if len(hs.Weak) != len(cfg.Ranks) {
		t.Fatalf("weak curve has %d points, want %d", len(hs.Weak), len(cfg.Ranks))
	}
	for i := range hs.Weak {
		pt := &hs.Weak[i]
		if pt.StepSec <= 0 || pt.Efficiency <= 0 || pt.Efficiency > 1.0001 {
			t.Fatalf("weak point P=%d implausible: step %.3g s, efficiency %.3g",
				pt.Ranks, pt.StepSec, pt.Efficiency)
		}
	}
	last := hs.Weak[len(hs.Weak)-1]
	if last.Ranks != 10240 {
		t.Fatalf("largest weak point is P=%d, want 10240", last.Ranks)
	}
	if last.SampledRanks != cfg.SampleRanks {
		t.Fatalf("P=10240 sampled %d ranks, want %d", last.SampledRanks, cfg.SampleRanks)
	}

	// The virtual cluster curve must reflect weak-scaling physics:
	// step time grows with P (communication and sync grow, compute per
	// rank fixed), so efficiency is non-increasing.
	for i := 1; i < len(hs.Weak); i++ {
		if hs.Weak[i].Efficiency > hs.Weak[i-1].Efficiency+1e-9 {
			t.Fatalf("weak efficiency increased from P=%d (%.4f) to P=%d (%.4f)",
				hs.Weak[i-1].Ranks, hs.Weak[i-1].Efficiency,
				hs.Weak[i].Ranks, hs.Weak[i].Efficiency)
		}
	}
	if len(hs.Strong) != len(cfg.Ranks) {
		t.Fatalf("strong curve has %d points, want %d", len(hs.Strong), len(cfg.Ranks))
	}
	for _, sp := range hs.Strong {
		if sp.StepTime <= 0 || sp.Speedup <= 0 {
			t.Fatalf("strong point P=%d implausible: %+v", sp.Cores, sp)
		}
	}
}

// TestMeasureConstantsSane checks the measured constants are physical:
// positive compute cost, non-negative fitted comm constants, measured
// traffic consistent with the coalesced layout at the sample size.
func TestMeasureConstantsSane(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement runs skipped in -short")
	}
	cfg := hybridTestConfig()
	mc, err := MeasureConstants(hybridQuerier(cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mc.CompSecPerCell <= 0 || mc.HostRankStepSec <= 0 {
		t.Fatalf("non-positive measured compute: %+v", mc)
	}
	if mc.HostNbrStepSec < 0 {
		t.Fatalf("negative per-neighbor host cost: %+v", mc)
	}
	if mc.Alpha < 0 || mc.Beta <= 0 {
		t.Fatalf("unphysical fitted constants: alpha=%g beta=%g", mc.Alpha, mc.Beta)
	}
	if mc.SyncPerRound <= 0 {
		t.Fatalf("non-positive barrier round: %g", mc.SyncPerRound)
	}
	// A 2x2x2 coalesced sample: every rank has 3 neighbors, one message
	// per neighbor per phase, two phases — 6 msgs/rank/step.
	if mc.MsgsPerRankStep < 4 || mc.MsgsPerRankStep > 8 {
		t.Fatalf("measured %g msgs/rank/step, want ~6 (coalesced 2x2x2)", mc.MsgsPerRankStep)
	}
	if mc.BytesPerRankStep <= 0 {
		t.Fatalf("no measured bytes: %+v", mc)
	}
	if mc.SampleRanks != cfg.SampleRanks {
		t.Fatalf("SampleRanks = %d, want %d", mc.SampleRanks, cfg.SampleRanks)
	}
}
