package solver

import (
	"fmt"
	"time"

	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/telemetry"
)

// Hybrid model-execution scaling: a sampled subset of ranks executes
// real kernels on this host, per-rank constants are measured from those
// executions (compute per cell from instrumented solver steps, alpha/
// beta from FitAlphaBeta over halo-exchange sweeps, barrier rounds from
// the tree collectives), and an mpi.VirtualWorld carries the remaining
// ranks in virtual time priced by perfmodel Eq. 7/8. This reproduces
// the paper's Fig. 5/6 weak/strong curves at P = O(10^4) from measured
// constants rather than Table 1 constants — the same fit-small,
// predict-large validation the paper itself performs (§V.A).

// HybridConfig configures a hybrid scaling run.
type HybridConfig struct {
	// PerRank is the per-rank subgrid of the weak-scaling sweep; every
	// decomposed axis must be >= 4 (the solver's halo-depth floor).
	PerRank grid.Dims
	// SampleRanks is the number of ranks that execute for real (both to
	// measure constants and as the VirtualWorld sample). 0 defaults to 8.
	SampleRanks int
	// Steps is the measured/virtual step count. 0 defaults to 10.
	Steps int
	// Reps is the number of measurement repetitions (min is kept). 0
	// defaults to 2.
	Reps int
	// Ranks is the weak/strong sweep, e.g. {64, 512, 4096, 10240}.
	Ranks []int
}

func (cfg *HybridConfig) fillDefaults() {
	if cfg.SampleRanks <= 0 {
		cfg.SampleRanks = 8
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 10
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 2
	}
}

// HybridPoint is one rank count of the hybrid weak-scaling curve.
type HybridPoint struct {
	Ranks        int
	Topo         [3]int
	Global       grid.Dims
	SampledRanks int
	// StepSec is the virtual-cluster time per step: the slowest rank's
	// VirtualWorld clock divided by the step count.
	StepSec float64
	// Model is the Eq. 7 breakdown of an interior rank at this scale.
	Model perfmodel.Breakdown
	// SkewSec is the fastest-to-slowest virtual clock spread after the
	// run — the load imbalance between corner/edge/face/interior roles.
	SkewSec    float64
	Efficiency float64 // T(1 rank)/T(P), per-rank work fixed
	Tflops     float64
	// HostProjStepSec projects a full (every-rank-real) execution of
	// this point on this host: total work × measured host sec/cell.
	HostProjStepSec float64
}

// HybridScaling is the full output of HybridRun.
type HybridScaling struct {
	Constants perfmodel.MeasuredConstants
	Weak      []HybridPoint
	// Strong is the Fig. 6-style strong-scaling sweep over the largest
	// weak-point global grid, priced from the same measured constants.
	Strong []perfmodel.ScalingPoint
}

// sampleOptions builds the instrumented solver options for a real
// execution of topo over global cells.
func sampleOptions(global grid.Dims, topo mpi.Cart, steps int) Options {
	return Options{
		Global: global, H: 100, Steps: steps, Topo: topo,
		Comm: AsyncReduced, Threads: 1, CoalesceHalo: true,
		ABC: SpongeABC, SpongeWidth: 4,
		FreeSurface: true, Attenuation: true,
		Telemetry: &telemetry.Options{},
	}
}

// MeasureConstants executes the sampled ranks for real and distills the
// per-rank constants the hybrid extrapolation prices from.
func MeasureConstants(q cvm.Querier, cfg HybridConfig) (perfmodel.MeasuredConstants, error) {
	cfg.fillDefaults()
	var mc perfmodel.MeasuredConstants
	mc.SampleRanks = cfg.SampleRanks
	cells := cfg.PerRank.Cells()

	// Compute per cell: a single-rank instrumented run. P=1 keeps the
	// measurement uncontended — on an oversubscribed host, multi-rank
	// per-rank spans include descheduled time and would overstate comp.
	for rep := 0; rep < cfg.Reps; rep++ {
		res, err := Run(q, sampleOptions(cfg.PerRank, mpi.NewCart(1, 1, 1), cfg.Steps))
		if err != nil {
			return mc, fmt.Errorf("hybrid comp measurement: %w", err)
		}
		cpc := res.Timing.Comp / float64(cfg.Steps) / float64(cells)
		if rep == 0 || cpc < mc.CompSecPerCell {
			mc.CompSecPerCell = cpc
		}
	}

	// Host projection constants: real weak-scaling runs at TWO sampled
	// world sizes with different mean neighbor counts pin the per-rank
	// and per-neighbor host costs. In weak scaling cells scale exactly
	// with ranks, so a per-rank term absorbs compute plus physical-
	// boundary work (a rank's faces are either neighbor faces or
	// physical faces — the two counts sum to 6, so the split folds into
	// the fit), and the neighbor term carries halo traffic and scheduler
	// churn. One size alone cannot see the neighbor term and undershoots
	// larger worlds by ~25%.
	topo := decomp.WeakTopo(cfg.PerRank, cfg.SampleRanks)
	topo2 := decomp.WeakTopo(cfg.PerRank, 4*cfg.SampleRanks)
	walls := [2]float64{}
	for i, tp := range []mpi.Cart{topo, topo2} {
		g := grid.Dims{
			NX: cfg.PerRank.NX * tp.PX,
			NY: cfg.PerRank.NY * tp.PY,
			NZ: cfg.PerRank.NZ * tp.PZ,
		}
		sec, err := measureStepSec(q, g, tp, cfg.Steps, cfg.Reps)
		if err != nil {
			return mc, fmt.Errorf("hybrid sampled run (%d ranks): %w", tp.Size(), err)
		}
		walls[i] = sec
	}
	s1, n1 := float64(topo.Size()), float64(sumNeighbors(topo))
	s2, n2 := float64(topo2.Size()), float64(sumNeighbors(topo2))
	det := s1*n2 - s2*n1
	if det != 0 {
		mc.HostRankStepSec = (walls[0]*n2 - walls[1]*n1) / det
		mc.HostNbrStepSec = (s1*walls[1] - s2*walls[0]) / det
	}
	if det == 0 || mc.HostNbrStepSec < 0 || mc.HostRankStepSec <= 0 {
		// Degenerate fit (identical mean neighbor counts, or noise drove
		// a constant negative): attribute everything to the per-rank term
		// of the larger — more interior-heavy — sample.
		mc.HostRankStepSec = walls[1] / s2
		mc.HostNbrStepSec = 0
	}

	// Alpha/beta: halo-exchange sweeps that vary byte volume (two local
	// sizes) independently of message count (coalesced vs per-field
	// layout), then the relative least-squares fit. The constants
	// describe THIS transport — a goroutine runtime's alpha is ~0.1µs,
	// three orders below Jaguar's; the curves are honest about that.
	small := grid.Dims{
		NX: max(4, cfg.PerRank.NX/2),
		NY: max(4, cfg.PerRank.NY/2),
		NZ: max(4, cfg.PerRank.NZ/2),
	}
	var samples []perfmodel.CommSample
	var coal HaloBenchResult
	for _, local := range []grid.Dims{cfg.PerRank, small} {
		for _, coalesce := range []bool{true, false} {
			r := RunHaloExchangeBench(HaloBenchConfig{
				Topo: topo, Local: local, Model: AsyncReduced,
				Coalesce: coalesce, Threads: 1, Steps: cfg.Steps,
			})
			samples = append(samples, perfmodel.CommSample{
				Msgs:  int(r.VelMsgs + r.StressMsgs),
				Bytes: 4 * (r.VelFloats + r.StressFloats),
				Sec:   r.SecPerStep,
			})
			if coalesce && local == cfg.PerRank {
				coal = r
			}
		}
	}
	var ok bool
	mc.Alpha, mc.Beta, ok = perfmodel.FitAlphaBeta(samples)
	if !ok || mc.Alpha < 0 || mc.Beta < 0 {
		// Degenerate fit (the transport's alpha can sit in measurement
		// noise): fall back to attributing the whole coalesced exchange
		// to the volume term and pricing alpha at zero.
		mc.Alpha = 0
		mc.Beta = samples[0].Sec / samples[0].Bytes
	}
	// The sampled per-rank traffic, from the production (coalesced)
	// layout the solver actually runs.
	mc.MsgsPerRankStep = (coal.VelMsgs + coal.StressMsgs) / float64(topo.Size())
	mc.BytesPerRankStep = 4 * (coal.VelFloats + coal.StressFloats) / float64(topo.Size())

	// One tree-barrier round at the sample size.
	const rounds = 200
	w := mpi.NewWorld(cfg.SampleRanks)
	t0 := time.Now()
	w.Run(func(c *mpi.Comm) {
		for i := 0; i < rounds; i++ {
			c.Barrier()
		}
	})
	mc.SyncPerRound = time.Since(t0).Seconds() / rounds
	return mc, nil
}

// measureStepSec measures the pure per-step wall seconds of a real
// execution by differencing: min wall over reps at `steps` steps vs at
// 2*steps, with (t2 - t1)/steps cancelling the one-shot setup cost
// (medium extraction, state allocation, goroutine spawn) that otherwise
// pollutes wall/steps differently at different world sizes. Min over
// reps is the right noise estimator for each wall — scheduler noise is
// additive and positive — and the subtraction of two mins keeps the
// setup term, common to both, out of the step estimate.
func measureStepSec(q cvm.Querier, global grid.Dims, topo mpi.Cart, steps, reps int) (float64, error) {
	wall := func(n int) (float64, error) {
		best := 0.0
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			if _, err := Run(q, sampleOptions(global, topo, n)); err != nil {
				return 0, err
			}
			sec := time.Since(t0).Seconds()
			if rep == 0 || sec < best {
				best = sec
			}
		}
		return best, nil
	}
	t1, err := wall(steps)
	if err != nil {
		return 0, err
	}
	t2, err := wall(2 * steps)
	if err != nil {
		return 0, err
	}
	sec := (t2 - t1) / float64(steps)
	if sec <= 0 {
		// Degenerate (noise swamped the differencing): fall back to the
		// longer run's raw average, which at 2*steps has the smaller
		// setup fraction.
		sec = t2 / float64(2*steps)
	}
	return sec, nil
}

// meanNeighbors returns the average neighbor count over a topology.
func meanNeighbors(t mpi.Cart) float64 {
	return float64(sumNeighbors(t)) / float64(t.Size())
}

// sumNeighbors returns the topology-wide neighbor-count total.
func sumNeighbors(t mpi.Cart) int {
	sum := 0
	for r := 0; r < t.Size(); r++ {
		sum += neighborCount(t, r)
	}
	return sum
}

func neighborCount(t mpi.Cart, r int) int {
	n := 0
	for axis := 0; axis < 3; axis++ {
		if t.Neighbor(r, axis, -1) >= 0 {
			n++
		}
		if t.Neighbor(r, axis, +1) >= 0 {
			n++
		}
	}
	return n
}

// HybridRun measures constants on the sampled ranks and extrapolates
// the weak/strong scaling curves across cfg.Ranks with a VirtualWorld
// per point: sampled ranks advance by their measured per-step cost,
// virtual ranks by the Eq. 7 breakdown, with per-rank communication
// scaled by each rank's neighbor count (corner/edge/face/interior).
func HybridRun(q cvm.Querier, cfg HybridConfig) (*HybridScaling, error) {
	cfg.fillDefaults()
	if len(cfg.Ranks) == 0 {
		return nil, fmt.Errorf("hybrid: empty rank sweep")
	}
	mc, err := MeasureConstants(q, cfg)
	if err != nil {
		return nil, err
	}
	out := &HybridScaling{Constants: mc}
	cellsPerRank := cfg.PerRank.Cells()
	// T(N,1) has no communication: the weak-efficiency baseline is the
	// single-rank compute time, the Eq. 8 numerator.
	b1 := perfmodel.StepTime(mc.HybridJob(cfg.PerRank, 1))
	t1 := b1.Comp + b1.IO

	sampleTopo := decomp.WeakTopo(cfg.PerRank, cfg.SampleRanks)
	sampleMeanNbr := meanNeighbors(sampleTopo)

	var maxGlobal grid.Dims
	for _, p := range cfg.Ranks {
		topo := decomp.WeakTopo(cfg.PerRank, p)
		global := grid.Dims{
			NX: cfg.PerRank.NX * topo.PX,
			NY: cfg.PerRank.NY * topo.PY,
			NZ: cfg.PerRank.NZ * topo.PZ,
		}
		if global.Cells() > maxGlobal.Cells() {
			maxGlobal = global
		}
		b := perfmodel.StepTime(mc.HybridJob(global, p))
		sampled := mpi.SampleStrata(topo, min(cfg.SampleRanks, p))
		vw := mpi.NewVirtualWorld(p, sampled)
		for step := 0; step < cfg.Steps; step++ {
			for r := 0; r < p; r++ {
				frac := float64(neighborCount(topo, r)) / 6
				var dt float64
				if vw.IsSampled(r) {
					// Real-execution constants: measured comp, measured
					// traffic priced at the fitted (alpha, beta), scaled
					// from the sample world's mean boundary role to this
					// rank's role.
					role := frac * 6 / sampleMeanNbr
					dt = mc.CompSecPerCell*float64(cellsPerRank) +
						perfmodel.MessageCost(mc.Alpha, mc.Beta,
							int(mc.MsgsPerRankStep*role+0.5),
							mc.BytesPerRankStep*role) +
						b.Sync
				} else {
					dt = b.Comp + b.Comm*frac + b.Sync
				}
				vw.Advance(r, dt)
			}
		}
		st := vw.MaxTime() / float64(cfg.Steps)
		out.Weak = append(out.Weak, HybridPoint{
			Ranks:        p,
			Topo:         [3]int{topo.PX, topo.PY, topo.PZ},
			Global:       global,
			SampledRanks: len(sampled),
			StepSec:      st,
			Model:        b,
			SkewSec:      vw.Skew(),
			Efficiency:   t1 / st,
			Tflops:       perfmodel.UsefulFlopsPerCell * float64(global.Cells()) / st / 1e12,
			HostProjStepSec: mc.HostProjectedStepSec(p, sumNeighbors(topo)),
		})
	}
	out.Strong = mc.HybridStrongCurve(maxGlobal, cfg.Ranks)
	return out, nil
}

// RunFullWeakPoint really executes every rank of one weak-scaling point
// on this host and returns the measured wall seconds per step — the
// ground truth the hybrid host projection is gated against at a size
// the host can still hold (the BENCH_8 parity check at P=64). It uses
// the same setup-cancelling differencing as the sampled measurement so
// both sides of the parity gate estimate the identical quantity.
func RunFullWeakPoint(q cvm.Querier, cfg HybridConfig, ranks int) (float64, error) {
	cfg.fillDefaults()
	topo := decomp.WeakTopo(cfg.PerRank, ranks)
	global := grid.Dims{
		NX: cfg.PerRank.NX * topo.PX,
		NY: cfg.PerRank.NY * topo.PY,
		NZ: cfg.PerRank.NZ * topo.PZ,
	}
	sec, err := measureStepSec(q, global, topo, cfg.Steps, cfg.Reps)
	if err != nil {
		return 0, fmt.Errorf("full weak point: %w", err)
	}
	return sec, nil
}
