package solver

import (
	"repro/internal/core/fd"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// Deep (super-step) halo exchange for temporal tiling: instead of two
// 2-plane exchanges per step, one exchange per T-step super-step refreshes
// ghost regions deep enough (4T-2 planes of velocity, 4T of stress, 4T-4
// of attenuation memory variables) that each rank recomputes the eroded
// boundary cells locally for T whole steps.
//
// The exchange runs as three sequential per-axis rounds (x, then y, then
// z). Each round's cross-sections are extended along the axes already
// exchanged, so corner ghosts fill progressively: the y round ships x-ghost
// cells the x round just filled, and the z round ships both. Axis peers in
// a cartesian decomposition share their cross-axis neighbor masks, so the
// section shapes on both ends of a message agree by construction.
//
// On free-surface ranks the x/y cross-sections start at k = -2: the FS2
// image planes (written from interior values by the free-surface updates)
// are boundary data the next super-step's first stages read at ghost
// extensions, and no z round exists to carry them (the surface has no
// z-low neighbor). For fields whose image planes are never written (sxx,
// syy, sxy, the memory variables) those planes are deterministically zero
// on every rank, so shipping them is harmless and keeps section shapes
// uniform across fields.
type deepField struct {
	f     *grid.Field3
	slot  int // tag slot: 0-8 wavefield, 9-14 memory variables
	depth int // exchange depth in planes
}

type deepSpec struct {
	d      grid.Dims
	fields []deepField
	zlo    int // -2 on free-surface ranks, else 0
}

// deepFields assembles the exchange list for one rank at depth T.
func (rs *rankState) deepFields(T int) deepSpec {
	spec := deepSpec{d: rs.sub.Local}
	if rs.fs != nil {
		spec.zlo = -grid.Ghost
	}
	dv, ds := fd.VelDepth(T), fd.StressDepth(T)
	for slot, f := range rs.st.Fields() {
		depth := ds
		if slot < 3 {
			depth = dv
		}
		spec.fields = append(spec.fields, deepField{f: f, slot: slot, depth: depth})
	}
	if rs.atten != nil {
		dm := fd.MemvarDepth(T)
		zs := []*grid.Field3{rs.atten.ZXX, rs.atten.ZYY, rs.atten.ZZZ,
			rs.atten.ZXY, rs.atten.ZXZ, rs.atten.ZYZ}
		for i, z := range zs {
			spec.fields = append(spec.fields, deepField{f: z, slot: 9 + i, depth: dm})
		}
	}
	return spec
}

// deepRange returns the block of one field's section in round ax, side sd:
// the interior planes to pack (ghost=false) or the ghost planes to fill
// (ghost=true). Cross-axes before ax extend df cells into the (already
// exchanged) ghosts where a neighbor exists; cross-axes after ax stay
// interior, except z which starts at zlo (FS image planes).
func deepRange(d grid.Dims, nbr [3][2]bool, zlo int, ax grid.Axis, sd grid.Side, df int, ghost bool) (r [6]int) {
	n := [3]int{d.NX, d.NY, d.NZ}
	lo := [3]int{0, 0, zlo}
	hi := [3]int{d.NX, d.NY, d.NZ}
	for b := grid.X; b < ax; b++ {
		if nbr[b][0] {
			lo[b] = -df
		}
		if nbr[b][1] {
			hi[b] = n[b] + df
		}
	}
	switch {
	case !ghost && sd == grid.Low:
		lo[ax], hi[ax] = 0, df
	case !ghost && sd == grid.High:
		lo[ax], hi[ax] = n[ax]-df, n[ax]
	case ghost && sd == grid.Low:
		lo[ax], hi[ax] = -df, 0
	default:
		lo[ax], hi[ax] = n[ax], n[ax]+df
	}
	return [6]int{lo[0], hi[0], lo[1], hi[1], lo[2], hi[2]}
}

func rangeLen(r [6]int) int { return grid.RangeLen(r[0], r[1], r[2], r[3], r[4], r[5]) }

// dtag builds the per-field deep-exchange tag. The 8192 base keeps the
// space disjoint from the per-step tags (per-field <= 65, coalesced
// 4096+...); slots run 0-14.
func dtag(slot int, ax grid.Axis, dirHigh bool) int {
	t := 8192 + (slot*3+int(ax))*2
	if dirHigh {
		t++
	}
	return t
}

// dctag is the coalesced deep-message tag, above the per-field deep space
// (slot 14 -> max 8192+89).
func dctag(ax grid.Axis, dirHigh bool) int {
	t := 8192 + 96 + int(ax)*2
	if dirHigh {
		t++
	}
	return t
}

// copy-discipline buffer keys for the deep exchange, disjoint from the
// per-step keys (<= ~6700).
func dkeySend(slot int, ax grid.Axis, side int) int { return 10000 + (slot*3+int(ax))*2 + side }
func dkeyRecv(slot int, ax grid.Axis, side int) int { return 11000 + (slot*3+int(ax))*2 + side }
func dckeySend(ax grid.Axis, side int) int          { return 12000 + int(ax)*2 + side }
func dckeyRecv(ax grid.Axis, side int) int          { return 12100 + int(ax)*2 + side }

// nbrMask converts the halo's neighbor table to a presence mask.
func (h *halo) nbrMask() (m [3][2]bool) {
	for ax := 0; ax < 3; ax++ {
		for side := 0; side < 2; side++ {
			m[ax][side] = h.nbr[ax][side] >= 0
		}
	}
	return
}

// exchangeDeep runs the three rounds of one super-step exchange. All comm
// models share the nonblocking round implementation (each round must
// complete before the next starts — later rounds ship earlier rounds'
// results); the models differ only in the per-super-step barrier the
// caller adds for Synchronous.
func (h *halo) exchangeDeep(spec deepSpec) {
	for ax := grid.X; ax <= grid.Z; ax++ {
		if h.coalesce {
			h.deepRoundCoalesced(spec, ax)
		} else {
			h.deepRound(spec, ax)
		}
	}
}

// deepRound exchanges one axis with one message per field per neighbor.
func (h *halo) deepRound(spec deepSpec, ax grid.Axis) {
	mask := h.nbrMask()
	type pending struct {
		df  deepField
		sd  grid.Side
		buf []float32
		req *mpi.Request
	}
	var pend []pending
	for _, df := range spec.fields {
		for side := 0; side < 2; side++ {
			peer := h.nbr[ax][side]
			if peer < 0 {
				continue
			}
			rt := dtag(df.slot, ax, side == 0)
			if h.copyMode {
				r := deepRange(spec.d, mask, spec.zlo, ax, grid.Side(side), df.depth, true)
				in := h.buf(dkeyRecv(df.slot, ax, side), rangeLen(r))
				req := h.comm.Irecv(in, peer, rt)
				pend = append(pend, pending{df, grid.Side(side), in, req})
			} else {
				req := h.comm.IrecvTake(peer, rt)
				pend = append(pend, pending{df, grid.Side(side), nil, req})
			}
		}
	}
	for _, df := range spec.fields {
		for side := 0; side < 2; side++ {
			peer := h.nbr[ax][side]
			if peer < 0 {
				continue
			}
			r := deepRange(spec.d, mask, spec.zlo, ax, grid.Side(side), df.depth, false)
			n := rangeLen(r)
			var out []float32
			if h.copyMode {
				out = h.buf(dkeySend(df.slot, ax, side), n)
			} else {
				out = mpi.GetBuffer(n)
			}
			sp := h.tel.Span(telemetry.Pack)
			df.f.PackRange(r[0], r[1], r[2], r[3], r[4], r[5], out)
			sp.End()
			sp = h.tel.Span(telemetry.Send)
			if h.copyMode {
				h.comm.Isend(peer, dtag(df.slot, ax, side == 1), out)
			} else {
				h.comm.IsendOwned(peer, dtag(df.slot, ax, side == 1), out)
			}
			sp.End()
		}
	}
	for _, p := range pend {
		sp := h.tel.Span(telemetry.Recv)
		p.req.Wait()
		sp.End()
		sp = h.tel.Span(telemetry.Unpack)
		in := p.buf
		if !h.copyMode {
			in = p.req.Data()
		}
		r := deepRange(spec.d, mask, spec.zlo, ax, p.sd, p.df.depth, true)
		p.df.f.UnpackRange(r[0], r[1], r[2], r[3], r[4], r[5], in)
		if !h.copyMode {
			mpi.PutBuffer(in)
		}
		sp.End()
	}
}

// deepRoundCoalesced exchanges one axis with one aggregate message per
// neighbor: all fields' sections packed at fixed offsets in slot order.
// Combined with the three-round structure this yields exactly one message
// per neighbor per super-step (each neighbor lies on one axis).
func (h *halo) deepRoundCoalesced(spec deepSpec, ax grid.Axis) {
	mask := h.nbrMask()
	type msg struct {
		side  int
		peer  int
		total int
		offs  []int
	}
	var msgs []msg
	for side := 0; side < 2; side++ {
		peer := h.nbr[ax][side]
		if peer < 0 {
			continue
		}
		m := msg{side: side, peer: peer}
		for _, df := range spec.fields {
			r := deepRange(spec.d, mask, spec.zlo, ax, grid.Side(side), df.depth, false)
			m.offs = append(m.offs, m.total)
			m.total += rangeLen(r)
		}
		msgs = append(msgs, m)
	}
	if len(msgs) == 0 {
		return
	}

	recvReqs := make([]*mpi.Request, len(msgs))
	recvBufs := make([][]float32, len(msgs))
	for mi, m := range msgs {
		rt := dctag(ax, m.side == 0)
		if h.copyMode {
			recvBufs[mi] = h.buf(dckeyRecv(ax, m.side), m.total)
			recvReqs[mi] = h.comm.Irecv(recvBufs[mi], m.peer, rt)
		} else {
			recvReqs[mi] = h.comm.IrecvTake(m.peer, rt)
		}
	}

	sendBufs := make([][]float32, len(msgs))
	for mi, m := range msgs {
		if h.copyMode {
			sendBufs[mi] = h.buf(dckeySend(ax, m.side), m.total)
		} else {
			sendBufs[mi] = mpi.GetBuffer(m.total)
		}
	}
	sp := h.tel.Span(telemetry.Pack)
	nf := len(spec.fields)
	h.pool.ForEachN(len(msgs)*nf, func(t int) {
		mi, fi := t/nf, t%nf
		m := &msgs[mi]
		df := spec.fields[fi]
		r := deepRange(spec.d, mask, spec.zlo, ax, grid.Side(m.side), df.depth, false)
		n := rangeLen(r)
		df.f.PackRange(r[0], r[1], r[2], r[3], r[4], r[5], sendBufs[mi][m.offs[fi]:m.offs[fi]+n])
	})
	sp.End()
	sp = h.tel.Span(telemetry.Send)
	for mi, m := range msgs {
		st := dctag(ax, m.side == 1)
		if h.copyMode {
			h.comm.Isend(m.peer, st, sendBufs[mi])
		} else {
			h.comm.IsendOwned(m.peer, st, sendBufs[mi])
		}
	}
	sp.End()

	sp = h.tel.Span(telemetry.Recv)
	for mi := range msgs {
		recvReqs[mi].Wait()
		if !h.copyMode {
			recvBufs[mi] = recvReqs[mi].Data()
		}
	}
	sp.End()
	sp = h.tel.Span(telemetry.Unpack)
	h.pool.ForEachN(len(msgs)*nf, func(t int) {
		mi, fi := t/nf, t%nf
		m := &msgs[mi]
		df := spec.fields[fi]
		r := deepRange(spec.d, mask, spec.zlo, ax, grid.Side(m.side), df.depth, true)
		n := rangeLen(r)
		df.f.UnpackRange(r[0], r[1], r[2], r[3], r[4], r[5], recvBufs[mi][m.offs[fi]:m.offs[fi]+n])
	})
	if !h.copyMode {
		for mi := range recvBufs {
			mpi.PutBuffer(recvBufs[mi])
		}
	}
	sp.End()
}

// TemporalHaloStats returns the halo traffic of ONE super-step at temporal
// depth T for a rank with the given subgrid and neighbor mask. Per-step
// figures are these divided by T — the ~T-fold message reduction the
// perfmodel's per-message term prices. VelMsgs counts velocity-field
// messages and StressMsgs the stress and memory-variable messages; when
// coalesced the single aggregate per neighbor is counted under VelMsgs.
// The reduced stress axis set does not apply to the deep exchange (the
// recomputed extension cells mix derivative axes), so the stats are
// comm-model independent.
func TemporalHaloStats(d grid.Dims, nbrMask [3][2]bool, coalesced bool, T int, atten, freeSurface bool) MessageStats {
	depths := make([]int, 0, 15)
	for slot := 0; slot < 9; slot++ {
		if slot < 3 {
			depths = append(depths, fd.VelDepth(T))
		} else {
			depths = append(depths, fd.StressDepth(T))
		}
	}
	if atten {
		for i := 0; i < 6; i++ {
			depths = append(depths, fd.MemvarDepth(T))
		}
	}
	zlo := 0
	if freeSurface {
		zlo = -grid.Ghost
	}
	var st MessageStats
	for ax := grid.X; ax <= grid.Z; ax++ {
		for side := 0; side < 2; side++ {
			if !nbrMask[int(ax)][side] {
				continue
			}
			for slot, df := range depths {
				r := deepRange(d, nbrMask, zlo, ax, grid.Side(side), df, false)
				st.Floats += rangeLen(r)
				if !coalesced {
					if slot < 3 {
						st.VelMsgs++
					} else {
						st.StressMsgs++
					}
				}
			}
			if coalesced {
				st.VelMsgs++
			}
		}
	}
	return st
}
