// Package solver integrates the AWP-ODC components into the two
// production drivers (§III.A, Fig. 6): AWM, the anelastic wave propagation
// model, and DFR, the SGSN dynamic fault rupture solver. It owns the MPI
// halo exchange in the four communication models whose evolution the paper
// documents (§IV.A, §IV.C): synchronous, asynchronous with unique tags,
// asynchronous with algorithm-level reduced communication, and
// computation/communication overlap.
package solver

import (
	"repro/internal/core/fd"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// CommModel selects the halo-exchange strategy. All models compute
// identical wavefields; they differ in message pattern and scheduling,
// which the performance model (internal/perfmodel) prices.
type CommModel int

const (
	// Synchronous is the original cascaded blocking model with a global
	// barrier per step (AWP-ODC <= v4.0).
	Synchronous CommModel = iota
	// Asynchronous posts all sends/receives with unique tags and waits
	// once (v5.0, ~7x wall-clock reduction on 223K cores).
	Asynchronous
	// AsyncReduced adds the algorithm-level communication reduction: each
	// stress component is exchanged only along the axes its derivatives
	// are taken in (v7.2, 75% less normal-stress traffic, +15%).
	AsyncReduced
	// AsyncOverlap interleaves interior computation with the exchange
	// (§IV.C, +11–21%).
	AsyncOverlap
)

func (c CommModel) String() string {
	switch c {
	case Synchronous:
		return "sync"
	case Asynchronous:
		return "async"
	case AsyncReduced:
		return "async-reduced"
	case AsyncOverlap:
		return "overlap"
	}
	return "unknown"
}

// axesAll is the exchange set for velocity components and for stresses in
// the non-reduced models.
var axesAll = []grid.Axis{grid.X, grid.Y, grid.Z}

// stressAxesReduced maps stress component index (xx,yy,zz,xy,xz,yz) to the
// axes it must be exchanged along (§IV.A: "we only need to update xx in
// the x direction").
var stressAxesReduced = [6][]grid.Axis{
	{grid.X},         // sxx
	{grid.Y},         // syy
	{grid.Z},         // szz
	{grid.X, grid.Y}, // sxy
	{grid.X, grid.Z}, // sxz
	{grid.Y, grid.Z}, // syz
}

// halo manages ghost exchange for one rank. Two message disciplines:
//
//   - zero-copy (default): faces are packed into pooled buffers
//     (mpi.GetBuffer) that are lent to the runtime with SendOwned and
//     claimed by the receiver with RecvTake/IrecvTake, then recycled with
//     PutBuffer. One pack, zero further copies, zero steady-state
//     allocations per message.
//   - copy (legacy, copyMode=true): the original path through
//     mpi.Comm.Send's defensive copy, kept for benchmarking the
//     zero-copy gain. Results are bit-identical.
type halo struct {
	comm *mpi.Comm
	topo mpi.Cart
	// nbr[axis][side] is the neighbor rank or -1.
	nbr [3][2]int
	// copyMode selects the legacy copying send path.
	copyMode bool
	// Reusable pack buffers per field slot and axis/side (copy path only).
	bufs map[int][]float32
}

func newHalo(c *mpi.Comm, topo mpi.Cart, copyMode bool) *halo {
	h := &halo{comm: c, topo: topo, copyMode: copyMode, bufs: map[int][]float32{}}
	for ax := 0; ax < 3; ax++ {
		h.nbr[ax][0] = topo.Neighbor(c.Rank(), ax, -1)
		h.nbr[ax][1] = topo.Neighbor(c.Rank(), ax, +1)
	}
	return h
}

// tag builds a unique message tag from field slot, axis and direction of
// travel (the paper's unique-tagging scheme that permits out-of-order
// arrival without ambiguity).
func tag(slot int, ax grid.Axis, dirHigh bool) int {
	t := (slot*3+int(ax))*2 + 1
	if dirHigh {
		t++
	}
	return t
}

func (h *halo) buf(key, n int) []float32 {
	b := h.bufs[key]
	if cap(b) < n {
		b = make([]float32, n)
		h.bufs[key] = b
	}
	return b[:n]
}

// exchangeSync performs blocking per-axis send/recv pairs plus nothing
// else; the caller adds the global barrier the original code had.
func (h *halo) exchangeSync(fields []*grid.Field3, slots []int, axes func(int) []grid.Axis) {
	for fi, f := range fields {
		for _, ax := range axes(fi) {
			n := f.FaceLen(ax, grid.Ghost)
			for side := 0; side < 2; side++ {
				sd := grid.Side(side)
				peer := h.nbr[ax][side]
				if peer < 0 {
					continue
				}
				if h.copyMode {
					out := h.buf(tag(slots[fi], ax, side == 1)*2, n)
					f.PackFace(ax, sd, grid.Ghost, out)
					h.comm.Send(peer, tag(slots[fi], ax, side == 1), out)
				} else {
					out := mpi.GetBuffer(n)
					f.PackFace(ax, sd, grid.Ghost, out)
					h.comm.SendOwned(peer, tag(slots[fi], ax, side == 1), out)
				}
			}
			for side := 0; side < 2; side++ {
				sd := grid.Side(side)
				peer := h.nbr[ax][side]
				if peer < 0 {
					continue
				}
				// The message arriving from the low neighbor was sent as
				// its high-side message, and vice versa.
				if h.copyMode {
					in := h.buf(tag(slots[fi], ax, side == 1)*2+1, n)
					h.comm.Recv(in, peer, tag(slots[fi], ax, side == 0))
					f.UnpackFace(ax, sd, grid.Ghost, in)
				} else {
					in, _ := h.comm.RecvTake(peer, tag(slots[fi], ax, side == 0))
					f.UnpackFace(ax, sd, grid.Ghost, in)
					mpi.PutBuffer(in)
				}
			}
		}
	}
}

// postAsync posts all receives and sends with unique tags and returns a
// finish function that waits and unpacks — the split that enables the
// overlap model to compute the interior between post and finish.
func (h *halo) postAsync(fields []*grid.Field3, slots []int, axes func(int) []grid.Axis) func() {
	type pending struct {
		f   *grid.Field3
		ax  grid.Axis
		sd  grid.Side
		buf []float32
		req *mpi.Request
	}
	var pend []pending
	key := 0
	for fi, f := range fields {
		for _, ax := range axes(fi) {
			n := f.FaceLen(ax, grid.Ghost)
			for side := 0; side < 2; side++ {
				peer := h.nbr[ax][side]
				if peer < 0 {
					continue
				}
				if h.copyMode {
					in := h.buf(1000+key, n)
					key++
					req := h.comm.Irecv(in, peer, tag(slots[fi], ax, side == 0))
					pend = append(pend, pending{f, ax, grid.Side(side), in, req})
				} else {
					req := h.comm.IrecvTake(peer, tag(slots[fi], ax, side == 0))
					pend = append(pend, pending{f, ax, grid.Side(side), nil, req})
				}
			}
		}
	}
	for fi, f := range fields {
		for _, ax := range axes(fi) {
			n := f.FaceLen(ax, grid.Ghost)
			for side := 0; side < 2; side++ {
				peer := h.nbr[ax][side]
				if peer < 0 {
					continue
				}
				if h.copyMode {
					out := h.buf(2000+key, n)
					key++
					f.PackFace(ax, grid.Side(side), grid.Ghost, out)
					h.comm.Isend(peer, tag(slots[fi], ax, side == 1), out)
				} else {
					out := mpi.GetBuffer(n)
					f.PackFace(ax, grid.Side(side), grid.Ghost, out)
					h.comm.IsendOwned(peer, tag(slots[fi], ax, side == 1), out)
				}
			}
		}
	}
	return func() {
		for _, p := range pend {
			p.req.Wait()
			if h.copyMode {
				p.f.UnpackFace(p.ax, p.sd, grid.Ghost, p.buf)
			} else {
				in := p.req.Data()
				p.f.UnpackFace(p.ax, p.sd, grid.Ghost, in)
				mpi.PutBuffer(in)
			}
		}
	}
}

// velocityAxes and stressAxes return the per-field exchange sets for the
// model.
func velocityAxes(CommModel) func(int) []grid.Axis {
	return func(int) []grid.Axis { return axesAll }
}

func stressAxes(model CommModel) func(int) []grid.Axis {
	if model == AsyncReduced || model == AsyncOverlap {
		return func(fi int) []grid.Axis { return stressAxesReduced[fi] }
	}
	return func(int) []grid.Axis { return axesAll }
}

// exchangeVelocities exchanges the three velocity components per model.
func (h *halo) exchangeVelocities(s *fd.State, model CommModel) {
	fields := s.Velocities()
	slots := []int{0, 1, 2}
	if model == Synchronous {
		h.exchangeSync(fields, slots, velocityAxes(model))
		return
	}
	h.postAsync(fields, slots, velocityAxes(model))()
}

// exchangeStresses exchanges the six stress components per model.
func (h *halo) exchangeStresses(s *fd.State, model CommModel) {
	fields := s.Stresses()
	slots := []int{3, 4, 5, 6, 7, 8}
	if model == Synchronous {
		h.exchangeSync(fields, slots, stressAxes(model))
		return
	}
	h.postAsync(fields, slots, stressAxes(model))()
}

// boundaryStrips splits a subgrid into the halo-adjacent strips (width w
// on each face that has a neighbor) and the remaining interior box, for
// the overlap schedule: compute strips, post their exchange, compute the
// interior while messages fly.
func boundaryStrips(d grid.Dims, mask [3][2]bool, w int) ([]fd.Box, fd.Box) {
	interior := fd.FullBox(d)
	var strips []fd.Box
	add := func(b fd.Box) {
		if !b.Empty() {
			strips = append(strips, b)
		}
	}
	if mask[0][0] {
		add(fd.Box{I0: 0, I1: w, J0: 0, J1: d.NY, K0: 0, K1: d.NZ})
		interior.I0 = w
	}
	if mask[0][1] {
		add(fd.Box{I0: d.NX - w, I1: d.NX, J0: 0, J1: d.NY, K0: 0, K1: d.NZ})
		interior.I1 = d.NX - w
	}
	if mask[1][0] {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: 0, J1: w, K0: 0, K1: d.NZ})
		interior.J0 = w
	}
	if mask[1][1] {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: d.NY - w, J1: d.NY, K0: 0, K1: d.NZ})
		interior.J1 = d.NY - w
	}
	if mask[2][0] {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: interior.J0, J1: interior.J1, K0: 0, K1: w})
		interior.K0 = w
	}
	if mask[2][1] {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: interior.J0, J1: interior.J1, K0: d.NZ - w, K1: d.NZ})
		interior.K1 = d.NZ - w
	}
	return strips, interior
}

// MessageVolume returns the number of float32 values a rank with the given
// subgrid exchanges per step under the model (both wavefield phases),
// counting only faces with neighbors. Used by tests and the performance
// model to verify the 75%-reduction claim for normal stresses.
func MessageVolume(d grid.Dims, nbrMask [3][2]bool, model CommModel) int {
	faceLen := func(ax grid.Axis) int {
		switch ax {
		case grid.X:
			return grid.Ghost * d.NY * d.NZ
		case grid.Y:
			return grid.Ghost * d.NX * d.NZ
		default:
			return grid.Ghost * d.NX * d.NY
		}
	}
	countAxes := func(axes []grid.Axis) int {
		tot := 0
		for _, ax := range axes {
			for side := 0; side < 2; side++ {
				if nbrMask[int(ax)][side] {
					tot += faceLen(ax)
				}
			}
		}
		return tot
	}
	total := 0
	for i := 0; i < 3; i++ { // velocities: always all axes
		total += countAxes(axesAll)
		_ = i
	}
	for c := 0; c < 6; c++ {
		if model == AsyncReduced || model == AsyncOverlap {
			total += countAxes(stressAxesReduced[c])
		} else {
			total += countAxes(axesAll)
		}
	}
	return total
}
