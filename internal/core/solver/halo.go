// Package solver integrates the AWP-ODC components into the two
// production drivers (§III.A, Fig. 6): AWM, the anelastic wave propagation
// model, and DFR, the SGSN dynamic fault rupture solver. It owns the MPI
// halo exchange in the four communication models whose evolution the paper
// documents (§IV.A, §IV.C): synchronous, asynchronous with unique tags,
// asynchronous with algorithm-level reduced communication, and
// computation/communication overlap.
package solver

import (
	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// CommModel selects the halo-exchange strategy. All models compute
// identical wavefields; they differ in message pattern and scheduling,
// which the performance model (internal/perfmodel) prices.
type CommModel int

const (
	// Synchronous is the original cascaded blocking model with a global
	// barrier per step (AWP-ODC <= v4.0).
	Synchronous CommModel = iota
	// Asynchronous posts all sends/receives with unique tags and waits
	// once (v5.0, ~7x wall-clock reduction on 223K cores).
	Asynchronous
	// AsyncReduced adds the algorithm-level communication reduction: each
	// stress component is exchanged only along the axes its derivatives
	// are taken in (v7.2, 75% less normal-stress traffic, +15%).
	AsyncReduced
	// AsyncOverlap interleaves interior computation with the exchange
	// (§IV.C, +11–21%).
	AsyncOverlap
)

func (c CommModel) String() string {
	switch c {
	case Synchronous:
		return "sync"
	case Asynchronous:
		return "async"
	case AsyncReduced:
		return "async-reduced"
	case AsyncOverlap:
		return "overlap"
	}
	return "unknown"
}

// axesAll is the exchange set for velocity components and for stresses in
// the non-reduced models.
var axesAll = []grid.Axis{grid.X, grid.Y, grid.Z}

// stressAxesReduced maps stress component index (xx,yy,zz,xy,xz,yz) to the
// axes it must be exchanged along (§IV.A: "we only need to update xx in
// the x direction").
var stressAxesReduced = [6][]grid.Axis{
	{grid.X},         // sxx
	{grid.Y},         // syy
	{grid.Z},         // szz
	{grid.X, grid.Y}, // sxy
	{grid.X, grid.Z}, // sxz
	{grid.Y, grid.Z}, // syz
}

// halo manages ghost exchange for one rank. Two buffer disciplines:
//
//   - zero-copy (default): faces are packed into pooled buffers
//     (mpi.GetBuffer) that are lent to the runtime with SendOwned and
//     claimed by the receiver with RecvTake/IrecvTake, then recycled with
//     PutBuffer. One pack, zero further copies, zero steady-state
//     allocations per message.
//   - copy (legacy, copyMode=true): the original path through
//     mpi.Comm.Send's defensive copy, kept for benchmarking the
//     zero-copy gain. Results are bit-identical.
//
// Orthogonally, two message layouts:
//
//   - per-field (default): one message per (field, axis, side), the
//     paper's unique-tag scheme — up to 54 messages per step.
//   - coalesced (coalesce=true): every face bound for one neighbor in
//     one phase is packed at planned offsets into a single pooled buffer
//     and sent as one tagged message — at most one message per neighbor
//     per phase (see coalesce.go). Pack/unpack of the face sections runs
//     as tiles on the rank's worker pool. Results are bit-identical.
type halo struct {
	comm *mpi.Comm
	topo mpi.Cart
	// nbr[axis][side] is the neighbor rank or -1.
	nbr [3][2]int
	// copyMode selects the legacy copying send path.
	copyMode bool
	// coalesce selects the one-message-per-neighbor layout.
	coalesce bool
	// pool runs coalesced pack/unpack sections as tiles; nil packs
	// serially.
	pool *sched.Pool
	// Reusable pack buffers per field slot and axis/side (copy path only).
	bufs map[int][]float32
	// Cached coalesced layouts per (phase, reduced axis set).
	plans map[planKey]*coalPlan
	// tel records pack/send/recv/unpack spans; nil disables (every probe
	// is a nil check).
	tel *telemetry.Recorder
}

func newHalo(c *mpi.Comm, topo mpi.Cart, copyMode, coalesce bool, pool *sched.Pool) *halo {
	h := &halo{
		comm: c, topo: topo, copyMode: copyMode, coalesce: coalesce,
		pool: pool, bufs: map[int][]float32{}, plans: map[planKey]*coalPlan{},
	}
	for ax := 0; ax < 3; ax++ {
		h.nbr[ax][0] = topo.Neighbor(c.Rank(), ax, -1)
		h.nbr[ax][1] = topo.Neighbor(c.Rank(), ax, +1)
	}
	return h
}

// tag builds a unique message tag from field slot, axis and direction of
// travel (the paper's unique-tagging scheme that permits out-of-order
// arrival without ambiguity).
func tag(slot int, ax grid.Axis, dirHigh bool) int {
	t := (slot*3+int(ax))*2 + 1
	if dirHigh {
		t++
	}
	return t
}

func (h *halo) buf(key, n int) []float32 {
	b := h.bufs[key]
	if cap(b) < n {
		b = make([]float32, n)
		h.bufs[key] = b
	}
	return b[:n]
}

// exchangeSync performs blocking per-axis send/recv pairs plus nothing
// else; the caller adds the global barrier the original code had.
func (h *halo) exchangeSync(fields []*grid.Field3, slots []int, axes func(int) []grid.Axis) {
	for fi, f := range fields {
		for _, ax := range axes(fi) {
			n := f.FaceLen(ax, grid.Ghost)
			for side := 0; side < 2; side++ {
				sd := grid.Side(side)
				peer := h.nbr[ax][side]
				if peer < 0 {
					continue
				}
				if h.copyMode {
					out := h.buf(tag(slots[fi], ax, side == 1)*2, n)
					sp := h.tel.Span(telemetry.Pack)
					f.PackFace(ax, sd, grid.Ghost, out)
					sp.End()
					sp = h.tel.Span(telemetry.Send)
					h.comm.Send(peer, tag(slots[fi], ax, side == 1), out)
					sp.End()
				} else {
					out := mpi.GetBuffer(n)
					sp := h.tel.Span(telemetry.Pack)
					f.PackFace(ax, sd, grid.Ghost, out)
					sp.End()
					sp = h.tel.Span(telemetry.Send)
					h.comm.SendOwned(peer, tag(slots[fi], ax, side == 1), out)
					sp.End()
				}
			}
			for side := 0; side < 2; side++ {
				sd := grid.Side(side)
				peer := h.nbr[ax][side]
				if peer < 0 {
					continue
				}
				// The message arriving from the low neighbor was sent as
				// its high-side message, and vice versa.
				if h.copyMode {
					in := h.buf(tag(slots[fi], ax, side == 1)*2+1, n)
					sp := h.tel.Span(telemetry.Recv)
					h.comm.MustRecv(in, peer, tag(slots[fi], ax, side == 0))
					sp.End()
					sp = h.tel.Span(telemetry.Unpack)
					f.UnpackFace(ax, sd, grid.Ghost, in)
					sp.End()
				} else {
					sp := h.tel.Span(telemetry.Recv)
					in, _ := h.comm.MustRecvTake(peer, tag(slots[fi], ax, side == 0))
					sp.End()
					sp = h.tel.Span(telemetry.Unpack)
					f.UnpackFace(ax, sd, grid.Ghost, in)
					sp.End()
					mpi.PutBuffer(in)
				}
			}
		}
	}
}

// postAsync posts all receives and sends with unique tags and returns a
// finish function that waits and unpacks — the split that enables the
// overlap model to compute the interior between post and finish.
func (h *halo) postAsync(fields []*grid.Field3, slots []int, axes func(int) []grid.Axis) func() {
	type pending struct {
		f   *grid.Field3
		ax  grid.Axis
		sd  grid.Side
		buf []float32
		req *mpi.Request
	}
	var pend []pending
	key := 0
	for fi, f := range fields {
		for _, ax := range axes(fi) {
			n := f.FaceLen(ax, grid.Ghost)
			for side := 0; side < 2; side++ {
				peer := h.nbr[ax][side]
				if peer < 0 {
					continue
				}
				if h.copyMode {
					in := h.buf(1000+key, n)
					key++
					req := h.comm.Irecv(in, peer, tag(slots[fi], ax, side == 0))
					pend = append(pend, pending{f, ax, grid.Side(side), in, req})
				} else {
					req := h.comm.IrecvTake(peer, tag(slots[fi], ax, side == 0))
					pend = append(pend, pending{f, ax, grid.Side(side), nil, req})
				}
			}
		}
	}
	for fi, f := range fields {
		for _, ax := range axes(fi) {
			n := f.FaceLen(ax, grid.Ghost)
			for side := 0; side < 2; side++ {
				peer := h.nbr[ax][side]
				if peer < 0 {
					continue
				}
				if h.copyMode {
					out := h.buf(2000+key, n)
					key++
					sp := h.tel.Span(telemetry.Pack)
					f.PackFace(ax, grid.Side(side), grid.Ghost, out)
					sp.End()
					sp = h.tel.Span(telemetry.Send)
					h.comm.Isend(peer, tag(slots[fi], ax, side == 1), out)
					sp.End()
				} else {
					out := mpi.GetBuffer(n)
					sp := h.tel.Span(telemetry.Pack)
					f.PackFace(ax, grid.Side(side), grid.Ghost, out)
					sp.End()
					sp = h.tel.Span(telemetry.Send)
					h.comm.IsendOwned(peer, tag(slots[fi], ax, side == 1), out)
					sp.End()
				}
			}
		}
	}
	return func() {
		for _, p := range pend {
			sp := h.tel.Span(telemetry.Recv)
			p.req.Wait()
			sp.End()
			sp = h.tel.Span(telemetry.Unpack)
			if h.copyMode {
				p.f.UnpackFace(p.ax, p.sd, grid.Ghost, p.buf)
			} else {
				in := p.req.Data()
				p.f.UnpackFace(p.ax, p.sd, grid.Ghost, in)
				mpi.PutBuffer(in)
			}
			sp.End()
		}
	}
}

// velocityAxes and stressAxes return the per-field exchange sets for the
// model.
func velocityAxes(CommModel) func(int) []grid.Axis {
	return func(int) []grid.Axis { return axesAll }
}

func stressAxes(model CommModel) func(int) []grid.Axis {
	if model == AsyncReduced || model == AsyncOverlap {
		return func(fi int) []grid.Axis { return stressAxesReduced[fi] }
	}
	return func(int) []grid.Axis { return axesAll }
}

// phase identifiers for the coalesced tag scheme and plan cache.
const (
	phaseVelocity = 0
	phaseStress   = 1
)

// post starts the exchange of one phase under the configured message
// layout and returns the finish function that waits and unpacks — the
// split the overlap model computes the interior inside.
func (h *halo) post(phase int, model CommModel, fields []*grid.Field3, slots []int) func() {
	axes := velocityAxes(model)
	if phase == phaseStress {
		axes = stressAxes(model)
	}
	if h.coalesce {
		return h.postCoalesced(phase, model, fields)
	}
	return h.postAsync(fields, slots, axes)
}

// exchangeVelocities exchanges the three velocity components per model.
func (h *halo) exchangeVelocities(s *fd.State, model CommModel) {
	fields := s.Velocities()
	slots := []int{0, 1, 2}
	if model == Synchronous && !h.coalesce {
		h.exchangeSync(fields, slots, velocityAxes(model))
		return
	}
	h.post(phaseVelocity, model, fields, slots)()
}

// exchangeStresses exchanges the six stress components per model.
func (h *halo) exchangeStresses(s *fd.State, model CommModel) {
	fields := s.Stresses()
	slots := []int{3, 4, 5, 6, 7, 8}
	if model == Synchronous && !h.coalesce {
		h.exchangeSync(fields, slots, stressAxes(model))
		return
	}
	h.post(phaseStress, model, fields, slots)()
}

// boundaryStrips splits a subgrid into the halo-adjacent strips (width w
// on each face that has a neighbor) and the remaining interior box, for
// the overlap schedule: compute strips, post their exchange, compute the
// interior while messages fly.
func boundaryStrips(d grid.Dims, mask [3][2]bool, w int) ([]fd.Box, fd.Box) {
	interior := fd.FullBox(d)
	var strips []fd.Box
	add := func(b fd.Box) {
		if !b.Empty() {
			strips = append(strips, b)
		}
	}
	if mask[0][0] {
		add(fd.Box{I0: 0, I1: w, J0: 0, J1: d.NY, K0: 0, K1: d.NZ})
		interior.I0 = w
	}
	if mask[0][1] {
		add(fd.Box{I0: d.NX - w, I1: d.NX, J0: 0, J1: d.NY, K0: 0, K1: d.NZ})
		interior.I1 = d.NX - w
	}
	if mask[1][0] {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: 0, J1: w, K0: 0, K1: d.NZ})
		interior.J0 = w
	}
	if mask[1][1] {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: d.NY - w, J1: d.NY, K0: 0, K1: d.NZ})
		interior.J1 = d.NY - w
	}
	if mask[2][0] {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: interior.J0, J1: interior.J1, K0: 0, K1: w})
		interior.K0 = w
	}
	if mask[2][1] {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: interior.J0, J1: interior.J1, K0: d.NZ - w, K1: d.NZ})
		interior.K1 = d.NZ - w
	}
	return strips, interior
}

// MessageStats describes one rank's per-step halo traffic: the float32
// volume (discipline-invariant) and the message counts per phase, which
// coalescing reduces — the quantity the extended performance model
// (perfmodel, Eq. 7/8 with the α·nmsgs term) prices.
type MessageStats struct {
	Floats     int // float32 values sent per step (both phases)
	VelMsgs    int // messages sent in the velocity phase
	StressMsgs int // messages sent in the stress phase
}

// Msgs returns the total messages sent per step.
func (s MessageStats) Msgs() int { return s.VelMsgs + s.StressMsgs }

// HaloStats returns the per-step halo traffic of a rank with the given
// subgrid under the model and message layout, counting only faces with
// neighbors. Coalescing changes message counts but never float volume.
func HaloStats(d grid.Dims, nbrMask [3][2]bool, model CommModel, coalesced bool) MessageStats {
	faceLen := func(ax grid.Axis) int {
		switch ax {
		case grid.X:
			return grid.Ghost * d.NY * d.NZ
		case grid.Y:
			return grid.Ghost * d.NX * d.NZ
		default:
			return grid.Ghost * d.NX * d.NY
		}
	}
	countAxes := func(axes []grid.Axis) (floats, msgs int) {
		for _, ax := range axes {
			for side := 0; side < 2; side++ {
				if nbrMask[int(ax)][side] {
					floats += faceLen(ax)
					msgs++
				}
			}
		}
		return
	}
	var st MessageStats
	vf, vm := countAxes(axesAll)
	st.Floats += 3 * vf // velocities: always all axes
	st.VelMsgs = 3 * vm
	for c := 0; c < 6; c++ {
		axes := axesAll
		if model == AsyncReduced || model == AsyncOverlap {
			axes = stressAxesReduced[c]
		}
		sf, sm := countAxes(axes)
		st.Floats += sf
		st.StressMsgs += sm
	}
	if coalesced {
		// One message per neighbor per phase; every neighbor receives at
		// least one velocity and one stress section in every model.
		neighbors := 0
		for ax := 0; ax < 3; ax++ {
			for side := 0; side < 2; side++ {
				if nbrMask[ax][side] {
					neighbors++
				}
			}
		}
		st.VelMsgs = neighbors
		st.StressMsgs = neighbors
	}
	return st
}

// MessageVolume returns the number of float32 values a rank with the given
// subgrid exchanges per step under the model (both wavefield phases),
// counting only faces with neighbors. Used by tests and the performance
// model to verify the 75%-reduction claim for normal stresses.
func MessageVolume(d grid.Dims, nbrMask [3][2]bool, model CommModel) int {
	return HaloStats(d, nbrMask, model, false).Floats
}
