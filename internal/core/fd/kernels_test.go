package fd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
)

func makeMedium(t testing.TB, q cvm.Querier, d grid.Dims, h float64) *medium.Medium {
	t.Helper()
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return medium.FromCVM(q, dc, dc.SubFor(0), h)
}

func heteroQuerier() cvm.Querier {
	return cvm.HardRock()
}

func randomState(d grid.Dims, seed int64) *State {
	s := NewState(d)
	rng := rand.New(rand.NewSource(seed))
	for _, f := range s.Fields() {
		data := f.Data()
		for i := range data {
			data[i] = rng.Float32()*2 - 1
		}
	}
	return s
}

// All kernel variants must produce the same update to within float32
// round-off (§IV.B: the optimizations are arithmetic restructurings).
func TestVariantsAgree(t *testing.T) {
	d := grid.Dims{NX: 12, NY: 10, NZ: 14}
	m := makeMedium(t, heteroQuerier(), d, 200)
	dt := m.StableDt(0.5)
	box := FullBox(d)
	ref := randomState(d, 42)
	UpdateVelocity(ref, m, dt, box, Precomp, Blocking{})
	UpdateStress(ref, m, dt, box, Precomp, Blocking{})

	for _, v := range []Variant{Naive, Recip, Blocked, Unrolled, Fused} {
		s := randomState(d, 42)
		UpdateVelocity(s, m, dt, box, v, DefaultBlocking)
		UpdateStress(s, m, dt, box, v, DefaultBlocking)
		diff := s.L2Diff(ref)
		norm := math.Sqrt(ref.VX.SumSq() + 1)
		if diff/norm > 2e-6 {
			t.Errorf("variant %v differs from precomp: rel %g", v, diff/norm)
		}
	}
}

func TestBlockedCoversBoxExactly(t *testing.T) {
	// Tile accounting: blocks must partition the box regardless of
	// divisibility.
	box := Box{0, 7, 0, 13, 0, 19}
	total := 0
	forEachBlock(box, Blocking{JBlock: 4, KBlock: 5}, func(b Box) {
		total += b.Cells()
	})
	if total != box.Cells() {
		t.Fatalf("blocks cover %d cells, want %d", total, box.Cells())
	}
}

func TestEmptyBoxIsNoop(t *testing.T) {
	d := grid.Dims{NX: 8, NY: 8, NZ: 8}
	m := makeMedium(t, heteroQuerier(), d, 200)
	s := randomState(d, 1)
	before := s.Clone()
	UpdateVelocity(s, m, 0.001, Box{3, 3, 0, 8, 0, 8}, Precomp, Blocking{})
	UpdateStress(s, m, 0.001, Box{0, 8, 5, 2, 0, 8}, Precomp, Blocking{})
	if s.L2Diff(before) != 0 {
		t.Fatal("empty box modified state")
	}
}

func TestRegionUpdateOnlyTouchesRegion(t *testing.T) {
	d := grid.Dims{NX: 12, NY: 12, NZ: 12}
	m := makeMedium(t, heteroQuerier(), d, 200)
	s := randomState(d, 7)
	before := s.Clone()
	inner := Box{4, 8, 4, 8, 4, 8}
	UpdateVelocity(s, m, 1.0, inner, Precomp, Blocking{})
	// Cells outside the box must be untouched.
	for _, probe := range [][3]int{{0, 0, 0}, {3, 4, 4}, {8, 4, 4}, {11, 11, 11}} {
		i, j, k := probe[0], probe[1], probe[2]
		if s.VX.At(i, j, k) != before.VX.At(i, j, k) {
			t.Fatalf("vx modified outside region at %v", probe)
		}
	}
	// And at least one inside cell must change.
	if s.VX.At(5, 5, 5) == before.VX.At(5, 5, 5) {
		t.Fatal("vx not updated inside region")
	}
}

// TestSpatialOrder verifies the 4th-order accuracy of the stress update's
// spatial derivative: starting from zero stress and an analytic velocity
// field, one step gives sxx = dt*(lam+2mu)*dvx/dx + dt*lam*(dvy/dy+dvz/dz);
// with vx = sin(w*x), the error against the analytic derivative must fall
// ~16x when h halves.
func TestSpatialOrder(t *testing.T) {
	mat := cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}
	q := cvm.Homogeneous(mat)
	L := 1000.0 // wavelength, m
	w := 2 * math.Pi / L
	dt := 1e-6 // tiny: isolates the spatial operator

	errAt := func(nx int) float64 {
		h := L / float64(nx)
		d := grid.Dims{NX: nx, NY: 6, NZ: 6}
		m := makeMedium(t, q, d, h)
		s := NewState(d)
		// vx lives at (i+1/2): fill the whole padded array analytically.
		g := grid.Ghost
		for k := -g; k < d.NZ+g; k++ {
			for j := -g; j < d.NY+g; j++ {
				for i := -g; i < d.NX+g; i++ {
					x := (float64(i) + 0.5) * h
					s.VX.Set(i, j, k, float32(math.Sin(w*x)))
				}
			}
		}
		UpdateStress(s, m, dt, FullBox(d), Precomp, Blocking{})
		l2m := mat.Rho * mat.Vp * mat.Vp
		var maxErr float64
		for i := 2; i < nx-2; i++ {
			x := float64(i) * h
			want := dt * l2m * w * math.Cos(w*x)
			got := float64(s.XX.At(i, 3, 3))
			if e := math.Abs(got - want); e > maxErr {
				maxErr = e
			}
		}
		return maxErr
	}

	e1 := errAt(16)
	e2 := errAt(32)
	ratio := e1 / e2
	if ratio < 12 {
		t.Fatalf("spatial convergence ratio %g, want ~16 (4th order); e1=%g e2=%g", ratio, e1, e2)
	}
}

// exchangePeriodic refreshes all ghost cells of every component with
// periodic wrap-around, giving the clean von Neumann setting the interior
// scheme is analyzed in (production boundaries are handled by the boundary
// package and halo exchange).
func exchangePeriodic(s *State) {
	for _, f := range s.Fields() {
		for _, ax := range []grid.Axis{grid.X, grid.Y, grid.Z} {
			buf := make([]float32, f.FaceLen(ax, grid.Ghost))
			f.PackFace(ax, grid.High, grid.Ghost, buf)
			f.UnpackFace(ax, grid.Low, grid.Ghost, buf)
			f.PackFace(ax, grid.Low, grid.Ghost, buf)
			f.UnpackFace(ax, grid.High, grid.Ghost, buf)
		}
	}
}

// TestPlaneWavePropagation checks the full leapfrog scheme against the
// analytic d'Alembert solution for an S plane wave: vy = f(x - vs*t),
// sxy = -rho*vs*f, staggered by h/2 in space and dt/2 in time. Ghosts are
// refreshed periodically so the comparison is free of boundary effects.
func TestPlaneWavePropagation(t *testing.T) {
	mat := cvm.Material{Vp: 6000, Vs: 3000, Rho: 2500}
	q := cvm.Homogeneous(mat)
	nx := 120
	h := 50.0
	d := grid.Dims{NX: nx, NY: 6, NZ: 6}
	m := makeMedium(t, q, d, h)
	dt := m.StableDt(0.4)
	vs := mat.Vs
	sigma := 300.0 // gaussian width, m
	x0 := float64(nx) * h / 2
	f := func(x float64) float64 {
		dx := x - x0
		return math.Exp(-dx * dx / (2 * sigma * sigma))
	}

	s := NewState(d)
	g := grid.Ghost
	for k := -g; k < d.NZ+g; k++ {
		for j := -g; j < d.NY+g; j++ {
			for i := -g; i < d.NX+g; i++ {
				xv := float64(i) * h // vy at (i, j+1/2, k): x-position i*h
				s.VY.Set(i, j, k, float32(f(xv)))
				// sxy at (i+1/2, j+1/2, k), advanced to t = +dt/2.
				xs := (float64(i) + 0.5) * h
				s.XY.Set(i, j, k, float32(-mat.Rho*vs*f(xs-vs*dt/2)))
			}
		}
	}

	nsteps := 40
	box := FullBox(d)
	for n := 0; n < nsteps; n++ {
		exchangePeriodic(s)
		UpdateVelocity(s, m, dt, box, Precomp, Blocking{})
		exchangePeriodic(s)
		UpdateStress(s, m, dt, box, Precomp, Blocking{})
	}
	tFinal := float64(nsteps) * dt

	// Periodicized analytic solution (wrap tails are negligible but the
	// wave may cross the domain edge for larger nsteps).
	L := float64(nx) * h
	fp := func(x float64) float64 { return f(x) + f(x-L) + f(x+L) }
	var maxErr, maxAmp float64
	for i := 0; i < nx; i++ {
		x := float64(i) * h
		want := fp(x - vs*tFinal)
		got := float64(s.VY.At(i, 3, 3))
		if a := math.Abs(want); a > maxAmp {
			maxAmp = a
		}
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	if maxAmp < 0.5 {
		t.Fatalf("test misconfigured: wave left the comparison window (maxAmp=%g)", maxAmp)
	}
	if maxErr/maxAmp > 0.02 {
		t.Fatalf("plane wave error %g (rel %g), want < 2%%", maxErr, maxErr/maxAmp)
	}
}

// TestStability runs a few hundred steps at a CFL within the limit and
// checks the field stays bounded (no exponential blow-up), then confirms
// the limit is real by checking growth above it.
func TestStability(t *testing.T) {
	d := grid.Dims{NX: 16, NY: 16, NZ: 16}
	mat := cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}
	m := makeMedium(t, cvm.Homogeneous(mat), d, 100)

	run := func(dt float64, steps int) float64 {
		s := NewState(d)
		// Smooth localized initial velocity pulse.
		for k := 4; k < 12; k++ {
			for j := 4; j < 12; j++ {
				for i := 4; i < 12; i++ {
					r2 := float64((i-8)*(i-8) + (j-8)*(j-8) + (k-8)*(k-8))
					s.VX.Set(i, j, k, float32(math.Exp(-r2/8)))
				}
			}
		}
		box := FullBox(d)
		for n := 0; n < steps; n++ {
			exchangePeriodic(s)
			UpdateVelocity(s, m, dt, box, Precomp, Blocking{})
			exchangePeriodic(s)
			UpdateStress(s, m, dt, box, Precomp, Blocking{})
		}
		// Judge stability on the velocity energy: initial |v| <= 1, so a
		// stable run stays O(1) while an unstable one grows exponentially
		// (SumSq propagates NaN/Inf, unlike a max of failed comparisons).
		return s.VX.SumSq() + s.VY.SumSq() + s.VZ.SumSq()
	}

	cells := float64(d.Cells())
	stable := run(m.StableDt(0.9), 300)
	if math.IsNaN(stable) || stable > 100*cells {
		t.Fatalf("stable run blew up: velocity energy=%g", stable)
	}
	unstable := run(m.StableDt(1.6), 300)
	if !(math.IsNaN(unstable) || math.IsInf(unstable, 0) || unstable > 1e10*cells) {
		t.Fatalf("super-CFL run did not blow up: velocity energy=%g (CFL bound suspect)", unstable)
	}
}

func TestBoxHelpers(t *testing.T) {
	b := Box{0, 4, 0, 5, 0, 6}
	if b.Cells() != 120 {
		t.Errorf("Cells = %d", b.Cells())
	}
	if b.Empty() {
		t.Error("non-empty box reported empty")
	}
	e := Box{2, 2, 0, 5, 0, 6}
	if !e.Empty() || e.Cells() != 0 {
		t.Error("empty box misreported")
	}
	s := b.Shrink(1, true, true, false, false, true, false)
	if s.I0 != 1 || s.I1 != 3 || s.J0 != 0 || s.K0 != 1 || s.K1 != 6 {
		t.Errorf("Shrink = %+v", s)
	}
	if FullBox(grid.Dims{NX: 2, NY: 3, NZ: 4}).Cells() != 24 {
		t.Error("FullBox wrong")
	}
	if b.String() == "" {
		t.Error("String empty")
	}
}

func TestVariantStrings(t *testing.T) {
	names := map[Variant]string{Naive: "naive", Recip: "recip", Precomp: "precomp", Blocked: "blocked", Unrolled: "unrolled", Fused: "fused"}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("String(%d) = %q", int(v), v.String())
		}
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant string empty")
	}
}

// The Fused restructuring (subslice windows instead of n±stride indexing)
// must be bitwise identical to Precomp — Unrolled/Blocked only reorder the
// iteration, but Fused rewrites every operand expression, so exact equality
// is the meaningful check (and what the solver's fused attenuation path
// relies on).
func TestFusedExactVsPrecomp(t *testing.T) {
	d := grid.Dims{NX: 13, NY: 11, NZ: 9}
	m := makeMedium(t, heteroQuerier(), d, 200)
	dt := m.StableDt(0.5)
	boxes := []Box{
		FullBox(d),
		{I0: 1, I1: 12, J0: 2, J1: 9, K0: 3, K1: 8},
		{I0: 5, I1: 6, J0: 0, J1: 11, K0: 0, K1: 9}, // single i-column
	}
	for _, box := range boxes {
		ref := randomState(d, 17)
		UpdateVelocity(ref, m, dt, box, Precomp, Blocking{})
		UpdateStress(ref, m, dt, box, Precomp, Blocking{})
		s := randomState(d, 17)
		UpdateVelocity(s, m, dt, box, Fused, Blocking{})
		UpdateStress(s, m, dt, box, Fused, Blocking{})
		for fi, f := range s.Fields() {
			a, b := f.Data(), ref.Fields()[fi].Data()
			for n := range a {
				if a[n] != b[n] {
					t.Fatalf("box %v field %s idx %d: fused %g != precomp %g",
						box, FieldNames[fi], n, a[n], b[n])
				}
			}
		}
	}
}

// forEachBlock edge cases: extents not multiples of the block factors,
// single-plane boxes, and the Blocking{0,0} fallback to DefaultBlocking
// must all partition the box (each cell visited exactly once) and hence
// stay bit-identical to the unblocked kernel.
func TestForEachBlockEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		box  Box
		blk  Blocking
	}{
		{"non-multiple", Box{0, 9, 0, 13, 0, 19}, Blocking{JBlock: 4, KBlock: 5}},
		{"single-j-plane", Box{0, 9, 6, 7, 0, 19}, Blocking{JBlock: 8, KBlock: 16}},
		{"single-k-plane", Box{0, 9, 0, 13, 4, 5}, Blocking{JBlock: 8, KBlock: 16}},
		{"single-point", Box{3, 4, 5, 6, 7, 8}, Blocking{JBlock: 8, KBlock: 16}},
		{"zero-fallback", Box{0, 9, 0, 13, 0, 19}, Blocking{}},
		{"block-larger-than-box", Box{0, 5, 0, 3, 0, 2}, Blocking{JBlock: 64, KBlock: 64}},
	}
	for _, tc := range cases {
		visits := map[[2]int]int{}
		forEachBlock(tc.box, tc.blk, func(b Box) {
			if b.Empty() {
				t.Errorf("%s: emitted empty tile %v", tc.name, b)
			}
			if b.I0 != tc.box.I0 || b.I1 != tc.box.I1 {
				t.Errorf("%s: tile %v does not span full x extent", tc.name, b)
			}
			for k := b.K0; k < b.K1; k++ {
				for j := b.J0; j < b.J1; j++ {
					visits[[2]int{j, k}]++
				}
			}
		})
		for k := tc.box.K0; k < tc.box.K1; k++ {
			for j := tc.box.J0; j < tc.box.J1; j++ {
				if visits[[2]int{j, k}] != 1 {
					t.Fatalf("%s: (j=%d,k=%d) visited %d times", tc.name, j, k, visits[[2]int{j, k}])
				}
			}
		}
	}
	// Blocking{0,0} must produce exactly DefaultBlocking's tiling.
	var got, want [][6]int
	box := Box{0, 9, 0, 13, 0, 19}
	forEachBlock(box, Blocking{}, func(b Box) {
		got = append(got, [6]int{b.I0, b.I1, b.J0, b.J1, b.K0, b.K1})
	})
	forEachBlock(box, DefaultBlocking, func(b Box) {
		want = append(want, [6]int{b.I0, b.I1, b.J0, b.J1, b.K0, b.K1})
	})
	if len(got) != len(want) {
		t.Fatalf("Blocking{} emitted %d tiles, DefaultBlocking %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("tile %d: Blocking{} %v != DefaultBlocking %v", i, got[i], want[i])
		}
	}
	// And the blocked kernel must be bit-identical to the unblocked one for
	// every edge-case blocking above.
	d := grid.Dims{NX: 9, NY: 13, NZ: 19}
	m := makeMedium(t, heteroQuerier(), d, 200)
	dt := m.StableDt(0.5)
	ref := randomState(d, 23)
	UpdateVelocity(ref, m, dt, FullBox(d), Precomp, Blocking{})
	UpdateStress(ref, m, dt, FullBox(d), Precomp, Blocking{})
	for _, blk := range []Blocking{{JBlock: 4, KBlock: 5}, {}, {JBlock: 64, KBlock: 64}, {JBlock: 1, KBlock: 1}} {
		s := randomState(d, 23)
		UpdateVelocity(s, m, dt, FullBox(d), Blocked, blk)
		UpdateStress(s, m, dt, FullBox(d), Blocked, blk)
		for fi, f := range s.Fields() {
			a, b := f.Data(), ref.Fields()[fi].Data()
			for n := range a {
				if a[n] != b[n] {
					t.Fatalf("blk %+v field %s idx %d: %g != %g", blk, FieldNames[fi], n, a[n], b[n])
				}
			}
		}
	}
}

func TestParseVariant(t *testing.T) {
	for v := Naive; v <= Fused; v++ {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariant("auto"); err == nil {
		t.Error("ParseVariant(auto) should fail — auto is resolved by the tuner, not fd")
	}
	if _, err := ParseVariant(""); err == nil {
		t.Error("ParseVariant(\"\") should fail")
	}
}

func TestVariantValidate(t *testing.T) {
	for v := Naive; v <= Fused; v++ {
		if err := v.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", v, err)
		}
	}
	if Variant(-1).Validate() == nil || Variant(99).Validate() == nil {
		t.Error("out-of-range variants must not validate")
	}
}

func TestStateCloneAndFields(t *testing.T) {
	s := NewState(grid.Dims{NX: 4, NY: 4, NZ: 4})
	if len(s.Fields()) != 9 || len(FieldNames) != 9 {
		t.Fatal("field count wrong")
	}
	if len(s.Velocities()) != 3 || len(s.Stresses()) != 6 {
		t.Fatal("component split wrong")
	}
	s.XX.Set(1, 1, 1, 5)
	c := s.Clone()
	c.XX.Set(1, 1, 1, 7)
	if s.XX.At(1, 1, 1) != 5 {
		t.Fatal("clone aliases original")
	}
}
