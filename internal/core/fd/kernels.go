package fd

import (
	"fmt"

	"repro/internal/medium"
)

// Variant selects a kernel implementation. All variants compute identical
// results; they differ only in how material coefficients are obtained and
// how the loops are scheduled, mirroring the §IV.B optimization steps.
type Variant int

const (
	// Naive computes staggered material averages inline with one division
	// per operand (the pre-2009 code).
	Naive Variant = iota
	// Recip uses stored reciprocal Lamé arrays, leaving one division per
	// harmonic mean (the "reduced division operations" step, +31%).
	Recip
	// Precomp uses fully precomputed staggered coefficient arrays — the
	// production kernel.
	Precomp
	// Blocked is Precomp with jblock/kblock cache blocking (+7%).
	Blocked
	// Unrolled is Precomp with the inner x loop manually unrolled by 2 (+2%).
	Unrolled
	// Fused is Precomp restructured for bounds-check elimination (explicit
	// per-row subslice windows instead of whole-array indexing) and, when
	// the solver runs with attenuation, fused with the coarse-grained
	// memory-variable update in the same i-loop — one read/modify/write of
	// the six stress components per step instead of two. Results are
	// bit-identical to Precomp (+ the two-pass attenuation path).
	Fused
)

func (v Variant) String() string {
	switch v {
	case Naive:
		return "naive"
	case Recip:
		return "recip"
	case Precomp:
		return "precomp"
	case Blocked:
		return "blocked"
	case Unrolled:
		return "unrolled"
	case Fused:
		return "fused"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Validate reports whether v names a known kernel variant; the solver
// rejects unknown values at configuration time instead of panicking deep
// inside the first UpdateVelocity call.
func (v Variant) Validate() error {
	if v < Naive || v > Fused {
		return fmt.Errorf("fd: unknown kernel variant %d (want %v..%v)", int(v), Naive, Fused)
	}
	return nil
}

// ParseVariant resolves a variant name as used by awp-run -variant.
func ParseVariant(name string) (Variant, error) {
	for v := Naive; v <= Fused; v++ {
		if v.String() == name {
			return v, nil
		}
	}
	return Naive, fmt.Errorf("fd: unknown kernel variant %q (want naive|recip|precomp|blocked|unrolled|fused)", name)
}

// Blocking carries the cache-blocking factors; the paper's empirically
// best values for a loop length ~125 were kblock=16, jblock=8.
type Blocking struct {
	JBlock, KBlock int
}

// DefaultBlocking is the paper's tuned 16/8 configuration.
var DefaultBlocking = Blocking{JBlock: 8, KBlock: 16}

// UpdateVelocity advances the three velocity components over box by one
// time step of length dt using the selected variant.
func UpdateVelocity(s *State, m *medium.Medium, dt float64, box Box, v Variant, blk Blocking) {
	if box.Empty() {
		return
	}
	switch v {
	case Naive, Recip:
		velocityDivide(s, m, dt, box, v == Naive)
	case Precomp:
		velocityPrecomp(s, m, dt, box)
	case Blocked:
		forEachBlock(box, blk, func(b Box) { velocityPrecomp(s, m, dt, b) })
	case Unrolled:
		velocityUnrolled(s, m, dt, box)
	case Fused:
		velocityFused(s, m, dt, box)
	default:
		panic("fd: unknown variant")
	}
}

// UpdateStress advances the six stress components over box by one time
// step of length dt using the selected variant.
func UpdateStress(s *State, m *medium.Medium, dt float64, box Box, v Variant, blk Blocking) {
	if box.Empty() {
		return
	}
	switch v {
	case Naive, Recip:
		stressDivide(s, m, dt, box, v == Naive)
	case Precomp:
		stressPrecomp(s, m, dt, box)
	case Blocked:
		forEachBlock(box, blk, func(b Box) { stressPrecomp(s, m, dt, b) })
	case Unrolled:
		stressUnrolled(s, m, dt, box)
	case Fused:
		stressFused(s, m, dt, box)
	default:
		panic("fd: unknown variant")
	}
}

// forEachBlock tiles box into jblock x kblock panels (full x extent, as in
// the paper's Fortran blocking) and applies fn to each tile.
func forEachBlock(box Box, blk Blocking, fn func(Box)) {
	jb, kb := blk.JBlock, blk.KBlock
	if jb <= 0 {
		jb = DefaultBlocking.JBlock
	}
	if kb <= 0 {
		kb = DefaultBlocking.KBlock
	}
	for kk := box.K0; kk < box.K1; kk += kb {
		k1 := kk + kb
		if k1 > box.K1 {
			k1 = box.K1
		}
		for jj := box.J0; jj < box.J1; jj += jb {
			j1 := jj + jb
			if j1 > box.J1 {
				j1 = box.J1
			}
			fn(Box{box.I0, box.I1, jj, j1, kk, k1})
		}
	}
}

// velocityPrecomp is the production velocity kernel: all material
// coefficients are precomputed staggered arrays, no divisions.
func velocityPrecomp(s *State, m *medium.Medium, dt float64, b Box) {
	dth := float32(dt / m.H)
	c1, c2 := float32(C1), float32(C2)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	bx, by, bz := m.BX.Data(), m.BY.Data(), m.BZ.Data()
	dx, dy, dz := s.VX.Strides()

	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			n0 := s.VX.Idx(b.I0, j, k)
			for n, end := n0, n0+(b.I1-b.I0); n < end; n++ {
				u[n] += dth * bx[n] * (c1*(xx[n+dx]-xx[n]) + c2*(xx[n+2*dx]-xx[n-dx]) +
					c1*(xy[n]-xy[n-dy]) + c2*(xy[n+dy]-xy[n-2*dy]) +
					c1*(xz[n]-xz[n-dz]) + c2*(xz[n+dz]-xz[n-2*dz]))
				v[n] += dth * by[n] * (c1*(xy[n]-xy[n-dx]) + c2*(xy[n+dx]-xy[n-2*dx]) +
					c1*(yy[n+dy]-yy[n]) + c2*(yy[n+2*dy]-yy[n-dy]) +
					c1*(yz[n]-yz[n-dz]) + c2*(yz[n+dz]-yz[n-2*dz]))
				w[n] += dth * bz[n] * (c1*(xz[n]-xz[n-dx]) + c2*(xz[n+dx]-xz[n-2*dx]) +
					c1*(yz[n]-yz[n-dy]) + c2*(yz[n+dy]-yz[n-2*dy]) +
					c1*(zz[n+dz]-zz[n]) + c2*(zz[n+2*dz]-zz[n-dz]))
			}
		}
	}
}

// stressPrecomp is the production stress kernel.
func stressPrecomp(s *State, m *medium.Medium, dt float64, b Box) {
	dth := float32(dt / m.H)
	c1, c2 := float32(C1), float32(C2)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	lam, l2m := m.Lam.Data(), m.Lam2Mu.Data()
	mxy, mxz, myz := m.MuXY.Data(), m.MuXZ.Data(), m.MuYZ.Data()
	dx, dy, dz := s.VX.Strides()

	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			n0 := s.VX.Idx(b.I0, j, k)
			for n, end := n0, n0+(b.I1-b.I0); n < end; n++ {
				exx := c1*(u[n]-u[n-dx]) + c2*(u[n+dx]-u[n-2*dx])
				eyy := c1*(v[n]-v[n-dy]) + c2*(v[n+dy]-v[n-2*dy])
				ezz := c1*(w[n]-w[n-dz]) + c2*(w[n+dz]-w[n-2*dz])
				xx[n] += dth * (l2m[n]*exx + lam[n]*(eyy+ezz))
				yy[n] += dth * (l2m[n]*eyy + lam[n]*(exx+ezz))
				zz[n] += dth * (l2m[n]*ezz + lam[n]*(exx+eyy))
				xy[n] += dth * mxy[n] * (c1*(u[n+dy]-u[n]) + c2*(u[n+2*dy]-u[n-dy]) +
					c1*(v[n+dx]-v[n]) + c2*(v[n+2*dx]-v[n-dx]))
				xz[n] += dth * mxz[n] * (c1*(u[n+dz]-u[n]) + c2*(u[n+2*dz]-u[n-dz]) +
					c1*(w[n+dx]-w[n]) + c2*(w[n+2*dx]-w[n-dx]))
				yz[n] += dth * myz[n] * (c1*(v[n+dz]-v[n]) + c2*(v[n+2*dz]-v[n-dz]) +
					c1*(w[n+dy]-w[n]) + c2*(w[n+2*dy]-w[n-dy]))
			}
		}
	}
}

// velocityDivide implements the Naive/Recip variants: the per-point
// reciprocal densities are formed in the loop. In the naive form each
// operand costs a division; in the recip form the stored reciprocal
// density arrays are read but re-averaged in the loop (one division).
func velocityDivide(s *State, m *medium.Medium, dt float64, b Box, naive bool) {
	dth := float32(dt / m.H)
	c1, c2 := float32(C1), float32(C2)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	rho := m.Rho.Data()
	dx, dy, dz := s.VX.Strides()

	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			n0 := s.VX.Idx(b.I0, j, k)
			for n, end := n0, n0+(b.I1-b.I0); n < end; n++ {
				var bxv, byv, bzv float32
				if naive {
					// One division per operand pair, as the original code.
					bxv = 1 / ((rho[n] + rho[n+dx]) / 2)
					byv = 1 / ((rho[n] + rho[n+dy]) / 2)
					bzv = 1 / ((rho[n] + rho[n+dz]) / 2)
				} else {
					bxv = 2 / (rho[n] + rho[n+dx])
					byv = 2 / (rho[n] + rho[n+dy])
					bzv = 2 / (rho[n] + rho[n+dz])
				}
				u[n] += dth * bxv * (c1*(xx[n+dx]-xx[n]) + c2*(xx[n+2*dx]-xx[n-dx]) +
					c1*(xy[n]-xy[n-dy]) + c2*(xy[n+dy]-xy[n-2*dy]) +
					c1*(xz[n]-xz[n-dz]) + c2*(xz[n+dz]-xz[n-2*dz]))
				v[n] += dth * byv * (c1*(xy[n]-xy[n-dx]) + c2*(xy[n+dx]-xy[n-2*dx]) +
					c1*(yy[n+dy]-yy[n]) + c2*(yy[n+2*dy]-yy[n-dy]) +
					c1*(yz[n]-yz[n-dz]) + c2*(yz[n+dz]-yz[n-2*dz]))
				w[n] += dth * bzv * (c1*(xz[n]-xz[n-dx]) + c2*(xz[n+dx]-xz[n-2*dx]) +
					c1*(yz[n]-yz[n-dy]) + c2*(yz[n+dy]-yz[n-2*dy]) +
					c1*(zz[n+dz]-zz[n]) + c2*(zz[n+2*dz]-zz[n-dz]))
			}
		}
	}
}

// stressDivide implements the Naive/Recip variants of the stress kernel:
// harmonic means of mu are formed in the loop, with four divisions per
// shear point in the naive form and one in the recip form (the stored
// reciprocal arrays make the harmonic mean a sum, cf. §IV.B).
func stressDivide(s *State, m *medium.Medium, dt float64, b Box, naive bool) {
	dth := float32(dt / m.H)
	c1, c2 := float32(C1), float32(C2)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	lam, mu, mui := m.Lam.Data(), m.Mu.Data(), m.MuI.Data()
	dx, dy, dz := s.VX.Strides()

	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			n0 := s.VX.Idx(b.I0, j, k)
			for n, end := n0, n0+(b.I1-b.I0); n < end; n++ {
				exx := c1*(u[n]-u[n-dx]) + c2*(u[n+dx]-u[n-2*dx])
				eyy := c1*(v[n]-v[n-dy]) + c2*(v[n+dy]-v[n-2*dy])
				ezz := c1*(w[n]-w[n-dz]) + c2*(w[n+dz]-w[n-2*dz])
				l2m := lam[n] + 2*mu[n]
				xx[n] += dth * (l2m*exx + lam[n]*(eyy+ezz))
				yy[n] += dth * (l2m*eyy + lam[n]*(exx+ezz))
				zz[n] += dth * (l2m*ezz + lam[n]*(exx+eyy))
				var hxy, hxz, hyz float32
				if naive {
					hxy = hmeanNaive(mu, n, dx, dy)
					hxz = hmeanNaive(mu, n, dx, dz)
					hyz = hmeanNaive(mu, n, dy, dz)
				} else {
					hxy = hmeanRecip(mui, n, dx, dy)
					hxz = hmeanRecip(mui, n, dx, dz)
					hyz = hmeanRecip(mui, n, dy, dz)
				}
				xy[n] += dth * hxy * (c1*(u[n+dy]-u[n]) + c2*(u[n+2*dy]-u[n-dy]) +
					c1*(v[n+dx]-v[n]) + c2*(v[n+2*dx]-v[n-dx]))
				xz[n] += dth * hxz * (c1*(u[n+dz]-u[n]) + c2*(u[n+2*dz]-u[n-dz]) +
					c1*(w[n+dx]-w[n]) + c2*(w[n+2*dx]-w[n-dx]))
				yz[n] += dth * hyz * (c1*(v[n+dz]-v[n]) + c2*(v[n+2*dz]-v[n-dz]) +
					c1*(w[n+dy]-w[n]) + c2*(w[n+2*dy]-w[n-dy]))
			}
		}
	}
}

// hmeanNaive forms the 4-point harmonic mean of mu with one division per
// operand, as the original code did. Top-level (not a closure) so the call
// in the inner loop inlines.
func hmeanNaive(mu []float32, n, da, db int) float32 {
	return 4 / (1/mu[n] + 1/mu[n+da] + 1/mu[n+db] + 1/mu[n+da+db])
}

// hmeanRecip forms the harmonic mean from stored reciprocals — a sum and
// one division (§IV.B "reduced division operations").
func hmeanRecip(mui []float32, n, da, db int) float32 {
	return 4 / (mui[n] + mui[n+da] + mui[n+db] + mui[n+da+db])
}

// velocityUnrolled is velocityPrecomp with the inner loop unrolled by 2
// (the paper found x2 optimal for the velocity-class subroutines). The
// unroll bodies are written out inline — a closure call per point would
// defeat inlining and dominate the loop.
func velocityUnrolled(s *State, m *medium.Medium, dt float64, b Box) {
	dth := float32(dt / m.H)
	c1, c2 := float32(C1), float32(C2)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	bx, by, bz := m.BX.Data(), m.BY.Data(), m.BZ.Data()
	dx, dy, dz := s.VX.Strides()

	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			n0 := s.VX.Idx(b.I0, j, k)
			end := n0 + (b.I1 - b.I0)
			n := n0
			for ; n+1 < end; n += 2 {
				u[n] += dth * bx[n] * (c1*(xx[n+dx]-xx[n]) + c2*(xx[n+2*dx]-xx[n-dx]) +
					c1*(xy[n]-xy[n-dy]) + c2*(xy[n+dy]-xy[n-2*dy]) +
					c1*(xz[n]-xz[n-dz]) + c2*(xz[n+dz]-xz[n-2*dz]))
				v[n] += dth * by[n] * (c1*(xy[n]-xy[n-dx]) + c2*(xy[n+dx]-xy[n-2*dx]) +
					c1*(yy[n+dy]-yy[n]) + c2*(yy[n+2*dy]-yy[n-dy]) +
					c1*(yz[n]-yz[n-dz]) + c2*(yz[n+dz]-yz[n-2*dz]))
				w[n] += dth * bz[n] * (c1*(xz[n]-xz[n-dx]) + c2*(xz[n+dx]-xz[n-2*dx]) +
					c1*(yz[n]-yz[n-dy]) + c2*(yz[n+dy]-yz[n-2*dy]) +
					c1*(zz[n+dz]-zz[n]) + c2*(zz[n+2*dz]-zz[n-dz]))
				m := n + 1
				u[m] += dth * bx[m] * (c1*(xx[m+dx]-xx[m]) + c2*(xx[m+2*dx]-xx[m-dx]) +
					c1*(xy[m]-xy[m-dy]) + c2*(xy[m+dy]-xy[m-2*dy]) +
					c1*(xz[m]-xz[m-dz]) + c2*(xz[m+dz]-xz[m-2*dz]))
				v[m] += dth * by[m] * (c1*(xy[m]-xy[m-dx]) + c2*(xy[m+dx]-xy[m-2*dx]) +
					c1*(yy[m+dy]-yy[m]) + c2*(yy[m+2*dy]-yy[m-dy]) +
					c1*(yz[m]-yz[m-dz]) + c2*(yz[m+dz]-yz[m-2*dz]))
				w[m] += dth * bz[m] * (c1*(xz[m]-xz[m-dx]) + c2*(xz[m+dx]-xz[m-2*dx]) +
					c1*(yz[m]-yz[m-dy]) + c2*(yz[m+dy]-yz[m-2*dy]) +
					c1*(zz[m+dz]-zz[m]) + c2*(zz[m+2*dz]-zz[m-dz]))
			}
			for ; n < end; n++ {
				u[n] += dth * bx[n] * (c1*(xx[n+dx]-xx[n]) + c2*(xx[n+2*dx]-xx[n-dx]) +
					c1*(xy[n]-xy[n-dy]) + c2*(xy[n+dy]-xy[n-2*dy]) +
					c1*(xz[n]-xz[n-dz]) + c2*(xz[n+dz]-xz[n-2*dz]))
				v[n] += dth * by[n] * (c1*(xy[n]-xy[n-dx]) + c2*(xy[n+dx]-xy[n-2*dx]) +
					c1*(yy[n+dy]-yy[n]) + c2*(yy[n+2*dy]-yy[n-dy]) +
					c1*(yz[n]-yz[n-dz]) + c2*(yz[n+dz]-yz[n-2*dz]))
				w[n] += dth * bz[n] * (c1*(xz[n]-xz[n-dx]) + c2*(xz[n+dx]-xz[n-2*dx]) +
					c1*(yz[n]-yz[n-dy]) + c2*(yz[n+dy]-yz[n-2*dy]) +
					c1*(zz[n+dz]-zz[n]) + c2*(zz[n+2*dz]-zz[n-dz]))
			}
		}
	}
}

// stressUnrolled is stressPrecomp with the inner loop unrolled by 2. As in
// velocityUnrolled the bodies are written out inline rather than through a
// per-point closure.
func stressUnrolled(s *State, m *medium.Medium, dt float64, b Box) {
	dth := float32(dt / m.H)
	c1, c2 := float32(C1), float32(C2)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	lam, l2m := m.Lam.Data(), m.Lam2Mu.Data()
	mxy, mxz, myz := m.MuXY.Data(), m.MuXZ.Data(), m.MuYZ.Data()
	dx, dy, dz := s.VX.Strides()

	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			n0 := s.VX.Idx(b.I0, j, k)
			end := n0 + (b.I1 - b.I0)
			n := n0
			for ; n+1 < end; n += 2 {
				exx := c1*(u[n]-u[n-dx]) + c2*(u[n+dx]-u[n-2*dx])
				eyy := c1*(v[n]-v[n-dy]) + c2*(v[n+dy]-v[n-2*dy])
				ezz := c1*(w[n]-w[n-dz]) + c2*(w[n+dz]-w[n-2*dz])
				xx[n] += dth * (l2m[n]*exx + lam[n]*(eyy+ezz))
				yy[n] += dth * (l2m[n]*eyy + lam[n]*(exx+ezz))
				zz[n] += dth * (l2m[n]*ezz + lam[n]*(exx+eyy))
				xy[n] += dth * mxy[n] * (c1*(u[n+dy]-u[n]) + c2*(u[n+2*dy]-u[n-dy]) +
					c1*(v[n+dx]-v[n]) + c2*(v[n+2*dx]-v[n-dx]))
				xz[n] += dth * mxz[n] * (c1*(u[n+dz]-u[n]) + c2*(u[n+2*dz]-u[n-dz]) +
					c1*(w[n+dx]-w[n]) + c2*(w[n+2*dx]-w[n-dx]))
				yz[n] += dth * myz[n] * (c1*(v[n+dz]-v[n]) + c2*(v[n+2*dz]-v[n-dz]) +
					c1*(w[n+dy]-w[n]) + c2*(w[n+2*dy]-w[n-dy]))
				m := n + 1
				exx2 := c1*(u[m]-u[m-dx]) + c2*(u[m+dx]-u[m-2*dx])
				eyy2 := c1*(v[m]-v[m-dy]) + c2*(v[m+dy]-v[m-2*dy])
				ezz2 := c1*(w[m]-w[m-dz]) + c2*(w[m+dz]-w[m-2*dz])
				xx[m] += dth * (l2m[m]*exx2 + lam[m]*(eyy2+ezz2))
				yy[m] += dth * (l2m[m]*eyy2 + lam[m]*(exx2+ezz2))
				zz[m] += dth * (l2m[m]*ezz2 + lam[m]*(exx2+eyy2))
				xy[m] += dth * mxy[m] * (c1*(u[m+dy]-u[m]) + c2*(u[m+2*dy]-u[m-dy]) +
					c1*(v[m+dx]-v[m]) + c2*(v[m+2*dx]-v[m-dx]))
				xz[m] += dth * mxz[m] * (c1*(u[m+dz]-u[m]) + c2*(u[m+2*dz]-u[m-dz]) +
					c1*(w[m+dx]-w[m]) + c2*(w[m+2*dx]-w[m-dx]))
				yz[m] += dth * myz[m] * (c1*(v[m+dz]-v[m]) + c2*(v[m+2*dz]-v[m-dz]) +
					c1*(w[m+dy]-w[m]) + c2*(w[m+2*dy]-w[m-dy]))
			}
			for ; n < end; n++ {
				exx := c1*(u[n]-u[n-dx]) + c2*(u[n+dx]-u[n-2*dx])
				eyy := c1*(v[n]-v[n-dy]) + c2*(v[n+dy]-v[n-2*dy])
				ezz := c1*(w[n]-w[n-dz]) + c2*(w[n+dz]-w[n-2*dz])
				xx[n] += dth * (l2m[n]*exx + lam[n]*(eyy+ezz))
				yy[n] += dth * (l2m[n]*eyy + lam[n]*(exx+ezz))
				zz[n] += dth * (l2m[n]*ezz + lam[n]*(exx+eyy))
				xy[n] += dth * mxy[n] * (c1*(u[n+dy]-u[n]) + c2*(u[n+2*dy]-u[n-dy]) +
					c1*(v[n+dx]-v[n]) + c2*(v[n+2*dx]-v[n-dx]))
				xz[n] += dth * mxz[n] * (c1*(u[n+dz]-u[n]) + c2*(u[n+2*dz]-u[n-dz]) +
					c1*(w[n+dx]-w[n]) + c2*(w[n+2*dx]-w[n-dx]))
				yz[n] += dth * myz[n] * (c1*(v[n+dz]-v[n]) + c2*(v[n+2*dz]-v[n-dz]) +
					c1*(w[n+dy]-w[n]) + c2*(w[n+2*dy]-w[n-dy]))
			}
		}
	}
}
