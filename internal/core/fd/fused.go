package fd

import "repro/internal/medium"

// The Fused kernels restructure Precomp for bounds-check elimination. The
// whole-array form indexes u[n±2*dz] etc., which the compiler cannot prove
// in-bounds, so every stencil load carries a bounds check. Here each (j,k)
// row instead slices one explicit length-ni window per field and stencil
// offset:
//
//	ap := a[n0+off:][:ni]    // a[n+off] == ap[i],  i = n-n0
//
// The two-step slice matters: the second slice's length is the literal SSA
// value ni, so with `for i := range center` the prove pass sees i < ni ==
// len(every window) and eliminates all inner-loop bounds checks (a single
// combined form a[lo:hi] leaves len as an opaque difference the prover
// cannot reduce). Verified by scripts/check_bce.sh with
// -gcflags=-d=ssa/check_bce; the remaining IsSliceInBounds checks fire once
// per row, not per point. The arithmetic is operand-for-operand that of
// velocityPrecomp/stressPrecomp, so results are bit-identical. The ghost
// frame (grid.Ghost = 2) guarantees every window of an interior box stays
// inside the backing array.

// velocityFused is velocityPrecomp with per-row subslice windows.
func velocityFused(s *State, m *medium.Medium, dt float64, b Box) {
	dth := float32(dt / m.H)
	c1, c2 := float32(C1), float32(C2)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	bx, by, bz := m.BX.Data(), m.BY.Data(), m.BZ.Data()
	_, dy, dz := s.VX.Strides()
	ni := b.I1 - b.I0

	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			n0 := s.VX.Idx(b.I0, j, k)
			ur := u[n0:][:ni]
			vr := v[n0:][:ni]
			wr := w[n0:][:ni]
			bxr := bx[n0:][:ni]
			byr := by[n0:][:ni]
			bzr := bz[n0:][:ni]
			xxc := xx[n0:][:ni]
			xxm1x := xx[n0-1:][:ni]
			xxp1x := xx[n0+1:][:ni]
			xxp2x := xx[n0+2:][:ni]
			xyc := xy[n0:][:ni]
			xym2x := xy[n0-2:][:ni]
			xym1x := xy[n0-1:][:ni]
			xyp1x := xy[n0+1:][:ni]
			xym2y := xy[n0-2*dy:][:ni]
			xym1y := xy[n0-dy:][:ni]
			xyp1y := xy[n0+dy:][:ni]
			xzc := xz[n0:][:ni]
			xzm2x := xz[n0-2:][:ni]
			xzm1x := xz[n0-1:][:ni]
			xzp1x := xz[n0+1:][:ni]
			xzm2z := xz[n0-2*dz:][:ni]
			xzm1z := xz[n0-dz:][:ni]
			xzp1z := xz[n0+dz:][:ni]
			yyc := yy[n0:][:ni]
			yym1y := yy[n0-dy:][:ni]
			yyp1y := yy[n0+dy:][:ni]
			yyp2y := yy[n0+2*dy:][:ni]
			yzc := yz[n0:][:ni]
			yzm2y := yz[n0-2*dy:][:ni]
			yzm1y := yz[n0-dy:][:ni]
			yzp1y := yz[n0+dy:][:ni]
			yzm2z := yz[n0-2*dz:][:ni]
			yzm1z := yz[n0-dz:][:ni]
			yzp1z := yz[n0+dz:][:ni]
			zzc := zz[n0:][:ni]
			zzm1z := zz[n0-dz:][:ni]
			zzp1z := zz[n0+dz:][:ni]
			zzp2z := zz[n0+2*dz:][:ni]
			for i := range ur {
				ur[i] += dth * bxr[i] * (c1*(xxp1x[i]-xxc[i]) + c2*(xxp2x[i]-xxm1x[i]) +
					c1*(xyc[i]-xym1y[i]) + c2*(xyp1y[i]-xym2y[i]) +
					c1*(xzc[i]-xzm1z[i]) + c2*(xzp1z[i]-xzm2z[i]))
				vr[i] += dth * byr[i] * (c1*(xyc[i]-xym1x[i]) + c2*(xyp1x[i]-xym2x[i]) +
					c1*(yyp1y[i]-yyc[i]) + c2*(yyp2y[i]-yym1y[i]) +
					c1*(yzc[i]-yzm1z[i]) + c2*(yzp1z[i]-yzm2z[i]))
				wr[i] += dth * bzr[i] * (c1*(xzc[i]-xzm1x[i]) + c2*(xzp1x[i]-xzm2x[i]) +
					c1*(yzc[i]-yzm1y[i]) + c2*(yzp1y[i]-yzm2y[i]) +
					c1*(zzp1z[i]-zzc[i]) + c2*(zzp2z[i]-zzm1z[i]))
			}
		}
	}
}

// stressFused is stressPrecomp with per-row subslice windows. It performs
// only the elastic update; when attenuation is enabled the solver calls
// attenuation.FusedStress instead, which folds the memory-variable update
// into the same i-loop.
func stressFused(s *State, m *medium.Medium, dt float64, b Box) {
	dth := float32(dt / m.H)
	c1, c2 := float32(C1), float32(C2)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	lam, l2m := m.Lam.Data(), m.Lam2Mu.Data()
	mxy, mxz, myz := m.MuXY.Data(), m.MuXZ.Data(), m.MuYZ.Data()
	_, dy, dz := s.VX.Strides()
	ni := b.I1 - b.I0

	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			n0 := s.VX.Idx(b.I0, j, k)
			uc := u[n0:][:ni]
			um2x := u[n0-2:][:ni]
			um1x := u[n0-1:][:ni]
			up1x := u[n0+1:][:ni]
			um1y := u[n0-dy:][:ni]
			up1y := u[n0+dy:][:ni]
			up2y := u[n0+2*dy:][:ni]
			um1z := u[n0-dz:][:ni]
			up1z := u[n0+dz:][:ni]
			up2z := u[n0+2*dz:][:ni]
			vc := v[n0:][:ni]
			vm1x := v[n0-1:][:ni]
			vp1x := v[n0+1:][:ni]
			vp2x := v[n0+2:][:ni]
			vm2y := v[n0-2*dy:][:ni]
			vm1y := v[n0-dy:][:ni]
			vp1y := v[n0+dy:][:ni]
			vm1z := v[n0-dz:][:ni]
			vp1z := v[n0+dz:][:ni]
			vp2z := v[n0+2*dz:][:ni]
			wc := w[n0:][:ni]
			wm1x := w[n0-1:][:ni]
			wp1x := w[n0+1:][:ni]
			wp2x := w[n0+2:][:ni]
			wm1y := w[n0-dy:][:ni]
			wp1y := w[n0+dy:][:ni]
			wp2y := w[n0+2*dy:][:ni]
			wm2z := w[n0-2*dz:][:ni]
			wm1z := w[n0-dz:][:ni]
			wp1z := w[n0+dz:][:ni]
			xxr := xx[n0:][:ni]
			yyr := yy[n0:][:ni]
			zzr := zz[n0:][:ni]
			xyr := xy[n0:][:ni]
			xzr := xz[n0:][:ni]
			yzr := yz[n0:][:ni]
			lamr := lam[n0:][:ni]
			l2mr := l2m[n0:][:ni]
			mxyr := mxy[n0:][:ni]
			mxzr := mxz[n0:][:ni]
			myzr := myz[n0:][:ni]
			for i := range xxr {
				exx := c1*(uc[i]-um1x[i]) + c2*(up1x[i]-um2x[i])
				eyy := c1*(vc[i]-vm1y[i]) + c2*(vp1y[i]-vm2y[i])
				ezz := c1*(wc[i]-wm1z[i]) + c2*(wp1z[i]-wm2z[i])
				xxr[i] += dth * (l2mr[i]*exx + lamr[i]*(eyy+ezz))
				yyr[i] += dth * (l2mr[i]*eyy + lamr[i]*(exx+ezz))
				zzr[i] += dth * (l2mr[i]*ezz + lamr[i]*(exx+eyy))
				xyr[i] += dth * mxyr[i] * (c1*(up1y[i]-uc[i]) + c2*(up2y[i]-um1y[i]) +
					c1*(vp1x[i]-vc[i]) + c2*(vp2x[i]-vm1x[i]))
				xzr[i] += dth * mxzr[i] * (c1*(up1z[i]-uc[i]) + c2*(up2z[i]-um1z[i]) +
					c1*(wp1x[i]-wc[i]) + c2*(wp2x[i]-wm1x[i]))
				yzr[i] += dth * myzr[i] * (c1*(vp1z[i]-vc[i]) + c2*(vp2z[i]-vm1z[i]) +
					c1*(wp1y[i]-wc[i]) + c2*(wp2y[i]-wm1y[i]))
			}
		}
	}
}
