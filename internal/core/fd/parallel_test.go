package fd

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core/sched"
	"repro/internal/grid"
)

// The hybrid mode's defining property: k-slab threading is bit-identical
// to the serial kernel (cells are independent within a kernel
// application).
func TestParallelKernelsBitIdentical(t *testing.T) {
	d := grid.Dims{NX: 16, NY: 14, NZ: 18}
	m := makeMedium(t, heteroQuerier(), d, 200)
	dt := m.StableDt(0.5)
	box := FullBox(d)

	ref := randomState(d, 11)
	UpdateVelocity(ref, m, dt, box, Precomp, Blocking{})
	UpdateStress(ref, m, dt, box, Precomp, Blocking{})

	for _, threads := range []int{2, 3, 7, 32} {
		s := randomState(d, 11)
		UpdateVelocityParallel(s, m, dt, box, Precomp, Blocking{}, threads)
		UpdateStressParallel(s, m, dt, box, Precomp, Blocking{}, threads)
		if diff := s.L2Diff(ref); diff != 0 {
			t.Fatalf("threads=%d: differs from serial by %g", threads, diff)
		}
	}
}

func TestForEachKSlabCoversBox(t *testing.T) {
	box := Box{1, 5, 0, 3, 2, 19}
	var mu sync.Mutex
	counts := map[int]int{}
	ForEachKSlab(box, 4, func(b Box) {
		if b.I0 != box.I0 || b.I1 != box.I1 || b.J0 != box.J0 || b.J1 != box.J1 {
			t.Errorf("i/j extents altered: %v", b)
		}
		mu.Lock()
		defer mu.Unlock()
		for k := b.K0; k < b.K1; k++ {
			counts[k]++
		}
	})
	for k := box.K0; k < box.K1; k++ {
		if counts[k] != 1 {
			t.Fatalf("k=%d covered %d times", k, counts[k])
		}
	}
	if len(counts) != box.K1-box.K0 {
		t.Fatalf("covered %d slabs, want %d", len(counts), box.K1-box.K0)
	}
}

func TestForEachKSlabDegenerate(t *testing.T) {
	// Empty box: no calls.
	called := 0
	ForEachKSlab(Box{0, 0, 0, 1, 0, 1}, 4, func(Box) { called++ })
	if called != 0 {
		t.Fatal("empty box invoked fn")
	}
	// More threads than slabs: still exact cover.
	var n atomic.Int64
	ForEachKSlab(Box{0, 2, 0, 2, 0, 3}, 16, func(b Box) { n.Add(int64(b.K1 - b.K0)) })
	if n.Load() != 3 {
		t.Fatalf("covered %d k-levels, want 3", n.Load())
	}
	// Single thread: one call with the full box.
	calls := 0
	ForEachKSlab(Box{0, 2, 0, 2, 0, 5}, 1, func(b Box) {
		calls++
		if b.K1-b.K0 != 5 {
			t.Fatal("serial path split the box")
		}
	})
	if calls != 1 {
		t.Fatalf("serial path made %d calls", calls)
	}
}

// The pooled tile scheduler must reproduce the serial kernel bit-exactly
// for every variant — tiles are the forEachBlock panels, and cells are
// independent within one kernel application.
func TestTiledKernelsBitIdenticalAllVariants(t *testing.T) {
	d := grid.Dims{NX: 16, NY: 14, NZ: 18}
	m := makeMedium(t, heteroQuerier(), d, 200)
	dt := m.StableDt(0.5)
	box := FullBox(d)
	blk := Blocking{JBlock: 4, KBlock: 8}

	for _, v := range []Variant{Naive, Recip, Precomp, Blocked, Unrolled} {
		ref := randomState(d, 23)
		UpdateVelocity(ref, m, dt, box, v, blk)
		UpdateStress(ref, m, dt, box, v, blk)

		for _, threads := range []int{1, 2, 5, 16} {
			p := sched.NewPool(threads)
			s := randomState(d, 23)
			UpdateVelocityTiled(s, m, dt, box, v, blk, p)
			UpdateStressTiled(s, m, dt, box, v, blk, p)
			p.Close()
			if diff := s.L2Diff(ref); diff != 0 {
				t.Fatalf("variant=%v threads=%d: differs from serial by %g", v, threads, diff)
			}
		}
	}
}

func TestTilesCoverBoxExactlyOnce(t *testing.T) {
	box := Box{1, 9, 2, 15, 3, 40}
	blk := Blocking{JBlock: 4, KBlock: 16}
	seen := map[[3]int]int{}
	for _, b := range Tiles(box, blk) {
		if b.I0 != box.I0 || b.I1 != box.I1 {
			t.Errorf("tile altered i extents: %+v", b)
		}
		if b.J1-b.J0 > blk.JBlock || b.K1-b.K0 > blk.KBlock {
			t.Errorf("tile %+v exceeds blocking %+v", b, blk)
		}
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				seen[[3]int{0, j, k}]++
			}
		}
	}
	for k := box.K0; k < box.K1; k++ {
		for j := box.J0; j < box.J1; j++ {
			if seen[[3]int{0, j, k}] != 1 {
				t.Fatalf("(j=%d,k=%d) covered %d times", j, k, seen[[3]int{0, j, k}])
			}
		}
	}
	if want := (box.J1 - box.J0) * (box.K1 - box.K0); len(seen) != want {
		t.Fatalf("covered %d cells, want %d", len(seen), want)
	}
}

func TestTilesDegenerate(t *testing.T) {
	if got := Tiles(Box{0, 0, 0, 4, 0, 4}, DefaultBlocking); got != nil {
		t.Fatalf("empty box yielded %d tiles", len(got))
	}
	// Tile larger than box: a single tile equal to the box.
	one := Tiles(Box{0, 3, 0, 5, 0, 7}, Blocking{JBlock: 64, KBlock: 64})
	if len(one) != 1 || one[0] != (Box{0, 3, 0, 5, 0, 7}) {
		t.Fatalf("oversized blocking gave %v", one)
	}
	// Non-positive blocking falls back to defaults rather than dividing by
	// zero.
	n := len(Tiles(Box{0, 8, 0, 32, 0, 32}, Blocking{}))
	dj := (32 + DefaultBlocking.JBlock - 1) / DefaultBlocking.JBlock
	dk := (32 + DefaultBlocking.KBlock - 1) / DefaultBlocking.KBlock
	if n != dj*dk {
		t.Fatalf("default-blocking tile count = %d, want %d", n, dj*dk)
	}
}

func TestForEachTileSerialOrderDeterministic(t *testing.T) {
	box := Box{0, 4, 0, 20, 0, 20}
	blk := Blocking{JBlock: 8, KBlock: 8}
	var ref, got []Box
	forEachBlock(box, blk, func(b Box) { ref = append(ref, b) })
	ForEachTile(box, blk, nil, func(b Box) { got = append(got, b) })
	if len(ref) != len(got) {
		t.Fatalf("%d tiles via ForEachTile, want %d", len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("tile %d = %+v, want forEachBlock order %+v", i, got[i], ref[i])
		}
	}
}

func TestForEachTileMultiCombinesQueues(t *testing.T) {
	p := sched.NewPool(4)
	defer p.Close()
	boxes := []Box{
		{0, 2, 0, 10, 0, 10},
		{}, // empty: contributes nothing
		{5, 6, 0, 3, 0, 33},
	}
	var mu sync.Mutex
	cells := 0
	ForEachTileMulti(boxes, Blocking{JBlock: 4, KBlock: 4}, p, func(b Box) {
		n := (b.I1 - b.I0) * (b.J1 - b.J0) * (b.K1 - b.K0)
		mu.Lock()
		cells += n
		mu.Unlock()
	})
	want := 2*10*10 + 1*3*33
	if cells != want {
		t.Fatalf("covered %d cells, want %d", cells, want)
	}
	// All-empty input: no pool interaction, no calls.
	calls := 0
	ForEachTileMulti([]Box{{}, {}}, DefaultBlocking, p, func(Box) { calls++ })
	if calls != 0 {
		t.Fatal("empty boxes invoked fn")
	}
}
