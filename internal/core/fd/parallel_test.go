package fd

import (
	"testing"

	"repro/internal/grid"
)

// The hybrid mode's defining property: k-slab threading is bit-identical
// to the serial kernel (cells are independent within a kernel
// application).
func TestParallelKernelsBitIdentical(t *testing.T) {
	d := grid.Dims{NX: 16, NY: 14, NZ: 18}
	m := makeMedium(t, heteroQuerier(), d, 200)
	dt := m.StableDt(0.5)
	box := FullBox(d)

	ref := randomState(d, 11)
	UpdateVelocity(ref, m, dt, box, Precomp, Blocking{})
	UpdateStress(ref, m, dt, box, Precomp, Blocking{})

	for _, threads := range []int{2, 3, 7, 32} {
		s := randomState(d, 11)
		UpdateVelocityParallel(s, m, dt, box, Precomp, Blocking{}, threads)
		UpdateStressParallel(s, m, dt, box, Precomp, Blocking{}, threads)
		if diff := s.L2Diff(ref); diff != 0 {
			t.Fatalf("threads=%d: differs from serial by %g", threads, diff)
		}
	}
}

func TestForEachKSlabCoversBox(t *testing.T) {
	box := Box{1, 5, 0, 3, 2, 19}
	counts := map[int]int{}
	ForEachKSlab(box, 4, func(b Box) {
		if b.I0 != box.I0 || b.I1 != box.I1 || b.J0 != box.J0 || b.J1 != box.J1 {
			t.Errorf("i/j extents altered: %v", b)
		}
		for k := b.K0; k < b.K1; k++ {
			counts[k]++
		}
	})
	for k := box.K0; k < box.K1; k++ {
		if counts[k] != 1 {
			t.Fatalf("k=%d covered %d times", k, counts[k])
		}
	}
	if len(counts) != box.K1-box.K0 {
		t.Fatalf("covered %d slabs, want %d", len(counts), box.K1-box.K0)
	}
}

func TestForEachKSlabDegenerate(t *testing.T) {
	// Empty box: no calls.
	called := 0
	ForEachKSlab(Box{0, 0, 0, 1, 0, 1}, 4, func(Box) { called++ })
	if called != 0 {
		t.Fatal("empty box invoked fn")
	}
	// More threads than slabs: still exact cover.
	n := 0
	ForEachKSlab(Box{0, 2, 0, 2, 0, 3}, 16, func(b Box) { n += b.K1 - b.K0 })
	if n != 3 {
		t.Fatalf("covered %d k-levels, want 3", n)
	}
	// Single thread: one call with the full box.
	calls := 0
	ForEachKSlab(Box{0, 2, 0, 2, 0, 5}, 1, func(b Box) {
		calls++
		if b.K1-b.K0 != 5 {
			t.Fatal("serial path split the box")
		}
	})
	if calls != 1 {
		t.Fatalf("serial path made %d calls", calls)
	}
}
