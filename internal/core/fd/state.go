// Package fd implements the explicit staggered-grid finite-difference
// kernels of AWP-ODC (§II.B): 4th-order in space, 2nd-order in time,
// velocity–stress formulation. Several kernel variants mirror the paper's
// single-CPU optimization study (§IV.B): a naive variant with per-operand
// divisions, a reciprocal-array variant, the production precomputed
// variant, and cache-blocked / unrolled forms of the latter.
//
// Staggering convention (Graves 1996, the scheme AWP-ODC uses): with
// storage index (i,j,k),
//
//	vx at (i+1/2, j, k)    sxx,syy,szz at (i, j, k)
//	vy at (i, j+1/2, k)    sxy at (i+1/2, j+1/2, k)
//	vz at (i, j, k+1/2)    sxz at (i+1/2, j, k+1/2)
//	                       syz at (i, j+1/2, k+1/2)
package fd

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// FD coefficients of the 4th-order staggered first-derivative (Eq. 3).
const (
	C1 = 9.0 / 8.0
	C2 = -1.0 / 24.0
)

// Flop counts per cell per step for the two kernels, used by the analytic
// performance model (factor C of Eq. 8).
const (
	FlopsVelocityPerCell = 54 // 3 components x (3 derivatives + scale)
	FlopsStressPerCell   = 72 // 9 derivatives + 6 constitutive updates
)

// State holds the nine wavefield components on one subgrid.
type State struct {
	Dims       grid.Dims
	VX, VY, VZ *grid.Field3
	XX, YY, ZZ *grid.Field3
	XY, XZ, YZ *grid.Field3
}

// NewState allocates a zeroed wavefield with default ghost width.
func NewState(d grid.Dims) *State { return NewStateG(d, grid.Ghost) }

// NewStateG allocates a zeroed wavefield with ghost-width `ghost` on every
// field; temporal tiling at depth T uses ghost = 4T so one super-step of
// stencil erosion stays local between halo exchanges.
func NewStateG(d grid.Dims, ghost int) *State {
	f := func() *grid.Field3 { return grid.NewField3G(d, ghost) }
	return &State{
		Dims: d,
		VX:   f(), VY: f(), VZ: f(),
		XX: f(), YY: f(), ZZ: f(),
		XY: f(), XZ: f(), YZ: f(),
	}
}

// Fields returns the nine component fields in canonical order
// (vx, vy, vz, sxx, syy, szz, sxy, sxz, syz).
func (s *State) Fields() []*grid.Field3 {
	return []*grid.Field3{s.VX, s.VY, s.VZ, s.XX, s.YY, s.ZZ, s.XY, s.XZ, s.YZ}
}

// FieldNames matches the order of Fields.
var FieldNames = []string{"vx", "vy", "vz", "sxx", "syy", "szz", "sxy", "sxz", "syz"}

// Velocities returns only the velocity components.
func (s *State) Velocities() []*grid.Field3 { return []*grid.Field3{s.VX, s.VY, s.VZ} }

// Stresses returns only the stress components.
func (s *State) Stresses() []*grid.Field3 {
	return []*grid.Field3{s.XX, s.YY, s.ZZ, s.XY, s.XZ, s.YZ}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	return &State{
		Dims: s.Dims,
		VX:   s.VX.Clone(), VY: s.VY.Clone(), VZ: s.VZ.Clone(),
		XX: s.XX.Clone(), YY: s.YY.Clone(), ZZ: s.ZZ.Clone(),
		XY: s.XY.Clone(), XZ: s.XZ.Clone(), YZ: s.YZ.Clone(),
	}
}

// L2Diff returns the root-sum-square difference over all nine components.
func (s *State) L2Diff(o *State) float64 {
	var sum float64
	sf, of := s.Fields(), o.Fields()
	for i := range sf {
		d := sf[i].L2Diff(of[i])
		sum += d * d
	}
	// sqrt of sum of squared L2 norms.
	return math.Sqrt(sum)
}

// MaxAbs returns the largest absolute value across all components.
func (s *State) MaxAbs() float32 {
	var m float32
	for _, f := range s.Fields() {
		if v := f.MaxAbs(); v > m {
			m = v
		}
	}
	return m
}

// Box is a half-open index region [I0,I1)x[J0,J1)x[K0,K1) of the interior.
type Box struct {
	I0, I1, J0, J1, K0, K1 int
}

// FullBox covers the whole interior of d.
func FullBox(d grid.Dims) Box {
	return Box{0, d.NX, 0, d.NY, 0, d.NZ}
}

// Empty reports whether the box contains no cells.
func (b Box) Empty() bool { return b.I1 <= b.I0 || b.J1 <= b.J0 || b.K1 <= b.K0 }

// Cells returns the number of cells in the box (0 if empty).
func (b Box) Cells() int {
	if b.Empty() {
		return 0
	}
	return (b.I1 - b.I0) * (b.J1 - b.J0) * (b.K1 - b.K0)
}

func (b Box) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)x[%d,%d)", b.I0, b.I1, b.J0, b.J1, b.K0, b.K1)
}

// Shrink returns the box shrunk by w cells on the faces indicated by the
// masks; used to split a subgrid into halo-independent interior and
// boundary strips for computation/communication overlap (§IV.C).
func (b Box) Shrink(w int, loX, hiX, loY, hiY, loZ, hiZ bool) Box {
	out := b
	if loX {
		out.I0 += w
	}
	if hiX {
		out.I1 -= w
	}
	if loY {
		out.J0 += w
	}
	if hiY {
		out.J1 -= w
	}
	if loZ {
		out.K0 += w
	}
	if hiZ {
		out.K1 -= w
	}
	return out
}
