// Temporal tiling (time skewing) for the staggered-grid leapfrog scheme.
//
// A super-step advances the wavefield T time steps while each k-chunk of
// the subgrid is cache-resident, instead of streaming the whole subgrid
// from DRAM once per half-step. Because every kernel is a radius-2 *star*
// stencil (all reads are single-axis offsets of at most 2 cells), a value
// of leapfrog stage h+1 at plane k depends on stage-h values no further
// than k+2, so stage h+1 can trail stage h by exactly 2 planes. The engine
// sweeps k-chunks bottom-up and, within each chunk, runs the stages of all
// T steps at skewed windows:
//
//	stage h (1-based)    operation              window lag (planes)
//	1                    velocity step 1        0
//	2                    stress   step 1        2
//	3                    damp 1 + velocity 2    4
//	...                  ...                    2(h-1)
//	2T                   stress   step T        2(2T-1)
//	2T+1                 damp step T (tail)     4T
//
// so a chunk is touched by every stage before the sweep moves on and its
// planes are still warm in cache.
//
// At rank boundaries the same skew becomes *erosion*: toward a face with a
// neighbor, the valid region of stage h shrinks by 2 cells per stage.
// Ghost regions 4T deep (exchanged once per super-step) let each rank
// recompute the eroded cells itself: stage h extends ext_h = 4T-2h cells
// into the ghost region, reproducing bit-for-bit the values the neighbor
// computes for those cells, so that after 2T+1 stages the interior is
// exactly as if halos had been exchanged every half-step.
package fd

import "repro/internal/grid"

// MaxTemporalDepth bounds the supported super-step length.
const MaxTemporalDepth = 4

// TemporalGhost returns the uniform field ghost width for temporal depth
// T: the classic 2-cell frame at T=1, 4T planes otherwise (the deepest
// read of the first stage reaches lag 0 + ext 4T-2 + stencil radius 2).
func TemporalGhost(T int) int {
	if T <= 1 {
		return grid.Ghost
	}
	return 4 * T
}

// VelDepth is the exchange depth of the velocity components at depth T:
// stage 1 (velocity step 1) computes ext 4T-2 cells into the ghosts and
// accumulates onto the velocity stored there.
func VelDepth(T int) int { return 4*T - 2 }

// StressDepth is the exchange depth of the stress components at depth T:
// velocity step 1 at ext 4T-2 reads stress at single-axis offsets up to 2.
func StressDepth(T int) int { return 4 * T }

// MemvarDepth is the exchange depth of the attenuation memory variables:
// they are read only at the updated cell itself, by stress stages whose
// deepest extension is ext 4T-4 (step 1).
func MemvarDepth(T int) int { return 4*T - 4 }

// NumStages returns the number of pipeline stages of a super-step of T
// steps: T velocity stages, T stress stages, plus the trailing damp-only
// stage that completes step T.
func NumStages(T int) int { return 2*T + 1 }

// StageLag returns the window lag (in k-planes) of stage h in [1, 2T+1].
func StageLag(h int) int { return 2 * (h - 1) }

// clipExt clamps a (possibly negative) extension to >= 0.
func clipExt(e int) int {
	if e < 0 {
		return 0
	}
	return e
}

// VelExt returns the ghost extension of the velocity update of step s
// (stage 2s-1) at depth T.
func VelExt(T, s int) int { return clipExt(4*T - 4*s + 2) }

// StressExt returns the ghost extension of the stress update of step s
// (stage 2s) at depth T. The damping of step s and the source injection
// of step s use the same extension.
func StressExt(T, s int) int { return clipExt(4*T - 4*s) }

// MinKChunk is the smallest chunk height for which a stage's downward
// reads (2 planes below a window that itself trails its supplier by 2)
// land in a chunk the supplier has already completed.
const MinKChunk = 4

// ChunkStart returns the first chunk origin of the sweep: low enough that
// the deepest stage-1 window (ext 4T-2 below the interior when a z-low
// neighbor exists) is covered by the first chunks.
func ChunkStart(T int, zLoNbr bool) int {
	if zLoNbr {
		return -(4*T - 2)
	}
	return 0
}

// ChunkEnd returns the exclusive chunk-origin bound: high enough that the
// most-lagged stage (the tail damp at lag 4T) reaches the top of its
// range.
func ChunkEnd(T, nz int) int { return nz + 4*T }

// StageWindow intersects the chunk [c0, c0+kChunk) shifted down by lag
// with the valid k-range [k0, k1), returning an empty range (w1 <= w0)
// when the stage has nothing to do in this chunk. Over the whole sweep the
// windows of one stage tile [k0, k1) exactly — each plane is visited once.
func StageWindow(c0, kChunk, lag, k0, k1 int) (w0, w1 int) {
	w0, w1 = c0-lag, c0+kChunk-lag
	if w0 < k0 {
		w0 = k0
	}
	if w1 > k1 {
		w1 = k1
	}
	return
}

// SuperStepSweep advances a single-rank wavefield T steps with the skewed
// chunk schedule and no boundary work: for each chunk it interleaves the
// 2T velocity/stress stages at their lags. velocity and stressTile run
// the respective update over one window box; stressTile must include
// whatever rides with the stress update (attenuation, when enabled), in
// the same per-window composition the step-by-step path uses. The result
// is bit-identical to T sequential velocity+stressTile passes over the
// full box. This is the measurement kernel of the temporal-depth
// autotuner and of benchtab -exp ttile.
func SuperStepSweep(d grid.Dims, T, kChunk int, velocity func(Box), stressTile func(Box)) {
	if kChunk < MinKChunk {
		kChunk = MinKChunk
	}
	for c0 := 0; c0 < ChunkEnd(T, d.NZ); c0 += kChunk {
		for h := 1; h <= 2*T; h++ {
			w0, w1 := StageWindow(c0, kChunk, StageLag(h), 0, d.NZ)
			if w1 <= w0 {
				continue
			}
			box := Box{0, d.NX, 0, d.NY, w0, w1}
			if h%2 == 1 {
				velocity(box)
			} else {
				stressTile(box)
			}
		}
	}
}
