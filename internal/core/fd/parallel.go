package fd

import (
	"sync"

	"repro/internal/core/sched"
	"repro/internal/medium"
)

// Hybrid MPI/OpenMP mode (§IV.D): within one rank, the kernel loops are
// split over worker goroutines sharing the rank's memory — the analogue of
// OpenMP threads spawned from a single MPI process. Cells are independent
// within one kernel application, so any decomposition (k-slabs or j/k
// tiles) is bit-identical to the serial kernel.
//
// Two execution strategies exist:
//
//   - ForEachKSlab: the original spawn-per-call path — a goroutine per
//     k-slab per kernel call. Kept as the baseline the pool benchmarks
//     compare against.
//   - Tiles + sched.Pool: the persistent engine — the j/k panels of the
//     cache-blocking scheme become a tile queue drained by a fixed worker
//     pool, so a call costs no goroutine spawns and uneven tiles (PML
//     trimming) load-balance dynamically.

// UpdateVelocityParallel is UpdateVelocity with nthreads spawned worker
// goroutines; nthreads <= 1 falls through to the serial kernel.
func UpdateVelocityParallel(s *State, m *medium.Medium, dt float64, box Box, v Variant, blk Blocking, nthreads int) {
	ForEachKSlab(box, nthreads, func(sub Box) {
		UpdateVelocity(s, m, dt, sub, v, blk)
	})
}

// UpdateStressParallel is UpdateStress with nthreads spawned worker
// goroutines.
func UpdateStressParallel(s *State, m *medium.Medium, dt float64, box Box, v Variant, blk Blocking, nthreads int) {
	ForEachKSlab(box, nthreads, func(sub Box) {
		UpdateStress(s, m, dt, sub, v, blk)
	})
}

// UpdateVelocityTiled runs UpdateVelocity over box as a tile queue on the
// persistent pool. Results are bit-identical to the serial kernel for
// every Variant.
func UpdateVelocityTiled(s *State, m *medium.Medium, dt float64, box Box, v Variant, blk Blocking, p *sched.Pool) {
	ForEachTile(box, blk, p, func(b Box) {
		UpdateVelocity(s, m, dt, b, v, blk)
	})
}

// UpdateStressTiled runs UpdateStress over box as a tile queue on the
// persistent pool.
func UpdateStressTiled(s *State, m *medium.Medium, dt float64, box Box, v Variant, blk Blocking, p *sched.Pool) {
	ForEachTile(box, blk, p, func(b Box) {
		UpdateStress(s, m, dt, b, v, blk)
	})
}

// Tiles splits box into j/k panels of at most blk.JBlock x blk.KBlock
// cells (full x extent, the same panels forEachBlock visits), the work
// units of the pooled execution engine. Non-positive blocking factors fall
// back to DefaultBlocking. An empty box yields no tiles.
func Tiles(box Box, blk Blocking) []Box {
	if box.Empty() {
		return nil
	}
	jb, kb := blk.JBlock, blk.KBlock
	if jb <= 0 {
		jb = DefaultBlocking.JBlock
	}
	if kb <= 0 {
		kb = DefaultBlocking.KBlock
	}
	nj := (box.J1 - box.J0 + jb - 1) / jb
	nk := (box.K1 - box.K0 + kb - 1) / kb
	tiles := make([]Box, 0, nj*nk)
	forEachBlock(box, blk, func(b Box) { tiles = append(tiles, b) })
	return tiles
}

// ForEachTile runs fn over the j/k tiles of box on the pool (serially for
// a nil/serial pool). A serial pool visits tiles in the deterministic
// forEachBlock order.
func ForEachTile(box Box, blk Blocking, p *sched.Pool, fn func(Box)) {
	if box.Empty() {
		return
	}
	if p.Size() == 1 {
		forEachBlock(box, blk, fn)
		return
	}
	tiles := Tiles(box, blk)
	p.ForEachN(len(tiles), func(i int) { fn(tiles[i]) })
}

// ForEachTileMulti runs fn over the combined tile queue of several boxes
// in one pool batch — the overlap schedule uses it to drain all boundary
// strips together so thin strips from different faces load-balance.
func ForEachTileMulti(boxes []Box, blk Blocking, p *sched.Pool, fn func(Box)) {
	var tiles []Box
	for _, b := range boxes {
		tiles = append(tiles, Tiles(b, blk)...)
	}
	if len(tiles) == 0 {
		return
	}
	p.ForEachN(len(tiles), func(i int) { fn(tiles[i]) })
}

// ForEachKSlab splits box into contiguous k-slabs and runs fn
// concurrently on nthreads freshly spawned workers (nthreads <= 1:
// inline). This is the legacy spawn-per-call path; the pooled tile
// scheduler (ForEachTile) supersedes it in the solver hot loop.
func ForEachKSlab(box Box, nthreads int, fn func(Box)) {
	if box.Empty() {
		return
	}
	nk := box.K1 - box.K0
	if nthreads <= 1 || nk < 2 {
		fn(box)
		return
	}
	if nthreads > nk {
		nthreads = nk
	}
	var wg sync.WaitGroup
	for t := 0; t < nthreads; t++ {
		k0 := box.K0 + t*nk/nthreads
		k1 := box.K0 + (t+1)*nk/nthreads
		if k0 == k1 {
			continue
		}
		sub := box
		sub.K0, sub.K1 = k0, k1
		wg.Add(1)
		go func(b Box) {
			defer wg.Done()
			fn(b)
		}(sub)
	}
	wg.Wait()
}
