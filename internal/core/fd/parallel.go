package fd

import (
	"sync"

	"repro/internal/medium"
)

// Hybrid MPI/OpenMP mode (§IV.D): within one rank, the kernel loops are
// split over worker goroutines sharing the rank's memory — the analogue of
// OpenMP threads spawned from a single MPI process. Cells are independent
// within one kernel application, so the decomposition is over k-slabs and
// the result is bit-identical to the serial kernel.

// UpdateVelocityParallel is UpdateVelocity with nthreads worker
// goroutines; nthreads <= 1 falls through to the serial kernel.
func UpdateVelocityParallel(s *State, m *medium.Medium, dt float64, box Box, v Variant, blk Blocking, nthreads int) {
	ForEachKSlab(box, nthreads, func(sub Box) {
		UpdateVelocity(s, m, dt, sub, v, blk)
	})
}

// UpdateStressParallel is UpdateStress with nthreads worker goroutines.
func UpdateStressParallel(s *State, m *medium.Medium, dt float64, box Box, v Variant, blk Blocking, nthreads int) {
	ForEachKSlab(box, nthreads, func(sub Box) {
		UpdateStress(s, m, dt, sub, v, blk)
	})
}

// ForEachKSlab splits box into contiguous k-slabs and runs fn
// concurrently on nthreads workers (nthreads <= 1: inline).
func ForEachKSlab(box Box, nthreads int, fn func(Box)) {
	if box.Empty() {
		return
	}
	nk := box.K1 - box.K0
	if nthreads <= 1 || nk < 2 {
		fn(box)
		return
	}
	if nthreads > nk {
		nthreads = nk
	}
	var wg sync.WaitGroup
	for t := 0; t < nthreads; t++ {
		k0 := box.K0 + t*nk/nthreads
		k1 := box.K0 + (t+1)*nk/nthreads
		if k0 == k1 {
			continue
		}
		sub := box
		sub.K0, sub.K1 = k0, k1
		wg.Add(1)
		go func(b Box) {
			defer wg.Done()
			fn(b)
		}(sub)
	}
	wg.Wait()
}
