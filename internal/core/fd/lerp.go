package fd

// Lerp fills dst with the linear interpolation a + (b-a)*t, elementwise.
// It is the per-cell inner loop of the multi-rate LTS rate-boundary
// ghost blend (solver lts.go), so its body must stay free of per-point
// bounds checks: the two reslices below are the once-per-call windows
// that let the prove pass eliminate them (guarded by check_bce.sh).
func Lerp(dst, a, b []float32, t float32) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		av := a[i]
		dst[i] = av + (b[i]-av)*t
	}
}
