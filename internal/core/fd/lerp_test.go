package fd

import "testing"

func TestLerp(t *testing.T) {
	a := []float32{0, 10, -4, 8}
	b := []float32{4, 20, 4, 8}
	dst := make([]float32, 4)
	Lerp(dst, a, b, 0.25)
	for i, want := range []float32{1, 12.5, -2, 8} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %g, want %g", i, dst[i], want)
		}
	}
	Lerp(dst, a, b, 1)
	for i := range b {
		if dst[i] != b[i] {
			t.Fatalf("t=1: dst[%d] = %g, want %g", i, dst[i], b[i])
		}
	}
	// dst shorter than the sources: only len(dst) elements touched.
	short := make([]float32, 2)
	Lerp(short, a, b, 0)
	if short[0] != a[0] || short[1] != a[1] {
		t.Fatalf("t=0 short dst = %v", short)
	}
}
