// Package sched provides the per-rank persistent execution engine of the
// hybrid MPI/OpenMP mode (§IV.D). A Pool is a fixed set of worker
// goroutines created once per rank — the analogue of the OpenMP thread
// team the paper's Fortran code keeps alive across kernel calls — that
// executes kernel work as a queue of tiles. Workers pull tile indices
// from a shared atomic counter (dynamic scheduling), so uneven tiles
// (e.g. k-slabs trimmed by PML zones) load-balance automatically, and no
// goroutine is spawned per kernel call.
//
// Determinism: a batch's work function receives each index exactly once;
// which worker runs which index is unspecified. Kernel tiles are
// independent within one application (velocity updates read stresses and
// write velocities, and vice versa), so results are bit-identical to
// serial execution regardless of the schedule.
package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// batch is one data-parallel work queue: indices [0,n) drained through an
// atomic cursor by every participating goroutine.
type batch struct {
	n    int
	fn   func(int)
	next atomic.Int64
	wg   sync.WaitGroup
}

// run drains the batch until the cursor passes n.
func (b *batch) run() {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= b.n {
			return
		}
		b.fn(i)
	}
}

// Pool is a persistent team of worker goroutines. A Pool of size n
// executes batches on n concurrent goroutines: n-1 resident workers plus
// the submitting caller, which always participates (so a Pool never idles
// the thread that owns the rank). The zero-size/nil Pool runs everything
// inline, serially.
type Pool struct {
	size int         // total concurrency (workers + caller)
	jobs chan *batch // wake channel; each batch is enqueued once per worker
	done chan struct{}
	tel  *telemetry.Recorder
}

// SetTelemetry attaches a recorder: each subsequent batch reports its
// queue-wait (submission to first tile start) and execute (first tile
// start to completion) intervals. nil detaches; the off path adds one nil
// check per batch, nothing per tile.
func (p *Pool) SetTelemetry(rec *telemetry.Recorder) {
	if p != nil {
		p.tel = rec
	}
}

// NewPool creates a pool with total concurrency n (n-1 resident workers;
// the caller of ForEachN is the n-th executor). n <= 1 returns a serial
// pool with no goroutines.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{size: n, done: make(chan struct{})}
	if n == 1 {
		return p
	}
	p.jobs = make(chan *batch, n-1)
	for w := 0; w < n-1; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for {
		select {
		case b := <-p.jobs:
			b.run()
			b.wg.Done()
		case <-p.done:
			return
		}
	}
}

// Size returns the pool's total concurrency (1 for a serial or nil pool).
func (p *Pool) Size() int {
	if p == nil || p.size < 1 {
		return 1
	}
	return p.size
}

// Close stops the resident workers. ForEachN on a closed pool runs
// serially. Close is idempotent; it must not be called concurrently with
// an in-flight ForEachN.
func (p *Pool) Close() {
	if p == nil || p.jobs == nil {
		return
	}
	select {
	case <-p.done:
	default:
		close(p.done)
	}
}

func (p *Pool) closed() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// ForEachN executes fn(i) for every i in [0,n) across the pool and blocks
// until all calls return. Safe for concurrent use from multiple
// goroutines; batches from concurrent callers interleave at tile
// granularity.
func (p *Pool) ForEachN(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p != nil && p.tel != nil {
		var finish func()
		fn, finish = p.instrument(fn)
		defer finish()
	}
	if p == nil || p.jobs == nil || n == 1 || p.closed() {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	b := &batch{n: n, fn: fn}
	workers := p.size - 1
	if workers > n-1 {
		workers = n - 1 // never wake more workers than spare tiles
	}
	b.wg.Add(workers)
	for w := 0; w < workers; w++ {
		p.jobs <- b
	}
	b.run()
	b.wg.Wait()
}

// instrument wraps a batch's work function to split its wall time into
// queue-wait (submission until the first tile starts, on any executor)
// and execute (first tile start until the batch completes). The first
// tile may run on a worker goroutine while the finish closure runs on the
// caller, so the split point travels through an atomic.
func (p *Pool) instrument(fn func(int)) (wrapped func(int), finish func()) {
	submit := time.Now()
	var firstNs atomic.Int64
	wrapped = func(i int) {
		if firstNs.Load() == 0 {
			d := int64(time.Since(submit))
			if d < 1 {
				d = 1
			}
			firstNs.CompareAndSwap(0, d)
		}
		fn(i)
	}
	finish = func() {
		total := int64(time.Since(submit))
		wait := firstNs.Load()
		if wait == 0 || wait > total {
			wait = total
		}
		p.tel.AddDur(telemetry.QueueWait, time.Duration(wait))
		p.tel.AddDur(telemetry.Execute, time.Duration(total-wait))
	}
	return wrapped, finish
}
