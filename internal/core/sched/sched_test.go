package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Every index in [0,n) must be executed exactly once.
func TestForEachNCoversExactlyOnce(t *testing.T) {
	for _, size := range []int{1, 2, 4, 7} {
		p := NewPool(size)
		for _, n := range []int{0, 1, 3, 17, 100} {
			counts := make([]atomic.Int32, max(n, 1))
			p.ForEachN(n, func(i int) { counts[i].Add(1) })
			for i := 0; i < n; i++ {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("size=%d n=%d: index %d ran %d times", size, n, i, c)
				}
			}
		}
		p.Close()
	}
}

// The pool is persistent: repeated batches reuse the same workers and
// leave no goroutines behind per call.
func TestPoolReuseAcrossBatches(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.ForEachN(13, func(i int) { total.Add(int64(i)) })
	}
	want := int64(50 * 13 * 12 / 2)
	if got := total.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// More workers than items must not deadlock or double-execute.
func TestMoreWorkersThanItems(t *testing.T) {
	p := NewPool(16)
	defer p.Close()
	var n atomic.Int32
	p.ForEachN(3, func(int) { n.Add(1) })
	if n.Load() != 3 {
		t.Fatalf("executed %d items, want 3", n.Load())
	}
}

// Concurrent ForEachN calls from different goroutines (e.g. two ranks
// sharing a pool in tests) must each complete all their items.
func TestConcurrentSubmitters(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				p.ForEachN(9, func(int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 4*20*9 {
		t.Fatalf("total = %d, want %d", got, 4*20*9)
	}
}

// Nil and serial pools run inline.
func TestSerialAndNilPool(t *testing.T) {
	var nilPool *Pool
	ran := 0
	nilPool.ForEachN(5, func(int) { ran++ })
	if ran != 5 {
		t.Fatalf("nil pool ran %d, want 5", ran)
	}
	if nilPool.Size() != 1 {
		t.Fatalf("nil pool size %d", nilPool.Size())
	}
	p := NewPool(0)
	defer p.Close()
	if p.Size() != 1 {
		t.Fatalf("serial pool size %d", p.Size())
	}
	order := []int{}
	p.ForEachN(4, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatal("serial pool did not run in order")
		}
	}
}

// Close is idempotent and a closed pool still completes work serially.
func TestCloseIdempotentAndServiceable(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close()
	var n atomic.Int32
	p.ForEachN(7, func(int) { n.Add(1) })
	if n.Load() != 7 {
		t.Fatalf("closed pool ran %d items, want 7", n.Load())
	}
}
