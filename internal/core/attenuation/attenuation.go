// Package attenuation implements the coarse-grained memory-variable
// scheme of Day (1998) and Day & Bradley (2001) used by AWP-ODC to model
// frequency-independent anelastic losses (constant Q) during wave
// propagation (§II.A).
//
// The method approximates the constant-Q relaxation spectrum by NRelax
// exponential mechanisms with relaxation times log-spaced over the modeled
// band. Instead of storing all mechanisms at every grid point (8x memory),
// the mechanisms are distributed over the points of 2x2x2 coarse-graining
// cells: each point carries exactly one memory variable per stress
// component, and for wavelengths long against the cell the ensemble
// behaves like the full set — "without sacrificing computational or
// memory efficiency".
//
// Formulation: the anelastic stress is sigma = M_R*eps + sum_m zeta_m with
//
//	tau_m * dzeta_m/dt + zeta_m = deltaM * tau_m * deps/dt
//
// where M_R is the (relaxed) modulus carried by the elastic kernel. For a
// harmonic strain this yields the complex modulus
//
//	M(w) = M_R + deltaM * sum_m (i*w*tau_m)/(1 + i*w*tau_m)
//
// whose loss 1/Q(w) ~ (deltaM/M_u) * sum_m s(w*tau_m), s(x) = x/(1+x^2).
// With log-spaced tau the sum is nearly flat over the band, so a single
// normalization at the band center gives approximately constant Q. The
// per-point modulus deficit is deltaM = (M/Q) * 8/sum_m s(w0*tau_m), the
// factor 8 compensating for each point carrying only one of the eight
// mechanisms.
package attenuation

import (
	"fmt"
	"math"

	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/grid"
	"repro/internal/medium"
)

// NRelax is the number of relaxation mechanisms; the paper uses eight,
// distributed over the 8 points of a 2x2x2 coarse-graining cell.
const NRelax = 8

// Band is the frequency band over which Q is held approximately constant.
type Band struct {
	FMin, FMax float64 // Hz
}

// DefaultBand covers the 0.02–2 Hz band of the M8 simulation.
var DefaultBand = Band{FMin: 0.02, FMax: 2.0}

// RelaxationTimes returns NRelax relaxation times log-spaced across the
// band, longest first.
func (b Band) RelaxationTimes() [NRelax]float64 {
	var taus [NRelax]float64
	if b.FMin <= 0 || b.FMax <= b.FMin {
		panic(fmt.Sprintf("attenuation: invalid band %+v", b))
	}
	lmin := math.Log(1 / (2 * math.Pi * b.FMax))
	lmax := math.Log(1 / (2 * math.Pi * b.FMin))
	for m := 0; m < NRelax; m++ {
		f := float64(m) / float64(NRelax-1)
		taus[m] = math.Exp(lmax + f*(lmin-lmax))
	}
	return taus
}

// lossShape is s(x) = x/(1+x^2), the loss spectrum of one mechanism.
func lossShape(x float64) float64 { return x / (1 + x*x) }

// CenterOmega returns the geometric-center angular frequency of the band.
func (b Band) CenterOmega() float64 {
	return 2 * math.Pi * math.Sqrt(b.FMin*b.FMax)
}

// ensembleLoss returns sum_m s(w*tau_m) for the band's spectrum.
func ensembleLoss(taus [NRelax]float64, omega float64) float64 {
	var s float64
	for _, tau := range taus {
		s += lossShape(omega * tau)
	}
	return s
}

// Model holds the per-rank attenuation state: one memory variable per
// stress component per grid point, with the mechanism index determined by
// the point's position within its 2x2x2 coarse-graining cell.
type Model struct {
	Dims grid.Dims
	Band Band
	Taus [NRelax]float64

	// Per-mechanism recursion coefficients for the current dt:
	// zeta' = am*zeta + cm*deltaM*deps.
	am, cm [NRelax]float64
	dt     float64

	// Origin is the global index of the local (0,0,0) cell; the
	// coarse-grained mechanism assignment uses global parity so that a
	// decomposed run matches a single-rank run exactly.
	Origin [3]int

	// Memory variables, one per stress component.
	ZXX, ZYY, ZZZ *grid.Field3
	ZXY, ZXZ, ZYZ *grid.Field3

	// Per-point coarse-grain-normalized modulus deficits.
	DLam, DMu *grid.Field3
}

// New builds the attenuation model for medium m over band, discretized at
// time step dt (Apply panics if called with a different dt).
func New(m *medium.Medium, band Band, dt float64) *Model {
	// Memory variables inherit the medium's ghost width: time-tiled runs
	// allocate deep-ghost media and need matching deep memory variables for
	// the recomputed extension cells.
	gw := m.Rho.G()
	nf := func() *grid.Field3 { return grid.NewField3G(m.Dims, gw) }
	a := &Model{
		Dims: m.Dims,
		Band: band,
		Taus: band.RelaxationTimes(),
		dt:   dt,
		ZXX:  nf(), ZYY: nf(), ZZZ: nf(),
		ZXY: nf(), ZXZ: nf(), ZYZ: nf(),
		DLam: nf(), DMu: nf(),
	}
	for mm := 0; mm < NRelax; mm++ {
		tau := a.Taus[mm]
		a.am[mm] = (2*tau - dt) / (2*tau + dt)
		a.cm[mm] = 2 * tau / (2*tau + dt)
	}
	// Coarse-grain normalization: each point carries one mechanism, so its
	// deficit is 8x the full-ensemble per-mechanism deficit, normalized to
	// the band-center loss.
	norm := float64(NRelax) / ensembleLoss(a.Taus, band.CenterOmega())
	g := gw
	d := m.Dims
	for k := -g; k < d.NZ+g; k++ {
		for j := -g; j < d.NY+g; j++ {
			for i := -g; i < d.NX+g; i++ {
				qp := float64(m.QP.At(i, j, k))
				qs := float64(m.QS.At(i, j, k))
				lam2mu := float64(m.Lam.At(i, j, k)) + 2*float64(m.Mu.At(i, j, k))
				mu := float64(m.Mu.At(i, j, k))
				var dl, dm float64
				if qs > 0 {
					dm = norm * mu / qs
				}
				if qp > 0 {
					// Qp controls the P modulus (lam+2mu); subtract the mu
					// part so lambda's deficit is consistent.
					dl = norm*lam2mu/qp - 2*dm
					if dl < 0 {
						dl = 0
					}
				}
				a.DLam.Set(i, j, k, float32(dl))
				a.DMu.Set(i, j, k, float32(dm))
			}
		}
	}
	return a
}

// mechAt returns the relaxation mechanism index for point (i,j,k), cycling
// through the 2x2x2 cell parity (the coarse-grained distribution).
func mechAt(i, j, k int) int {
	return ((k&1)<<2 | (j&1)<<1 | (i & 1)) % NRelax
}

// Apply advances the memory variables over box using the velocity field of
// s (whose spatial differences give the strain increments) and applies the
// anelastic stress corrections in place. Call it immediately after the
// elastic stress update each time step, with the same dt and box.
func (a *Model) Apply(s *fd.State, m *medium.Medium, dt float64, box fd.Box) {
	if dt != a.dt {
		panic(fmt.Sprintf("attenuation: model built for dt=%g, called with %g", a.dt, dt))
	}
	if box.Empty() {
		return
	}
	c1, c2 := float32(fd.C1), float32(fd.C2)
	dh := float32(dt / m.H) // strain increment scale
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	zxx, zyy, zzz := a.ZXX.Data(), a.ZYY.Data(), a.ZZZ.Data()
	zxy, zxz, zyz := a.ZXY.Data(), a.ZXZ.Data(), a.ZYZ.Data()
	dlam, dmu := a.DLam.Data(), a.DMu.Data()
	dx, dy, dz := s.VX.Strides()

	var amf, cmf [NRelax]float32
	for mm := 0; mm < NRelax; mm++ {
		amf[mm] = float32(a.am[mm])
		cmf[mm] = float32(a.cm[mm])
	}

	for k := box.K0; k < box.K1; k++ {
		for j := box.J0; j < box.J1; j++ {
			for i := box.I0; i < box.I1; i++ {
				n := s.VX.Idx(i, j, k)
				mm := mechAt(i+a.Origin[0], j+a.Origin[1], k+a.Origin[2])
				am, cm := amf[mm], cmf[mm]

				// Strain increments over this step (dt * strain rate);
				// shear components are engineering strain, matching the
				// elastic constitutive update.
				exx := dh * (c1*(u[n]-u[n-dx]) + c2*(u[n+dx]-u[n-2*dx]))
				eyy := dh * (c1*(v[n]-v[n-dy]) + c2*(v[n+dy]-v[n-2*dy]))
				ezz := dh * (c1*(w[n]-w[n-dz]) + c2*(w[n+dz]-w[n-2*dz]))
				exy := dh * (c1*(u[n+dy]-u[n]) + c2*(u[n+2*dy]-u[n-dy]) +
					c1*(v[n+dx]-v[n]) + c2*(v[n+2*dx]-v[n-dx]))
				exz := dh * (c1*(u[n+dz]-u[n]) + c2*(u[n+2*dz]-u[n-dz]) +
					c1*(w[n+dx]-w[n]) + c2*(w[n+2*dx]-w[n-dx]))
				eyz := dh * (c1*(v[n+dz]-v[n]) + c2*(v[n+2*dz]-v[n-dz]) +
					c1*(w[n+dy]-w[n]) + c2*(w[n+2*dy]-w[n-dy]))

				dl2m := dlam[n] + 2*dmu[n]
				trace := dlam[n] * (exx + eyy + ezz)

				// zeta' = am*zeta + cm*deltaM*deps, constitutive-shaped;
				// the SLS stress is sigma = M_R*eps + zeta (the elastic
				// kernel supplies the relaxed part), so the correction adds
				// the memory-variable increment.
				upd := func(z *float32, drive float32, sig *float32) {
					zn := am*(*z) + cm*drive
					*sig += zn - *z
					*z = zn
				}
				upd(&zxx[n], dl2m*exx+trace-dlam[n]*exx, &xx[n])
				upd(&zyy[n], dl2m*eyy+trace-dlam[n]*eyy, &yy[n])
				upd(&zzz[n], dl2m*ezz+trace-dlam[n]*ezz, &zz[n])
				upd(&zxy[n], dmu[n]*exy, &xy[n])
				upd(&zxz[n], dmu[n]*exz, &xz[n])
				upd(&zyz[n], dmu[n]*eyz, &yz[n])
			}
		}
	}
}

// ApplyParallel runs Apply over k-slabs on nthreads worker goroutines
// (the §IV.D hybrid mode); results are bit-identical to Apply.
func (a *Model) ApplyParallel(s *fd.State, m *medium.Medium, dt float64, box fd.Box, nthreads int) {
	fd.ForEachKSlab(box, nthreads, func(sub fd.Box) {
		a.Apply(s, m, dt, sub)
	})
}

// ApplyTiled runs Apply over the j/k tiles of box on the persistent pool;
// memory variables and stress corrections are per-point, so any disjoint
// tiling is race-free and bit-identical to Apply.
func (a *Model) ApplyTiled(s *fd.State, m *medium.Medium, dt float64, box fd.Box, blk fd.Blocking, p *sched.Pool) {
	fd.ForEachTile(box, blk, p, func(b fd.Box) {
		a.Apply(s, m, dt, b)
	})
}

// FlopsPerCell is the approximate flop count of the attenuation pass per
// cell per step, for the performance model.
const FlopsPerCell = 90

// QPredicted returns the effective quality factor the relaxation ensemble
// produces at angular frequency omega for a target Q — the verification
// quantity of Day (1998). A perfect constant-Q model would return targetQ
// at every frequency in the band.
func (a *Model) QPredicted(omega, targetQ float64) float64 {
	if targetQ <= 0 {
		return math.Inf(1)
	}
	loss := ensembleLoss(a.Taus, omega) / ensembleLoss(a.Taus, a.Band.CenterOmega())
	return targetQ / loss
}
