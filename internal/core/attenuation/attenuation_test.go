package attenuation

import (
	"math"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
)

func makeMedium(t testing.TB, q cvm.Querier, d grid.Dims, h float64) *medium.Medium {
	t.Helper()
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return medium.FromCVM(q, dc, dc.SubFor(0), h)
}

func TestRelaxationTimesSpanBand(t *testing.T) {
	b := Band{FMin: 0.02, FMax: 2.0}
	taus := b.RelaxationTimes()
	if math.Abs(taus[0]-1/(2*math.Pi*b.FMin)) > 1e-9 {
		t.Errorf("tau[0] = %g, want %g", taus[0], 1/(2*math.Pi*b.FMin))
	}
	if math.Abs(taus[NRelax-1]-1/(2*math.Pi*b.FMax)) > 1e-9 {
		t.Errorf("tau[last] = %g, want %g", taus[NRelax-1], 1/(2*math.Pi*b.FMax))
	}
	for m := 1; m < NRelax; m++ {
		if taus[m] >= taus[m-1] {
			t.Fatalf("taus not descending at %d", m)
		}
	}
}

func TestBandValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted band")
		}
	}()
	Band{FMin: 2, FMax: 1}.RelaxationTimes()
}

func TestMechanismDistributionCoversAll(t *testing.T) {
	seen := map[int]bool{}
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				seen[mechAt(i, j, k)] = true
			}
		}
	}
	if len(seen) != NRelax {
		t.Fatalf("2x2x2 cell uses %d mechanisms, want %d", len(seen), NRelax)
	}
	// Translation invariance with period 2.
	if mechAt(3, 5, 7) != mechAt(1, 1, 1) || mechAt(4, 6, 8) != mechAt(0, 0, 0) {
		t.Fatal("mechanism assignment not 2-periodic")
	}
}

// QPredicted must be exact at the band center and approximately flat
// (constant Q) across the band — the defining property of the
// multi-mechanism spectrum (Day 1998).
func TestQPredictedFlatInBand(t *testing.T) {
	d := grid.Dims{NX: 4, NY: 4, NZ: 4}
	m := makeMedium(t, cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}), d, 100)
	band := Band{FMin: 0.02, FMax: 2.0}
	a := New(m, band, 1e-3)
	target := 50.0
	if got := a.QPredicted(band.CenterOmega(), target); math.Abs(got-target)/target > 1e-9 {
		t.Fatalf("Q at center = %g, want %g", got, target)
	}
	for f := band.FMin; f <= band.FMax; f *= 1.5 {
		got := a.QPredicted(2*math.Pi*f, target)
		if got < 0.6*target || got > 1.6*target {
			t.Errorf("Q(%g Hz) = %g, outside +-60%% of %g", f, got, target)
		}
	}
	// Far outside the band, the model loses accuracy (Q rises) — that is
	// expected and should be visible.
	if got := a.QPredicted(2*math.Pi*band.FMax*100, target); got < 2*target {
		t.Errorf("Q far above band = %g, expected >> target", got)
	}
}

func TestApplyDtMismatchPanics(t *testing.T) {
	d := grid.Dims{NX: 4, NY: 4, NZ: 4}
	m := makeMedium(t, cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}), d, 100)
	a := New(m, DefaultBand, 1e-3)
	s := fd.NewState(d)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Apply(s, m, 2e-3, fd.FullBox(d))
}

func TestZeroQDisablesAttenuation(t *testing.T) {
	d := grid.Dims{NX: 8, NY: 8, NZ: 8}
	m := makeMedium(t, cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}), d, 100)
	m.SetUniformQ(0, 0)
	dt := m.StableDt(0.5)
	a := New(m, DefaultBand, dt)
	s := fd.NewState(d)
	s.VX.Set(4, 4, 4, 1)
	before := s.Clone()
	fd.UpdateVelocity(s, m, dt, fd.FullBox(d), fd.Precomp, fd.Blocking{})
	fd.UpdateStress(s, m, dt, fd.FullBox(d), fd.Precomp, fd.Blocking{})
	ref := s.Clone()
	// Re-run with attenuation applied: must be identical when Q <= 0.
	s2 := before.Clone()
	fd.UpdateVelocity(s2, m, dt, fd.FullBox(d), fd.Precomp, fd.Blocking{})
	fd.UpdateStress(s2, m, dt, fd.FullBox(d), fd.Precomp, fd.Blocking{})
	a.Apply(s2, m, dt, fd.FullBox(d))
	if s2.L2Diff(ref) != 0 {
		t.Fatal("Q<=0 attenuation modified the wavefield")
	}
}

// exchangePeriodic refreshes ghosts with wrap-around for the decay test.
func exchangePeriodic(s *fd.State) {
	for _, f := range s.Fields() {
		for _, ax := range []grid.Axis{grid.X, grid.Y, grid.Z} {
			buf := make([]float32, f.FaceLen(ax, grid.Ghost))
			f.PackFace(ax, grid.High, grid.Ghost, buf)
			f.UnpackFace(ax, grid.Low, grid.Ghost, buf)
			f.PackFace(ax, grid.Low, grid.Ghost, buf)
			f.UnpackFace(ax, grid.High, grid.Ghost, buf)
		}
	}
}

// TestAmplitudeDecayMatchesQ propagates a periodic S plane wave through a
// constant-Q medium and checks the measured temporal amplitude decay rate
// against the theoretical omega/(2Q).
func TestAmplitudeDecayMatchesQ(t *testing.T) {
	mat := cvm.Material{Vp: 5196, Vs: 3000, Rho: 2500}
	nx := 64
	h := 50.0
	d := grid.Dims{NX: nx, NY: 4, NZ: 4}
	m := makeMedium(t, cvm.Homogeneous(mat), d, h)
	targetQ := 50.0
	m.SetUniformQ(2*targetQ, targetQ)

	L := float64(nx) * h
	kw := 2 * math.Pi / L
	omega := kw * mat.Vs // 5.89 rad/s -> f inside the band below
	band := Band{FMin: 0.3, FMax: 3.0}
	dt := m.StableDt(0.4)
	a := New(m, band, dt)

	s := fd.NewState(d)
	g := grid.Ghost
	for k := -g; k < d.NZ+g; k++ {
		for j := -g; j < d.NY+g; j++ {
			for i := -g; i < d.NX+g; i++ {
				x := float64(i) * h
				s.VY.Set(i, j, k, float32(math.Sin(kw*x)))
				xs := (float64(i) + 0.5) * h
				s.XY.Set(i, j, k, float32(-mat.Rho*mat.Vs*math.Sin(kw*(xs-mat.Vs*dt/2))))
			}
		}
	}

	rms := func() float64 {
		return math.Sqrt(s.VY.SumSq() / float64(d.Cells()))
	}
	box := fd.FullBox(d)
	step := func(n int) {
		for i := 0; i < n; i++ {
			exchangePeriodic(s)
			fd.UpdateVelocity(s, m, dt, box, fd.Precomp, fd.Blocking{})
			exchangePeriodic(s)
			fd.UpdateStress(s, m, dt, box, fd.Precomp, fd.Blocking{})
			a.Apply(s, m, dt, box)
		}
	}

	warm := 200
	step(warm)
	a0 := rms()
	n := 800
	step(n)
	a1 := rms()
	T := float64(n) * dt
	gotRate := math.Log(a0/a1) / T
	wantRate := omega / (2 * targetQ)
	if rel := math.Abs(gotRate-wantRate) / wantRate; rel > 0.25 {
		t.Fatalf("decay rate %g, want %g (rel err %g)", gotRate, wantRate, rel)
	}
}

// Without attenuation the same wave must not decay measurably.
func TestNoDecayWithoutAttenuation(t *testing.T) {
	mat := cvm.Material{Vp: 5196, Vs: 3000, Rho: 2500}
	nx := 64
	h := 50.0
	d := grid.Dims{NX: nx, NY: 4, NZ: 4}
	m := makeMedium(t, cvm.Homogeneous(mat), d, h)
	L := float64(nx) * h
	kw := 2 * math.Pi / L
	dt := m.StableDt(0.4)

	s := fd.NewState(d)
	g := grid.Ghost
	for k := -g; k < d.NZ+g; k++ {
		for j := -g; j < d.NY+g; j++ {
			for i := -g; i < d.NX+g; i++ {
				x := float64(i) * h
				s.VY.Set(i, j, k, float32(math.Sin(kw*x)))
				xs := (float64(i) + 0.5) * h
				s.XY.Set(i, j, k, float32(-mat.Rho*mat.Vs*math.Sin(kw*(xs-mat.Vs*dt/2))))
			}
		}
	}
	rms := func() float64 { return math.Sqrt(s.VY.SumSq() / float64(d.Cells())) }
	box := fd.FullBox(d)
	a0 := rms()
	for i := 0; i < 1000; i++ {
		exchangePeriodic(s)
		fd.UpdateVelocity(s, m, dt, box, fd.Precomp, fd.Blocking{})
		exchangePeriodic(s)
		fd.UpdateStress(s, m, dt, box, fd.Precomp, fd.Blocking{})
	}
	a1 := rms()
	if math.Abs(a1-a0)/a0 > 0.01 {
		t.Fatalf("elastic wave decayed: %g -> %g", a0, a1)
	}
}

// The tiled pool schedule must reproduce serial Apply bit-exactly: memory
// variables and stress corrections are per-point, so any disjoint tiling
// is race-free.
func TestApplyTiledBitIdentical(t *testing.T) {
	d := grid.Dims{NX: 14, NY: 17, NZ: 19}
	m := makeMedium(t, cvm.SoCal(1400, 1700, 1900, 400), d, 100)
	dt := m.StableDt(0.5)
	box := fd.FullBox(d)
	fill := func() *fd.State {
		s := fd.NewState(d)
		for fi, f := range s.Fields() {
			data := f.Data()
			for n := range data {
				data[n] = float32(fi+2) * float32(n%89-44) * 1e-3
			}
		}
		return s
	}

	ref := fill()
	ar := New(m, DefaultBand, dt)
	ar.Apply(ref, m, dt, box)

	for _, threads := range []int{1, 3, 8} {
		p := sched.NewPool(threads)
		s := fill()
		at := New(m, DefaultBand, dt)
		at.ApplyTiled(s, m, dt, box, fd.Blocking{JBlock: 4, KBlock: 4}, p)
		p.Close()
		for fi, f := range s.Fields() {
			a, b := f.Data(), ref.Fields()[fi].Data()
			for n := range a {
				if a[n] != b[n] {
					t.Fatalf("threads=%d field %d idx %d: %g != %g", threads, fi, n, a[n], b[n])
				}
			}
		}
		// Memory variables advanced identically too.
		za, zb := at.ZXY.Data(), ar.ZXY.Data()
		for n := range za {
			if za[n] != zb[n] {
				t.Fatalf("threads=%d memory variable idx %d differs", threads, n)
			}
		}
	}
}
