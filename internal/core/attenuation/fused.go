package attenuation

import (
	"fmt"

	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/medium"
)

// FusedStress advances the six stress components and the coarse-grained
// memory variables over box in a single sweep: the Day (1998) update runs
// point-by-point inside the same i-loop as the elastic constitutive update,
// so each stress value is read, corrected, and written once per step
// instead of twice (one read/modify/write of XX..YZ instead of the
// UpdateStress + Apply pair re-streaming all six fields).
//
// Results are bit-identical to fd.UpdateStress(Precomp/Fused) followed by
// Apply over the same box:
//
//   - The elastic update at point n reads only velocities and material
//     arrays and writes stress at n; the memory-variable update reads only
//     velocities, DLam/DMu, and the stress/memory variable at n. No point
//     reads another point's stress, so interleaving per point cannot change
//     any operand.
//   - The two passes scale derivatives by the same constant (dth == dh ==
//     float32(dt/m.H)) from identical difference expressions, so reusing the
//     elastic derivative sums here (aexx = dth*exx, ...) reproduces the
//     two-pass strain increments bit-for-bit. The Go compiler does not
//     contract float32 multiply-adds on amd64/arm64, so identical
//     expressions round identically.
//
// The loop uses the same per-row, per-offset subslice windows as the fd
// Fused kernels (see fd/fused.go) so the inner loop carries no bounds
// checks; the per-mechanism recursion coefficients reduce to a two-entry
// table per row because only the x parity varies along a row.
func (a *Model) FusedStress(s *fd.State, m *medium.Medium, dt float64, box fd.Box) {
	if dt != a.dt {
		panic(fmt.Sprintf("attenuation: model built for dt=%g, called with %g", a.dt, dt))
	}
	if box.Empty() {
		return
	}
	dth := float32(dt / m.H)
	c1, c2 := float32(fd.C1), float32(fd.C2)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	lam, l2m := m.Lam.Data(), m.Lam2Mu.Data()
	mxy, mxz, myz := m.MuXY.Data(), m.MuXZ.Data(), m.MuYZ.Data()
	zxx, zyy, zzz := a.ZXX.Data(), a.ZYY.Data(), a.ZZZ.Data()
	zxy, zxz, zyz := a.ZXY.Data(), a.ZXZ.Data(), a.ZYZ.Data()
	dlam, dmu := a.DLam.Data(), a.DMu.Data()
	_, dy, dz := s.VX.Strides()
	ni := box.I1 - box.I0

	var amf, cmf [NRelax]float32
	for mm := 0; mm < NRelax; mm++ {
		amf[mm] = float32(a.am[mm])
		cmf[mm] = float32(a.cm[mm])
	}
	pari := (box.I0 + a.Origin[0]) & 1

	for k := box.K0; k < box.K1; k++ {
		gkbit := ((k + a.Origin[2]) & 1) << 2
		for j := box.J0; j < box.J1; j++ {
			// Only the x parity varies along a row: collapse the mechanism
			// table to the two entries this row can select.
			base := gkbit | ((j+a.Origin[1])&1)<<1
			amP := [2]float32{amf[base], amf[base|1]}
			cmP := [2]float32{cmf[base], cmf[base|1]}

			n0 := s.VX.Idx(box.I0, j, k)
			uc := u[n0:][:ni]
			um2x := u[n0-2:][:ni]
			um1x := u[n0-1:][:ni]
			up1x := u[n0+1:][:ni]
			um1y := u[n0-dy:][:ni]
			up1y := u[n0+dy:][:ni]
			up2y := u[n0+2*dy:][:ni]
			um1z := u[n0-dz:][:ni]
			up1z := u[n0+dz:][:ni]
			up2z := u[n0+2*dz:][:ni]
			vc := v[n0:][:ni]
			vm1x := v[n0-1:][:ni]
			vp1x := v[n0+1:][:ni]
			vp2x := v[n0+2:][:ni]
			vm2y := v[n0-2*dy:][:ni]
			vm1y := v[n0-dy:][:ni]
			vp1y := v[n0+dy:][:ni]
			vm1z := v[n0-dz:][:ni]
			vp1z := v[n0+dz:][:ni]
			vp2z := v[n0+2*dz:][:ni]
			wc := w[n0:][:ni]
			wm1x := w[n0-1:][:ni]
			wp1x := w[n0+1:][:ni]
			wp2x := w[n0+2:][:ni]
			wm1y := w[n0-dy:][:ni]
			wp1y := w[n0+dy:][:ni]
			wp2y := w[n0+2*dy:][:ni]
			wm2z := w[n0-2*dz:][:ni]
			wm1z := w[n0-dz:][:ni]
			wp1z := w[n0+dz:][:ni]
			xxr := xx[n0:][:ni]
			yyr := yy[n0:][:ni]
			zzr := zz[n0:][:ni]
			xyr := xy[n0:][:ni]
			xzr := xz[n0:][:ni]
			yzr := yz[n0:][:ni]
			lamr := lam[n0:][:ni]
			l2mr := l2m[n0:][:ni]
			mxyr := mxy[n0:][:ni]
			mxzr := mxz[n0:][:ni]
			myzr := myz[n0:][:ni]
			zxxr := zxx[n0:][:ni]
			zyyr := zyy[n0:][:ni]
			zzzr := zzz[n0:][:ni]
			zxyr := zxy[n0:][:ni]
			zxzr := zxz[n0:][:ni]
			zyzr := zyz[n0:][:ni]
			dlamr := dlam[n0:][:ni]
			dmur := dmu[n0:][:ni]
			for i := range xxr {
				// Elastic constitutive update (== stressPrecomp).
				exx := c1*(uc[i]-um1x[i]) + c2*(up1x[i]-um2x[i])
				eyy := c1*(vc[i]-vm1y[i]) + c2*(vp1y[i]-vm2y[i])
				ezz := c1*(wc[i]-wm1z[i]) + c2*(wp1z[i]-wm2z[i])
				dxy := c1*(up1y[i]-uc[i]) + c2*(up2y[i]-um1y[i]) +
					c1*(vp1x[i]-vc[i]) + c2*(vp2x[i]-vm1x[i])
				dxz := c1*(up1z[i]-uc[i]) + c2*(up2z[i]-um1z[i]) +
					c1*(wp1x[i]-wc[i]) + c2*(wp2x[i]-wm1x[i])
				dyz := c1*(vp1z[i]-vc[i]) + c2*(vp2z[i]-vm1z[i]) +
					c1*(wp1y[i]-wc[i]) + c2*(wp2y[i]-wm1y[i])
				xxr[i] += dth * (l2mr[i]*exx + lamr[i]*(eyy+ezz))
				yyr[i] += dth * (l2mr[i]*eyy + lamr[i]*(exx+ezz))
				zzr[i] += dth * (l2mr[i]*ezz + lamr[i]*(exx+eyy))
				xyr[i] += dth * mxyr[i] * dxy
				xzr[i] += dth * mxzr[i] * dxz
				yzr[i] += dth * myzr[i] * dyz

				// Memory-variable update (== Apply) on the just-written
				// stress: zeta' = am*zeta + cm*drive, sigma += zeta' - zeta.
				p := (i + pari) & 1
				am, cm := amP[p], cmP[p]
				aexx := dth * exx
				aeyy := dth * eyy
				aezz := dth * ezz
				dl2m := dlamr[i] + 2*dmur[i]
				trace := dlamr[i] * (aexx + aeyy + aezz)
				zn := am*zxxr[i] + cm*(dl2m*aexx+trace-dlamr[i]*aexx)
				xxr[i] += zn - zxxr[i]
				zxxr[i] = zn
				zn = am*zyyr[i] + cm*(dl2m*aeyy+trace-dlamr[i]*aeyy)
				yyr[i] += zn - zyyr[i]
				zyyr[i] = zn
				zn = am*zzzr[i] + cm*(dl2m*aezz+trace-dlamr[i]*aezz)
				zzr[i] += zn - zzzr[i]
				zzzr[i] = zn
				zn = am*zxyr[i] + cm*(dmur[i]*(dth*dxy))
				xyr[i] += zn - zxyr[i]
				zxyr[i] = zn
				zn = am*zxzr[i] + cm*(dmur[i]*(dth*dxz))
				xzr[i] += zn - zxzr[i]
				zxzr[i] = zn
				zn = am*zyzr[i] + cm*(dmur[i]*(dth*dyz))
				yzr[i] += zn - zyzr[i]
				zyzr[i] = zn
			}
		}
	}
}

// FusedStressTiled runs FusedStress over the j/k tiles of box on the
// persistent pool. Stress and memory-variable writes are per-point, so any
// disjoint tiling is race-free and bit-identical to FusedStress.
func (a *Model) FusedStressTiled(s *fd.State, m *medium.Medium, dt float64, box fd.Box, blk fd.Blocking, p *sched.Pool) {
	fd.ForEachTile(box, blk, p, func(b fd.Box) {
		a.FusedStress(s, m, dt, b)
	})
}
