package attenuation

import (
	"math/rand"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/cvm"
	"repro/internal/grid"
)

// fillStateSeeded deterministically fills all nine wavefields (including
// ghosts) with heterogeneous values.
func fillStateSeeded(d grid.Dims, seed int64) *fd.State {
	s := fd.NewState(d)
	rng := rand.New(rand.NewSource(seed))
	for _, f := range s.Fields() {
		data := f.Data()
		for n := range data {
			data[n] = (rng.Float32() - 0.5) * 1e-2
		}
	}
	return s
}

// expectStatesEqual asserts exact (bitwise) equality of all nine wavefields.
func expectStatesEqual(t *testing.T, got, want *fd.State, label string) {
	t.Helper()
	wf := want.Fields()
	for fi, f := range got.Fields() {
		a, b := f.Data(), wf[fi].Data()
		for n := range a {
			if a[n] != b[n] {
				t.Fatalf("%s: field %s idx %d: %g != %g", label, fd.FieldNames[fi], n, a[n], b[n])
			}
		}
	}
}

// expectMemVarsEqual asserts exact equality of all six memory variables.
func expectMemVarsEqual(t *testing.T, got, want *Model, label string) {
	t.Helper()
	gz := []*grid.Field3{got.ZXX, got.ZYY, got.ZZZ, got.ZXY, got.ZXZ, got.ZYZ}
	wz := []*grid.Field3{want.ZXX, want.ZYY, want.ZZZ, want.ZXY, want.ZXZ, want.ZYZ}
	names := []string{"ZXX", "ZYY", "ZZZ", "ZXY", "ZXZ", "ZYZ"}
	for zi := range gz {
		a, b := gz[zi].Data(), wz[zi].Data()
		for n := range a {
			if a[n] != b[n] {
				t.Fatalf("%s: memvar %s idx %d: %g != %g", label, names[zi], n, a[n], b[n])
			}
		}
	}
}

// FusedStress must be bit-identical to the two-pass UpdateStress + Apply
// over multiple steps, including with a nonzero coarse-graining origin (as
// a decomposed rank sees) and a heterogeneous Q model.
func TestFusedStressBitIdenticalMultiStep(t *testing.T) {
	d := grid.Dims{NX: 14, NY: 13, NZ: 11}
	m := makeMedium(t, cvm.SoCal(1400, 1300, 1100, 400), d, 100)
	dt := m.StableDt(0.5)
	box := fd.FullBox(d)

	sRef := fillStateSeeded(d, 7)
	sFus := sRef.Clone()
	aRef := New(m, DefaultBand, dt)
	aFus := New(m, DefaultBand, dt)
	aRef.Origin = [3]int{3, 5, 7}
	aFus.Origin = aRef.Origin

	for step := 0; step < 4; step++ {
		fd.UpdateVelocity(sRef, m, dt, box, fd.Precomp, fd.Blocking{})
		fd.UpdateStress(sRef, m, dt, box, fd.Precomp, fd.Blocking{})
		aRef.Apply(sRef, m, dt, box)

		fd.UpdateVelocity(sFus, m, dt, box, fd.Fused, fd.Blocking{})
		aFus.FusedStress(sFus, m, dt, box)
	}
	expectStatesEqual(t, sFus, sRef, "multi-step")
	expectMemVarsEqual(t, aFus, aRef, "multi-step")
}

// Sub-boxes at odd offsets exercise the row parity tables against the
// per-point mechAt reference.
func TestFusedStressSubBoxParity(t *testing.T) {
	d := grid.Dims{NX: 12, NY: 10, NZ: 9}
	m := makeMedium(t, cvm.SoCal(1200, 1000, 900, 400), d, 100)
	dt := m.StableDt(0.5)
	boxes := []fd.Box{
		{I0: 3, I1: 10, J0: 1, J1: 8, K0: 2, K1: 7},
		{I0: 2, I1: 3, J0: 5, J1: 6, K0: 3, K1: 4},  // single point
		{I0: 0, I1: 12, J0: 7, J1: 8, K0: 0, K1: 9}, // single j-plane
	}
	for bi, box := range boxes {
		for _, origin := range [][3]int{{0, 0, 0}, {1, 0, 1}, {5, 9, 2}} {
			sRef := fillStateSeeded(d, int64(100+bi))
			sFus := sRef.Clone()
			aRef := New(m, DefaultBand, dt)
			aFus := New(m, DefaultBand, dt)
			aRef.Origin = origin
			aFus.Origin = origin

			fd.UpdateStress(sRef, m, dt, box, fd.Precomp, fd.Blocking{})
			aRef.Apply(sRef, m, dt, box)
			aFus.FusedStress(sFus, m, dt, box)

			expectStatesEqual(t, sFus, sRef, "sub-box")
			expectMemVarsEqual(t, aFus, aRef, "sub-box")
		}
	}
}

func TestFusedStressTiledBitIdentical(t *testing.T) {
	d := grid.Dims{NX: 14, NY: 17, NZ: 19}
	m := makeMedium(t, cvm.SoCal(1400, 1700, 1900, 400), d, 100)
	dt := m.StableDt(0.5)
	box := fd.FullBox(d)

	sRef := fillStateSeeded(d, 11)
	aRef := New(m, DefaultBand, dt)
	fd.UpdateStress(sRef, m, dt, box, fd.Precomp, fd.Blocking{})
	aRef.Apply(sRef, m, dt, box)

	for _, threads := range []int{1, 3, 8} {
		p := sched.NewPool(threads)
		s := fillStateSeeded(d, 11)
		a := New(m, DefaultBand, dt)
		a.FusedStressTiled(s, m, dt, box, fd.Blocking{JBlock: 4, KBlock: 4}, p)
		p.Close()
		expectStatesEqual(t, s, sRef, "tiled")
		expectMemVarsEqual(t, a, aRef, "tiled")
	}
}

func TestFusedStressDtMismatchPanics(t *testing.T) {
	d := grid.Dims{NX: 4, NY: 4, NZ: 4}
	m := makeMedium(t, cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}), d, 100)
	a := New(m, DefaultBand, 1e-3)
	s := fd.NewState(d)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.FusedStress(s, m, 2e-3, fd.FullBox(d))
}

// FuzzFusedStressMatchesTwoPass drives the fused kernel with random Q
// scatter (including Q<=0 points), random coarse-graining cell phase, and
// random box offsets, asserting exact equality against the two-pass
// reference on all wavefields and memory variables.
func FuzzFusedStressMatchesTwoPass(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(int64(2), uint8(1), uint8(3), uint8(2), uint8(3), uint8(1), uint8(2))
	f.Add(int64(3), uint8(255), uint8(254), uint8(253), uint8(7), uint8(5), uint8(4))
	d := grid.Dims{NX: 10, NY: 9, NZ: 8}

	f.Fuzz(func(t *testing.T, seed int64, ox, oy, oz, i0, j0, k0 uint8) {
		m := makeMedium(t, cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}), d, 100)
		// Random per-point Q scatter, with ~1/8 of points lossless.
		rng := rand.New(rand.NewSource(seed))
		qpd, qsd := m.QP.Data(), m.QS.Data()
		for n := range qpd {
			qs := rng.Float64() * 200
			if rng.Intn(8) == 0 {
				qs = 0
			}
			qsd[n] = float32(qs)
			qpd[n] = float32(2 * qs)
		}
		dt := m.StableDt(0.5)
		box := fd.Box{
			I0: int(i0) % d.NX, I1: d.NX,
			J0: int(j0) % d.NY, J1: d.NY,
			K0: int(k0) % d.NZ, K1: d.NZ,
		}
		origin := [3]int{int(ox), int(oy), int(oz)}

		sRef := fillStateSeeded(d, seed)
		sFus := sRef.Clone()
		aRef := New(m, DefaultBand, dt)
		aFus := New(m, DefaultBand, dt)
		aRef.Origin = origin
		aFus.Origin = origin

		fd.UpdateStress(sRef, m, dt, box, fd.Precomp, fd.Blocking{})
		aRef.Apply(sRef, m, dt, box)
		aFus.FusedStress(sFus, m, dt, box)

		expectStatesEqual(t, sFus, sRef, "fuzz")
		expectMemVarsEqual(t, aFus, aRef, "fuzz")
	})
}
