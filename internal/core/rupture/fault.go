// Package rupture implements the staggered-grid split-node (SGSN)
// spontaneous dynamic rupture solver of AWP-ODC (§II.C, Dalguer & Day
// 2007): a vertical planar fault embedded in the 3D velocity–stress grid,
// with split tangential velocity nodes on the fault plane, a
// traction-at-split-node force balance, and a slip-weakening friction law.
//
// Geometry: the fault occupies the plane y = J0*h (the plane containing
// the vx nodes at (i+1/2, J0, k)). Slip is along strike (x), the M8
// mechanism. The along-strike velocity at fault nodes is split into plus
// (y > fault) and minus sides; all other components remain single-valued,
// the partly-split approximation whose near-fault accuracy is 2nd order —
// matching the scheme's formal order reduction within two cells of the
// fault (Eq. 4).
//
// Discrete split-node dynamics, per fault node, with unit-area half masses
// rho*h/2:
//
//	dvx+/dt = a_c + (2/(rho*h)) * (sxy(j0+1/2) - T)
//	dvx-/dt = a_c + (2/(rho*h)) * (T - sxy(j0-1/2))
//
// where a_c collects the common in-plane force terms and T is the fault
// traction perturbation. Enforcing zero slip acceleration gives the locked
// trial traction
//
//	T_lock = (sxy+ + sxy-)/2 + dslip/dt * rho*h/(4*dt)
//
// The absolute traction tau0 + T is capped at the slip-weakening strength
// tau_s(slip) = c0 + mu(slip)*sigma_n; the excess drives sliding.
package rupture

import (
	"fmt"
	"math"

	"repro/internal/core/fd"
	"repro/internal/grid"
	"repro/internal/medium"
)

// Friction holds the slip-weakening parameters at one fault node.
type Friction struct {
	MuS, MuD float64 // static and dynamic friction coefficients
	Dc       float64 // slip-weakening distance, m
	Cohesion float64 // c0, Pa
}

// Mu returns the friction coefficient after slip s.
func (f Friction) Mu(s float64) float64 {
	if s >= f.Dc {
		return f.MuD
	}
	return f.MuS - (f.MuS-f.MuD)*s/f.Dc
}

// Config describes the fault embedded in a subgrid.
type Config struct {
	J0             int // fault plane y index (local)
	I0, I1, K0, K1 int // rupturable region; outside nodes are barriers

	// Per-node fields indexed [k-K0][i-I0].
	Tau0     [][]float64 // initial along-strike shear stress, Pa
	SigmaN   [][]float64 // compressive normal stress (positive), Pa
	Friction [][]Friction
}

// Validate checks the configuration against the subgrid dims.
func (c Config) Validate(d grid.Dims) error {
	if c.J0 < 2 || c.J0 > d.NY-3 {
		return fmt.Errorf("rupture: fault plane j0=%d too close to subgrid edge (ny=%d)", c.J0, d.NY)
	}
	if c.I0 < 0 || c.I1 > d.NX || c.K0 < 0 || c.K1 > d.NZ || c.I1 <= c.I0 || c.K1 <= c.K0 {
		return fmt.Errorf("rupture: fault region [%d,%d)x[%d,%d) outside subgrid %v",
			c.I0, c.I1, c.K0, c.K1, d)
	}
	nk, ni := c.K1-c.K0, c.I1-c.I0
	for _, f := range [][][]float64{c.Tau0, c.SigmaN} {
		if len(f) != nk {
			return fmt.Errorf("rupture: field rows %d, want %d", len(f), nk)
		}
		for _, row := range f {
			if len(row) != ni {
				return fmt.Errorf("rupture: field cols %d, want %d", len(row), ni)
			}
		}
	}
	if len(c.Friction) != nk || len(c.Friction[0]) != ni {
		return fmt.Errorf("rupture: friction field shape mismatch")
	}
	return nil
}

// Fault is the runtime state of the dynamic rupture.
type Fault struct {
	cfg  Config
	dims grid.Dims
	h    float64

	ni, nk int
	// Split along-strike velocities at fault nodes [k][i].
	vxP, vxM []float64
	// Slip history.
	Slip     []float64 // cumulative slip, m
	SlipRate []float64 // current slip rate, m/s
	PeakRate []float64 // peak slip rate, m/s
	RupTime  []float64 // first time slip rate exceeded rupture threshold; -1 if unbroken
	Traction []float64 // current total shear traction tau0 + T, Pa

	timeNow float64
}

// RuptureThreshold is the slip-rate threshold defining rupture time
// (standard SCEC benchmark convention: 1 mm/s).
const RuptureThreshold = 1e-3

// NewFault validates cfg and allocates the rupture state.
func NewFault(cfg Config, d grid.Dims, h float64) (*Fault, error) {
	if err := cfg.Validate(d); err != nil {
		return nil, err
	}
	ni, nk := cfg.I1-cfg.I0, cfg.K1-cfg.K0
	f := &Fault{
		cfg: cfg, dims: d, h: h, ni: ni, nk: nk,
		vxP: make([]float64, ni*nk), vxM: make([]float64, ni*nk),
		Slip: make([]float64, ni*nk), SlipRate: make([]float64, ni*nk),
		PeakRate: make([]float64, ni*nk), RupTime: make([]float64, ni*nk),
		Traction: make([]float64, ni*nk),
	}
	for n := range f.RupTime {
		f.RupTime[n] = -1
	}
	for n := range f.Traction {
		k, i := n/ni, n%ni
		f.Traction[n] = cfg.Tau0[k][i]
	}
	return f, nil
}

// idx maps fault-local (i,k) (already offset by I0/K0) to flat index.
func (f *Fault) idx(i, k int) int { return (k-f.cfg.K0)*f.ni + (i - f.cfg.I0) }

// UpdateVelocity replaces the solver's velocity update on the fault row:
// call it after the bulk velocity kernel each step. It recomputes vx on
// the fault plane with split-node dynamics and friction, writing the
// average back into the global field (the value off-fault stencils see).
func (f *Fault) UpdateVelocity(s *fd.State, m *medium.Medium, dt float64) {
	c := &f.cfg
	j0 := c.J0
	h := f.h
	f.timeNow += dt

	for k := c.K0; k < c.K1; k++ {
		for i := c.I0; i < c.I1; i++ {
			n := f.idx(i, k)
			rho := float64(m.Rho.At(i, j0, k))

			// Common in-plane force terms (2nd-order central at the fault).
			axx := (float64(s.XX.At(i+1, j0, k)) - float64(s.XX.At(i, j0, k))) / h
			axz := (float64(s.XZ.At(i, j0, k)) - float64(s.XZ.At(i, j0, k-1))) / h
			ac := (axx + axz) / rho

			sxyP := float64(s.XY.At(i, j0, k))   // at (i+1/2, j0+1/2, k)
			sxyM := float64(s.XY.At(i, j0-1, k)) // at (i+1/2, j0-1/2, k)

			dv := f.vxP[n] - f.vxM[n] // current slip rate
			tLock := (sxyP+sxyM)/2 + dv*rho*h/(4*dt)

			fr := c.Friction[k-c.K0][i-c.I0]
			strength := fr.Cohesion + fr.Mu(f.Slip[n])*c.SigmaN[k-c.K0][i-c.I0]
			if strength < 0 {
				strength = 0
			}
			tau0 := c.Tau0[k-c.K0][i-c.I0]
			total := tau0 + tLock
			var T float64
			if math.Abs(total) <= strength {
				T = tLock // locked (or instantaneously arresting)
			} else {
				T = math.Copysign(strength, total) - tau0
			}
			f.Traction[n] = tau0 + T

			aP := ac + (2/(rho*h))*(sxyP-T)
			aM := ac + (2/(rho*h))*(T-sxyM)
			f.vxP[n] += dt * aP
			f.vxM[n] += dt * aM

			rate := f.vxP[n] - f.vxM[n]
			// The locked update zeroes slip acceleration, not slip rate;
			// friction cannot reverse slip, so clamp sign reversals.
			if rate*dv < 0 && math.Abs(total) <= strength {
				mid := (f.vxP[n] + f.vxM[n]) / 2
				f.vxP[n], f.vxM[n] = mid, mid
				rate = 0
			}
			f.SlipRate[n] = rate
			f.Slip[n] += math.Abs(rate) * dt
			if math.Abs(rate) > f.PeakRate[n] {
				f.PeakRate[n] = math.Abs(rate)
			}
			if f.RupTime[n] < 0 && math.Abs(rate) >= RuptureThreshold {
				f.RupTime[n] = f.timeNow
			}

			// Off-fault stencils read the average of the split values.
			s.VX.Set(i, j0, k, float32((f.vxP[n]+f.vxM[n])/2))
		}
	}
}

// CorrectStress replaces the shear-stress update adjacent to the fault:
// call it after the bulk stress kernel. The sxy rows at j0 and j0-1 are
// recomputed with one-sided 2nd-order differences using the proper split
// velocity (Eq. 4b/4c).
func (f *Fault) CorrectStress(s *fd.State, m *medium.Medium, dt float64) {
	c := &f.cfg
	j0 := c.J0
	dth := float32(dt / f.h)

	for k := c.K0; k < c.K1; k++ {
		for i := c.I0; i < c.I1; i++ {
			n := f.idx(i, k)
			// Undo the bulk kernel's contribution on these two rows and
			// redo with the split values: recompute the full update from
			// the pre-update field is complex, so instead apply the
			// *difference* between split and averaged vx in the dvx/dy
			// term. The bulk kernel used avg = (vxP+vxM)/2 at j0; the
			// correct values are vxP for the j0 row and vxM for j0-1.
			avg := (f.vxP[n] + f.vxM[n]) / 2
			dP := float32(f.vxP[n] - avg)
			dM := float32(f.vxM[n] - avg)
			c1, c2 := float32(fd.C1), float32(fd.C2)

			// Each sxy row whose Dyf(vx) stencil touches the fault node
			// must see the correct split value instead of the average the
			// bulk kernel used (Eq. 4b/4c): rows j0 and j0+1 see vxP, rows
			// j0-1 and j0-2 see vxM. The correction adds
			// dt*mu*(coefficient)*(split - avg).
			s.XY.Add(i, j0, k, dth*m.MuXY.At(i, j0, k)*(-c1)*dP)
			s.XY.Add(i, j0+1, k, dth*m.MuXY.At(i, j0+1, k)*(-c2)*dP)
			s.XY.Add(i, j0-1, k, dth*m.MuXY.At(i, j0-1, k)*c1*dM)
			s.XY.Add(i, j0-2, k, dth*m.MuXY.At(i, j0-2, k)*c2*dM)
		}
	}
}

// MomentRate returns the instantaneous seismic moment rate
// sum(mu * sliprate * dA), N*m/s.
func (f *Fault) MomentRate(m *medium.Medium) float64 {
	var mr float64
	area := f.h * f.h
	for k := f.cfg.K0; k < f.cfg.K1; k++ {
		for i := f.cfg.I0; i < f.cfg.I1; i++ {
			n := f.idx(i, k)
			mr += float64(m.Mu.At(i, f.cfg.J0, k)) * math.Abs(f.SlipRate[n]) * area
		}
	}
	return mr
}

// Moment returns the cumulative seismic moment sum(mu * slip * dA), N*m.
func (f *Fault) Moment(m *medium.Medium) float64 {
	var m0 float64
	area := f.h * f.h
	for k := f.cfg.K0; k < f.cfg.K1; k++ {
		for i := f.cfg.I0; i < f.cfg.I1; i++ {
			m0 += float64(m.Mu.At(i, f.cfg.J0, k)) * f.Slip[f.idx(i, k)] * area
		}
	}
	return m0
}

// Stats summarizes the rupture for Fig 19-style reporting.
type Stats struct {
	MaxSlip, MeanSlip   float64
	MaxPeakRate         float64
	RupturedFraction    float64
	MeanRuptureVelocity float64 // m/s, from rupture-time gradients
	SupershearFraction  float64 // fraction of ruptured nodes with vr > local Vs
}

// ComputeStats derives the summary; vs is sampled from the medium on the
// fault plane.
func (f *Fault) ComputeStats(m *medium.Medium) Stats {
	var st Stats
	var slipSum float64
	nRup := 0
	for n := range f.Slip {
		if f.Slip[n] > st.MaxSlip {
			st.MaxSlip = f.Slip[n]
		}
		slipSum += f.Slip[n]
		if f.PeakRate[n] > st.MaxPeakRate {
			st.MaxPeakRate = f.PeakRate[n]
		}
		if f.RupTime[n] >= 0 {
			nRup++
		}
	}
	total := f.ni * f.nk
	st.MeanSlip = slipSum / float64(total)
	st.RupturedFraction = float64(nRup) / float64(total)

	// Rupture velocity from |grad t_r|: vr = 1/|grad|.
	var vrSum float64
	var nvr, nss int
	for k := 1; k < f.nk-1; k++ {
		for i := 1; i < f.ni-1; i++ {
			n := k*f.ni + i
			if f.RupTime[n] < 0 || f.RupTime[n-1] < 0 || f.RupTime[n+1] < 0 ||
				f.RupTime[n-f.ni] < 0 || f.RupTime[n+f.ni] < 0 {
				continue
			}
			gx := (f.RupTime[n+1] - f.RupTime[n-1]) / (2 * f.h)
			gz := (f.RupTime[n+f.ni] - f.RupTime[n-f.ni]) / (2 * f.h)
			g := math.Hypot(gx, gz)
			if g < 1e-9 {
				continue
			}
			vr := 1 / g
			vrSum += vr
			nvr++
			vsLoc := float64(m.Mu.At(f.cfg.I0+i, f.cfg.J0, f.cfg.K0+k))
			rho := float64(m.Rho.At(f.cfg.I0+i, f.cfg.J0, f.cfg.K0+k))
			vsLoc = math.Sqrt(vsLoc / rho)
			if vr > vsLoc {
				nss++
			}
		}
	}
	if nvr > 0 {
		st.MeanRuptureVelocity = vrSum / float64(nvr)
		st.SupershearFraction = float64(nss) / float64(nvr)
	}
	return st
}

// SlipRateHistoryRecorder captures per-node slip-rate time series for the
// dynamic-to-kinematic transfer (dSrcG output).
type SlipRateHistoryRecorder struct {
	Dt      float64
	Series  [][]float32 // [node][step]
	Fault   *Fault
	maxSamp int
}

// NewRecorder allocates a recorder for up to maxSteps samples.
func NewRecorder(f *Fault, dt float64, maxSteps int) *SlipRateHistoryRecorder {
	return &SlipRateHistoryRecorder{
		Dt: dt, Fault: f, maxSamp: maxSteps,
		Series: make([][]float32, len(f.SlipRate)),
	}
}

// Record appends the current slip rates.
func (r *SlipRateHistoryRecorder) Record() {
	for n, v := range r.Fault.SlipRate {
		if len(r.Series[n]) < r.maxSamp {
			r.Series[n] = append(r.Series[n], float32(math.Abs(v)))
		}
	}
}

// NodeGlobal returns the global (i, j, k) of flat node n given the
// fault-local layout.
func (r *SlipRateHistoryRecorder) NodeGlobal(n int) (i, j, k int) {
	c := &r.Fault.cfg
	return c.I0 + n%r.Fault.ni, c.J0, c.K0 + n/r.Fault.ni
}
