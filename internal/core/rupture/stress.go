package rupture

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// fft performs an in-place radix-2 Cooley–Tukey FFT; n must be a power of
// two. inverse=true applies the unscaled inverse transform (caller divides
// by n).
func fft(a []complex128, inverse bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("rupture: fft length %d not a power of two", n))
	}
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// fft2 applies fft along both axes of an nx*nz grid stored row-major
// (z rows of length nx).
func fft2(a []complex128, nx, nz int, inverse bool) {
	row := make([]complex128, nx)
	for k := 0; k < nz; k++ {
		copy(row, a[k*nx:(k+1)*nx])
		fft(row, inverse)
		copy(a[k*nx:(k+1)*nx], row)
	}
	col := make([]complex128, nz)
	for i := 0; i < nx; i++ {
		for k := 0; k < nz; k++ {
			col[k] = a[k*nx+i]
		}
		fft(col, inverse)
		for k := 0; k < nz; k++ {
			a[k*nx+i] = col[k]
		}
	}
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// VonKarman generates an ni x nk random field with a Von Kármán
// autocorrelation (Hurst exponent hurst, correlation lengths ax and az in
// meters, grid spacing h), normalized to zero mean and unit variance —
// the stochastic component of the M8 initial stress (§VII.A, 50 km / 10 km
// correlation lengths).
func VonKarman(ni, nk int, h, ax, az, hurst float64, seed int64) [][]float64 {
	px, pz := nextPow2(ni), nextPow2(nk)
	rng := rand.New(rand.NewSource(seed))
	a := make([]complex128, px*pz)
	for k := 0; k < pz; k++ {
		kz := float64(k)
		if k > pz/2 {
			kz = float64(k - pz)
		}
		kzw := 2 * math.Pi * kz / (float64(pz) * h)
		for i := 0; i < px; i++ {
			kx := float64(i)
			if i > px/2 {
				kx = float64(i - px)
			}
			kxw := 2 * math.Pi * kx / (float64(px) * h)
			// Von Kármán power spectrum ~ (1 + (k·a)^2)^-(H+1).
			k2 := kxw*kxw*ax*ax + kzw*kzw*az*az
			amp := math.Pow(1+k2, -(hurst+1)/2)
			phase := rng.Float64() * 2 * math.Pi
			a[k*px+i] = cmplx.Rect(amp, phase)
		}
	}
	a[0] = 0 // zero mean
	fft2(a, px, pz, true)

	out := make([][]float64, nk)
	var mean, ss float64
	for k := 0; k < nk; k++ {
		out[k] = make([]float64, ni)
		for i := 0; i < ni; i++ {
			v := real(a[k*px+i])
			out[k][i] = v
			mean += v
		}
	}
	n := float64(ni * nk)
	mean /= n
	for k := range out {
		for i := range out[k] {
			out[k][i] -= mean
			ss += out[k][i] * out[k][i]
		}
	}
	sd := math.Sqrt(ss / n)
	if sd == 0 {
		sd = 1
	}
	for k := range out {
		for i := range out[k] {
			out[k][i] /= sd
		}
	}
	return out
}

// StressProfileSpec builds the M8-style depth-dependent initial stress and
// friction fields (§VII.A): normal stress growing with overburden, a
// random shear-stress component accommodated between residual reloading
// and failure levels, velocity strengthening in the top 2–3 km, and a Dc
// increase toward the free surface.
type StressProfileSpec struct {
	NI, NK int     // fault extent in nodes (along strike, down dip)
	H      float64 // grid spacing, m
	DepthK func(k int) float64

	MuS, MuD float64 // base friction coefficients (0.75 / 0.5 for M8)
	Dc       float64 // base slip-weakening distance (0.3 m)
	Cohesion float64 // 1 MPa for M8

	EffectiveGamma float64 // effective overburden gradient, Pa/m (rho'*g)
	ReloadFraction float64 // position of mean stress between residual and failure
	StressRelAmp   float64 // random amplitude relative to (failure-residual)/2

	// Velocity strengthening zone: MuD > MuS above VSTop, linear
	// transition to VSBottom.
	VSTop, VSBottom float64 // m (2000, 3000 for M8)
	// Dc taper: Dc rises to DcSurface at the free surface over DcTaperDepth.
	DcSurface, DcTaperDepth float64

	// Random field parameters.
	AX, AZ, Hurst float64
	Seed          int64
}

// M8StressSpec returns the published M8 parameter set for a fault of
// ni x nk nodes at spacing h (node k at depth (k+1/2)*h... the caller's
// DepthK may override; default is k*h).
func M8StressSpec(ni, nk int, h float64) StressProfileSpec {
	return StressProfileSpec{
		NI: ni, NK: nk, H: h,
		DepthK:         func(k int) float64 { return float64(k) * h },
		MuS:            0.75,
		MuD:            0.5,
		Dc:             0.3,
		Cohesion:       1e6,
		EffectiveGamma: 10e3, // ~ (rho - rho_w) * g
		ReloadFraction: 0.55,
		StressRelAmp:   0.45,
		VSTop:          2000,
		VSBottom:       3000,
		DcSurface:      1.0,
		DcTaperDepth:   3000,
		AX:             50e3,
		AZ:             10e3,
		Hurst:          0.75,
		Seed:           1443, // the paper's SCEC contribution number
	}
}

// Build produces the Tau0, SigmaN and Friction fields for a Config.
func (sp StressProfileSpec) Build() (tau0, sigmaN [][]float64, fric [][]Friction) {
	rnd := VonKarman(sp.NI, sp.NK, sp.H, sp.AX, sp.AZ, sp.Hurst, sp.Seed)
	tau0 = make([][]float64, sp.NK)
	sigmaN = make([][]float64, sp.NK)
	fric = make([][]Friction, sp.NK)
	for k := 0; k < sp.NK; k++ {
		z := sp.DepthK(k)
		tau0[k] = make([]float64, sp.NI)
		sigmaN[k] = make([]float64, sp.NI)
		fric[k] = make([]Friction, sp.NI)

		sn := sp.EffectiveGamma * z
		if sn < sp.EffectiveGamma*sp.H/2 {
			sn = sp.EffectiveGamma * sp.H / 2 // half-cell minimum
		}

		mud := sp.MuD
		switch {
		case z <= sp.VSTop:
			// Velocity strengthening: force mud above mus (negative stress
			// drop), emulated as in the paper.
			mud = sp.MuS + 0.05
		case z < sp.VSBottom:
			f := (z - sp.VSTop) / (sp.VSBottom - sp.VSTop)
			mud = (sp.MuS+0.05)*(1-f) + sp.MuD*f
		}

		dc := sp.Dc
		if z < sp.DcTaperDepth {
			// Cosine taper raising Dc toward the surface.
			w := 0.5 * (1 + math.Cos(math.Pi*z/sp.DcTaperDepth))
			dc = sp.Dc + (sp.DcSurface-sp.Dc)*w
		}

		for i := 0; i < sp.NI; i++ {
			fric[k][i] = Friction{MuS: sp.MuS, MuD: mud, Dc: dc, Cohesion: sp.Cohesion}
			sigmaN[k][i] = sn

			failure := sp.Cohesion + sp.MuS*sn
			residual := mud * sn
			mid := residual + sp.ReloadFraction*(failure-residual)
			amp := sp.StressRelAmp * (failure - residual) / 2
			t := mid + amp*rnd[k][i]
			if t < 0 {
				t = 0
			}
			if t > failure {
				t = failure
			}
			// Taper shear stress to zero at the surface over the top 2 km.
			if z < 2000 {
				t *= z / 2000
			}
			tau0[k][i] = t
		}
	}
	return tau0, sigmaN, fric
}

// Nucleate raises tau0 above failure inside a circular patch centred at
// node (ci, ck) with radius cells — the "small stress increment near the
// nucleation patch" of §VII.A.
func Nucleate(tau0, sigmaN [][]float64, fric [][]Friction, ci, ck, radius int, excess float64) {
	for k := range tau0 {
		for i := range tau0[k] {
			di, dk := i-ci, k-ck
			if di*di+dk*dk <= radius*radius {
				failure := fric[k][i].Cohesion + fric[k][i].MuS*sigmaN[k][i]
				tau0[k][i] = failure * (1 + excess)
			}
		}
	}
}
