package rupture

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/core/boundary"
	"repro/internal/core/fd"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
)

func TestFrictionWeakening(t *testing.T) {
	f := Friction{MuS: 0.677, MuD: 0.525, Dc: 0.4}
	if f.Mu(0) != 0.677 {
		t.Errorf("Mu(0) = %g", f.Mu(0))
	}
	if f.Mu(0.4) != 0.525 || f.Mu(10) != 0.525 {
		t.Errorf("fully weakened Mu = %g", f.Mu(0.4))
	}
	mid := f.Mu(0.2)
	if math.Abs(mid-0.601) > 1e-9 {
		t.Errorf("half-weakened Mu = %g, want 0.601", mid)
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 16
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += a[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		want[k] = s
	}
	got := append([]complex128(nil), a...)
	fft(got, false)
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("fft[%d] = %v, want %v", k, got[k], want[k])
		}
	}
	// Round trip.
	fft(got, true)
	for k := range a {
		if cmplx.Abs(got[k]/complex(float64(n), 0)-a[k]) > 1e-9 {
			t.Fatalf("inverse fft round trip failed at %d", k)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fft(make([]complex128, 12), false)
}

func TestVonKarmanStatistics(t *testing.T) {
	ni, nk := 96, 48
	f := VonKarman(ni, nk, 1000, 20e3, 3e3, 0.75, 7)
	var mean, ss float64
	for k := range f {
		for i := range f[k] {
			mean += f[k][i]
			ss += f[k][i] * f[k][i]
		}
	}
	n := float64(ni * nk)
	mean /= n
	sd := math.Sqrt(ss / n)
	if math.Abs(mean) > 1e-9 {
		t.Errorf("mean = %g, want 0", mean)
	}
	if math.Abs(sd-1) > 1e-9 {
		t.Errorf("sd = %g, want 1", sd)
	}
}

func TestVonKarmanAnisotropy(t *testing.T) {
	// With ax >> az, the field must be smoother along x: the lag-L
	// autocorrelation along x exceeds that along z.
	ni, nk := 128, 128
	f := VonKarman(ni, nk, 1000, 20e3, 3e3, 0.75, 11)
	lag := 4
	var cx, cz, v float64
	for k := 0; k < nk-lag; k++ {
		for i := 0; i < ni-lag; i++ {
			cx += f[k][i] * f[k][i+lag]
			cz += f[k][i] * f[k+lag][i]
			v += f[k][i] * f[k][i]
		}
	}
	cx /= v
	cz /= v
	if !(cx > cz+0.05) {
		t.Fatalf("autocorrelation x=%g z=%g: anisotropy not expressed", cx, cz)
	}
	if cx < 0.5 {
		t.Errorf("x correlation %g suspiciously low for 20 km length", cx)
	}
}

func TestVonKarmanDeterministicBySeed(t *testing.T) {
	a := VonKarman(16, 16, 500, 5e3, 2e3, 0.5, 3)
	b := VonKarman(16, 16, 500, 5e3, 2e3, 0.5, 3)
	c := VonKarman(16, 16, 500, 5e3, 2e3, 0.5, 4)
	if a[3][4] != b[3][4] {
		t.Fatal("same seed differs")
	}
	same := true
	for k := range a {
		for i := range a[k] {
			if a[k][i] != c[k][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestConfigValidate(t *testing.T) {
	d := grid.Dims{NX: 32, NY: 16, NZ: 16}
	ni, nk := 10, 8
	mk := func() Config {
		tau := make([][]float64, nk)
		sn := make([][]float64, nk)
		fr := make([][]Friction, nk)
		for k := range tau {
			tau[k] = make([]float64, ni)
			sn[k] = make([]float64, ni)
			fr[k] = make([]Friction, ni)
		}
		return Config{J0: 8, I0: 4, I1: 14, K0: 2, K1: 10, Tau0: tau, SigmaN: sn, Friction: fr}
	}
	if err := mk().Validate(d); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c := mk()
	c.J0 = 1
	if c.Validate(d) == nil {
		t.Error("fault at edge accepted")
	}
	c = mk()
	c.I1 = 40
	if c.Validate(d) == nil {
		t.Error("region outside grid accepted")
	}
	c = mk()
	c.Tau0 = c.Tau0[:3]
	if c.Validate(d) == nil {
		t.Error("shape mismatch accepted")
	}
}

// buildTPV builds a small TPV3-like uniform-stress spontaneous rupture
// problem and returns everything needed to run it.
func buildTPV(t testing.TB, overstress bool) (*Fault, *fd.State, *medium.Medium, float64, grid.Dims) {
	t.Helper()
	d := grid.Dims{NX: 48, NY: 24, NZ: 24}
	h := 100.0
	mat := cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	m := medium.FromCVM(cvm.Homogeneous(mat), dc, dc.SubFor(0), h)

	ni, nk := 40, 18
	tau := make([][]float64, nk)
	sn := make([][]float64, nk)
	fr := make([][]Friction, nk)
	// TPV3-like stresses with Dc scaled down so the critical crack size
	// (~ mu*Dc*(tau_s-tau_d)/(tau_0-tau_d)^2 ~ 240 m) fits the 4 km test
	// fault with a 500 m nucleation patch.
	for k := 0; k < nk; k++ {
		tau[k] = make([]float64, ni)
		sn[k] = make([]float64, ni)
		fr[k] = make([]Friction, ni)
		for i := 0; i < ni; i++ {
			sn[k][i] = 120e6
			tau[k][i] = 70e6
			fr[k][i] = Friction{MuS: 0.677, MuD: 0.525, Dc: 0.02}
		}
	}
	if overstress {
		// Nucleation patch at the center.
		for k := 0; k < nk; k++ {
			for i := 0; i < ni; i++ {
				di, dk := i-ni/2, k-nk/2
				if di*di+dk*dk <= 25 {
					tau[k][i] = 84e6 // above 0.677*120+0 = 81.24 MPa
				}
			}
		}
	}
	cfg := Config{J0: 12, I0: 4, I1: 4 + ni, K0: 3, K1: 3 + nk,
		Tau0: tau, SigmaN: sn, Friction: fr}
	f, err := NewFault(cfg, d, h)
	if err != nil {
		t.Fatal(err)
	}
	dt := m.StableDt(0.45)
	return f, fd.NewState(d), m, dt, d
}

// stepRupture advances the coupled bulk + fault system by one step.
func stepRupture(f *Fault, s *fd.State, m *medium.Medium, dt float64, sp *boundary.Sponge) {
	box := fd.FullBox(s.Dims)
	fd.UpdateVelocity(s, m, dt, box, fd.Precomp, fd.Blocking{})
	f.UpdateVelocity(s, m, dt)
	fd.UpdateStress(s, m, dt, box, fd.Precomp, fd.Blocking{})
	f.CorrectStress(s, m, dt)
	if sp != nil {
		sp.Apply(s)
	}
}

func TestNoSpontaneousRuptureWithoutNucleation(t *testing.T) {
	f, s, m, dt, d := buildTPV(t, false)
	sp := boundary.NewSponge(d, 6, 0.03, boundary.AllAbsorbing())
	for n := 0; n < 100; n++ {
		stepRupture(f, s, m, dt, sp)
	}
	st := f.ComputeStats(m)
	if st.MaxSlip != 0 || st.RupturedFraction != 0 {
		t.Fatalf("fault slipped without nucleation: %+v", st)
	}
}

func TestSpontaneousRupturePropagates(t *testing.T) {
	f, s, m, dt, d := buildTPV(t, true)
	sp := boundary.NewSponge(d, 6, 0.03, boundary.AllAbsorbing())
	steps := int(2.5 / dt) // 2.5 s: the full 4 km fault at the observed vr
	for n := 0; n < steps; n++ {
		stepRupture(f, s, m, dt, sp)
	}
	st := f.ComputeStats(m)
	t.Logf("rupture stats: %+v", st)

	if st.RupturedFraction < 0.9 {
		t.Fatalf("rupture did not propagate: fraction %g", st.RupturedFraction)
	}
	if st.MaxSlip <= 0.02 {
		t.Errorf("max slip %g: expected > Dc (full weakening)", st.MaxSlip)
	}
	if st.MaxPeakRate <= 0.1 || st.MaxPeakRate > 100 {
		t.Errorf("peak slip rate %g implausible", st.MaxPeakRate)
	}

	// Causality: nucleation ruptures first, corners last.
	hyp := f.RupTime[(9)*f.ni+20] // node near the center (k=12-3, i=24-4)
	corner := f.RupTime[1*f.ni+1]
	if hyp < 0 || corner < 0 || !(hyp < corner) {
		t.Errorf("rupture times not causal: hypo %g corner %g", hyp, corner)
	}

	// Rupture velocity bounded by Vp and plausibly near Vs-scale speeds.
	vs := 3464.0
	if st.MeanRuptureVelocity <= 0.3*vs || st.MeanRuptureVelocity >= 6000 {
		t.Errorf("mean rupture velocity %g outside plausible range", st.MeanRuptureVelocity)
	}

	// Final traction on fully weakened interior nodes ~ residual strength.
	want := 0.525 * 120e6
	n := (9)*f.ni + 20
	if f.Slip[n] > 0.02 {
		got := math.Abs(f.Traction[n])
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("final traction %g, want ~%g (residual)", got, want)
		}
	}

	// Moment accounting.
	if mw := momentToMw(f.Moment(m)); mw < 5.5 || mw > 7.0 {
		t.Errorf("Mw %g implausible for a 4km x 1.8km fault", mw)
	}
}

func momentToMw(m0 float64) float64 { return (math.Log10(m0) - 9.05) / 1.5 }

func TestRecorderCapturesSlipRates(t *testing.T) {
	f, s, m, dt, _ := buildTPV(t, true)
	rec := NewRecorder(f, dt, 50)
	for n := 0; n < 50; n++ {
		stepRupture(f, s, m, dt, nil)
		rec.Record()
	}
	// The nucleation-center node must have recorded nonzero rates.
	center := (9)*f.ni + 20
	var peak float32
	for _, v := range rec.Series[center] {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		t.Fatal("recorder captured no slip at nucleation")
	}
	if len(rec.Series[center]) != 50 {
		t.Fatalf("series length %d", len(rec.Series[center]))
	}
	gi, gj, gk := rec.NodeGlobal(center)
	if gj != 12 || gi != 24 || gk != 12 {
		t.Errorf("NodeGlobal = %d,%d,%d", gi, gj, gk)
	}
}

func TestM8StressSpecBuild(t *testing.T) {
	sp := M8StressSpec(64, 32, 500)
	tau0, sn, fr := sp.Build()
	if len(tau0) != 32 || len(tau0[0]) != 64 {
		t.Fatalf("shape wrong")
	}
	// Normal stress grows with depth.
	if !(sn[31][10] > sn[5][10]) {
		t.Error("normal stress not increasing with depth")
	}
	// Velocity strengthening near the surface: MuD > MuS.
	if fr[0][0].MuD <= fr[0][0].MuS {
		t.Error("no velocity strengthening at surface")
	}
	kDeep := 31
	if fr[kDeep][0].MuD >= fr[kDeep][0].MuS {
		t.Error("deep MuD should be < MuS")
	}
	// Dc larger at surface.
	if !(fr[0][0].Dc > fr[kDeep][0].Dc) {
		t.Error("Dc not tapered at surface")
	}
	// Shear stress within physical bounds everywhere.
	for k := range tau0 {
		for i := range tau0[k] {
			failure := fr[k][i].Cohesion + fr[k][i].MuS*sn[k][i]
			if tau0[k][i] < 0 || tau0[k][i] > failure+1 {
				t.Fatalf("tau0[%d][%d]=%g outside [0,%g]", k, i, tau0[k][i], failure)
			}
		}
	}
}

func TestNucleate(t *testing.T) {
	sp := M8StressSpec(32, 16, 500)
	tau0, sn, fr := sp.Build()
	Nucleate(tau0, sn, fr, 16, 8, 2, 0.005)
	failure := fr[8][16].Cohesion + fr[8][16].MuS*sn[8][16]
	if tau0[8][16] <= failure {
		t.Fatal("nucleation patch not overstressed")
	}
	// Outside the patch untouched relative to failure.
	if tau0[0][0] > fr[0][0].Cohesion+fr[0][0].MuS*sn[0][0] {
		t.Fatal("far field overstressed")
	}
}
