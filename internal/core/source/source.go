// Package source provides kinematic earthquake sources for the wave
// propagation solver (§III.D): moment-rate time histories defined on
// sub-fault points, inserted into the staggered grid as stress increments,
// plus source-time functions, the Haskell-type kinematic rupture generator
// standing in for dSrcG, and the temporal-interpolation/low-pass transfer
// used to turn dynamic-rupture output into a kinematic source (the M8
// two-step method, §VII.A).
package source

import (
	"fmt"
	"math"

	"repro/internal/core/fd"
	"repro/internal/decomp"
)

// STF is a source-time function: moment rate (1/s) normalized so its time
// integral is 1; scale by M0 for physical moment rate.
type STF func(t float64) float64

// GaussianPulse returns a unit-area Gaussian moment-rate pulse centred at
// t0 with width sigma.
func GaussianPulse(t0, sigma float64) STF {
	a := 1 / (sigma * math.Sqrt(2*math.Pi))
	return func(t float64) float64 {
		d := (t - t0) / sigma
		return a * math.Exp(-d*d/2)
	}
}

// Triangle returns a unit-area isoceles triangle over [t0, t0+dur] — the
// classic kinematic rise function.
func Triangle(t0, dur float64) STF {
	return func(t float64) float64 {
		s := (t - t0) / dur
		switch {
		case s <= 0 || s >= 1:
			return 0
		case s < 0.5:
			return 4 * s / dur
		default:
			return 4 * (1 - s) / dur
		}
	}
}

// Brune returns the unit-area Brune (1970) far-field source pulse with
// corner frequency fc, starting at t0.
func Brune(t0, fc float64) STF {
	wc := 2 * math.Pi * fc
	return func(t float64) float64 {
		s := t - t0
		if s < 0 {
			return 0
		}
		return wc * wc * s * math.Exp(-wc*s)
	}
}

// Ricker returns a Ricker wavelet with peak frequency fc centred at t0.
// Unlike the pulses above it is zero-mean (a velocity-like wavelet); its
// absolute peak is 1.
func Ricker(t0, fc float64) STF {
	return func(t float64) float64 {
		a := math.Pi * fc * (t - t0)
		a2 := a * a
		return (1 - 2*a2) * math.Exp(-a2)
	}
}

// MomentTensor holds the six independent components in the canonical
// (xx, yy, zz, xy, xz, yz) order, unit-normalized (scaled by M0 at use).
type MomentTensor [6]float64

// StrikeSlipXY is the double couple of a vertical strike-slip fault in the
// x–z plane (slip along x, fault normal y) — the M8 geometry.
var StrikeSlipXY = MomentTensor{0, 0, 0, 1, 0, 0}

// Explosion is an isotropic source.
var Explosion = MomentTensor{1, 1, 1, 0, 0, 0}

// PointSource is an analytic moment-rate point source at a global grid
// node.
type PointSource struct {
	GI, GJ, GK int // global grid indices
	M0         float64
	Tensor     MomentTensor
	STF        STF
}

// SampledSource is a file/transfer-friendly moment-rate history on one
// sub-fault: six tensor-component rates (N*m/s) sampled at interval Dt —
// the representation dSrcG writes and PetaSrcP distributes.
type SampledSource struct {
	GI, GJ, GK int
	Dt         float64
	Rate       [][6]float32
}

// Sample converts a PointSource to a SampledSource with nt samples at dt.
func (p PointSource) Sample(dt float64, nt int) SampledSource {
	out := SampledSource{GI: p.GI, GJ: p.GJ, GK: p.GK, Dt: dt, Rate: make([][6]float32, nt)}
	for n := 0; n < nt; n++ {
		r := p.M0 * p.STF(float64(n)*dt)
		for c := 0; c < 6; c++ {
			out.Rate[n][c] = float32(r * p.Tensor[c])
		}
	}
	return out
}

// RateAt returns the linearly interpolated moment-rate tensor at time t
// (zero outside the sampled window).
func (s *SampledSource) RateAt(t float64) [6]float64 {
	var out [6]float64
	if t < 0 || len(s.Rate) == 0 {
		return out
	}
	x := t / s.Dt
	i := int(x)
	if i >= len(s.Rate)-1 {
		if i == len(s.Rate)-1 && x == float64(i) {
			for c := 0; c < 6; c++ {
				out[c] = float64(s.Rate[i][c])
			}
		}
		return out
	}
	f := x - float64(i)
	for c := 0; c < 6; c++ {
		out[c] = float64(s.Rate[i][c])*(1-f) + float64(s.Rate[i+1][c])*f
	}
	return out
}

// Moment returns the total scalar moment of the history: the integral of
// the tensor rate, reduced to a scalar via the double-couple norm
// sqrt(sum Mij^2 / 2) (counting off-diagonals twice).
func (s *SampledSource) Moment() float64 {
	var acc [6]float64
	for n := range s.Rate {
		w := 1.0
		if n == 0 || n == len(s.Rate)-1 {
			w = 0.5
		}
		for c := 0; c < 6; c++ {
			acc[c] += w * float64(s.Rate[n][c]) * s.Dt
		}
	}
	sum := acc[0]*acc[0] + acc[1]*acc[1] + acc[2]*acc[2] +
		2*(acc[3]*acc[3]+acc[4]*acc[4]+acc[5]*acc[5])
	return math.Sqrt(sum / 2)
}

// Set is a collection of sampled sources owned by one rank, with local
// indices resolved.
type Set struct {
	local []localSource
	h3    float64 // cell volume
}

type localSource struct {
	li, lj, lk int
	src        *SampledSource
}

// Localize filters the global sources to those inside sub and resolves
// their local indices. h is the grid spacing.
func Localize(all []SampledSource, sub decomp.Sub, h float64) *Set {
	return LocalizeExt(all, sub, h, [3]int{}, [3]int{})
}

// LocalizeExt is Localize with the ownership box extended by lo/hi cells
// per axis into the ghost region. The time-tiled engine recomputes ghost
// cells up to 4T-4 deep during stress stages, and a recomputed cell that
// hosts a neighbor-owned source must see the same injection the neighbor
// applies, or the recomputed value diverges from the owner's.
func LocalizeExt(all []SampledSource, sub decomp.Sub, h float64, lo, hi [3]int) *Set {
	st := &Set{h3: h * h * h}
	for i := range all {
		s := &all[i]
		li, lj, lk := s.GI-sub.OffX, s.GJ-sub.OffY, s.GK-sub.OffZ
		if li >= -lo[0] && li < sub.Local.NX+hi[0] &&
			lj >= -lo[1] && lj < sub.Local.NY+hi[1] &&
			lk >= -lo[2] && lk < sub.Local.NZ+hi[2] {
			st.local = append(st.local, localSource{li, lj, lk, s})
		}
	}
	return st
}

// Count returns the number of locally owned sub-faults.
func (st *Set) Count() int { return len(st.local) }

// Inject adds the moment-rate contributions for the step ending at time t
// into the stress field: sigma_ij -= dt * Mdot_ij(t) / V_cell, the
// standard staggered-grid moment insertion.
func (st *Set) Inject(s *fd.State, dt, t float64) {
	st.InjectRegion(s, dt, t, fd.Box{}, false)
}

// InjectRegion injects only the sources whose cell lies inside box (when
// inside is true) or outside it (when inside is false, with the zero box
// meaning "all sources"). The overlap communication schedule uses this to
// keep the per-cell operation order identical to the non-overlap models.
func (st *Set) InjectRegion(s *fd.State, dt, t float64, box fd.Box, inside bool) {
	for _, ls := range st.local {
		in := ls.li >= box.I0 && ls.li < box.I1 &&
			ls.lj >= box.J0 && ls.lj < box.J1 &&
			ls.lk >= box.K0 && ls.lk < box.K1
		if in != inside {
			continue
		}
		r := ls.src.RateAt(t)
		scale := dt / st.h3
		i, j, k := ls.li, ls.lj, ls.lk
		s.XX.Add(i, j, k, float32(-r[0]*scale))
		s.YY.Add(i, j, k, float32(-r[1]*scale))
		s.ZZ.Add(i, j, k, float32(-r[2]*scale))
		s.XY.Add(i, j, k, float32(-r[3]*scale))
		s.XZ.Add(i, j, k, float32(-r[4]*scale))
		s.YZ.Add(i, j, k, float32(-r[5]*scale))
	}
}

// Mw2M0 converts moment magnitude to seismic moment (N*m).
func Mw2M0(mw float64) float64 { return math.Pow(10, 1.5*mw+9.05) }

// M02Mw converts seismic moment (N*m) to moment magnitude.
func M02Mw(m0 float64) float64 { return (math.Log10(m0) - 9.05) / 1.5 }

// HaskellSpec describes a Haskell-type kinematic rupture on a vertical
// planar fault at grid row GJ, spanning [I0,I1) along strike and [K0,K1)
// in depth — the dSrcG scenario generator.
type HaskellSpec struct {
	GJ             int // fault plane y index
	I0, I1, K0, K1 int // extent, global indices
	HypoI, HypoK   int // hypocenter
	H              float64
	Mw             float64
	Vr             float64 // rupture speed, m/s
	RiseTime       float64
	Mu             float64 // rigidity for moment bookkeeping
	Dt             float64
	NT             int
	TaperCells     int // cosine slip taper width at fault edges
}

// Validate reports configuration errors.
func (sp HaskellSpec) Validate() error {
	if sp.I1 <= sp.I0 || sp.K1 <= sp.K0 {
		return fmt.Errorf("source: empty fault extent")
	}
	if sp.HypoI < sp.I0 || sp.HypoI >= sp.I1 || sp.HypoK < sp.K0 || sp.HypoK >= sp.K1 {
		return fmt.Errorf("source: hypocenter outside fault")
	}
	if sp.Vr <= 0 || sp.RiseTime <= 0 || sp.Dt <= 0 || sp.NT <= 0 {
		return fmt.Errorf("source: non-positive kinematic parameters")
	}
	return nil
}

// Generate builds the sub-fault moment-rate histories: rupture initiates
// at the hypocenter and spreads circularly at Vr; each sub-fault releases
// its moment with a triangle STF over RiseTime; slip is cosine-tapered at
// the fault edges and scaled so the total moment matches Mw.
func (sp HaskellSpec) Generate() ([]SampledSource, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	nx := sp.I1 - sp.I0
	nz := sp.K1 - sp.K0
	weights := make([]float64, nx*nz)
	var wsum float64
	for k := 0; k < nz; k++ {
		for i := 0; i < nx; i++ {
			w := edgeTaper(i, nx, sp.TaperCells) * edgeTaper(k, nz, sp.TaperCells)
			weights[k*nx+i] = w
			wsum += w
		}
	}
	m0 := Mw2M0(sp.Mw)
	out := make([]SampledSource, 0, nx*nz)
	for k := 0; k < nz; k++ {
		for i := 0; i < nx; i++ {
			w := weights[k*nx+i]
			if w == 0 {
				continue
			}
			di := float64(i + sp.I0 - sp.HypoI)
			dk := float64(k + sp.K0 - sp.HypoK)
			dist := math.Hypot(di, dk) * sp.H
			tRup := dist / sp.Vr
			ps := PointSource{
				GI: i + sp.I0, GJ: sp.GJ, GK: k + sp.K0,
				M0:     m0 * w / wsum,
				Tensor: StrikeSlipXY,
				STF:    Triangle(tRup, sp.RiseTime),
			}
			out = append(out, ps.Sample(sp.Dt, sp.NT))
		}
	}
	return out, nil
}

// edgeTaper is a cosine taper from 0 at the edge to 1 at depth `width`.
func edgeTaper(i, n, width int) float64 {
	if width <= 0 {
		return 1
	}
	d := i
	if n-1-i < d {
		d = n - 1 - i
	}
	if d >= width {
		return 1
	}
	return 0.5 * (1 - math.Cos(math.Pi*float64(d+1)/float64(width+1)))
}
