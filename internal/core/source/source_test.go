package source

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core/fd"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/mpi"
)

func integrate(f STF, t0, t1, dt float64) float64 {
	var s float64
	for t := t0; t < t1; t += dt {
		s += f(t) * dt
	}
	return s
}

func TestSTFUnitArea(t *testing.T) {
	cases := []struct {
		name string
		f    STF
	}{
		{"gaussian", GaussianPulse(5, 0.5)},
		{"triangle", Triangle(1, 2)},
		{"brune", Brune(0.5, 1.0)},
	}
	for _, c := range cases {
		if got := integrate(c.f, 0, 30, 1e-4); math.Abs(got-1) > 5e-3 {
			t.Errorf("%s: integral = %g, want 1", c.name, got)
		}
	}
}

func TestSTFNonNegativeAndCausal(t *testing.T) {
	b := Brune(1.0, 2.0)
	if b(0.5) != 0 {
		t.Error("brune not causal")
	}
	tr := Triangle(1, 2)
	if tr(0.9) != 0 || tr(3.1) != 0 {
		t.Error("triangle support wrong")
	}
	for x := 0.0; x < 10; x += 0.01 {
		if b(x) < 0 || tr(x) < 0 {
			t.Fatal("pulse went negative")
		}
	}
}

func TestRickerShape(t *testing.T) {
	r := Ricker(2, 1.5)
	if math.Abs(r(2)-1) > 1e-12 {
		t.Errorf("ricker peak = %g, want 1", r(2))
	}
	// Zero mean.
	if got := integrate(r, 0, 10, 1e-4); math.Abs(got) > 1e-3 {
		t.Errorf("ricker mean = %g, want ~0", got)
	}
}

func TestSampleAndRateAt(t *testing.T) {
	p := PointSource{GI: 1, GJ: 2, GK: 3, M0: 2e18, Tensor: StrikeSlipXY, STF: Triangle(0.1, 0.4)}
	s := p.Sample(0.01, 100)
	if len(s.Rate) != 100 {
		t.Fatalf("sample count %d", len(s.Rate))
	}
	// Interpolation midway between two samples.
	mid := s.RateAt(0.255)
	lo, hi := s.RateAt(0.25), s.RateAt(0.26)
	if mid[3] < math.Min(lo[3], hi[3]) || mid[3] > math.Max(lo[3], hi[3]) {
		t.Errorf("interpolated rate %g outside [%g,%g]", mid[3], lo[3], hi[3])
	}
	// Outside the window: zero.
	if r := s.RateAt(-1); r[3] != 0 {
		t.Error("negative time not zero")
	}
	if r := s.RateAt(10); r[3] != 0 {
		t.Error("past-end time not zero")
	}
	// Only the xy component is non-zero for strike-slip.
	at := s.RateAt(0.3)
	for c, v := range at {
		if c != 3 && v != 0 {
			t.Errorf("component %d = %g, want 0", c, v)
		}
	}
}

func TestMomentRecovery(t *testing.T) {
	m0 := 1.5e19
	p := PointSource{M0: m0, Tensor: StrikeSlipXY, STF: Triangle(0.2, 1.0)}
	s := p.Sample(0.005, 400)
	if got := s.Moment(); math.Abs(got-m0)/m0 > 0.01 {
		t.Errorf("moment = %g, want %g", got, m0)
	}
}

func TestMwM0RoundTrip(t *testing.T) {
	prop := func(mw8 uint8) bool {
		mw := 4 + float64(mw8%50)/10 // 4.0 .. 8.9
		return math.Abs(M02Mw(Mw2M0(mw))-mw) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	// Known anchor: Mw 8.0 ~ 1.12e21 N*m (the paper quotes 1.0e21 for M8).
	if m0 := Mw2M0(8.0); m0 < 1.0e21 || m0 > 1.3e21 {
		t.Errorf("Mw2M0(8) = %g", m0)
	}
}

func TestLocalizeAndInject(t *testing.T) {
	g := grid.Dims{NX: 16, NY: 8, NZ: 8}
	dc, err := decomp.New(g, mpi.NewCart(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	h := 100.0
	srcs := []SampledSource{
		{GI: 2, GJ: 4, GK: 4, Dt: 0.1, Rate: [][6]float32{{0, 0, 0, 10, 0, 0}, {0, 0, 0, 10, 0, 0}}},
		{GI: 12, GJ: 4, GK: 4, Dt: 0.1, Rate: [][6]float32{{0, 0, 0, 20, 0, 0}, {0, 0, 0, 20, 0, 0}}},
	}
	set0 := Localize(srcs, dc.SubFor(0), h)
	set1 := Localize(srcs, dc.SubFor(1), h)
	if set0.Count() != 1 || set1.Count() != 1 {
		t.Fatalf("localization split wrong: %d/%d", set0.Count(), set1.Count())
	}
	s := fd.NewState(dc.SubFor(0).Local)
	dt := 0.05
	set0.Inject(s, dt, 0.1)
	want := float32(-10 * dt / (h * h * h))
	if got := s.XY.At(2, 4, 4); math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("injected sxy = %g, want %g", got, want)
	}
	if s.XX.At(2, 4, 4) != 0 {
		t.Error("xx should be untouched for strike-slip")
	}
	// Rank 1's source is at local index 12-8=4.
	s1 := fd.NewState(dc.SubFor(1).Local)
	set1.Inject(s1, dt, 0.1)
	if s1.XY.At(4, 4, 4) == 0 {
		t.Error("rank-1 source not injected at local index")
	}
}

func TestHaskellValidate(t *testing.T) {
	good := HaskellSpec{GJ: 4, I0: 2, I1: 20, K0: 0, K1: 10, HypoI: 5, HypoK: 5,
		H: 100, Mw: 7, Vr: 2800, RiseTime: 1, Mu: 3e10, Dt: 0.01, NT: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := good
	bad.HypoI = 1
	if bad.Validate() == nil {
		t.Error("hypocenter outside fault accepted")
	}
	bad = good
	bad.I1 = 2
	if bad.Validate() == nil {
		t.Error("empty fault accepted")
	}
	bad = good
	bad.Vr = 0
	if bad.Validate() == nil {
		t.Error("zero rupture speed accepted")
	}
}

func TestHaskellGenerateMomentAndTiming(t *testing.T) {
	spec := HaskellSpec{GJ: 4, I0: 0, I1: 30, K0: 0, K1: 12, HypoI: 5, HypoK: 6,
		H: 200, Mw: 7.0, Vr: 2800, RiseTime: 0.8, Mu: 3e10, Dt: 0.02, NT: 600, TaperCells: 3}
	srcs, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) == 0 {
		t.Fatal("no sources generated")
	}
	// Total moment: sum of per-subfault scalar moments must equal Mw (all
	// subfaults share the same mechanism so moments add linearly).
	var total float64
	for i := range srcs {
		total += srcs[i].Moment()
	}
	want := Mw2M0(7.0)
	if math.Abs(total-want)/want > 0.02 {
		t.Errorf("total moment %g, want %g", total, want)
	}
	// Rupture causality: onset time grows with distance from hypocenter.
	onset := func(s *SampledSource) float64 {
		for n := range s.Rate {
			if s.Rate[n][3] != 0 {
				return float64(n) * s.Dt
			}
		}
		return math.Inf(1)
	}
	var near, far *SampledSource
	for i := range srcs {
		if srcs[i].GI == 5 && srcs[i].GK == 6 {
			near = &srcs[i]
		}
		if srcs[i].GI == 29 && srcs[i].GK == 6 {
			far = &srcs[i]
		}
	}
	if near == nil || far == nil {
		t.Fatal("expected subfaults missing")
	}
	tn, tf := onset(near), onset(far)
	if !(tn < tf) {
		t.Errorf("onset near=%g, far=%g: rupture not causal", tn, tf)
	}
	// Far subfault onset ~ distance/Vr.
	wantT := 24 * 200 / 2800.0
	if math.Abs(tf-wantT) > 0.3 {
		t.Errorf("far onset %g, want ~%g", tf, wantT)
	}
}

func TestEdgeTaper(t *testing.T) {
	if edgeTaper(0, 10, 0) != 1 {
		t.Error("no taper should be 1")
	}
	if edgeTaper(0, 10, 3) >= edgeTaper(1, 10, 3) {
	} else if edgeTaper(0, 10, 3) >= 1 {
		t.Error("edge not tapered")
	}
	if edgeTaper(5, 11, 3) != 1 {
		t.Error("center should be untapered")
	}
	// Symmetry.
	if math.Abs(edgeTaper(1, 20, 4)-edgeTaper(18, 20, 4)) > 1e-12 {
		t.Error("taper not symmetric")
	}
}

func TestLowPass4RemovesHighFreq(t *testing.T) {
	dt := 0.005
	n := 2000
	lo := make([]float32, n)
	mixed := make([]float32, n)
	for i := 0; i < n; i++ {
		tt := float64(i) * dt
		l := math.Sin(2 * math.Pi * 0.5 * tt) // 0.5 Hz: passband
		h := math.Sin(2 * math.Pi * 20 * tt)  // 20 Hz: stopband
		lo[i] = float32(l)
		mixed[i] = float32(l + h)
	}
	LowPass4(mixed, dt, 2.0)
	LowPass4(lo, dt, 2.0) // filter the reference too, cancelling phase delay
	// After settle-in, the filtered mixed signal should track the low
	// component closely: the 20 Hz part is ~80 dB down for 4th order at
	// 10x the corner.
	var maxDiff float64
	for i := n / 4; i < n; i++ {
		// Compare against the also-filtered low signal to cancel passband
		// phase delay.
		d := math.Abs(float64(mixed[i]) - float64(lo[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	// Phase lag at 0.5 Hz with fc=2 Hz is small but non-zero; allow 20%.
	if maxDiff > 0.2 {
		t.Errorf("low-pass output deviates %g from passband signal", maxDiff)
	}
	// Stopband: filter a pure 20 Hz tone; residual must be tiny.
	hi := make([]float32, n)
	for i := range hi {
		hi[i] = float32(math.Sin(2 * math.Pi * 20 * float64(i) * dt))
	}
	LowPass4(hi, dt, 2.0)
	var m float64
	for i := n / 4; i < n; i++ {
		if v := math.Abs(float64(hi[i])); v > m {
			m = v
		}
	}
	if m > 1e-3 {
		t.Errorf("stopband residual %g, want < 1e-3", m)
	}
}

func TestResample(t *testing.T) {
	in := []float32{0, 1, 2, 3}
	out := Resample(in, 0.1, 0.05, 7)
	want := []float32{0, 0.5, 1, 1.5, 2, 2.5, 3}
	for i := range want {
		if math.Abs(float64(out[i]-want[i])) > 1e-6 {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
	// Downsample + beyond-end behaviour.
	out2 := Resample(in, 0.1, 0.2, 4)
	if out2[0] != 0 || out2[1] != 2 {
		t.Errorf("downsample wrong: %v", out2)
	}
	if out2[3] != 0 {
		t.Errorf("beyond-end should be 0, got %g", out2[3])
	}
}

func TestTransferDynamic(t *testing.T) {
	// A smooth slip-rate pulse transfers to a moment-rate history whose
	// integral is mu*area*totalSlip.
	dtIn := 0.002
	n := 1000
	slip := make([]float32, n)
	var totalSlip float64
	for i := range slip {
		tt := float64(i) * dtIn
		v := 2.0 * math.Exp(-(tt-0.5)*(tt-0.5)/(2*0.01))
		slip[i] = float32(v)
		totalSlip += v * dtIn
	}
	mu, area := 3.3e10, 100.0*100.0
	out := TransferDynamic(3, 4, 5, slip, mu, area, dtIn, 0.004, 50, 500)
	if out.GI != 3 || out.GJ != 4 || out.GK != 5 {
		t.Fatal("indices not preserved")
	}
	var m float64
	for _, r := range out.Rate {
		m += float64(r[3]) * out.Dt
	}
	want := mu * area * totalSlip
	if math.Abs(m-want)/want > 0.02 {
		t.Errorf("transferred moment %g, want %g", m, want)
	}
}
