package source

import "math"

// LowPass4 applies a causal 4th-order Butterworth low-pass filter with
// cut-off frequency fc (Hz) to a series sampled at dt, in place — the
// filter applied to the M8 dynamic source before insertion onto the
// segmented fault (§VII.B). It is implemented as a cascade of two
// second-order sections.
func LowPass4(series []float32, dt, fc float64) {
	// Butterworth 4th order = biquads with Q = 1/(2cos(pi/8)) and
	// 1/(2cos(3pi/8)).
	for _, q := range []float64{1 / (2 * math.Cos(math.Pi/8)), 1 / (2 * math.Cos(3*math.Pi/8))} {
		biquadLowPass(series, dt, fc, q)
	}
}

// biquadLowPass runs one RBJ-cookbook low-pass biquad over the series.
func biquadLowPass(series []float32, dt, fc, q float64) {
	w0 := 2 * math.Pi * fc * dt
	cw, sw := math.Cos(w0), math.Sin(w0)
	alpha := sw / (2 * q)
	b0 := (1 - cw) / 2
	b1 := 1 - cw
	b2 := (1 - cw) / 2
	a0 := 1 + alpha
	a1 := -2 * cw
	a2 := 1 - alpha
	b0, b1, b2 = b0/a0, b1/a0, b2/a0
	a1, a2 = a1/a0, a2/a0

	var x1, x2, y1, y2 float64
	for i, xv := range series {
		x := float64(xv)
		y := b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2
		x2, x1 = x1, x
		y2, y1 = y1, y
		series[i] = float32(y)
	}
}

// Resample converts a series sampled at dtIn to dtOut by linear
// interpolation, producing nOut samples — the temporal interpolation step
// of the dynamic-to-kinematic source transfer.
func Resample(in []float32, dtIn, dtOut float64, nOut int) []float32 {
	out := make([]float32, nOut)
	for n := 0; n < nOut; n++ {
		t := float64(n) * dtOut
		x := t / dtIn
		i := int(x)
		if i >= len(in)-1 {
			if i == len(in)-1 {
				out[n] = in[i]
			}
			continue
		}
		f := float32(x - float64(i))
		out[n] = in[i]*(1-f) + in[i+1]*f
	}
	return out
}

// TransferDynamic converts dynamic-rupture slip-rate output into a
// kinematic sampled source: per sub-fault, moment rate = mu * area *
// sliprate, resampled to dtOut and low-pass filtered at fcut — the M8
// two-step method (§VII). sliprate is sampled at dtIn; area is the
// sub-fault area (h^2); the slip direction is along-strike (x), producing
// an xy double couple.
func TransferDynamic(gi, gj, gk int, sliprate []float32, mu, area, dtIn, dtOut, fcut float64, ntOut int) SampledSource {
	rate := Resample(sliprate, dtIn, dtOut, ntOut)
	LowPass4(rate, dtOut, fcut)
	out := SampledSource{GI: gi, GJ: gj, GK: gk, Dt: dtOut, Rate: make([][6]float32, ntOut)}
	for n := range rate {
		out.Rate[n][3] = float32(mu * area * float64(rate[n])) // Mxy
	}
	return out
}
