package boundary

import (
	"fmt"
	"math"

	"repro/internal/core/fd"
	"repro/internal/grid"
	"repro/internal/medium"
)

// PML implements a split-field multi-axial perfectly matched layer zone
// (§II.D). Inside the zone each wavefield component is carried as three
// directional splits phi = phi_x + phi_y + phi_z, where split s collects
// the terms of the governing equation containing s-derivatives. Each split
// is damped:
//
//	d phi_s/dt + d_s * phi_s = L_s(phi)
//
// with d_s = d(l) for the split normal to the zone face, and d_s = p*d(l)
// for the two parallel splits — the multi-axial stabilization of
// Meza-Fajardo & Papageorgiou (2008); p = 0 recovers the classic PML,
// which is unstable under strong medium gradients.
//
// The damping profile is the standard polynomial ramp
//
//	d(l) = d0 * ((l+1/2)/W)^2,  d0 = 3*Vp*ln(1/R) / (2*W*h)
//
// rising from ~0 at the interior interface to d0 at the outer boundary.
type PML struct {
	Zone  fd.Box
	Axis  grid.Axis
	Side  grid.Side
	Width int
	P     float64 // M-PML parallel damping ratio

	// split[s] holds the s-direction split of all nine components, stored
	// on a zone-sized grid (local index = global - zone origin).
	split [3]*fd.State
	// damp[l] is d(l) for depth-from-boundary l in [0, Width).
	damp []float64
}

// DefaultPMLWidth is the M8 production width (10 cells).
const DefaultPMLWidth = 10

// DefaultMPMLRatio is the multi-axial damping ratio.
const DefaultMPMLRatio = 0.1

// DefaultPMLReflection is the design reflection coefficient R.
const DefaultPMLReflection = 1e-5

// NewPML builds one zone. vpMax and h size the damping profile.
func NewPML(zone fd.Box, axis grid.Axis, side grid.Side, width int, p, rcoef, vpMax, h float64) *PML {
	if zone.Empty() || width <= 0 {
		panic(fmt.Sprintf("boundary: invalid PML zone %v width %d", zone, width))
	}
	zd := grid.Dims{NX: zone.I1 - zone.I0, NY: zone.J1 - zone.J0, NZ: zone.K1 - zone.K0}
	pm := &PML{Zone: zone, Axis: axis, Side: side, Width: width, P: p}
	for s := 0; s < 3; s++ {
		pm.split[s] = fd.NewState(zd)
	}
	d0 := 3 * vpMax * math.Log(1/rcoef) / (2 * float64(width) * h)
	pm.damp = make([]float64, width)
	for l := 0; l < width; l++ {
		x := (float64(width-l) - 0.5) / float64(width)
		pm.damp[l] = d0 * x * x
	}
	return pm
}

// depth returns the distance in cells from the inner (interior-facing)
// edge of the zone for global cell coordinate (i,j,k); the damping index
// is Width-1-depth ... expressed directly: returns the index into damp.
func (pm *PML) dampAt(i, j, k int) float64 {
	var l int
	switch pm.Axis {
	case grid.X:
		if pm.Side == grid.Low {
			l = i - pm.Zone.I0
		} else {
			l = pm.Zone.I1 - 1 - i
		}
	case grid.Y:
		if pm.Side == grid.Low {
			l = j - pm.Zone.J0
		} else {
			l = pm.Zone.J1 - 1 - j
		}
	default:
		if pm.Side == grid.Low {
			l = k - pm.Zone.K0
		} else {
			l = pm.Zone.K1 - 1 - k
		}
	}
	if l < 0 {
		l = 0
	}
	if l >= len(pm.damp) {
		l = len(pm.damp) - 1
	}
	return pm.damp[l]
}

// coeffs returns the three split-update coefficient pairs (decay, gain)
// such that phi_s' = decay_s*phi_s + gain_s*dt*T_s.
func (pm *PML) coeffs(i, j, k int, dt float64) (dec, gain [3]float32) {
	d := pm.dampAt(i, j, k)
	for s := 0; s < 3; s++ {
		ds := pm.P * d
		if grid.Axis(s) == pm.Axis {
			ds = d
		}
		den := 1 + ds*dt/2
		dec[s] = float32((1 - ds*dt/2) / den)
		gain[s] = float32(1 / den)
	}
	return
}

// UpdateVelocity advances the velocity splits in the zone and writes the
// recombined velocities back to the global state. Must be called in place
// of the interior kernel for zone cells.
func (pm *PML) UpdateVelocity(s *fd.State, m *medium.Medium, dt float64) {
	c1, c2 := float32(fd.C1), float32(fd.C2)
	dth := float32(dt / m.H)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	bx, by, bz := m.BX.Data(), m.BY.Data(), m.BZ.Data()
	dx, dy, dz := s.VX.Strides()
	z := pm.Zone

	for k := z.K0; k < z.K1; k++ {
		for j := z.J0; j < z.J1; j++ {
			for i := z.I0; i < z.I1; i++ {
				n := s.VX.Idx(i, j, k)
				li, lj, lk := i-z.I0, j-z.J0, k-z.K0
				dec, gain := pm.coeffs(i, j, k, dt)

				// Directional force terms (already scaled by dt/h and 1/rho).
				uTx := dth * bx[n] * (c1*(xx[n+dx]-xx[n]) + c2*(xx[n+2*dx]-xx[n-dx]))
				uTy := dth * bx[n] * (c1*(xy[n]-xy[n-dy]) + c2*(xy[n+dy]-xy[n-2*dy]))
				uTz := dth * bx[n] * (c1*(xz[n]-xz[n-dz]) + c2*(xz[n+dz]-xz[n-2*dz]))
				vTx := dth * by[n] * (c1*(xy[n]-xy[n-dx]) + c2*(xy[n+dx]-xy[n-2*dx]))
				vTy := dth * by[n] * (c1*(yy[n+dy]-yy[n]) + c2*(yy[n+2*dy]-yy[n-dy]))
				vTz := dth * by[n] * (c1*(yz[n]-yz[n-dz]) + c2*(yz[n+dz]-yz[n-2*dz]))
				wTx := dth * bz[n] * (c1*(xz[n]-xz[n-dx]) + c2*(xz[n+dx]-xz[n-2*dx]))
				wTy := dth * bz[n] * (c1*(yz[n]-yz[n-dy]) + c2*(yz[n+dy]-yz[n-2*dy]))
				wTz := dth * bz[n] * (c1*(zz[n+dz]-zz[n]) + c2*(zz[n+2*dz]-zz[n-dz]))

				var sum [3]float32
				for sdir := 0; sdir < 3; sdir++ {
					sp := pm.split[sdir]
					var tU, tV, tW float32
					switch sdir {
					case 0:
						tU, tV, tW = uTx, vTx, wTx
					case 1:
						tU, tV, tW = uTy, vTy, wTy
					default:
						tU, tV, tW = uTz, vTz, wTz
					}
					nu := dec[sdir]*sp.VX.At(li, lj, lk) + gain[sdir]*tU
					nv := dec[sdir]*sp.VY.At(li, lj, lk) + gain[sdir]*tV
					nw := dec[sdir]*sp.VZ.At(li, lj, lk) + gain[sdir]*tW
					sp.VX.Set(li, lj, lk, nu)
					sp.VY.Set(li, lj, lk, nv)
					sp.VZ.Set(li, lj, lk, nw)
					sum[0] += nu
					sum[1] += nv
					sum[2] += nw
				}
				u[n], v[n], w[n] = sum[0], sum[1], sum[2]
			}
		}
	}
}

// UpdateStress advances the stress splits in the zone and writes the
// recombined stresses back to the global state.
func (pm *PML) UpdateStress(s *fd.State, m *medium.Medium, dt float64) {
	c1, c2 := float32(fd.C1), float32(fd.C2)
	dth := float32(dt / m.H)
	u, v, w := s.VX.Data(), s.VY.Data(), s.VZ.Data()
	xx, yy, zz := s.XX.Data(), s.YY.Data(), s.ZZ.Data()
	xy, xz, yz := s.XY.Data(), s.XZ.Data(), s.YZ.Data()
	lam, l2m := m.Lam.Data(), m.Lam2Mu.Data()
	mxy, mxz, myz := m.MuXY.Data(), m.MuXZ.Data(), m.MuYZ.Data()
	dx, dy, dz := s.VX.Strides()
	z := pm.Zone

	for k := z.K0; k < z.K1; k++ {
		for j := z.J0; j < z.J1; j++ {
			for i := z.I0; i < z.I1; i++ {
				n := s.VX.Idx(i, j, k)
				li, lj, lk := i-z.I0, j-z.J0, k-z.K0
				dec, gain := pm.coeffs(i, j, k, dt)

				exx := dth * (c1*(u[n]-u[n-dx]) + c2*(u[n+dx]-u[n-2*dx]))
				eyy := dth * (c1*(v[n]-v[n-dy]) + c2*(v[n+dy]-v[n-2*dy]))
				ezz := dth * (c1*(w[n]-w[n-dz]) + c2*(w[n+dz]-w[n-2*dz]))
				duy := dth * (c1*(u[n+dy]-u[n]) + c2*(u[n+2*dy]-u[n-dy]))
				dvx := dth * (c1*(v[n+dx]-v[n]) + c2*(v[n+2*dx]-v[n-dx]))
				duz := dth * (c1*(u[n+dz]-u[n]) + c2*(u[n+2*dz]-u[n-dz]))
				dwx := dth * (c1*(w[n+dx]-w[n]) + c2*(w[n+2*dx]-w[n-dx]))
				dvz := dth * (c1*(v[n+dz]-v[n]) + c2*(v[n+2*dz]-v[n-dz]))
				dwy := dth * (c1*(w[n+dy]-w[n]) + c2*(w[n+2*dy]-w[n-dy]))

				// Per-direction contributions to each stress component.
				type contrib struct{ tx, ty, tz float32 }
				cXX := contrib{l2m[n] * exx, lam[n] * eyy, lam[n] * ezz}
				cYY := contrib{lam[n] * exx, l2m[n] * eyy, lam[n] * ezz}
				cZZ := contrib{lam[n] * exx, lam[n] * eyy, l2m[n] * ezz}
				cXY := contrib{mxy[n] * dvx, mxy[n] * duy, 0}
				cXZ := contrib{mxz[n] * dwx, 0, mxz[n] * duz}
				cYZ := contrib{0, myz[n] * dwy, myz[n] * dvz}

				var sXX, sYY, sZZ, sXY, sXZ, sYZ float32
				for sdir := 0; sdir < 3; sdir++ {
					sp := pm.split[sdir]
					pick := func(c contrib) float32 {
						switch sdir {
						case 0:
							return c.tx
						case 1:
							return c.ty
						default:
							return c.tz
						}
					}
					nxx := dec[sdir]*sp.XX.At(li, lj, lk) + gain[sdir]*pick(cXX)
					nyy := dec[sdir]*sp.YY.At(li, lj, lk) + gain[sdir]*pick(cYY)
					nzz := dec[sdir]*sp.ZZ.At(li, lj, lk) + gain[sdir]*pick(cZZ)
					nxy := dec[sdir]*sp.XY.At(li, lj, lk) + gain[sdir]*pick(cXY)
					nxz := dec[sdir]*sp.XZ.At(li, lj, lk) + gain[sdir]*pick(cXZ)
					nyz := dec[sdir]*sp.YZ.At(li, lj, lk) + gain[sdir]*pick(cYZ)
					sp.XX.Set(li, lj, lk, nxx)
					sp.YY.Set(li, lj, lk, nyy)
					sp.ZZ.Set(li, lj, lk, nzz)
					sp.XY.Set(li, lj, lk, nxy)
					sp.XZ.Set(li, lj, lk, nxz)
					sp.YZ.Set(li, lj, lk, nyz)
					sXX += nxx
					sYY += nyy
					sZZ += nzz
					sXY += nxy
					sXZ += nxz
					sYZ += nyz
				}
				xx[n], yy[n], zz[n] = sXX, sYY, sZZ
				xy[n], xz[n], yz[n] = sXY, sXZ, sYZ
			}
		}
	}
}

// BuildPML constructs the non-overlapping shell of PML zones for a
// single-rank (or per-rank, with faces masked to owned physical faces)
// subgrid: x zones span the full y/z extent, y zones exclude the x zones,
// z zones exclude both. Returns the zones and the remaining interior box.
func BuildPML(d grid.Dims, faces FaceSet, width int, p, rcoef, vpMax, h float64) ([]*PML, fd.Box) {
	interior := fd.FullBox(d)
	var zones []*PML
	add := func(zone fd.Box, ax grid.Axis, sd grid.Side) {
		if !zone.Empty() {
			zones = append(zones, NewPML(zone, ax, sd, width, p, rcoef, vpMax, h))
		}
	}
	if faces.XLo {
		add(fd.Box{I0: 0, I1: width, J0: 0, J1: d.NY, K0: 0, K1: d.NZ}, grid.X, grid.Low)
		interior.I0 = width
	}
	if faces.XHi {
		add(fd.Box{I0: d.NX - width, I1: d.NX, J0: 0, J1: d.NY, K0: 0, K1: d.NZ}, grid.X, grid.High)
		interior.I1 = d.NX - width
	}
	if faces.YLo {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: 0, J1: width, K0: 0, K1: d.NZ}, grid.Y, grid.Low)
		interior.J0 = width
	}
	if faces.YHi {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: d.NY - width, J1: d.NY, K0: 0, K1: d.NZ}, grid.Y, grid.High)
		interior.J1 = d.NY - width
	}
	if faces.ZLo {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: interior.J0, J1: interior.J1, K0: 0, K1: width}, grid.Z, grid.Low)
		interior.K0 = width
	}
	if faces.ZHi {
		add(fd.Box{I0: interior.I0, I1: interior.I1, J0: interior.J0, J1: interior.J1, K0: d.NZ - width, K1: d.NZ}, grid.Z, grid.High)
		interior.K1 = d.NZ - width
	}
	if interior.Empty() {
		panic(fmt.Sprintf("boundary: PML zones (width %d) consume the whole %v subgrid", width, d))
	}
	return zones, interior
}
