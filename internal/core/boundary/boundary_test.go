package boundary

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
)

func makeMedium(t testing.TB, q cvm.Querier, d grid.Dims, h float64) *medium.Medium {
	t.Helper()
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return medium.FromCVM(q, dc, dc.SubFor(0), h)
}

// exchangeAxes refreshes ghosts periodically along the given axes.
func exchangeAxes(s *fd.State, axes ...grid.Axis) {
	for _, f := range s.Fields() {
		for _, ax := range axes {
			buf := make([]float32, f.FaceLen(ax, grid.Ghost))
			f.PackFace(ax, grid.High, grid.Ghost, buf)
			f.UnpackFace(ax, grid.Low, grid.Ghost, buf)
			f.PackFace(ax, grid.Low, grid.Ghost, buf)
			f.UnpackFace(ax, grid.High, grid.Ghost, buf)
		}
	}
}

func TestSpongeTaperShape(t *testing.T) {
	sp := NewSponge(grid.Dims{NX: 50, NY: 50, NZ: 50}, DefaultSpongeWidth, DefaultSpongeAlpha, AllAbsorbing())
	for i := 1; i < sp.Width; i++ {
		if sp.taper[i] <= sp.taper[i-1] {
			t.Fatalf("taper not increasing toward interior at %d", i)
		}
	}
	if sp.taper[sp.Width-1] >= 1 {
		t.Fatal("innermost taper must be < 1")
	}
	if sp.taper[0] <= 0 || sp.taper[0] >= sp.taper[sp.Width-1] {
		t.Fatal("boundary taper must be smallest positive")
	}
}

func TestSpongeWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 0")
		}
	}()
	NewSponge(grid.Dims{NX: 8, NY: 8, NZ: 8}, 0, 0.015, FaceSet{})
}

func TestSpongeOnlyDampsSelectedFaces(t *testing.T) {
	d := grid.Dims{NX: 30, NY: 8, NZ: 8}
	sp := NewSponge(d, 5, 0.1, FaceSet{XHi: true})
	s := fd.NewState(d)
	for _, f := range s.Fields() {
		f.Fill(1)
	}
	sp.Apply(s)
	if s.VX.At(2, 4, 4) != 1 {
		t.Fatal("interior/low-x damped unexpectedly")
	}
	if s.VX.At(d.NX-1, 4, 4) >= 1 {
		t.Fatal("high-x boundary not damped")
	}
	if got := s.VX.At(d.NX-1, 4, 4); got >= s.VX.At(d.NX-3, 4, 4) {
		t.Fatalf("damping not monotone toward boundary: %g vs %g", got, s.VX.At(d.NX-3, 4, 4))
	}
}

func TestBuildPMLTilesWithoutOverlap(t *testing.T) {
	d := grid.Dims{NX: 40, NY: 36, NZ: 32}
	zones, interior := BuildPML(d, AllAbsorbing(), 8, DefaultMPMLRatio, DefaultPMLReflection, 6000, 100)
	if len(zones) != 5 { // x lo/hi, y lo/hi, z hi (top is free surface)
		t.Fatalf("zone count = %d, want 5", len(zones))
	}
	owned := make(map[[3]int]int)
	count := func(b fd.Box) {
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					owned[[3]int{i, j, k}]++
				}
			}
		}
	}
	for _, z := range zones {
		count(z.Zone)
	}
	count(interior)
	if len(owned) != d.Cells() {
		t.Fatalf("covered %d cells, want %d", len(owned), d.Cells())
	}
	for c, n := range owned {
		if n != 1 {
			t.Fatalf("cell %v owned %d times", c, n)
		}
	}
}

func TestBuildPMLPanicsWhenZonesConsumeGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildPML(grid.Dims{NX: 12, NY: 12, NZ: 12}, AllAbsorbing(), 6, 0.1, 1e-5, 6000, 100)
}

// pWaveState initializes a rightward-travelling P pulse centred at x0 (m).
func pWaveState(d grid.Dims, mat cvm.Material, h, dt, x0, sigma float64) *fd.State {
	s := fd.NewState(d)
	c := mat.Vp
	lam := mat.Rho*mat.Vp*mat.Vp - 2*mat.Rho*mat.Vs*mat.Vs
	f := func(x float64) float64 {
		dx := x - x0
		return math.Exp(-dx * dx / (2 * sigma * sigma))
	}
	g := grid.Ghost
	for k := -g; k < d.NZ+g; k++ {
		for j := -g; j < d.NY+g; j++ {
			for i := -g; i < d.NX+g; i++ {
				xv := (float64(i) + 0.5) * h // vx position
				s.VX.Set(i, j, k, float32(f(xv)))
				xs := float64(i) * h // normal stress position, t=+dt/2
				s.XX.Set(i, j, k, float32(-mat.Rho*c*f(xs-c*dt/2)))
				s.YY.Set(i, j, k, float32(-lam/c*f(xs-c*dt/2)))
				s.ZZ.Set(i, j, k, float32(-lam/c*f(xs-c*dt/2)))
			}
		}
	}
	return s
}

// velocityEnergyWindow sums vx^2 over i in [0, iMax).
func velocityEnergyWindow(s *fd.State, iMax int) float64 {
	var e float64
	for k := 0; k < s.Dims.NZ; k++ {
		for j := 0; j < s.Dims.NY; j++ {
			for i := 0; i < iMax; i++ {
				v := float64(s.VX.At(i, j, k))
				e += v * v
			}
		}
	}
	return e
}

// TestABCReflectionOrdering sends a P pulse into the high-x boundary under
// three treatments and checks the §II.D ordering: rigid boundary reflects
// nearly everything, the sponge absorbs most, the M-PML absorbs nearly all
// (PML reflection << sponge reflection).
func TestABCReflectionOrdering(t *testing.T) {
	mat := cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}
	q := cvm.Homogeneous(mat)
	nx, h := 140, 50.0
	d := grid.Dims{NX: nx, NY: 6, NZ: 6}
	m := makeMedium(t, q, d, h)
	dt := m.StableDt(0.45)
	sigma := 400.0
	x0 := 0.35 * float64(nx) * h
	// Time for the pulse to reach the boundary and any reflection to
	// return into the measurement window.
	steps := int(1.45 * float64(nx) * h / mat.Vp / dt)
	window := nx - DefaultPMLWidth - int(4*sigma/h)

	run := func(mode string) float64 {
		s := pWaveState(d, mat, h, dt, x0, sigma)
		e0 := velocityEnergyWindow(s, window)
		var zones []*PML
		interior := fd.FullBox(d)
		var sp *Sponge
		switch mode {
		case "pml":
			zones, interior = BuildPML(d, FaceSet{XHi: true}, DefaultPMLWidth,
				DefaultMPMLRatio, DefaultPMLReflection, mat.Vp, h)
		case "sponge":
			sp = NewSponge(d, DefaultSpongeWidth, DefaultSpongeAlpha, FaceSet{XHi: true})
		}
		for n := 0; n < steps; n++ {
			exchangeAxes(s, grid.Y, grid.Z)
			fd.UpdateVelocity(s, m, dt, interior, fd.Precomp, fd.Blocking{})
			for _, z := range zones {
				z.UpdateVelocity(s, m, dt)
			}
			exchangeAxes(s, grid.Y, grid.Z)
			fd.UpdateStress(s, m, dt, interior, fd.Precomp, fd.Blocking{})
			for _, z := range zones {
				z.UpdateStress(s, m, dt)
			}
			if sp != nil {
				sp.Apply(s)
			}
		}
		return velocityEnergyWindow(s, window) / e0
	}

	rigid := run("rigid")
	sponge := run("sponge")
	pml := run("pml")
	t.Logf("residual energy fractions: rigid=%.4f sponge=%.4f pml=%.6f", rigid, sponge, pml)
	if rigid < 0.5 {
		t.Errorf("rigid boundary lost energy: %g (test geometry suspect)", rigid)
	}
	// At normal incidence both ABCs absorb well (the sponge's weakness is
	// grazing incidence and long wavelengths); require both to beat the
	// rigid wall by orders of magnitude at their production widths.
	if sponge > 0.3 {
		t.Errorf("sponge residual %g, want < 0.3", sponge)
	}
	if pml > 0.02 {
		t.Errorf("PML residual %g, want < 0.02", pml)
	}
}

// TestMPMLStableLongRun drives a pulse into a corner PML region in a
// strongly layered medium and checks no blow-up over a long run (the
// multi-axial damping term is what keeps this stable, §II.D).
func TestMPMLStableLongRun(t *testing.T) {
	d := grid.Dims{NX: 48, NY: 48, NZ: 32}
	m := makeMedium(t, cvm.HardRock(), d, 200)
	dt := m.StableDt(0.45)
	zones, interior := BuildPML(d, AllAbsorbing(), 8, DefaultMPMLRatio, DefaultPMLReflection, m.MaxVp, 200)
	fs := NewFreeSurface(d)

	s := fd.NewState(d)
	s.VZ.Set(24, 24, 10, 1) // impulsive point source
	for n := 0; n < 600; n++ {
		fd.UpdateVelocity(s, m, dt, interior, fd.Precomp, fd.Blocking{})
		for _, z := range zones {
			z.UpdateVelocity(s, m, dt)
		}
		fs.ApplyVelocity(s, m)
		fd.UpdateStress(s, m, dt, interior, fd.Precomp, fd.Blocking{})
		for _, z := range zones {
			z.UpdateStress(s, m, dt)
		}
		fs.ApplyStress(s)
	}
	e := s.VX.SumSq() + s.VY.SumSq() + s.VZ.SumSq()
	if math.IsNaN(e) || e > 1 {
		t.Fatalf("M-PML run unstable or not absorbing: energy %g (impulse should have left)", e)
	}
}

func TestFreeSurfaceStressImages(t *testing.T) {
	d := grid.Dims{NX: 8, NY: 8, NZ: 8}
	fs := NewFreeSurface(d)
	s := fd.NewState(d)
	s.ZZ.Set(3, 3, 0, 2)
	s.ZZ.Set(3, 3, 1, 4)
	s.XZ.Set(3, 3, 0, 6)
	s.YZ.Set(3, 3, 0, 8)
	fs.ApplyStress(s)
	if s.ZZ.At(3, 3, -1) != -2 || s.ZZ.At(3, 3, -2) != -4 {
		t.Errorf("szz images wrong: %g %g", s.ZZ.At(3, 3, -1), s.ZZ.At(3, 3, -2))
	}
	if s.XZ.At(3, 3, -1) != 0 || s.XZ.At(3, 3, -2) != -6 {
		t.Errorf("sxz images wrong")
	}
	if s.YZ.At(3, 3, -1) != 0 || s.YZ.At(3, 3, -2) != -8 {
		t.Errorf("syz images wrong")
	}
}

// TestFreeSurfaceReflectionDoubling: a plane P wave incident vertically on
// the free surface reflects with velocity doubling at the surface and full
// amplitude on return (free-surface reflection coefficient -1 for stress,
// +1 for velocity).
func TestFreeSurfaceReflection(t *testing.T) {
	mat := cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}
	q := cvm.Homogeneous(mat)
	nz, h := 200, 50.0
	d := grid.Dims{NX: 6, NY: 6, NZ: nz}
	m := makeMedium(t, q, d, h)
	dt := m.StableDt(0.45)
	fs := NewFreeSurface(d)

	sigma := 400.0
	z0 := 0.4 * float64(nz) * h
	f := func(z float64) float64 {
		dz := z - z0
		return math.Exp(-dz * dz / (2 * sigma * sigma))
	}
	// Upward (toward z low, the surface): w = f(z + vp t), szz = rho*vp*f.
	c := mat.Vp
	lam := mat.Rho*mat.Vp*mat.Vp - 2*mat.Rho*mat.Vs*mat.Vs
	s := fd.NewState(d)
	g := grid.Ghost
	for k := -g; k < d.NZ+g; k++ {
		for j := -g; j < d.NY+g; j++ {
			for i := -g; i < d.NX+g; i++ {
				zw := (float64(k) + 0.5) * h // w position
				s.VZ.Set(i, j, k, float32(f(zw)))
				zs := float64(k) * h // normal stress, t=+dt/2
				s.ZZ.Set(i, j, k, float32(mat.Rho*c*f(zs+c*dt/2)))
				s.XX.Set(i, j, k, float32(lam/c*f(zs+c*dt/2)))
				s.YY.Set(i, j, k, float32(lam/c*f(zs+c*dt/2)))
			}
		}
	}

	peak0 := s.VZ.MaxAbs()
	box := fd.FullBox(d)
	// Travel time to the surface and back to z0.
	total := int((2 * z0) / c / dt)
	var surfMax float32
	for n := 0; n < total; n++ {
		exchangeAxes(s, grid.X, grid.Y)
		fd.UpdateVelocity(s, m, dt, box, fd.Precomp, fd.Blocking{})
		fs.ApplyVelocity(s, m)
		exchangeAxes(s, grid.X, grid.Y)
		fd.UpdateStress(s, m, dt, box, fd.Precomp, fd.Blocking{})
		fs.ApplyStress(s)
		if v := abs32(s.VZ.At(3, 3, 0)); v > surfMax {
			surfMax = v
		}
	}
	// (a) velocity doubling at the surface;
	if surfMax < 1.8*peak0 || surfMax > 2.2*peak0 {
		t.Errorf("surface peak %g, want ~2x incident %g", surfMax, peak0)
	}
	// (b) reflected pulse retains amplitude near z0 (within 10%: some
	// spread is expected from dispersion and the 2nd-order images).
	var reflPeak float32
	for k := int(z0/h) - 20; k < int(z0/h)+20; k++ {
		if v := abs32(s.VZ.At(3, 3, k)); v > reflPeak {
			reflPeak = v
		}
	}
	if reflPeak < 0.9*peak0 || reflPeak > 1.1*peak0 {
		t.Errorf("reflected peak %g, want ~%g", reflPeak, peak0)
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// TestClassicPMLUnstableMPMLStable demonstrates the §II.D claim that
// motivated the multi-axial PML: under strong media gradients inside the
// boundary zones, the classic split-field PML (parallel damping ratio
// p = 0) is exponentially unstable, while the M-PML (p = 0.1) remains
// stable and absorbing (Meza-Fajardo & Papageorgiou 2008).
func TestClassicPMLUnstableMPMLStable(t *testing.T) {
	if testing.Short() {
		t.Skip("3000-step instability demonstration; skipped in -short")
	}
	d := grid.Dims{NX: 40, NY: 40, NZ: 32}
	h := 100.0
	q, err := cvm.NewLayered(
		[]float64{0, 800, 1600},
		[]cvm.Material{
			{Vp: 1200, Vs: 500, Rho: 1800},
			{Vp: 3500, Vs: 2000, Rho: 2400},
			{Vp: 6500, Vs: 3750, Rho: 2800},
		})
	if err != nil {
		t.Fatal(err)
	}
	m := makeMedium(t, q, d, h)
	dt := m.StableDt(0.45)

	run := func(p float64) float64 {
		zones, interior := BuildPML(d, AllAbsorbing(), 8, p, DefaultPMLReflection, m.MaxVp, h)
		s := fd.NewState(d)
		s.VZ.Set(20, 20, 8, 1)
		fsf := NewFreeSurface(d)
		for n := 0; n < 3000; n++ {
			fd.UpdateVelocity(s, m, dt, interior, fd.Precomp, fd.Blocking{})
			for _, z := range zones {
				z.UpdateVelocity(s, m, dt)
			}
			fsf.ApplyVelocity(s, m)
			fd.UpdateStress(s, m, dt, interior, fd.Precomp, fd.Blocking{})
			for _, z := range zones {
				z.UpdateStress(s, m, dt)
			}
			fsf.ApplyStress(s)
		}
		return s.VX.SumSq() + s.VY.SumSq() + s.VZ.SumSq()
	}

	classic := run(0)
	mpml := run(DefaultMPMLRatio)
	t.Logf("velocity energy after 3000 steps: classic PML %.3e, M-PML %.3e", classic, mpml)
	if !(classic > 100*mpml) || classic < 1 {
		t.Errorf("classic PML did not go unstable (E=%g); the M-PML motivation should reproduce", classic)
	}
	if mpml > 0.1 {
		t.Errorf("M-PML energy %g: should have absorbed the impulse", mpml)
	}
}

// ApplyPool must reproduce Apply bit-exactly: planes are disjoint rows of
// the padded arrays, so scheduling cannot change the arithmetic.
func TestSpongeApplyPoolBitIdentical(t *testing.T) {
	d := grid.Dims{NX: 18, NY: 13, NZ: 11}
	fill := func() *fd.State {
		s := fd.NewState(d)
		for fi, f := range s.Fields() {
			data := f.Data()
			for n := range data {
				data[n] = float32(fi+1) * float32(n%97-48)
			}
		}
		return s
	}
	sp := NewSpongeGlobal(d, grid.Dims{NX: 36, NY: 13, NZ: 11}, [3]int{18, 0, 0},
		6, 0.1, AllAbsorbing())
	ref := fill()
	sp.Apply(ref)
	for _, threads := range []int{2, 4, 9} {
		p := sched.NewPool(threads)
		s := fill()
		sp.ApplyPool(s, p)
		p.Close()
		for fi, f := range s.Fields() {
			a, b := f.Data(), ref.Fields()[fi].Data()
			for n := range a {
				if a[n] != b[n] {
					t.Fatalf("threads=%d field %d idx %d: %g != %g", threads, fi, n, a[n], b[n])
				}
			}
		}
	}
	// Uniform fast path: a subgrid far from every absorbing zone is left
	// untouched without visiting any plane.
	far := NewSpongeGlobal(grid.Dims{NX: 4, NY: 4, NZ: 4}, grid.Dims{NX: 100, NY: 100, NZ: 100},
		[3]int{48, 48, 48}, 5, 0.1, AllAbsorbing())
	s := fill2(grid.Dims{NX: 4, NY: 4, NZ: 4})
	before := append([]float32(nil), s.VX.Data()...)
	far.ApplyPool(s, nil)
	for n := range before {
		if s.VX.Data()[n] != before[n] {
			t.Fatal("interior subgrid modified")
		}
	}
}

func fill2(d grid.Dims) *fd.State {
	s := fd.NewState(d)
	for _, f := range s.Fields() {
		data := f.Data()
		for n := range data {
			data[n] = float32(n%13) + 1
		}
	}
	return s
}

// ApplySurfaceFused must damp exactly like ApplyPool and call the surface
// hook once per interior row every step — including on subgrids the
// uniform fast path would otherwise skip entirely.
func TestSpongeApplySurfaceFusedBitIdentical(t *testing.T) {
	d := grid.Dims{NX: 18, NY: 13, NZ: 11}
	fill := func() *fd.State {
		s := fd.NewState(d)
		for fi, f := range s.Fields() {
			data := f.Data()
			for n := range data {
				data[n] = float32(fi+1) * float32(n%89-44)
			}
		}
		return s
	}
	sp := NewSpongeGlobal(d, grid.Dims{NX: 36, NY: 13, NZ: 11}, [3]int{18, 0, 0},
		6, 0.1, AllAbsorbing())
	ref := fill()
	sp.Apply(ref)
	for _, threads := range []int{1, 3, 8} {
		p := sched.NewPool(threads)
		s := fill()
		var mu sync.Mutex
		seen := make(map[int]int)
		sp.ApplySurfaceFused(s, p, func(j int) {
			mu.Lock()
			seen[j]++
			mu.Unlock()
		})
		p.Close()
		for fi, f := range s.Fields() {
			a, b := f.Data(), ref.Fields()[fi].Data()
			for n := range a {
				if a[n] != b[n] {
					t.Fatalf("threads=%d field %d idx %d: %g != %g", threads, fi, n, a[n], b[n])
				}
			}
		}
		if len(seen) != d.NY {
			t.Fatalf("threads=%d: surface hook saw %d rows, want %d", threads, len(seen), d.NY)
		}
		for j, n := range seen {
			if j < 0 || j >= d.NY || n != 1 {
				t.Fatalf("threads=%d: row %d visited %d times", threads, j, n)
			}
		}
	}

	// Uniform fast path: no damping, but the surface hook still runs for
	// every row (the PGV fold must happen every step).
	far := NewSpongeGlobal(grid.Dims{NX: 4, NY: 4, NZ: 4}, grid.Dims{NX: 100, NY: 100, NZ: 100},
		[3]int{48, 48, 48}, 5, 0.1, AllAbsorbing())
	s := fill2(grid.Dims{NX: 4, NY: 4, NZ: 4})
	before := append([]float32(nil), s.VX.Data()...)
	rows := 0
	far.ApplySurfaceFused(s, nil, func(j int) { rows++ })
	if rows != 4 {
		t.Fatalf("uniform path ran surface hook for %d rows, want 4", rows)
	}
	for n := range before {
		if s.VX.Data()[n] != before[n] {
			t.Fatal("uniform-path subgrid modified")
		}
	}
}
