// Package boundary implements the external boundary conditions of AWP-ODC
// (§II.D–E): the FS2 zero-stress free surface at the top of the model, and
// two absorbing boundary conditions for the sides and bottom — simple
// sponge layers (Cerjan) and split-field multi-axial perfectly matched
// layers (M-PML).
package boundary

import (
	"repro/internal/core/fd"
	"repro/internal/grid"
	"repro/internal/medium"
)

// FaceSet selects which physical domain faces a condition applies to.
type FaceSet struct {
	XLo, XHi, YLo, YHi, ZLo, ZHi bool
}

// AllAbsorbing returns the M8 configuration: absorbing on the four sides
// and the bottom, free surface (not absorbing) on top (z low).
func AllAbsorbing() FaceSet {
	return FaceSet{XLo: true, XHi: true, YLo: true, YHi: true, ZLo: false, ZHi: true}
}

// FreeSurface implements the FS2 planar free-surface condition
// (Gottschammer & Olsen 2001): the zero-stress surface is located at the
// vertical level of the sxz and syz stresses, half a cell above the first
// normal-stress plane (k = -1/2 in local indices). Stress ghosts above the
// surface are antisymmetric images; velocity ghosts are mirrored, with the
// vertical velocity image enforcing the szz = 0 traction condition.
type FreeSurface struct {
	// Local subgrid dims this instance serves (the rank must own the z-low
	// face of the physical domain).
	Dims grid.Dims
}

// NewFreeSurface returns the FS2 condition for a subgrid.
func NewFreeSurface(d grid.Dims) *FreeSurface { return &FreeSurface{Dims: d} }

// ApplyStress writes the antisymmetric stress images above the surface.
// Call after every stress update.
func (fs *FreeSurface) ApplyStress(s *fd.State) {
	d := fs.Dims
	fs.ApplyStressBox(s, -grid.Ghost, d.NX+grid.Ghost, -grid.Ghost, d.NY+grid.Ghost)
}

// ApplyStressBox writes the stress images over the horizontal window
// [i0,i1)x[j0,j1), which may extend into the ghost region. It is the
// windowed form used by the time-tiled engine, where each step of a
// super-step refreshes images over exactly the region whose surface
// stresses it just recomputed.
func (fs *FreeSurface) ApplyStressBox(s *fd.State, i0, i1, j0, j1 int) {
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			// szz at integer levels: antisymmetric about k=-1/2.
			s.ZZ.Set(i, j, -1, -s.ZZ.At(i, j, 0))
			s.ZZ.Set(i, j, -2, -s.ZZ.At(i, j, 1))
			// sxz, syz at half levels: the k=-1 node lies exactly on the
			// surface (zero), the k=-2 node images -value(k=0).
			s.XZ.Set(i, j, -1, 0)
			s.XZ.Set(i, j, -2, -s.XZ.At(i, j, 0))
			s.YZ.Set(i, j, -1, 0)
			s.YZ.Set(i, j, -2, -s.YZ.At(i, j, 0))
		}
	}
}

// ApplyVelocity writes the velocity ghost images above the surface. Call
// after every velocity update. Horizontal velocities are mirrored
// (d/dz -> 0 at the surface); the vertical velocity image enforces the
// zero normal traction: (lam+2mu) dw/dz = -lam (du/dx + dv/dy).
func (fs *FreeSurface) ApplyVelocity(s *fd.State, m *medium.Medium) {
	d := fs.Dims
	g := grid.Ghost
	fs.ApplyVelocityBox(s, m, -g+1, d.NX+g-1, -g+1, d.NY+g-1)
}

// ApplyVelocityBox writes the velocity images over the horizontal window
// [i0,i1)x[j0,j1); the window may extend into the ghost region but the
// caller must guarantee velocities at (i0-1, j0-1) are valid (the vz image
// reads one node below the window on both horizontal axes).
func (fs *FreeSurface) ApplyVelocityBox(s *fd.State, m *medium.Medium, i0, i1, j0, j1 int) {
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			s.VX.Set(i, j, -1, s.VX.At(i, j, 0))
			s.VX.Set(i, j, -2, s.VX.At(i, j, 1))
			s.VY.Set(i, j, -1, s.VY.At(i, j, 0))
			s.VY.Set(i, j, -2, s.VY.At(i, j, 1))

			lam := m.Lam.At(i, j, 0)
			l2m := m.Lam2Mu.At(i, j, 0)
			// 2nd-order horizontal divergence at the surface node (the h
			// factors cancel against the dz discretization).
			div := (s.VX.At(i, j, 0) - s.VX.At(i-1, j, 0)) +
				(s.VY.At(i, j, 0) - s.VY.At(i, j-1, 0))
			w0 := s.VZ.At(i, j, 0)
			wm1 := w0 + lam/l2m*div
			s.VZ.Set(i, j, -1, wm1)
			s.VZ.Set(i, j, -2, 2*wm1-w0)
		}
	}
}
