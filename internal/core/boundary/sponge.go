package boundary

import (
	"fmt"
	"math"

	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/grid"
)

// Sponge implements the Cerjan et al. (1985) sponge-layer ABCs (§II.D):
// inside a layer of Width cells along each absorbing face, every wavefield
// component is multiplied per step by a taper
//
//	g(d) = exp(-(Alpha * (Width - d))^2)
//
// where d is the distance in cells from the physical domain boundary. The
// sponge is unconditionally stable but absorbs less effectively than PML —
// the fallback AWP-ODC uses when split-field PMLs go unstable on strong
// media gradients.
//
// The taper is defined in global coordinates and applied to ghost cells as
// well, so that in a decomposed run every rank damps exactly the same
// physical cells (including its copies of neighbor cells) and the result
// is independent of the decomposition and of where in the step the damping
// runs relative to the halo exchange.
type Sponge struct {
	Local  grid.Dims
	Global grid.Dims
	Off    [3]int // global index of local (0,0,0)
	Width  int
	Alpha  float64
	Faces  FaceSet // faces of the *global* domain that absorb

	taper []float32 // taper[d] for d in [0, Width)
}

// DefaultSpongeWidth and DefaultSpongeAlpha are the classic Cerjan tuning.
const (
	DefaultSpongeWidth = 20
	DefaultSpongeAlpha = 0.015
)

// NewSponge builds a single-rank sponge (local == global).
func NewSponge(d grid.Dims, width int, alpha float64, faces FaceSet) *Sponge {
	return NewSpongeGlobal(d, d, [3]int{}, width, alpha, faces)
}

// NewSpongeGlobal builds a sponge for one rank's subgrid of a decomposed
// global domain. faces describes the absorbing faces of the global domain;
// the rank applies whatever part of the taper zone intersects its padded
// subgrid.
func NewSpongeGlobal(local, global grid.Dims, off [3]int, width int, alpha float64, faces FaceSet) *Sponge {
	if width <= 0 {
		panic(fmt.Sprintf("boundary: invalid sponge width %d", width))
	}
	sp := &Sponge{Local: local, Global: global, Off: off, Width: width, Alpha: alpha, Faces: faces}
	sp.taper = make([]float32, width)
	for dd := 0; dd < width; dd++ {
		x := alpha * float64(width-dd)
		sp.taper[dd] = float32(math.Exp(-x * x))
	}
	return sp
}

// factorAxis returns the taper for global index g along an axis of n
// global cells with the given absorbing sides, or 1 outside the zones.
func (sp *Sponge) factorAxis(g, n int, lo, hi bool) float32 {
	if lo && g < sp.Width {
		d := g
		if d < 0 {
			d = 0
		}
		return sp.taper[d]
	}
	if hi && g >= n-sp.Width {
		d := n - 1 - g
		if d < 0 {
			d = 0
		}
		return sp.taper[d]
	}
	return 1
}

// Apply damps all nine components in the sponge zones, ghost cells
// included. Call once per time step, after the stress exchange.
func (sp *Sponge) Apply(s *fd.State) { sp.ApplyPool(s, nil) }

// ApplyPool is Apply with the per-field k-planes run as a work queue on
// the persistent pool (nil or serial pool: inline). Planes are disjoint
// rows of the padded arrays, so the parallel form is race-free and
// bit-identical to the serial one.
func (sp *Sponge) ApplyPool(s *fd.State, p *sched.Pool) {
	g := grid.Ghost
	l := sp.Local
	fx, fy, fz, uniform := sp.factors()
	if uniform {
		return // subgrid nowhere near an absorbing zone
	}
	fields := s.Fields()
	nz := l.NZ + 2*g
	p.ForEachN(len(fields)*nz, func(idx int) {
		f := fields[idx/nz]
		k := idx%nz - g
		sp.applyPlane(f, k, fx, fy, fz)
	})
}

// ApplyBoxFields damps the given fields over box — which may extend into
// the ghost region, as deep as the fields' ghost width — using the same
// global-coordinate taper as Apply. It is the windowed form used by the
// time-tiled engine, where each leapfrog step inside a super-step damps
// only the skewed window it just updated. Planes of distinct (field, k)
// pairs are disjoint, so the pooled form is race-free and bit-identical
// to a serial sweep.
func (sp *Sponge) ApplyBoxFields(fields []*grid.Field3, box fd.Box, p *sched.Pool) {
	if len(fields) == 0 || box.Empty() {
		return
	}
	gw := fields[0].G()
	fx, fy, fz, uniform := sp.factorsG(gw)
	if uniform {
		return
	}
	nk := box.K1 - box.K0
	w := box.I1 - box.I0
	p.ForEachN(len(fields)*nk, func(idx int) {
		f := fields[idx/nk]
		k := box.K0 + idx%nk
		zk := fz[k+gw]
		for j := box.J0; j < box.J1; j++ {
			fyz := fy[j+gw] * zk
			if fyz == 1 && !sp.Faces.XLo && !sp.Faces.XHi {
				continue
			}
			base := f.Idx(box.I0, j, k)
			row := f.Data()[base : base+w]
			for i := range row {
				t := fx[box.I0+i+gw] * fyz
				if t != 1 {
					row[i] *= t
				}
			}
		}
	})
}

// factors precomputes the per-axis taper over the padded local range;
// uniform reports that every factor is 1 (nothing to damp).
func (sp *Sponge) factors() (fx, fy, fz []float32, uniform bool) {
	return sp.factorsG(grid.Ghost)
}

// factorsG is factors with a caller-chosen ghost width (the time-tiled
// engine damps recomputed extension cells up to 4T deep).
func (sp *Sponge) factorsG(g int) (fx, fy, fz []float32, uniform bool) {
	l := sp.Local
	fx = make([]float32, l.NX+2*g)
	fy = make([]float32, l.NY+2*g)
	fz = make([]float32, l.NZ+2*g)
	uniform = true
	for i := range fx {
		gi := clampIdx(sp.Off[0]+i-g, sp.Global.NX)
		fx[i] = sp.factorAxis(gi, sp.Global.NX, sp.Faces.XLo, sp.Faces.XHi)
		if fx[i] != 1 {
			uniform = false
		}
	}
	for j := range fy {
		gj := clampIdx(sp.Off[1]+j-g, sp.Global.NY)
		fy[j] = sp.factorAxis(gj, sp.Global.NY, sp.Faces.YLo, sp.Faces.YHi)
		if fy[j] != 1 {
			uniform = false
		}
	}
	for k := range fz {
		gk := clampIdx(sp.Off[2]+k-g, sp.Global.NZ)
		fz[k] = sp.factorAxis(gk, sp.Global.NZ, sp.Faces.ZLo, sp.Faces.ZHi)
		if fz[k] != 1 {
			uniform = false
		}
	}
	return fx, fy, fz, uniform
}

// ApplySurfaceFused is ApplyPool with the surface-velocity work fused in:
// for each interior surface row j, one work item damps row (j, k=0) of the
// three velocity components and then calls surface(j) — the solver's PGV
// fold — so the row is damped, folded, and still warm in cache, instead of
// being re-streamed by a separate pass after the sponge. surface must not
// be nil. The velocity k=0 plane items damp only their ghost-j rows; every
// other (field, plane) item is unchanged. Work items touch disjoint rows,
// so the fusion is race-free and the damped values are bit-identical to
// ApplyPool. When the subgrid is nowhere near an absorbing zone the damping
// is skipped but the surface rows still run (the fold must happen every
// step).
func (sp *Sponge) ApplySurfaceFused(s *fd.State, p *sched.Pool, surface func(j int)) {
	g := grid.Ghost
	l := sp.Local
	fx, fy, fz, uniform := sp.factors()
	if uniform {
		p.ForEachN(l.NY, surface)
		return
	}
	fields := s.Fields()
	vels := s.Velocities()
	nz := l.NZ + 2*g
	nplane := len(fields) * nz
	p.ForEachN(nplane+l.NY, func(idx int) {
		if idx < nplane {
			fi, k := idx/nz, idx%nz-g
			if k == 0 && fi < len(vels) {
				// Interior rows of the velocity surface planes belong to
				// the fused items below; keep only the ghost-j rows here.
				for j := -g; j < 0; j++ {
					sp.applyRow(fields[fi], j, 0, fx, fy[j+g]*fz[g])
				}
				for j := l.NY; j < l.NY+g; j++ {
					sp.applyRow(fields[fi], j, 0, fx, fy[j+g]*fz[g])
				}
				return
			}
			sp.applyPlane(fields[fi], k, fx, fy, fz)
			return
		}
		j := idx - nplane
		fyz := fy[j+g] * fz[g]
		for _, f := range vels {
			sp.applyRow(f, j, 0, fx, fyz)
		}
		surface(j)
	})
}

// applyPlane damps one padded k-plane of one field through row slices.
func (sp *Sponge) applyPlane(f *grid.Field3, k int, fx, fy, fz []float32) {
	g := grid.Ghost
	l := sp.Local
	zk := fz[k+g]
	for j := -g; j < l.NY+g; j++ {
		sp.applyRow(f, j, k, fx, fy[j+g]*zk)
	}
}

// applyRow damps one padded x-row of one field; fyz is the combined y/z
// taper for the row.
func (sp *Sponge) applyRow(f *grid.Field3, j, k int, fx []float32, fyz float32) {
	if fyz == 1 && !sp.Faces.XLo && !sp.Faces.XHi {
		return
	}
	g := grid.Ghost
	base := f.Idx(-g, j, k)
	row := f.Data()[base : base+sp.Local.NX+2*g]
	for i := range row {
		t := fx[i] * fyz
		if t != 1 {
			row[i] *= t
		}
	}
}

// clampIdx clamps a (possibly ghost) global index into [0, n).
func clampIdx(g, n int) int {
	if g < 0 {
		return 0
	}
	if g >= n {
		return n - 1
	}
	return g
}
