package agg

import (
	"bytes"
	"testing"

	"repro/internal/mpiio"
	"repro/internal/pfs"
)

// FuzzCoalesceWriteIdentity drives random non-overlapping segment
// layouts through both write paths — one WriteAt per segment (the naive
// per-rank path) and one WriteAt per coalesced run (the aggregator
// path) — and requires the resulting files to be byte-identical,
// zero-filled gaps included. It also pins the Coalesce invariants:
// offsets strictly increasing, no two mergeable neighbors left, total
// length preserved.
func FuzzCoalesceWriteIdentity(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6}, uint8(7))
	f.Add([]byte{0, 8, 0, 8, 0, 8}, uint8(0)) // fully adjacent: one run
	f.Add([]byte{200, 1}, uint8(255))
	f.Fuzz(func(t *testing.T, layout []byte, fill uint8) {
		// Alternating gap/run lengths; gaps of zero make runs adjacent,
		// which is exactly what Coalesce must merge.
		var segs []mpiio.Segment
		off := 0
		for idx := 0; idx < len(layout); idx += 2 {
			off += int(layout[idx] % 17)
			if idx+1 >= len(layout) {
				break
			}
			if n := int(layout[idx+1] % 17); n > 0 {
				segs = append(segs, mpiio.Segment{Off: off, Len: n})
				off += n
			}
		}
		if len(segs) == 0 {
			return
		}
		data := make([]byte, mpiio.TotalLen(segs))
		for i := range data {
			data[i] = fill + byte(i*37)
		}

		cfg := pfs.Config{OSTs: 4, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 8}
		fsys := pfs.New(cfg)

		// Naive path: one write per segment.
		p := 0
		for _, s := range segs {
			if err := fsys.WriteAt("naive", s.Off, data[p:p+s.Len]); err != nil {
				t.Fatal(err)
			}
			p += s.Len
		}

		// Aggregator path: coalesce, then one write per run. Segments are
		// already offset-ordered by construction, so data is in file order.
		runs := Coalesce(segs)
		if mpiio.TotalLen(runs) != mpiio.TotalLen(segs) {
			t.Fatalf("coalesce changed total length: %d != %d", mpiio.TotalLen(runs), mpiio.TotalLen(segs))
		}
		for i := 1; i < len(runs); i++ {
			if runs[i].Off <= runs[i-1].Off+runs[i-1].Len {
				t.Fatalf("runs %v not strictly separated", runs)
			}
		}
		p = 0
		for _, r := range runs {
			if err := fsys.WriteAt("agg", r.Off, data[p:p+r.Len]); err != nil {
				t.Fatal(err)
			}
			p += r.Len
		}

		na, ag := fsys.Size("naive"), fsys.Size("agg")
		if na != ag {
			t.Fatalf("file sizes differ: naive %d, agg %d", na, ag)
		}
		a := make([]byte, na)
		b := make([]byte, ag)
		if err := fsys.ReadAt("naive", 0, a); err != nil {
			t.Fatal(err)
		}
		if err := fsys.ReadAt("agg", 0, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("coalesced writes differ from naive per-segment writes")
		}

		// The split/ship/merge pipeline must reproduce the same extents:
		// splitting the view across writers and re-coalescing each
		// writer's pieces covers the view exactly once.
		pl := NewPlacement(4, 16, 0, 4)
		covered := 0
		for _, pieces := range pl.splitByOwner(segs, data) {
			for _, pc := range pieces {
				covered += len(pc.data)
				for j, bb := range pc.data {
					want := data[dataIndex(segs, pc.off+j)]
					if bb != want {
						t.Fatalf("piece byte at file off %d is %d, want %d", pc.off+j, bb, want)
					}
				}
				if own := pl.Owner(pc.off); own != pl.Owner(pc.off + len(pc.data) - 1) {
					// A piece may span columns only when every spanned
					// column has the same owner; endpoints agree by
					// construction of splitByOwner.
					t.Fatalf("piece [%d,%d) spans owners %d..%d", pc.off, pc.off+len(pc.data), own, pl.Owner(pc.off+len(pc.data)-1))
				}
			}
		}
		if covered != len(data) {
			t.Fatalf("split covered %d bytes, want %d", covered, len(data))
		}
	})
}

// dataIndex maps a file offset back to its index in the packed view
// buffer of segs (offset-ordered).
func dataIndex(segs []mpiio.Segment, off int) int {
	p := 0
	for _, s := range segs {
		if off >= s.Off && off < s.Off+s.Len {
			return p + (off - s.Off)
		}
		p += s.Len
	}
	panic("offset outside view")
}
