package agg

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
)

func testFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 8, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 16})
}

func TestWireRoundTrip(t *testing.T) {
	ints := []int{0, 1, -1, 1 << 24, (1 << 24) + 1, 1<<40 + 12345, -(1<<33 + 7), math.MaxInt64, math.MinInt64}
	var w []float32
	for _, v := range ints {
		w = putInt(w, v)
	}
	i := 0
	for _, want := range ints {
		var got int
		got, i = getInt(w, i)
		if got != want {
			t.Fatalf("int round trip: got %d, want %d", got, want)
		}
	}

	for n := 0; n <= 9; n++ {
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(0xA0 + j)
		}
		w := putBytes(nil, b)
		if len(w) != wordsFor(n) {
			t.Fatalf("%d bytes packed into %d words, want %d", n, len(w), wordsFor(n))
		}
		got, next := getBytes(w, 0, n)
		if next != wordsFor(n) || !bytes.Equal(got, b) {
			t.Fatalf("bytes round trip failed at n=%d: %v != %v", n, got, b)
		}
	}

	floats := []float64{0, 1.5, -2.75e300, 3.14159265358979, math.Inf(1), math.SmallestNonzeroFloat64}
	for _, v := range floats {
		got, _ := getF64(putF64(nil, v), 0)
		if got != v {
			t.Fatalf("f64 round trip: got %g, want %g", got, v)
		}
	}
}

func TestPlacementOneWriterPerColumn(t *testing.T) {
	for _, tc := range []struct{ count, agg, ranks, wantWriters int }{
		{8, 4, 64, 4},
		{8, 0, 64, 8},   // default: as many writers as columns
		{8, 16, 64, 8},  // capped at stripe count
		{8, 16, 3, 3},   // capped at rank count
		{670, 64, 1024, 64},
		{1, 8, 8, 1},
	} {
		p := NewPlacement(tc.count, 1<<16, tc.agg, tc.ranks)
		if p.Writers != tc.wantWriters {
			t.Fatalf("placement %+v: writers = %d, want %d", tc, p.Writers, tc.wantWriters)
		}
		// Each stripe column maps to exactly one writer; the column→writer
		// map is a partition into contiguous non-empty blocks.
		prev := 0
		seen := map[int]bool{}
		for col := 0; col < tc.count; col++ {
			w := p.Owner(col * p.StripeSize)
			if w < prev || w > prev+1 {
				t.Fatalf("placement %+v: column %d jumps from writer %d to %d", tc, col, prev, w)
			}
			prev = w
			seen[w] = true
			// Ownership is per-column: every byte of the column agrees.
			for _, off := range []int{0, 1, p.StripeSize - 1} {
				base := col*p.StripeSize + off
				if p.Owner(base) != w || p.Owner(base+tc.count*p.StripeSize) != w {
					t.Fatalf("placement %+v: column %d ownership not uniform", tc, col)
				}
			}
		}
		if len(seen) != p.Writers {
			t.Fatalf("placement %+v: %d writers used, want %d", tc, len(seen), p.Writers)
		}
	}
}

func TestCoalesceMergesAdjacent(t *testing.T) {
	segs := []mpiio.Segment{
		{Off: 100, Len: 10},
		{Off: 0, Len: 50},
		{Off: 50, Len: 50}, // adjacent to the previous two: 0..110 minus nothing
		{Off: 200, Len: 5},
	}
	out := Coalesce(segs)
	want := []mpiio.Segment{{Off: 0, Len: 110}, {Off: 200, Len: 5}}
	if len(out) != len(want) {
		t.Fatalf("coalesced to %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("coalesced to %v, want %v", out, want)
		}
	}
	if Coalesce(nil) != nil {
		t.Fatal("empty input should coalesce to nil")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("overlap should panic")
		}
	}()
	Coalesce([]mpiio.Segment{{Off: 0, Len: 10}, {Off: 5, Len: 10}})
}

func TestThrottledPhaseWaves(t *testing.T) {
	fsys := testFS()
	var ops []pfs.Op
	for i := 0; i < 10; i++ {
		ops = append(ops,
			pfs.Op{Path: "f", Off: i << 20, Bytes: 1 << 20, Write: true, Open: true},
			pfs.Op{Path: "f", Off: i<<20 + 1<<19, Bytes: 1 << 19, Write: true})
	}
	st, waves := ThrottledPhase(fsys, ops, 4)
	if waves != 3 { // 10 opens / 4 per wave
		t.Fatalf("waves = %d, want 3", waves)
	}
	// The summed cost equals pricing the three waves independently.
	a := fsys.SimulatePhase(ops[:8])
	b := fsys.SimulatePhase(ops[8:16])
	c := fsys.SimulatePhase(ops[16:])
	if got, want := st.Elapsed, a.Elapsed+b.Elapsed+c.Elapsed; math.Abs(got-want) > 1e-12 {
		t.Fatalf("elapsed = %g, want %g", got, want)
	}
	if st.Bytes != a.Bytes+b.Bytes+c.Bytes {
		t.Fatalf("bytes = %d", st.Bytes)
	}

	// Unthrottled: one wave, identical to SimulatePhase.
	st1, waves1 := ThrottledPhase(fsys, ops, 0)
	if waves1 != 1 {
		t.Fatalf("default throttle split %d opens into %d waves", 10, waves1)
	}
	if whole := fsys.SimulatePhase(ops); st1.Elapsed != whole.Elapsed {
		t.Fatalf("single wave elapsed %g != SimulatePhase %g", st1.Elapsed, whole.Elapsed)
	}
}

// rankView gives rank r of P an x-slab of the global grid with
// deterministic content.
func rankView(g grid.Dims, rec, r, P int) ([]mpiio.Segment, []byte) {
	i0 := r * g.NX / P
	i1 := (r + 1) * g.NX / P
	if i0 == i1 {
		return nil, nil
	}
	segs := mpiio.BlockSegments(g, i0, i1, 0, g.NY, 0, g.NZ, rec)
	data := make([]byte, mpiio.TotalLen(segs))
	p := 0
	for _, s := range segs {
		for b := 0; b < s.Len; b++ {
			data[p] = byte((s.Off + b) * 131)
			p++
		}
	}
	return segs, data
}

func TestWriteIndexedBitIdenticalToPerRank(t *testing.T) {
	const P = 8
	g := grid.Dims{NX: 24, NY: 10, NZ: 6}
	const rec = 12
	fsys := testFS()
	fsys.SetStripe("out/", 4, 1<<10) // small stripes so runs split across writers

	var stats WriteStats
	w := mpi.NewWorld(P)
	w.Run(func(c *mpi.Comm) {
		segs, data := rankView(g, rec, c.Rank(), P)
		// Per-rank reference: every rank writes its own view directly.
		if err := mpiio.WriteIndexed(fsys, "out/ref", segs, data); err != nil {
			panic(err)
		}
		st, err := WriteIndexed(c, fsys, "out/agg", segs, data, Config{Aggregators: 3})
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			stats = st
		}
	})

	n := fsys.Size("out/agg")
	if want := g.NX * g.NY * g.NZ * rec; n != want {
		t.Fatalf("aggregated file %d bytes, want %d", n, want)
	}
	if fsys.Size("out/ref") != n {
		t.Fatalf("reference file %d bytes", fsys.Size("out/ref"))
	}
	a := make([]byte, n)
	b := make([]byte, n)
	if err := fsys.ReadAt("out/agg", 0, a); err != nil {
		t.Fatal(err)
	}
	if err := fsys.ReadAt("out/ref", 0, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("aggregated file differs from per-rank reference")
	}

	if stats.Writers != 3 || stats.Opens != 3 {
		t.Fatalf("writers/opens = %d/%d, want 3/3", stats.Writers, stats.Opens)
	}
	if stats.Bytes != n || stats.Phase.Bytes != n {
		t.Fatalf("stats bytes %d / phase bytes %d, want %d", stats.Bytes, stats.Phase.Bytes, n)
	}
	if stats.Waves != 1 || stats.MaxConcurrentOpens != 3 {
		t.Fatalf("waves/maxconc = %d/%d", stats.Waves, stats.MaxConcurrentOpens)
	}
	if stats.Writes >= stats.Segments {
		t.Fatalf("coalescing did not reduce ops: %d writes vs %d segments", stats.Writes, stats.Segments)
	}

	// The rank-0 stripe checksums must equal an independent pass over the
	// reference file.
	ref, err := FileStripeChecksums(fsys, "out/ref")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Stripes) != len(ref) {
		t.Fatalf("%d stripe checksums, want %d", len(stats.Stripes), len(ref))
	}
	for i, s := range stats.Stripes {
		if s != ref[i] {
			t.Fatalf("stripe %d checksum mismatch: %+v != %+v", i, s, ref[i])
		}
	}
}

func TestWriteIndexedStatsAgreeOnAllRanks(t *testing.T) {
	const P = 6
	g := grid.Dims{NX: 12, NY: 6, NZ: 4}
	fsys := testFS()
	fsys.SetStripe("out/", 2, 1<<9)
	all := make([]WriteStats, P)
	w := mpi.NewWorld(P)
	w.Run(func(c *mpi.Comm) {
		segs, data := rankView(g, 4, c.Rank(), P)
		st, err := WriteIndexed(c, fsys, "out/f", segs, data, Config{})
		if err != nil {
			panic(err)
		}
		st.Stripes = nil // rank-0 only by contract
		all[c.Rank()] = st
	})
	for r := 1; r < P; r++ {
		if !reflect.DeepEqual(all[r], all[0]) {
			t.Fatalf("rank %d stats %+v differ from rank 0 %+v", r, all[r], all[0])
		}
	}
}

func TestWriteIndexedEmptyRanksAndEmptyWrite(t *testing.T) {
	const P = 4
	fsys := testFS()
	w := mpi.NewWorld(P)
	w.Run(func(c *mpi.Comm) {
		// Only rank 2 has data.
		var segs []mpiio.Segment
		var data []byte
		if c.Rank() == 2 {
			segs = []mpiio.Segment{{Off: 8, Len: 16}}
			data = bytes.Repeat([]byte{0x5C}, 16)
		}
		st, err := WriteIndexed(c, fsys, "solo", segs, data, Config{})
		if err != nil {
			panic(err)
		}
		if st.Writers != 1 || st.Bytes != 16 {
			panic("bad solo stats")
		}
	})
	got := make([]byte, 24)
	if err := fsys.ReadAt("solo", 0, got); err != nil {
		t.Fatal(err)
	}
	want := append(make([]byte, 8), bytes.Repeat([]byte{0x5C}, 16)...)
	if !bytes.Equal(got, want) {
		t.Fatal("solo write content mismatch")
	}

	// A fully empty collective write is a no-op on every rank.
	w2 := mpi.NewWorld(P)
	w2.Run(func(c *mpi.Comm) {
		st, err := WriteIndexed(c, fsys, "none", nil, nil, Config{})
		if err != nil || !reflect.DeepEqual(st, WriteStats{}) {
			panic("empty write should be a free no-op")
		}
	})
	if fsys.Exists("none") {
		t.Fatal("empty write created a file")
	}
}

func TestWriteIndexedWriterFaultPropagatesToAllRanks(t *testing.T) {
	const P = 4
	fsys := testFS()
	// Permanent write failure: every attempt faults, beyond any retry
	// budget.
	fsys.InjectFaults(pfs.FaultPlan{Seed: 1, WriteFailProb: 1, MaxConsecutive: 1 << 30})
	w := mpi.NewWorld(P)
	err := w.RunErr(func(c *mpi.Comm) error {
		segs := []mpiio.Segment{{Off: c.Rank() * 8, Len: 8}}
		_, err := WriteIndexed(c, fsys, "f", segs, make([]byte, 8), Config{Aggregators: 2})
		if err == nil {
			return errors.New("aggregated write succeeded under permanent faults")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteIndexedLengthMismatch(t *testing.T) {
	fsys := testFS()
	w := mpi.NewWorld(1)
	w.Run(func(c *mpi.Comm) {
		_, err := WriteIndexed(c, fsys, "f", []mpiio.Segment{{Off: 0, Len: 8}}, make([]byte, 4), Config{})
		if err == nil {
			panic("length mismatch accepted")
		}
	})
}
