// Package agg is the two-phase aggregated collective I/O layer of the
// paper's §IV.E I/O engineering: instead of every rank opening the shared
// output file itself (hundreds of thousands of concurrent opens — the
// MDS-degradation pathology), ranks ship their mpiio.Segment file views
// over internal/mpi to a small set of aggregator ("writer") ranks, which
// coalesce adjacent extents into large stripe-aligned writes, pay the
// only file opens of the phase, and emit per-stripe CRC64/MD5 checksums
// for the end-to-end output-verification story.
//
// Placement is striping-aware: the stripe columns of the target file
// (column c holds every stripe with index ≡ c mod stripeCount, and all
// of column c's bytes land on one OST) are divided into contiguous
// blocks, one block per writer — so each OST sees exactly one writer
// stream and a writer's extents coalesce into runs of whole stripes.
// Writer count is therefore capped at the stripe count; extra configured
// aggregators would put a second stream on some OST and are not used.
//
// A reader/writer open throttle (default 650, the Jaguar limit AWP-ODC
// shipped with) bounds how many file opens one synchronized phase may
// present to the metadata server: phases with more opens are split into
// sequential waves. ThrottledPhase exposes the same wave pricing for
// read phases (mesh partitioning, restart).
package agg

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"hash/crc64"
	"sort"

	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// DefaultOpenThrottle is the concurrent-open limit AWP-ODC used on
// Jaguar (≤650 readers kept the Lustre MDS out of its degraded regime).
const DefaultOpenThrottle = 650

// defaultTag is the base message tag of the shipment phase, disjoint
// from the solver's halo (0..), coalesced (4096+), deep-halo and
// meshpart (7000+) tag spaces.
const defaultTag = 1 << 20

// Config tunes one collective aggregated write.
type Config struct {
	// Aggregators is the requested writer-rank count. 0 defaults to
	// min(ranks, stripe count); any value is additionally capped at the
	// stripe count (one writer stream per OST) and the rank count.
	Aggregators int
	// OpenThrottle bounds concurrent opens per pricing wave. 0 defaults
	// to DefaultOpenThrottle (650).
	OpenThrottle int
	// Tag overrides the base message tag (0 = default). Two concurrent
	// collective writes on one communicator must use distinct tags.
	Tag int
}

func (c Config) throttle() int {
	if c.OpenThrottle <= 0 {
		return DefaultOpenThrottle
	}
	return c.OpenThrottle
}

func (c Config) tag() int {
	if c.Tag == 0 {
		return defaultTag
	}
	return c.Tag
}

// StripeChecksum is the integrity record of one stripe-sized extent of
// the written file: CRC64-ECMA (the checkpoint-format polynomial) and
// MD5 (the paper's §III.E integrity pass).
type StripeChecksum struct {
	Index int    // stripe index (byte range [Index*size, (Index+1)*size))
	CRC64 uint64
	MD5   string // hex
}

// WriteStats summarizes one collective aggregated write. Every rank
// returns identical scalar stats; Stripes is populated on rank 0 only.
type WriteStats struct {
	Bytes        int // payload bytes of the collective view
	Segments     int // input segments across all ranks
	ShippedBytes int // payload bytes shipped to a remote writer rank
	Writers      int // aggregator ranks that issued writes
	Writes       int // coalesced writes issued to the PFS
	Opens        int // file opens charged (= Writers)
	Waves        int // open-throttle waves of the priced phase
	MaxConcurrentOpens int
	Phase        pfs.PhaseStats // virtual cost of the aggregated phase
	Stripes      []StripeChecksum
}

// Placement maps file offsets to writer ranks, striping-aware.
type Placement struct {
	StripeCount int
	StripeSize  int
	Writers     int // active writer ranks (writer w is comm rank w)
}

// NewPlacement resolves the active writer count for a file with the
// given striping on a communicator of `ranks`, requesting `aggregators`
// writers (0 = as many as striping allows).
func NewPlacement(stripeCount, stripeSize, aggregators, ranks int) Placement {
	w := aggregators
	if w <= 0 || w > stripeCount {
		w = stripeCount
	}
	if w > ranks {
		w = ranks
	}
	return Placement{StripeCount: stripeCount, StripeSize: stripeSize, Writers: w}
}

// Owner returns the writer rank responsible for the byte at off: the
// owner of the stripe column the byte falls in. Columns are divided into
// contiguous blocks of ~count/Writers columns each.
func (p Placement) Owner(off int) int {
	col := (off / p.StripeSize) % p.StripeCount
	return col * p.Writers / p.StripeCount
}

// piece is one contiguous extent with its payload.
type piece struct {
	off  int
	data []byte
}

// splitByOwner cuts a rank's view into per-writer piece lists, splitting
// segments only where stripe ownership changes.
func (p Placement) splitByOwner(segs []mpiio.Segment, data []byte) [][]piece {
	out := make([][]piece, p.Writers)
	pos := 0
	for _, s := range segs {
		off, remaining := s.Off, s.Len
		for remaining > 0 {
			owner := p.Owner(off)
			// Extend while ownership is unchanged: ownership can only
			// change at stripe boundaries.
			n := p.StripeSize - off%p.StripeSize
			if n > remaining {
				n = remaining
			}
			for n < remaining {
				next := p.StripeSize
				if rest := remaining - n; next > rest {
					next = rest
				}
				if p.Owner(off+n) != owner {
					break
				}
				n += next
			}
			pl := out[owner]
			if k := len(pl) - 1; k >= 0 && pl[k].off+len(pl[k].data) == off {
				// Contiguous with the previous piece for this owner:
				// extend in place so the wire header stays small.
				pl[k].data = append(pl[k].data, data[pos:pos+n]...)
			} else {
				out[owner] = append(pl, piece{off: off, data: data[pos : pos+n]})
			}
			pos += n
			off += n
			remaining -= n
		}
	}
	return out
}

// Coalesce sorts a segment list by offset and merges contiguous
// neighbors (next.Off == prev.Off+prev.Len) — the writer-side extent
// merge, exposed pure so it can be fuzzed against the naive write path.
// Overlapping segments are invalid views and panic.
func Coalesce(segs []mpiio.Segment) []mpiio.Segment {
	if len(segs) == 0 {
		return nil
	}
	sorted := append([]mpiio.Segment(nil), segs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Off < sorted[b].Off })
	out := sorted[:1]
	for _, s := range sorted[1:] {
		last := &out[len(out)-1]
		switch {
		case s.Off == last.Off+last.Len:
			last.Len += s.Len
		case s.Off > last.Off+last.Len:
			out = append(out, s)
		default:
			panic(fmt.Sprintf("agg: overlapping segments [%d,%d) and [%d,%d)",
				last.Off, last.Off+last.Len, s.Off, s.Off+s.Len))
		}
	}
	return out
}

// crcTable is the CRC64-ECMA table shared with the checkpoint format.
var crcTable = crc64.MakeTable(crc64.ECMA)

// WriteIndexed is the collective two-phase aggregated write: every rank
// of c calls it with its own view (segs may be empty on ranks with no
// data; data length must equal the view length). Bytes are really
// written to fsys — bit-identical to each rank writing its own view —
// and the virtual cost of the aggregated phase is priced with the open
// throttle applied. An optional telemetry recorder (at most one)
// attributes the wall time to the Agg phase.
func WriteIndexed(c *mpi.Comm, fsys *pfs.FS, path string, segs []mpiio.Segment,
	data []byte, cfg Config, rec ...*telemetry.Recorder) (WriteStats, error) {
	if len(rec) > 0 && rec[0] != nil {
		defer rec[0].Span(telemetry.Agg).End()
	}
	if len(data) != mpiio.TotalLen(segs) {
		return WriteStats{}, fmt.Errorf("agg: data %d bytes, view %d", len(data), mpiio.TotalLen(segs))
	}

	// Collective geometry: global file extent, totals.
	maxEnd := 0
	for _, s := range segs {
		if end := s.Off + s.Len; end > maxEnd {
			maxEnd = end
		}
	}
	tot := c.Allreduce([]float64{float64(maxEnd)}, mpi.Max)
	sums := c.Allreduce([]float64{float64(len(data)), float64(len(segs))}, mpi.Sum)
	fileLen := int(tot[0])

	st := WriteStats{Bytes: int(sums[0]), Segments: int(sums[1])}
	if fileLen == 0 {
		return st, nil
	}

	count, size := fsys.Stripe(path)
	pl := NewPlacement(count, size, cfg.Aggregators, c.Size())
	st.Writers = pl.Writers

	// Phase 1: ship per-writer shipments. Every rank sends exactly one
	// message (possibly empty) to every writer, so receive counts are
	// deterministic without a handshake.
	tag := cfg.tag()
	byWriter := pl.splitByOwner(segs, data)
	shipped := 0
	for w := 0; w < pl.Writers; w++ {
		msg := putInt(nil, len(byWriter[w]))
		for _, pc := range byWriter[w] {
			msg = putInt(msg, pc.off)
			msg = putInt(msg, len(pc.data))
			msg = putBytes(msg, pc.data)
		}
		if w != c.Rank() {
			for _, pc := range byWriter[w] {
				shipped += len(pc.data)
			}
		}
		c.Send(w, tag, msg)
	}

	// Phase 2: writers drain the shipments, coalesce, write.
	var writeErr error
	var runs []mpiio.Segment
	var stripeSums []StripeChecksum
	if c.Rank() < pl.Writers {
		var pieces []piece
		for src := 0; src < c.Size(); src++ {
			msg, _, err := c.RecvTake(src, tag)
			if err != nil {
				return WriteStats{}, fmt.Errorf("agg: shipment from rank %d: %w", src, err)
			}
			n, i := getInt(msg, 0)
			for k := 0; k < n; k++ {
				var off, ln int
				off, i = getInt(msg, i)
				ln, i = getInt(msg, i)
				var b []byte
				b, i = getBytes(msg, i, ln)
				pieces = append(pieces, piece{off: off, data: b})
			}
		}
		runs, writeErr = writeCoalesced(fsys, path, pieces)
		if writeErr == nil {
			stripeSums, writeErr = stripeChecksums(fsys, path, runs, size, fileLen)
		}
	}

	// Gather write outcomes, run lists and stripe checksums at rank 0.
	// Every rank participates (non-writers contribute an empty payload),
	// so a failed writer cannot deadlock the collective.
	payload := putInt(nil, boolInt(writeErr != nil))
	payload = putInt(payload, len(runs))
	for _, r := range runs {
		payload = putInt(payload, r.Off)
		payload = putInt(payload, r.Len)
	}
	payload = putInt(payload, len(stripeSums))
	for _, s := range stripeSums {
		payload = putInt(payload, s.Index)
		payload = putInt(payload, int(int64(s.CRC64)))
		payload = putBytes(payload, mustHex(s.MD5))
	}
	gathered := c.Gather(payload, 0)

	// Rank 0 prices the aggregated phase under the open throttle and
	// broadcasts the scalar outcome so every rank returns the same stats.
	out := make([]float32, 26)
	if c.Rank() == 0 {
		var ops []pfs.Op
		failed := 0
		writes := 0
		for _, p := range gathered {
			ef, i := getInt(p, 0)
			failed += ef
			var n int
			n, i = getInt(p, i)
			open := true
			for k := 0; k < n; k++ {
				var off, ln int
				off, i = getInt(p, i)
				ln, i = getInt(p, i)
				ops = append(ops, pfs.Op{Path: path, Off: off, Bytes: ln, Write: true, Open: open})
				open = false
				writes++
			}
			var ns int
			ns, i = getInt(p, i)
			for k := 0; k < ns; k++ {
				var idx, crc int
				idx, i = getInt(p, i)
				crc, i = getInt(p, i)
				var md [16]byte
				var b []byte
				b, i = getBytes(p, i, 16)
				copy(md[:], b)
				st.Stripes = append(st.Stripes, StripeChecksum{
					Index: idx, CRC64: uint64(int64(crc)), MD5: hex.EncodeToString(md[:]),
				})
			}
		}
		sort.Slice(st.Stripes, func(a, b int) bool { return st.Stripes[a].Index < st.Stripes[b].Index })
		opens := 0
		for _, op := range ops {
			if op.Open {
				opens++
			}
		}
		phase, waves := ThrottledPhase(fsys, ops, cfg.throttle())
		st.Writes = writes
		st.Opens = opens
		st.Waves = waves
		st.MaxConcurrentOpens = opens
		if t := cfg.throttle(); st.MaxConcurrentOpens > t {
			st.MaxConcurrentOpens = t
		}
		st.Phase = phase

		w := putInt(nil, failed)
		w = putInt(w, st.Writes)
		w = putInt(w, st.Opens)
		w = putInt(w, st.Waves)
		w = putInt(w, st.MaxConcurrentOpens)
		w = putInt(w, st.Phase.Bytes)
		w = putF64(w, st.Phase.Elapsed)
		w = putF64(w, st.Phase.MDSTime)
		w = putF64(w, st.Phase.IOTime)
		w = putF64(w, st.Phase.Throughput)
		w = putF64(w, st.Phase.MaxOSTLoad)
		copy(out, w)
	}
	c.Bcast(out, 0)
	failed, i := getInt(out, 0)
	st.Writes, i = getInt(out, i)
	st.Opens, i = getInt(out, i)
	st.Waves, i = getInt(out, i)
	st.MaxConcurrentOpens, i = getInt(out, i)
	st.Phase.Bytes, i = getInt(out, i)
	st.Phase.Elapsed, i = getF64(out, i)
	st.Phase.MDSTime, i = getF64(out, i)
	st.Phase.IOTime, i = getF64(out, i)
	st.Phase.Throughput, i = getF64(out, i)
	st.Phase.MaxOSTLoad, _ = getF64(out, i)
	st.ShippedBytes = int(c.Allreduce([]float64{float64(shipped)}, mpi.Sum)[0])

	if writeErr != nil {
		return st, fmt.Errorf("agg: writer rank %d: %w", c.Rank(), writeErr)
	}
	if failed > 0 {
		return st, fmt.Errorf("agg: %d writer rank(s) failed the aggregated write of %s", failed, path)
	}
	return st, nil
}

// writeCoalesced merges pieces into maximal contiguous runs and writes
// each run with bounded retry, returning the run extents.
func writeCoalesced(fsys *pfs.FS, path string, pieces []piece) ([]mpiio.Segment, error) {
	if len(pieces) == 0 {
		return nil, nil
	}
	sort.Slice(pieces, func(a, b int) bool { return pieces[a].off < pieces[b].off })
	var runs []mpiio.Segment
	var buf []byte
	runOff := pieces[0].off
	retry := pfs.DefaultRetry()
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		chunk := buf
		off := runOff
		if err := retry.Do(func() error { return fsys.WriteAt(path, off, chunk) }); err != nil {
			return fmt.Errorf("agg: write %s run [%d,%d): %w", path, off, off+len(chunk), err)
		}
		runs = append(runs, mpiio.Segment{Off: off, Len: len(chunk)})
		return nil
	}
	for _, pc := range pieces {
		switch end := runOff + len(buf); {
		case pc.off == end:
			buf = append(buf, pc.data...)
		case pc.off > end:
			if err := flush(); err != nil {
				return runs, err
			}
			runOff, buf = pc.off, append(buf[:0], pc.data...)
		default:
			return runs, fmt.Errorf("agg: overlapping extents at offset %d (run end %d)", pc.off, end)
		}
	}
	if err := flush(); err != nil {
		return runs, err
	}
	return runs, nil
}

// stripeChecksums reads back the stripes covered by runs and computes
// their CRC64/MD5 — an end-to-end pass over what actually landed, so a
// torn write is caught here rather than trusted.
func stripeChecksums(fsys *pfs.FS, path string, runs []mpiio.Segment, stripeSize, fileLen int) ([]StripeChecksum, error) {
	seen := map[int]bool{}
	var out []StripeChecksum
	retry := pfs.DefaultRetry()
	for _, r := range runs {
		for s := r.Off / stripeSize; s <= (r.Off+r.Len-1)/stripeSize; s++ {
			if seen[s] {
				continue
			}
			seen[s] = true
			lo := s * stripeSize
			hi := lo + stripeSize
			if hi > fileLen {
				hi = fileLen
			}
			buf := make([]byte, hi-lo)
			if err := retry.Do(func() error { return fsys.ReadAt(path, lo, buf) }); err != nil {
				return nil, fmt.Errorf("agg: checksum read-back stripe %d: %w", s, err)
			}
			md := md5.Sum(buf)
			out = append(out, StripeChecksum{
				Index: s,
				CRC64: crc64.Checksum(buf, crcTable),
				MD5:   hex.EncodeToString(md[:]),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out, nil
}

// FileStripeChecksums computes the per-stripe checksums of an entire
// existing file (stripe geometry from the FS) — the reference side of
// the aggregated-vs-per-rank verification gate.
func FileStripeChecksums(fsys *pfs.FS, path string) ([]StripeChecksum, error) {
	n := fsys.Size(path)
	if n < 0 {
		return nil, fmt.Errorf("agg: %s: no such file", path)
	}
	_, size := fsys.Stripe(path)
	var out []StripeChecksum
	for s := 0; s*size < n; s++ {
		lo := s * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		buf := make([]byte, hi-lo)
		if err := fsys.ReadAt(path, lo, buf); err != nil {
			return nil, err
		}
		md := md5.Sum(buf)
		out = append(out, StripeChecksum{
			Index: s,
			CRC64: crc64.Checksum(buf, crcTable),
			MD5:   hex.EncodeToString(md[:]),
		})
	}
	return out, nil
}

// ThrottledPhase prices a synchronized I/O phase under a concurrent-open
// throttle: the per-open streams (an Open op plus its following
// non-open ops) are issued in sequential waves of at most `throttle`
// opens, and the wave costs add. It returns the summed stats and the
// wave count. throttle <= 0 means DefaultOpenThrottle.
func ThrottledPhase(fsys *pfs.FS, ops []pfs.Op, throttle int) (pfs.PhaseStats, int) {
	if throttle <= 0 {
		throttle = DefaultOpenThrottle
	}
	if len(ops) == 0 {
		return pfs.PhaseStats{}, 0
	}
	var total pfs.PhaseStats
	waves := 0
	var wave []pfs.Op
	opens := 0
	flush := func() {
		if len(wave) == 0 {
			return
		}
		st := fsys.SimulatePhase(wave)
		total.Elapsed += st.Elapsed
		total.MDSTime += st.MDSTime
		total.IOTime += st.IOTime
		total.Bytes += st.Bytes
		if st.MaxOSTLoad > total.MaxOSTLoad {
			total.MaxOSTLoad = st.MaxOSTLoad
		}
		waves++
		wave = wave[:0]
		opens = 0
	}
	for _, op := range ops {
		if op.Open {
			if opens == throttle {
				flush()
			}
			opens++
		}
		wave = append(wave, op)
	}
	flush()
	if total.Elapsed > 0 {
		total.Throughput = float64(total.Bytes) / total.Elapsed
	}
	return total, waves
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(fmt.Sprintf("agg: bad hex %q: %v", s, err))
	}
	return b
}
