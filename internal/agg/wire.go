// Bit-exact wire encoding for shipping byte extents over the float32
// message runtime of internal/mpi. Integers travel as two raw 32-bit
// words (never through a float mantissa — offsets in a 436-billion-cell
// mesh file exceed float32's 2^24 exact-integer range), and payload
// bytes are reinterpreted four-at-a-time as float32 bit patterns: the
// in-process runtime copies word-for-word, so signaling-NaN patterns and
// every other bit combination survive untouched.
package agg

import (
	"encoding/binary"
	"math"
)

// putInt appends v as two bit-pattern words (hi 32, lo 32).
func putInt(w []float32, v int) []float32 {
	u := uint64(v)
	return append(w,
		math.Float32frombits(uint32(u>>32)),
		math.Float32frombits(uint32(u)))
}

// getInt reads the two-word integer at w[i], returning the value and the
// next index.
func getInt(w []float32, i int) (int, int) {
	u := uint64(math.Float32bits(w[i]))<<32 | uint64(math.Float32bits(w[i+1]))
	return int(int64(u)), i + 2
}

// putBytes appends b as packed little-endian words, padding the final
// partial word with zeros. The byte length travels separately.
func putBytes(w []float32, b []byte) []float32 {
	full := len(b) / 4 * 4
	for p := 0; p < full; p += 4 {
		w = append(w, math.Float32frombits(binary.LittleEndian.Uint32(b[p:])))
	}
	if full < len(b) {
		var last [4]byte
		copy(last[:], b[full:])
		w = append(w, math.Float32frombits(binary.LittleEndian.Uint32(last[:])))
	}
	return w
}

// wordsFor returns how many words n bytes occupy.
func wordsFor(n int) int { return (n + 3) / 4 }

// putF64 appends v as two raw 32-bit words of its IEEE-754 bit pattern
// (bit-exact, unlike the hi/lo float32 split of the collectives).
func putF64(w []float32, v float64) []float32 {
	u := math.Float64bits(v)
	return append(w,
		math.Float32frombits(uint32(u>>32)),
		math.Float32frombits(uint32(u)))
}

// getF64 reads the two-word float64 at w[i], returning the value and the
// next index.
func getF64(w []float32, i int) (float64, int) {
	u := uint64(math.Float32bits(w[i]))<<32 | uint64(math.Float32bits(w[i+1]))
	return math.Float64frombits(u), i + 2
}

// getBytes decodes n bytes from the words starting at w[i], returning the
// bytes and the next word index.
func getBytes(w []float32, i, n int) ([]byte, int) {
	words := wordsFor(n)
	out := make([]byte, words*4)
	for p := 0; p < words; p++ {
		binary.LittleEndian.PutUint32(out[4*p:], math.Float32bits(w[i+p]))
	}
	return out[:n], i + words
}
