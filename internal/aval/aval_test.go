package aval

import (
	"math"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
)

func TestL2MisfitBasics(t *testing.T) {
	a := [][3]float32{{1, 0, 0}, {0, 1, 0}}
	if m := L2Misfit(a, a); m != 0 {
		t.Errorf("self misfit %g", m)
	}
	b := [][3]float32{{1.1, 0, 0}, {0, 1, 0}}
	m := L2Misfit(b, a)
	want := 0.1 / math.Sqrt(2)
	if math.Abs(m-want) > 1e-6 {
		t.Errorf("misfit %g, want %g", m, want)
	}
	if !math.IsInf(L2Misfit(a, a[:1]), 1) {
		t.Error("length mismatch not inf")
	}
	if L2Misfit(nil, nil) != 0 {
		t.Error("empty-vs-empty should be 0")
	}
	if !math.IsInf(L2Misfit(a, [][3]float32{{0, 0, 0}, {0, 0, 0}}), 1) {
		t.Error("nonzero-vs-zero should be inf")
	}
}

func TestReportString(t *testing.T) {
	r := Check("demo", [][3]float32{{1, 0, 0}}, [][3]float32{{1, 0, 0}}, 1e-6)
	if !r.Pass || r.String() == "" {
		t.Error("passing report wrong")
	}
	r2 := Check("demo", [][3]float32{{2, 0, 0}}, [][3]float32{{1, 0, 0}}, 1e-6)
	if r2.Pass {
		t.Error("failing report passed")
	}
}

// TestAcceptanceAcrossKernelVariants is the §III.H regression use-case:
// updated kernels must match the reference solution within tolerance.
func TestAcceptanceAcrossKernelVariants(t *testing.T) {
	q := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	base := solver.Options{
		Global:      grid.Dims{NX: 20, NY: 20, NZ: 16},
		H:           100,
		Steps:       50,
		Comm:        solver.Asynchronous,
		ABC:         solver.SpongeABC,
		SpongeWidth: 4,
		Sources: []source.SampledSource{(source.PointSource{
			GI: 10, GJ: 10, GK: 8, M0: 1e15, Tensor: source.Explosion,
			STF: source.GaussianPulse(0.06, 0.015),
		}).Sample(0.002, 200)},
		Receivers: [][3]int{{5, 10, 8}, {10, 5, 4}},
	}
	ref, err := solver.Run(q, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []fd.Variant{fd.Naive, fd.Recip, fd.Blocked, fd.Unrolled} {
		opt := base
		opt.Variant = variant
		got, err := solver.Run(q, opt)
		if err != nil {
			t.Fatal(err)
		}
		for r := range ref.Seismograms {
			rep := Check(variant.String(), got.Seismograms[r], ref.Seismograms[r], DefaultTolerance)
			if !rep.Pass {
				t.Errorf("variant %v receiver %d: %s", variant, r, rep)
			}
		}
	}
}

// TestCrossCodeVerification is the Fig 3 analogue: the production
// 4th-order solver and the independent 2nd-order reference code must agree
// on a resolved scenario.
func TestCrossCodeVerification(t *testing.T) {
	mat := cvm.Material{Vp: 4000, Vs: 2310, Rho: 2500}
	q := cvm.Homogeneous(mat)
	g := grid.Dims{NX: 36, NY: 36, NZ: 28}
	h := 100.0
	dt := 0.008 // stable for both schemes; well below both CFL limits
	steps := 170
	// Long-period pulse: ~11 cells per wavelength so the 2nd-order code is
	// dispersion-resolved too.
	stf := source.GaussianPulse(0.35, 0.09)
	recv := [][3]int{{10, 18, 14}, {18, 10, 10}, {26, 18, 14}}

	prod, err := solver.Run(q, solver.Options{
		Global: g, H: h, Dt: dt, Steps: steps,
		Topo: mpi.NewCart(2, 1, 1),
		Comm: solver.AsyncReduced,
		ABC:  solver.SpongeABC, SpongeWidth: 6,
		Sources: []source.SampledSource{(source.PointSource{
			GI: 18, GJ: 18, GK: 14, M0: 1e15, Tensor: source.Explosion, STF: stf,
		}).Sample(dt, steps+1)},
		Receivers: recv,
	})
	if err != nil {
		t.Fatal(err)
	}

	refSeis := RunReference(RefConfig{
		NX: g.NX, NY: g.NY, NZ: g.NZ, H: h, Dt: dt, Steps: steps,
		Q:  q,
		SI: 18, SJ: 18, SK: 14, M0: 1e15, Tensor: source.Explosion, STF: stf,
		Receivers: recv,
		Sponge:    6,
	})

	for r := range recv {
		rep := Check("cross-code", prod.Seismograms[r], refSeis[r], CrossCodeTolerance)
		t.Logf("receiver %d: %s", r, rep)
		if !rep.Pass {
			t.Errorf("receiver %d: cross-code misfit %g exceeds %g", r, rep.Misfit, CrossCodeTolerance)
		}
	}
}
