package aval

import (
	"math"

	"repro/internal/core/source"
	"repro/internal/cvm"
)

// RefConfig drives the independent reference solver: a deliberately
// separate implementation (2nd-order staggered-grid velocity–stress,
// different data layout, no shared kernel code) playing the role of the
// second and third codes in the Fig. 3 ShakeOut verification.
type RefConfig struct {
	NX, NY, NZ int
	H          float64
	Dt         float64
	Steps      int
	Q          cvm.Querier

	// Point moment source.
	SI, SJ, SK int
	M0         float64
	Tensor     source.MomentTensor
	STF        source.STF

	Receivers [][3]int
	// Sponge width for simple absorbing edges.
	Sponge int
}

// refGrid is the reference solver's own field container: one padded slab
// per z level (a different memory layout from the production code).
type refGrid struct {
	nx, ny, nz int
	v          [][]float32 // [k][j*nx+i]
}

func newRefGrid(nx, ny, nz, pad int) *refGrid {
	g := &refGrid{nx: nx + 2*pad, ny: ny + 2*pad, nz: nz + 2*pad}
	g.v = make([][]float32, g.nz)
	for k := range g.v {
		g.v[k] = make([]float32, g.nx*g.ny)
	}
	return g
}

func (g *refGrid) at(i, j, k int) float32     { return g.v[k][j*g.nx+i] }
func (g *refGrid) add(i, j, k int, x float32) { g.v[k][j*g.nx+i] += x }
func (g *refGrid) set(i, j, k int, x float32) { g.v[k][j*g.nx+i] = x }

// RunReference integrates the 2nd-order scheme and returns the seismogram
// at each receiver.
func RunReference(cfg RefConfig) [][][3]float32 {
	const pad = 1
	nx, ny, nz := cfg.NX, cfg.NY, cfg.NZ
	vx := newRefGrid(nx, ny, nz, pad)
	vy := newRefGrid(nx, ny, nz, pad)
	vz := newRefGrid(nx, ny, nz, pad)
	sxx := newRefGrid(nx, ny, nz, pad)
	syy := newRefGrid(nx, ny, nz, pad)
	szz := newRefGrid(nx, ny, nz, pad)
	sxy := newRefGrid(nx, ny, nz, pad)
	sxz := newRefGrid(nx, ny, nz, pad)
	syz := newRefGrid(nx, ny, nz, pad)

	// Material arrays at nodes (same staggering conventions as the
	// production code so receivers and sources are comparable).
	lam := newRefGrid(nx, ny, nz, pad)
	mu := newRefGrid(nx, ny, nz, pad)
	bro := newRefGrid(nx, ny, nz, pad) // 1/rho
	for k := 0; k < nz+2*pad; k++ {
		for j := 0; j < ny+2*pad; j++ {
			for i := 0; i < nx+2*pad; i++ {
				m := cfg.Q.Query(float64(i-pad)*cfg.H, float64(j-pad)*cfg.H, float64(k-pad)*cfg.H)
				muv := m.Rho * m.Vs * m.Vs
				lam.v[k][j*lam.nx+i] = float32(m.Rho*m.Vp*m.Vp - 2*muv)
				mu.v[k][j*mu.nx+i] = float32(muv)
				bro.v[k][j*bro.nx+i] = float32(1 / m.Rho)
			}
		}
	}

	dth := float32(cfg.Dt / cfg.H)
	h3 := cfg.H * cfg.H * cfg.H
	out := make([][][3]float32, len(cfg.Receivers))

	taper := func(d int) float32 {
		if cfg.Sponge <= 0 || d >= cfg.Sponge {
			return 1
		}
		x := 0.015 * float64(cfg.Sponge-d)
		return float32(math.Exp(-x * x))
	}

	for step := 0; step < cfg.Steps; step++ {
		// Velocity update (2nd-order differences).
		for k := pad; k < nz+pad; k++ {
			for j := pad; j < ny+pad; j++ {
				for i := pad; i < nx+pad; i++ {
					b := bro.at(i, j, k)
					vx.add(i, j, k, dth*b*((sxx.at(i+1, j, k)-sxx.at(i, j, k))+
						(sxy.at(i, j, k)-sxy.at(i, j-1, k))+
						(sxz.at(i, j, k)-sxz.at(i, j, k-1))))
					vy.add(i, j, k, dth*b*((sxy.at(i, j, k)-sxy.at(i-1, j, k))+
						(syy.at(i, j+1, k)-syy.at(i, j, k))+
						(syz.at(i, j, k)-syz.at(i, j, k-1))))
					vz.add(i, j, k, dth*b*((sxz.at(i, j, k)-sxz.at(i-1, j, k))+
						(syz.at(i, j, k)-syz.at(i, j-1, k))+
						(szz.at(i, j, k+1)-szz.at(i, j, k))))
				}
			}
		}
		// Stress update.
		for k := pad; k < nz+pad; k++ {
			for j := pad; j < ny+pad; j++ {
				for i := pad; i < nx+pad; i++ {
					l := lam.at(i, j, k)
					m2 := 2 * mu.at(i, j, k)
					exx := vx.at(i, j, k) - vx.at(i-1, j, k)
					eyy := vy.at(i, j, k) - vy.at(i, j-1, k)
					ezz := vz.at(i, j, k) - vz.at(i, j, k-1)
					tr := l * (exx + eyy + ezz)
					sxx.add(i, j, k, dth*(tr+m2*exx))
					syy.add(i, j, k, dth*(tr+m2*eyy))
					szz.add(i, j, k, dth*(tr+m2*ezz))
					sxy.add(i, j, k, dth*mu.at(i, j, k)*
						((vx.at(i, j+1, k)-vx.at(i, j, k))+(vy.at(i+1, j, k)-vy.at(i, j, k))))
					sxz.add(i, j, k, dth*mu.at(i, j, k)*
						((vx.at(i, j, k+1)-vx.at(i, j, k))+(vz.at(i+1, j, k)-vz.at(i, j, k))))
					syz.add(i, j, k, dth*mu.at(i, j, k)*
						((vy.at(i, j, k+1)-vy.at(i, j, k))+(vz.at(i, j+1, k)-vz.at(i, j, k))))
				}
			}
		}
		// Moment-rate injection (same convention as the production code).
		rate := cfg.M0 * cfg.STF(float64(step+1)*cfg.Dt)
		scale := float32(cfg.Dt * rate / h3)
		si, sj, sk := cfg.SI+pad, cfg.SJ+pad, cfg.SK+pad
		sxx.add(si, sj, sk, -scale*float32(cfg.Tensor[0]))
		syy.add(si, sj, sk, -scale*float32(cfg.Tensor[1]))
		szz.add(si, sj, sk, -scale*float32(cfg.Tensor[2]))
		sxy.add(si, sj, sk, -scale*float32(cfg.Tensor[3]))
		sxz.add(si, sj, sk, -scale*float32(cfg.Tensor[4]))
		syz.add(si, sj, sk, -scale*float32(cfg.Tensor[5]))

		// Simple sponge damping on all six faces.
		if cfg.Sponge > 0 {
			for k := pad; k < nz+pad; k++ {
				dk := minInt(k-pad, nz-1-(k-pad))
				for j := pad; j < ny+pad; j++ {
					dj := minInt(j-pad, ny-1-(j-pad))
					for i := pad; i < nx+pad; i++ {
						di := minInt(i-pad, nx-1-(i-pad))
						g := taper(di) * taper(dj) * taper(dk)
						if g != 1 {
							for _, f := range []*refGrid{vx, vy, vz, sxx, syy, szz, sxy, sxz, syz} {
								f.set(i, j, k, f.at(i, j, k)*g)
							}
						}
					}
				}
			}
		}

		for r, rc := range cfg.Receivers {
			out[r] = append(out[r], [3]float32{
				vx.at(rc[0]+pad, rc[1]+pad, rc[2]+pad),
				vy.at(rc[0]+pad, rc[1]+pad, rc[2]+pad),
				vz.at(rc[0]+pad, rc[1]+pad, rc[2]+pad),
			})
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
