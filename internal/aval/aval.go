// Package aval implements the automated verification toolkit of §III.H:
// acceptance testing of code updates by least-squares (L2) comparison of
// waveforms against reference solutions, plus an independently written
// second-order reference solver used for the multi-code verification of
// Fig. 3 (three codes, nearly identical PGVs on the same scenario).
package aval

import (
	"fmt"
	"math"
)

// L2Misfit returns the normalized least-squares misfit between two
// three-component waveforms: ||a-b|| / ||b||, the §III.H acceptance
// metric. It returns +Inf for length mismatches.
func L2Misfit(got, ref [][3]float32) float64 {
	if len(got) != len(ref) {
		return math.Inf(1)
	}
	var num, den float64
	for n := range ref {
		for c := 0; c < 3; c++ {
			d := float64(got[n][c]) - float64(ref[n][c])
			num += d * d
			den += float64(ref[n][c]) * float64(ref[n][c])
		}
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// DefaultTolerance is the acceptance threshold for same-algorithm
// regression tests (different kernels, decompositions, comm models).
const DefaultTolerance = 1e-5

// CrossCodeTolerance is the acceptance threshold when comparing
// independent discretizations (4th-order vs 2nd-order on a resolved
// problem), per the Fig. 3 "nearly identical" standard.
const CrossCodeTolerance = 0.15

// Report is the outcome of one acceptance test.
type Report struct {
	Name      string
	Misfit    float64
	Tolerance float64
	Pass      bool
}

// Check builds a report.
func Check(name string, got, ref [][3]float32, tol float64) Report {
	m := L2Misfit(got, ref)
	return Report{Name: name, Misfit: m, Tolerance: tol, Pass: m <= tol}
}

func (r Report) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%s: misfit %.3e (tol %.3e) %s", r.Name, r.Misfit, r.Tolerance, status)
}
