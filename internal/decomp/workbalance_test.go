package decomp

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
)

func TestBalanceAxisUniform(t *testing.T) {
	rates := make([]int, 64)
	for i := range rates {
		rates[i] = 1
	}
	cuts, err := balanceAxis(rates, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cuts[0] != 0 || cuts[4] != 64 {
		t.Fatalf("cut endpoints %v", cuts)
	}
	for c := 0; c < 4; c++ {
		if w := cuts[c+1] - cuts[c]; w != 16 {
			t.Fatalf("uniform rates: part %d has width %d, want 16 (cuts %v)", c, w, cuts)
		}
	}
}

func TestBalanceAxisBasinOverRock(t *testing.T) {
	// 96 planes: rock half rate 1, basin half rate 4. Optimal 4-way split
	// gives the basin half to one rank (cost 48/4=12) and splits the rock
	// half three ways (cost 16 each); naive splitting costs 24.
	rates := make([]int, 96)
	for i := range rates {
		if i < 48 {
			rates[i] = 1
		} else {
			rates[i] = 4
		}
	}
	cuts, err := balanceAxis(rates, 4)
	if err != nil {
		t.Fatal(err)
	}
	segCost := func(a, b int) float64 {
		minR := rates[a]
		for i := a; i < b; i++ {
			if rates[i] < minR {
				minR = rates[i]
			}
		}
		return float64(b-a) / float64(minR)
	}
	worst := 0.0
	for c := 0; c < 4; c++ {
		if cost := segCost(cuts[c], cuts[c+1]); cost > worst {
			worst = cost
		}
	}
	if worst > 16.0 {
		t.Fatalf("work-balanced worst segment cost %g > 16 (cuts %v)", worst, cuts)
	}
}

func TestBalanceAxisMinWidth(t *testing.T) {
	rates := []int{1, 1, 1, 1, 1, 1, 1}
	if _, err := balanceAxis(rates, 2); err == nil {
		t.Fatal("7 planes in 2 parts of >= 4 should fail")
	}
	if _, err := balanceAxis(append(rates, 1), 2); err != nil {
		t.Fatalf("8 planes in 2 parts: %v", err)
	}
}

func TestNewWorkBalancedSubsAndOwner(t *testing.T) {
	g := grid.Dims{NX: 48, NY: 8, NZ: 8}
	rx := make([]int, 48)
	for i := range rx {
		if i < 24 {
			rx[i] = 1
		} else {
			rx[i] = 2
		}
	}
	d, err := NewWorkBalanced(g, mpi.NewCart(3, 1, 1), rx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Subgrids must tile the global grid exactly, in order.
	off := 0
	for r := 0; r < 3; r++ {
		s := d.SubFor(r)
		if s.OffX != off {
			t.Fatalf("rank %d OffX=%d, want %d", r, s.OffX, off)
		}
		if s.Local.NX < grid.Ghost*2 {
			t.Fatalf("rank %d too thin: %d", r, s.Local.NX)
		}
		if s.Local.NY != 8 || s.Local.NZ != 8 {
			t.Fatalf("rank %d non-x dims changed: %v", r, s.Local)
		}
		off += s.Local.NX
	}
	if off != 48 {
		t.Fatalf("subgrids cover %d planes, want 48", off)
	}
	// Owner must agree with SubFor/Contains on every column.
	for gi := 0; gi < 48; gi++ {
		r := d.Owner(gi, 0, 0)
		if _, _, _, ok := d.SubFor(r).Contains(gi, 0, 0); !ok {
			t.Fatalf("Owner(%d)=%d does not contain the cell", gi, r)
		}
	}
	// Cuts accessor matches the subgrid offsets.
	cuts := d.Cuts(0)
	for r := 0; r < 3; r++ {
		if cuts[r] != d.SubFor(r).OffX {
			t.Fatalf("Cuts %v vs SubFor offsets", cuts)
		}
	}
	// Uniform-rate Cuts on a plain decomp reproduce split1.
	d2, err := New(g, mpi.NewCart(3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	c2 := d2.Cuts(0)
	if c2[0] != 0 || c2[1] != 16 || c2[2] != 32 || c2[3] != 48 {
		t.Fatalf("plain cuts %v", c2)
	}
}

func TestNewWorkBalancedValidation(t *testing.T) {
	g := grid.Dims{NX: 16, NY: 8, NZ: 8}
	if _, err := NewWorkBalanced(g, mpi.NewCart(2, 1, 1), make([]int, 7), nil, nil); err == nil {
		t.Fatal("length mismatch should fail")
	}
	bad := make([]int, 16)
	if _, err := NewWorkBalanced(g, mpi.NewCart(2, 1, 1), bad, nil, nil); err == nil {
		t.Fatal("zero rates should fail")
	}
}
