package decomp

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/mpi"
)

func mustNew(t *testing.T, g grid.Dims, topo mpi.Cart) Decomp {
	t.Helper()
	d, err := New(g, topo)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(grid.Dims{NX: 0, NY: 4, NZ: 4}, mpi.NewCart(1, 1, 1)); err == nil {
		t.Error("accepted invalid dims")
	}
	if _, err := New(grid.Dims{NX: 2, NY: 4, NZ: 4}, mpi.NewCart(3, 1, 1)); err == nil {
		t.Error("accepted more ranks than cells")
	}
	if _, err := New(grid.Dims{NX: 6, NY: 4, NZ: 4}, mpi.NewCart(2, 1, 1)); err == nil {
		t.Error("accepted subgrid thinner than 2*Ghost")
	}
}

func TestSubgridsTileGlobalExactly(t *testing.T) {
	g := grid.Dims{NX: 13, NY: 9, NZ: 11}
	topo := mpi.NewCart(3, 2, 2)
	d := mustNew(t, g, topo)
	covered := make(map[[3]int]int)
	total := 0
	for r := 0; r < topo.Size(); r++ {
		s := d.SubFor(r)
		total += s.Local.Cells()
		for k := 0; k < s.Local.NZ; k++ {
			for j := 0; j < s.Local.NY; j++ {
				for i := 0; i < s.Local.NX; i++ {
					key := [3]int{s.OffX + i, s.OffY + j, s.OffZ + k}
					covered[key]++
				}
			}
		}
	}
	if total != g.Cells() {
		t.Fatalf("total cells %d != global %d", total, g.Cells())
	}
	if len(covered) != g.Cells() {
		t.Fatalf("covered %d distinct cells, want %d", len(covered), g.Cells())
	}
	for key, n := range covered {
		if n != 1 {
			t.Fatalf("cell %v owned %d times", key, n)
		}
	}
}

func TestOwnerMatchesSubFor(t *testing.T) {
	g := grid.Dims{NX: 10, NY: 10, NZ: 10}
	topo := mpi.NewCart(2, 2, 1)
	d := mustNew(t, g, topo)
	for gi := 0; gi < g.NX; gi++ {
		for gj := 0; gj < g.NY; gj++ {
			for gk := 0; gk < g.NZ; gk++ {
				r := d.Owner(gi, gj, gk)
				s := d.SubFor(r)
				if _, _, _, ok := s.Contains(gi, gj, gk); !ok {
					t.Fatalf("Owner(%d,%d,%d)=%d but sub does not contain it", gi, gj, gk, r)
				}
			}
		}
	}
}

func TestOwnerPanicsOutside(t *testing.T) {
	d := mustNew(t, grid.Dims{NX: 8, NY: 8, NZ: 8}, mpi.NewCart(2, 1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Owner(8, 0, 0)
}

func TestContainsLocalCoords(t *testing.T) {
	d := mustNew(t, grid.Dims{NX: 8, NY: 8, NZ: 8}, mpi.NewCart(2, 2, 2))
	s := d.SubFor(d.Topo.Rank(1, 1, 1))
	li, lj, lk, ok := s.Contains(5, 6, 7)
	if !ok {
		t.Fatal("high corner sub should contain (5,6,7)")
	}
	if li != 1 || lj != 2 || lk != 3 {
		t.Fatalf("local coords = %d,%d,%d", li, lj, lk)
	}
	if _, _, _, ok := s.Contains(0, 0, 0); ok {
		t.Fatal("high corner sub should not contain origin")
	}
}

func TestBoundaryFaces(t *testing.T) {
	d := mustNew(t, grid.Dims{NX: 8, NY: 8, NZ: 8}, mpi.NewCart(2, 1, 2))
	f := d.BoundaryFaces(d.Topo.Rank(0, 0, 0))
	if !f[grid.X][0] || f[grid.X][1] {
		t.Errorf("x faces = %v", f[grid.X])
	}
	if !f[grid.Y][0] || !f[grid.Y][1] {
		t.Errorf("y faces = %v (unsplit axis: both boundary)", f[grid.Y])
	}
	if !f[grid.Z][0] || f[grid.Z][1] {
		t.Errorf("z faces = %v", f[grid.Z])
	}
}

func TestInteriorCells(t *testing.T) {
	d := mustNew(t, grid.Dims{NX: 16, NY: 8, NZ: 8}, mpi.NewCart(2, 1, 1))
	// Each sub is 8x8x8 with one x-neighbor: interior at width 2 is 6x8x8.
	if got := d.InteriorCells(0, 2); got != 6*8*8 {
		t.Fatalf("InteriorCells = %d, want %d", got, 6*8*8)
	}
	// Width so large nothing remains.
	if got := d.InteriorCells(0, 10); got != 0 {
		t.Fatalf("InteriorCells(width=10) = %d, want 0", got)
	}
}

func TestSplit1BalancedAndComplete(t *testing.T) {
	prop := func(n16, p16 uint16) bool {
		n := int(n16%100) + 1
		p := int(p16%10) + 1
		if p > n {
			p = n
		}
		off := 0
		for c := 0; c < p; c++ {
			size, o := split1(n, p, c)
			if o != off {
				return false
			}
			if size != n/p && size != n/p+1 {
				return false
			}
			off += size
		}
		return off == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBestTopoPrefersCubes(t *testing.T) {
	g := grid.Dims{NX: 64, NY: 64, NZ: 64}
	topo := BestTopo(g, 8)
	if topo.PX != 2 || topo.PY != 2 || topo.PZ != 2 {
		t.Fatalf("BestTopo(64^3, 8) = %+v, want 2x2x2", topo)
	}
	if topo.Size() != 8 {
		t.Fatalf("size = %d", topo.Size())
	}
}

func TestBestTopoRespectsAnisotropy(t *testing.T) {
	// A pencil-shaped domain should be split along its long axis.
	g := grid.Dims{NX: 1024, NY: 8, NZ: 8}
	topo := BestTopo(g, 4)
	if topo.PX != 4 || topo.PY != 1 || topo.PZ != 1 {
		t.Fatalf("BestTopo(pencil, 4) = %+v, want 4x1x1", topo)
	}
}

func TestBestTopoAlwaysExactSize(t *testing.T) {
	g := grid.Dims{NX: 100, NY: 100, NZ: 100}
	for _, n := range []int{1, 2, 3, 5, 6, 7, 12, 24, 36, 60} {
		topo := BestTopo(g, n)
		if topo.Size() != n {
			t.Fatalf("BestTopo size %d != %d", topo.Size(), n)
		}
	}
}

func TestWeakTopoCubicalForCubicPerRank(t *testing.T) {
	// With a cubic per-rank block, the most-cubical global box is the
	// most-cubical factorization of the rank count itself.
	g := grid.Dims{NX: 10, NY: 10, NZ: 10}
	for _, tc := range []struct {
		n    int
		want mpi.Cart
	}{
		{8, mpi.Cart{PX: 2, PY: 2, PZ: 2}},
		{64, mpi.Cart{PX: 4, PY: 4, PZ: 4}},
		{512, mpi.Cart{PX: 8, PY: 8, PZ: 8}},
	} {
		if topo := WeakTopo(g, tc.n); topo != tc.want {
			t.Fatalf("WeakTopo(10^3, %d) = %+v, want %+v", tc.n, topo, tc.want)
		}
	}
}

func TestWeakTopoCompensatesAnisotropy(t *testing.T) {
	// A flat per-rank block (short NZ) should be stacked deeper in Z so
	// the GLOBAL box comes out cubical — WeakTopo minimizes the surface
	// of perRank scaled by the topology, not of the topology alone.
	g := grid.Dims{NX: 16, NY: 16, NZ: 4}
	topo := WeakTopo(g, 64)
	if topo.PZ <= topo.PX || topo.PZ <= topo.PY {
		t.Fatalf("WeakTopo(flat block, 64) = %+v: expected deepest split along Z", topo)
	}
	gx := float64(g.NX * topo.PX)
	gy := float64(g.NY * topo.PY)
	gz := float64(g.NZ * topo.PZ)
	cost := gx*gy + gx*gz + gy*gz
	// The chosen box must beat the slab and the topology-cubical 4x4x4
	// alternative on global surface area.
	for _, alt := range []mpi.Cart{{PX: 64, PY: 1, PZ: 1}, {PX: 4, PY: 4, PZ: 4}} {
		ax := float64(g.NX * alt.PX)
		ay := float64(g.NY * alt.PY)
		az := float64(g.NZ * alt.PZ)
		if acost := ax*ay + ax*az + ay*az; acost < cost {
			t.Fatalf("WeakTopo %+v (surface %g) beaten by %+v (surface %g)", topo, cost, alt, acost)
		}
	}
}

func TestWeakTopoAlwaysExactSize(t *testing.T) {
	g := grid.Dims{NX: 10, NY: 10, NZ: 10}
	for _, n := range []int{1, 2, 3, 6, 8, 24, 64, 512, 4096, 10240} {
		if topo := WeakTopo(g, n); topo.Size() != n {
			t.Fatalf("WeakTopo size %d != %d (%+v)", topo.Size(), n, topo)
		}
	}
}
