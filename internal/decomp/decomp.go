// Package decomp implements the 3D domain decomposition AWP-ODC uses to
// split the global finite-difference grid across ranks (§III.A). Each rank
// owns a rectangular subgrid; the decomposition records local extents,
// global offsets, and which subgrid faces touch the physical domain
// boundary (those ranks also own absorbing-boundary work).
package decomp

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/mpi"
)

// Decomp describes the split of a global grid over a Cartesian topology.
type Decomp struct {
	Global grid.Dims
	Topo   mpi.Cart
	// cuts[axis], when non-nil, holds the p+1 monotone plane offsets of an
	// explicitly placed (work-balanced) partition along that axis; nil
	// falls back to the balanced block distribution of split1. Only
	// NewWorkBalanced sets cuts, so plain New decompositions keep the
	// historical layout bit-for-bit.
	cuts [3][]int
}

// New validates the decomposition. Every rank must receive at least four
// cells per decomposed axis so the 4th-order stencil's two-cell halo never
// spans more than one neighbor.
func New(global grid.Dims, topo mpi.Cart) (Decomp, error) {
	if !global.Valid() {
		return Decomp{}, fmt.Errorf("decomp: invalid global dims %v", global)
	}
	d := Decomp{Global: global, Topo: topo}
	for axis, pair := range [3][2]int{{global.NX, topo.PX}, {global.NY, topo.PY}, {global.NZ, topo.PZ}} {
		n, p := pair[0], pair[1]
		if p > n {
			return Decomp{}, fmt.Errorf("decomp: axis %d has %d ranks for %d cells", axis, p, n)
		}
		if p > 1 && n/p < grid.Ghost*2 {
			return Decomp{}, fmt.Errorf("decomp: axis %d subgrid too thin (%d cells / %d ranks < %d)",
				axis, n, p, grid.Ghost*2)
		}
	}
	return d, nil
}

// Sub describes one rank's subgrid.
type Sub struct {
	Rank  int
	Local grid.Dims // local interior extent
	// Off is the global index of the local (0,0,0) cell.
	OffX, OffY, OffZ int
	// Coords in the topology.
	CX, CY, CZ int
}

// split1 computes the size and offset of part c out of p along an axis of
// n cells, distributing the remainder to the leading parts (the same
// balanced block distribution the original code uses).
func split1(n, p, c int) (size, off int) {
	base := n / p
	rem := n % p
	if c < rem {
		return base + 1, c * (base + 1)
	}
	return base, rem*(base+1) + (c-rem)*base
}

// split computes part c along axis, honoring explicit cuts when present.
func (d Decomp) split(axis, n, p, c int) (size, off int) {
	if cs := d.cuts[axis]; cs != nil {
		return cs[c+1] - cs[c], cs[c]
	}
	return split1(n, p, c)
}

// SubFor returns the subgrid owned by rank.
func (d Decomp) SubFor(rank int) Sub {
	cx, cy, cz := d.Topo.Coords(rank)
	nx, ox := d.split(0, d.Global.NX, d.Topo.PX, cx)
	ny, oy := d.split(1, d.Global.NY, d.Topo.PY, cy)
	nz, oz := d.split(2, d.Global.NZ, d.Topo.PZ, cz)
	return Sub{
		Rank:  rank,
		Local: grid.Dims{NX: nx, NY: ny, NZ: nz},
		OffX:  ox, OffY: oy, OffZ: oz,
		CX: cx, CY: cy, CZ: cz,
	}
}

// Owner returns the rank owning global cell (gi, gj, gk).
func (d Decomp) Owner(gi, gj, gk int) int {
	return d.Topo.Rank(d.owner(0, d.Global.NX, d.Topo.PX, gi),
		d.owner(1, d.Global.NY, d.Topo.PY, gj),
		d.owner(2, d.Global.NZ, d.Topo.PZ, gk))
}

// owner locates the part containing global index g along axis, honoring
// explicit cuts when present.
func (d Decomp) owner(axis, n, p, g int) int {
	cs := d.cuts[axis]
	if cs == nil {
		return owner1(n, p, g)
	}
	if g < 0 || g >= n {
		panic(fmt.Sprintf("decomp: global index %d outside [0,%d)", g, n))
	}
	for c := 1; c < len(cs); c++ {
		if g < cs[c] {
			return c - 1
		}
	}
	return len(cs) - 2
}

// Cuts returns the p+1 cut offsets along axis (0=x, 1=y, 2=z), deriving
// them from the balanced block distribution when no explicit cuts were
// placed. The returned slice is a copy.
func (d Decomp) Cuts(axis int) []int {
	ns := [3]int{d.Global.NX, d.Global.NY, d.Global.NZ}
	ps := [3]int{d.Topo.PX, d.Topo.PY, d.Topo.PZ}
	out := make([]int, ps[axis]+1)
	if cs := d.cuts[axis]; cs != nil {
		copy(out, cs)
		return out
	}
	for c := 0; c < ps[axis]; c++ {
		_, off := split1(ns[axis], ps[axis], c)
		out[c] = off
	}
	out[ps[axis]] = ns[axis]
	return out
}

func owner1(n, p, g int) int {
	if g < 0 || g >= n {
		panic(fmt.Sprintf("decomp: global index %d outside [0,%d)", g, n))
	}
	base := n / p
	rem := n % p
	cut := rem * (base + 1)
	if g < cut {
		return g / (base + 1)
	}
	return rem + (g-cut)/base
}

// Contains reports whether the subgrid owns global cell (gi,gj,gk) and, if
// so, its local coordinates.
func (s Sub) Contains(gi, gj, gk int) (li, lj, lk int, ok bool) {
	li, lj, lk = gi-s.OffX, gj-s.OffY, gk-s.OffZ
	ok = li >= 0 && li < s.Local.NX && lj >= 0 && lj < s.Local.NY && lk >= 0 && lk < s.Local.NZ
	return
}

// BoundaryFaces returns, for each axis/side, whether this subgrid touches
// the physical domain boundary.
func (d Decomp) BoundaryFaces(rank int) map[grid.Axis][2]bool {
	out := make(map[grid.Axis][2]bool, 3)
	for axis := 0; axis < 3; axis++ {
		lo := d.Topo.OnBoundary(rank, axis, -1)
		hi := d.Topo.OnBoundary(rank, axis, +1)
		out[grid.Axis(axis)] = [2]bool{lo, hi}
	}
	return out
}

// InteriorCells returns the total cells of the subgrid that are at least
// `width` cells away from every subgrid face with a neighbor — the cells
// whose update needs no halo data, used by the computation/communication
// overlap schedule (§IV.C).
func (d Decomp) InteriorCells(rank, width int) int {
	s := d.SubFor(rank)
	nx, ny, nz := s.Local.NX, s.Local.NY, s.Local.NZ
	shrink := func(n int, loNbr, hiNbr bool) int {
		if loNbr {
			n -= width
		}
		if hiNbr {
			n -= width
		}
		if n < 0 {
			n = 0
		}
		return n
	}
	nx = shrink(nx, d.Topo.Neighbor(rank, 0, -1) >= 0, d.Topo.Neighbor(rank, 0, +1) >= 0)
	ny = shrink(ny, d.Topo.Neighbor(rank, 1, -1) >= 0, d.Topo.Neighbor(rank, 1, +1) >= 0)
	nz = shrink(nz, d.Topo.Neighbor(rank, 2, -1) >= 0, d.Topo.Neighbor(rank, 2, +1) >= 0)
	return nx * ny * nz
}

// WeakTopo chooses the PX×PY×PZ factorization of nranks for a
// weak-scaling sweep, where every rank holds a fixed perRank subgrid
// and the global grid is perRank scaled by the topology. It picks the
// factorization whose global box is most cubical (minimum box surface
// area): a slab factorization would minimize total cut area — every
// rank keeps only two neighbors — but a weak-scaling study that never
// grows past 1D decomposition measures nothing about 3D halo pressure.
// The paper's weak scaling grows a 3D region, so the sweep should too.
func WeakTopo(perRank grid.Dims, nranks int) mpi.Cart {
	best := mpi.Cart{PX: nranks, PY: 1, PZ: 1}
	bestCost := -1.0
	for px := 1; px <= nranks; px++ {
		if nranks%px != 0 {
			continue
		}
		rem := nranks / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			pz := rem / py
			gx := float64(perRank.NX * px)
			gy := float64(perRank.NY * py)
			gz := float64(perRank.NZ * pz)
			cost := gx*gy + gx*gz + gy*gz
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				best = mpi.Cart{PX: px, PY: py, PZ: pz}
			}
		}
	}
	return best
}

// BestTopo chooses the PX×PY×PZ factorization of nranks that minimizes
// total halo surface for the given global grid — the heuristic the mesh
// partitioner applies when the user does not pin a topology.
func BestTopo(global grid.Dims, nranks int) mpi.Cart {
	best := mpi.Cart{PX: nranks, PY: 1, PZ: 1}
	bestCost := -1.0
	for px := 1; px <= nranks; px++ {
		if nranks%px != 0 {
			continue
		}
		rem := nranks / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			pz := rem / py
			if px > global.NX || py > global.NY || pz > global.NZ {
				continue
			}
			// Total communication volume = sum over axes of
			// (cuts along axis) x (cut-plane area).
			cost := float64(px-1)*float64(global.NY)*float64(global.NZ) +
				float64(py-1)*float64(global.NX)*float64(global.NZ) +
				float64(pz-1)*float64(global.NX)*float64(global.NY)
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				best = mpi.Cart{PX: px, PY: py, PZ: pz}
			}
		}
	}
	return best
}
