package decomp

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/mpi"
)

// NewWorkBalanced builds a decomposition whose cut planes along each
// decomposed axis balance *work* rather than raw cells, for multi-rate
// local time stepping. rateX[i] must be the time-step rate (1, 2, 4, ...)
// of the most restrictive cell anywhere in global x-plane i — a rank
// stepping at rate R does 1/R of the base-rate work per cell, and a
// rank's rate is pinned by its most restrictive cell — and likewise for
// rateY/rateZ. A nil rate slice leaves that axis on the balanced block
// distribution.
//
// Axes are balanced independently: the cost of a contiguous segment is
// width / min(rate over the segment), which is the exact per-rank work
// profile when the topology decomposes a single axis and a conservative
// estimate otherwise. Every part keeps at least grid.Ghost*2 planes so
// the stencil halo never spans more than one neighbor.
func NewWorkBalanced(global grid.Dims, topo mpi.Cart, rateX, rateY, rateZ []int) (Decomp, error) {
	d, err := New(global, topo)
	if err != nil {
		return Decomp{}, err
	}
	axes := [3]struct {
		rates []int
		n, p  int
	}{
		{rateX, global.NX, topo.PX},
		{rateY, global.NY, topo.PY},
		{rateZ, global.NZ, topo.PZ},
	}
	for ax, a := range axes {
		if a.rates == nil || a.p == 1 {
			continue
		}
		if len(a.rates) != a.n {
			return Decomp{}, fmt.Errorf("decomp: axis %d has %d plane rates for %d planes", ax, len(a.rates), a.n)
		}
		cuts, err := balanceAxis(a.rates, a.p)
		if err != nil {
			return Decomp{}, fmt.Errorf("decomp: axis %d: %w", ax, err)
		}
		d.cuts[ax] = cuts
	}
	return d, nil
}

// balanceAxis partitions n planes into p contiguous segments minimizing
// the maximum segment cost width/minRate under a minimum-width constraint,
// by exact dynamic programming (O(p·n²), fine for grid-scale n). Returns
// the p+1 cut offsets.
func balanceAxis(rate []int, p int) ([]int, error) {
	n := len(rate)
	minW := grid.Ghost * 2
	if n < p*minW {
		return nil, fmt.Errorf("%d planes cannot host %d parts of >= %d planes", n, p, minW)
	}
	for i, r := range rate {
		if r < 1 {
			return nil, fmt.Errorf("plane %d has rate %d < 1", i, r)
		}
	}
	// f[k][b]: minimal max-segment cost splitting planes [0,b) into k
	// parts; arg[k][b]: the last cut position achieving it.
	f := make([][]float64, p+1)
	arg := make([][]int, p+1)
	for k := 0; k <= p; k++ {
		f[k] = make([]float64, n+1)
		arg[k] = make([]int, n+1)
		for b := 0; b <= n; b++ {
			f[k][b] = math.Inf(1)
			arg[k][b] = -1
		}
	}
	f[0][0] = 0
	for k := 1; k <= p; k++ {
		bMax := n - (p-k)*minW
		for b := k * minW; b <= bMax; b++ {
			// Scan the last cut a downward with a running min of the
			// segment's rate (segment = planes [a, b)).
			minRate := math.MaxInt
			best, bestA := math.Inf(1), -1
			for a := b - 1; a >= (k-1)*minW; a-- {
				if rate[a] < minRate {
					minRate = rate[a]
				}
				if b-a < minW {
					continue
				}
				cost := float64(b-a) / float64(minRate)
				if m := math.Max(f[k-1][a], cost); m < best {
					best, bestA = m, a
				}
			}
			f[k][b], arg[k][b] = best, bestA
		}
	}
	if math.IsInf(f[p][n], 1) {
		return nil, fmt.Errorf("no feasible %d-way partition of %d planes", p, n)
	}
	cuts := make([]int, p+1)
	cuts[p] = n
	for k, b := p, n; k > 0; k-- {
		b = arg[k][b]
		cuts[k-1] = b
	}
	return cuts, nil
}
