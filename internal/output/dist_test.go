package output

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/agg"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
)

func distFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 8, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 16})
}

// distWorld runs a 4-rank world in which ranks 0 and 1 each own half of
// a 64-byte frame and ranks 2..3 own nothing, appending `frames` frames
// whose content is a function of (frame, rank, byte).
func distWorld(t *testing.T, fsys *pfs.FS, path string, frames, flushEvery int,
	body func(c *mpi.Comm, d *Dist, mine []mpiio.Segment)) {
	t.Helper()
	const frameBytes = 64
	w := mpi.NewWorld(4)
	err := w.RunErr(func(c *mpi.Comm) error {
		var mine []mpiio.Segment
		if c.Rank() < 2 {
			mine = []mpiio.Segment{{Off: c.Rank() * 32, Len: 32}}
		}
		d, err := NewDist(c, fsys, path, frameBytes, mine, flushEvery, agg.Config{}, nil)
		if err != nil {
			return err
		}
		body(c, d, mine)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func framePayload(frame, rank, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(frame*31 + rank*7 + i)
	}
	return b
}

func TestDistFlushGroupingAndContent(t *testing.T) {
	fsys := distFS()
	const frames = 7
	var flushes, opens int
	distWorld(t, fsys, "f", frames, 3, func(c *mpi.Comm, d *Dist, mine []mpiio.Segment) {
		for f := 0; f < frames; f++ {
			if err := d.AppendFrame(f, framePayload(f, c.Rank(), mpiio.TotalLen(mine))); err != nil {
				panic(err)
			}
		}
		if err := d.Flush(); err != nil { // final partial flush
			panic(err)
		}
		if err := d.VerifyStripes(); err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			flushes, opens = d.Stats.Flushes, d.Stats.Opens
		}
	})
	if flushes != 3 { // 3+3+1 frames
		t.Fatalf("flushes = %d, want 3", flushes)
	}
	if opens != 3 { // one writer per flush (default stripe count 1)
		t.Fatalf("opens = %d", opens)
	}
	raw := make([]byte, 7*64)
	if err := fsys.ReadAt("f", 0, raw); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < frames; f++ {
		for rank := 0; rank < 2; rank++ {
			got := raw[f*64+rank*32 : f*64+rank*32+32]
			if !bytes.Equal(got, framePayload(f, rank, 32)) {
				t.Fatalf("frame %d rank %d content mismatch", f, rank)
			}
		}
	}
}

// TestDistRewindReplayIdentity is the rollback contract: rewinding past
// buffered frames and replaying (possibly with different flush grouping)
// yields a file bit-identical to an uninterrupted run.
func TestDistRewindReplayIdentity(t *testing.T) {
	const frames = 6
	straight := distFS()
	distWorld(t, straight, "f", frames, 4, func(c *mpi.Comm, d *Dist, mine []mpiio.Segment) {
		for f := 0; f < frames; f++ {
			if err := d.AppendFrame(f, framePayload(f, c.Rank(), mpiio.TotalLen(mine))); err != nil {
				panic(err)
			}
		}
		if err := d.Flush(); err != nil {
			panic(err)
		}
	})

	replayed := distFS()
	distWorld(t, replayed, "f", frames, 4, func(c *mpi.Comm, d *Dist, mine []mpiio.Segment) {
		n := mpiio.TotalLen(mine)
		// Frames 0..4 (flushing 0..3 at the 4-frame mark), then roll back
		// to frame 2 — frame 4 is still buffered and must be dropped, 0..3
		// are already on disk and will be overwritten identically.
		for f := 0; f <= 4; f++ {
			if err := d.AppendFrame(f, framePayload(f, c.Rank(), n)); err != nil {
				panic(err)
			}
		}
		d.Rewind(2)
		for f := 2; f < frames; f++ {
			if err := d.AppendFrame(f, framePayload(f, c.Rank(), n)); err != nil {
				panic(err)
			}
		}
		if err := d.Flush(); err != nil {
			panic(err)
		}
		if err := d.VerifyStripes(); err != nil {
			panic(err)
		}
		// Frames counts appends minus rewound-out buffered frames:
		// 5 appends, -1 buffered frame dropped by Rewind, +4 replayed = 8.
		if c.Rank() == 0 && d.Stats.Frames != 8 {
			panic(fmt.Sprintf("frame count %d, want 8", d.Stats.Frames))
		}
	})

	a := make([]byte, frames*64)
	b := make([]byte, frames*64)
	if err := straight.ReadAt("f", 0, a); err != nil {
		t.Fatal(err)
	}
	if err := replayed.ReadAt("f", 0, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("replayed file differs from uninterrupted run")
	}
	if straight.Size("f") != replayed.Size("f") {
		t.Fatal("file sizes differ")
	}
}

func TestDistRejectsBadViews(t *testing.T) {
	fsys := distFS()
	w := mpi.NewWorld(1)
	w.Run(func(c *mpi.Comm) {
		if _, err := NewDist(c, fsys, "f", 16, []mpiio.Segment{{Off: 8, Len: 16}}, 1, agg.Config{}, nil); err == nil {
			panic("segment past frame end accepted")
		}
		d, err := NewDist(c, fsys, "f", 16, []mpiio.Segment{{Off: 0, Len: 16}}, 1, agg.Config{}, nil)
		if err != nil {
			panic(err)
		}
		if err := d.AppendFrame(0, make([]byte, 8)); err == nil {
			panic("short frame accepted")
		}
	})
}
