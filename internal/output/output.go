// Package output implements the parallel-output machinery of §III.E:
// run-time aggregation of decimated velocity output in memory buffers
// flushed at a controlled frequency (the optimization that cut I/O
// overhead from 49% to under 2%), MPI-IO-style single-file writes, and
// parallel MD5 checksumming of the sub-arrays for integrity tracking.
package output

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/mpiio"
	"repro/internal/pfs"
)

// Aggregator buffers per-step output records and flushes them to one file
// on the simulated PFS every FlushEvery appended steps.
type Aggregator struct {
	FS         *pfs.FS
	Path       string
	FlushEvery int

	buf       []float32
	steps     int
	offset    int
	flushes   int
	Checksums []string       // MD5 of each flushed chunk
	IOStats   pfs.PhaseStats // accumulated flush costs
}

// NewAggregator creates an aggregator; flushEvery <= 0 flushes every step
// (the pathological unaggregated mode).
func NewAggregator(fsys *pfs.FS, path string, flushEvery int) *Aggregator {
	if flushEvery <= 0 {
		flushEvery = 1
	}
	return &Aggregator{FS: fsys, Path: path, FlushEvery: flushEvery}
}

// Append adds one step's output record.
func (a *Aggregator) Append(data []float32) {
	a.buf = append(a.buf, data...)
	a.steps++
	if a.steps%a.FlushEvery == 0 {
		a.Flush()
	}
}

// Flush writes the buffered records and clears the buffer.
func (a *Aggregator) Flush() {
	if len(a.buf) == 0 {
		return
	}
	data := mpiio.PutFloat32s(a.buf)
	a.FS.WriteAt(a.Path, a.offset, data)
	st := a.FS.SimulatePhase([]pfs.Op{{Path: a.Path, Off: a.offset, Bytes: len(data), Write: true, Open: true}})
	a.accumulate(st)
	sum := md5.Sum(data)
	a.Checksums = append(a.Checksums, hex.EncodeToString(sum[:]))
	a.offset += len(data)
	a.buf = a.buf[:0]
	a.flushes++
}

func (a *Aggregator) accumulate(st pfs.PhaseStats) {
	a.IOStats.Elapsed += st.Elapsed
	a.IOStats.MDSTime += st.MDSTime
	a.IOStats.IOTime += st.IOTime
	a.IOStats.Bytes += st.Bytes
}

// Flushes returns how many flushes have happened.
func (a *Aggregator) Flushes() int { return a.flushes }

// BytesWritten returns the total bytes flushed so far.
func (a *Aggregator) BytesWritten() int { return a.offset }

// ParallelMD5 computes MD5 checksums of nparts contiguous sub-arrays of
// data concurrently — the parallelized integrity pass that "substantially
// decreases the time needed to generate the checksums for several
// terabytes" (§III.E).
func ParallelMD5(data []byte, nparts int) []string {
	if nparts <= 0 {
		nparts = 1
	}
	if nparts > len(data) && len(data) > 0 {
		nparts = len(data)
	}
	sums := make([]string, nparts)
	var wg sync.WaitGroup
	for p := 0; p < nparts; p++ {
		lo := p * len(data) / nparts
		hi := (p + 1) * len(data) / nparts
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			s := md5.Sum(data[lo:hi])
			sums[p] = hex.EncodeToString(s[:])
		}(p, lo, hi)
	}
	wg.Wait()
	return sums
}

// SerialMD5 is the reference implementation for verification.
func SerialMD5(data []byte, nparts int) []string {
	if nparts <= 0 {
		nparts = 1
	}
	if nparts > len(data) && len(data) > 0 {
		nparts = len(data)
	}
	sums := make([]string, nparts)
	for p := 0; p < nparts; p++ {
		lo := p * len(data) / nparts
		hi := (p + 1) * len(data) / nparts
		s := md5.Sum(data[lo:hi])
		sums[p] = hex.EncodeToString(s[:])
	}
	return sums
}

// OverheadModel prices the I/O overhead fraction of a run: stepCompute is
// the per-step compute time, perStepBytes the output volume per recorded
// step, flushEvery the aggregation interval. It reproduces the 49% -> <2%
// aggregation result as a function of flushEvery.
func OverheadModel(fsys *pfs.FS, path string, steps int, stepCompute float64, perStepBytes, flushEvery int) (ioFraction float64) {
	if flushEvery <= 0 {
		flushEvery = 1
	}
	var ioTime float64
	nFlushes := steps / flushEvery
	if nFlushes == 0 {
		nFlushes = 1
	}
	for f := 0; f < nFlushes; f++ {
		st := fsys.SimulatePhase([]pfs.Op{{
			Path: path, Bytes: perStepBytes * flushEvery, Write: true, Open: true,
		}})
		ioTime += st.Elapsed
	}
	total := float64(steps)*stepCompute + ioTime
	if total == 0 {
		return 0
	}
	return ioTime / total
}

// Verify recomputes the MD5 of each flushed chunk and compares with the
// recorded checksums; chunk sizes must be supplied in flush order.
func (a *Aggregator) Verify(chunkBytes []int) error {
	off := 0
	for i, n := range chunkBytes {
		buf := make([]byte, n)
		if err := a.FS.ReadAt(a.Path, off, buf); err != nil {
			return err
		}
		sum := md5.Sum(buf)
		if got := hex.EncodeToString(sum[:]); got != a.Checksums[i] {
			return fmt.Errorf("output: chunk %d checksum mismatch", i)
		}
		off += n
	}
	return nil
}
