package output

import (
	"math/rand"
	"testing"

	"repro/internal/mpiio"
	"repro/internal/pfs"
)

func testFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 8, OSTBandwidth: 1e8, MDSLatency: 1e-3, MDSConcurrent: 4})
}

func TestAggregatorFlushCadence(t *testing.T) {
	fsys := testFS()
	a := NewAggregator(fsys, "out/surface.bin", 5)
	rec := []float32{1, 2, 3}
	for s := 0; s < 12; s++ {
		a.Append(rec)
	}
	if a.Flushes() != 2 {
		t.Fatalf("flushes = %d, want 2 (12 steps / 5)", a.Flushes())
	}
	a.Flush() // drain the remaining 2 steps
	if a.Flushes() != 3 {
		t.Fatalf("flushes after drain = %d", a.Flushes())
	}
	if a.BytesWritten() != 12*3*4 {
		t.Fatalf("bytes = %d, want %d", a.BytesWritten(), 12*3*4)
	}
	// Content round trip.
	raw := make([]byte, a.BytesWritten())
	if err := fsys.ReadAt("out/surface.bin", 0, raw); err != nil {
		t.Fatal(err)
	}
	vals := mpiio.GetFloat32s(raw)
	for s := 0; s < 12; s++ {
		for c := 0; c < 3; c++ {
			if vals[s*3+c] != rec[c] {
				t.Fatalf("sample %d comp %d = %g", s, c, vals[s*3+c])
			}
		}
	}
}

func TestChecksumsVerify(t *testing.T) {
	fsys := testFS()
	a := NewAggregator(fsys, "out/v.bin", 2)
	for s := 0; s < 6; s++ {
		a.Append([]float32{float32(s)})
	}
	if len(a.Checksums) != 3 {
		t.Fatalf("checksums = %d", len(a.Checksums))
	}
	if err := a.Verify([]int{8, 8, 8}); err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte; verification must fail.
	fsys.WriteAt("out/v.bin", 3, []byte{0xFF})
	if err := a.Verify([]int{8, 8, 8}); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestParallelMD5MatchesSerial(t *testing.T) {
	data := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	for _, parts := range []int{1, 3, 8, 64} {
		p := ParallelMD5(data, parts)
		s := SerialMD5(data, parts)
		if len(p) != len(s) {
			t.Fatalf("parts=%d: lengths differ", parts)
		}
		for i := range p {
			if p[i] != s[i] {
				t.Fatalf("parts=%d chunk %d differs", parts, i)
			}
		}
	}
	// Degenerate inputs.
	if got := ParallelMD5(nil, 4); len(got) != 4 {
		t.Fatalf("nil data: %d sums", len(got))
	}
	if got := ParallelMD5([]byte{1}, 0); len(got) != 1 {
		t.Fatalf("0 parts: %d sums", len(got))
	}
}

// Aggregation must collapse the I/O overhead the way §III.E reports:
// per-step flushing is dominated by metadata+latency, while flushing every
// 20k steps makes I/O negligible.
func TestOverheadAggregationEffect(t *testing.T) {
	fsys := testFS()
	steps := 2000
	stepCompute := 1e-3 // 1 ms/step compute
	perStep := 1 << 10  // 1 KiB/step output

	unagg := OverheadModel(fsys, "out/u.bin", steps, stepCompute, perStep, 1)
	agg := OverheadModel(fsys, "out/a.bin", steps, stepCompute, perStep, 500)
	if !(unagg > 0.15) {
		t.Fatalf("unaggregated overhead %g, expected substantial (>15%%)", unagg)
	}
	if !(agg < 0.02) {
		t.Fatalf("aggregated overhead %g, want < 2%%", agg)
	}
	if agg >= unagg/10 {
		t.Fatalf("aggregation gain too small: %g vs %g", agg, unagg)
	}
}
