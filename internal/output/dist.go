package output

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// Dist is the distributed successor of Aggregator: a frame-indexed
// single-file velocity-output writer in which every rank buffers its own
// sub-rectangle of each output frame and the buffered frames are flushed
// collectively through the internal/agg two-phase aggregator — a few
// large stripe-aligned writer streams and ≤ throttle concurrent opens,
// instead of one open per rank per flush (§III.E + §IV.E combined).
//
// Frames are offset-addressed (frame f occupies bytes
// [f·FrameBytes, (f+1)·FrameBytes)), so re-appending a frame after a
// rollback overwrites identical bytes and the final file is bit-identical
// to an uninterrupted run.
type Dist struct {
	c          *mpi.Comm
	fsys       *pfs.FS
	path       string
	frameBytes int              // global bytes per frame
	segs       []mpiio.Segment  // this rank's in-frame view (may be empty)
	flushEvery int
	cfg        agg.Config
	tel        *telemetry.Recorder

	frames []distFrame

	// Stats accumulates over flushes; scalar fields agree on every rank,
	// Stripes is maintained on rank 0 only (latest write of each stripe
	// wins, so it matches the final file).
	Stats DistStats
}

type distFrame struct {
	idx  int
	data []byte
}

// DistStats is the accumulated outcome of a Dist writer.
type DistStats struct {
	Frames  int // frames appended (per rank == global, appends are collective)
	Flushes int
	Bytes   int // payload bytes written, summed over ranks and flushes
	Writes  int // coalesced writes issued
	Opens   int // file opens charged
	MaxConcurrentOpens int
	ShippedBytes       int
	Phase   pfs.PhaseStats // summed virtual cost of all flush phases
	Stripes map[int]agg.StripeChecksum
}

// NewDist creates a distributed writer on communicator c. frameBytes is
// the global frame size; segs is this rank's view within one frame
// (offsets relative to the frame start; empty on ranks that own no
// output points). flushEvery <= 0 flushes every frame (the pathological
// unaggregated mode). All ranks must construct with identical
// frameBytes/flushEvery and collectively cover each frame at most once.
func NewDist(c *mpi.Comm, fsys *pfs.FS, path string, frameBytes int,
	segs []mpiio.Segment, flushEvery int, cfg agg.Config, tel *telemetry.Recorder) (*Dist, error) {
	if frameBytes <= 0 {
		return nil, fmt.Errorf("output: frame size %d", frameBytes)
	}
	if flushEvery <= 0 {
		flushEvery = 1
	}
	for _, s := range segs {
		if s.Off < 0 || s.Off+s.Len > frameBytes {
			return nil, fmt.Errorf("output: segment [%d,%d) outside frame of %d bytes", s.Off, s.Off+s.Len, frameBytes)
		}
	}
	return &Dist{
		c: c, fsys: fsys, path: path, frameBytes: frameBytes,
		segs: append([]mpiio.Segment(nil), segs...),
		flushEvery: flushEvery, cfg: cfg, tel: tel,
		Stats: DistStats{Stripes: map[int]agg.StripeChecksum{}},
	}, nil
}

// AppendFrame buffers this rank's part of frame idx (data length must
// equal the rank's view length; both may be zero on non-owning ranks).
// Collective: every rank must append the same frame sequence — when the
// buffer reaches flushEvery frames the flush runs as a collective write.
func (d *Dist) AppendFrame(idx int, data []byte) error {
	if len(data) != mpiio.TotalLen(d.segs) {
		return fmt.Errorf("output: frame %d: %d bytes for a %d-byte view", idx, len(data), mpiio.TotalLen(d.segs))
	}
	d.frames = append(d.frames, distFrame{idx: idx, data: append([]byte(nil), data...)})
	d.Stats.Frames++
	if len(d.frames) >= d.flushEvery {
		return d.Flush()
	}
	return nil
}

// Rewind drops buffered (unflushed) frames with index >= idx — the
// rollback half of coordinated recovery. Flushed frames need no undo:
// replaying them overwrites identical bytes. Local, not collective; the
// frame counter rolls back with the buffer.
func (d *Dist) Rewind(idx int) {
	kept := d.frames[:0]
	for _, f := range d.frames {
		if f.idx < idx {
			kept = append(kept, f)
		} else {
			d.Stats.Frames--
		}
	}
	d.frames = kept
}

// Flush writes all buffered frames in one collective aggregated write.
// Collective even when this rank's buffer holds no bytes. No-ops (on
// every rank, by the collective-append contract) when no frames are
// buffered anywhere.
func (d *Dist) Flush() error {
	if len(d.frames) == 0 {
		return nil
	}
	var segs []mpiio.Segment
	var data []byte
	for _, f := range d.frames {
		base := f.idx * d.frameBytes
		for _, s := range d.segs {
			segs = append(segs, mpiio.Segment{Off: base + s.Off, Len: s.Len})
		}
		data = append(data, f.data...)
	}
	d.frames = d.frames[:0]
	st, err := agg.WriteIndexed(d.c, d.fsys, d.path, segs, data, d.cfg, d.tel)
	if err != nil {
		return err
	}
	d.Stats.Flushes++
	d.Stats.Bytes += st.Bytes
	d.Stats.Writes += st.Writes
	d.Stats.Opens += st.Opens
	d.Stats.ShippedBytes += st.ShippedBytes
	if st.MaxConcurrentOpens > d.Stats.MaxConcurrentOpens {
		d.Stats.MaxConcurrentOpens = st.MaxConcurrentOpens
	}
	d.Stats.Phase.Elapsed += st.Phase.Elapsed
	d.Stats.Phase.MDSTime += st.Phase.MDSTime
	d.Stats.Phase.IOTime += st.Phase.IOTime
	d.Stats.Phase.Bytes += st.Phase.Bytes
	if st.Phase.MaxOSTLoad > d.Stats.Phase.MaxOSTLoad {
		d.Stats.Phase.MaxOSTLoad = st.Phase.MaxOSTLoad
	}
	for _, s := range st.Stripes {
		d.Stats.Stripes[s.Index] = s
	}
	return nil
}

// VerifyStripes recomputes the per-stripe checksums of the written file
// and compares them with the accumulated flush-time checksums (rank 0
// only; other ranks return nil immediately). A mismatch means a torn or
// lost write slipped past the write-time read-back.
func (d *Dist) VerifyStripes() error {
	if d.c.Rank() != 0 || len(d.Stats.Stripes) == 0 {
		return nil
	}
	ref, err := agg.FileStripeChecksums(d.fsys, d.path)
	if err != nil {
		return err
	}
	if len(ref) != len(d.Stats.Stripes) {
		return fmt.Errorf("output: %d stripes on disk, %d recorded", len(ref), len(d.Stats.Stripes))
	}
	for _, r := range ref {
		got, ok := d.Stats.Stripes[r.Index]
		if !ok {
			return fmt.Errorf("output: stripe %d never recorded", r.Index)
		}
		if got != r {
			return fmt.Errorf("output: stripe %d checksum mismatch: recorded %x/%s, on disk %x/%s",
				r.Index, got.CRC64, got.MD5, r.CRC64, r.MD5)
		}
	}
	return nil
}
