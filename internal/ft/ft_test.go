package ft

import (
	"testing"

	"repro/internal/core/attenuation"
	"repro/internal/core/fd"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
	"repro/internal/pfs"
)

func setup(t testing.TB) (*medium.Medium, float64, StepFunc) {
	t.Helper()
	d := grid.Dims{NX: 10, NY: 10, NZ: 10}
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	m := medium.FromCVM(cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700}),
		dc, dc.SubFor(0), 100)
	dt := m.StableDt(0.5)
	step := func(s *fd.State, _ int) {
		box := fd.FullBox(d)
		fd.UpdateVelocity(s, m, dt, box, fd.Precomp, fd.Blocking{})
		fd.UpdateStress(s, m, dt, box, fd.Precomp, fd.Blocking{})
	}
	return m, dt, step
}

func newState() *fd.State {
	s := fd.NewState(grid.Dims{NX: 10, NY: 10, NZ: 10})
	s.VX.Set(5, 5, 5, 1)
	return s
}

func testFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 4, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 8})
}

// The core FT property: a run with injected failures produces exactly the
// failure-free wavefield.
func TestRecoveryReproducesFailureFreeRun(t *testing.T) {
	m, dt, step := setup(t)
	a := attenuation.New(m, attenuation.DefaultBand, dt)

	// Failure-free reference.
	ref := newState()
	refA := attenuation.New(m, attenuation.DefaultBand, dt)
	hRef := &Harness{FS: testFS(), Dir: "ref", CheckpointEvery: 10}
	if err := hRef.Run(ref, refA, m, 60, func(s *fd.State, n int) {
		step(s, n)
		refA.Apply(s, m, dt, fd.FullBox(s.Dims))
	}, NoFailures); err != nil {
		t.Fatal(err)
	}

	// Faulty run: several injected failures.
	got := newState()
	h := &Harness{FS: testFS(), Dir: "ckpt", CheckpointEvery: 10}
	if err := h.Run(got, a, m, 60, func(s *fd.State, n int) {
		step(s, n)
		a.Apply(s, m, dt, fd.FullBox(s.Dims))
	}, RandomFailures(0.05, 3)); err != nil {
		t.Fatal(err)
	}
	if h.Failures == 0 {
		t.Fatal("injector fired no failures; test vacuous")
	}
	if diff := got.L2Diff(ref); diff != 0 {
		t.Fatalf("recovered run differs from failure-free run: L2 %g (failures=%d rolled back=%d)",
			diff, h.Failures, h.RolledBack)
	}
	if h.Overhead() <= 0 {
		t.Error("failures should cost recomputation")
	}
}

func TestFailAtRollsBackBoundedWork(t *testing.T) {
	m, _, step := setup(t)
	_ = m
	s := newState()
	h := &Harness{FS: testFS(), Dir: "c", CheckpointEvery: 5}
	if err := h.Run(s, nil, m, 20, step, FailAt(13)); err != nil {
		t.Fatal(err)
	}
	if h.Failures != 1 {
		t.Fatalf("failures = %d", h.Failures)
	}
	// Failure at 13 rolls back to checkpoint 10: 3 steps recomputed.
	if h.RolledBack != 3 {
		t.Fatalf("rolled back %d steps, want 3", h.RolledBack)
	}
	if h.StepsExecuted != 23 {
		t.Fatalf("executed %d steps, want 23", h.StepsExecuted)
	}
}

func TestHarnessValidation(t *testing.T) {
	m, _, step := setup(t)
	h := &Harness{FS: testFS(), Dir: "c", CheckpointEvery: 0}
	if err := h.Run(newState(), nil, m, 5, step, NoFailures); err == nil {
		t.Fatal("zero checkpoint interval accepted")
	}
}

func TestOptimalInterval(t *testing.T) {
	// Young's formula: sqrt(2*C*MTBF).
	if got := OptimalInterval(2, 400); got != 40 {
		t.Fatalf("OptimalInterval = %d, want 40", got)
	}
	if OptimalInterval(0, 100) != 1 || OptimalInterval(1, 0) != 1 {
		t.Fatal("degenerate inputs should clamp to 1")
	}
	// Longer MTBF -> longer interval.
	if OptimalInterval(2, 10000) <= OptimalInterval(2, 100) {
		t.Fatal("interval not increasing with MTBF")
	}
}

func TestFrequentFailuresStillComplete(t *testing.T) {
	m, _, step := setup(t)
	s := newState()
	h := &Harness{FS: testFS(), Dir: "c", CheckpointEvery: 3}
	// 20% failure rate: the run must still terminate and produce the
	// correct state.
	if err := h.Run(s, nil, m, 30, step, RandomFailures(0.2, 9)); err != nil {
		t.Fatal(err)
	}
	ref := newState()
	h2 := &Harness{FS: testFS(), Dir: "r", CheckpointEvery: 3}
	if err := h2.Run(ref, nil, m, 30, step, NoFailures); err != nil {
		t.Fatal(err)
	}
	if s.L2Diff(ref) != 0 {
		t.Fatal("high-failure run diverged")
	}
}
