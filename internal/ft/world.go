// Multi-rank coordinated checkpoint/restart (§III.F). RunWorld drives
// the real solver across an in-process MPI world under injected chaos —
// message drop/corrupt/delay, whole-rank crash, and transient or silent
// PFS faults — and recovers from every fault class by coordinated
// rollback: all ranks return to the newest step for which every rank has
// a CRC-valid checkpoint (checkpoint.FindLatestValid) and replay.
//
// The protocol per attempt:
//
//  1. each rank steps its solver.Stepper, writing a checkpoint every
//     Interval steps (step 0 included, so rollback always has a floor);
//  2. a rank that faults — injected crash panic, aborted-world panic
//     after a peer crashed, send-retry exhaustion — aborts the world so
//     blocked peers unwind, then parks at an out-of-band coordinator;
//  3. once every rank has parked, the last arriver (the leader) resets
//     the MPI runtime, elects the restart step, and broadcasts the
//     decision: finish, roll back and replay, rebuild from scratch
//     (when no coordinated checkpoint survived, or some rank faulted
//     before its solver state even existed), or give up (recovery
//     budget exhausted);
//  4. on rollback every rank reloads its checkpoint, rewinds its step
//     cursor, and re-enters 1. Recovery wall time lands in the telemetry
//     Recovery phase.
//
// Because the solver is deterministic, per-step observables are
// index-addressed, and PGV maps are monotone max-folds, a replayed step
// range overwrites identical values: the recovered result is bit-
// identical to a failure-free run — the property the chaos soak tests
// pin across comm models and fault classes.
package ft

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/core/solver"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// WorldOptions configures a chaos-hardened multi-rank run.
type WorldOptions struct {
	// Solver is the run configuration (topology, comm model, physics).
	Solver solver.Options
	// Query supplies the velocity model.
	Query cvm.Querier
	// FS is the simulated parallel file system holding checkpoints.
	FS *pfs.FS
	// Dir is the checkpoint directory on FS.
	Dir string
	// Interval is the checkpoint cadence in steps (default 10).
	Interval int
	// Chaos, when non-nil, arms message-layer fault injection.
	Chaos *mpi.ChaosPlan
	// PFSFaults, when non-nil, arms transient storage-fault injection.
	PFSFaults *pfs.FaultPlan
	// MaxRecoveries bounds coordinated recoveries before the run is
	// declared lost (default 16).
	MaxRecoveries int
	// Logf routes the harness's diagnostic messages (checkpoint-interval
	// rounding). nil means log.Printf; the ensemble farm, which runs
	// hundreds of worlds, installs its own logger (or a no-op).
	Logf func(format string, args ...any)
}

// WorldStats reports what the harness did and endured.
type WorldStats struct {
	Recoveries    int   // coordinated rollbacks (incl. rebuilds)
	Rebuilds      int   // recoveries with no usable coordinated checkpoint
	RestartSteps  []int // elected rollback steps, in recovery order
	Checkpoints   int   // successful per-rank checkpoint commits
	SaveErrors    int   // checkpoint saves lost to storage faults (survivable)
	ReplayedSteps int   // step executions repeated due to rollback
	Chaos         mpi.ChaosStats
	Faults        pfs.FaultStats
}

// ErrRecoveryBudget is wrapped by RunWorld's error when MaxRecoveries
// coordinated recoveries did not produce a completed run.
var ErrRecoveryBudget = errors.New("ft: recovery budget exhausted")

// decisionKind is the leader's verdict at a coordination point.
type decisionKind int

const (
	decideFinish  decisionKind = iota // all ranks completed: return results
	decideRestart                     // roll back to step and replay
	decideRebuild                     // rebuild rank state from scratch and replay
	decideFail                        // recovery budget exhausted
)

type decision struct {
	kind decisionKind
	step int // restart step for decideRestart
}

// coordinator is the out-of-band rendezvous the recovery protocol runs
// on. It is deliberately NOT built on mpi collectives: after a crash the
// world is aborted and unusable until the leader resets it, which must
// happen while every rank goroutine is provably not touching the runtime
// — i.e. parked here.
type coordinator struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
	gen  int

	arrived  int
	anyFault bool
	allDone  bool
	allStep  bool // every arrived rank has a live Stepper
	minIdx   int  // lowest current step index among arrived ranks

	dec          decision
	recoveries   int
	rebuilds     int
	restartSteps []int

	world    *mpi.World
	fs       *pfs.FS
	dir      string
	maxRecov int
}

func newCoordinator(n int, world *mpi.World, fs *pfs.FS, dir string, maxRecov int) *coordinator {
	c := &coordinator{n: n, allDone: true, allStep: true, minIdx: int(^uint(0) >> 1),
		world: world, fs: fs, dir: dir, maxRecov: maxRecov}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// arrive parks the rank until all n ranks have arrived, then returns the
// leader's decision for this round. done reports a cleanly completed
// segment; fault reports any recovered failure; hasStepper reports
// whether this rank's solver state exists (a rank that faulted during
// setup cannot roll back — NewStepper's collectives need all ranks — so
// the leader must pick a rebuild instead); stepIdx is the rank's current
// step cursor, bounding the restart election to genuine rollbacks.
func (c *coordinator) arrive(done, fault, hasStepper bool, stepIdx int) decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.anyFault = c.anyFault || fault
	c.allDone = c.allDone && done
	c.allStep = c.allStep && hasStepper
	if stepIdx < c.minIdx {
		c.minIdx = stepIdx
	}
	c.arrived++
	if c.arrived == c.n {
		c.dec = c.decide()
		// Reset accumulators for the next round and release the others.
		c.arrived, c.anyFault, c.allDone, c.allStep = 0, false, true, true
		c.minIdx = int(^uint(0) >> 1)
		c.gen++
		c.cond.Broadcast()
		return c.dec
	}
	gen := c.gen
	for gen == c.gen {
		c.cond.Wait()
	}
	return c.dec
}

// decide runs on the leader with every rank parked: the only moment the
// MPI runtime may be reset safely.
func (c *coordinator) decide() decision {
	if !c.anyFault && c.allDone {
		return decision{kind: decideFinish}
	}
	c.recoveries++
	if c.recoveries > c.maxRecov {
		return decision{kind: decideFail}
	}
	c.world.Reset()
	step := -1
	if c.allStep {
		step = checkpoint.FindLatestValid(c.fs, c.dir, c.n)
	}
	// A restart must be a genuine rollback on every rank: jumping a
	// cursor FORWARD (possible when stale checkpoints from a previous
	// incarnation outlive a rebuild) would skip recording the
	// observables of the jumped-over steps and break bit-identity.
	if step < 0 || step > c.minIdx {
		c.rebuilds++
		return decision{kind: decideRebuild}
	}
	c.restartSteps = append(c.restartSteps, step)
	return decision{kind: decideRestart, step: step}
}

// RunWorld executes the run under the configured fault plans and returns
// the rank-0 result, guaranteed bit-identical to a failure-free
// solver.Run with the same solver options.
func RunWorld(o WorldOptions) (*solver.Result, WorldStats, error) {
	if o.Interval <= 0 {
		o.Interval = 10
	}
	if o.MaxRecoveries <= 0 {
		o.MaxRecoveries = 16
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	// Plan LTS rate clusters exactly as solver.Run would, so a
	// checkpointed world and a failure-free Run share one decomposition
	// (work-balanced cuts included) and stay bit-comparable.
	planned, err := solver.PlanLTS(o.Query, o.Solver)
	if err != nil {
		return nil, WorldStats{}, err
	}
	dc, opt, err := solver.Prepare(planned)
	if err != nil {
		return nil, WorldStats{}, err
	}
	// Checkpoints must land on super-step boundaries: mid-super-step
	// wavefield states never exist, so an off-boundary cadence could not
	// be honored (and rollback targets must divide by the depth).
	if T := opt.TemporalDepth; T > 1 && o.Interval%T != 0 {
		rounded := (o.Interval/T + 1) * T
		o.Logf("ft: checkpoint interval %d is not a multiple of TemporalDepth %d; rounding up to %d",
			o.Interval, T, rounded)
		o.Interval = rounded
	}
	world := mpi.NewWorld(opt.Topo.Size())
	if o.Chaos != nil {
		world.InjectChaos(*o.Chaos)
	}
	if o.PFSFaults != nil {
		o.FS.InjectFaults(*o.PFSFaults)
	}
	coord := newCoordinator(opt.Topo.Size(), world, o.FS, o.Dir, o.MaxRecoveries)

	var (
		mu                        sync.Mutex
		result                    *solver.Result
		saved, saveErrs, replayed atomic.Int64
	)

	runErr := world.RunErr(func(c *mpi.Comm) error {
		h := &rankHarness{
			comm: c, world: world, coord: coord, query: o.Query, dc: dc, opt: opt,
			fs: o.FS, dir: o.Dir, interval: o.Interval, logf: o.Logf,
			saved: &saved, saveErrs: &saveErrs, replayed: &replayed,
		}
		res, err := h.run()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			result = res
			mu.Unlock()
		}
		return nil
	})

	stats := WorldStats{
		Recoveries:    coord.recoveries,
		Rebuilds:      coord.rebuilds,
		RestartSteps:  coord.restartSteps,
		Checkpoints:   int(saved.Load()),
		SaveErrors:    int(saveErrs.Load()),
		ReplayedSteps: int(replayed.Load()),
		Chaos:         world.ChaosStats(),
		Faults:        o.FS.FaultStats(),
	}
	if runErr != nil {
		return nil, stats, runErr
	}
	return result, stats, nil
}

// rankHarness is one rank's side of the recovery protocol.
type rankHarness struct {
	comm     *mpi.Comm
	world    *mpi.World
	coord    *coordinator
	query    cvm.Querier
	dc       decomp.Decomp
	opt      solver.Options
	fs       *pfs.FS
	dir      string
	interval int
	logf     func(format string, args ...any)

	saved, saveErrs, replayed *atomic.Int64
}

func (h *rankHarness) run() (*solver.Result, error) {
	var st *solver.Stepper
	defer func() {
		if st != nil {
			st.Close()
		}
	}()
	for {
		res, segErr := h.runSegment(&st)
		if segErr != nil {
			// Unwedge peers blocked in the runtime, then park. Abort is
			// idempotent, so concurrent faulting ranks are fine.
			h.world.Abort()
		}
		idx := 0
		if st != nil {
			idx = st.StepIndex()
		}
		dec := h.coord.arrive(segErr == nil, segErr != nil, st != nil, idx)
	decisions:
		for {
			switch dec.kind {
			case decideFinish:
				return res, nil
			case decideFail:
				if segErr != nil {
					return nil, fmt.Errorf("%w (rank %d last fault: %v)",
						ErrRecoveryBudget, h.comm.Rank(), segErr)
				}
				return nil, ErrRecoveryBudget
			case decideRebuild:
				// No coordinated checkpoint usable by every rank: rebuild
				// rank state from scratch and replay the whole run.
				// Deterministic replay makes this exactly the failure-free
				// computation.
				if st != nil {
					h.replayed.Add(int64(st.StepIndex()))
					st.Close()
					st = nil
				}
				break decisions
			case decideRestart:
				// The leader only picks restart when every rank reported a
				// live Stepper, so st != nil here.
				sp := st.Recorder().Span(telemetry.Recovery)
				lerr := checkpoint.Load(h.fs, h.dir, h.comm.Rank(), dec.step,
					st.State(), st.Atten())
				if lerr == nil {
					prev := st.StepIndex()
					if serr := st.SetStepIndex(dec.step); serr != nil {
						lerr = serr
					} else {
						h.replayed.Add(int64(prev - dec.step))
					}
				}
				sp.End()
				if lerr != nil {
					// This rank cannot honor the decision (its checkpoint
					// file decayed between election and load). Re-fault:
					// peers that already resumed unwind on the abort, and
					// the next round elects an older step or a rebuild.
					h.world.Abort()
					segErr = lerr
					dec = h.coord.arrive(false, true, true, st.StepIndex())
					continue decisions
				}
				break decisions
			}
		}
	}
}

// runSegment runs setup (if needed) and the checkpointed step loop to
// completion, converting every panic the chaos layer can throw — injected
// rank crash, aborted-world unwind, send-retry exhaustion — into an
// error for the recovery protocol.
func (h *rankHarness) runSegment(stp **solver.Stepper) (res *solver.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("ft: rank %d fault: %v", h.comm.Rank(), p)
			}
		}
	}()
	if *stp == nil {
		st, nerr := solver.NewStepper(h.comm, h.query, h.dc, h.opt)
		if nerr != nil {
			return nil, nerr
		}
		*stp = st
		// Multi-rate LTS only exposes its cycle length after stepper
		// construction (rate assignment needs the per-rank media); like the
		// TemporalDepth rounding above, checkpoints must land on cycle
		// boundaries, where StepIndex is settable.
		if a := st.StepAlign(); a > 1 && h.interval%a != 0 {
			rounded := (h.interval/a + 1) * a
			if h.comm.Rank() == 0 {
				h.logf("ft: checkpoint interval %d is not a multiple of the step alignment %d; rounding up to %d",
					h.interval, a, rounded)
			}
			h.interval = rounded
		}
	}
	st := *stp
	for !st.Done() {
		idx := st.StepIndex()
		if idx%h.interval == 0 {
			if _, serr := checkpoint.Save(h.fs, h.dir, h.comm.Rank(), idx,
				st.State(), st.Atten(), st.Recorder()); serr != nil {
				// Survivable: recovery rolls back further instead.
				h.saveErrs.Add(1)
			} else {
				h.saved.Add(1)
			}
		}
		st.Step()
	}
	return st.Finish()
}
