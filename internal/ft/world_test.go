package ft

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/pfs"
)

func worldSolverOptions(topo mpi.Cart, comm solver.CommModel) solver.Options {
	g := grid.Dims{NX: 20, NY: 20, NZ: 14}
	src := source.PointSource{
		GI: 10, GJ: 10, GK: 7,
		M0:     1e15,
		Tensor: source.Explosion,
		STF:    source.GaussianPulse(0.08, 0.02),
	}
	return solver.Options{
		Global:      g,
		H:           100,
		Steps:       40,
		Topo:        topo,
		Comm:        comm,
		Variant:     fd.Precomp,
		ABC:         solver.SpongeABC,
		SpongeWidth: 4,
		FreeSurface: true,
		Attenuation: true,
		Sources:     []source.SampledSource{src.Sample(0.002, 200)},
		Receivers:   [][3]int{{5, 10, 7}, {15, 10, 7}, {10, 5, 7}, {10, 10, 2}},
		TrackPGV:    true,
	}
}

func worldQuerier() cvm.Querier { return cvm.SoCal(2000, 2000, 1400, 400) }

// assertBitIdentical requires got's observables to match ref exactly —
// not approximately: the headline property of coordinated recovery is
// that replay reproduces the failure-free computation bit for bit.
func assertBitIdentical(t *testing.T, ref, got *solver.Result) {
	t.Helper()
	if got == nil {
		t.Fatal("nil recovered result")
	}
	if len(got.Seismograms) != len(ref.Seismograms) {
		t.Fatalf("seismogram count %d, want %d", len(got.Seismograms), len(ref.Seismograms))
	}
	for r := range ref.Seismograms {
		if len(got.Seismograms[r]) != len(ref.Seismograms[r]) {
			t.Fatalf("receiver %d: %d samples, want %d",
				r, len(got.Seismograms[r]), len(ref.Seismograms[r]))
		}
		for n, v := range ref.Seismograms[r] {
			if got.Seismograms[r][n] != v {
				t.Fatalf("receiver %d sample %d: %v, want %v (not bit-identical)",
					r, n, got.Seismograms[r][n], v)
			}
		}
	}
	for name, pair := range map[string][2][]float64{
		"PGVH": {ref.PGVH, got.PGVH},
		"PGVX": {ref.PGVX, got.PGVX},
		"PGVY": {ref.PGVY, got.PGVY},
		"PGVZ": {ref.PGVZ, got.PGVZ},
	} {
		if len(pair[1]) != len(pair[0]) {
			t.Fatalf("%s length %d, want %d", name, len(pair[1]), len(pair[0]))
		}
		for i, v := range pair[0] {
			if pair[1][i] != v {
				t.Fatalf("%s[%d] = %g, want %g (not bit-identical)", name, i, pair[1][i], v)
			}
		}
	}
}

// A fault-free RunWorld is just the solver plus checkpoints: identical
// result, zero recoveries, one checkpoint per rank per interval.
func TestWorldCleanMatchesSolverRun(t *testing.T) {
	q := worldQuerier()
	opt := worldSolverOptions(mpi.NewCart(2, 1, 1), solver.Asynchronous)
	ref, err := solver.Run(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunWorld(WorldOptions{
		Solver: opt, Query: q, FS: testFS(), Dir: "ckpt", Interval: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 0 || stats.Rebuilds != 0 {
		t.Fatalf("clean run recovered: %+v", stats)
	}
	// Saves at steps 0, 8, 16, 24, 32 on each of 2 ranks.
	if stats.Checkpoints != 10 {
		t.Fatalf("checkpoints = %d, want 10", stats.Checkpoints)
	}
	assertBitIdentical(t, ref, res)
}

// The acceptance soak matrix: every fault class recovers to the exact
// failure-free observables under every comm model tested.
func TestChaosSoakMatrix(t *testing.T) {
	q := worldQuerier()
	topo := mpi.NewCart(2, 1, 1)

	classes := []struct {
		name         string
		chaos        *mpi.ChaosPlan
		faults       *pfs.FaultPlan
		wantRecovery bool
	}{
		// Whole-rank crash mid-run: peers unwind on the abort, the world
		// rolls back to the last coordinated checkpoint and replays.
		{"rank-crash",
			&mpi.ChaosPlan{Seed: 11, CrashAtSend: map[int]uint64{1: 37}},
			nil, true},
		// Message drop, corruption, and delay: healed transparently by
		// sender retry and receiver checksum rejection — no rollback, but
		// the transport must not perturb a single bit of physics.
		{"message-faults",
			&mpi.ChaosPlan{Seed: 23, DropProb: 0.03, CorruptProb: 0.03, DelayProb: 0.05},
			nil, false},
		// Rank crash while checkpoint files are silently torn: recovery
		// must elect a step whose files verify on every rank.
		{"torn-checkpoint",
			&mpi.ChaosPlan{Seed: 7, CrashAtSend: map[int]uint64{0: 61}},
			&pfs.FaultPlan{Seed: 5, TornWriteProb: 0.25}, true},
	}
	models := []solver.CommModel{solver.Asynchronous, solver.AsyncReduced}

	for _, model := range models {
		opt := worldSolverOptions(topo, model)
		ref, err := solver.Run(q, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range classes {
			t.Run(fmt.Sprintf("%s/%v", tc.name, model), func(t *testing.T) {
				res, stats, err := RunWorld(WorldOptions{
					Solver: opt, Query: q, FS: testFS(), Dir: "ckpt", Interval: 8,
					Chaos: tc.chaos, PFSFaults: tc.faults,
				})
				if err != nil {
					t.Fatalf("RunWorld: %v (stats %+v)", err, stats)
				}
				if tc.wantRecovery && stats.Recoveries == 0 {
					t.Fatalf("no recovery happened; fault class vacuous (stats %+v)", stats)
				}
				if tc.chaos.DropProb > 0 && (stats.Chaos.Dropped == 0 || stats.Chaos.Retries == 0) {
					t.Fatalf("drop class injected nothing: %+v", stats.Chaos)
				}
				if tc.chaos.CorruptProb > 0 && stats.Chaos.ChecksumRejects == 0 {
					t.Fatalf("corruption never rejected by checksum: %+v", stats.Chaos)
				}
				if tc.faults != nil && stats.Faults.TornWrites == 0 {
					t.Fatalf("torn-write class tore nothing: %+v", stats.Faults)
				}
				assertBitIdentical(t, ref, res)
			})
		}
	}
}

// A crash during rank setup (before the Stepper exists) cannot roll
// back — NewStepper's collectives need every rank — so the leader must
// rebuild the world from scratch, and replay still lands bit-identical.
func TestCrashDuringSetupRebuilds(t *testing.T) {
	q := worldQuerier()
	opt := worldSolverOptions(mpi.NewCart(2, 1, 1), solver.Asynchronous)
	ref, err := solver.Run(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunWorld(WorldOptions{
		Solver: opt, Query: q, FS: testFS(), Dir: "ckpt", Interval: 8,
		Chaos: &mpi.ChaosPlan{Seed: 3, CrashAtSend: map[int]uint64{1: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebuilds == 0 {
		t.Fatalf("setup crash should force a rebuild (stats %+v)", stats)
	}
	assertBitIdentical(t, ref, res)
}

// The acceptance scenario for FindLatestValid at world scope: the
// newest coordinated checkpoint is damaged — truncated on one rank,
// bit-flipped on the other — so recovery must elect the PREVIOUS
// coordinated step and replay from there.
func TestDamagedNewestCheckpointRollsBackWorld(t *testing.T) {
	q := worldQuerier()
	topo := mpi.NewCart(2, 1, 1)
	opt := worldSolverOptions(topo, solver.Asynchronous)
	ref, err := solver.Run(q, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: clean run (chaos armed but inert so it counts sends)
	// leaves coordinated checkpoints at steps 0..32 on the shared FS.
	fsys := testFS()
	_, pilot, err := RunWorld(WorldOptions{
		Solver: opt, Query: q, FS: fsys, Dir: "ckpt", Interval: 8,
		Chaos: &mpi.ChaosPlan{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Damage the newest step (32): truncate rank 0's file, flip a
	// payload bit in rank 1's. The election must skip to 24.
	p0 := checkpoint.FileName("ckpt", 0, 32)
	raw := make([]byte, fsys.Size(p0))
	if err := fsys.ReadAt(p0, 0, raw); err != nil {
		t.Fatal(err)
	}
	fsys.Remove(p0)
	if err := fsys.WriteAt(p0, 0, raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	p1 := checkpoint.FileName("ckpt", 1, 32)
	flip := make([]byte, fsys.Size(p1))
	if err := fsys.ReadAt(p1, 0, flip); err != nil {
		t.Fatal(err)
	}
	flip[60] ^= 0x20
	if err := fsys.WriteAt(p1, 0, flip); err != nil {
		t.Fatal(err)
	}
	if got := checkpoint.FindLatestValid(fsys, "ckpt", topo.Size()); got != 24 {
		t.Fatalf("FindLatestValid = %d after damage, want 24", got)
	}

	// Phase 2 on the same FS: crash rank 1 about 68%% through its send
	// budget — between the step-24 re-save and step 32, so the damaged
	// files are still the newest on disk when the leader elects.
	crashAt := uint64(float64(pilot.Chaos.Delivered) / 2 * 0.68)
	res, stats, err := RunWorld(WorldOptions{
		Solver: opt, Query: q, FS: fsys, Dir: "ckpt", Interval: 8,
		Chaos: &mpi.ChaosPlan{Seed: 9, CrashAtSend: map[int]uint64{1: crashAt}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 1 || stats.Rebuilds != 0 {
		t.Fatalf("want exactly one rollback recovery, got %+v", stats)
	}
	if len(stats.RestartSteps) != 1 || stats.RestartSteps[0] != 24 {
		t.Fatalf("elected restart steps %v, want [24] (crashAt=%d)", stats.RestartSteps, crashAt)
	}
	assertBitIdentical(t, ref, res)
}

// When the transport is broken beyond the retry budget on every
// attempt, the coordinated protocol must give up — on all ranks, so no
// goroutine is left parked — with ErrRecoveryBudget.
func TestRecoveryBudgetExhausted(t *testing.T) {
	q := worldQuerier()
	opt := worldSolverOptions(mpi.NewCart(2, 1, 1), solver.Asynchronous)
	_, stats, err := RunWorld(WorldOptions{
		Solver: opt, Query: q, FS: testFS(), Dir: "ckpt", Interval: 8,
		MaxRecoveries: 3,
		Chaos: &mpi.ChaosPlan{
			Seed: 17, DropProb: 1, MaxRetries: 2, MaxConsecutiveFaults: 1 << 20,
		},
	})
	if !errors.Is(err, ErrRecoveryBudget) {
		t.Fatalf("err = %v, want ErrRecoveryBudget", err)
	}
	if stats.Recoveries != 4 {
		t.Fatalf("recoveries = %d, want MaxRecoveries+1 = 4", stats.Recoveries)
	}
	if stats.Chaos.Dropped == 0 || stats.Chaos.Retries == 0 {
		t.Fatalf("exhaustion without drops/retries is vacuous: %+v", stats.Chaos)
	}
}

// ltsSplitQuerier is rock for x < split metres, soft sediment beyond —
// enough Vp contrast for a rate-4 LTS cluster on the soft rank.
type ltsSplitQuerier struct{ split float64 }

func (q ltsSplitQuerier) Query(x, _, _ float64) cvm.Material {
	if x < q.split {
		return cvm.Material{Vp: 5200, Vs: 3000, Rho: 2700}
	}
	return cvm.Material{Vp: 1200, Vs: 700, Rho: 1900}
}

func ltsWorldOptions() solver.Options {
	g := grid.Dims{NX: 32, NY: 12, NZ: 12}
	src := source.PointSource{
		GI: 8, GJ: 6, GK: 6,
		M0:     1e15,
		Tensor: source.Explosion,
		STF:    source.GaussianPulse(0.06, 0.015),
	}
	return solver.Options{
		Global:      g,
		H:           100,
		Steps:       40,
		Topo:        mpi.NewCart(2, 1, 1),
		Comm:        solver.Asynchronous,
		Variant:     fd.Precomp,
		ABC:         solver.SpongeABC,
		SpongeWidth: 4,
		FreeSurface: true,
		Sources:     []source.SampledSource{src.Sample(0.002, 200)},
		Receivers:   [][3]int{{8, 6, 3}, {24, 6, 3}},
		TrackPGV:    true,
		LTS:         solver.LTSOptions{Enabled: true, MaxRateRatio: 4, WorkBalance: true},
	}
}

// Under multi-rate LTS, checkpoints only exist on cycle boundaries: an
// unaligned interval must be rounded up to the cycle length, and a clean
// run must stay bit-identical to solver.Run (which also exercises the
// PlanLTS parity between RunWorld and Run on work-balanced cuts).
func TestWorldLTSIntervalAlignment(t *testing.T) {
	q := ltsSplitQuerier{split: 16 * 100}
	opt := ltsWorldOptions()
	ref, err := solver.Run(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunWorld(WorldOptions{
		Solver: opt, Query: q, FS: testFS(), Dir: "ckpt", Interval: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 0 {
		t.Fatalf("clean run recovered: %+v", stats)
	}
	// Max rate 4 makes the alignment 4, so interval 7 rounds up to 8:
	// saves at steps 0, 8, 16, 24, 32 on each of 2 ranks.
	if stats.Checkpoints != 10 {
		t.Fatalf("checkpoints = %d, want 10 (interval not rounded to cycle length?)", stats.Checkpoints)
	}
	assertBitIdentical(t, ref, res)
}

// A rank crash mid-run under mixed-rate LTS: rollback lands on a cycle
// boundary and replay reproduces the failure-free observables exactly.
func TestWorldLTSCrashRecovery(t *testing.T) {
	q := ltsSplitQuerier{split: 16 * 100}
	opt := ltsWorldOptions()
	ref, err := solver.Run(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunWorld(WorldOptions{
		Solver: opt, Query: q, FS: testFS(), Dir: "ckpt", Interval: 8,
		Chaos: &mpi.ChaosPlan{Seed: 17, CrashAtSend: map[int]uint64{1: 60}},
	})
	if err != nil {
		t.Fatalf("RunWorld: %v (stats %+v)", err, stats)
	}
	if stats.Recoveries == 0 {
		t.Fatalf("crash never fired; fault vacuous (stats %+v)", stats)
	}
	assertBitIdentical(t, ref, res)
}

// TestWorld16RankCrashRecovery runs coordinated recovery at 16 ranks
// (4x2x2) — the first world shape where the combining-tree barrier and
// binomial collectives have depth > 2 and internal tree nodes with two
// children. A rank crashes mid-run, the abort must unwind 15 peers
// parked across the tree (not a single convoy condvar), and Reset must
// rearm every tree node so replay lands bit-identical. This pins the
// scale-refactor collectives against the recovery protocol, which is
// deliberately NOT built on them.
func TestWorld16RankCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("16-rank recovery run skipped in -short")
	}
	q := worldQuerier()
	opt := worldSolverOptions(mpi.NewCart(4, 2, 2), solver.AsyncReduced)
	ref, err := solver.Run(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunWorld(WorldOptions{
		Solver: opt, Query: q, FS: testFS(), Dir: "ckpt", Interval: 8,
		Chaos: &mpi.ChaosPlan{Seed: 29, CrashAtSend: map[int]uint64{11: 45}},
	})
	if err != nil {
		t.Fatalf("RunWorld: %v (stats %+v)", err, stats)
	}
	if stats.Recoveries == 0 {
		t.Fatalf("crash never fired; fault vacuous (stats %+v)", stats)
	}
	assertBitIdentical(t, ref, res)
}
