// Package ft implements the application-level fault-tolerance harness of
// §III.F: periodic checkpointing against injected failures, with the
// recovery semantics the paper describes — a failed step costs the work
// since the last checkpoint, the run resumes from saved state, and the
// recovered result is identical to a failure-free run. The
// continue-on-failure direction of Chen & Dongarra [11] (non-failing
// processes keep running while the environment adapts) is modeled by the
// harness's bounded rollback: only the failed interval is recomputed.
package ft

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/core/attenuation"
	"repro/internal/core/fd"
	"repro/internal/medium"
	"repro/internal/pfs"
)

// StepFunc advances the wavefield by one step (the solver body).
type StepFunc func(s *fd.State, step int)

// FailureInjector reports whether a failure strikes at the given step.
type FailureInjector func(step int) bool

// NoFailures never fails.
func NoFailures(int) bool { return false }

// RandomFailures fails each step with probability p (deterministic
// seed). The injector is goroutine-safe: the multi-rank harness may call
// one shared injector from every rank, and the underlying rand.Rand is
// not safe for concurrent use without the lock.
func RandomFailures(p float64, seed int64) FailureInjector {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(int) bool {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64() < p
	}
}

// FailAt fails exactly once at the given step (it does not re-fire when
// the harness replays the step after recovery). Goroutine-safe: exactly
// one caller observes the failure even if several ranks probe the same
// step concurrently.
func FailAt(step int) FailureInjector {
	var fired atomic.Bool
	return func(s int) bool {
		return s == step && fired.CompareAndSwap(false, true)
	}
}

// Harness drives a checkpointed run with failure injection.
type Harness struct {
	FS              *pfs.FS
	Dir             string
	Rank            int
	CheckpointEvery int

	// Stats.
	Failures      int
	Checkpoints   int
	StepsExecuted int // includes recomputed steps
	RolledBack    int // total steps recomputed
}

// Run advances the state through nsteps, checkpointing every
// CheckpointEvery steps and recovering from the most recent checkpoint
// when inject fires. atten may be nil. It returns an error only if
// recovery itself is impossible (no checkpoint yet and the initial state
// cannot be reconstructed — the harness seeds a step-0 checkpoint to make
// that impossible).
func (h *Harness) Run(s *fd.State, atten *attenuation.Model, m *medium.Medium,
	nsteps int, step StepFunc, inject FailureInjector) error {
	if h.CheckpointEvery <= 0 {
		return fmt.Errorf("ft: CheckpointEvery must be positive")
	}
	// Seed checkpoint at step 0: recovery is always possible.
	if _, err := checkpoint.Save(h.FS, h.Dir, h.Rank, 0, s, atten); err != nil {
		return fmt.Errorf("ft: seed checkpoint: %w", err)
	}
	h.Checkpoints++
	last := 0
	n := 0
	_ = m
	for n < nsteps {
		if inject(n) {
			// Failure: the in-memory state is lost; roll back.
			h.Failures++
			if err := checkpoint.Load(h.FS, h.Dir, h.Rank, last, s, atten); err != nil {
				return fmt.Errorf("ft: recovery failed: %w", err)
			}
			h.RolledBack += n - last
			n = last
			continue
		}
		step(s, n)
		h.StepsExecuted++
		n++
		if n%h.CheckpointEvery == 0 && n < nsteps {
			if _, err := checkpoint.Save(h.FS, h.Dir, h.Rank, n, s, atten); err == nil {
				// A failed save is survivable: recovery just rolls back to
				// the previous checkpoint instead.
				h.Checkpoints++
				last = n
			}
		}
	}
	return nil
}

// Overhead returns the fraction of executed steps that were recomputation
// (the cost of the failures under this checkpoint interval).
func (h *Harness) Overhead() float64 {
	if h.StepsExecuted == 0 {
		return 0
	}
	return float64(h.RolledBack) / float64(h.StepsExecuted)
}

// OptimalInterval returns Young's approximation of the checkpoint interval
// (in steps) that minimizes expected lost work: sqrt(2 * C * MTBF), with C
// the checkpoint cost and MTBF the mean steps between failures.
func OptimalInterval(checkpointCostSteps, mtbfSteps float64) int {
	if checkpointCostSteps <= 0 || mtbfSteps <= 0 {
		return 1
	}
	n := int(math.Sqrt(2 * checkpointCostSteps * mtbfSteps))
	if n < 1 {
		n = 1
	}
	return n
}
