package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDims(t *testing.T) {
	d := Dims{3, 4, 5}
	if got := d.Cells(); got != 60 {
		t.Fatalf("Cells = %d, want 60", got)
	}
	if !d.Valid() {
		t.Fatal("Valid = false for positive dims")
	}
	for _, bad := range []Dims{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		if bad.Valid() {
			t.Errorf("Valid(%v) = true, want false", bad)
		}
	}
	if d.String() != "3x4x5" {
		t.Errorf("String = %q", d.String())
	}
}

func TestNewField3PanicsOnInvalidDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid dims")
		}
	}()
	NewField3(Dims{0, 1, 1})
}

func TestIdxStrides(t *testing.T) {
	f := NewField3(Dims{4, 5, 6})
	dx, dy, dz := f.Strides()
	base := f.Idx(1, 2, 3)
	if f.Idx(2, 2, 3)-base != dx {
		t.Errorf("x stride mismatch")
	}
	if f.Idx(1, 3, 3)-base != dy {
		t.Errorf("y stride mismatch")
	}
	if f.Idx(1, 2, 4)-base != dz {
		t.Errorf("z stride mismatch")
	}
	sx, sy, sz := f.PaddedDims()
	if sx != 4+2*Ghost || sy != 5+2*Ghost || sz != 6+2*Ghost {
		t.Errorf("PaddedDims = %d,%d,%d", sx, sy, sz)
	}
	if len(f.Data()) != sx*sy*sz {
		t.Errorf("backing size = %d, want %d", len(f.Data()), sx*sy*sz)
	}
}

func TestIdxUniqueIncludingGhosts(t *testing.T) {
	f := NewField3(Dims{3, 4, 2})
	seen := make(map[int]bool)
	for k := -Ghost; k < f.NZ+Ghost; k++ {
		for j := -Ghost; j < f.NY+Ghost; j++ {
			for i := -Ghost; i < f.NX+Ghost; i++ {
				idx := f.Idx(i, j, k)
				if idx < 0 || idx >= len(f.Data()) {
					t.Fatalf("Idx(%d,%d,%d)=%d out of range", i, j, k, idx)
				}
				if seen[idx] {
					t.Fatalf("Idx(%d,%d,%d)=%d duplicated", i, j, k, idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != len(f.Data()) {
		t.Fatalf("covered %d of %d slots", len(seen), len(f.Data()))
	}
}

func TestSetAtAdd(t *testing.T) {
	f := NewField3(Dims{3, 3, 3})
	f.Set(1, 2, 0, 2.5)
	if got := f.At(1, 2, 0); got != 2.5 {
		t.Fatalf("At = %v", got)
	}
	f.Add(1, 2, 0, 0.5)
	if got := f.At(1, 2, 0); got != 3.0 {
		t.Fatalf("after Add, At = %v", got)
	}
	// Ghost cells are addressable.
	f.Set(-1, -2, 4, 7)
	if got := f.At(-1, -2, 4); got != 7 {
		t.Fatalf("ghost At = %v", got)
	}
}

func TestFillZeroClone(t *testing.T) {
	f := NewField3(Dims{2, 2, 2})
	f.Fill(3)
	for _, v := range f.Data() {
		if v != 3 {
			t.Fatal("Fill did not set all values")
		}
	}
	g := f.Clone()
	g.Set(0, 0, 0, -1)
	if f.At(0, 0, 0) != 3 {
		t.Fatal("Clone is not a deep copy")
	}
	f.Zero()
	if f.MaxAbs() != 0 {
		t.Fatal("Zero did not clear field")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	f := NewField3(Dims{2, 2, 2})
	g := NewField3(Dims{2, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dims mismatch")
		}
	}()
	f.CopyFrom(g)
}

// fillPattern assigns a unique deterministic value to every interior and
// ghost location.
func fillPattern(f *Field3) {
	for k := -Ghost; k < f.NZ+Ghost; k++ {
		for j := -Ghost; j < f.NY+Ghost; j++ {
			for i := -Ghost; i < f.NX+Ghost; i++ {
				f.Set(i, j, k, float32(f.Idx(i, j, k)))
			}
		}
	}
}

func TestPackUnpackFaceRoundTrip(t *testing.T) {
	// The pack/unpack pair is the heart of halo exchange: packing `count`
	// interior planes on one side and unpacking them into the ghost planes
	// of a neighbor must move exactly the right values.
	src := NewField3(Dims{4, 5, 6})
	fillPattern(src)
	for _, ax := range []Axis{X, Y, Z} {
		for _, sd := range []Side{Low, High} {
			for count := 1; count <= Ghost; count++ {
				dst := NewField3(src.Dims)
				buf := make([]float32, src.FaceLen(ax, count))
				n := src.PackFace(ax, sd, count, buf)
				if n != len(buf) {
					t.Fatalf("%v/%v: packed %d, want %d", ax, sd, n, len(buf))
				}
				// Unpack into the *opposite* side's ghosts, as a real
				// exchange would.
				opp := High
				if sd == High {
					opp = Low
				}
				m := dst.UnpackFace(ax, opp, count, buf)
				if m != len(buf) {
					t.Fatalf("%v/%v: unpacked %d, want %d", ax, sd, m, len(buf))
				}
				// Verify a representative value: ghost plane of dst equals
				// interior plane of src.
				checkFaceMatch(t, src, dst, ax, sd, count)
			}
		}
	}
}

func checkFaceMatch(t *testing.T, src, dst *Field3, ax Axis, sd Side, count int) {
	t.Helper()
	n := dims(src, ax)
	for c := 0; c < count; c++ {
		// Packed plane c on side sd of src corresponds to ghost plane c on
		// the opposite side of dst (as in a real neighbor exchange).
		var sp, dp int
		if sd == Low {
			sp = c     // low interior planes [0,count)
			dp = n + c // high ghost planes [n,n+count)
		} else {
			sp = n - count + c // high interior planes [n-count,n)
			dp = -count + c    // low ghost planes [-count,0)
		}
		at := func(f *Field3, p int) float32 {
			switch ax {
			case X:
				return f.At(p, 1, 1)
			case Y:
				return f.At(1, p, 1)
			default:
				return f.At(1, 1, p)
			}
		}
		if got, want := at(dst, dp), at(src, sp); got != want {
			t.Fatalf("%v/%v plane %d: ghost=%v, want interior=%v", ax, sd, c, got, want)
		}
	}
}

func dims(f *Field3, ax Axis) int {
	switch ax {
	case X:
		return f.NX
	case Y:
		return f.NY
	default:
		return f.NZ
	}
}

func TestExtractInsertBlockRoundTrip(t *testing.T) {
	f := NewField3(Dims{5, 4, 3})
	fillPattern(f)
	blk := f.ExtractBlock(1, 4, 0, 2, 1, 3)
	if len(blk) != 3*2*2 {
		t.Fatalf("block len = %d", len(blk))
	}
	g := NewField3(f.Dims)
	g.InsertBlock(1, 4, 0, 2, 1, 3, blk)
	for k := 1; k < 3; k++ {
		for j := 0; j < 2; j++ {
			for i := 1; i < 4; i++ {
				if g.At(i, j, k) != f.At(i, j, k) {
					t.Fatalf("block mismatch at %d,%d,%d", i, j, k)
				}
			}
		}
	}
}

func TestMaxAbsIgnoresGhosts(t *testing.T) {
	f := NewField3(Dims{3, 3, 3})
	f.Set(-1, 0, 0, 100) // ghost
	f.Set(1, 1, 1, -5)
	if got := f.MaxAbs(); got != 5 {
		t.Fatalf("MaxAbs = %v, want 5 (ghosts excluded)", got)
	}
}

func TestSumSqAndL2Diff(t *testing.T) {
	f := NewField3(Dims{2, 2, 1})
	g := NewField3(Dims{2, 2, 1})
	f.Set(0, 0, 0, 3)
	f.Set(1, 1, 0, 4)
	if got := f.SumSq(); got != 25 {
		t.Fatalf("SumSq = %v, want 25", got)
	}
	if got := f.L2Diff(g); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2Diff = %v, want 5", got)
	}
	if got := f.L2Diff(f); got != 0 {
		t.Fatalf("self L2Diff = %v, want 0", got)
	}
}

func TestL2DiffMismatchPanics(t *testing.T) {
	f := NewField3(Dims{2, 2, 2})
	g := NewField3(Dims{3, 2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.L2Diff(g)
}

// Property: packing a face and unpacking it into the matching ghost region
// of a copy reproduces exactly the packed values for random dims.
func TestQuickPackUnpackConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64, nx8, ny8, nz8 uint8, axv uint8, sdv bool, cnt8 uint8) bool {
		nx := int(nx8%6) + 1
		ny := int(ny8%6) + 1
		nz := int(nz8%6) + 1
		ax := Axis(axv % 3)
		sd := Low
		if sdv {
			sd = High
		}
		count := int(cnt8%Ghost) + 1
		f := NewField3(Dims{nx, ny, nz})
		rng := rand.New(rand.NewSource(seed))
		for idx := range f.Data() {
			f.Data()[idx] = rng.Float32()
		}
		buf := make([]float32, f.FaceLen(ax, count))
		if n := f.PackFace(ax, sd, count, buf); n != len(buf) {
			return false
		}
		g := NewField3(f.Dims)
		if n := g.UnpackFace(ax, sd, count, buf); n != len(buf) {
			return false
		}
		buf2 := make([]float32, len(buf))
		// Re-extract from the ghost region of g: it must equal buf.
		i0, i1, j0, j1, k0, k1 := g.planeExtents(ax, sd, count, true)
		g.copyBlock(i0, i1, j0, j1, k0, k1, buf2, true)
		for idx := range buf {
			if buf[idx] != buf2[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFaceLen(t *testing.T) {
	f := NewField3(Dims{3, 4, 5})
	if got := f.FaceLen(X, 2); got != 2*4*5 {
		t.Errorf("FaceLen(X,2) = %d", got)
	}
	if got := f.FaceLen(Y, 1); got != 3*1*5 {
		t.Errorf("FaceLen(Y,1) = %d", got)
	}
	if got := f.FaceLen(Z, 2); got != 3*4*2 {
		t.Errorf("FaceLen(Z,2) = %d", got)
	}
}

func TestAxisSideStrings(t *testing.T) {
	if X.String() != "x" || Y.String() != "y" || Z.String() != "z" {
		t.Error("axis strings wrong")
	}
	if Axis(9).String() == "" {
		t.Error("unknown axis string empty")
	}
	if Low.String() != "low" || High.String() != "high" {
		t.Error("side strings wrong")
	}
}

// PackFaceAt/UnpackFaceAt are the coalesced-buffer forms of PackFace and
// UnpackFace: several faces share one buffer at planner offsets. Packing two
// faces of two fields into one buffer and unpacking them into a second pair
// must reproduce PackFace/UnpackFace exactly, and the sections must not
// bleed into each other.
func TestPackUnpackFaceAtOffsets(t *testing.T) {
	d := Dims{NX: 5, NY: 4, NZ: 3}
	src := [2]*Field3{NewField3(d), NewField3(d)}
	for fi, f := range src {
		for k := 0; k < d.NZ; k++ {
			for j := 0; j < d.NY; j++ {
				for i := 0; i < d.NX; i++ {
					f.Set(i, j, k, float32(fi*1000+((k*d.NY+j)*d.NX+i)))
				}
			}
		}
	}
	type sec struct {
		fi  int
		ax  Axis
		sd  Side
		off int
	}
	n := src[0].FaceLen(X, Ghost)
	secs := []sec{{0, X, Low, 0}, {1, X, Low, n}, {0, X, High, 2 * n}, {1, X, High, 3 * n}}
	buf := make([]float32, 4*n)
	for i := range buf {
		buf[i] = -999 // canary: every slot must be overwritten exactly once
	}
	for _, s := range secs {
		if got := src[s.fi].PackFaceAt(s.ax, s.sd, Ghost, buf, s.off); got != n {
			t.Fatalf("PackFaceAt wrote %d, want %d", got, n)
		}
	}
	for i, v := range buf {
		if v == -999 {
			t.Fatalf("buffer slot %d never written", i)
		}
	}
	// Each section must equal the stand-alone PackFace of the same face.
	single := make([]float32, n)
	for _, s := range secs {
		src[s.fi].PackFace(s.ax, s.sd, Ghost, single)
		for i := 0; i < n; i++ {
			if buf[s.off+i] != single[i] {
				t.Fatalf("section (%d,%v,%v) differs from PackFace at %d", s.fi, s.ax, s.sd, i)
			}
		}
	}
	// Unpack into fresh fields and compare ghost planes against UnpackFace.
	dstAt := [2]*Field3{NewField3(d), NewField3(d)}
	dstRef := [2]*Field3{NewField3(d), NewField3(d)}
	for _, s := range secs {
		if got := dstAt[s.fi].UnpackFaceAt(s.ax, s.sd, Ghost, buf, s.off); got != n {
			t.Fatalf("UnpackFaceAt consumed %d, want %d", got, n)
		}
		src[s.fi].PackFace(s.ax, s.sd, Ghost, single)
		dstRef[s.fi].UnpackFace(s.ax, s.sd, Ghost, single)
	}
	for fi := range dstAt {
		a, b := dstAt[fi].Data(), dstRef[fi].Data()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("field %d: ghost data differs at flat index %d", fi, i)
			}
		}
	}
}
