package grid

import "testing"

// enumerate walks a block in copyBlock order (x rows, then y, then z) and
// yields each cell coordinate. Pack and unpack traverse their respective
// extents in this same order, which defines the wire correspondence.
func enumerate(i0, i1, j0, j1, k0, k1 int, fn func(i, j, k int)) {
	for k := k0; k < k1; k++ {
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				fn(i, j, k)
			}
		}
	}
}

// FuzzPackUnpackFaceAt drives the sectioned pack/unpack pair used by the
// coalesced halo path: pack `count` interior planes of a face into an
// arbitrary offset of a shared buffer, unpack them into a second field's
// ghost region, and verify both sides touched exactly the cells they own.
func FuzzPackUnpackFaceAt(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(5), uint8(0), uint8(0), uint8(1), uint16(0))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(2), uint16(7))
	f.Add(uint8(8), uint8(2), uint8(3), uint8(2), uint8(0), uint8(2), uint16(31))
	f.Add(uint8(4), uint8(4), uint8(4), uint8(0), uint8(1), uint8(2), uint16(13))
	f.Add(uint8(2), uint8(7), uint8(1), uint8(1), uint8(0), uint8(1), uint16(3))
	f.Fuzz(func(t *testing.T, rnx, rny, rnz, rax, rsd, rcount uint8, roff uint16) {
		d := Dims{NX: int(rnx%8) + 1, NY: int(rny%8) + 1, NZ: int(rnz%8) + 1}
		ax := Axis(rax % 3)
		sd := Side(rsd % 2)
		count := int(rcount%Ghost) + 1
		off := int(roff % 32)

		src := NewField3(d)
		for n := range src.data {
			src.data[n] = float32(n) + 0.5
		}
		faceLen := src.FaceLen(ax, count)
		const sentinel = float32(-1e30)
		buf := make([]float32, off+faceLen+8)
		for n := range buf {
			buf[n] = sentinel
		}

		if n := src.PackFaceAt(ax, sd, count, buf, off); n != faceLen {
			t.Fatalf("pack wrote %d values, want FaceLen %d", n, faceLen)
		}
		for n := 0; n < off; n++ {
			if buf[n] != sentinel {
				t.Fatalf("pack dirtied buf[%d] before section start %d", n, off)
			}
		}
		for n := off + faceLen; n < len(buf); n++ {
			if buf[n] != sentinel {
				t.Fatalf("pack dirtied buf[%d] past section end %d", n, off+faceLen)
			}
		}
		i0, i1, j0, j1, k0, k1 := src.planeExtents(ax, sd, count, false)
		pos := off
		enumerate(i0, i1, j0, j1, k0, k1, func(i, j, k int) {
			if buf[pos] != src.At(i, j, k) {
				t.Fatalf("buf[%d] = %g, want interior (%d,%d,%d) = %g",
					pos, buf[pos], i, j, k, src.At(i, j, k))
			}
			pos++
		})
		if pos != off+faceLen {
			t.Fatalf("pack extents cover %d cells, want %d", pos-off, faceLen)
		}

		dst := NewField3(d)
		for n := range dst.data {
			dst.data[n] = float32(n) - 0.25
		}
		before := append([]float32(nil), dst.data...)
		if n := dst.UnpackFaceAt(ax, sd, count, buf, off); n != faceLen {
			t.Fatalf("unpack consumed %d values, want FaceLen %d", n, faceLen)
		}
		g0, g1, h0, h1, l0, l1 := dst.planeExtents(ax, sd, count, true)
		pos = off
		touched := make(map[int]bool, faceLen)
		enumerate(g0, g1, h0, h1, l0, l1, func(i, j, k int) {
			if dst.At(i, j, k) != buf[pos] {
				t.Fatalf("ghost (%d,%d,%d) = %g, want buf[%d] = %g",
					i, j, k, dst.At(i, j, k), pos, buf[pos])
			}
			touched[dst.Idx(i, j, k)] = true
			pos++
		})
		if len(touched) != faceLen {
			t.Fatalf("ghost extents cover %d distinct cells, want %d", len(touched), faceLen)
		}
		for n := range dst.data {
			if !touched[n] && dst.data[n] != before[n] {
				t.Fatalf("unpack dirtied cell at flat index %d outside the ghost section", n)
			}
		}
	})
}
