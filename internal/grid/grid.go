// Package grid provides the flat-backed 3D field arrays used by every
// solver component. Fields are stored in x-fastest order (the analogue of
// the original Fortran code's column-major layout) with a fixed-width ghost
// padding on all six faces so that 4th-order stencils can be applied at
// every interior point without bounds checks.
package grid

import (
	"fmt"
	"math"
)

// Ghost is the ghost-cell padding width required by the 4th-order
// staggered-grid stencil (two cells on each side, §III.A of the paper).
const Ghost = 2

// Dims describes the interior extent of a 3D field.
type Dims struct {
	NX, NY, NZ int
}

// Cells returns the number of interior cells.
func (d Dims) Cells() int { return d.NX * d.NY * d.NZ }

// Valid reports whether all extents are positive.
func (d Dims) Valid() bool { return d.NX > 0 && d.NY > 0 && d.NZ > 0 }

func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.NX, d.NY, d.NZ) }

// Field3 is a 3D scalar field of float32 with ghost padding (Ghost wide
// by default, deeper for temporally tiled fields). Interior indices run
// i in [0,NX), j in [0,NY), k in [0,NZ); ghost indices extend to
// [-G(), N+G()). The backing slice is contiguous with x fastest, then y,
// then z.
type Field3 struct {
	Dims
	g          int // ghost width on every face
	sx, sy, sz int // padded extents
	data       []float32
}

// NewField3 allocates a zeroed field with the given interior dims and the
// default Ghost padding width.
func NewField3(d Dims) *Field3 { return NewField3G(d, Ghost) }

// NewField3G allocates a zeroed field with a caller-chosen ghost width.
// Time-tiled execution uses deeper ghosts (4T planes for temporal depth T)
// so a whole super-step of stencil erosion stays local between exchanges.
func NewField3G(d Dims, ghost int) *Field3 {
	if !d.Valid() {
		panic(fmt.Sprintf("grid: invalid dims %v", d))
	}
	if ghost < Ghost {
		panic(fmt.Sprintf("grid: ghost width %d < minimum %d", ghost, Ghost))
	}
	sx, sy, sz := d.NX+2*ghost, d.NY+2*ghost, d.NZ+2*ghost
	return &Field3{
		Dims: d,
		g:    ghost,
		sx:   sx, sy: sy, sz: sz,
		data: make([]float32, sx*sy*sz),
	}
}

// G returns the ghost width of the field.
func (f *Field3) G() int { return f.g }

// Idx returns the flat index of (i,j,k). Indices may range over the ghost
// region [-G(), N+G()).
func (f *Field3) Idx(i, j, k int) int {
	return ((k+f.g)*f.sy+(j+f.g))*f.sx + (i + f.g)
}

// At returns the value at (i,j,k).
func (f *Field3) At(i, j, k int) float32 { return f.data[f.Idx(i, j, k)] }

// Set stores v at (i,j,k).
func (f *Field3) Set(i, j, k int, v float32) { f.data[f.Idx(i, j, k)] = v }

// Add adds v to the value at (i,j,k).
func (f *Field3) Add(i, j, k int, v float32) { f.data[f.Idx(i, j, k)] += v }

// Data exposes the raw backing slice (including ghosts). Intended for
// kernels and checkpointing; the layout is x-fastest with Ghost padding.
func (f *Field3) Data() []float32 { return f.data }

// Strides returns the flat-index strides (dx, dy, dz) such that
// Idx(i+1,j,k) = Idx(i,j,k)+dx, etc.
func (f *Field3) Strides() (dx, dy, dz int) { return 1, f.sx, f.sx * f.sy }

// PaddedDims returns the padded extents of the backing array.
func (f *Field3) PaddedDims() (sx, sy, sz int) { return f.sx, f.sy, f.sz }

// Fill sets every element, ghosts included, to v.
func (f *Field3) Fill(v float32) {
	for i := range f.data {
		f.data[i] = v
	}
}

// Zero resets every element to zero.
func (f *Field3) Zero() { f.Fill(0) }

// CopyFrom copies the full padded contents of src, which must have
// identical dims and ghost width.
func (f *Field3) CopyFrom(src *Field3) {
	if f.Dims != src.Dims || f.g != src.g {
		panic(fmt.Sprintf("grid: CopyFrom mismatch %v/g%d != %v/g%d", f.Dims, f.g, src.Dims, src.g))
	}
	copy(f.data, src.data)
}

// Clone returns a deep copy of f, preserving its ghost width.
func (f *Field3) Clone() *Field3 {
	g := NewField3G(f.Dims, f.g)
	copy(g.data, f.data)
	return g
}

// Axis identifies one of the three grid axes.
type Axis int

const (
	X Axis = iota
	Y
	Z
)

func (a Axis) String() string {
	switch a {
	case X:
		return "x"
	case Y:
		return "y"
	case Z:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Side identifies the low or high face along an axis.
type Side int

const (
	Low Side = iota
	High
)

func (s Side) String() string {
	if s == Low {
		return "low"
	}
	return "high"
}

// planeExtents computes the loop bounds of `count` planes of the interior
// adjacent to a face (for packing to send) or of the ghost region adjacent
// to a face (for unpacking after receive).
func (f *Field3) planeExtents(ax Axis, sd Side, count int, ghost bool) (i0, i1, j0, j1, k0, k1 int) {
	i0, i1 = 0, f.NX
	j0, j1 = 0, f.NY
	k0, k1 = 0, f.NZ
	set := func(lo, hi *int, n int) {
		if sd == Low {
			if ghost {
				*lo, *hi = -count, 0
			} else {
				*lo, *hi = 0, count
			}
		} else {
			if ghost {
				*lo, *hi = n, n+count
			} else {
				*lo, *hi = n-count, n
			}
		}
	}
	switch ax {
	case X:
		set(&i0, &i1, f.NX)
	case Y:
		set(&j0, &j1, f.NY)
	case Z:
		set(&k0, &k1, f.NZ)
	}
	return
}

// FaceLen returns the number of values in `count` planes of the face
// perpendicular to ax.
func (f *Field3) FaceLen(ax Axis, count int) int {
	switch ax {
	case X:
		return count * f.NY * f.NZ
	case Y:
		return f.NX * count * f.NZ
	default:
		return f.NX * f.NY * count
	}
}

// PackFace copies `count` interior planes adjacent to the (ax, sd) face
// into dst and returns the number of values written. dst must have
// capacity FaceLen(ax, count).
func (f *Field3) PackFace(ax Axis, sd Side, count int, dst []float32) int {
	i0, i1, j0, j1, k0, k1 := f.planeExtents(ax, sd, count, false)
	return f.copyBlock(i0, i1, j0, j1, k0, k1, dst, true)
}

// UnpackFace copies src into `count` ghost planes adjacent to the (ax, sd)
// face and returns the number of values consumed.
func (f *Field3) UnpackFace(ax Axis, sd Side, count int, src []float32) int {
	i0, i1, j0, j1, k0, k1 := f.planeExtents(ax, sd, count, true)
	return f.copyBlock(i0, i1, j0, j1, k0, k1, src, false)
}

// PackFaceAt packs `count` interior planes of the (ax, sd) face into the
// section dst[off : off+FaceLen(ax, count)] and returns the number of
// values written. It is the coalesced-message form of PackFace: several
// faces share one pooled buffer at planner-computed offsets, so sections
// can be packed concurrently (they are disjoint sub-slices).
func (f *Field3) PackFaceAt(ax Axis, sd Side, count int, dst []float32, off int) int {
	n := f.FaceLen(ax, count)
	return f.PackFace(ax, sd, count, dst[off:off+n])
}

// UnpackFaceAt unpacks the section src[off : off+FaceLen(ax, count)] into
// `count` ghost planes of the (ax, sd) face and returns the number of
// values consumed. The ghost regions of distinct (field, axis, side)
// triples are disjoint, so sections can be unpacked concurrently.
func (f *Field3) UnpackFaceAt(ax Axis, sd Side, count int, src []float32, off int) int {
	n := f.FaceLen(ax, count)
	return f.UnpackFace(ax, sd, count, src[off:off+n])
}

// RangeLen returns the number of values in the block
// [i0,i1)x[j0,j1)x[k0,k1).
func RangeLen(i0, i1, j0, j1, k0, k1 int) int {
	return (i1 - i0) * (j1 - j0) * (k1 - k0)
}

// PackRange copies the block [i0,i1)x[j0,j1)x[k0,k1) — which may extend
// into the ghost region — into dst in x-fastest order and returns the
// number of values written. It is the depth-parameterized pack primitive
// used by the super-step halo exchange, where cross-sections extend into
// already-filled ghosts of earlier exchange rounds.
func (f *Field3) PackRange(i0, i1, j0, j1, k0, k1 int, dst []float32) int {
	return f.copyBlock(i0, i1, j0, j1, k0, k1, dst, true)
}

// UnpackRange copies src (x-fastest order) into the block
// [i0,i1)x[j0,j1)x[k0,k1), which may extend into the ghost region, and
// returns the number of values consumed.
func (f *Field3) UnpackRange(i0, i1, j0, j1, k0, k1 int, src []float32) int {
	return f.copyBlock(i0, i1, j0, j1, k0, k1, src, false)
}

// copyBlock copies the block [i0,i1)x[j0,j1)x[k0,k1) to buf (pack=true)
// or from buf (pack=false), returning the element count.
func (f *Field3) copyBlock(i0, i1, j0, j1, k0, k1 int, buf []float32, pack bool) int {
	n := 0
	w := i1 - i0
	for k := k0; k < k1; k++ {
		for j := j0; j < j1; j++ {
			base := f.Idx(i0, j, k)
			row := f.data[base : base+w]
			if pack {
				copy(buf[n:n+w], row)
			} else {
				copy(row, buf[n:n+w])
			}
			n += w
		}
	}
	return n
}

// ExtractBlock copies the interior block [i0,i1)x[j0,j1)x[k0,k1) into a
// newly allocated slice in x-fastest order.
func (f *Field3) ExtractBlock(i0, i1, j0, j1, k0, k1 int) []float32 {
	out := make([]float32, (i1-i0)*(j1-j0)*(k1-k0))
	f.copyBlock(i0, i1, j0, j1, k0, k1, out, true)
	return out
}

// InsertBlock copies src (x-fastest order) into the block
// [i0,i1)x[j0,j1)x[k0,k1).
func (f *Field3) InsertBlock(i0, i1, j0, j1, k0, k1 int, src []float32) {
	f.copyBlock(i0, i1, j0, j1, k0, k1, src, false)
}

// MaxAbs returns the maximum absolute interior value.
func (f *Field3) MaxAbs() float32 {
	var m float32
	for k := 0; k < f.NZ; k++ {
		for j := 0; j < f.NY; j++ {
			base := f.Idx(0, j, k)
			for _, v := range f.data[base : base+f.NX] {
				if v < 0 {
					v = -v
				}
				if v > m {
					m = v
				}
			}
		}
	}
	return m
}

// SumSq returns the sum of squares of the interior values in float64.
func (f *Field3) SumSq() float64 {
	var s float64
	for k := 0; k < f.NZ; k++ {
		for j := 0; j < f.NY; j++ {
			base := f.Idx(0, j, k)
			for _, v := range f.data[base : base+f.NX] {
				s += float64(v) * float64(v)
			}
		}
	}
	return s
}

// L2Diff returns the root-sum-square difference between the interiors of
// f and g, which must have identical dims.
func (f *Field3) L2Diff(g *Field3) float64 {
	if f.Dims != g.Dims {
		panic(fmt.Sprintf("grid: L2Diff dims mismatch %v != %v", f.Dims, g.Dims))
	}
	var s float64
	for k := 0; k < f.NZ; k++ {
		for j := 0; j < f.NY; j++ {
			a := f.Idx(0, j, k)
			b := g.Idx(0, j, k)
			for i := 0; i < f.NX; i++ {
				d := float64(f.data[a+i]) - float64(g.data[b+i])
				s += d * d
			}
		}
	}
	return math.Sqrt(s)
}
