// Package medium holds the discretized material model for one rank's
// subgrid: density and Lamé parameters at grid nodes, plus the staggered
// averages the velocity–stress scheme needs. Following the paper's
// single-CPU optimization (§IV.B), reciprocals of the Lamé arrays are
// stored so the hot loops harmonic-average without dividing per operand,
// and fully precomputed staggered coefficient arrays are available for the
// fastest kernel variant.
package medium

import (
	"fmt"
	"math"

	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
)

// Medium is the material state for one subgrid, including ghost cells so
// staggered averages near subgrid edges need no communication (ghosts are
// filled directly from the velocity model, with clamping at the physical
// domain edge).
type Medium struct {
	Dims grid.Dims
	H    float64 // grid spacing, m

	// Node-centered properties.
	Rho *grid.Field3 // density
	Lam *grid.Field3 // Lamé lambda
	Mu  *grid.Field3 // Lamé mu

	// Reciprocals (the §IV.B storage optimization).
	LamI *grid.Field3 // 1/lambda
	MuI  *grid.Field3 // 1/mu

	// Precomputed staggered coefficients.
	BX, BY, BZ       *grid.Field3 // 1/rho averaged at vx, vy, vz points
	MuXY, MuXZ, MuYZ *grid.Field3 // harmonic-mean mu at shear-stress points
	Lam2Mu           *grid.Field3 // lambda + 2*mu at normal-stress points

	// Quality factors for anelastic attenuation.
	QP, QS *grid.Field3

	// Extremes over the interior, for stability and dispersion checks.
	MinVs, MaxVp, MinRho float64
}

// FromCVM extracts the material model for subgrid s of d from q at grid
// spacing h (meters). Node (i,j,k) samples the model at global position
// ((OffX+i)·h, (OffY+j)·h, (OffZ+k)·h) with z measured as depth.
func FromCVM(q cvm.Querier, d decomp.Decomp, s decomp.Sub, h float64) *Medium {
	return FromCVMGhost(q, d, s, h, grid.Ghost)
}

// FromCVMGhost is FromCVM with a caller-chosen ghost width, used by
// time-tiled execution where recomputing into deep ghost regions needs
// material properties 4T nodes beyond the subgrid. Because every node is a
// deterministic function of its global coordinate, deep-ghost media agree
// bit-for-bit with the owning rank's interior values.
func FromCVMGhost(q cvm.Querier, d decomp.Decomp, s decomp.Sub, h float64, ghost int) *Medium {
	m := allocG(s.Local, h, ghost)
	g := ghost
	minVs, maxVp, minRho := math.Inf(1), 0.0, math.Inf(1)
	for k := -g; k < s.Local.NZ+g; k++ {
		for j := -g; j < s.Local.NY+g; j++ {
			for i := -g; i < s.Local.NX+g; i++ {
				x := float64(s.OffX+i) * h
				y := float64(s.OffY+j) * h
				z := float64(s.OffZ+k) * h
				mat := q.Query(x, y, z)
				rho, lam, mu := convert(mat)
				m.Rho.Set(i, j, k, float32(rho))
				m.Lam.Set(i, j, k, float32(lam))
				m.Mu.Set(i, j, k, float32(mu))
				qp, qs := mat.Quality()
				m.QP.Set(i, j, k, float32(qp))
				m.QS.Set(i, j, k, float32(qs))
				if interior(i, j, k, s.Local) {
					minVs = math.Min(minVs, mat.Vs)
					maxVp = math.Max(maxVp, mat.Vp)
					minRho = math.Min(minRho, mat.Rho)
				}
			}
		}
	}
	m.MinVs, m.MaxVp, m.MinRho = minVs, maxVp, minRho
	m.finalize()
	return m
}

// FromArrays builds a Medium from explicit per-node property arrays, which
// is how the partitioned-mesh reader hands sub-meshes to the solver. The
// arrays must cover the padded (ghost-inclusive) extent in x-fastest
// order, matching grid.Field3 layout.
func FromArrays(dims grid.Dims, h float64, vp, vs, rho []float32) (*Medium, error) {
	m := alloc(dims, h)
	if len(vp) != len(m.Rho.Data()) || len(vs) != len(vp) || len(rho) != len(vp) {
		return nil, fmt.Errorf("medium: array length %d, want padded %d", len(vp), len(m.Rho.Data()))
	}
	minVs, maxVp, minRho := math.Inf(1), 0.0, math.Inf(1)
	for n := range vp {
		mat := cvm.Material{Vp: float64(vp[n]), Vs: float64(vs[n]), Rho: float64(rho[n])}
		r, lam, mu := convert(mat)
		m.Rho.Data()[n] = float32(r)
		m.Lam.Data()[n] = float32(lam)
		m.Mu.Data()[n] = float32(mu)
		qp, qs := mat.Quality()
		m.QP.Data()[n] = float32(qp)
		m.QS.Data()[n] = float32(qs)
		minVs = math.Min(minVs, mat.Vs)
		maxVp = math.Max(maxVp, mat.Vp)
		minRho = math.Min(minRho, mat.Rho)
	}
	m.MinVs, m.MaxVp, m.MinRho = minVs, maxVp, minRho
	m.finalize()
	return m, nil
}

func alloc(d grid.Dims, h float64) *Medium { return allocG(d, h, grid.Ghost) }

func allocG(d grid.Dims, h float64, ghost int) *Medium {
	f := func() *grid.Field3 { return grid.NewField3G(d, ghost) }
	return &Medium{
		Dims: d, H: h,
		Rho: f(), Lam: f(), Mu: f(),
		LamI: f(), MuI: f(),
		BX: f(), BY: f(), BZ: f(),
		MuXY: f(), MuXZ: f(), MuYZ: f(),
		Lam2Mu: f(),
		QP:     f(), QS: f(),
	}
}

func interior(i, j, k int, d grid.Dims) bool {
	return i >= 0 && i < d.NX && j >= 0 && j < d.NY && k >= 0 && k < d.NZ
}

// convert maps (Vp, Vs, rho) to (rho, lambda, mu).
func convert(m cvm.Material) (rho, lam, mu float64) {
	rho = m.Rho
	mu = rho * m.Vs * m.Vs
	lam = rho*m.Vp*m.Vp - 2*mu
	return
}

// finalize fills reciprocal and staggered arrays from the node arrays.
// It computes one ghost layer of staggered values beyond the interior so
// stencils touching the subgrid edge have valid coefficients.
func (m *Medium) finalize() {
	d := m.Dims
	g := m.Rho.G() - 1 // staggered averages reach one node beyond; keep 1-ghost margin
	for k := -g; k < d.NZ+g; k++ {
		for j := -g; j < d.NY+g; j++ {
			for i := -g; i < d.NX+g; i++ {
				lam := m.Lam.At(i, j, k)
				mu := m.Mu.At(i, j, k)
				m.LamI.Set(i, j, k, 1/lam)
				m.MuI.Set(i, j, k, 1/mu)
				m.Lam2Mu.Set(i, j, k, lam+2*mu)

				// Reciprocal densities at velocity points (2-point
				// arithmetic mean of rho).
				m.BX.Set(i, j, k, 2/(m.Rho.At(i, j, k)+m.Rho.At(i+1, j, k)))
				m.BY.Set(i, j, k, 2/(m.Rho.At(i, j, k)+m.Rho.At(i, j+1, k)))
				m.BZ.Set(i, j, k, 2/(m.Rho.At(i, j, k)+m.Rho.At(i, j, k+1)))

				// Harmonic-mean mu at shear-stress points (4-point).
				m.MuXY.Set(i, j, k, harmonic4(
					m.Mu.At(i, j, k), m.Mu.At(i+1, j, k),
					m.Mu.At(i, j+1, k), m.Mu.At(i+1, j+1, k)))
				m.MuXZ.Set(i, j, k, harmonic4(
					m.Mu.At(i, j, k), m.Mu.At(i+1, j, k),
					m.Mu.At(i, j, k+1), m.Mu.At(i+1, j, k+1)))
				m.MuYZ.Set(i, j, k, harmonic4(
					m.Mu.At(i, j, k), m.Mu.At(i, j+1, k),
					m.Mu.At(i, j, k+1), m.Mu.At(i, j+1, k+1)))
			}
		}
	}
}

func harmonic4(a, b, c, d float32) float32 {
	return 4 / (1/a + 1/b + 1/c + 1/d)
}

// SetUniformQ overwrites the quality-factor fields with uniform values,
// for controlled attenuation experiments. Non-positive values disable the
// corresponding loss mechanism.
func (m *Medium) SetUniformQ(qp, qs float64) {
	m.QP.Fill(float32(qp))
	m.QS.Fill(float32(qs))
}

// cfl4 is the stability constant of the 4th-order staggered-grid scheme:
// dt <= cfl4 * h / (sqrt(3) * Vpmax), with sum |coeff| = 9/8 + 1/24 = 7/6.
const cfl4 = 6.0 / 7.0

// StableDt returns the largest stable time step for this medium at safety
// factor sf (use ~0.9 for production, 0.5 for tests).
func (m *Medium) StableDt(sf float64) float64 {
	return StableDtFor(m.MaxVp, m.H, sf)
}

// StableDtFor is the per-cell form of StableDt: the largest stable time
// step for a single P-wave speed at grid spacing h and safety factor sf.
// The LTS planner rates grid planes with it before any medium is
// extracted; because StableDt delegates here, planner and solver agree
// bit-for-bit on the bound.
func StableDtFor(vp, h, sf float64) float64 {
	return sf * cfl4 * h / (math.Sqrt(3) * vp)
}

// PointsPerWavelength returns the number of grid points per minimum
// S wavelength at frequency f — the dispersion criterion (AWP-ODC requires
// >= 5 points; M8's 40 m / 400 m/s / 2 Hz gives exactly 5).
func (m *Medium) PointsPerWavelength(f float64) float64 {
	return m.MinVs / (f * m.H)
}
