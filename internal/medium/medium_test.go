package medium

import (
	"math"
	"testing"

	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/mpi"
)

func singleRank(t *testing.T, d grid.Dims) (decomp.Decomp, decomp.Sub) {
	t.Helper()
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return dc, dc.SubFor(0)
}

func TestFromCVMHomogeneous(t *testing.T) {
	mat := cvm.Material{Vp: 6000, Vs: 3464.1016, Rho: 2700}
	q := cvm.Homogeneous(mat)
	d := grid.Dims{NX: 8, NY: 8, NZ: 8}
	dc, sub := singleRank(t, d)
	m := FromCVM(q, dc, sub, 100)

	wantMu := mat.Rho * mat.Vs * mat.Vs
	wantLam := mat.Rho*mat.Vp*mat.Vp - 2*wantMu
	if rel(float64(m.Mu.At(3, 3, 3)), wantMu) > 1e-5 {
		t.Errorf("mu = %g, want %g", m.Mu.At(3, 3, 3), wantMu)
	}
	if rel(float64(m.Lam.At(3, 3, 3)), wantLam) > 1e-4 {
		t.Errorf("lam = %g, want %g", m.Lam.At(3, 3, 3), wantLam)
	}
	// In a homogeneous medium all staggered averages equal node values.
	if rel(float64(m.MuXY.At(2, 2, 2)), wantMu) > 1e-5 {
		t.Errorf("muXY = %g, want %g", m.MuXY.At(2, 2, 2), wantMu)
	}
	if rel(float64(m.BX.At(2, 2, 2)), 1/mat.Rho) > 1e-5 {
		t.Errorf("bx = %g, want %g", m.BX.At(2, 2, 2), 1/mat.Rho)
	}
	if rel(float64(m.Lam2Mu.At(1, 1, 1)), wantLam+2*wantMu) > 1e-5 {
		t.Errorf("lam2mu wrong")
	}
	if m.MinVs != mat.Vs || m.MaxVp != mat.Vp {
		t.Errorf("extremes = %g/%g", m.MinVs, m.MaxVp)
	}
}

func TestReciprocalsMatch(t *testing.T) {
	q := cvm.HardRock()
	d := grid.Dims{NX: 6, NY: 6, NZ: 12}
	dc, sub := singleRank(t, d)
	m := FromCVM(q, dc, sub, 500)
	for k := 0; k < d.NZ; k++ {
		lam := m.Lam.At(3, 3, k)
		if rel(float64(m.LamI.At(3, 3, k)), 1/float64(lam)) > 1e-5 {
			t.Fatalf("LamI mismatch at k=%d", k)
		}
		mu := m.Mu.At(3, 3, k)
		if rel(float64(m.MuI.At(3, 3, k)), 1/float64(mu)) > 1e-5 {
			t.Fatalf("MuI mismatch at k=%d", k)
		}
	}
}

func TestHarmonicMeanBetweenLayers(t *testing.T) {
	// Across a layer interface, harmonic mean must lie between the two mu
	// values and below their arithmetic mean.
	q := cvm.HardRock()
	d := grid.Dims{NX: 4, NY: 4, NZ: 40}
	dc, sub := singleRank(t, d)
	m := FromCVM(q, dc, sub, 100) // layer boundary at z=1000m -> k=10
	k := 9
	a := float64(m.Mu.At(2, 2, k))
	b := float64(m.Mu.At(2, 2, k+1))
	hm := float64(m.MuYZ.At(2, 2, k)) // spans k and k+1
	lo, hi := math.Min(a, b), math.Max(a, b)
	if hm < lo || hm > hi {
		t.Fatalf("harmonic mean %g outside [%g,%g]", hm, lo, hi)
	}
	am := (a + b) / 2
	if hm >= am {
		t.Fatalf("harmonic mean %g not below arithmetic %g", hm, am)
	}
}

func TestGhostRegionFilled(t *testing.T) {
	q := cvm.HardRock()
	d := grid.Dims{NX: 6, NY: 6, NZ: 6}
	dc, sub := singleRank(t, d)
	m := FromCVM(q, dc, sub, 100)
	// Ghost nodes must carry clamped (surface layer) values, not zeros.
	if m.Rho.At(-2, -2, -2) <= 0 {
		t.Fatal("ghost density not filled")
	}
	if m.Rho.At(7, 7, 7) <= 0 {
		t.Fatal("high ghost density not filled")
	}
}

func TestMultiRankConsistentWithGlobal(t *testing.T) {
	// The same global node must get identical properties regardless of
	// which rank extracts it (CVM fill is a pure function of coordinates).
	q := cvm.SoCal(8000, 8000, 8000, 400)
	g := grid.Dims{NX: 16, NY: 8, NZ: 8}
	topo := mpi.NewCart(2, 1, 1)
	dc, err := decomp.New(g, topo)
	if err != nil {
		t.Fatal(err)
	}
	h := 500.0
	m0 := FromCVM(q, dc, dc.SubFor(0), h)
	m1 := FromCVM(q, dc, dc.SubFor(1), h)
	s1 := dc.SubFor(1)
	// Global node (8+i, j, k) is local (i,j,k) on rank 1 and ghost/interior
	// overlap is testable at the seam: rank 0 ghost i=8 == rank 1 interior i=0.
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			if m0.Rho.At(8, j, k) != m1.Rho.At(8-s1.OffX, j, k) {
				t.Fatalf("seam mismatch at j=%d k=%d", j, k)
			}
		}
	}
}

func TestFromArraysRoundTrip(t *testing.T) {
	d := grid.Dims{NX: 4, NY: 4, NZ: 4}
	f := grid.NewField3(d)
	n := len(f.Data())
	vp := make([]float32, n)
	vs := make([]float32, n)
	rho := make([]float32, n)
	for i := range vp {
		vp[i], vs[i], rho[i] = 6000, 3464, 2700
	}
	m, err := FromArrays(d, 100, vp, vs, rho)
	if err != nil {
		t.Fatal(err)
	}
	if rel(float64(m.Mu.At(1, 1, 1)), 2700*3464*3464) > 1e-5 {
		t.Fatalf("mu = %g", m.Mu.At(1, 1, 1))
	}
	if m.MaxVp != 6000 {
		t.Fatalf("MaxVp = %g", m.MaxVp)
	}
}

func TestFromArraysLengthMismatch(t *testing.T) {
	if _, err := FromArrays(grid.Dims{NX: 4, NY: 4, NZ: 4}, 100, make([]float32, 3), make([]float32, 3), make([]float32, 3)); err == nil {
		t.Fatal("expected error for short arrays")
	}
}

func TestStableDt(t *testing.T) {
	q := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	dc, sub := singleRank(t, grid.Dims{NX: 4, NY: 4, NZ: 4})
	m := FromCVM(q, dc, sub, 100)
	dt := m.StableDt(1.0)
	want := (6.0 / 7.0) * 100 / (math.Sqrt(3) * 6000)
	if rel(dt, want) > 1e-12 {
		t.Fatalf("StableDt = %g, want %g", dt, want)
	}
	if m.StableDt(0.5) >= dt {
		t.Fatal("safety factor not applied")
	}
}

func TestPointsPerWavelengthM8(t *testing.T) {
	// The M8 discretization: 40 m spacing, 400 m/s floor, 2 Hz -> exactly
	// 5 points per minimum wavelength.
	m := &Medium{H: 40, MinVs: 400}
	if got := m.PointsPerWavelength(2.0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("PPW = %g, want 5", got)
	}
}

func rel(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
