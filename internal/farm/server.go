package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/analysis"
	"repro/internal/telemetry"
)

// ServerConfig tunes the hazard-service front end.
type ServerConfig struct {
	// MaxConcurrent bounds in-flight queries; excess load is shed to the
	// degraded path instead of queuing (default 16).
	MaxConcurrent int
	// CurvePoints is the hazard-curve resolution (default 16).
	CurvePoints int
}

// Server is the HTTP/JSON hazard front end. Availability is the contract:
// every well-formed query gets a 200. When the exact product is served it
// is CRC-verified from the store ("degraded": false); when it cannot be —
// store miss, corrupt artifact, open breaker, or load shed — the answer
// comes from the RBF surrogate or a prior and is tagged "degraded": true.
// Corrupted artifacts are never served; they are deleted and re-queued.
type Server struct {
	farm *Farm
	cfg  ServerConfig
	sem  chan struct{}

	mu     sync.Mutex
	shed   int
	served int
	degraded int
}

// NewServer wraps a farm.
func NewServer(f *Farm, cfg ServerConfig) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	if cfg.CurvePoints <= 0 {
		cfg.CurvePoints = 16
	}
	return &Server{farm: f, cfg: cfg, sem: make(chan struct{}, cfg.MaxConcurrent)}
}

// HazardResponse is the /hazard reply.
type HazardResponse struct {
	Key      string    `json:"key"`
	Scenario Scenario  `json:"scenario"`
	PeakPGV  float64   `json:"peak_pgv"`
	Degraded bool      `json:"degraded"`
	Source   string    `json:"source"` // "store", "surrogate", "prior"
	Queued   bool      `json:"queued,omitempty"`
	Curve    []float64 `json:"curve,omitempty"`
	Thresholds []float64 `json:"thresholds,omitempty"`
}

// MapResponse is the /map reply.
type MapResponse struct {
	Key  string    `json:"key"`
	NX   int       `json:"nx"`
	NY   int       `json:"ny"`
	Peak float64   `json:"peak"`
	PGVH []float32 `json:"pgvh"`
}

// StatusResponse is the /status reply.
type StatusResponse struct {
	Stats    Stats             `json:"stats"`
	Breakers map[string]string `json:"breakers"`
	Queue    int               `json:"queue_depth"`
	Stored   int               `json:"stored"`
	Served   int               `json:"served"`
	Degraded int               `json:"degraded"`
	Shed     int               `json:"shed"`
	SurrogateN int             `json:"surrogate_n"`
}

// ServeHTTP routes /hazard, /map and /status. It never returns a 5xx:
// a defensive recover converts any handler panic into a degraded 200.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sp := s.farm.cfg.Rec.Span(telemetry.Serve)
	defer sp.End()
	defer func() {
		if rec := recover(); rec != nil {
			// Availability over everything: a handler bug degrades, it
			// does not 5xx.
			writeJSON(w, http.StatusOK, HazardResponse{
				Degraded: true, Source: "prior",
			})
		}
	}()
	switch r.URL.Path {
	case "/hazard":
		s.handleHazard(w, r)
	case "/map":
		s.handleMap(w, r)
	case "/status":
		s.handleStatus(w)
	default:
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown path"})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func parseScenario(r *http.Request) (Scenario, error) {
	q := r.URL.Query()
	get := func(name string, def float64) (float64, error) {
		s := q.Get(name)
		if s == "" {
			return def, nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s: %q", name, s)
		}
		return v, nil
	}
	var sc Scenario
	var err error
	if sc.Mw, err = get("mw", 6.5); err != nil {
		return sc, err
	}
	if sc.HypoX, err = get("hx", 0.5); err != nil {
		return sc, err
	}
	if sc.HypoY, err = get("hy", 0.5); err != nil {
		return sc, err
	}
	if sc.HypoZ, err = get("hz", 0.5); err != nil {
		return sc, err
	}
	if sc.VsScale, err = get("vs", 1.0); err != nil {
		return sc, err
	}
	return sc, nil
}

// handleHazard is the main query path with admission control.
func (s *Server) handleHazard(w http.ResponseWriter, r *http.Request) {
	sc, err := parseScenario(r)
	if err != nil {
		// Malformed input is the caller's error — the one non-200 class.
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		// Saturated: shed to the cheap path without touching the store.
		s.mu.Lock()
		s.shed++
		s.degraded++
		s.served++
		s.mu.Unlock()
		s.farm.cfg.Rec.AddCount("farm.sheds", 1)
		writeJSON(w, http.StatusOK, s.degradedAnswer(sc, false))
		return
	}

	key := sc.Key()
	resp := HazardResponse{Key: key, Scenario: sc}
	p, gerr := s.farm.Store().Get(key)
	switch {
	case gerr == nil:
		resp.PeakPGV = p.Peak
		resp.Source = "store"
		resp.Curve, resp.Thresholds = hazardCurve(p, s.cfg.CurvePoints)
	case errors.Is(gerr, ErrCorrupt):
		// Corrupted artifact: delete and re-queue the real compute; the
		// caller gets a surrogate answer now, never the corrupt bytes.
		if !s.farm.Resubmit(key) {
			s.farm.Store().Delete(key)
		}
		s.farm.cfg.Rec.AddCount("farm.serve_corrupt", 1)
		resp = s.degradedAnswer(sc, true)
	default:
		// Plain miss: enqueue the compute only if the class's breaker is
		// closed (an open class sheds its compute demand), and answer
		// from the surrogate meanwhile.
		if s.farm.Breakers().Ready(sc.Class()) {
			s.farm.Submit(sc)
			resp.Queued = true
		}
		resp = s.degradedAnswer(sc, resp.Queued)
	}
	s.mu.Lock()
	s.served++
	if resp.Degraded {
		s.degraded++
	}
	s.mu.Unlock()
	if resp.Degraded {
		s.farm.cfg.Rec.AddCount("farm.degraded_answers", 1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// degradedAnswer builds the graceful-degradation reply: surrogate if
// trained, otherwise a magnitude-scaled prior. Never fails.
func (s *Server) degradedAnswer(sc Scenario, queued bool) HazardResponse {
	resp := HazardResponse{
		Key: sc.Key(), Scenario: sc, Degraded: true, Queued: queued,
	}
	if sur := s.farm.Surrogate(); sur != nil {
		if v, ok := sur.Predict(sc); ok {
			resp.PeakPGV = v
			resp.Source = "surrogate"
			return resp
		}
	}
	// Prior: exponential moment scaling normalized at the range floor.
	resp.PeakPGV = 1e-6 * sc.M0() / Scenario{Mw: 5.5}.M0()
	resp.Source = "prior"
	return resp
}

// hazardCurve turns a PGV map into an exceedance curve over log-spaced
// thresholds (fraction of surface sites exceeding each level).
func hazardCurve(p Product, points int) (curve, thresholds []float64) {
	if p.Peak <= 0 || len(p.PGVH) == 0 {
		return nil, nil
	}
	vals := make([]float64, len(p.PGVH))
	for i, v := range p.PGVH {
		vals[i] = float64(v)
	}
	thresholds = analysis.HazardThresholds(p.Peak/1e3, p.Peak, points)
	curve = analysis.ExceedanceCurve(vals, thresholds)
	return curve, thresholds
}

// handleMap serves the full PGV map for a stored key. A corrupt artifact
// is re-queued and reported degraded-unavailable — never served.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing key"})
		return
	}
	p, err := s.farm.Store().Get(key)
	if err != nil {
		s.farm.Resubmit(key)
		writeJSON(w, http.StatusOK, map[string]any{
			"key": key, "degraded": true, "available": false,
		})
		return
	}
	writeJSON(w, http.StatusOK, MapResponse{
		Key: key, NX: p.NX, NY: p.NY, Peak: p.Peak, PGVH: p.PGVH,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter) {
	s.mu.Lock()
	served, degraded, shed := s.served, s.degraded, s.shed
	s.mu.Unlock()
	surN := 0
	if sur := s.farm.Surrogate(); sur != nil {
		surN = sur.N()
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		Stats:    s.farm.Stats(),
		Breakers: s.farm.Breakers().States(),
		Queue:    s.farm.QueueDepth(),
		Stored:   len(s.farm.Store().Keys()),
		Served:   served,
		Degraded: degraded,
		Shed:     shed,
		SurrogateN: surN,
	})
}

// ServedCounts reports (served, degraded, shed) for benchmarks.
func (s *Server) ServedCounts() (served, degraded, shed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served, s.degraded, s.shed
}
