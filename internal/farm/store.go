package farm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"strings"
	"sync"

	"repro/internal/pfs"
	"repro/internal/workflow"
)

// ErrCorrupt marks an artifact whose CRC64 trailer does not match its
// payload. The store never returns corrupted data to a caller: Get reports
// this sentinel and the farm re-queues the scenario.
var ErrCorrupt = errors.New("farm: artifact corrupt")

// ErrNotFound marks a missing artifact.
var ErrNotFound = errors.New("farm: artifact not found")

var crcTable = crc64.MakeTable(crc64.ECMA)

const (
	artifactMagic   = "FARM"
	artifactVersion = 1
)

// Product is one completed scenario result: the surface PGV map plus its
// scalar summary, the unit the hazard service stores and serves.
type Product struct {
	Scenario Scenario
	NX, NY   int
	PGVH     []float32 // horizontal peak ground velocity, row-major [j*NX+i]
	Peak     float64   // max over the map
}

// encode serializes a product with a CRC64-ECMA trailer over everything
// that precedes it. Layout (little-endian): magic, version, scenario
// params (5×float64), NX, NY, payload float32s, CRC64.
func (p Product) encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(artifactMagic)
	le := binary.LittleEndian
	w := func(v any) { binary.Write(&buf, le, v) }
	w(uint32(artifactVersion))
	w(p.Scenario.Mw)
	w(p.Scenario.HypoX)
	w(p.Scenario.HypoY)
	w(p.Scenario.HypoZ)
	w(p.Scenario.VsScale)
	w(uint32(p.NX))
	w(uint32(p.NY))
	w(p.Peak)
	w(p.PGVH)
	sum := crc64.Checksum(buf.Bytes(), crcTable)
	w(sum)
	return buf.Bytes()
}

// decodeProduct parses and CRC-verifies an artifact.
func decodeProduct(data []byte) (Product, error) {
	var p Product
	if len(data) < len(artifactMagic)+4+8 {
		return p, ErrCorrupt
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	le := binary.LittleEndian
	if crc64.Checksum(body, crcTable) != le.Uint64(trailer) {
		return p, ErrCorrupt
	}
	if string(body[:4]) != artifactMagic {
		return p, ErrCorrupt
	}
	r := bytes.NewReader(body[4:])
	rd := func(v any) error { return binary.Read(r, le, v) }
	var ver, nx, ny uint32
	if err := rd(&ver); err != nil || ver != artifactVersion {
		return p, ErrCorrupt
	}
	for _, f := range []*float64{&p.Scenario.Mw, &p.Scenario.HypoX,
		&p.Scenario.HypoY, &p.Scenario.HypoZ, &p.Scenario.VsScale} {
		if err := rd(f); err != nil {
			return p, ErrCorrupt
		}
	}
	if rd(&nx) != nil || rd(&ny) != nil || rd(&p.Peak) != nil {
		return p, ErrCorrupt
	}
	p.NX, p.NY = int(nx), int(ny)
	if nx == 0 || ny == 0 || nx > 1<<16 || ny > 1<<16 {
		return p, ErrCorrupt
	}
	p.PGVH = make([]float32, int(nx)*int(ny))
	if rd(&p.PGVH) != nil || r.Len() != 0 {
		return p, ErrCorrupt
	}
	return p, nil
}

// Store is the content-addressed result store: artifacts are keyed by
// scenario hash, persisted on a (fault-injectable) simulated parallel file
// system, CRC64-verified on every read-back, and optionally catalogued in
// the workflow registry. Writes go through a temp-name + read-back-verify
// + rename protocol so a torn write can never become the served copy.
type Store struct {
	mu   sync.Mutex
	fs   *pfs.FS
	site workflow.Site
	reg  *workflow.Registry // optional catalogue
	// Retry governs transient-fault retries on the write path.
	Retry pfs.RetryPolicy
}

// NewStore creates a store over fs. reg may be nil.
func NewStore(fs *pfs.FS, reg *workflow.Registry) *Store {
	return &Store{
		fs:    fs,
		site:  workflow.Site{Name: "farm-store", FS: fs},
		reg:   reg,
		Retry: pfs.DefaultRetry(),
	}
}

func artifactPath(key string) string { return "products/" + key + ".farm" }

// Put persists a product under its scenario key. The artifact is written
// to a temp name with transient-fault retries, read back and CRC-verified
// (catching torn writes that reported success), then renamed into place.
// A failed verification counts as a transient fault and is retried.
func (s *Store) Put(p Product) (string, error) {
	key := p.Scenario.Key()
	data := p.encode()
	final := artifactPath(key)
	tmp := final + ".tmp"
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.Retry.Do(func() error {
		s.fs.Remove(tmp)
		if err := s.fs.WriteAt(tmp, 0, data); err != nil {
			return err
		}
		got := make([]byte, len(data))
		if s.fs.Size(tmp) < len(data) {
			return &pfs.TransientError{Op: "verify-short", Path: tmp}
		}
		if err := s.fs.ReadAt(tmp, 0, got); err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			// A torn write persisted garbage while reporting success;
			// classify as transient so the policy rewrites it.
			return &pfs.TransientError{Op: "verify-mismatch", Path: tmp}
		}
		return nil
	})
	if err != nil {
		s.fs.Remove(tmp)
		return key, err
	}
	if err := s.Retry.Do(func() error { return s.fs.Rename(tmp, final) }); err != nil {
		return key, err
	}
	if s.reg != nil {
		if _, err := s.reg.Register(s.site, final); err != nil {
			return key, err
		}
	}
	return key, nil
}

// Get loads and verifies an artifact. A CRC mismatch (or any truncation/
// garbling) returns ErrCorrupt wrapped with the key; corrupted bytes are
// never returned.
func (s *Store) Get(key string) (Product, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(key)
}

func (s *Store) getLocked(key string) (Product, error) {
	path := artifactPath(key)
	sz := s.fs.Size(path)
	if sz < 0 {
		return Product{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	data := make([]byte, sz)
	if err := s.fs.ReadAt(path, 0, data); err != nil {
		if pfs.IsTransient(err) {
			// One retry round for transient read faults; persistent
			// trouble surfaces to the caller.
			if err2 := s.Retry.Do(func() error {
				return s.fs.ReadAt(path, 0, data)
			}); err2 != nil {
				return Product{}, err2
			}
		} else {
			return Product{}, err
		}
	}
	p, err := decodeProduct(data)
	if err != nil {
		return Product{}, fmt.Errorf("%w: %s", ErrCorrupt, key)
	}
	return p, nil
}

// Has reports whether an artifact exists (without verifying it).
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Exists(artifactPath(key))
}

// Keys lists stored artifact keys.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for _, p := range s.fs.List() {
		if strings.HasPrefix(p, "products/") && strings.HasSuffix(p, ".farm") {
			keys = append(keys, strings.TrimSuffix(strings.TrimPrefix(p, "products/"), ".farm"))
		}
	}
	return keys
}

// Delete removes an artifact (the re-queue path after corruption).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fs.Remove(artifactPath(key))
}

// VerifyAll audits every stored artifact, returning the keys that fail
// CRC verification. The farm's background audit re-queues these.
func (s *Store) VerifyAll() []string {
	var bad []string
	for _, key := range s.Keys() {
		s.mu.Lock()
		_, err := s.getLocked(key)
		s.mu.Unlock()
		if errors.Is(err, ErrCorrupt) {
			bad = append(bad, key)
		}
	}
	return bad
}

// CorruptAtRest is the chaos hook: it flips bytes in the stored artifact
// for key, simulating at-rest bit rot. Returns false if the artifact does
// not exist.
func (s *Store) CorruptAtRest(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := artifactPath(key)
	sz := s.fs.Size(path)
	if sz <= 0 {
		return false
	}
	// Garble a byte in the middle of the payload.
	buf := []byte{0x5A}
	old := make([]byte, 1)
	off := sz / 2
	if err := s.fs.ReadAt(path, off, old); err == nil && old[0] == 0x5A {
		buf[0] = 0xA5
	}
	return s.fs.WriteAt(path, off, buf) == nil
}

// Checksum returns the artifact's CRC64 trailer (for external audit and
// the benchmark's wrong-result gate). Second return is false if missing
// or unreadably short.
func (s *Store) Checksum(key string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := artifactPath(key)
	sz := s.fs.Size(path)
	if sz < 8 {
		return 0, false
	}
	trailer := make([]byte, 8)
	if err := s.fs.ReadAt(path, sz-8, trailer); err != nil {
		return 0, false
	}
	return binary.LittleEndian.Uint64(trailer), true
}

// ProductChecksum computes the CRC64 a clean encoding of p would carry —
// the reference value for the zero-wrong-results gate.
func ProductChecksum(p Product) uint64 {
	data := p.encode()
	return binary.LittleEndian.Uint64(data[len(data)-8:])
}

// SanePGV rejects products with NaN/Inf peaks (defense against a solver
// gone numerically unstable under perturbation).
func SanePGV(p Product) bool {
	if math.IsNaN(p.Peak) || math.IsInf(p.Peak, 0) || p.Peak < 0 {
		return false
	}
	return len(p.PGVH) == p.NX*p.NY
}
