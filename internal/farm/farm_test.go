package farm

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// testSpec is a tiny, fast ensemble configuration for unit tests.
func testSpec() EnsembleSpec {
	return EnsembleSpec{
		Dims: grid.Dims{NX: 12, NY: 12, NZ: 10}, H: 100, Steps: 12, Ranks: 1,
	}
}

func newTestFarm(t *testing.T, cfg Config) *Farm {
	t.Helper()
	if cfg.Spec.Dims.NX == 0 {
		cfg.Spec = testSpec()
	}
	st := NewStore(pfs.New(pfs.Jaguar()), nil)
	f := New(cfg, st, NewSurrogate(DefaultRange()))
	t.Cleanup(f.Close)
	return f
}

func TestFarmRunsCleanEnsemble(t *testing.T) {
	rec := telemetry.NewRecorder(0, 0)
	f := newTestFarm(t, Config{Workers: 3, Rec: rec})
	scs := LatinHypercube(6, 1, DefaultRange())
	keys := make([]string, len(scs))
	for i, sc := range scs {
		keys[i] = f.Submit(sc)
	}
	f.Wait()
	st := f.Stats()
	if st.Completed != 6 || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
	for _, k := range keys {
		p, err := f.Store().Get(k)
		if err != nil {
			t.Fatalf("product %s: %v", k, err)
		}
		if !SanePGV(p) || p.Peak <= 0 {
			t.Fatalf("product %s insane: peak %g", k, p.Peak)
		}
	}
	if f.Surrogate().N() != 6 {
		t.Fatalf("surrogate trained on %d points", f.Surrogate().N())
	}
	if rec.Count("farm.completed") != 6 {
		t.Fatalf("telemetry completed = %d", rec.Count("farm.completed"))
	}
	if sec, n := rec.PhaseTotal(telemetry.Job); n != 6 || sec <= 0 {
		t.Fatalf("Job phase: %g s over %d spans", sec, n)
	}
	// Resubmission is deduplicated by content address.
	f.Submit(scs[0])
	f.Wait()
	if got := f.Stats(); got.Duplicates != 1 || got.Completed != 6 {
		t.Fatalf("resubmit not deduplicated: %+v", got)
	}
}

// TestFarmDeterministicProducts: the same scenario computed twice yields
// byte-identical artifacts — the foundation of the zero-wrong-results
// audit in the benchmark.
func TestFarmDeterministicProducts(t *testing.T) {
	sc := Scenario{Mw: 6.4, HypoX: 0.5, HypoY: 0.4, HypoZ: 0.5, VsScale: 1.02}
	f1 := newTestFarm(t, Config{Workers: 1})
	f1.Submit(sc)
	f1.Wait()
	p1, err := f1.Store().Get(sc.Key())
	if err != nil {
		t.Fatal(err)
	}
	f2 := newTestFarm(t, Config{Workers: 2})
	f2.Submit(sc)
	f2.Wait()
	p2, err := f2.Store().Get(sc.Key())
	if err != nil {
		t.Fatal(err)
	}
	if ProductChecksum(p1) != ProductChecksum(p2) {
		t.Fatal("same scenario produced different artifacts")
	}
}

// TestFarmWorkerCrashIsolated: chaos crashes kill workers mid-job; the
// supervisor must replace them and finish the full ensemble with every
// product intact, while other in-flight jobs are untouched.
func TestFarmWorkerCrashIsolated(t *testing.T) {
	f := newTestFarm(t, Config{
		Workers: 3, MaxAttempts: 8,
		Chaos: &ChaosPlan{Seed: 5, CrashProb: 0.35, MaxFaultsPerJob: 2},
	})
	scs := LatinHypercube(8, 2, DefaultRange())
	for _, sc := range scs {
		f.Submit(sc)
	}
	f.Wait()
	st := f.Stats()
	if st.Chaos.Crashes == 0 {
		t.Fatal("no crashes injected; test is vacuous")
	}
	if st.WorkerCrashes != st.Chaos.Crashes || st.WorkersReplaced != st.WorkerCrashes {
		t.Fatalf("crash accounting: %+v", st)
	}
	if st.Completed != 8 || st.Failed != 0 {
		t.Fatalf("ensemble incomplete under crashes: %+v", st)
	}
	if bad := f.Store().VerifyAll(); len(bad) != 0 {
		t.Fatalf("corrupt artifacts after crash storm: %v", bad)
	}
}

// TestFarmHungJobDeadline: chaos hangs stall attempts past the deadline;
// the supervisor must abandon and retry them, completing the ensemble.
func TestFarmHungJobDeadline(t *testing.T) {
	f := newTestFarm(t, Config{
		Workers: 2, MaxAttempts: 8, Deadline: 60 * time.Millisecond,
		Chaos: &ChaosPlan{Seed: 9, HangProb: 0.4, HangDur: 300 * time.Millisecond,
			MaxFaultsPerJob: 2},
	})
	scs := LatinHypercube(6, 3, DefaultRange())
	for _, sc := range scs {
		f.Submit(sc)
	}
	f.Wait()
	st := f.Stats()
	if st.Chaos.Hangs == 0 {
		t.Fatal("no hangs injected; test is vacuous")
	}
	if st.DeadlineMisses == 0 {
		t.Fatal("hangs did not trip the deadline")
	}
	if st.Completed != 6 || st.Failed != 0 {
		t.Fatalf("ensemble incomplete under hangs: %+v", st)
	}
	if st.Retries == 0 || st.BackoffSec <= 0 {
		t.Fatalf("deadline misses did not retry with backoff: %+v", st)
	}
}

// TestFarmAuditHealsCorruption: post-store chaos corrupts artifacts at
// rest; the audit must find, re-queue and heal every one.
func TestFarmAuditHealsCorruption(t *testing.T) {
	f := newTestFarm(t, Config{
		Workers: 2, MaxAttempts: 6,
		Chaos: &ChaosPlan{Seed: 13, CorruptProb: 0.5, MaxFaultsPerJob: 1},
	})
	scs := LatinHypercube(8, 4, DefaultRange())
	for _, sc := range scs {
		f.Submit(sc)
	}
	f.Wait()
	if f.Stats().Chaos.Corruptions == 0 {
		t.Fatal("no corruption injected; test is vacuous")
	}
	if bad := f.Store().VerifyAll(); len(bad) == 0 {
		t.Fatal("corruption injected but audit found nothing")
	}
	healed := f.Audit(4)
	if healed == 0 {
		t.Fatal("audit healed nothing")
	}
	// Chaos budget (MaxFaultsPerJob=1) is spent, so re-runs stay clean.
	if bad := f.Store().VerifyAll(); len(bad) != 0 {
		t.Fatalf("artifacts still corrupt after audit: %v", bad)
	}
	if f.Stats().CorruptRequeued != healed {
		t.Fatalf("requeue accounting: %+v healed=%d", f.Stats(), healed)
	}
}

// TestFarmBreakerTripsOnDoomedClass: a scenario class that always fails
// (deadline too short for anything) must trip its breaker; submitting a
// mixed ensemble shows other classes complete.
func TestFarmBreakerTrips(t *testing.T) {
	// Chaos hangs every attempt of every job (budget >> attempts), so all
	// jobs exhaust MaxAttempts and fail — tripping breakers fast.
	f := newTestFarm(t, Config{
		Workers: 2, MaxAttempts: 2, Deadline: 20 * time.Millisecond,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		Chaos: &ChaosPlan{Seed: 7, HangProb: 1.0, HangDur: 200 * time.Millisecond,
			MaxFaultsPerJob: 1000},
	})
	for _, sc := range LatinHypercube(4, 8, DefaultRange()) {
		f.Submit(sc)
	}
	f.Wait()
	st := f.Stats()
	if st.Failed != 4 || st.Completed != 0 {
		t.Fatalf("doomed ensemble: %+v", st)
	}
	if st.BreakerTrips == 0 {
		t.Fatal("no breaker tripped under persistent failure")
	}
	states := f.Breakers().States()
	open := 0
	for _, s := range states {
		if s == "open" {
			open++
		}
	}
	if open == 0 {
		t.Fatalf("no class open: %v", states)
	}
}

// TestFarmFTWorldRecovery: FT mode runs each job as a checkpointed world
// with in-world rank crashes; coordinated recovery must still produce
// clean artifacts identical to an undisturbed run.
func TestFarmFTWorldRecovery(t *testing.T) {
	spec := testSpec()
	spec.Ranks = 2
	sc := Scenario{Mw: 6.8, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.5, VsScale: 1}

	clean := newTestFarm(t, Config{Spec: spec, Workers: 1,
		FT: &FTConfig{Interval: 4}})
	clean.Submit(sc)
	clean.Wait()
	ref, err := clean.Store().Get(sc.Key())
	if err != nil {
		t.Fatalf("clean FT run: %v (stats %+v)", err, clean.Stats())
	}

	crash := mpi.ChaosPlan{Seed: 11, CrashAtSend: map[int]uint64{1: 9}}
	f := newTestFarm(t, Config{Spec: spec, Workers: 1, MaxAttempts: 4,
		Deadline: time.Minute,
		FT: &FTConfig{Interval: 4, Chaos: &crash}})
	f.Submit(sc)
	f.Wait()
	st := f.Stats()
	if st.Completed != 1 {
		t.Fatalf("FT job did not complete: %+v", st)
	}
	if st.Recoveries == 0 {
		t.Fatal("no in-world recovery happened; test is vacuous")
	}
	got, err := f.Store().Get(sc.Key())
	if err != nil {
		t.Fatal(err)
	}
	if ProductChecksum(got) != ProductChecksum(ref) {
		t.Fatal("recovered world's product differs from clean run")
	}
}
