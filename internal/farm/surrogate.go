package farm

import (
	"math"
	"sync"
)

// Surrogate is a cheap Gaussian-RBF emulator of peak PGV over the
// 5-dimensional scenario space, trained on completed ensemble members
// (the mogp-style surrogate of the UQ workflow). The degraded serving
// path answers from it when the real product is unavailable — a breaker
// is open, the store copy is corrupt, or the service is saturated —
// trading accuracy for availability, never erroring.
type Surrogate struct {
	mu    sync.Mutex
	r     ScenarioRange
	x     [][5]float64 // normalized training inputs
	y     []float64    // peak PGV targets
	w     []float64    // RBF weights
	dirty bool
	// Eps is the kernel width in normalized units (default 0.5); Lambda
	// the ridge regularizer (default 1e-8).
	Eps, Lambda float64
}

// NewSurrogate creates an empty surrogate over the ensemble's range.
func NewSurrogate(r ScenarioRange) *Surrogate {
	return &Surrogate{r: r, Eps: 0.5, Lambda: 1e-8}
}

func (s *Surrogate) norm(sc Scenario) [5]float64 {
	n := func(v, lo, hi float64) float64 {
		if hi == lo {
			return 0
		}
		return (v - lo) / (hi - lo)
	}
	return [5]float64{
		n(sc.Mw, s.r.Lo.Mw, s.r.Hi.Mw),
		n(sc.HypoX, s.r.Lo.HypoX, s.r.Hi.HypoX),
		n(sc.HypoY, s.r.Lo.HypoY, s.r.Hi.HypoY),
		n(sc.HypoZ, s.r.Lo.HypoZ, s.r.Hi.HypoZ),
		n(sc.VsScale, s.r.Lo.VsScale, s.r.Hi.VsScale),
	}
}

// Observe adds a completed scenario's peak PGV as a training point.
// Refit is lazy: the next Predict pays the solve.
func (s *Surrogate) Observe(sc Scenario, peak float64) {
	if math.IsNaN(peak) || math.IsInf(peak, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.x = append(s.x, s.norm(sc))
	s.y = append(s.y, peak)
	s.dirty = true
}

// N returns the training-set size.
func (s *Surrogate) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.x)
}

func (s *Surrogate) kernel(a, b [5]float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * s.Eps * s.Eps))
}

// refit solves (K + λI)w = y by Gaussian elimination with partial
// pivoting. Caller holds the lock.
func (s *Surrogate) refit() {
	n := len(s.x)
	// Build the augmented system.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			a[i][j] = s.kernel(s.x[i], s.x[j])
		}
		a[i][i] += s.Lambda
		a[i][n] = s.y[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		if math.Abs(piv) < 1e-300 {
			continue
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / piv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	w := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := a[i][n]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * w[j]
		}
		if math.Abs(a[i][i]) < 1e-300 {
			w[i] = 0
			continue
		}
		w[i] = sum / a[i][i]
	}
	s.w = w
	s.dirty = false
}

// Predict estimates peak PGV for a scenario. With no training data it
// returns (0, false); callers fall back to a constant prior.
func (s *Surrogate) Predict(sc Scenario) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.x) == 0 {
		return 0, false
	}
	if s.dirty || s.w == nil {
		s.refit()
	}
	q := s.norm(sc)
	v := 0.0
	for i := range s.x {
		v += s.w[i] * s.kernel(q, s.x[i])
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	if v < 0 {
		v = 0
	}
	return v, true
}
