package farm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core/solver"
	"repro/internal/ft"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// Config tunes the farm supervisor.
type Config struct {
	Spec EnsembleSpec
	// Workers is the persistent fleet size (default 4).
	Workers int
	// MaxAttempts caps tries per scenario before it is declared failed
	// (default 6).
	MaxAttempts int
	// Deadline bounds one attempt's wall time; a hung attempt is
	// abandoned and retried (default 10s — generous for clean jobs,
	// tightened by the benchmark from a pilot run).
	Deadline time.Duration
	// RetryBase/RetryMax bound the exponential requeue backoff
	// (defaults 2ms / 50ms; pfs.RetryPolicy semantics).
	RetryBase, RetryMax time.Duration
	// Breaker tunes the per-class circuit breakers.
	Breaker BreakerConfig
	// MaxParks bounds how many times one job may be parked behind its
	// class's open breaker before it is failed fast (default 100) —
	// Wait always terminates even if a class never heals.
	MaxParks int
	// Chaos, when non-nil, arms the farm-level fault injector.
	Chaos *ChaosPlan
	// FT, when non-nil, runs each job as a fault-tolerant multi-rank
	// world (checkpoint/recover) instead of a plain solver.Run.
	FT *FTConfig
	// Rec, when non-nil, receives Job/Serve phase spans and named
	// counters (queue depth, retries, breaker trips, sheds).
	Rec *telemetry.Recorder
	// Logf routes diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// FTConfig configures fault-tolerant in-world execution of each job.
type FTConfig struct {
	// Interval is the checkpoint cadence in steps (default 15).
	Interval int
	// Chaos arms in-world message-layer fault injection; the plan's Seed
	// is re-derived per job so different scenarios see different faults.
	Chaos *mpi.ChaosPlan
	// PFSFaults arms transient checkpoint-storage faults.
	PFSFaults *pfs.FaultPlan
}

// Stats snapshots the supervisor's counters.
type Stats struct {
	Submitted   int `json:"submitted"`
	Completed   int `json:"completed"`
	Duplicates  int `json:"duplicates"`
	Failed      int `json:"failed"` // permanently, after MaxAttempts
	Attempts    int `json:"attempts"`
	Retries     int `json:"retries"`
	WorkerCrashes int `json:"worker_crashes"`
	WorkersReplaced int `json:"workers_replaced"`
	DeadlineMisses  int `json:"deadline_misses"`
	BreakerParks    int `json:"breaker_parks"`
	BreakerTrips    int `json:"breaker_trips"`
	CorruptRequeued int `json:"corrupt_requeued"`
	Recoveries      int `json:"recoveries"` // in-world coordinated rollbacks
	BackoffSec      float64 `json:"backoff_sec"`
	Chaos           ChaosStats `json:"chaos"`
}

type jobStatus int

const (
	jobQueued jobStatus = iota
	jobRunning
	jobDone
	jobFailed
)

type jobState struct {
	sc       Scenario
	key      string
	status   jobStatus
	attempts int
	parks    int // consecutive breaker parks
	backoff  time.Duration
}

// Farm is the supervised scenario queue: a bounded persistent worker
// fleet pulls jobs, runs them under a per-attempt deadline with panic
// isolation, retries with bounded exponential backoff up to MaxAttempts,
// and lands verified products in the content-addressed store. Failures
// are isolated three ways: a crashing worker is replaced without
// disturbing other in-flight jobs; repeated failures in one scenario
// class trip that class's breaker without blocking the others; and a
// corrupted artifact is re-queued, never served.
type Farm struct {
	cfg      Config
	store    *Store
	breakers *Breakers
	chaos    *chaosEngine
	sur      *Surrogate

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []string // keys, FIFO
	jobs    map[string]*jobState
	inflight int // queued + running + awaiting requeue
	closed  bool
	stats   Stats
	pending sync.WaitGroup // delayed requeue timers
	workers sync.WaitGroup
}

// New creates and starts a farm: Workers goroutines begin pulling
// immediately. Close must be called to stop them.
func New(cfg Config, store *Store, sur *Surrogate) *Farm {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 10 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 2 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 50 * time.Millisecond
	}
	if cfg.MaxParks <= 0 {
		cfg.MaxParks = 100
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	f := &Farm{
		cfg:      cfg,
		store:    store,
		breakers: NewBreakers(cfg.Breaker),
		sur:      sur,
		jobs:     map[string]*jobState{},
	}
	if cfg.Chaos != nil {
		f.chaos = newChaosEngine(*cfg.Chaos)
	}
	f.cond = sync.NewCond(&f.mu)
	for i := 0; i < cfg.Workers; i++ {
		f.workers.Add(1)
		go f.worker(i)
	}
	return f
}

// Store returns the farm's result store.
func (f *Farm) Store() *Store { return f.store }

// Surrogate returns the farm's trained surrogate (may be nil).
func (f *Farm) Surrogate() *Surrogate { return f.sur }

// Breakers returns the per-class breaker set.
func (f *Farm) Breakers() *Breakers { return f.breakers }

// Submit enqueues a scenario. Scenarios whose artifact already exists or
// that are already queued/running are deduplicated (content addressing
// makes re-submission idempotent). Returns the scenario key.
func (f *Farm) Submit(sc Scenario) string {
	key := sc.Key()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return key
	}
	f.stats.Submitted++
	if js := f.jobs[key]; js != nil && js.status != jobFailed {
		f.stats.Duplicates++
		return key
	}
	if f.store.Has(key) {
		f.jobs[key] = &jobState{sc: sc, key: key, status: jobDone}
		f.stats.Duplicates++
		return key
	}
	f.jobs[key] = &jobState{sc: sc, key: key, status: jobQueued}
	f.enqueueLocked(key)
	return key
}

// enqueueLocked appends to the FIFO and accounts the job in-flight.
func (f *Farm) enqueueLocked(key string) {
	f.queue = append(f.queue, key)
	f.inflight++
	f.cfg.Rec.MaxCount("farm.queue_depth_max", int64(len(f.queue)))
	f.cond.Broadcast()
}

// requeueAfter schedules a delayed retry without holding a worker.
func (f *Farm) requeueAfter(key string, d time.Duration) {
	f.pending.Add(1)
	time.AfterFunc(d, func() {
		defer f.pending.Done()
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.closed {
			// Job abandoned at shutdown: release the in-flight slot the
			// retry was holding.
			f.inflight--
			f.cond.Broadcast()
			return
		}
		f.queue = append(f.queue, key)
		f.cfg.Rec.MaxCount("farm.queue_depth_max", int64(len(f.queue)))
		f.cond.Broadcast()
	})
}

// worker is one fleet member. A panic inside an attempt (chaos crash or
// a genuine solver bug) kills this goroutine; the deferred supervisor
// spawns a replacement and requeues the job — other in-flight jobs never
// notice.
func (f *Farm) worker(id int) {
	defer f.workers.Done()
	var current string // key being attempted, for crash recovery
	defer func() {
		if r := recover(); r != nil {
			f.mu.Lock()
			f.stats.WorkerCrashes++
			f.stats.WorkersReplaced++
			f.cfg.Rec.AddCount("farm.worker_crashes", 1)
			f.cfg.Logf("farm: worker %d crashed (%v); replacing", id, r)
			key := current
			f.mu.Unlock()
			if key != "" {
				f.attemptFailed(key, fmt.Errorf("worker crash: %v", r))
			}
			f.workers.Add(1)
			go f.worker(id)
		}
	}()
	for {
		f.mu.Lock()
		for len(f.queue) == 0 && !f.closed {
			f.cond.Wait()
		}
		if f.closed && len(f.queue) == 0 {
			f.mu.Unlock()
			return
		}
		key := f.queue[0]
		f.queue = f.queue[1:]
		js := f.jobs[key]
		if js == nil || js.status == jobDone || js.status == jobFailed {
			// Stale requeue (e.g. audit already resolved it).
			f.inflight--
			f.cond.Broadcast()
			f.mu.Unlock()
			continue
		}
		class := js.sc.Class()
		f.mu.Unlock()

		// Failure isolation: a tripped class parks its jobs (delayed
		// requeue) instead of burning attempts; other classes flow. A
		// job parked past MaxParks fails fast so Wait terminates even
		// if the class never heals.
		if !f.breakers.Allow(class) {
			f.mu.Lock()
			f.stats.BreakerParks++
			f.cfg.Rec.AddCount("farm.breaker_parks", 1)
			js.parks++
			if js.parks > f.cfg.MaxParks {
				js.status = jobFailed
				f.stats.Failed++
				f.cfg.Rec.AddCount("farm.failed", 1)
				f.cfg.Logf("farm: job %s shed after %d parks (class %s open)",
					key, js.parks, class)
				f.inflight--
				f.cond.Broadcast()
				f.mu.Unlock()
				continue
			}
			d := f.cfg.RetryMax
			f.mu.Unlock()
			f.requeueAfter(key, d)
			continue
		}
		f.mu.Lock()
		js.parks = 0
		f.mu.Unlock()

		current = key
		f.runAttempt(key)
		current = ""
	}
}

// runAttempt executes one attempt under the deadline. The compute runs in
// an inner goroutine so a hang is abandoned (its eventual result
// discarded) rather than blocking the worker past the deadline.
func (f *Farm) runAttempt(key string) {
	f.mu.Lock()
	js := f.jobs[key]
	if js == nil {
		f.mu.Unlock()
		return
	}
	js.status = jobRunning
	js.attempts++
	f.stats.Attempts++
	f.cfg.Rec.AddCount("farm.attempts", 1)
	sc := js.sc
	f.mu.Unlock()

	sp := f.cfg.Rec.Span(telemetry.Job)
	defer sp.End()

	// Chaos: a crash panics this worker (the supervisor replaces it); a
	// hang stalls the compute goroutine past the deadline.
	action, hang := f.chaos.preAttempt(key)
	if action == chaosCrash {
		panic("chaos: worker crash mid-job " + key)
	}

	type outcome struct {
		p   Product
		err error
	}
	done := make(chan outcome, 1) // buffered: a late result never blocks the abandoned goroutine
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{err: fmt.Errorf("compute panic: %v", r)}
			}
		}()
		if action == chaosHang {
			time.Sleep(hang)
		}
		p, err := f.compute(sc)
		done <- outcome{p: p, err: err}
	}()

	select {
	case out := <-done:
		if out.err != nil {
			f.attemptFailed(key, out.err)
			return
		}
		f.attemptSucceeded(key, out.p)
	case <-time.After(f.cfg.Deadline):
		f.mu.Lock()
		f.stats.DeadlineMisses++
		f.cfg.Rec.AddCount("farm.deadline_misses", 1)
		f.mu.Unlock()
		f.attemptFailed(key, fmt.Errorf("deadline %v exceeded", f.cfg.Deadline))
	}
}

// compute runs the scenario to a product, either as a plain single-rank
// solve or as a fault-tolerant checkpointed world.
func (f *Farm) compute(sc Scenario) (Product, error) {
	opt := f.cfg.Spec.Options(sc)
	model := f.cfg.Spec.Model(sc)
	var res *solver.Result
	var err error
	if f.cfg.FT != nil {
		interval := f.cfg.FT.Interval
		if interval <= 0 {
			interval = 15
		}
		var chaos *mpi.ChaosPlan
		if f.cfg.FT.Chaos != nil {
			// Re-derive the seed per scenario so each world sees its own
			// fault pattern, deterministically.
			cp := *f.cfg.FT.Chaos
			cp.Seed ^= int64(len(sc.Key())) // stable mix-in below
			for _, b := range []byte(sc.Key()) {
				cp.Seed = cp.Seed*131 + int64(b)
			}
			chaos = &cp
		}
		var stats ft.WorldStats
		res, stats, err = ft.RunWorld(ft.WorldOptions{
			Solver: opt, Query: model,
			FS: pfs.New(pfs.Jaguar()), Dir: "ckpt",
			Interval: interval, Chaos: chaos,
			PFSFaults: f.cfg.FT.PFSFaults,
			Logf:      f.cfg.Logf,
		})
		f.mu.Lock()
		f.stats.Recoveries += stats.Recoveries
		f.mu.Unlock()
		f.cfg.Rec.AddCount("farm.world_recoveries", int64(stats.Recoveries))
	} else {
		res, err = solver.Run(model, opt)
	}
	if err != nil {
		return Product{}, err
	}
	nx, ny := f.cfg.Spec.Dims.NX, f.cfg.Spec.Dims.NY
	p := Product{Scenario: sc, NX: nx, NY: ny, PGVH: make([]float32, nx*ny)}
	for i, v := range res.PGVH {
		p.PGVH[i] = float32(v)
		if v > p.Peak {
			p.Peak = v
		}
	}
	if !SanePGV(p) {
		return Product{}, fmt.Errorf("farm: insane PGV for %s", sc.Key())
	}
	return p, nil
}

// attemptSucceeded stores the product (with read-back verification),
// applies post-store chaos, trains the surrogate and resolves the job.
func (f *Farm) attemptSucceeded(key string, p Product) {
	if _, err := f.store.Put(p); err != nil {
		f.attemptFailed(key, err)
		return
	}
	// Chaos: at-rest corruption right after the store. The audit (or a
	// serving read) catches it by CRC and re-queues.
	if f.chaos.postStore(key) {
		f.store.CorruptAtRest(key)
	}
	if f.sur != nil {
		f.sur.Observe(p.Scenario, p.Peak)
	}
	f.breakers.OnSuccess(p.Scenario.Class())
	f.mu.Lock()
	js := f.jobs[key]
	if js != nil && js.status != jobDone {
		js.status = jobDone
		f.stats.Completed++
		f.cfg.Rec.AddCount("farm.completed", 1)
		f.inflight--
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// attemptFailed books a failed attempt: breaker feedback, then either a
// backoff-delayed requeue or permanent failure after MaxAttempts.
func (f *Farm) attemptFailed(key string, cause error) {
	f.mu.Lock()
	js := f.jobs[key]
	if js == nil || js.status == jobDone || js.status == jobFailed {
		f.mu.Unlock()
		return
	}
	trips0 := f.breakers.Trips()
	f.mu.Unlock()

	f.breakers.OnFailure(js.sc.Class())

	f.mu.Lock()
	if t := f.breakers.Trips(); t > trips0 {
		f.stats.BreakerTrips = t
		f.cfg.Rec.AddCount("farm.breaker_trips", int64(t-trips0))
		f.cfg.Logf("farm: breaker tripped for class %s (%s)", js.sc.Class(), cause)
	}
	if js.attempts >= f.cfg.MaxAttempts {
		js.status = jobFailed
		f.stats.Failed++
		f.cfg.Rec.AddCount("farm.failed", 1)
		f.cfg.Logf("farm: job %s failed permanently after %d attempts: %v",
			key, js.attempts, cause)
		f.inflight--
		f.cond.Broadcast()
		f.mu.Unlock()
		return
	}
	// Bounded exponential backoff, pfs.RetryPolicy semantics.
	if js.backoff <= 0 {
		js.backoff = f.cfg.RetryBase
	} else {
		js.backoff *= 2
		if js.backoff > f.cfg.RetryMax {
			js.backoff = f.cfg.RetryMax
		}
	}
	d := js.backoff
	js.status = jobQueued
	f.stats.Retries++
	f.stats.BackoffSec += d.Seconds()
	f.cfg.Rec.AddCount("farm.retries", 1)
	f.mu.Unlock()
	f.requeueAfter(key, d)
}

// Wait blocks until every submitted job has resolved (done or failed).
func (f *Farm) Wait() {
	f.mu.Lock()
	for f.inflight > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Audit verifies every stored artifact and re-queues the scenarios whose
// artifacts fail CRC (at-rest corruption). It loops until an audit round
// finds nothing (bounded by rounds), waiting for the re-runs each round.
// Returns the number of artifacts healed.
func (f *Farm) Audit(rounds int) int {
	if rounds <= 0 {
		rounds = 4
	}
	healed := 0
	for r := 0; r < rounds; r++ {
		bad := f.store.VerifyAll()
		if len(bad) == 0 {
			return healed
		}
		for _, key := range bad {
			f.mu.Lock()
			js := f.jobs[key]
			if js == nil {
				f.mu.Unlock()
				continue
			}
			f.store.Delete(key)
			f.withdrawLocked(js)
			f.enqueueLocked(key)
			f.mu.Unlock()
			healed++
		}
		f.Wait()
	}
	return healed
}

// Scenario returns the submitted scenario for a key.
func (f *Farm) Scenario(key string) (Scenario, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	js := f.jobs[key]
	if js == nil {
		return Scenario{}, false
	}
	return js.sc, true
}

// Resubmit re-queues a known scenario whose artifact was found corrupt at
// serving time. Returns false if the key is unknown or the farm closed.
func (f *Farm) Resubmit(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	js := f.jobs[key]
	if js == nil || f.closed {
		return false
	}
	if js.status == jobQueued || js.status == jobRunning {
		return true // already on its way
	}
	f.store.Delete(key)
	f.withdrawLocked(js)
	f.enqueueLocked(key)
	return true
}

// withdrawLocked resets a resolved job back to queued for a corruption
// re-run, reversing its terminal accounting so Completed/Failed count
// unique resolved jobs, not resolution events.
func (f *Farm) withdrawLocked(js *jobState) {
	switch js.status {
	case jobDone:
		f.stats.Completed--
	case jobFailed:
		f.stats.Failed--
	}
	f.stats.CorruptRequeued++
	f.cfg.Rec.AddCount("farm.corrupt_requeued", 1)
	js.status = jobQueued
	js.attempts = 0
	js.parks = 0
	js.backoff = 0
}

// QueueDepth reports jobs waiting in the FIFO (for /status and shedding).
func (f *Farm) QueueDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

// Stats snapshots the counters.
func (f *Farm) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Chaos = f.chaos.Stats()
	st.BreakerTrips = f.breakers.Trips()
	return st
}

// Close stops the fleet after the queue drains. Pending delayed requeues
// are released. Idempotent.
func (f *Farm) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	f.workers.Wait()
	f.pending.Wait()
}
