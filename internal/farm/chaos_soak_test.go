package farm

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// TestFarmChaosSoakRace is the service-level chaos soak: one run
// composing every fault class — worker crashes, hung jobs, at-rest
// artifact corruption and PFS fault storms on the store — while a
// concurrent query load hits the front end. The invariants under the
// storm are the farm's whole robustness contract:
//   - the full ensemble completes with zero permanently failed jobs,
//   - every surviving artifact verifies (zero wrong results),
//   - every query is answered 200 (degraded allowed, never an error).
//
// Run under -race in CI.
func TestFarmChaosSoakRace(t *testing.T) {
	fs := pfs.New(pfs.Jaguar())
	fs.InjectFaults(pfs.FaultPlan{
		Seed: 77, WriteFailProb: 0.1, ShortWriteProb: 0.05,
		TornWriteProb: 0.05, ReadFailProb: 0.03, MaxConsecutive: 2,
	})
	store := NewStore(fs, nil)
	store.Retry.MaxAttempts = 10
	store.Retry.Sleep = func(time.Duration) {}

	rec := telemetry.NewRecorder(0, 0)
	cfg := Config{
		Spec: testSpec(), Workers: 4, MaxAttempts: 10,
		Deadline:  500 * time.Millisecond,
		RetryBase: time.Millisecond, RetryMax: 10 * time.Millisecond,
		Breaker:   BreakerConfig{Threshold: 4, Cooldown: 30 * time.Millisecond},
		Chaos: &ChaosPlan{
			Seed: 99, CrashProb: 0.15, HangProb: 0.2,
			HangDur: 900 * time.Millisecond, CorruptProb: 0.15,
			MaxFaultsPerJob: 2,
		},
		Rec: rec,
	}
	f := New(cfg, store, NewSurrogate(DefaultRange()))
	defer f.Close()
	srv := NewServer(f, ServerConfig{MaxConcurrent: 4})

	scs := LatinHypercube(12, 6, DefaultRange())
	for _, sc := range scs {
		f.Submit(sc)
	}

	// Concurrent query load against the front end while the storm rages.
	var qwg sync.WaitGroup
	var qmu sync.Mutex
	non200 := 0
	queries := 0
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		qwg.Add(1)
		go func(g int) {
			defer qwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sc := scs[(g*7+i)%len(scs)]
				req := httptest.NewRequest("GET", scenarioURL(sc), nil)
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, req)
				qmu.Lock()
				queries++
				if w.Code != 200 {
					non200++
				}
				qmu.Unlock()
				var r HazardResponse
				if json.Unmarshal(w.Body.Bytes(), &r) == nil && !r.Degraded {
					// An exact answer must match a verified artifact.
					if r.PeakPGV <= 0 {
						t.Errorf("exact answer with peak %g", r.PeakPGV)
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(g)
	}

	f.Wait()
	healed := f.Audit(6)
	close(stop)
	qwg.Wait()

	st := f.Stats()
	if st.Chaos.Crashes == 0 || st.Chaos.Hangs == 0 || st.Chaos.Corruptions == 0 {
		t.Fatalf("soak did not exercise all fault classes: %+v", st.Chaos)
	}
	if st.Completed != len(scs) || st.Failed != 0 {
		t.Fatalf("ensemble incomplete under storm: %+v", st)
	}
	// Zero wrong results: every artifact verifies after the audit.
	fs.ClearFaults()
	if bad := store.VerifyAll(); len(bad) != 0 {
		t.Fatalf("corrupt artifacts survived the audit: %v", bad)
	}
	if st.Chaos.Corruptions > 0 && healed == 0 && st.CorruptRequeued == 0 {
		t.Fatal("corruption injected but nothing was re-queued (serving or audit)")
	}
	// Availability: every query answered, none with an error status.
	qmu.Lock()
	defer qmu.Unlock()
	if queries == 0 {
		t.Fatal("no queries ran")
	}
	if non200 != 0 {
		t.Fatalf("%d of %d queries errored under the storm", non200, queries)
	}
	// Telemetry saw the storm.
	if rec.Count("farm.worker_crashes") == 0 || rec.Count("farm.attempts") == 0 {
		t.Fatalf("telemetry counters empty: %v", rec.Counts())
	}
	if _, n := rec.PhaseTotal(telemetry.Serve); n == 0 {
		t.Fatal("no Serve spans recorded")
	}
}

// TestFarmCleanVsStormThroughput is a scaled-down version of the
// BENCH_10 throughput gate: the fault storm may slow the farm down but
// not break it. (The 35% gate itself lives in cmd/benchtab where the
// ensemble is bigger; here we only require the storm run to finish and
// both runs to agree byte-for-byte on every artifact.)
func TestFarmCleanVsStormThroughput(t *testing.T) {
	scs := LatinHypercube(8, 14, DefaultRange())

	run := func(chaos *ChaosPlan) (map[string]uint64, Stats) {
		st := NewStore(pfs.New(pfs.Jaguar()), nil)
		f := New(Config{
			Spec: testSpec(), Workers: 4, MaxAttempts: 10,
			Deadline: 500 * time.Millisecond,
			RetryBase: time.Millisecond, RetryMax: 10 * time.Millisecond,
			Chaos: chaos,
		}, st, nil)
		defer f.Close()
		for _, sc := range scs {
			f.Submit(sc)
		}
		f.Wait()
		f.Audit(6)
		sums := map[string]uint64{}
		for _, k := range st.Keys() {
			if c, ok := st.Checksum(k); ok {
				sums[k] = c
			}
		}
		return sums, f.Stats()
	}

	clean, cleanStats := run(nil)
	storm, stormStats := run(&ChaosPlan{
		Seed: 5, CrashProb: 0.25, HangProb: 0.15, HangDur: 900 * time.Millisecond,
		CorruptProb: 0.2, MaxFaultsPerJob: 2,
	})
	if cleanStats.Completed != len(scs) || stormStats.Completed != len(scs) {
		t.Fatalf("clean %+v storm %+v", cleanStats, stormStats)
	}
	if len(clean) != len(storm) {
		t.Fatalf("artifact counts differ: %d vs %d", len(clean), len(storm))
	}
	for k, c := range clean {
		if storm[k] != c {
			t.Fatalf("artifact %s differs between clean and storm runs", k)
		}
	}
	ch := stormStats.Chaos
	if ch.Crashes+ch.Hangs+ch.Corruptions == 0 {
		t.Fatalf("storm injected nothing; chaos was vacuous: %+v", ch)
	}
	if stormStats.Retries+stormStats.CorruptRequeued == 0 {
		t.Fatal("storm faults triggered no retry or re-queue")
	}
}
