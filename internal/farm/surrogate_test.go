package farm

import (
	"math"
	"testing"
)

// surrogate ground truth: a smooth function over the scenario box.
func truth(sc Scenario) float64 {
	return 0.3 + 0.5*(sc.Mw-5.5)/2 + 0.1*math.Sin(3*sc.HypoX) + 0.05*sc.VsScale
}

func TestSurrogateInterpolates(t *testing.T) {
	r := DefaultRange()
	s := NewSurrogate(r)
	if _, ok := s.Predict(Scenario{Mw: 6}); ok {
		t.Fatal("untrained surrogate predicted")
	}
	train := LatinHypercube(40, 7, r)
	for _, sc := range train {
		s.Observe(sc, truth(sc))
	}
	if s.N() != 40 {
		t.Fatalf("N = %d", s.N())
	}
	// Training points reproduce nearly exactly (ridge is tiny).
	for _, sc := range train[:8] {
		got, ok := s.Predict(sc)
		if !ok {
			t.Fatal("no prediction")
		}
		if math.Abs(got-truth(sc)) > 0.02 {
			t.Fatalf("train point: got %g want %g", got, truth(sc))
		}
	}
	// Held-out points interpolate decently.
	test := LatinHypercube(10, 99, r)
	var sumErr float64
	for _, sc := range test {
		got, _ := s.Predict(sc)
		sumErr += math.Abs(got - truth(sc))
	}
	if avg := sumErr / float64(len(test)); avg > 0.1 {
		t.Fatalf("held-out mean abs error %g too large", avg)
	}
}

func TestSurrogateRejectsBadObservations(t *testing.T) {
	s := NewSurrogate(DefaultRange())
	s.Observe(Scenario{Mw: 6}, math.NaN())
	s.Observe(Scenario{Mw: 6}, math.Inf(1))
	if s.N() != 0 {
		t.Fatalf("NaN/Inf observations accepted: N=%d", s.N())
	}
	s.Observe(Scenario{Mw: 6, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.5, VsScale: 1}, 0.4)
	v, ok := s.Predict(Scenario{Mw: 6, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.5, VsScale: 1})
	if !ok || v < 0 {
		t.Fatalf("single-point predict = %g, %v", v, ok)
	}
}

func TestLatinHypercubeCoverage(t *testing.T) {
	r := DefaultRange()
	n := 16
	scs := LatinHypercube(n, 3, r)
	if len(scs) != n {
		t.Fatalf("len %d", len(scs))
	}
	// Stratification: each Mw stratum hit exactly once.
	seen := make([]bool, n)
	for _, sc := range scs {
		u := (sc.Mw - r.Lo.Mw) / (r.Hi.Mw - r.Lo.Mw)
		k := int(u * float64(n))
		if k == n {
			k = n - 1
		}
		if u < 0 || u >= 1.0000001 {
			t.Fatalf("Mw %g outside range", sc.Mw)
		}
		if seen[k] {
			t.Fatalf("Mw stratum %d hit twice", k)
		}
		seen[k] = true
	}
	// Determinism.
	again := LatinHypercube(n, 3, r)
	for i := range scs {
		if scs[i] != again[i] {
			t.Fatal("same seed produced different ensemble")
		}
	}
	if LatinHypercube(n, 4, r)[0] == scs[0] {
		t.Fatal("different seed produced identical first member")
	}
}

func TestScenarioKeyAndClass(t *testing.T) {
	a := Scenario{Mw: 6.5, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.5, VsScale: 1}
	b := a
	if a.Key() != b.Key() {
		t.Fatal("identical scenarios differ in key")
	}
	b.Mw += 0.001
	if a.Key() == b.Key() {
		t.Fatal("different scenarios share a key")
	}
	if (Scenario{Mw: 5.9}).Class() != "M<6" ||
		(Scenario{Mw: 6.5}).Class() != "M6-7" ||
		(Scenario{Mw: 7.2}).Class() != "M7+" {
		t.Fatal("class bands wrong")
	}
	// Hanks–Kanamori: Mw 6 is ~10^1.5 times Mw 5 in moment.
	r := Scenario{Mw: 6}.M0() / Scenario{Mw: 5}.M0()
	if math.Abs(r-math.Pow(10, 1.5)) > 1e-6*r {
		t.Fatalf("moment ratio %g", r)
	}
}
