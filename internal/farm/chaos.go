package farm

import (
	"math/rand"
	"sync"
	"time"
)

// ChaosPlan configures the farm-level fault injector: worker crashes
// (panic mid-job), hung jobs (compute stalls past the deadline) and
// artifact corruption (bit rot after a successful store). It composes
// with the pfs fault plans (storage faults) and the in-world mpi chaos
// plans (rank crashes) for the full service-level storm.
type ChaosPlan struct {
	Seed int64
	// CrashProb panics the worker goroutine mid-job.
	CrashProb float64
	// HangProb stalls the attempt for HangDur (set > the job deadline to
	// exercise the deadline path).
	HangProb float64
	// HangDur is the stall length (default 50ms).
	HangDur time.Duration
	// CorruptProb garbles the stored artifact right after a successful
	// Put, exercising the read-verify/re-queue path.
	CorruptProb float64
	// MaxFaultsPerJob caps injected faults per scenario key so every job
	// eventually converges (default 3, mirroring pfs.MaxConsecutive).
	MaxFaultsPerJob int
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Crashes     int `json:"crashes"`
	Hangs       int `json:"hangs"`
	Corruptions int `json:"corruptions"`
}

// chaosEngine applies a ChaosPlan with a per-job fault budget.
type chaosEngine struct {
	mu     sync.Mutex
	plan   ChaosPlan
	rng    *rand.Rand
	perJob map[string]int
	stats  ChaosStats
}

func newChaosEngine(plan ChaosPlan) *chaosEngine {
	if plan.HangDur <= 0 {
		plan.HangDur = 50 * time.Millisecond
	}
	if plan.MaxFaultsPerJob <= 0 {
		plan.MaxFaultsPerJob = 3
	}
	return &chaosEngine{
		plan:   plan,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		perJob: map[string]int{},
	}
}

type chaosAction int

const (
	chaosNone chaosAction = iota
	chaosCrash
	chaosHang
)

// preAttempt rolls for a crash or hang at the start of a job attempt.
func (c *chaosEngine) preAttempt(key string) (chaosAction, time.Duration) {
	if c == nil {
		return chaosNone, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.perJob[key] >= c.plan.MaxFaultsPerJob {
		return chaosNone, 0
	}
	switch r := c.rng.Float64(); {
	case r < c.plan.CrashProb:
		c.perJob[key]++
		c.stats.Crashes++
		return chaosCrash, 0
	case r < c.plan.CrashProb+c.plan.HangProb:
		c.perJob[key]++
		c.stats.Hangs++
		return chaosHang, c.plan.HangDur
	}
	return chaosNone, 0
}

// postStore rolls for artifact corruption after a successful Put.
func (c *chaosEngine) postStore(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.perJob[key] >= c.plan.MaxFaultsPerJob {
		return false
	}
	if c.rng.Float64() < c.plan.CorruptProb {
		c.perJob[key]++
		c.stats.Corruptions++
		return true
	}
	return false
}

// Stats snapshots the injected-fault counts.
func (c *chaosEngine) Stats() ChaosStats {
	if c == nil {
		return ChaosStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
