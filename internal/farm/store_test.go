package farm

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/workflow"
)

func testProduct(sc Scenario) Product {
	const nx, ny = 6, 5
	p := Product{Scenario: sc, NX: nx, NY: ny, PGVH: make([]float32, nx*ny)}
	for i := range p.PGVH {
		p.PGVH[i] = float32(i) * 0.01
		if float64(p.PGVH[i]) > p.Peak {
			p.Peak = float64(p.PGVH[i])
		}
	}
	return p
}

func TestStoreRoundTrip(t *testing.T) {
	st := NewStore(pfs.New(pfs.Jaguar()), nil)
	sc := Scenario{Mw: 6.5, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.4, VsScale: 1.0}
	p := testProduct(sc)
	key, err := st.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	if key != sc.Key() {
		t.Fatalf("key %s != scenario key %s", key, sc.Key())
	}
	if !st.Has(key) {
		t.Fatal("Has = false after Put")
	}
	got, err := st.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != sc || got.NX != p.NX || got.NY != p.NY || got.Peak != p.Peak {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	for i := range p.PGVH {
		if got.PGVH[i] != p.PGVH[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
	if keys := st.Keys(); len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v", keys)
	}
	if bad := st.VerifyAll(); len(bad) != 0 {
		t.Fatalf("clean store audits dirty: %v", bad)
	}
}

func TestStoreCorruptionDetected(t *testing.T) {
	st := NewStore(pfs.New(pfs.Jaguar()), nil)
	sc := Scenario{Mw: 7.0, HypoX: 0.3, HypoY: 0.6, HypoZ: 0.5, VsScale: 0.95}
	key, err := st.Put(testProduct(sc))
	if err != nil {
		t.Fatal(err)
	}
	if !st.CorruptAtRest(key) {
		t.Fatal("corruption hook found no artifact")
	}
	if _, err := st.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt artifact = %v, want ErrCorrupt", err)
	}
	bad := st.VerifyAll()
	if len(bad) != 1 || bad[0] != key {
		t.Fatalf("audit found %v, want [%s]", bad, key)
	}
	// Re-put heals.
	if _, err := st.Put(testProduct(sc)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(key); err != nil {
		t.Fatalf("healed artifact unreadable: %v", err)
	}
}

// TestStorePutUnderFaultStorm: transient write faults, short writes and
// torn writes must all be absorbed by the write-verify-rename protocol —
// after Put succeeds the artifact always verifies.
func TestStorePutUnderFaultStorm(t *testing.T) {
	fs := pfs.New(pfs.Jaguar())
	fs.InjectFaults(pfs.FaultPlan{
		Seed: 42, WriteFailProb: 0.25, ShortWriteProb: 0.15,
		TornWriteProb: 0.15, ReadFailProb: 0.1, MaxConsecutive: 2,
	})
	st := NewStore(fs, nil)
	st.Retry.MaxAttempts = 12
	st.Retry.Sleep = func(time.Duration) {} // simulated time: no real sleeping
	var injected uint64
	for i := 0; i < 8; i++ {
		sc := Scenario{Mw: 5.5 + float64(i)*0.25, HypoX: 0.5, HypoY: 0.5,
			HypoZ: 0.5, VsScale: 1}
		key, err := st.Put(testProduct(sc))
		if err != nil {
			t.Fatalf("Put %d under fault storm: %v", i, err)
		}
		fst := fs.FaultStats()
		injected += fst.FailedWrites + fst.TornWrites + fst.ShortWrites + fst.FailedReads
		fs.ClearFaults()
		got, err := st.Get(key)
		if err != nil {
			t.Fatalf("Get %d after faulty Put: %v", i, err)
		}
		if got.Scenario != sc {
			t.Fatalf("artifact %d wrong content", i)
		}
		fs.InjectFaults(pfs.FaultPlan{
			Seed: int64(100 + i), WriteFailProb: 0.25, ShortWriteProb: 0.15,
			TornWriteProb: 0.15, ReadFailProb: 0.1, MaxConsecutive: 2,
		})
	}
	if injected == 0 {
		t.Fatal("fault storm injected nothing; test is vacuous")
	}
}

func TestStoreRegistryIntegration(t *testing.T) {
	reg := workflow.NewRegistry()
	st := NewStore(pfs.New(pfs.Jaguar()), reg)
	sc := Scenario{Mw: 6.0, HypoX: 0.4, HypoY: 0.4, HypoZ: 0.4, VsScale: 1.05}
	key, err := st.Put(testProduct(sc))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := reg.Lookup("products/" + key + ".farm")
	if !ok {
		t.Fatal("artifact not catalogued in registry")
	}
	if e.Bytes <= 0 || e.Checksum == "" {
		t.Fatalf("entry %+v", e)
	}
}

func TestProductChecksumStable(t *testing.T) {
	sc := Scenario{Mw: 6.2, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.5, VsScale: 1}
	p := testProduct(sc)
	a, b := ProductChecksum(p), ProductChecksum(p)
	if a != b {
		t.Fatal("checksum not deterministic")
	}
	st := NewStore(pfs.New(pfs.Jaguar()), nil)
	key, err := st.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	stored, ok := st.Checksum(key)
	if !ok || stored != a {
		t.Fatalf("stored checksum %x, reference %x", stored, a)
	}
	p.PGVH[0] += 1
	if ProductChecksum(p) == a {
		t.Fatal("checksum insensitive to payload change")
	}
}

func TestSanePGV(t *testing.T) {
	sc := Scenario{Mw: 6}
	good := testProduct(sc)
	if !SanePGV(good) {
		t.Fatal("good product rejected")
	}
	bad := good
	bad.Peak = math.NaN()
	if SanePGV(bad) {
		t.Fatal("NaN peak accepted")
	}
	bad = good
	bad.PGVH = bad.PGVH[:3]
	if SanePGV(bad) {
		t.Fatal("truncated payload accepted")
	}
}
