package farm

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker lifecycle.
type BreakerState int

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: requests are rejected until the cooldown elapses.
	Open
	// HalfOpen: exactly one probe request is admitted; its outcome
	// decides between re-closing and re-opening.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a breaker set.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips Closed→Open
	// (default 3).
	Threshold int
	// Cooldown is how long an Open breaker rejects before admitting a
	// half-open probe (default 250ms).
	Cooldown time.Duration
	// Now is an injectable clock for tests; nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breakers is a per-scenario-class circuit-breaker set: repeated failures
// in one class (e.g. a magnitude band whose jobs keep crashing) trip that
// class open, shedding its work while the other classes keep flowing —
// the failure-isolation half of the farm's robustness story.
type Breakers struct {
	cfg BreakerConfig
	mu  sync.Mutex
	m   map[string]*breaker
}

type breaker struct {
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int
}

// NewBreakers creates a breaker set.
func NewBreakers(cfg BreakerConfig) *Breakers {
	return &Breakers{cfg: cfg.withDefaults(), m: map[string]*breaker{}}
}

func (bs *Breakers) get(class string) *breaker {
	b := bs.m[class]
	if b == nil {
		b = &breaker{}
		bs.m[class] = b
	}
	return b
}

// Allow reports whether a request for the class may proceed. An Open
// breaker past its cooldown transitions to HalfOpen and admits exactly
// one probe; concurrent requests during the probe are rejected.
func (bs *Breakers) Allow(class string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(class)
	switch b.state {
	case Closed:
		return true
	case Open:
		if bs.cfg.Now().Sub(b.openedAt) >= bs.cfg.Cooldown {
			b.state = HalfOpen
			b.probing = true
			return true
		}
		return false
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// OnSuccess records a success: a half-open probe success re-closes the
// breaker; in Closed it resets the failure streak.
func (bs *Breakers) OnSuccess(class string) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(class)
	b.failures = 0
	b.probing = false
	b.state = Closed
}

// OnFailure records a failure: a half-open probe failure re-opens
// immediately; in Closed the streak counts toward the threshold.
func (bs *Breakers) OnFailure(class string) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(class)
	b.probing = false
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = bs.cfg.Now()
		b.trips++
	case Closed:
		b.failures++
		if b.failures >= bs.cfg.Threshold {
			b.state = Open
			b.openedAt = bs.cfg.Now()
			b.trips++
		}
	}
}

// Ready reports whether the class would admit work, without consuming a
// half-open probe slot or transitioning state — the read-only check used
// by the serving path to decide whether to enqueue a compute (the worker
// path's Allow does the actual probing).
func (bs *Breakers) Ready(class string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.get(class).state == Closed
}

// State returns the class's current state (Open past cooldown still
// reports Open until a request arrives to probe).
func (bs *Breakers) State(class string) BreakerState {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.get(class).state
}

// Trips returns the total Closed/HalfOpen→Open transitions across classes.
func (bs *Breakers) Trips() int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	n := 0
	for _, b := range bs.m {
		n += b.trips
	}
	return n
}

// States snapshots every class's state (for /status).
func (bs *Breakers) States() map[string]string {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make(map[string]string, len(bs.m))
	for c, b := range bs.m {
		out[c] = b.state.String()
	}
	return out
}
