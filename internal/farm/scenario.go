// Package farm is the CyberShake-style hazard-service ensemble farm: a
// long-running scenario service over the repo's solver stack. A supervised
// job queue runs rupture-scenario ensembles (magnitude / hypocenter /
// velocity-model perturbations) over a bounded persistent worker fleet
// with per-job deadlines, bounded-exponential-backoff retries and capped
// attempts; completed products land in a content-addressed, CRC64-verified
// result store; an HTTP/JSON front end serves PGV maps and hazard curves
// with admission control, load shedding and graceful degradation (cache or
// RBF-surrogate answers tagged degraded rather than errors). Robustness is
// the design headline: every fault class the chaos harness can inject —
// worker crash, hung job, corrupted artifact, PFS fault storm, in-world
// rank crash — degrades throughput, never correctness or availability.
package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// Scenario is one rupture-scenario ensemble member: the perturbation axes
// of the CyberShake-style study (magnitude, hypocenter position, velocity-
// model scale factor).
type Scenario struct {
	// Mw is the moment magnitude.
	Mw float64 `json:"mw"`
	// HypoX/HypoY/HypoZ place the hypocenter fractionally in the domain
	// interior (each in [0, 1], mapped away from the absorbing boundary).
	HypoX float64 `json:"hx"`
	HypoY float64 `json:"hy"`
	HypoZ float64 `json:"hz"`
	// VsScale multiplies the velocity model's Vp and Vs (the epistemic
	// velocity-model perturbation; 1 = unperturbed).
	VsScale float64 `json:"vs"`
}

// Key is the scenario's content address: parameters are quantized to 1e-6
// so a re-submitted scenario maps to the same artifact, then hashed.
func (s Scenario) Key() string {
	canon := fmt.Sprintf("mw=%.6f;hx=%.6f;hy=%.6f;hz=%.6f;vs=%.6f",
		s.Mw, s.HypoX, s.HypoY, s.HypoZ, s.VsScale)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:8])
}

// Class buckets scenarios for failure isolation: the circuit breaker trips
// per class, so a pathological magnitude band cannot take down serving of
// the others.
func (s Scenario) Class() string {
	switch {
	case s.Mw < 6.0:
		return "M<6"
	case s.Mw < 7.0:
		return "M6-7"
	default:
		return "M7+"
	}
}

// M0 converts Mw to scalar seismic moment (N·m), the standard
// Hanks–Kanamori relation.
func (s Scenario) M0() float64 {
	return math.Pow(10, 1.5*s.Mw+9.05)
}

// ScenarioRange bounds the ensemble's parameter box.
type ScenarioRange struct {
	Lo, Hi Scenario
}

// DefaultRange is the demonstration ensemble box: Mw 5.5–7.5, hypocenter
// anywhere in the central half of the domain, ±10% velocity perturbation.
func DefaultRange() ScenarioRange {
	return ScenarioRange{
		Lo: Scenario{Mw: 5.5, HypoX: 0.25, HypoY: 0.25, HypoZ: 0.3, VsScale: 0.9},
		Hi: Scenario{Mw: 7.5, HypoX: 0.75, HypoY: 0.75, HypoZ: 0.7, VsScale: 1.1},
	}
}

// LatinHypercube draws n scenarios by Latin-hypercube sampling over the
// range: each of the 5 axes is split into n strata and each stratum is
// hit exactly once, giving far better space coverage than n independent
// uniform draws (the VECMA UQ-ensemble sampling plan).
func LatinHypercube(n int, seed int64, r ScenarioRange) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	const axes = 5
	// perm[a][i] is the stratum axis a uses for sample i.
	perm := make([][]int, axes)
	for a := range perm {
		perm[a] = rng.Perm(n)
	}
	lerp := func(lo, hi, u float64) float64 { return lo + (hi-lo)*u }
	out := make([]Scenario, n)
	for i := 0; i < n; i++ {
		u := make([]float64, axes)
		for a := 0; a < axes; a++ {
			u[a] = (float64(perm[a][i]) + rng.Float64()) / float64(n)
		}
		out[i] = Scenario{
			Mw:      lerp(r.Lo.Mw, r.Hi.Mw, u[0]),
			HypoX:   lerp(r.Lo.HypoX, r.Hi.HypoX, u[1]),
			HypoY:   lerp(r.Lo.HypoY, r.Hi.HypoY, u[2]),
			HypoZ:   lerp(r.Lo.HypoZ, r.Hi.HypoZ, u[3]),
			VsScale: lerp(r.Lo.VsScale, r.Hi.VsScale, u[4]),
		}
	}
	return out
}

// EnsembleSpec fixes the simulation configuration shared by every member:
// the grid, physics options and base velocity model. Scenario parameters
// perturb around it.
type EnsembleSpec struct {
	Dims  grid.Dims
	H     float64 // grid spacing, m
	Steps int
	// Ranks is the per-job world size (1 = single-rank solver.Run; >1
	// runs each job as a multi-rank in-process world).
	Ranks int
	// Attenuation toggles the anelastic update (off keeps demonstration
	// jobs cheap).
	Attenuation bool
	// BaseModel supplies the unperturbed velocity model; nil defaults to
	// the SoCal synthetic sized to the grid.
	BaseModel cvm.Querier
}

// DefaultSpec is the laptop-scale demonstration ensemble configuration.
func DefaultSpec() EnsembleSpec {
	return EnsembleSpec{
		Dims: grid.Dims{NX: 20, NY: 20, NZ: 14}, H: 100, Steps: 60, Ranks: 1,
	}
}

// Model returns the scenario's perturbed velocity model.
func (e EnsembleSpec) Model(sc Scenario) cvm.Querier {
	base := e.BaseModel
	if base == nil {
		base = cvm.SoCal(float64(e.Dims.NX-1)*e.H, float64(e.Dims.NY-1)*e.H,
			float64(e.Dims.NZ-1)*e.H, 400)
	}
	if sc.VsScale == 0 || sc.VsScale == 1 {
		return base
	}
	return scaledModel{base: base, s: sc.VsScale}
}

// scaledModel perturbs Vp and Vs by a common factor (density untouched, so
// impedance scales with the factor).
type scaledModel struct {
	base cvm.Querier
	s    float64
}

func (m scaledModel) Query(x, y, z float64) cvm.Material {
	mat := m.base.Query(x, y, z)
	mat.Vp *= m.s
	mat.Vs *= m.s
	return mat
}

// hypoIndex maps a fractional coordinate to a grid index kept off the
// boundary cells.
func hypoIndex(frac float64, n int) int {
	i := int(math.Round(frac * float64(n-1)))
	if i < 2 {
		i = 2
	}
	if i > n-3 {
		i = n - 3
	}
	return i
}

// Options builds the solver configuration for one scenario. The source is
// a strike-slip point moment with a Gaussian rate pulse; the moment
// follows Hanks–Kanamori, down-scaled into the demonstration grid's
// linear-elastic regime (peak values only feed relative hazard products).
func (e EnsembleSpec) Options(sc Scenario) solver.Options {
	topo := mpi.NewCart(1, 1, 1)
	if e.Ranks > 1 {
		topo = mpi.NewCart(e.Ranks, 1, 1)
	}
	gi := hypoIndex(sc.HypoX, e.Dims.NX)
	gj := hypoIndex(sc.HypoY, e.Dims.NY)
	gk := hypoIndex(sc.HypoZ, e.Dims.NZ)
	// Normalize the moment so the demonstration runs stay numerically
	// tame across the magnitude range while preserving Mw ordering.
	m0 := e.H * e.H * e.H * 1e3 * math.Pow(10, sc.Mw-5.5)
	ps := source.PointSource{
		GI: gi, GJ: gj, GK: gk, M0: m0,
		Tensor: source.StrikeSlipXY,
		STF:    source.GaussianPulse(0.08, 0.02),
	}
	return solver.Options{
		Global: e.Dims, H: e.H, Steps: e.Steps, Topo: topo,
		Comm: solver.AsyncReduced, Variant: fd.Precomp,
		ABC: solver.SpongeABC, SpongeWidth: 4,
		FreeSurface: true, Attenuation: e.Attenuation,
		Sources:  []source.SampledSource{ps.Sample(0.002, 120)},
		TrackPGV: true,
	}
}
