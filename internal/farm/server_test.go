package farm

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func getJSON(t *testing.T, s *Server, url string, out any) int {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code < 500 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("bad JSON from %s: %v (%s)", url, err, w.Body.String())
		}
	}
	return w.Code
}

func scenarioURL(sc Scenario) string {
	return fmt.Sprintf("/hazard?mw=%g&hx=%g&hy=%g&hz=%g&vs=%g",
		sc.Mw, sc.HypoX, sc.HypoY, sc.HypoZ, sc.VsScale)
}

func TestServerExactAndDegraded(t *testing.T) {
	f := newTestFarm(t, Config{Workers: 2})
	srv := NewServer(f, ServerConfig{})
	sc := Scenario{Mw: 6.5, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.5, VsScale: 1}

	// Cold query: miss → degraded prior answer, compute queued.
	var r1 HazardResponse
	if code := getJSON(t, srv, scenarioURL(sc), &r1); code != 200 {
		t.Fatalf("cold query code %d", code)
	}
	if !r1.Degraded || !r1.Queued {
		t.Fatalf("cold answer %+v", r1)
	}
	f.Wait()

	// Warm query: exact product from the store, with a hazard curve.
	var r2 HazardResponse
	if code := getJSON(t, srv, scenarioURL(sc), &r2); code != 200 {
		t.Fatalf("warm query code %d", code)
	}
	if r2.Degraded || r2.Source != "store" || r2.PeakPGV <= 0 {
		t.Fatalf("warm answer %+v", r2)
	}
	if len(r2.Curve) == 0 || len(r2.Curve) != len(r2.Thresholds) {
		t.Fatalf("no hazard curve: %+v", r2)
	}

	// A nearby scenario now gets a surrogate answer (trained on 1 point).
	sc2 := sc
	sc2.Mw = 6.6
	var r3 HazardResponse
	getJSON(t, srv, scenarioURL(sc2), &r3)
	if !r3.Degraded || r3.Source != "surrogate" {
		t.Fatalf("nearby answer %+v", r3)
	}

	// The map endpoint serves the verified artifact.
	var m MapResponse
	if code := getJSON(t, srv, "/map?key="+r2.Key, &m); code != 200 {
		t.Fatalf("map code %d", code)
	}
	if m.NX*m.NY != len(m.PGVH) || m.Peak != r2.PeakPGV {
		t.Fatalf("map %d x %d, peak %g vs %g", m.NX, m.NY, m.Peak, r2.PeakPGV)
	}

	// Malformed input is a 400, not a 500.
	var e map[string]string
	if code := getJSON(t, srv, "/hazard?mw=abc", &e); code != 400 {
		t.Fatalf("malformed query code %d", code)
	}
}

// TestServerNeverServesCorrupt: a corrupted artifact must never be
// returned — the query gets a degraded answer and the scenario re-queues.
func TestServerNeverServesCorrupt(t *testing.T) {
	f := newTestFarm(t, Config{Workers: 2})
	srv := NewServer(f, ServerConfig{})
	sc := Scenario{Mw: 7.1, HypoX: 0.4, HypoY: 0.6, HypoZ: 0.5, VsScale: 0.95}
	key := f.Submit(sc)
	f.Wait()
	if !f.Store().CorruptAtRest(key) {
		t.Fatal("could not corrupt artifact")
	}

	var r HazardResponse
	if code := getJSON(t, srv, scenarioURL(sc), &r); code != 200 {
		t.Fatalf("query on corrupt artifact code %d", code)
	}
	if !r.Degraded {
		t.Fatal("corrupt artifact served as exact")
	}
	// The re-queue heals it.
	f.Wait()
	var r2 HazardResponse
	getJSON(t, srv, scenarioURL(sc), &r2)
	if r2.Degraded || r2.Source != "store" {
		t.Fatalf("artifact not healed after re-queue: %+v", r2)
	}
	if f.Stats().CorruptRequeued == 0 {
		t.Fatal("requeue not accounted")
	}

	// Corrupt map requests degrade too.
	f.Store().CorruptAtRest(key)
	var m map[string]any
	if code := getJSON(t, srv, "/map?key="+key, &m); code != 200 {
		t.Fatalf("map on corrupt artifact code %d", code)
	}
	if m["degraded"] != true {
		t.Fatalf("map reply %v", m)
	}
}

// TestServerLoadShedding: with MaxConcurrent 1 and a slow in-flight
// query, concurrent queries are shed to degraded answers, never errors.
func TestServerLoadShedding(t *testing.T) {
	f := newTestFarm(t, Config{Workers: 1})
	srv := NewServer(f, ServerConfig{MaxConcurrent: 1})
	// Occupy the only admission slot.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	var wg sync.WaitGroup
	codes := make([]int, 8)
	resps := make([]HazardResponse, 8)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := Scenario{Mw: 6 + float64(i)*0.1, HypoX: 0.5, HypoY: 0.5,
				HypoZ: 0.5, VsScale: 1}
			req := httptest.NewRequest("GET", scenarioURL(sc), nil)
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, req)
			codes[i] = w.Code
			json.Unmarshal(w.Body.Bytes(), &resps[i])
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != 200 {
			t.Fatalf("shed query %d got %d", i, code)
		}
		if !resps[i].Degraded {
			t.Fatalf("saturated query %d served exact", i)
		}
	}
	if _, _, shed := srv.ServedCounts(); shed != 8 {
		t.Fatalf("shed = %d, want 8", shed)
	}
}

// TestServerBreakerOpenServesDegraded: with a class's breaker open, a
// miss must not enqueue compute — it serves degraded immediately.
func TestServerBreakerOpenServesDegraded(t *testing.T) {
	f := newTestFarm(t, Config{
		Breaker: BreakerConfig{Threshold: 1, Cooldown: time.Hour},
	})
	srv := NewServer(f, ServerConfig{})
	sc := Scenario{Mw: 7.3, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.5, VsScale: 1}
	f.Breakers().OnFailure(sc.Class()) // trip M7+

	var r HazardResponse
	getJSON(t, srv, scenarioURL(sc), &r)
	if !r.Degraded || r.Queued {
		t.Fatalf("open-breaker answer %+v", r)
	}
	if d := f.QueueDepth(); d != 0 {
		t.Fatalf("open breaker still enqueued compute (depth %d)", d)
	}
	// Other classes still enqueue.
	sc2 := Scenario{Mw: 5.8, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.5, VsScale: 1}
	var r2 HazardResponse
	getJSON(t, srv, scenarioURL(sc2), &r2)
	if !r2.Queued {
		t.Fatalf("healthy class not enqueued: %+v", r2)
	}
	f.Wait()
}

func TestServerStatus(t *testing.T) {
	f := newTestFarm(t, Config{Workers: 2})
	srv := NewServer(f, ServerConfig{})
	sc := Scenario{Mw: 6.2, HypoX: 0.5, HypoY: 0.5, HypoZ: 0.5, VsScale: 1}
	f.Submit(sc)
	f.Wait()
	var st StatusResponse
	if code := getJSON(t, srv, "/status", &st); code != 200 {
		t.Fatalf("status code %d", code)
	}
	if st.Stats.Completed != 1 || st.Stored != 1 {
		t.Fatalf("status %+v", st)
	}
	var nf map[string]string
	if code := getJSON(t, srv, "/nope", &nf); code != 404 {
		t.Fatalf("unknown path code %d", code)
	}
}
