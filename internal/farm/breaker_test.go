package farm

import (
	"testing"
	"time"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreakers(threshold int, cooldown time.Duration) (*Breakers, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	return NewBreakers(BreakerConfig{
		Threshold: threshold, Cooldown: cooldown, Now: clk.now,
	}), clk
}

func TestBreakerTripAndRecover(t *testing.T) {
	bs, clk := newTestBreakers(3, time.Second)
	const class = "M7+"
	for i := 0; i < 3; i++ {
		if !bs.Allow(class) {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		bs.OnFailure(class)
	}
	if bs.State(class) != Open {
		t.Fatalf("state after threshold failures = %v", bs.State(class))
	}
	if bs.Allow(class) {
		t.Fatal("open breaker admitted inside cooldown")
	}
	if bs.Trips() != 1 {
		t.Fatalf("trips = %d", bs.Trips())
	}

	// Cooldown elapses: exactly one probe is admitted.
	clk.advance(time.Second)
	if !bs.Allow(class) {
		t.Fatal("half-open probe rejected")
	}
	if bs.Allow(class) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe succeeds: breaker re-closes and the streak resets.
	bs.OnSuccess(class)
	if bs.State(class) != Closed || !bs.Allow(class) {
		t.Fatal("probe success did not re-close")
	}
	bs.OnFailure(class)
	bs.OnSuccess(class)
	bs.OnFailure(class)
	bs.OnFailure(class)
	if bs.State(class) != Closed {
		t.Fatal("streak did not reset on success")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	bs, clk := newTestBreakers(2, time.Second)
	const class = "M6-7"
	bs.OnFailure(class)
	bs.OnFailure(class)
	clk.advance(time.Second)
	if !bs.Allow(class) {
		t.Fatal("probe rejected")
	}
	bs.OnFailure(class)
	if bs.State(class) != Open {
		t.Fatal("probe failure did not re-open")
	}
	if bs.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", bs.Trips())
	}
	// Second cooldown must be honored afresh.
	if bs.Allow(class) {
		t.Fatal("re-opened breaker admitted inside new cooldown")
	}
	clk.advance(time.Second)
	if !bs.Allow(class) {
		t.Fatal("second probe rejected after new cooldown")
	}
}

// TestBreakerClassIsolation: one class tripping must not affect others —
// the farm's failure-isolation contract.
func TestBreakerClassIsolation(t *testing.T) {
	bs, _ := newTestBreakers(2, time.Minute)
	bs.OnFailure("M7+")
	bs.OnFailure("M7+")
	if bs.State("M7+") != Open {
		t.Fatal("M7+ not open")
	}
	for _, c := range []string{"M<6", "M6-7"} {
		if !bs.Allow(c) || bs.State(c) != Closed {
			t.Fatalf("class %s affected by M7+ trip", c)
		}
	}
	if bs.Ready("M7+") {
		t.Fatal("Ready true for open class")
	}
	if !bs.Ready("M<6") {
		t.Fatal("Ready false for healthy class")
	}
	states := bs.States()
	if states["M7+"] != "open" || states["M<6"] != "closed" {
		t.Fatalf("states %v", states)
	}
}

// TestBreakerReadyDoesNotConsumesProbe: the serving path's read-only
// check must not eat the half-open probe slot.
func TestBreakerReadyDoesNotConsumeProbe(t *testing.T) {
	bs, clk := newTestBreakers(1, time.Second)
	bs.OnFailure("x")
	clk.advance(time.Second)
	if bs.Ready("x") {
		t.Fatal("Ready true while open (probe not yet run)")
	}
	if !bs.Allow("x") {
		t.Fatal("probe slot consumed by Ready")
	}
}
