// Package workflow implements E2EaW (§III.I), the end-to-end workflow that
// moves simulation products from the compute site to the archive: GridFTP-
// style multi-stream transfers between simulated sites with failure
// injection and automatic retransfer, pipelined parallel MD5 verification,
// and an iRODS-like registry with replica and integrity metadata ingested
// through the aggregated PIPUT path (an order of magnitude faster than
// serial iPUT).
package workflow

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/pfs"
)

// Site is one storage endpoint (e.g., Jaguar scratch, Kraken HPSS).
type Site struct {
	Name string
	FS   *pfs.FS
}

// Link models the wide-area path between two sites.
type Link struct {
	BandwidthPerStream float64 // bytes/s of one GridFTP stream
	MaxStreams         int     // parallel streams available
	FailureRate        float64 // probability a stream transfer attempt fails
	// RetryBackoff is the simulated-time pause before the first
	// retransfer of a file; it doubles per consecutive retry and is
	// capped at MaxBackoff. 0 defaults to 0.05 s.
	RetryBackoff float64
	// MaxBackoff caps the backoff growth. 0 defaults to 1 s.
	MaxBackoff float64
}

// TransferStats reports one transfer job.
type TransferStats struct {
	Files      int
	Bytes      int
	Retries    int
	Elapsed    float64 // simulated seconds, backoff included
	BackoffSec float64 // simulated seconds spent backing off before retries
	Throughput float64 // bytes/s
	Verified   bool
}

// Transferer moves files between sites over a link.
type Transferer struct {
	Link Link
	rng  *rand.Rand
}

// NewTransferer seeds the failure injector deterministically.
func NewTransferer(link Link, seed int64) *Transferer {
	if link.MaxStreams <= 0 {
		link.MaxStreams = 1
	}
	return &Transferer{Link: link, rng: rand.New(rand.NewSource(seed))}
}

// Transfer copies the named files from src to dst with up to MaxStreams
// parallel streams, verifying MD5 checksums end to end and automatically
// retransferring failed or corrupted files (§III.I: "transaction records
// are maintained to allow automatic recovery").
func (t *Transferer) Transfer(src, dst Site, paths []string, nStreams int) (TransferStats, error) {
	if nStreams <= 0 || nStreams > t.Link.MaxStreams {
		nStreams = t.Link.MaxStreams
	}
	var st TransferStats
	st.Files = len(paths)
	baseBackoff := t.Link.RetryBackoff
	if baseBackoff <= 0 {
		baseBackoff = 0.05
	}
	maxBackoff := t.Link.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 1.0
	}
	// Stream-parallel scheduling: files are assigned round-robin; each
	// stream moves its files serially. Simulated time = slowest stream.
	streams := make([]float64, nStreams)
	const maxAttempts = 8
	for idx, p := range paths {
		sz := src.FS.Size(p)
		if sz < 0 {
			return st, fmt.Errorf("workflow: %s missing at %s", p, src.Name)
		}
		data := make([]byte, sz)
		if err := src.FS.ReadAt(p, 0, data); err != nil {
			return st, err
		}
		want := md5.Sum(data)
		stream := idx % nStreams
		ok := false
		backoff := baseBackoff
		for attempt := 0; attempt < maxAttempts; attempt++ {
			if attempt > 0 {
				// Bounded exponential backoff before every retransfer,
				// accounted in simulated time on the file's stream.
				streams[stream] += backoff
				st.BackoffSec += backoff
				backoff *= 2
				if backoff > maxBackoff {
					backoff = maxBackoff
				}
			}
			streams[stream] += float64(sz) / t.Link.BandwidthPerStream
			if t.rng.Float64() < t.Link.FailureRate {
				st.Retries++
				continue // failed attempt: retransfer
			}
			if err := dst.FS.WriteAt(p, 0, data); err != nil {
				// A failed destination write is a failed attempt, not a
				// success-until-checksum: count it and retransfer. Only
				// transient storage faults are retryable.
				st.Retries++
				if !pfs.IsTransient(err) {
					return st, err
				}
				continue
			}
			// End-to-end verification (catches torn writes that reported
			// success and transient read hiccups). A destination file
			// shorter than the source is the truncated-artifact face of a
			// torn write — a failed attempt, not a fatal error.
			if dst.FS.Size(p) < sz {
				st.Retries++
				continue
			}
			got := make([]byte, sz)
			if err := dst.FS.ReadAt(p, 0, got); err != nil {
				st.Retries++
				if !pfs.IsTransient(err) {
					return st, err
				}
				continue
			}
			if md5.Sum(got) != want {
				st.Retries++
				continue
			}
			ok = true
			break
		}
		if !ok {
			return st, fmt.Errorf("workflow: %s failed after %d attempts", p, maxAttempts)
		}
		st.Bytes += sz
	}
	for _, s := range streams {
		if s > st.Elapsed {
			st.Elapsed = s
		}
	}
	if st.Elapsed > 0 {
		st.Throughput = float64(st.Bytes) / st.Elapsed
	}
	st.Verified = true
	return st, nil
}

// Registry is the iRODS-like digital-library catalogue: per object the
// MD5 checksum and the sites holding replicas.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*Entry
}

// Entry is one catalogued object.
type Entry struct {
	Path     string
	Checksum string
	Bytes    int
	Replicas []string // site names
}

// NewRegistry creates an empty catalogue.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*Entry{}}
}

// Ingest registers files present at a site, computing checksums in
// parallel with nWorkers concurrent workers (the PIPUT aggregated path;
// nWorkers=1 is the serial iPUT baseline). Returns the simulated ingestion
// time assuming perStreamBandwidth per worker.
func (r *Registry) Ingest(site Site, paths []string, nWorkers int, perStreamBandwidth float64) (float64, error) {
	if nWorkers <= 0 {
		nWorkers = 1
	}
	type result struct {
		entry *Entry
		err   error
	}
	results := make(chan result, len(paths))
	var wg sync.WaitGroup
	workerTime := make([]float64, nWorkers)
	// Deterministic round-robin assignment: the simulated elapsed time is
	// the slowest worker's share, independent of goroutine scheduling.
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pi := w; pi < len(paths); pi += nWorkers {
				p := paths[pi]
				sz := site.FS.Size(p)
				if sz < 0 {
					results <- result{err: fmt.Errorf("workflow: %s missing", p)}
					continue
				}
				data := make([]byte, sz)
				if err := site.FS.ReadAt(p, 0, data); err != nil {
					results <- result{err: err}
					continue
				}
				sum := md5.Sum(data)
				workerTime[w] += float64(sz) / perStreamBandwidth
				results <- result{entry: &Entry{
					Path: p, Checksum: hex.EncodeToString(sum[:]), Bytes: sz,
					Replicas: []string{site.Name},
				}}
			}
		}(w)
	}
	wg.Wait()
	close(results)
	// Drain every worker result before surfacing the first error: the
	// successfully checksummed files stay registered (they are verified
	// facts about the site), no queued result is abandoned on the buffered
	// channel, and the caller still learns the ingest was incomplete.
	var firstErr error
	for res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		r.mu.Lock()
		if e := r.entries[res.entry.Path]; e != nil {
			e.Replicas = mergeReplicas(e.Replicas, res.entry.Replicas)
		} else {
			r.entries[res.entry.Path] = res.entry
		}
		r.mu.Unlock()
	}
	if firstErr != nil {
		return 0, firstErr
	}
	elapsed := 0.0
	for _, t := range workerTime {
		if t > elapsed {
			elapsed = t
		}
	}
	return elapsed, nil
}

// Register catalogues a single file present at a site, computing its
// checksum synchronously — the artifact-store path of the ensemble farm,
// which registers each completed scenario product as it lands rather than
// batch-ingesting a directory.
func (r *Registry) Register(site Site, path string) (Entry, error) {
	sz := site.FS.Size(path)
	if sz < 0 {
		return Entry{}, fmt.Errorf("workflow: %s missing at %s", path, site.Name)
	}
	data := make([]byte, sz)
	if err := site.FS.ReadAt(path, 0, data); err != nil {
		return Entry{}, err
	}
	sum := md5.Sum(data)
	entry := &Entry{
		Path: path, Checksum: hex.EncodeToString(sum[:]), Bytes: sz,
		Replicas: []string{site.Name},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[path]; e != nil {
		e.Checksum = entry.Checksum
		e.Bytes = entry.Bytes
		e.Replicas = mergeReplicas(e.Replicas, entry.Replicas)
		return *e, nil
	}
	r.entries[path] = entry
	return *entry, nil
}

func mergeReplicas(a, b []string) []string {
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		if !seen[s] {
			a = append(a, s)
			seen[s] = true
		}
	}
	sort.Strings(a)
	return a
}

// Lookup returns the entry for a path.
func (r *Registry) Lookup(path string) (Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[path]
	if e == nil {
		return Entry{}, false
	}
	return *e, true
}

// VerifyReplica checks that a site's copy matches the registered checksum.
func (r *Registry) VerifyReplica(site Site, path string) error {
	e, ok := r.Lookup(path)
	if !ok {
		return fmt.Errorf("workflow: %s not registered", path)
	}
	data := make([]byte, e.Bytes)
	if err := site.FS.ReadAt(path, 0, data); err != nil {
		return err
	}
	sum := md5.Sum(data)
	if hex.EncodeToString(sum[:]) != e.Checksum {
		return fmt.Errorf("workflow: %s replica at %s corrupt", path, site.Name)
	}
	return nil
}

// Count returns the number of catalogued objects.
func (r *Registry) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
