package workflow

import (
	"testing"

	"repro/internal/pfs"
)

func newSite(name string) Site {
	return Site{Name: name, FS: pfs.New(pfs.Config{
		OSTs: 8, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 16,
	})}
}

func seedFiles(s Site, n, bytes int) []string {
	paths := make([]string, n)
	for i := range paths {
		paths[i] = "data/vol." + string(rune('a'+i%26)) + string(rune('a'+i/26))
		data := make([]byte, bytes)
		for b := range data {
			data[b] = byte(i + b)
		}
		s.FS.WriteAt(paths[i], 0, data)
	}
	return paths
}

func TestTransferMovesAndVerifies(t *testing.T) {
	src, dst := newSite("jaguar"), newSite("kraken-hpss")
	paths := seedFiles(src, 10, 1<<12)
	tr := NewTransferer(Link{BandwidthPerStream: 50e6, MaxStreams: 4}, 1)
	st, err := tr.Transfer(src, dst, paths, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 10 || st.Bytes != 10*(1<<12) || !st.Verified {
		t.Fatalf("stats %+v", st)
	}
	// Content intact at destination.
	buf := make([]byte, 1<<12)
	if err := dst.FS.ReadAt(paths[3], 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[5] != byte(3+5) {
		t.Fatal("content corrupted")
	}
}

func TestTransferRetriesOnFailure(t *testing.T) {
	src, dst := newSite("a"), newSite("b")
	paths := seedFiles(src, 20, 1<<10)
	tr := NewTransferer(Link{BandwidthPerStream: 50e6, MaxStreams: 2, FailureRate: 0.3}, 7)
	st, err := tr.Transfer(src, dst, paths, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 {
		t.Error("expected retries with 30% failure rate")
	}
	if st.Bytes != 20*(1<<10) {
		t.Error("not all bytes delivered despite retries")
	}
}

func TestTransferMissingFile(t *testing.T) {
	src, dst := newSite("a"), newSite("b")
	tr := NewTransferer(Link{BandwidthPerStream: 1e6, MaxStreams: 1}, 1)
	if _, err := tr.Transfer(src, dst, []string{"nope"}, 1); err == nil {
		t.Fatal("missing source accepted")
	}
}

func TestParallelStreamsFaster(t *testing.T) {
	src, dst1, dst2 := newSite("a"), newSite("b1"), newSite("b2")
	paths := seedFiles(src, 16, 1<<16)
	tr := NewTransferer(Link{BandwidthPerStream: 25e6, MaxStreams: 16}, 3)
	one, err := tr.Transfer(src, dst1, paths, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := tr.Transfer(src, dst2, paths, 8)
	if err != nil {
		t.Fatal(err)
	}
	if many.Elapsed >= one.Elapsed/4 {
		t.Fatalf("8 streams not much faster: %g vs %g", many.Elapsed, one.Elapsed)
	}
	if many.Throughput <= one.Throughput {
		t.Fatal("aggregate throughput did not rise with streams")
	}
}

func TestRegistryIngestAndVerify(t *testing.T) {
	site := newSite("sdsc")
	paths := seedFiles(site, 12, 1<<10)
	reg := NewRegistry()
	elapsed, err := reg.Ingest(site, paths, 4, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("no ingest time accounted")
	}
	if reg.Count() != 12 {
		t.Fatalf("registered %d, want 12", reg.Count())
	}
	e, ok := reg.Lookup(paths[0])
	if !ok || e.Checksum == "" || len(e.Replicas) != 1 {
		t.Fatalf("entry %+v", e)
	}
	if err := reg.VerifyReplica(site, paths[0]); err != nil {
		t.Fatal(err)
	}
	// Corrupt and detect.
	site.FS.WriteAt(paths[0], 2, []byte{0xFF, 0xEE})
	if err := reg.VerifyReplica(site, paths[0]); err == nil {
		t.Fatal("corruption not detected")
	}
	if _, ok := reg.Lookup("ghost"); ok {
		t.Fatal("phantom entry")
	}
	if err := reg.VerifyReplica(site, "ghost"); err == nil {
		t.Fatal("unregistered verify accepted")
	}
}

// PIPUT vs iPUT (§III.I): aggregated parallel ingestion is ~10x faster
// than the serial path.
func TestAggregatedIngestionSpeedup(t *testing.T) {
	site := newSite("sdsc")
	paths := seedFiles(site, 40, 1<<12)
	reg1, reg2 := NewRegistry(), NewRegistry()
	serial, err := reg1.Ingest(site, paths, 1, 17.7e6/10) // single iPUT stream
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := reg2.Ingest(site, paths, 10, 17.7e6) // PIPUT workers
	if err != nil {
		t.Fatal(err)
	}
	if parallel > serial/10 {
		t.Fatalf("aggregated ingestion speedup too small: %g vs %g", parallel, serial)
	}
}

func TestReplicaMergeAcrossSites(t *testing.T) {
	a, b := newSite("siteA"), newSite("siteB")
	paths := seedFiles(a, 3, 64)
	// Replicate to b byte-for-byte.
	for _, p := range paths {
		buf := make([]byte, 64)
		a.FS.ReadAt(p, 0, buf)
		b.FS.WriteAt(p, 0, buf)
	}
	reg := NewRegistry()
	if _, err := reg.Ingest(a, paths, 2, 1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Ingest(b, paths, 2, 1e6); err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Lookup(paths[0])
	if len(e.Replicas) != 2 {
		t.Fatalf("replicas %v, want both sites", e.Replicas)
	}
}
