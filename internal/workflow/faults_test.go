package workflow

// Fault-injected and concurrency regression tests for the transfer/
// registry layer: the destination-write error path of Transfer (which
// used to drop dst.FS.WriteAt's error and count the attempt as a success
// until the checksum read-back happened to catch it), backoff accounting,
// the full-drain semantics of Ingest under partial failure, parallel
// multi-site Ingest under -race, and torn/short-artifact detection by
// VerifyReplica.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pfs"
)

// faultSite builds a site whose FS injects the given fault plan.
func faultSite(name string, plan pfs.FaultPlan) Site {
	s := newSite(name)
	s.FS.InjectFaults(plan)
	return s
}

// TestTransferDestinationWriteFaultRetried pins the dropped-error fix:
// with the destination rejecting a large fraction of writes, every failed
// write must surface as a counted retry and the transfer must still
// complete and verify. Before the fix, a rejected write left nothing at
// the destination and the read-back aborted the whole transfer with a
// non-retryable "no such file" error.
func TestTransferDestinationWriteFaultRetried(t *testing.T) {
	src := newSite("src")
	paths := seedFiles(src, 12, 1<<10)
	dst := faultSite("dst", pfs.FaultPlan{
		Seed: 11, WriteFailProb: 0.45, MaxConsecutive: 3,
	})
	tr := NewTransferer(Link{BandwidthPerStream: 50e6, MaxStreams: 4}, 5)
	st, err := tr.Transfer(src, dst, paths, 4)
	if err != nil {
		t.Fatalf("transfer under write faults: %v", err)
	}
	if st.Retries == 0 {
		t.Fatal("injected write failures produced no retries")
	}
	if st.Bytes != 12*(1<<10) || !st.Verified {
		t.Fatalf("stats %+v", st)
	}
	stats := dst.FS.FaultStats()
	if stats.FailedWrites == 0 {
		t.Fatal("fault plan injected nothing; test is vacuous")
	}
	// Content must be intact despite the faults.
	buf := make([]byte, 1<<10)
	dst.FS.ClearFaults()
	if err := dst.FS.ReadAt(paths[7], 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[3] != byte(7+3) {
		t.Fatal("content corrupted at destination")
	}
}

// TestTransferTornWriteHealed: a torn destination write reports success
// with only a prefix persisted; the end-to-end checksum must catch it and
// the retransfer must heal it.
func TestTransferTornWriteHealed(t *testing.T) {
	src := newSite("src")
	paths := seedFiles(src, 8, 1<<12)
	dst := faultSite("dst", pfs.FaultPlan{
		Seed: 3, TornWriteProb: 0.5, MaxConsecutive: 2,
	})
	tr := NewTransferer(Link{BandwidthPerStream: 50e6, MaxStreams: 2}, 9)
	st, err := tr.Transfer(src, dst, paths, 2)
	if err != nil {
		t.Fatalf("transfer under torn writes: %v", err)
	}
	if dst.FS.FaultStats().TornWrites == 0 {
		t.Fatal("no torn writes injected; test is vacuous")
	}
	if st.Retries == 0 {
		t.Fatal("torn writes were served without checksum-triggered retransfer")
	}
	dst.FS.ClearFaults()
	reg := NewRegistry()
	if _, err := reg.Ingest(src, paths, 2, 1e6); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if err := reg.VerifyReplica(dst, p); err != nil {
			t.Fatalf("healed replica %s fails verification: %v", p, err)
		}
	}
}

// TestTransferBackoffAccounted: retries must accrue simulated backoff
// time, growing Elapsed beyond the pure-bandwidth cost.
func TestTransferBackoffAccounted(t *testing.T) {
	src, dst := newSite("a"), newSite("b")
	paths := seedFiles(src, 10, 1<<10)
	link := Link{BandwidthPerStream: 50e6, MaxStreams: 2, FailureRate: 0.4,
		RetryBackoff: 0.1, MaxBackoff: 0.4}
	tr := NewTransferer(link, 7)
	st, err := tr.Transfer(src, dst, paths, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 {
		t.Fatal("no retries at 40% failure rate")
	}
	if st.BackoffSec <= 0 {
		t.Fatal("retries accrued no backoff time")
	}
	if st.BackoffSec < 0.1*float64(st.Retries) {
		t.Fatalf("backoff %g s below base*retries (%d retries)", st.BackoffSec, st.Retries)
	}
	// Backoff is part of the simulated elapsed time: the slowest stream
	// carries at least its own share.
	pure := float64(st.Bytes) / link.BandwidthPerStream / 2
	if st.Elapsed <= pure {
		t.Fatalf("elapsed %g does not include backoff (pure transfer ~%g)", st.Elapsed, pure)
	}

	// A clean link accrues none.
	src2, dst2 := newSite("c"), newSite("d")
	p2 := seedFiles(src2, 4, 1<<10)
	st2, err := NewTransferer(Link{BandwidthPerStream: 50e6, MaxStreams: 2}, 1).Transfer(src2, dst2, p2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.BackoffSec != 0 {
		t.Fatalf("clean transfer accrued backoff %g", st2.BackoffSec)
	}
}

// TestIngestDrainsAllResultsOnError: a failing path mid-list must not
// abort the drain — every successfully checksummed file stays registered
// and the first error is still reported.
func TestIngestDrainsAllResultsOnError(t *testing.T) {
	site := newSite("sdsc")
	paths := seedFiles(site, 9, 1<<10)
	withMissing := append(append([]string{}, paths[:4]...), "ghost/missing")
	withMissing = append(withMissing, paths[4:]...)
	reg := NewRegistry()
	_, err := reg.Ingest(site, withMissing, 3, 20e6)
	if err == nil {
		t.Fatal("missing file not reported")
	}
	if reg.Count() != 9 {
		t.Fatalf("registered %d of 9 good files; drain aborted early", reg.Count())
	}
	for _, p := range paths {
		if _, ok := reg.Lookup(p); !ok {
			t.Fatalf("good file %s lost to the failing drain", p)
		}
	}
}

// TestIngestParallelSitesRace: concurrent Ingest calls from multiple
// sites must merge replicas without racing (run under -race).
func TestIngestParallelSitesRace(t *testing.T) {
	const nSites, nFiles = 4, 16
	base := newSite("origin")
	paths := seedFiles(base, nFiles, 512)
	sites := make([]Site, nSites)
	for i := range sites {
		sites[i] = newSite(fmt.Sprintf("site%c", 'A'+i))
		for _, p := range paths {
			buf := make([]byte, 512)
			if err := base.FS.ReadAt(p, 0, buf); err != nil {
				t.Fatal(err)
			}
			if err := sites[i].FS.WriteAt(p, 0, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	reg := NewRegistry()
	var wg sync.WaitGroup
	errs := make([]error, nSites)
	for i := range sites {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = reg.Ingest(sites[i], paths, 3, 10e6)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("site %d ingest: %v", i, err)
		}
	}
	if reg.Count() != nFiles {
		t.Fatalf("registered %d, want %d", reg.Count(), nFiles)
	}
	for _, p := range paths {
		e, ok := reg.Lookup(p)
		if !ok || len(e.Replicas) != nSites {
			t.Fatalf("entry %s has replicas %v, want all %d sites", p, e.Replicas, nSites)
		}
	}
}

// TestVerifyReplicaTornArtifact: a replica produced by a torn write (the
// silent-corruption class of the pfs injector) must fail VerifyReplica,
// and a short-write replica (error surfaced, partial bytes on disk) must
// fail too.
func TestVerifyReplicaTornArtifact(t *testing.T) {
	clean := newSite("clean")
	paths := seedFiles(clean, 1, 1<<12)
	reg := NewRegistry()
	if _, err := reg.Ingest(clean, paths, 1, 1e6); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1<<12)
	if err := clean.FS.ReadAt(paths[0], 0, data); err != nil {
		t.Fatal(err)
	}

	// Torn: write reports success, prefix lands.
	torn := faultSite("torn", pfs.FaultPlan{Seed: 2, TornWriteProb: 1, MaxConsecutive: 1})
	if err := torn.FS.WriteAt(paths[0], 0, data); err != nil {
		t.Fatalf("torn write should report success, got %v", err)
	}
	if torn.FS.FaultStats().TornWrites != 1 {
		t.Fatal("torn write not injected")
	}
	torn.FS.ClearFaults()
	if torn.FS.Size(paths[0]) >= len(data) {
		t.Fatal("torn write persisted full payload; test is vacuous")
	}
	if err := reg.VerifyReplica(torn, paths[0]); err == nil {
		t.Fatal("torn replica passed verification")
	}

	// Short: write surfaces a transient error, prefix lands anyway.
	short := faultSite("short", pfs.FaultPlan{Seed: 4, ShortWriteProb: 1, MaxConsecutive: 1})
	if err := short.FS.WriteAt(paths[0], 0, data); !pfs.IsTransient(err) {
		t.Fatalf("short write error = %v, want transient", err)
	}
	short.FS.ClearFaults()
	if err := reg.VerifyReplica(short, paths[0]); err == nil {
		t.Fatal("short replica passed verification")
	}
}

// TestRegisterSingleFile covers the farm's per-artifact registration path.
func TestRegisterSingleFile(t *testing.T) {
	site := newSite("store")
	paths := seedFiles(site, 2, 256)
	reg := NewRegistry()
	e, err := reg.Register(site, paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.Checksum == "" || e.Bytes != 256 || len(e.Replicas) != 1 {
		t.Fatalf("entry %+v", e)
	}
	if err := reg.VerifyReplica(site, paths[0]); err != nil {
		t.Fatal(err)
	}
	// Re-register after content change: checksum must refresh.
	if err := site.FS.WriteAt(paths[0], 0, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	e2, err := reg.Register(site, paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if e2.Checksum == e.Checksum {
		t.Fatal("checksum not refreshed on re-register")
	}
	// A second site replica merges.
	other := newSite("mirror")
	buf := make([]byte, 256)
	if err := site.FS.ReadAt(paths[0], 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := other.FS.WriteAt(paths[0], 0, buf); err != nil {
		t.Fatal(err)
	}
	e3, err := reg.Register(other, paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(e3.Replicas) != 2 {
		t.Fatalf("replicas %v, want 2", e3.Replicas)
	}
	if _, err := reg.Register(site, "no/such/file"); err == nil {
		t.Fatal("missing file registered")
	}
}
