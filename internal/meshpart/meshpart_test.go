package meshpart

import (
	"math"
	"testing"

	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/meshgen"
	"repro/internal/mpi"
	"repro/internal/pfs"
)

func setup(t *testing.T, g grid.Dims, topo mpi.Cart) (*pfs.FS, decomp.Decomp, cvm.Querier, float64) {
	t.Helper()
	fsys := pfs.New(pfs.Config{OSTs: 16, OSTBandwidth: 100e6, MDSLatency: 1e-4, MDSConcurrent: 8})
	dc, err := decomp.New(g, topo)
	if err != nil {
		t.Fatal(err)
	}
	// Model extent ends at the last grid node so that coordinate clamping
	// (direct CVM extraction) and index clamping (partitioned files) see
	// the same edge values.
	q := cvm.SoCal(float64(g.NX-1)*500, float64(g.NY-1)*500, float64(g.NZ-1)*500, 400)
	if _, err := meshgen.Generate(fsys, q, meshgen.Spec{
		Path: "in/mesh.bin", Global: g, H: 500, Cores: 3,
	}); err != nil {
		t.Fatal(err)
	}
	return fsys, dc, q, 500
}

func TestMeshgenMatchesCVM(t *testing.T) {
	g := grid.Dims{NX: 10, NY: 8, NZ: 6}
	fsys, _, q, h := setup(t, g, mpi.NewCart(1, 1, 1))
	for _, p := range [][3]int{{0, 0, 0}, {9, 7, 5}, {4, 3, 2}} {
		got, err := meshgen.ReadPoint(fsys, "in/mesh.bin", g, p[0], p[1], p[2])
		if err != nil {
			t.Fatal(err)
		}
		want := q.Query(float64(p[0])*h, float64(p[1])*h, float64(p[2])*h)
		if math.Abs(got.Vp-want.Vp) > 0.5 || math.Abs(got.Vs-want.Vs) > 0.5 {
			t.Fatalf("point %v: got %+v want %+v", p, got, want)
		}
	}
}

func TestMeshgenValidation(t *testing.T) {
	fsys := pfs.New(pfs.Config{OSTs: 4, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 8})
	q := cvm.HardRock()
	if _, err := meshgen.Generate(fsys, q, meshgen.Spec{Path: "m", Global: grid.Dims{NX: 4, NY: 4, NZ: 4}, H: 100, Cores: 9}); err == nil {
		t.Error("cores > NZ accepted")
	}
	if _, err := meshgen.Generate(fsys, q, meshgen.Spec{Path: "m", Global: grid.Dims{NX: 4, NY: 4, NZ: 4}, H: 0, Cores: 2}); err == nil {
		t.Error("h=0 accepted")
	}
}

func TestPrePartitionRoundTrip(t *testing.T) {
	g := grid.Dims{NX: 12, NY: 10, NZ: 8}
	topo := mpi.NewCart(2, 2, 1)
	fsys, dc, q, h := setup(t, g, topo)
	if _, err := PrePartition(fsys, "in/mesh.bin", "parts", g, dc); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < topo.Size(); r++ {
		sm, err := ReadPrePartitioned(fsys, "parts", g, dc, r)
		if err != nil {
			t.Fatal(err)
		}
		// Feed the solver path and compare against direct CVM extraction.
		m1, err := medium.FromArrays(sm.Dims, h, sm.VP, sm.VS, sm.Rho)
		if err != nil {
			t.Fatal(err)
		}
		m2 := medium.FromCVM(q, dc, dc.SubFor(r), h)
		d1, d2 := m1.Rho.Data(), m2.Rho.Data()
		for n := range d1 {
			if rel(d1[n], d2[n]) > 1e-5 {
				t.Fatalf("rank %d: rho[%d] %g vs %g", r, n, d1[n], d2[n])
			}
		}
	}
}

func TestOnDemandMatchesPrePartitioned(t *testing.T) {
	g := grid.Dims{NX: 12, NY: 10, NZ: 8}
	topo := mpi.NewCart(2, 1, 2)
	fsys, dc, _, _ := setup(t, g, topo)
	if _, err := PrePartition(fsys, "in/mesh.bin", "parts", g, dc); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct{ readers, ysplit int }{{1, 1}, {2, 1}, {4, 1}, {2, 2}, {3, 5}} {
		subs, stats, err := OnDemand(fsys, "in/mesh.bin", g, dc, cfg.readers, cfg.ysplit)
		if err != nil {
			t.Fatalf("readers=%d ysplit=%d: %v", cfg.readers, cfg.ysplit, err)
		}
		if stats.Bytes == 0 {
			t.Error("no read bytes accounted")
		}
		for r := 0; r < topo.Size(); r++ {
			pre, err := ReadPrePartitioned(fsys, "parts", g, dc, r)
			if err != nil {
				t.Fatal(err)
			}
			for n := range pre.VP {
				if subs[r].VP[n] != pre.VP[n] || subs[r].Rho[n] != pre.Rho[n] {
					t.Fatalf("cfg %+v rank %d: element %d differs", cfg, r, n)
				}
			}
		}
	}
}

func TestOnDemandValidation(t *testing.T) {
	g := grid.Dims{NX: 8, NY: 8, NZ: 8}
	fsys, dc, _, _ := setup(t, g, mpi.NewCart(2, 1, 1))
	if _, _, err := OnDemand(fsys, "in/mesh.bin", g, dc, 0, 1); err == nil {
		t.Error("0 readers accepted")
	}
	if _, _, err := OnDemand(fsys, "in/mesh.bin", g, dc, 5, 1); err == nil {
		t.Error("more readers than ranks accepted")
	}
}

// More readers reading smaller contiguous chunks should not increase the
// simulated read time (the Fig 9 scalability property).
func TestMoreReadersNoSlower(t *testing.T) {
	g := grid.Dims{NX: 16, NY: 16, NZ: 12}
	topo := mpi.NewCart(2, 2, 3)
	fsys, dc, _, _ := setup(t, g, topo)
	_, s1, err := OnDemand(fsys, "in/mesh.bin", g, dc, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, s4, err := OnDemand(fsys, "in/mesh.bin", g, dc, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s4.IOTime > s1.IOTime*1.01 {
		t.Fatalf("4 readers slower than 1: %g vs %g", s4.IOTime, s1.IOTime)
	}
}

func rel(a, b float32) float64 {
	if b == 0 {
		return math.Abs(float64(a))
	}
	return math.Abs(float64(a-b)) / math.Abs(float64(b))
}

// A degenerate 1-rank "decomposition" must still work through every
// partitioning path — pre-partitioned, on-demand with the sole rank as
// its own reader — and agree with direct CVM extraction including the
// clamped ghost shell (every ghost is a global-boundary ghost here).
func TestSingleRankDegenerateDecomp(t *testing.T) {
	g := grid.Dims{NX: 9, NY: 7, NZ: 6}
	topo := mpi.NewCart(1, 1, 1)
	fsys, dc, q, h := setup(t, g, topo)
	if _, err := PrePartition(fsys, "in/mesh.bin", "parts", g, dc); err != nil {
		t.Fatal(err)
	}
	pre, err := ReadPrePartitioned(fsys, "parts", g, dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	subs, _, err := OnDemand(fsys, "in/mesh.bin", g, dc, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for n := range pre.VP {
		if subs[0].VP[n] != pre.VP[n] || subs[0].VS[n] != pre.VS[n] || subs[0].Rho[n] != pre.Rho[n] {
			t.Fatalf("on-demand differs from pre-partitioned at element %d", n)
		}
	}
	m1, err := medium.FromArrays(pre.Dims, h, pre.VP, pre.VS, pre.Rho)
	if err != nil {
		t.Fatal(err)
	}
	m2 := medium.FromCVM(q, dc, dc.SubFor(0), h)
	d1, d2 := m1.Rho.Data(), m2.Rho.Data()
	for n := range d1 {
		if rel(d1[n], d2[n]) > 1e-5 {
			t.Fatalf("rho[%d] %g vs %g", n, d1[n], d2[n])
		}
	}
}

// workRates builds a per-plane rate vector: rate `hi` for planes >= split,
// 1 below — the basin-over-rock shape the LTS planner produces.
func workRates(n, split, hi int) []int {
	r := make([]int, n)
	for i := range r {
		if i >= split {
			r[i] = hi
		} else {
			r[i] = 1
		}
	}
	return r
}

// Work-weighted cuts put narrow ranks against the global x=0 boundary and
// wide ranks against x=NX-1. The ghost shells of both extreme ranks must
// clamp to the boundary planes exactly as direct extraction does.
func TestGhostClampingAtBoundariesWorkBalanced(t *testing.T) {
	g := grid.Dims{NX: 20, NY: 8, NZ: 8}
	topo := mpi.NewCart(3, 1, 1)
	fsys, _, q, h := setup(t, g, topo)
	dc, err := decomp.NewWorkBalanced(g, topo, workRates(g.NX, 8, 4), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cuts := dc.Cuts(0)
	if cuts[1]-cuts[0] >= cuts[3]-cuts[2] {
		t.Fatalf("cuts %v: expected a narrow rate-1 rank at x=0 and a wide rate-4 rank at the far end", cuts)
	}
	if _, err := PrePartition(fsys, "in/mesh.bin", "parts", g, dc); err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, topo.Size() - 1} {
		sm, err := ReadPrePartitioned(fsys, "parts", g, dc, r)
		if err != nil {
			t.Fatal(err)
		}
		m1, err := medium.FromArrays(sm.Dims, h, sm.VP, sm.VS, sm.Rho)
		if err != nil {
			t.Fatal(err)
		}
		m2 := medium.FromCVM(q, dc, dc.SubFor(r), h)
		d1, d2 := m1.Rho.Data(), m2.Rho.Data()
		for n := range d1 {
			if rel(d1[n], d2[n]) > 1e-5 {
				t.Fatalf("rank %d: rho[%d] %g vs %g (ghost clamp mismatch)", r, n, d1[n], d2[n])
			}
		}
	}
}

// On-demand partitioning must agree element-for-element with the
// pre-partitioned files on a cluster-aware (work-balanced, uneven-cut)
// decomposition, across reader counts and y subdivision.
func TestOnDemandParityOnWorkBalancedDecomp(t *testing.T) {
	g := grid.Dims{NX: 24, NY: 10, NZ: 8}
	topo := mpi.NewCart(4, 1, 1)
	fsys, _, _, _ := setup(t, g, topo)
	dc, err := decomp.NewWorkBalanced(g, topo, workRates(g.NX, 12, 4), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrePartition(fsys, "in/mesh.bin", "parts", g, dc); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct{ readers, ysplit int }{{1, 1}, {2, 1}, {4, 2}, {3, 3}} {
		subs, stats, err := OnDemand(fsys, "in/mesh.bin", g, dc, cfg.readers, cfg.ysplit)
		if err != nil {
			t.Fatalf("readers=%d ysplit=%d: %v", cfg.readers, cfg.ysplit, err)
		}
		if stats.Bytes == 0 {
			t.Error("no read bytes accounted")
		}
		for r := 0; r < topo.Size(); r++ {
			pre, err := ReadPrePartitioned(fsys, "parts", g, dc, r)
			if err != nil {
				t.Fatal(err)
			}
			if len(subs[r].VP) != len(pre.VP) {
				t.Fatalf("cfg %+v rank %d: padded length %d vs %d", cfg, r, len(subs[r].VP), len(pre.VP))
			}
			for n := range pre.VP {
				if subs[r].VP[n] != pre.VP[n] || subs[r].VS[n] != pre.VS[n] || subs[r].Rho[n] != pre.Rho[n] {
					t.Fatalf("cfg %+v rank %d: element %d differs", cfg, r, n)
				}
			}
		}
	}
}
