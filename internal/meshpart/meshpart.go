// Package meshpart implements PetaMeshP (§III.C): partitioning the single
// global mesh file onto the solver ranks. Both of the paper's I/O models
// are provided:
//
//   - Serial pre-partitioning: per-rank files written once before the run
//     (excellent locality; risks metadata storms at high rank counts);
//   - On-demand MPI-IO partitioning: a subset of "reader" ranks read
//     highly contiguous XY-plane chunks and redistribute sub-rectangles to
//     the "receiver" ranks with point-to-point messages, each receiver
//     assembling its padded local cube.
//
// Each rank's product is the ghost-padded (vp, vs, rho) arrays its solver
// needs, with edge clamping identical to direct CVM extraction, so all
// three paths (direct, pre-partitioned, on-demand) agree exactly.
package meshpart

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/meshgen"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
)

// SubMesh is one rank's ghost-padded material arrays, in grid.Field3
// padded layout (x-fastest over the padded extents).
type SubMesh struct {
	Rank        int
	Dims        grid.Dims // interior dims
	VP, VS, Rho []float32 // padded arrays
}

// paddedLen returns the padded array length for interior dims d.
func paddedLen(d grid.Dims) int {
	g := grid.Ghost
	return (d.NX + 2*g) * (d.NY + 2*g) * (d.NZ + 2*g)
}

// clamp returns the in-range global index for a padded (possibly ghost)
// index — replicating the coordinate clamping of direct CVM extraction.
func clamp(g, n int) int {
	if g < 0 {
		return 0
	}
	if g >= n {
		return n - 1
	}
	return g
}

// extract assembles the padded sub-mesh for sub from a plane lookup
// function returning the (vp,vs,rho) record at a global point.
func extract(global grid.Dims, sub decomp.Sub, rec func(gi, gj, gk int) (float32, float32, float32)) SubMesh {
	g := grid.Ghost
	d := sub.Local
	sm := SubMesh{
		Rank: sub.Rank, Dims: d,
		VP: make([]float32, paddedLen(d)), VS: make([]float32, paddedLen(d)), Rho: make([]float32, paddedLen(d)),
	}
	sx := d.NX + 2*g
	sy := d.NY + 2*g
	n := 0
	for k := -g; k < d.NZ+g; k++ {
		gk := clamp(sub.OffZ+k, global.NZ)
		for j := -g; j < d.NY+g; j++ {
			gj := clamp(sub.OffY+j, global.NY)
			for i := -g; i < d.NX+g; i++ {
				gi := clamp(sub.OffX+i, global.NX)
				vp, vs, rho := rec(gi, gj, gk)
				sm.VP[n], sm.VS[n], sm.Rho[n] = vp, vs, rho
				n++
			}
		}
	}
	_ = sx
	_ = sy
	return sm
}

// PartFileName is the per-rank pre-partitioned file naming scheme.
func PartFileName(dir string, rank int) string {
	return fmt.Sprintf("%s/submesh.%06d", dir, rank)
}

// PrePartition reads the global mesh once and writes one pre-partitioned
// padded sub-mesh file per rank (I/O model 1).
func PrePartition(fsys *pfs.FS, meshPath, outDir string, global grid.Dims, dc decomp.Decomp) (pfs.PhaseStats, error) {
	nranks := dc.Topo.Size()
	// Read the full mesh once (the serial partitioner).
	segs := []mpiio.Segment{{Off: 0, Len: global.Cells() * meshgen.RecBytes}}
	raw, err := mpiio.ReadIndexed(fsys, meshPath, segs)
	if err != nil {
		return pfs.PhaseStats{}, err
	}
	vals := mpiio.GetFloat32s(raw)
	rec := func(gi, gj, gk int) (float32, float32, float32) {
		base := ((gk*global.NY+gj)*global.NX + gi) * 3
		return vals[base], vals[base+1], vals[base+2]
	}
	var ops []pfs.Op
	for r := 0; r < nranks; r++ {
		sm := extract(global, dc.SubFor(r), rec)
		path := PartFileName(outDir, r)
		n, err := writePart(fsys, path, sm)
		if err != nil {
			return pfs.PhaseStats{}, err
		}
		ops = append(ops, pfs.Op{Path: path, Bytes: n, Write: true, Open: true})
	}
	return fsys.SimulatePhase(ops), nil
}

// writePart writes one rank's padded sub-mesh file (VP‖VS‖Rho) with
// bounded retry, returning the byte count.
func writePart(fsys *pfs.FS, path string, sm SubMesh) (int, error) {
	buf := make([]float32, 0, 3*len(sm.VP))
	buf = append(buf, sm.VP...)
	buf = append(buf, sm.VS...)
	buf = append(buf, sm.Rho...)
	raw := mpiio.PutFloat32s(buf)
	retry := pfs.DefaultRetry()
	if err := retry.Do(func() error { return fsys.WriteAt(path, 0, raw) }); err != nil {
		return 0, fmt.Errorf("meshpart: write %s: %w", path, err)
	}
	return len(raw), nil
}

// StreamStats reports the out-of-core partitioner's accounting.
type StreamStats struct {
	PeakBytes int // max live mesh bytes held at any time
	Waves     int // open-throttle waves of the priced write phase
}

// StreamPrePartition is the out-of-core pre-partitioner: instead of
// materializing the whole global mesh (PrePartition's O(NX·NY·NZ)
// footprint — 21 TB for the M8 mesh), it reads, for one rank at a time,
// only the clamped ghost-padded block that rank needs, assembles and
// writes its sub-mesh file, and moves on. Peak memory is one padded
// sub-block, independent of NZ, and the output files are bit-identical
// to PrePartition's. The write phase is priced under the concurrent-open
// throttle (the M8 run kept 223,074 part-file opens at ≤650 in flight).
func StreamPrePartition(fsys *pfs.FS, meshPath, outDir string, global grid.Dims, dc decomp.Decomp, throttle int) (pfs.PhaseStats, StreamStats, error) {
	nranks := dc.Topo.Size()
	g := grid.Ghost
	var ops []pfs.Op
	var sst StreamStats
	for r := 0; r < nranks; r++ {
		sub := dc.SubFor(r)
		k0 := clamp(sub.OffZ-g, global.NZ)
		k1 := clamp(sub.OffZ+sub.Local.NZ+g-1, global.NZ)
		j0 := clamp(sub.OffY-g, global.NY)
		j1 := clamp(sub.OffY+sub.Local.NY+g-1, global.NY)
		i0 := clamp(sub.OffX-g, global.NX)
		i1 := clamp(sub.OffX+sub.Local.NX+g-1, global.NX)
		segs := mpiio.BlockSegments(global, i0, i1+1, j0, j1+1, k0, k1+1, meshgen.RecBytes)
		raw, err := mpiio.ReadIndexed(fsys, meshPath, segs)
		if err != nil {
			return pfs.PhaseStats{}, sst, fmt.Errorf("meshpart: rank %d block: %w", r, err)
		}
		vals := mpiio.GetFloat32s(raw)
		nxr, nyr := i1-i0+1, j1-j0+1
		rec := func(gi, gj, gk int) (float32, float32, float32) {
			base := (((gk-k0)*nyr+(gj-j0))*nxr + (gi - i0)) * 3
			return vals[base], vals[base+1], vals[base+2]
		}
		sm := extract(global, sub, rec)
		path := PartFileName(outDir, r)
		n, err := writePart(fsys, path, sm)
		if err != nil {
			return pfs.PhaseStats{}, sst, err
		}
		// Live set: the read block plus the assembled padded arrays and
		// their byte image.
		if live := len(raw) + 3*len(sm.VP)*4*2; live > sst.PeakBytes {
			sst.PeakBytes = live
		}
		ops = append(ops, pfs.Op{Path: path, Bytes: n, Write: true, Open: true})
	}
	st, waves := agg.ThrottledPhase(fsys, ops, throttle)
	sst.Waves = waves
	return st, sst, nil
}

// ReadPrePartitioned loads one rank's pre-partitioned sub-mesh (the
// fast-path solver input; M8 read 223,074 of these in 4 minutes with open
// throttling).
func ReadPrePartitioned(fsys *pfs.FS, dir string, global grid.Dims, dc decomp.Decomp, rank int) (SubMesh, error) {
	sub := dc.SubFor(rank)
	n := paddedLen(sub.Local)
	raw := make([]byte, 3*n*4)
	if err := fsys.ReadAt(PartFileName(dir, rank), 0, raw); err != nil {
		return SubMesh{}, err
	}
	vals := mpiio.GetFloat32s(raw)
	return SubMesh{
		Rank: rank, Dims: sub.Local,
		VP: vals[:n], VS: vals[n : 2*n], Rho: vals[2*n : 3*n],
	}, nil
}

// OnDemand performs the reader/receiver MPI-IO partitioning (I/O model 2):
// the first nReaders ranks read whole XY planes (optionally split in y by
// subdivision factor ySplit >= 1) and send each receiver the sub-rectangle
// it needs; every rank returns its padded sub-mesh. The returned phase
// stats price the reader I/O.
func OnDemand(fsys *pfs.FS, meshPath string, global grid.Dims, dc decomp.Decomp, nReaders, ySplit int) ([]SubMesh, pfs.PhaseStats, error) {
	nranks := dc.Topo.Size()
	if nReaders <= 0 || nReaders > nranks {
		return nil, pfs.PhaseStats{}, fmt.Errorf("meshpart: nReaders %d outside [1,%d]", nReaders, nranks)
	}
	if ySplit <= 0 {
		ySplit = 1
	}
	planeBytes := global.NX * global.NY * meshgen.RecBytes
	out := make([]SubMesh, nranks)
	views := make([][]mpiio.Segment, nReaders)
	var runErr error

	world := mpi.NewWorld(nranks)
	world.Run(func(c *mpi.Comm) {
		rank := c.Rank()
		sub := dc.SubFor(rank)
		g := grid.Ghost

		// Receiver bookkeeping: global plane range needed (clamped).
		k0 := clamp(sub.OffZ-g, global.NZ)
		k1 := clamp(sub.OffZ+sub.Local.NZ+g-1, global.NZ)
		j0 := clamp(sub.OffY-g, global.NY)
		j1 := clamp(sub.OffY+sub.Local.NY+g-1, global.NY)
		i0 := clamp(sub.OffX-g, global.NX)
		i1 := clamp(sub.OffX+sub.Local.NX+g-1, global.NX)

		// Phase 1: readers read their planes and push sub-rectangles.
		if rank < nReaders {
			var view []mpiio.Segment
			for k := rank; k < global.NZ; k += nReaders {
				for ys := 0; ys < ySplit; ys++ {
					yb := ys * global.NY / ySplit
					ye := (ys + 1) * global.NY / ySplit
					segLen := (ye - yb) * global.NX * meshgen.RecBytes
					segOff := k*planeBytes + yb*global.NX*meshgen.RecBytes
					raw, err := mpiio.ReadIndexed(fsys, meshPath, []mpiio.Segment{{Off: segOff, Len: segLen}})
					if err != nil {
						runErr = err
						return
					}
					vals := mpiio.GetFloat32s(raw)
					view = append(view, mpiio.Segment{Off: segOff, Len: segLen})
					// Distribute to every receiver whose padded range needs
					// rows in [yb, ye) of plane k.
					for r := 0; r < nranks; r++ {
						rs := dc.SubFor(r)
						rk0 := clamp(rs.OffZ-g, global.NZ)
						rk1 := clamp(rs.OffZ+rs.Local.NZ+g-1, global.NZ)
						if k < rk0 || k > rk1 {
							continue
						}
						rj0 := clamp(rs.OffY-g, global.NY)
						rj1 := clamp(rs.OffY+rs.Local.NY+g-1, global.NY)
						ri0 := clamp(rs.OffX-g, global.NX)
						ri1 := clamp(rs.OffX+rs.Local.NX+g-1, global.NX)
						ly0, ly1 := max(rj0, yb), min(rj1, ye-1)
						if ly0 > ly1 {
							continue
						}
						// Payload: header + the needed rectangle.
						rect := make([]float32, 0, 6+(ly1-ly0+1)*(ri1-ri0+1)*3)
						rect = append(rect, float32(k), float32(ly0), float32(ly1), float32(ri0), float32(ri1), 0)
						for j := ly0; j <= ly1; j++ {
							rowBase := ((j - yb) * global.NX * 3)
							for i := ri0; i <= ri1; i++ {
								b := rowBase + i*3
								rect = append(rect, vals[b], vals[b+1], vals[b+2])
							}
						}
						c.Send(r, 7000+k*ySplit+ys, rect)
					}
				}
			}
			views[rank] = view
		}

		// Phase 2: every rank receives its rectangles and assembles the
		// padded cube.
		type plane struct {
			j0, j1, i0, i1 int
			vals           []float32
		}
		need := map[int][]plane{} // global k -> rectangles
		expected := 0
		for k := k0; k <= k1; k++ {
			for ys := 0; ys < ySplit; ys++ {
				yb := ys * global.NY / ySplit
				ye := (ys + 1) * global.NY / ySplit
				if max(j0, yb) <= min(j1, ye-1) {
					expected++
				}
			}
		}
		buf := make([]float32, 6+(j1-j0+1)*(i1-i0+1)*3+16)
		for e := 0; e < expected; e++ {
			st := c.MustRecv(buf, mpi.AnySource, mpi.AnyTag)
			v := buf[:st.Count]
			k := int(v[0])
			p := plane{j0: int(v[1]), j1: int(v[2]), i0: int(v[3]), i1: int(v[4])}
			p.vals = append([]float32(nil), v[6:]...)
			need[k] = append(need[k], p)
		}
		rec := func(gi, gj, gk int) (float32, float32, float32) {
			for _, p := range need[gk] {
				if gj >= p.j0 && gj <= p.j1 && gi >= p.i0 && gi <= p.i1 {
					b := ((gj-p.j0)*(p.i1-p.i0+1) + (gi - p.i0)) * 3
					return p.vals[b], p.vals[b+1], p.vals[b+2]
				}
			}
			panic(fmt.Sprintf("meshpart: rank %d missing record (%d,%d,%d)", rank, gi, gj, gk))
		}
		out[rank] = extract(global, sub, rec)
	})
	if runErr != nil {
		return nil, pfs.PhaseStats{}, runErr
	}
	readStats := fsys.SimulatePhase(mpiio.PhaseOps(meshPath, views, false))
	return out, readStats, nil
}
