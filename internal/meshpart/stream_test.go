package meshpart

import (
	"bytes"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
)

func TestStreamPrePartitionBitIdenticalToPrePartition(t *testing.T) {
	g := grid.Dims{NX: 12, NY: 12, NZ: 8}
	fsys, dc, _, _ := setup(t, g, mpi.NewCart(2, 3, 2))
	nranks := dc.Topo.Size()

	if _, err := PrePartition(fsys, "in/mesh.bin", "full", g, dc); err != nil {
		t.Fatal(err)
	}
	st, sst, err := StreamPrePartition(fsys, "in/mesh.bin", "stream", g, dc, 4)
	if err != nil {
		t.Fatal(err)
	}

	for r := 0; r < nranks; r++ {
		a, b := PartFileName("full", r), PartFileName("stream", r)
		na, nb := fsys.Size(a), fsys.Size(b)
		if na != nb || na <= 0 {
			t.Fatalf("rank %d: sizes %d vs %d", r, na, nb)
		}
		ba := make([]byte, na)
		bb := make([]byte, nb)
		if err := fsys.ReadAt(a, 0, ba); err != nil {
			t.Fatal(err)
		}
		if err := fsys.ReadAt(b, 0, bb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("rank %d: streamed part file differs from PrePartition's", r)
		}
	}

	// 12 part files through a throttle of 4 → 3 waves.
	if sst.Waves != 3 {
		t.Fatalf("waves = %d, want 3", sst.Waves)
	}
	if st.Bytes == 0 || st.Elapsed <= 0 {
		t.Fatalf("write phase not priced: %+v", st)
	}
	if sst.PeakBytes <= 0 {
		t.Fatal("peak bytes not accounted")
	}
}

func TestStreamPrePartitionBoundedMemoryInNZ(t *testing.T) {
	// Growing the mesh in z with fixed per-rank block size must not grow
	// the partitioner's live set — the out-of-core property PrePartition
	// lacks (its footprint is the whole mesh).
	// p=4 already contains interior ranks (full ±ghost z-blocks), so the
	// per-rank block shape is identical at every larger p.
	var peak int
	for i, p := range []int{4, 8, 16} {
		g := grid.Dims{NX: 8, NY: 8, NZ: 4 * p}
		fsys, dc, _, _ := setup(t, g, mpi.NewCart(1, 1, p))
		if _, sst, err := StreamPrePartition(fsys, "in/mesh.bin", "parts", g, dc, 0); err != nil {
			t.Fatal(err)
		} else if i == 0 {
			peak = sst.PeakBytes
		} else if sst.PeakBytes != peak {
			t.Fatalf("NZ=%d: peak %d bytes (was %d) — live set grows with the mesh", g.NZ, sst.PeakBytes, peak)
		}
	}
}
