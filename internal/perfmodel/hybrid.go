package perfmodel

// Hybrid model-execution scaling (the 10k-rank mode): instead of
// pricing jobs from the Table 1 machine constants, a Machine is
// synthesized from constants measured on THIS host by really executing
// a sampled subset of ranks — compute per cell from instrumented solver
// steps, (alpha, beta) from FitAlphaBeta over halo-exchange sweeps, and
// the barrier round from the combining-tree collectives. Eq. 7/8 then
// extrapolates those constants to rank counts the host cannot hold,
// which is exactly how the paper's own model is validated (§V.A): fit
// small, predict large.

import "repro/internal/grid"

// MeasuredConstants are the per-rank execution constants a hybrid run
// measures on the sampled ranks (solver.MeasureConstants fills them).
type MeasuredConstants struct {
	// CompSecPerCell is the measured compute time of one cell for one
	// step on one core, from an instrumented uncontended solver run.
	CompSecPerCell float64
	// Alpha (s/message) and Beta (s/byte) are fitted from measured
	// halo-exchange sweeps via FitAlphaBeta.
	Alpha, Beta float64
	// SyncPerRound is the measured cost of one tree-barrier round at
	// the sample world size.
	SyncPerRound float64
	// MsgsPerRankStep and BytesPerRankStep are the measured per-rank
	// per-step message count and byte volume of the sampled exchange.
	MsgsPerRankStep  float64
	BytesPerRankStep float64
	// HostRankStepSec and HostNbrStepSec decompose the host wall-clock
	// of one step when ALL ranks execute for real on this host
	// (serialized at GOMAXPROCS=1): a fixed per-rank cost (compute,
	// physical-boundary work, sync share) plus a marginal per-neighbor
	// cost (halo traffic, scheduler churn). They are fitted from two
	// sampled world sizes with different mean neighbor counts, because a
	// pure cells-scaling projection systematically undershoots larger
	// worlds — a 2x2x2 sample averages 3 neighbors/rank where 4x4x4
	// averages 4.5, and the per-neighbor work is a ~25% effect. The pair
	// projects what a full — non-hybrid — execution of P ranks would
	// cost here, the quantity the hybrid-vs-full parity gate checks.
	HostRankStepSec float64
	HostNbrStepSec  float64
	// SampleRanks is the world size the sampled execution ran at.
	SampleRanks int
}

// Machine synthesizes a perfmodel Machine from the measured constants.
// StencilEfficiency is 1 and CacheCellsPerCore is 0 (no super-linear
// bonus): CompSecPerCell already IS the sustained per-cell time, so Tau
// absorbs the whole compute term and no efficiency modifiers apply.
// NUMAFactor is 1 — the goroutine transport has no NIC contention.
func (mc MeasuredConstants) Machine(name string) Machine {
	return Machine{
		Name:              name,
		Location:          "localhost",
		Processor:         "measured",
		Interconnect:      "in-process goroutine transport",
		Alpha:             mc.Alpha,
		Beta:              mc.Beta,
		Tau:               mc.CompSecPerCell / UsefulFlopsPerCell,
		StencilEfficiency: 1,
		NUMAFactor:        1,
		CacheCellsPerCore: 0,
	}
}

// MeasuredVersion is the Version under which measured constants apply:
// every optimization flag is on, so StepTime applies no penalty
// divisors — the measured numbers already include whatever the real
// code does and does not do.
func MeasuredVersion() Version {
	return Version{
		Name: "measured", Year: 2026,
		Async: true, ReducedComm: true, SingleCPUOpt: true,
		Unrolled: true, CacheBlocked: true, IOAggregated: true,
		TunedMPI: true,
	}
}

// HybridJob builds the Eq. 7 job for a run of cores ranks over global
// cells, priced by the measured constants.
func (mc MeasuredConstants) HybridJob(global grid.Dims, cores int) Job {
	return Job{
		Machine:       mc.Machine("measured-host"),
		Version:       MeasuredVersion(),
		Global:        global,
		Cores:         cores,
		CoalescedComm: true,
	}
}

// WeakPoint is one point of a Fig. 5-style weak-scaling curve: per-rank
// work fixed, ranks swept.
type WeakPoint struct {
	Ranks      int
	Global     grid.Dims
	Step       Breakdown
	StepSec    float64
	Efficiency float64 // T(1 rank) / T(P ranks), per-rank work fixed
	Tflops     float64
}

// HybridWeakCurve prices a weak-scaling sweep: each rank holds perRank
// cells, the global grid grows with the topology. The efficiency
// baseline is the single-rank compute time — T(N,1) has no
// communication, matching the Eq. 8 numerator StrongScaling uses.
// topoFor is the caller's rank-count → topology map (decomp.WeakTopo);
// it is a parameter to keep perfmodel free of a decomp dependency here.
func (mc MeasuredConstants) HybridWeakCurve(perRank grid.Dims, ranks []int, topo func(int) (px, py, pz int)) []WeakPoint {
	b1 := StepTime(mc.HybridJob(perRank, 1))
	t1 := b1.Comp + b1.IO
	out := make([]WeakPoint, 0, len(ranks))
	for _, p := range ranks {
		px, py, pz := topo(p)
		g := grid.Dims{NX: perRank.NX * px, NY: perRank.NY * py, NZ: perRank.NZ * pz}
		b := StepTime(mc.HybridJob(g, p))
		st := b.Total()
		out = append(out, WeakPoint{
			Ranks:      p,
			Global:     g,
			Step:       b,
			StepSec:    st,
			Efficiency: t1 / st,
			Tflops:     UsefulFlopsPerCell * float64(g.Cells()) / st / 1e12,
		})
	}
	return out
}

// HybridStrongCurve prices a strong-scaling sweep (Fig. 6): global grid
// fixed, ranks swept.
func (mc MeasuredConstants) HybridStrongCurve(global grid.Dims, ranks []int) []ScalingPoint {
	return StrongScaling(mc.Machine("measured-host"), MeasuredVersion(), global, ranks)
}

// HostProjectedStepSec projects the wall-clock one step of a FULL
// (every-rank-real) execution of ranks would take on this host: at
// GOMAXPROCS=1 all ranks serialize, so host wall is the summed per-rank
// work — a fixed cost per rank plus a marginal cost per neighbor link
// (sumNeighbors is the topology-wide neighbor-count total). The
// hybrid-vs-full parity gate compares this projection against a
// really-executed run at a size the host can still hold.
func (mc MeasuredConstants) HostProjectedStepSec(ranks, sumNeighbors int) float64 {
	return mc.HostRankStepSec*float64(ranks) + mc.HostNbrStepSec*float64(sumNeighbors)
}
