package perfmodel

import (
	"math"

	"repro/internal/decomp"
	"repro/internal/grid"
)

// UsefulFlopsPerCell is the PAPI-countable floating-point work per cell
// per time step (velocity + stress + coarse-grained attenuation kernels);
// sustained Tflop/s figures use this count, as the paper's PAPI_FP_OPS /
// wall-clock does.
const UsefulFlopsPerCell = 180.0

// GhostWidth mirrors the solver's two-cell halo.
const GhostWidth = 2

// Job describes a modeled production run.
type Job struct {
	Machine Machine
	Version Version
	Global  grid.Dims
	Cores   int
	// OutputBytesPerStep is the aggregate output volume per recorded step
	// (M8: surface velocities on an 80 m grid every 20th step).
	OutputBytesPerStep float64
	// OutputEverySteps is 1/gamma of Eq. 7 when IOAggregated is false;
	// aggregated runs flush every AggregateSteps.
	OutputEverySteps int
	AggregateSteps   int
	// IOBandwidth is the file-system aggregate bandwidth, B/s.
	IOBandwidth float64
	// WriterRanks is the aggregator count of the two-phase collective
	// output path (M8: 670, one writer stream per OST). Aggregated flushes
	// pay a metadata charge per writer open, amortized over the
	// AggregateSteps interval — negligible by design, which is the point:
	// a bounded writer set keeps the MDS out of the critical path, unlike
	// the per-rank storm of the unaggregated branch.
	WriterRanks int
	// AuxOverheadFraction is extra per-cell production work (sources,
	// boundary zones, aggregation, checksums) relative to the bare wave
	// kernels; ~0 in dedicated benchmarks.
	AuxOverheadFraction float64
	// HybridThreads > 1 models the MPI/OpenMP hybrid (§IV.D): OpenMP
	// threads within each MPI process. The hybrid trims load imbalance by
	// ~35% but pays idle-thread overhead that grows as the per-process
	// subdomain approaches the arithmetic limits of the decomposition.
	HybridThreads int
	// CoalescedComm models the coalesced halo layout (solver coalesce.go):
	// one message per neighbor per wavefield phase instead of one per
	// (field, axis, side), shrinking the per-message latency term of Eq. 7
	// while leaving the byte volume unchanged.
	CoalescedComm bool
	// TemporalDepth T > 1 models the time-tiled engine (solver ttile.go):
	// one deep halo exchange per T-step super-step instead of two 2-plane
	// exchanges per step. The per-message latency term of Eq. 7 drops
	// ~T-fold per step (with coalescing, to one message per neighbor per
	// super-step); the byte volume per step grows, because the deep halo
	// ships (4T-2)-, 4T- and (4T-4)-plane sections of the velocity, stress
	// and attenuation memory-variable fields.
	TemporalDepth int
	// LTSShares models multi-rate local time stepping (solver lts.go):
	// the fraction of cells advancing at each rate-2^k step multiplier. A
	// rate-r cluster runs its kernels and sends its messages once per r
	// base steps, so the amortized per-base-step compute AND the
	// per-message/byte communication terms both scale by
	// sum(frac/rate)/sum(frac). Nil or empty models a classic run.
	// Mutually exclusive with TemporalDepth > 1, as in the solver.
	LTSShares []LTSShare
}

// LTSShare is one rate cluster's share of the domain.
type LTSShare struct {
	Rate int     // step-rate multiplier 2^k
	Frac float64 // fraction of cells at this rate
}

// ltsWorkFactor returns sum(frac/rate)/sum(frac), the per-base-step work
// multiplier of the multi-rate schedule (1 when no shares are given).
func ltsWorkFactor(shares []LTSShare) float64 {
	if len(shares) == 0 {
		return 1
	}
	var work, tot float64
	for _, sh := range shares {
		if sh.Rate < 1 || sh.Frac <= 0 {
			continue
		}
		work += sh.Frac / float64(sh.Rate)
		tot += sh.Frac
	}
	if tot <= 0 {
		return 1
	}
	return work / tot
}

// Breakdown is the Eq. 7 decomposition of one time step, in seconds.
type Breakdown struct {
	Comp, Comm, Sync, IO float64
}

// Total returns the full step time.
func (b Breakdown) Total() float64 { return b.Comp + b.Comm + b.Sync + b.IO }

// topoFor picks the communication topology for p cores over the global
// grid, matching the solver's heuristic.
func topoFor(g grid.Dims, p int) (px, py, pz int) {
	t := decomp.BestTopo(g, p)
	return t.PX, t.PY, t.PZ
}

// compEfficiency returns the fraction of machine peak the compute kernels
// sustain under the version's single-CPU state and the subgrid's cache
// behaviour.
func compEfficiency(m Machine, v Version, cellsPerCore float64) float64 {
	eff := m.StencilEfficiency
	if !v.SingleCPUOpt {
		eff /= 1.31 // §IV.B: reduced divisions were worth 31%
	}
	if !v.Unrolled {
		eff /= 1.02
	}
	if !v.CacheBlocked {
		eff /= 1.07
	} else if cellsPerCore < m.CacheCellsPerCore {
		// Super-linear regime (§V.A): the per-core working set fits into
		// cache and memory access time collapses. Up to +35% as the
		// subgrid shrinks well below the cache size.
		fit := 1 - cellsPerCore/m.CacheCellsPerCore
		eff *= 1 + 0.35*fit
	}
	return eff
}

// StepTime prices one solver step (Eq. 7/8).
func StepTime(j Job) Breakdown {
	m, v := j.Machine, j.Version
	px, py, pz := topoFor(j.Global, j.Cores)
	nx := float64(j.Global.NX) / float64(px)
	ny := float64(j.Global.NY) / float64(py)
	nz := float64(j.Global.NZ) / float64(pz)
	cells := nx * ny * nz

	var b Breakdown

	// --- Tcomp ---
	b.Comp = UsefulFlopsPerCell * cells * m.Tau / compEfficiency(m, v, cells)
	// Production runs carry per-cell work beyond the wave kernels (source
	// reinitialization, PML zones, buffer aggregation, checksums): the gap
	// between the 2,000-step benchmark (260 Tflop/s) and the 24-hour M8
	// production run (220 Tflop/s) on the same cores (§V.B).
	b.Comp *= 1 + j.AuxOverheadFraction
	// Multi-rate LTS: a rate-r cluster runs once per r base steps.
	ltsWork := ltsWorkFactor(j.LTSShares)
	b.Comp *= ltsWork

	// --- Tcomm (Eq. 8 volumes: two ghost planes per face, float32) ---
	faceXY := nx * ny * float64(GhostWidth) * 4
	faceXZ := nx * nz * float64(GhostWidth) * 4
	faceYZ := ny * nz * float64(GhostWidth) * 4
	// Components exchanged per face pair per step: velocities 3 in all
	// axes; stresses 6 in all axes, or the reduced set (§IV.A).
	velMsgs := 3.0
	strMsgsX, strMsgsY, strMsgsZ := 6.0, 6.0, 6.0
	if v.ReducedComm {
		// sxx:x, syy:y, szz:z, sxy:xy, sxz:xz, syz:yz.
		strMsgsX, strMsgsY, strMsgsZ = 3, 3, 3
	}
	bytesX := (velMsgs + strMsgsX) * 2 * faceYZ
	bytesY := (velMsgs + strMsgsY) * 2 * faceXZ
	bytesZ := (velMsgs + strMsgsZ) * 2 * faceXY
	// Messages an interior rank sends per step: one per (component, axis,
	// side), i.e. velocities 3x3x2 = 18 plus stresses per the axis sets —
	// 54 total, 36 under reduced communication. Coalescing collapses this
	// to one message per neighbor per phase: 6 neighbors x 2 phases = 12.
	msgsStep := 2 * (3*velMsgs + strMsgsX + strMsgsY + strMsgsZ)
	nMsgsPerPhase := 2 * (velMsgs + strMsgsX + strMsgsY + strMsgsZ) // both sides
	if j.CoalescedComm {
		msgsStep = 12
		nMsgsPerPhase = 2 * (1 + 3) // one aggregate per side: velocity + 3 stress axes
	}
	if j.TemporalDepth > 1 {
		// Time-tiled super-steps: one exchange per T steps, full field set
		// (no reduced stress axes — the recomputed extensions mix
		// derivative axes) plus the six memory variables. Amortized per
		// step, the latency term shrinks ~T-fold while the volume grows.
		T := float64(j.TemporalDepth)
		deepPlanes := (3*(4*T-2) + 6*(4*T) + 6*(4*T-4)) / T // per side, per step
		bytesX = 2 * deepPlanes * ny * nz * 4
		bytesY = 2 * deepPlanes * nx * nz * 4
		bytesZ = 2 * deepPlanes * nx * ny * 4
		if j.CoalescedComm {
			msgsStep = 6 / T // one message per neighbor per super-step
			nMsgsPerPhase = 2
		} else {
			msgsStep = 15 * 6 / T
			nMsgsPerPhase = 2 * 15
		}
	}

	if ltsWork < 1 {
		// LTS thins the exchange the same way it thins compute: a rate-r
		// rank sends its faces once per r base steps (window-end messages
		// toward coarser neighbors are likewise 1/r of base-step pairs).
		bytesX *= ltsWork
		bytesY *= ltsWork
		bytesZ *= ltsWork
		msgsStep *= ltsWork
	}

	if v.Async {
		// Asynchronous: transfers of all faces proceed concurrently; the
		// latency term scales with the per-step message count (Eq. 7
		// extended: alpha*nmsgs + bytes*beta), plus the largest per-link
		// volume, plus the MPI_Waitall skew from boundary/interior load
		// imbalance, which grows slowly with scale (§V.A) and which the
		// reduced communication set trims (fewer messages to straggle on).
		maxLink := math.Max(bytesX/2, math.Max(bytesY/2, bytesZ/2))
		b.Comm = m.Alpha*msgsStep + maxLink*m.Beta
		skew := 0.05
		if v.ReducedComm {
			skew = 0.035
		}
		skew *= 1 + math.Log10(float64(j.Cores)+1)/4
		if j.HybridThreads > 1 {
			// §IV.D: thread/data collocation cuts load imbalance ~35%...
			skew *= 0.65
			// ...but idle-thread overhead grows as subdomains shrink
			// toward the decomposition's arithmetic limits.
			idle := 0.02 * float64(j.HybridThreads-1) * (2e5 / cells)
			b.Comp *= 1 + idle
		}
		b.Comm += skew * b.Comp
		if !v.TunedMPI {
			b.Comm *= 1.5
		}
	} else {
		// Synchronous cascade (§IV.A): blocking pairs serialize along the
		// process chain. On single-socket torus nodes (BG/L, XT4) the
		// cascade pipelines well; on NUMA nodes the sockets contend for
		// the NIC and the accrued latency grows with the path length —
		// the observed 96% (BG/L) vs 40% (BG/P) collapse at 40K cores.
		base := nMsgsPerPhase * m.Alpha * float64(px+py+pz) / 3
		numaCascade := nMsgsPerPhase * m.Alpha * 3 * float64(px+py+pz) * (m.NUMAFactor - 1)
		b.Comm = base + numaCascade + (bytesX+bytesY+bytesZ)*m.Beta
		if !v.TunedMPI {
			b.Comm *= 1.5
		}
	}
	if v.Overlap {
		// §IV.C: overlap hides communication behind interior computation;
		// gains are bounded by boundary/interior skew (~60% hidable).
		hidden := math.Min(0.6*b.Comm, 0.5*b.Comp)
		b.Comm -= hidden
	}

	// --- Tsync ---
	if v.Async {
		// One residual MPI_Barrier per iteration plus imbalance wait.
		imb := 0.02
		if v.ReducedComm {
			imb = 0.012
		}
		b.Sync = m.Alpha*math.Log2(float64(j.Cores)+1) + imb*b.Comp
	} else {
		// Barriers after each phase, paced by the slowest NUMA node.
		b.Sync = 4 * m.Alpha * math.Log2(float64(j.Cores)+1) * m.NUMAFactor
	}

	// --- Toutput (gamma * Toutput of Eq. 7), amortized per step ---
	if j.OutputBytesPerStep > 0 && j.IOBandwidth > 0 {
		every := float64(j.OutputEverySteps)
		if every <= 0 {
			every = 1
		}
		avgBytesPerStep := j.OutputBytesPerStep / every
		if v.IOAggregated {
			// Buffered in memory, flushed in huge sequential writes that
			// stream at full file-system bandwidth.
			b.IO = avgBytesPerStep / j.IOBandwidth
			// Writer-rank metadata: each flush opens WriterRanks streams at
			// ~1 ms of MDS service each, amortized over the flush interval.
			if j.WriterRanks > 0 {
				interval := float64(j.AggregateSteps)
				if interval <= 0 {
					interval = every
				}
				b.IO += 1e-3 * float64(j.WriterRanks) / interval
			}
		} else {
			// Unaggregated small writes every recorded step: every rank
			// issues its own write, effective bandwidth collapses, and
			// the metadata storm grows with the writer count — the
			// 49%-overhead regime of §III.E.
			storm := 0.015 * math.Sqrt(float64(j.Cores))
			b.IO = (j.OutputBytesPerStep/(j.IOBandwidth/8) + storm) / every
		}
	}
	return b
}

// Speedup returns T(N,1)/T(N,p) for the job (Eq. 8 form).
func Speedup(j Job) float64 {
	single := j
	single.Cores = 1
	t1 := StepTime(single)
	tp := StepTime(j)
	// T(N,1) has no communication; Eq. 8's numerator is pure compute.
	return (t1.Comp + t1.IO) / tp.Total()
}

// Efficiency returns the parallel efficiency Speedup/p.
func Efficiency(j Job) float64 {
	return Speedup(j) / float64(j.Cores)
}

// SustainedTflops returns the PAPI-style sustained rate of the job.
func SustainedTflops(j Job) float64 {
	step := StepTime(j).Total()
	flops := UsefulFlopsPerCell * float64(j.Global.Cells())
	return flops / step / 1e12
}

// TimeToSolution returns the wall-clock for nsteps steps, in seconds.
func TimeToSolution(j Job, nsteps int) float64 {
	return StepTime(j).Total() * float64(nsteps)
}

// M8Job returns the M8 production configuration on Jaguar: 436 billion
// cells (810x405x85 km at 40 m), 223,074 cores, surface output every 20th
// step aggregated every 20,000 steps at 20 GB/s.
func M8Job(v Version) Job {
	return Job{
		Machine: Jaguar,
		Version: v,
		Global:  grid.Dims{NX: 20250, NY: 10125, NZ: 2125},
		Cores:   223074,
		// 4.5 TB over 112,500 recorded steps (every 20th of 2.25M... the
		// run produced 4.5 TB of surface output in total).
		OutputBytesPerStep:  4.5e12 / 112500,
		OutputEverySteps:    20,
		AggregateSteps:      20000,
		IOBandwidth:         20e9,
		WriterRanks:         670, // one aggregator stream per Jaguar OST
		AuxOverheadFraction: 0.27,
	}
}

// BenchmarkJob returns the 1.4-trillion-point Blue Waters preparation
// benchmark (§V.B): 750x375x79 km at 25 m on the full Jaguar system.
func BenchmarkJob() Job {
	v, _ := VersionByName("7.2")
	return Job{
		Machine: Jaguar,
		Version: v,
		Global:  grid.Dims{NX: 30000, NY: 15000, NZ: 3160},
		Cores:   223074,
	}
}

// ScalingPoint is one point of a Fig. 14 strong-scaling curve.
type ScalingPoint struct {
	Cores      int
	StepTime   float64
	Speedup    float64
	Efficiency float64
	Tflops     float64
}

// StrongScaling sweeps core counts for a fixed problem.
func StrongScaling(m Machine, v Version, g grid.Dims, cores []int) []ScalingPoint {
	base := Job{Machine: m, Version: v, Global: g, Cores: cores[0]}
	t0 := StepTime(base).Total()
	out := make([]ScalingPoint, 0, len(cores))
	for _, p := range cores {
		j := Job{Machine: m, Version: v, Global: g, Cores: p}
		st := StepTime(j).Total()
		out = append(out, ScalingPoint{
			Cores:      p,
			StepTime:   st,
			Speedup:    t0 / st * float64(cores[0]),
			Efficiency: Efficiency(j),
			Tflops:     SustainedTflops(j),
		})
	}
	return out
}
