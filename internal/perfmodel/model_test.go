package perfmodel

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func v(t *testing.T, name string) Version {
	t.Helper()
	ver, ok := VersionByName(name)
	if !ok {
		t.Fatalf("version %s missing", name)
	}
	return ver
}

// shakeOut is the 14.4-billion-point ShakeOut grid of Fig 14.
var shakeOut = grid.Dims{NX: 3000, NY: 1500, NZ: 3200}

func TestTable1MachinesComplete(t *testing.T) {
	if len(Machines) != 6 {
		t.Fatalf("Table 1 has %d machines, want 6", len(Machines))
	}
	wantCores := map[string]int{
		"DataStar": 2048, "Ranger": 60000, "BGW": 128000,
		"Intrepid": 96000, "Kraken": 96000, "Jaguar": 223074,
	}
	for _, m := range Machines {
		if m.Alpha <= 0 || m.Beta <= 0 || m.Tau <= 0 || m.PeakGflops <= 0 {
			t.Errorf("%s: incomplete model parameters", m.Name)
		}
		if wantCores[m.Name] == 0 {
			t.Errorf("unexpected machine %s", m.Name)
		} else if m.CoresUsed != wantCores[m.Name] {
			t.Errorf("%s cores %d, want %d", m.Name, m.CoresUsed, wantCores[m.Name])
		}
	}
	// Jaguar carries the paper's exact constants.
	if Jaguar.Alpha != 5.5e-6 || Jaguar.Beta != 2.5e-10 || Jaguar.Tau != 9.62e-11 {
		t.Error("Jaguar constants differ from §V.A")
	}
}

func TestTable2VersionsMonotoneImprovement(t *testing.T) {
	if len(Versions) != 8 {
		t.Fatalf("Table 2 rows = %d, want 8", len(Versions))
	}
	// On the M8 configuration, each successive version must not be slower.
	prev := math.Inf(1)
	for _, ver := range Versions {
		j := M8Job(ver)
		tt := StepTime(j).Total()
		if tt > prev*1.001 {
			t.Errorf("version %s slower than predecessor: %g > %g", ver.Name, tt, prev)
		}
		prev = tt
	}
	if _, ok := VersionByName("9.9"); ok {
		t.Error("unknown version resolved")
	}
}

// The headline reproduction targets of §V.B.
func TestSustainedPerformanceHeadlines(t *testing.T) {
	m8 := SustainedTflops(M8Job(v(t, "7.2")))
	if m8 < 200 || m8 > 240 {
		t.Errorf("M8 sustained %g Tflop/s, paper reports 220", m8)
	}
	bench := SustainedTflops(BenchmarkJob())
	if bench < 240 || bench > 280 {
		t.Errorf("benchmark sustained %g Tflop/s, paper reports 260", bench)
	}
	if !(bench > m8) {
		t.Error("benchmark should outrun the production M8 (260 vs 220)")
	}
	// Parallel efficiency ~98.6% on 223K cores (§V.A).
	if eff := Efficiency(M8Job(v(t, "7.2"))); eff < 0.95 || eff > 1.05 {
		t.Errorf("M8 efficiency %g, paper predicts 0.986", eff)
	}
}

// §IV.A: the asynchronous redesign tripled Ranger throughput at 60K cores
// (28% -> 75% parallel efficiency).
func TestAsyncRedesignOnRanger(t *testing.T) {
	sync := Job{Machine: Ranger, Version: v(t, "4.0"), Global: shakeOut, Cores: 60000}
	async := Job{Machine: Ranger, Version: v(t, "5.0"), Global: shakeOut, Cores: 60000}
	effS, effA := Efficiency(sync), Efficiency(async)
	if effS > 0.45 {
		t.Errorf("sync efficiency %g, paper ~0.28", effS)
	}
	if effA < 0.70 {
		t.Errorf("async efficiency %g, paper ~0.75", effA)
	}
	ratio := StepTime(sync).Total() / StepTime(async).Total()
	if ratio < 2 {
		t.Errorf("async time reduction %gx, paper ~3x", ratio)
	}
}

// §IV.A: sync worked on single-socket BG/L (96% at 40K) but collapsed on
// NUMA BG/P (40%).
func TestNUMASyncCollapse(t *testing.T) {
	ver := v(t, "4.0")
	bgl := Efficiency(Job{Machine: BGL, Version: ver, Global: shakeOut, Cores: 40000})
	bgp := Efficiency(Job{Machine: Intrepid, Version: ver, Global: shakeOut, Cores: 40000})
	if bgl < 0.90 {
		t.Errorf("BG/L sync efficiency %g, paper ~0.96", bgl)
	}
	if bgp > 0.60 {
		t.Errorf("BG/P sync efficiency %g, paper ~0.40", bgp)
	}
}

// Fig 12: between 65K and 223K cores on Jaguar, v7.2 beats v6.0, I/O stays
// under 2%, and the super-linear cache regime appears at full scale.
func TestFig12BreakdownShape(t *testing.T) {
	for _, cores := range []int{65610, 105000, 223074} {
		j72 := M8Job(v(t, "7.2"))
		j72.Cores = cores
		j60 := M8Job(v(t, "6.0"))
		j60.Cores = cores
		b72, b60 := StepTime(j72), StepTime(j60)
		if b72.Total() >= b60.Total() {
			t.Errorf("%d cores: v7.2 (%g) not faster than v6.0 (%g)", cores, b72.Total(), b60.Total())
		}
		if frac := b72.IO / b72.Total(); frac > 0.02 {
			t.Errorf("%d cores: I/O fraction %g, paper reports 0.6-2%%", cores, frac)
		}
		// Reduced communication lowers both Tcomm and Tsync (§V.A).
		if b72.Comm >= b60.Comm || b72.Sync >= b60.Sync {
			t.Errorf("%d cores: reduced comm did not lower comm/sync", cores)
		}
	}
	// Super-linear compute: per-cell compute time lower at 223K than 65K.
	j65 := M8Job(v(t, "7.2"))
	j65.Cores = 65610
	j223 := M8Job(v(t, "7.2"))
	j223.Cores = 223074
	perCell65 := StepTime(j65).Comp * 65610
	perCell223 := StepTime(j223).Comp * 223074
	if perCell223 >= perCell65 {
		t.Error("no super-linear cache effect at full scale")
	}
}

// Fig 13: time-to-solution drops monotonically from v4.0 to v7.2 on Jaguar
// with a cumulative gain of roughly 2x or better (async ~7x applies to the
// pre-async baseline).
func TestFig13TimeToSolution(t *testing.T) {
	names := []string{"4.0", "5.0", "6.0", "7.1", "7.2"}
	var times []float64
	for _, n := range names {
		times = append(times, TimeToSolution(M8Job(v(t, n)), 1000))
	}
	for i := 1; i < len(times); i++ {
		if times[i] > times[i-1] {
			t.Errorf("version %s slower than %s", names[i], names[i-1])
		}
	}
	if times[0]/times[len(times)-1] < 1.5 {
		t.Errorf("cumulative v4.0->v7.2 gain %gx too small", times[0]/times[len(times)-1])
	}
}

// Fig 14: strong scaling of the M8 problem on Jaguar is near-ideal (and
// super-linear at full scale) after optimization, and the before curves
// fall below the after curves.
func TestFig14StrongScaling(t *testing.T) {
	cores := []int{16384, 32768, 65610, 131072, 223074}
	m8 := grid.Dims{NX: 20250, NY: 10125, NZ: 2125}
	after := StrongScaling(Jaguar, v(t, "7.2"), m8, cores)
	before := StrongScaling(Jaguar, v(t, "6.0"), m8, cores)
	for i := range cores {
		if after[i].StepTime >= before[i].StepTime {
			t.Errorf("%d cores: optimized not faster", cores[i])
		}
	}
	// Efficiency at full scale stays >= 90% (paper: ideal/super-linear).
	last := after[len(after)-1]
	if last.Efficiency < 0.9 {
		t.Errorf("M8 full-scale efficiency %g", last.Efficiency)
	}
	// Speedup from 65610 to 223074 exceeds the core ratio (super-linear).
	s65 := after[2]
	ratio := last.StepTime / s65.StepTime
	ideal := float64(s65.Cores) / float64(last.Cores)
	if ratio > ideal*1.02 {
		t.Errorf("not super-linear: time ratio %g vs ideal %g", ratio, ideal)
	}
	// TeraShake on DataStar and ShakeOut on Ranger scale sub-ideally but
	// positively (speedup grows with cores).
	ts := grid.Dims{NX: 3000, NY: 1500, NZ: 400}
	dsPoints := StrongScaling(DataStar, v(t, "2.0"), ts, []int{240, 480, 1024, 2048})
	for i := 1; i < len(dsPoints); i++ {
		if dsPoints[i].Speedup <= dsPoints[i-1].Speedup {
			t.Errorf("DataStar speedup not increasing at %d cores", dsPoints[i].Cores)
		}
	}
}

// Weak scaling: 90% efficiency between 200 and 204K cores (§V.A) — model
// the same cells/core at both scales.
func TestWeakScaling(t *testing.T) {
	cellsPerCore := 2_000_000
	mk := func(p int) Job {
		side := int(math.Cbrt(float64(cellsPerCore * p)))
		g := grid.Dims{NX: side, NY: side, NZ: side}
		return Job{Machine: Jaguar, Version: v(t, "7.2"), Global: g, Cores: p}
	}
	small := StepTime(mk(200)).Total()
	large := StepTime(mk(204000)).Total()
	weakEff := small / large
	if weakEff < 0.85 || weakEff > 1.15 {
		t.Errorf("weak scaling efficiency %g, paper reports ~0.90", weakEff)
	}
}

func TestIOAggregationInModel(t *testing.T) {
	agg := M8Job(v(t, "7.2"))
	unagg := agg
	unagg.Version.IOAggregated = false
	ba, bu := StepTime(agg), StepTime(unagg)
	fa := ba.IO / ba.Total()
	fu := bu.IO / bu.Total()
	if fa > 0.02 {
		t.Errorf("aggregated I/O fraction %g, want < 2%%", fa)
	}
	if fu < 0.3 {
		t.Errorf("unaggregated I/O fraction %g, paper reports ~49%%", fu)
	}
}

// The aggregated writer-rank metadata term must be real but negligible:
// 670 opens amortized over a 20,000-step flush interval cannot move the
// M8 I/O fraction, while dropping the amortization (flushing every
// recorded step) must make it visible.
func TestWriterRanksMetadataTerm(t *testing.T) {
	with := M8Job(v(t, "7.2"))
	without := with
	without.WriterRanks = 0
	bw, bo := StepTime(with), StepTime(without)
	if bw.IO <= bo.IO {
		t.Error("WriterRanks term added no metadata cost")
	}
	if (bw.IO-bo.IO)/bw.Total() > 1e-4 {
		t.Errorf("amortized writer metadata moved the step time by %g of total",
			(bw.IO-bo.IO)/bw.Total())
	}
	eager := with
	eager.AggregateSteps = eager.OutputEverySteps
	if StepTime(eager).IO <= bw.IO {
		t.Error("per-interval flushing should pay more writer metadata than 20k-step flushes")
	}
}

func TestSpeedupConsistency(t *testing.T) {
	j := Job{Machine: Jaguar, Version: v(t, "7.2"), Global: shakeOut, Cores: 1024}
	s := Speedup(j)
	e := Efficiency(j)
	if math.Abs(s/float64(j.Cores)-e) > 1e-12 {
		t.Error("Efficiency != Speedup/p")
	}
	if s <= 1 {
		t.Error("speedup <= 1 at 1024 cores")
	}
}

// §IV.D: the MPI/OpenMP hybrid helps at moderate scale (less imbalance)
// but loses to pure MPI when subdomains approach the decomposition's
// arithmetic limits — the paper's conclusion for large-scale runs.
func TestHybridThreadsTradeoff(t *testing.T) {
	ver := v(t, "7.2")
	// Moderate scale: big subgrids, imbalance reduction wins.
	moderate := Job{Machine: Jaguar, Version: ver, Global: shakeOut, Cores: 4096}
	hybridM := moderate
	hybridM.HybridThreads = 12
	if !(StepTime(hybridM).Total() < StepTime(moderate).Total()) {
		t.Errorf("hybrid should win at moderate scale: %g vs %g",
			StepTime(hybridM).Total(), StepTime(moderate).Total())
	}
	// Extreme scale: tiny subgrids, idle-thread overhead dominates.
	extreme := Job{Machine: Jaguar, Version: ver,
		Global: grid.Dims{NX: 1500, NY: 750, NZ: 400}, Cores: 223074}
	hybridX := extreme
	hybridX.HybridThreads = 12
	if !(StepTime(hybridX).Total() > StepTime(extreme).Total()) {
		t.Errorf("pure MPI should win at the arithmetic limits: %g vs %g",
			StepTime(hybridX).Total(), StepTime(extreme).Total())
	}
}

// TestLTSSharesScaleStepTime pins the multi-rate pricing: half the domain
// at rate 4 multiplies compute and communication by 0.625; an empty or
// degenerate share list is a no-op.
func TestLTSSharesScaleStepTime(t *testing.T) {
	j := Job{
		Machine: Jaguar, Version: v(t, "7.2"),
		Global: grid.Dims{NX: 320, NY: 320, NZ: 320},
		Cores:  64,
	}
	base := StepTime(j)
	j.LTSShares = []LTSShare{{Rate: 1, Frac: 0.5}, {Rate: 4, Frac: 0.5}}
	lts := StepTime(j)
	if want := base.Comp * 0.625; math.Abs(lts.Comp-want) > 1e-12*want {
		t.Errorf("Comp %.6e, want %.6e", lts.Comp, want)
	}
	if lts.Comm >= base.Comm {
		t.Errorf("Comm did not shrink: %.6e >= %.6e", lts.Comm, base.Comm)
	}
	if f := ltsWorkFactor(nil); f != 1 {
		t.Errorf("nil shares factor %g", f)
	}
	if f := ltsWorkFactor([]LTSShare{{Rate: 0, Frac: 1}}); f != 1 {
		t.Errorf("degenerate shares factor %g", f)
	}
	if f := ltsWorkFactor([]LTSShare{{Rate: 2, Frac: 2}, {Rate: 1, Frac: 2}}); f != 0.75 {
		t.Errorf("unnormalized shares factor %g, want 0.75", f)
	}
}
