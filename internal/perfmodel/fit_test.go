package perfmodel

import (
	"math"
	"testing"
)

func TestMessageCost(t *testing.T) {
	if got := MessageCost(2e-6, 1e-9, 10, 1e6); math.Abs(got-(2e-5+1e-3)) > 1e-15 {
		t.Fatalf("MessageCost = %g, want %g", got, 2e-5+1e-3)
	}
	if got := MessageCost(5e-6, 0, 3, 0); math.Abs(got-1.5e-5) > 1e-18 {
		t.Fatalf("latency-only cost = %g", got)
	}
}

// The fit must recover exact (alpha, beta) from noiseless samples that vary
// message count and byte volume independently — the same decorrelation the
// halo sweep provides by running two subgrid sizes per topology.
func TestFitAlphaBetaRecoversExact(t *testing.T) {
	const alpha, beta = 3.1e-7, 9.4e-10
	var samples []CommSample
	for _, msgs := range []int{8, 24, 48} {
		for _, bytes := range []float64{4 << 10, 32 << 10, 256 << 10} {
			samples = append(samples, CommSample{
				Msgs: msgs, Bytes: bytes,
				Sec: MessageCost(alpha, beta, msgs, bytes),
			})
		}
	}
	a, b, ok := FitAlphaBeta(samples)
	if !ok {
		t.Fatal("fit reported singular system on well-conditioned samples")
	}
	if math.Abs(a-alpha) > 1e-6*alpha || math.Abs(b-beta) > 1e-6*beta {
		t.Fatalf("fit (%g, %g), want (%g, %g)", a, b, alpha, beta)
	}
}

func TestFitAlphaBetaRejectsDegenerateInputs(t *testing.T) {
	if _, _, ok := FitAlphaBeta(nil); ok {
		t.Error("fit succeeded on no samples")
	}
	if _, _, ok := FitAlphaBeta([]CommSample{{Msgs: 4, Bytes: 100, Sec: 1e-5}}); ok {
		t.Error("fit succeeded on one sample")
	}
	// msgs proportional to bytes in every sample: the two terms cannot be
	// separated and the near-singular guard must refuse a solution.
	var prop []CommSample
	for _, n := range []int{2, 4, 8, 16} {
		prop = append(prop, CommSample{Msgs: n, Bytes: float64(n) * 1024, Sec: float64(n) * 1e-6})
	}
	if _, _, ok := FitAlphaBeta(prop); ok {
		t.Error("fit succeeded on perfectly correlated samples")
	}
	// Samples with non-positive time or no traffic are skipped, not fitted.
	junk := []CommSample{{Msgs: 4, Bytes: 100, Sec: 0}, {Msgs: 0, Bytes: 0, Sec: 1}}
	if _, _, ok := FitAlphaBeta(junk); ok {
		t.Error("fit succeeded on junk-only samples")
	}
}

// Eq. 7/8 extension: the coalesced layout sends 12 messages per step instead
// of 54 (or 36 reduced), so on latency-bound machines the modeled comm term
// must drop while compute is untouched.
func TestCoalescedCommReducesModeledStepTime(t *testing.T) {
	for _, ver := range []string{"5.0", "6.0", "7.2"} {
		j := M8Job(v(t, ver))
		j.Cores = 223074
		per := StepTime(j)
		j.CoalescedComm = true
		co := StepTime(j)
		if co.Comm >= per.Comm {
			t.Errorf("v%s: coalesced comm %g not below per-field %g", ver, co.Comm, per.Comm)
		}
		if co.Comp != per.Comp {
			t.Errorf("v%s: coalescing changed compute time", ver)
		}
		// The latency saving is alpha*(Δmsgs); check the async models drop
		// by at least half that (the link volume term is unchanged).
		if per.Comm-co.Comm <= 0 {
			t.Errorf("v%s: no latency saving", ver)
		}
	}
}
