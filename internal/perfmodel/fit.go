package perfmodel

// Fitting the Eq. 7/8 per-message extension against measured exchange
// sweeps (cmd/benchtab -exp halo): the exchange time of a phase is modeled
// as MessageCost = alpha*nmsgs + bytes*beta, and (alpha, beta) are
// recovered from measurements by linear least squares. Decorrelating the
// two terms requires samples that vary byte volume independently of
// message count — the halo sweep runs two subgrid sizes per topology, so
// bytes change 4x while counts stay fixed.

// MessageCost prices one exchange: the per-message latency term plus the
// volume term (alpha in seconds per message, beta in seconds per byte).
func MessageCost(alpha, beta float64, msgs int, bytes float64) float64 {
	return alpha*float64(msgs) + beta*bytes
}

// CommSample is one measured exchange: msgs messages carrying bytes total,
// observed to take sec seconds.
type CommSample struct {
	Msgs  int
	Bytes float64
	Sec   float64
}

// FitAlphaBeta recovers (alpha, beta) from measured samples by relative
// least squares: min sum ((alpha*msgs + beta*bytes - sec)/sec)^2. The
// 1/sec weighting keeps microsecond-scale (latency-dominated) samples
// from being drowned by millisecond-scale (bandwidth-dominated) ones —
// without it, alpha is determined entirely by the largest cells, where
// the latency term is in the noise. It returns ok=false when the samples
// cannot separate the two terms (fewer than two usable samples, or msgs
// and bytes perfectly correlated).
func FitAlphaBeta(samples []CommSample) (alpha, beta float64, ok bool) {
	var smm, smb, sbb, sm, sb float64
	n := 0
	for _, s := range samples {
		if s.Sec <= 0 || (s.Msgs == 0 && s.Bytes == 0) {
			continue
		}
		m := float64(s.Msgs) / s.Sec
		b := s.Bytes / s.Sec
		smm += m * m
		smb += m * b
		sbb += b * b
		sm += m
		sb += b
		n++
	}
	if n < 2 {
		return 0, 0, false
	}
	det := smm*sbb - smb*smb
	if det == 0 || smm == 0 || sbb == 0 {
		return 0, 0, false
	}
	// Guard against near-singular systems (msgs proportional to bytes
	// across every sample): the determinant collapses relative to the
	// matrix scale and the solution is numerically meaningless.
	if det < 1e-9*smm*sbb {
		return 0, 0, false
	}
	alpha = (sm*sbb - sb*smb) / det
	beta = (smm*sb - smb*sm) / det
	return alpha, beta, true
}
