// Package perfmodel implements the analytic performance model of §V (Eq. 7
// and Eq. 8), parameterized by the machine characteristics of Table 1 and
// the optimization history of Table 2. It prices one solver time step as
//
//	Ttot = Tcomp + Tcomm + Tsync + gamma*Toutput            (Eq. 7)
//
// with the communication cost alpha + k*beta per message (Minkoff 2002)
// and the 3D halo volumes of Eq. 8. The model is what lets this
// reproduction regenerate the paper's petascale scaling figures (Fig.
// 12–14) without 223,074 physical cores: the paper itself validates the
// same equations against its production runs (98.6% predicted parallel
// efficiency on Jaguar).
package perfmodel

// Machine is one row of Table 1 plus the model parameters (alpha, beta,
// tau) of §V.A. Values for Jaguar are the paper's; the others are set from
// the published interconnect characteristics of each system.
type Machine struct {
	Name         string
	Location     string
	Processor    string
	Interconnect string
	PeakGflops   float64 // per core, Table 1
	CoresUsed    int     // Table 1 production scale

	Alpha float64 // message latency, s
	Beta  float64 // transfer time per byte, s
	Tau   float64 // peak-machine time per flop, s

	// StencilEfficiency is the fraction of peak a fully optimized
	// memory-bound stencil sustains on this machine (~10% on Jaguar, §V.B).
	StencilEfficiency float64

	// NUMAFactor scales synchronous-cascade latency: sockets contending
	// for the NIC on NUMA nodes (§IV.A). 1 on single-socket BG nodes.
	NUMAFactor float64

	// CacheCellsPerCore is the subgrid size (cells) below which the
	// working set fits in L2 and the super-linear cache bonus applies.
	CacheCellsPerCore float64
}

// The production machines of Table 1.
var (
	DataStar = Machine{
		Name: "DataStar", Location: "SDSC", Processor: "1.5/1.7GHz Power4",
		Interconnect: "IBM Fat Tree", PeakGflops: 6.0, CoresUsed: 2048,
		Alpha: 8e-6, Beta: 7e-10, Tau: 1.0 / 6.0e9,
		StencilEfficiency: 0.085, NUMAFactor: 2, CacheCellsPerCore: 6e5,
	}
	Ranger = Machine{
		Name: "Ranger", Location: "TACC", Processor: "2.3GHz AMD Barcelona",
		Interconnect: "InfiniBand Fat Tree", PeakGflops: 9.2, CoresUsed: 60000,
		Alpha: 3e-6, Beta: 4e-10, Tau: 1.0 / 9.2e9,
		StencilEfficiency: 0.09, NUMAFactor: 4, CacheCellsPerCore: 5e5,
	}
	BGL = Machine{
		Name: "BGW", Location: "IBM Watson", Processor: "700MHz PowerPC",
		Interconnect: "3D Torus", PeakGflops: 2.8, CoresUsed: 128000,
		Alpha: 3.5e-6, Beta: 6e-10, Tau: 1.0 / 2.8e9,
		StencilEfficiency: 0.12, NUMAFactor: 1, CacheCellsPerCore: 3e5,
	}
	Intrepid = Machine{
		Name: "Intrepid", Location: "ANL", Processor: "850MHz PowerPC",
		Interconnect: "3D Torus (BG/P)", PeakGflops: 3.4, CoresUsed: 96000,
		Alpha: 3e-6, Beta: 5e-10, Tau: 1.0 / 3.4e9,
		StencilEfficiency: 0.115, NUMAFactor: 8, CacheCellsPerCore: 3e5,
	}
	Kraken = Machine{
		Name: "Kraken", Location: "NICS", Processor: "2.6GHz Istanbul",
		Interconnect: "SeaStar2+ 3D Torus", PeakGflops: 10.4, CoresUsed: 96000,
		Alpha: 6e-6, Beta: 2.8e-10, Tau: 9.62e-11,
		StencilEfficiency: 0.1225, NUMAFactor: 2, CacheCellsPerCore: 2.5e6,
	}
	Jaguar = Machine{
		Name: "Jaguar", Location: "ORNL", Processor: "2.6GHz Istanbul",
		Interconnect: "SeaStar2+ 3D Torus", PeakGflops: 10.4, CoresUsed: 223074,
		// The paper's measured constants (§V.A).
		Alpha: 5.5e-6, Beta: 2.5e-10, Tau: 9.62e-11,
		StencilEfficiency: 0.1225, NUMAFactor: 2, CacheCellsPerCore: 2.5e6,
	}
)

// Machines lists Table 1 in publication order.
var Machines = []Machine{DataStar, Ranger, BGL, Intrepid, Kraken, Jaguar}

// Version is one row of Table 2: which optimizations a code version has.
type Version struct {
	Name string
	Year int

	Async        bool // asynchronous communication (v5.0)
	ReducedComm  bool // algorithm-level communication reduction (v7.2)
	Overlap      bool // computation/communication overlap (§IV.C)
	SingleCPUOpt bool // reduced divisions (+31%, v6.0)
	Unrolled     bool // loop unrolling (+2%, v6.0)
	CacheBlocked bool // cache blocking (+7%, v7.1)
	IOAggregated bool // output aggregation (49% -> <2%)
	TunedMPI     bool // MPI tuning of v2.0
}

// Versions is the Table 2 evolution: TeraShake-K (v1.0) through M8 (v7.2).
var Versions = []Version{
	{Name: "1.0", Year: 2004},
	{Name: "2.0", Year: 2005, TunedMPI: true},
	{Name: "3.0", Year: 2006, TunedMPI: true, IOAggregated: true},
	{Name: "4.0", Year: 2007, TunedMPI: true, IOAggregated: true},
	{Name: "5.0", Year: 2008, TunedMPI: true, IOAggregated: true, Async: true},
	{Name: "6.0", Year: 2009, TunedMPI: true, IOAggregated: true, Async: true, SingleCPUOpt: true, Unrolled: true},
	{Name: "7.1", Year: 2010, TunedMPI: true, IOAggregated: true, Async: true, SingleCPUOpt: true, Unrolled: true, CacheBlocked: true},
	{Name: "7.2", Year: 2010, TunedMPI: true, IOAggregated: true, Async: true, SingleCPUOpt: true, Unrolled: true, CacheBlocked: true, ReducedComm: true},
}

// VersionByName finds a Table 2 row.
func VersionByName(name string) (Version, bool) {
	for _, v := range Versions {
		if v.Name == name {
			return v, true
		}
	}
	return Version{}, false
}
