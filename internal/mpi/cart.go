package mpi

import "fmt"

// Cart is a 3D Cartesian process topology over a world of PX*PY*PZ ranks,
// mirroring the MPI_Cart_create topology AWP-ODC builds for its 3D domain
// decomposition. Ranks are laid out x-fastest. The topology is
// non-periodic: neighbors off the edge are reported as -1, matching
// MPI_PROC_NULL usage in the original code.
type Cart struct {
	PX, PY, PZ int
}

// NewCart validates and returns a Cartesian topology.
func NewCart(px, py, pz int) Cart {
	if px <= 0 || py <= 0 || pz <= 0 {
		panic(fmt.Sprintf("mpi: invalid cart %dx%dx%d", px, py, pz))
	}
	return Cart{px, py, pz}
}

// Size returns the number of ranks in the topology.
func (t Cart) Size() int { return t.PX * t.PY * t.PZ }

// Coords returns the (cx, cy, cz) coordinates of rank.
func (t Cart) Coords(rank int) (cx, cy, cz int) {
	if rank < 0 || rank >= t.Size() {
		panic(fmt.Sprintf("mpi: rank %d outside cart of size %d", rank, t.Size()))
	}
	cx = rank % t.PX
	cy = (rank / t.PX) % t.PY
	cz = rank / (t.PX * t.PY)
	return
}

// Rank returns the rank at coordinates (cx, cy, cz).
func (t Cart) Rank(cx, cy, cz int) int {
	if cx < 0 || cx >= t.PX || cy < 0 || cy >= t.PY || cz < 0 || cz >= t.PZ {
		panic(fmt.Sprintf("mpi: coords (%d,%d,%d) outside cart %dx%dx%d", cx, cy, cz, t.PX, t.PY, t.PZ))
	}
	return (cz*t.PY+cy)*t.PX + cx
}

// Neighbor returns the rank one step along axis in direction dir (-1 or
// +1), or -1 if that step leaves the topology.
func (t Cart) Neighbor(rank, axis, dir int) int {
	cx, cy, cz := t.Coords(rank)
	switch axis {
	case 0:
		cx += dir
		if cx < 0 || cx >= t.PX {
			return -1
		}
	case 1:
		cy += dir
		if cy < 0 || cy >= t.PY {
			return -1
		}
	case 2:
		cz += dir
		if cz < 0 || cz >= t.PZ {
			return -1
		}
	default:
		panic(fmt.Sprintf("mpi: invalid axis %d", axis))
	}
	return t.Rank(cx, cy, cz)
}

// OnBoundary reports whether rank touches the domain face on the given
// axis and direction — such ranks own absorbing-boundary work in the
// solver (§III.A).
func (t Cart) OnBoundary(rank, axis, dir int) bool {
	return t.Neighbor(rank, axis, dir) == -1
}
