package mpi

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestWorldSize(t *testing.T) {
	w := NewWorld(4)
	if w.Size() != 4 {
		t.Fatalf("Size = %d", w.Size())
	}
}

func TestNewWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(0)
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float32{1, 2, 3})
		} else {
			buf := make([]float32, 3)
			st := c.MustRecv(buf, 0, 7)
			if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
				t.Errorf("status = %+v", st)
			}
			if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
				t.Errorf("data = %v", buf)
			}
		}
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			data := []float32{42}
			c.Send(1, 0, data)
			data[0] = -1 // must not affect the in-flight message
		} else {
			buf := make([]float32, 1)
			c.Recv(buf, 0, 0)
			if buf[0] != 42 {
				t.Errorf("got %v, want 42 (send must copy)", buf[0])
			}
		}
	})
}

func TestPerPairFIFOOrdering(t *testing.T) {
	w := NewWorld(2)
	const n = 100
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 5, []float32{float32(i)})
			}
		} else {
			buf := make([]float32, 1)
			for i := 0; i < n; i++ {
				c.Recv(buf, 0, 5)
				if int(buf[0]) != i {
					t.Errorf("message %d arrived out of order: %v", i, buf[0])
					return
				}
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	// The paper's async model relies on unique tags: messages sent in one
	// order can be received in another by tag.
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float32{1})
			c.Send(1, 2, []float32{2})
			c.Send(1, 3, []float32{3})
		} else {
			buf := make([]float32, 1)
			for _, tag := range []int{3, 1, 2} {
				st := c.MustRecv(buf, 0, tag)
				if int(buf[0]) != tag || st.Tag != tag {
					t.Errorf("tag %d: got %v", tag, buf[0])
				}
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			buf := make([]float32, 1)
			sum := float32(0)
			for i := 0; i < 2; i++ {
				st := c.MustRecv(buf, AnySource, AnyTag)
				if st.Source != 1 && st.Source != 2 {
					t.Errorf("unexpected source %d", st.Source)
				}
				sum += buf[0]
			}
			if sum != 30 {
				t.Errorf("sum = %v, want 30", sum)
			}
		case 1:
			c.Send(0, 11, []float32{10})
		case 2:
			c.Send(0, 22, []float32{20})
		}
	})
}

func TestRecvOverflowError(t *testing.T) {
	w := NewWorld(2)
	err := w.RunErr(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []float32{1, 2, 3})
			return nil
		}
		buf := make([]float32, 1)
		if _, err := c.Recv(buf, 0, 0); err == nil {
			return errors.New("expected overflow error from Recv")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMustRecvOverflowPanicPropagates(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Run propagating rank panic")
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float32{1, 2, 3})
		} else {
			buf := make([]float32, 1)
			c.MustRecv(buf, 0, 0)
		}
	})
}

func TestRecvInvalidRankError(t *testing.T) {
	w := NewWorld(2)
	err := w.RunErr(func(c *Comm) error {
		buf := make([]float32, 1)
		if _, err := c.Recv(buf, 7, 0); err == nil {
			return errors.New("expected invalid-rank error from Recv")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		peer := 1 - c.Rank()
		nmsg := 4
		recvBufs := make([][]float32, nmsg)
		reqs := make([]*Request, 0, 2*nmsg)
		for m := 0; m < nmsg; m++ {
			recvBufs[m] = make([]float32, 2)
			reqs = append(reqs, c.Irecv(recvBufs[m], peer, m))
		}
		for m := 0; m < nmsg; m++ {
			reqs = append(reqs, c.Isend(peer, m, []float32{float32(c.Rank()), float32(m)}))
		}
		Waitall(reqs)
		for m := 0; m < nmsg; m++ {
			if int(recvBufs[m][0]) != peer || int(recvBufs[m][1]) != m {
				t.Errorf("rank %d msg %d: got %v", c.Rank(), m, recvBufs[m])
			}
		}
	})
}

func TestWaitIdempotent(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			r := c.Isend(1, 0, []float32{5})
			r.Wait()
			r.Wait()
		} else {
			buf := make([]float32, 1)
			r := c.Irecv(buf, 0, 0)
			s1 := r.Wait()
			s2 := r.Wait()
			if s1 != s2 {
				t.Errorf("Wait not idempotent: %+v vs %+v", s1, s2)
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	w := NewWorld(8)
	var phase atomic.Int32
	w.Run(func(c *Comm) {
		for iter := 0; iter < 20; iter++ {
			if c.Rank() == iter%8 {
				time.Sleep(time.Microsecond)
				phase.Store(int32(iter))
			}
			c.Barrier()
			if got := phase.Load(); got != int32(iter) {
				t.Errorf("iter %d: rank %d saw phase %d", iter, c.Rank(), got)
				return
			}
			c.Barrier()
		}
	})
}

func TestBcast(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		buf := make([]float32, 3)
		if c.Rank() == 2 {
			copy(buf, []float32{9, 8, 7})
		}
		c.Bcast(buf, 2)
		if buf[0] != 9 || buf[1] != 8 || buf[2] != 7 {
			t.Errorf("rank %d: bcast got %v", c.Rank(), buf)
		}
	})
}

func TestReduceSumMaxMin(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		v := []float64{float64(c.Rank() + 1), float64(-c.Rank())}
		got := c.Reduce(v, Sum, 0)
		if c.Rank() == 0 {
			if got[0] != 10 || got[1] != -6 {
				t.Errorf("reduce sum = %v", got)
			}
		}
		gmax := c.Allreduce([]float64{float64(c.Rank())}, Max)
		if gmax[0] != 3 {
			t.Errorf("rank %d allreduce max = %v", c.Rank(), gmax)
		}
		gmin := c.Allreduce([]float64{float64(c.Rank())}, Min)
		if gmin[0] != 0 {
			t.Errorf("rank %d allreduce min = %v", c.Rank(), gmin)
		}
	})
}

func TestAllreducePrecision(t *testing.T) {
	// float64 values ride the float32 transport via hi/lo splitting; check
	// precision holds to ~1e-14 relative.
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		v := []float64{1.0 + 1e-12*float64(c.Rank())}
		got := c.Allreduce(v, Sum)
		want := 3.0 + 1e-12*(0+1+2)
		if math.Abs(got[0]-want) > 1e-13 {
			t.Errorf("allreduce precision: got %.17g want %.17g", got[0], want)
		}
	})
}

func TestGatherUnequalSizes(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		data := make([]float32, c.Rank()+1)
		for i := range data {
			data[i] = float32(c.Rank()*10 + i)
		}
		out := c.Gather(data, 0)
		if c.Rank() != 0 {
			if out != nil {
				t.Errorf("non-root gather result should be nil")
			}
			return
		}
		for r := 0; r < 3; r++ {
			if len(out[r]) != r+1 {
				t.Errorf("rank %d payload len = %d", r, len(out[r]))
			}
			for i, v := range out[r] {
				if int(v) != r*10+i {
					t.Errorf("out[%d][%d] = %v", r, i, v)
				}
			}
		}
	})
}

func TestPanicPropagationNoDeadlock(t *testing.T) {
	w := NewWorld(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected Run to re-panic")
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Other ranks block on a recv that will never be satisfied; abort
		// must wake them.
		defer func() { recover() }() // swallow the induced "aborted" panic
		buf := make([]float32, 1)
		c.Recv(buf, 1, 99)
	})
}

func TestRingPassing(t *testing.T) {
	const n = 6
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() - 1 + n) % n
		buf := make([]float32, 1)
		if c.Rank() == 0 {
			c.Send(next, 0, []float32{1})
			c.Recv(buf, prev, 0)
			if buf[0] != float32(n) {
				t.Errorf("ring total = %v, want %d", buf[0], n)
			}
		} else {
			c.Recv(buf, prev, 0)
			c.Send(next, 0, []float32{buf[0] + 1})
		}
	})
}

// Property: with random point-to-point traffic over random tags, every
// message sent is received exactly once with intact payload.
func TestQuickRandomTraffic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 2 + rng.Intn(4)
		nmsg := 1 + rng.Intn(8)
		w := NewWorld(size)
		total := make([]float64, size) // per-destination expected sums
		type planned struct {
			dst, tag int
			val      float32
		}
		plans := make([][]planned, size)
		for s := 0; s < size; s++ {
			for m := 0; m < nmsg; m++ {
				d := rng.Intn(size)
				v := rng.Float32()
				plans[s] = append(plans[s], planned{d, s*1000 + m, v})
				total[d] += float64(v)
			}
		}
		counts := make([]int, size)
		for s := range plans {
			for _, p := range plans[s] {
				counts[p.dst]++
			}
		}
		sums := make([]float64, size)
		w.Run(func(c *Comm) {
			for _, p := range plans[c.Rank()] {
				c.Send(p.dst, p.tag, []float32{p.val})
			}
			buf := make([]float32, 1)
			var local float64
			for i := 0; i < counts[c.Rank()]; i++ {
				c.Recv(buf, AnySource, AnyTag)
				local += float64(buf[0])
			}
			sums[c.Rank()] = local
		})
		for r := range sums {
			if math.Abs(sums[r]-total[r]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCartCoordsRankRoundTrip(t *testing.T) {
	topo := NewCart(3, 4, 2)
	if topo.Size() != 24 {
		t.Fatalf("Size = %d", topo.Size())
	}
	for r := 0; r < topo.Size(); r++ {
		cx, cy, cz := topo.Coords(r)
		if got := topo.Rank(cx, cy, cz); got != r {
			t.Fatalf("round trip failed: %d -> (%d,%d,%d) -> %d", r, cx, cy, cz, got)
		}
	}
}

func TestCartNeighbors(t *testing.T) {
	topo := NewCart(2, 2, 2)
	r := topo.Rank(0, 0, 0)
	if n := topo.Neighbor(r, 0, -1); n != -1 {
		t.Errorf("low-x neighbor of corner = %d, want -1", n)
	}
	if n := topo.Neighbor(r, 0, +1); n != topo.Rank(1, 0, 0) {
		t.Errorf("high-x neighbor = %d", n)
	}
	if n := topo.Neighbor(r, 1, +1); n != topo.Rank(0, 1, 0) {
		t.Errorf("high-y neighbor = %d", n)
	}
	if n := topo.Neighbor(r, 2, +1); n != topo.Rank(0, 0, 1) {
		t.Errorf("high-z neighbor = %d", n)
	}
	if !topo.OnBoundary(r, 0, -1) || topo.OnBoundary(r, 0, +1) {
		t.Error("OnBoundary wrong for corner rank")
	}
}

func TestCartPanics(t *testing.T) {
	topo := NewCart(2, 2, 2)
	cases := []func(){
		func() { NewCart(0, 1, 1) },
		func() { topo.Coords(8) },
		func() { topo.Rank(2, 0, 0) },
		func() { topo.Neighbor(0, 3, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNeighborSymmetry(t *testing.T) {
	topo := NewCart(3, 2, 4)
	for r := 0; r < topo.Size(); r++ {
		for axis := 0; axis < 3; axis++ {
			for _, dir := range []int{-1, 1} {
				n := topo.Neighbor(r, axis, dir)
				if n == -1 {
					continue
				}
				if back := topo.Neighbor(n, axis, -dir); back != r {
					t.Fatalf("asymmetric: %d -> %d -> %d", r, n, back)
				}
			}
		}
	}
}

func TestSortedTags(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float32{1})
			c.Send(1, 2, []float32{1})
			c.Send(1, 9, []float32{1})
			c.Send(1, 2, []float32{1})
		} else {
			buf := make([]float32, 1)
			c.Recv(buf, 0, 9) // ensure all arrived (FIFO per pair: 9 is last)
			tags := c.SortedTags()
			if len(tags) != 2 || tags[0] != 2 || tags[1] != 5 {
				t.Errorf("tags = %v", tags)
			}
		}
	})
}

func TestLinkLatencyChargesPerMessage(t *testing.T) {
	const alpha = 200 * time.Microsecond
	const n = 20
	run := func(w *World) time.Duration {
		var elapsed time.Duration
		w.Run(func(c *Comm) {
			c.Barrier()
			t0 := time.Now()
			if c.Rank() == 0 {
				for i := 0; i < n; i++ {
					c.Send(1, i, []float32{float32(i)})
				}
			} else {
				buf := make([]float32, 1)
				for i := 0; i < n; i++ {
					c.MustRecv(buf, 0, i)
				}
			}
			c.Barrier()
			if c.Rank() == 0 {
				elapsed = time.Since(t0)
			}
		})
		return elapsed
	}

	armed := NewWorld(2)
	armed.SetLinkLatency(alpha)
	if got := run(armed); got < n*alpha {
		t.Errorf("armed world took %v, want >= %v (n*alpha)", got, n*alpha)
	}

	// Disarming restores the raw transport; a full per-message charge
	// would make this run as slow as the armed one.
	disarmed := NewWorld(2)
	disarmed.SetLinkLatency(alpha)
	disarmed.SetLinkLatency(0)
	if got := run(disarmed); got >= n*alpha {
		t.Errorf("disarmed world took %v, want < %v", got, n*alpha)
	}
}

func TestLinkLatencyZeroValueUnarmed(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float32{1})
		} else {
			buf := make([]float32, 1)
			c.MustRecv(buf, 0, 0)
		}
	})
	// Reaching here without stalls or panics is the assertion; the zero
	// value of linkAlphaNs must leave deliver untouched.
}
