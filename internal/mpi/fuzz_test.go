package mpi

import "testing"

// FuzzBufpoolClasses checks the half-step size-class arithmetic that the
// buffer-lending pool relies on: a Get must always receive enough
// capacity, round-up waste must stay under 50%, and a buffer returned by
// PutBuffer must land in a class whose nominal capacity a future Get can
// trust.
func FuzzBufpoolClasses(f *testing.F) {
	f.Add(1)
	f.Add(2)
	f.Add(3)
	f.Add(4)
	f.Add(1023)
	f.Add(1024)
	f.Add(1025)
	f.Add(3 << 10)
	f.Add(3<<10 + 1)
	f.Add(2 * 34 * 18) // a typical coalesced X-face: 2 planes of 34x18
	f.Fuzz(func(t *testing.T, n int) {
		if n < 1 {
			n = 1 - n
		}
		n = n%(1<<22) + 1

		c := classFor(n)
		capc := classCapacity(c)
		if capc < n {
			t.Fatalf("classFor(%d) = %d with capacity %d < n", n, c, capc)
		}
		// Class 1 (nominal capacity 3/2) is a phantom: classFor and
		// putClassFor both skip it, and classCapacity is undefined there.
		if prev := c - 1; prev >= 0 && prev != 1 && classCapacity(prev) >= n {
			t.Fatalf("classFor(%d) = %d not minimal: class %d capacity %d suffices",
				n, c, prev, classCapacity(prev))
		}
		// Half steps cap the round-up waste: 2*cap < 3*n for n >= 2.
		if n >= 2 && 2*capc >= 3*n {
			t.Fatalf("class capacity %d wastes more than 50%% over n=%d", capc, n)
		}
		// A pooled buffer is stored at exactly its nominal capacity, so
		// put(get(n)) must be the identity on classes.
		if got := putClassFor(capc); got != c {
			t.Fatalf("putClassFor(classCapacity(%d)) = %d, want %d", c, got, c)
		}
		// One value short of nominal must demote to a smaller class —
		// otherwise a Get could hand out undersized capacity.
		if capc > 1 {
			if got := putClassFor(capc - 1); got >= c {
				t.Fatalf("putClassFor(%d) = %d, want < %d", capc-1, got, c)
			}
		}
		if pc := putClassFor(n); classCapacity(pc) > n {
			t.Fatalf("putClassFor(%d) = %d overstates capacity %d",
				n, pc, classCapacity(pc))
		}

		b := GetBuffer(n)
		if len(b) != n {
			t.Fatalf("GetBuffer(%d) len = %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetBuffer(%d) cap = %d", n, cap(b))
		}
		PutBuffer(b)
		// Round trip: the recycled buffer must come back with full
		// length available for any request its class covers.
		b2 := GetBuffer(capc)
		if len(b2) != capc {
			t.Fatalf("GetBuffer(%d) after recycle: len = %d", capc, len(b2))
		}
		PutBuffer(b2)
	})
}
