package mpi

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzBufpoolClasses checks the half-step size-class arithmetic that the
// buffer-lending pool relies on: a Get must always receive enough
// capacity, round-up waste must stay under 50%, and a buffer returned by
// PutBuffer must land in a class whose nominal capacity a future Get can
// trust.
func FuzzBufpoolClasses(f *testing.F) {
	f.Add(1)
	f.Add(2)
	f.Add(3)
	f.Add(4)
	f.Add(1023)
	f.Add(1024)
	f.Add(1025)
	f.Add(3 << 10)
	f.Add(3<<10 + 1)
	f.Add(2 * 34 * 18) // a typical coalesced X-face: 2 planes of 34x18
	f.Fuzz(func(t *testing.T, n int) {
		if n < 1 {
			n = 1 - n
		}
		n = n%(1<<22) + 1

		c := classFor(n)
		capc := classCapacity(c)
		if capc < n {
			t.Fatalf("classFor(%d) = %d with capacity %d < n", n, c, capc)
		}
		// Class 1 (nominal capacity 3/2) is a phantom: classFor and
		// putClassFor both skip it, and classCapacity is undefined there.
		if prev := c - 1; prev >= 0 && prev != 1 && classCapacity(prev) >= n {
			t.Fatalf("classFor(%d) = %d not minimal: class %d capacity %d suffices",
				n, c, prev, classCapacity(prev))
		}
		// Half steps cap the round-up waste: 2*cap < 3*n for n >= 2.
		if n >= 2 && 2*capc >= 3*n {
			t.Fatalf("class capacity %d wastes more than 50%% over n=%d", capc, n)
		}
		// A pooled buffer is stored at exactly its nominal capacity, so
		// put(get(n)) must be the identity on classes.
		if got := putClassFor(capc); got != c {
			t.Fatalf("putClassFor(classCapacity(%d)) = %d, want %d", c, got, c)
		}
		// One value short of nominal must demote to a smaller class —
		// otherwise a Get could hand out undersized capacity.
		if capc > 1 {
			if got := putClassFor(capc - 1); got >= c {
				t.Fatalf("putClassFor(%d) = %d, want < %d", capc-1, got, c)
			}
		}
		if pc := putClassFor(n); classCapacity(pc) > n {
			t.Fatalf("putClassFor(%d) = %d overstates capacity %d",
				n, pc, classCapacity(pc))
		}

		b := GetBuffer(n)
		if len(b) != n {
			t.Fatalf("GetBuffer(%d) len = %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetBuffer(%d) cap = %d", n, cap(b))
		}
		PutBuffer(b)
		// Round trip: the recycled buffer must come back with full
		// length available for any request its class covers.
		b2 := GetBuffer(capc)
		if len(b2) != capc {
			t.Fatalf("GetBuffer(%d) after recycle: len = %d", capc, len(b2))
		}
		PutBuffer(b2)
	})
}

// FuzzTreeAllreduce drives arbitrary float64 vectors through the
// binomial-tree Allreduce and checks the split-float (hi/lo float32
// pair) payload encoding survives the multi-hop schedule: unlike the
// flat reduce, a tree accumulator is unpacked, combined, and re-packed
// at every level, so any non-idempotence in the encoding would compound
// along the path. Properties: every rank returns the identical vector,
// the result matches a serially computed reference within the
// encoding's precision, and all-zero lanes (the LTS zero-filled
// sentinel wire format of solver/lts.go) come back exactly zero.
func FuzzTreeAllreduce(f *testing.F) {
	// Seed: the LTS rate-assignment case — a Max reduction over a
	// zero-filled sentinel vector where each rank owns one lane holding
	// its (always positive) stable dt.
	ltsSeed := make([]byte, 4*8)
	binary.LittleEndian.PutUint64(ltsSeed[0:], math.Float64bits(3.61e-3))
	binary.LittleEndian.PutUint64(ltsSeed[8:], math.Float64bits(0))
	binary.LittleEndian.PutUint64(ltsSeed[16:], math.Float64bits(7.2e-3))
	binary.LittleEndian.PutUint64(ltsSeed[24:], math.Float64bits(0))
	f.Add(7, 0, ltsSeed)
	f.Add(2, 1, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(8, 2, ltsSeed[:8])
	f.Add(9, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, p, opSel int, raw []byte) {
		if p < 0 {
			p = -p
		}
		P := 2 + p%8 // real worlds of 2..9 ranks: even, odd, ragged trees
		lanes := len(raw) / 8
		if lanes == 0 {
			return
		}
		if lanes > 8 {
			lanes = 8
		}
		base := make([]float64, lanes)
		for i := range base {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			// Keep magnitudes where float32 hi/lo splitting is exact
			// enough to reason about (the transport's documented domain).
			if math.Abs(v) > 1e30 {
				v = math.Mod(v, 1e30)
			}
			base[i] = v
		}
		ops := []Op{Max, Min, Sum}
		opNames := []string{"max", "min", "sum"}
		if opSel < 0 {
			opSel = -opSel
		}
		op := ops[opSel%3]
		opName := opNames[opSel%3]

		// Rank r contributes base scaled by a rank-dependent factor, so
		// lanes disagree across ranks; encode through the same packing
		// the wire uses so the serial reference sees what ranks hold.
		contrib := func(r, lane int) float64 {
			v := base[lane] * (1 + float64(r)/8)
			hi := float32(v)
			return float64(hi) + float64(float32(v-float64(hi)))
		}
		ref := make([]float64, lanes)
		for lane := 0; lane < lanes; lane++ {
			acc := contrib(0, lane)
			for r := 1; r < P; r++ {
				acc = op(acc, contrib(r, lane))
			}
			ref[lane] = acc
		}

		results := make([][]float64, P)
		w := NewWorld(P)
		w.Run(func(c *Comm) {
			in := make([]float64, lanes)
			for lane := range in {
				in[lane] = contrib(c.Rank(), lane)
			}
			results[c.Rank()] = c.Allreduce(in, op)
		})

		for r := 1; r < P; r++ {
			for lane := 0; lane < lanes; lane++ {
				if math.Float64bits(results[r][lane]) != math.Float64bits(results[0][lane]) {
					t.Fatalf("%s P=%d: rank %d lane %d = %g, rank 0 = %g (not identical)",
						opName, P, r, lane, results[r][lane], results[0][lane])
				}
			}
		}
		for lane := 0; lane < lanes; lane++ {
			got, want := results[0][lane], ref[lane]
			if want == 0 {
				if got != 0 {
					t.Fatalf("%s P=%d lane %d: zero reference came back %g", opName, P, lane, got)
				}
				continue
			}
			// Sum re-packs partial sums at every tree level; each
			// round trip is bounded by one float32 ulp of the lo word,
			// compounding over ceil(log2 P)+1 hops.
			tol := 1e-12 * math.Abs(want) * float64(P)
			if math.Abs(got-want) > tol {
				t.Fatalf("%s P=%d lane %d: got %.17g want %.17g (|diff|=%g > tol %g)",
					opName, P, lane, got, want, math.Abs(got-want), tol)
			}
		}
	})
}
