package mpi

// VirtualWorld tracks per-rank virtual clocks for hybrid model-execution
// scaling: a small sampled subset of ranks executes real kernels on a
// real World, and the remaining ranks exist only as clocks advanced by
// modeled step times (internal/perfmodel prices them from constants
// measured on the sampled ranks). This is how the repo reproduces the
// paper's Fig. 5/6 curves at P = O(10^4) without O(10^4) cores: the
// expensive part of a rank — its kernels and buffers — runs only for
// the sample, while the scaling-relevant part — where time goes at
// rank granularity — is carried for everyone.
//
// VirtualWorld is deliberately passive (no goroutines, no locks): the
// hybrid driver advances clocks rank by rank, and a step of the virtual
// ensemble completes when every clock has advanced. Skew between the
// fastest and slowest clock is exactly the load imbalance the modeled
// MPI_Waitall/barrier terms wait out.
type VirtualWorld struct {
	total   int
	sampled []int
	isSamp  []bool
	clock   []float64 // virtual seconds per rank
	steps   []int     // virtual steps completed per rank
}

// NewVirtualWorld creates a virtual ensemble of total ranks of which
// sampled (a list of rank ids) execute for real. Duplicate or
// out-of-range sample ids panic.
func NewVirtualWorld(total int, sampled []int) *VirtualWorld {
	if total <= 0 {
		panic("mpi: invalid virtual world size")
	}
	v := &VirtualWorld{
		total:  total,
		isSamp: make([]bool, total),
		clock:  make([]float64, total),
		steps:  make([]int, total),
	}
	for _, r := range sampled {
		if r < 0 || r >= total {
			panic("mpi: sampled rank out of range")
		}
		if v.isSamp[r] {
			panic("mpi: duplicate sampled rank")
		}
		v.isSamp[r] = true
		v.sampled = append(v.sampled, r)
	}
	return v
}

// Total returns the ensemble size (real + virtual ranks).
func (v *VirtualWorld) Total() int { return v.total }

// Sampled returns the ids of the ranks that execute for real, in the
// order given to NewVirtualWorld.
func (v *VirtualWorld) Sampled() []int { return v.sampled }

// IsSampled reports whether rank r executes real kernels.
func (v *VirtualWorld) IsSampled(r int) bool { return v.isSamp[r] }

// Advance moves rank r's virtual clock forward by dt seconds (one step,
// measured for sampled ranks, modeled for the rest).
func (v *VirtualWorld) Advance(r int, dt float64) {
	v.clock[r] += dt
	v.steps[r]++
}

// Time returns rank r's virtual clock.
func (v *VirtualWorld) Time(r int) float64 { return v.clock[r] }

// Steps returns the number of steps rank r has completed.
func (v *VirtualWorld) Steps(r int) int { return v.steps[r] }

// MaxTime returns the slowest rank's clock — the ensemble's wall time,
// since a synchronized step completes only when the last rank does.
func (v *VirtualWorld) MaxTime() float64 {
	m := 0.0
	for _, t := range v.clock {
		if t > m {
			m = t
		}
	}
	return m
}

// Skew returns MaxTime minus the fastest rank's clock: the virtual load
// imbalance the sync terms of Eq. 7 absorb.
func (v *VirtualWorld) Skew() float64 {
	if v.total == 0 {
		return 0
	}
	lo, hi := v.clock[0], v.clock[0]
	for _, t := range v.clock[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return hi - lo
}

// SampleStrata picks up to n rank ids from topology t, stratified by
// communication role: ranks are grouped by their number of in-grid
// neighbors (corner 3, edge 4, face 5, interior 6 on a 3D topology —
// fewer on degenerate ones), every non-empty stratum contributes at
// least one rank, and remaining slots are filled proportionally with
// evenly spaced picks inside each stratum. A hybrid run that sampled
// only interior ranks would never measure boundary-rank imbalance; a
// corner-only sample would miss the interior steady state. The
// selection is deterministic.
func SampleStrata(t Cart, n int) []int {
	total := t.PX * t.PY * t.PZ
	if n >= total {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if n <= 0 {
		return nil
	}
	// Group ranks by neighbor count (0..6).
	var strata [7][]int
	for r := 0; r < total; r++ {
		nn := 0
		for axis := 0; axis < 3; axis++ {
			if t.Neighbor(r, axis, -1) >= 0 {
				nn++
			}
			if t.Neighbor(r, axis, +1) >= 0 {
				nn++
			}
		}
		strata[nn] = append(strata[nn], r)
	}
	var nonEmpty [][]int
	for _, s := range strata {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	// One pick per stratum first; distribute the rest proportionally
	// (largest remainder), then select evenly spaced members.
	take := make([]int, len(nonEmpty))
	used := 0
	for i := range nonEmpty {
		if used < n {
			take[i] = 1
			used++
		}
	}
	for used < n {
		best, bestGap := -1, -1.0
		for i, s := range nonEmpty {
			if take[i] >= len(s) {
				continue
			}
			gap := float64(len(s)) / float64(take[i])
			if gap > bestGap {
				best, bestGap = i, gap
			}
		}
		if best < 0 {
			break
		}
		take[best]++
		used++
	}
	var out []int
	for i, s := range nonEmpty {
		k := take[i]
		for j := 0; j < k; j++ {
			out = append(out, s[j*len(s)/k])
		}
	}
	return out
}
