package mpi

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Message-buffer pool for the zero-copy (buffer-lending) send path.
// Buffers circulate: a sender packs a halo face into a GetBuffer slice,
// lends it with SendOwned, the receiver unpacks and returns it with
// PutBuffer — one pack, zero copies, zero steady-state allocations.
//
// The pool is process-global, shared by every World and every rank
// pair: its footprint scales with the number of buffers actually in
// circulation (active links), not with world size or size^2. That is
// what lets a 10,240-rank world reuse the same free lists a 8-rank
// world warms up, instead of any per-rank or per-pair caching scheme
// whose idle cost would grow with P.
//
// Refinements over a plain power-of-two pool, driven by the BENCH_1
// halo-send regression and the 10k-rank scale work:
//
//   - Half-step size classes: capacities alternate 2^k and 3·2^(k-1)
//     (1, 2, 3, 4, 6, 8, 12, 16, ...), so a FaceLen-sized pack (e.g.
//     2·NY·NZ, rarely a power of two) rounds up by at most 33% instead
//     of up to 2x. Oversized classes waste memory and, worse, split the
//     circulation: a producer that Gets from class k and a consumer that
//     Puts into class k-1 never recycle each other's buffers.
//   - Sharded free lists: each class is split into small LIFO shards
//     under their own mutexes, with round-robin placement and steal-on-
//     miss, so the sender's Get and the receiver's Put of a pipelined
//     exchange don't serialize on one lock. The shard count scales with
//     GOMAXPROCS (clamped to [4, 64]): contention grows with the number
//     of ranks that can actually run concurrently, not with world size.
//   - Bounded retention: each shard keeps at most maxFreePerShard
//     buffers; overflow is dropped to the garbage collector. A burst
//     that briefly puts thousands of buffers in flight (a 10k-rank
//     ring exchange) therefore cannot pin its high-water mark in the
//     pool forever — steady-state retention is bounded per class by
//     shards × maxFreePerShard regardless of P.
//
// A mutex-guarded slice (rather than sync.Pool) keeps Put free of boxing
// allocations: the legacy Send path costs one allocation plus one copy
// per message, and -benchmem must show the lending path at zero.

// maxClass covers capacities up to 2^31 values.
const maxClass = 62

// maxFreePerShard bounds each shard's free list; Put drops overflow.
const maxFreePerShard = 256

// bufShards is the per-class shard count: the smallest power of two
// >= GOMAXPROCS at init, clamped to [4, 64].
var bufShards = func() int {
	n := runtime.GOMAXPROCS(0)
	s := 4
	for s < n && s < 64 {
		s <<= 1
	}
	return s
}()

type bufShard struct {
	mu   sync.Mutex
	free [][]float32
	_    [40]byte // keep neighboring shard locks off one cache line
}

var bufClasses [maxClass + 1]struct {
	shards []bufShard
	rr     atomic.Uint32 // round-robin cursor for placement/stealing
}

func init() {
	for i := range bufClasses {
		bufClasses[i].shards = make([]bufShard, bufShards)
	}
}

// classFor returns the smallest class whose capacity holds n values.
// Capacities are 1, 2, 3, 4, 6, 8, 12, 16, 24, ... (2^k and 3·2^(k-1)).
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	k := bits.Len(uint(n - 1)) // smallest k with 2^k >= n
	if k >= 2 && n <= 3<<(k-2) {
		return 2*(k-1) + 1 // the half step 3·2^(k-2) suffices
	}
	return 2 * k
}

// putClassFor returns the largest class whose capacity is <= cap, i.e.
// the class from which a Get may safely return this buffer.
func putClassFor(cap int) int {
	k := bits.Len(uint(cap)) - 1 // largest k with 2^k <= cap
	if k >= 1 && cap >= 3<<(k-1) {
		return 2*k + 1
	}
	return 2 * k
}

// classCapacity returns the nominal capacity of class c.
func classCapacity(c int) int {
	k := c / 2
	if c%2 == 0 {
		return 1 << k
	}
	return 3 << (k - 1)
}

// GetBuffer returns a []float32 of length n from the pool, allocating a
// class-capacity buffer on a miss. Contents are unspecified (the caller
// overwrites them by packing).
func GetBuffer(n int) []float32 {
	c := classFor(n)
	if c > maxClass {
		return make([]float32, n)
	}
	p := &bufClasses[c]
	start := int(p.rr.Load())
	for i := 0; i < bufShards; i++ {
		s := &p.shards[(start+i)%bufShards]
		s.mu.Lock()
		if last := len(s.free) - 1; last >= 0 {
			b := s.free[last]
			s.free[last] = nil
			s.free = s.free[:last]
			s.mu.Unlock()
			return b[:n]
		}
		s.mu.Unlock()
	}
	return make([]float32, n, classCapacity(c))
}

// PutBuffer recycles a buffer previously obtained from GetBuffer (or
// received via RecvTake/IrecvTake). Safe to call with any slice; buffers
// land in the largest class their capacity fully covers. When the
// target shard is full the buffer is dropped for the GC to reclaim,
// bounding the pool's idle retention.
func PutBuffer(b []float32) {
	if cap(b) == 0 {
		return
	}
	c := putClassFor(cap(b))
	if c > maxClass {
		return
	}
	p := &bufClasses[c]
	s := &p.shards[int(p.rr.Add(1))%bufShards]
	s.mu.Lock()
	if len(s.free) < maxFreePerShard {
		s.free = append(s.free, b[:cap(b)])
	}
	s.mu.Unlock()
}
