package mpi

import (
	"math/bits"
	"sync"
)

// Message-buffer pool for the zero-copy (buffer-lending) send path.
// Buffers circulate: a sender packs a halo face into a GetBuffer slice,
// lends it with SendOwned, the receiver unpacks and returns it with
// PutBuffer — one pack, zero copies, zero steady-state allocations.
//
// The pool is a set of power-of-two capacity classes, each a LIFO free
// list under its own mutex. A plain mutex-guarded slice (rather than
// sync.Pool) keeps Put free of boxing allocations, which is the point of
// the exercise: the legacy Send path costs one allocation plus one copy
// per message, and -benchmem must show the lending path at zero.

const maxBufClass = 31

var bufClasses [maxBufClass + 1]struct {
	mu   sync.Mutex
	free [][]float32
}

// classFor returns the smallest power-of-two class holding n values.
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetBuffer returns a []float32 of length n from the pool, allocating a
// power-of-two-capacity buffer on a miss. Contents are unspecified (the
// caller overwrites them by packing).
func GetBuffer(n int) []float32 {
	c := classFor(n)
	if c > maxBufClass {
		return make([]float32, n)
	}
	p := &bufClasses[c]
	p.mu.Lock()
	if last := len(p.free) - 1; last >= 0 {
		b := p.free[last]
		p.free = p.free[:last]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]float32, n, 1<<c)
}

// PutBuffer recycles a buffer previously obtained from GetBuffer (or
// received via RecvTake/IrecvTake). Safe to call with any slice; buffers
// land in the class their capacity fully covers.
func PutBuffer(b []float32) {
	if cap(b) == 0 {
		return
	}
	// Largest class n with 1<<n <= cap: Get from this class may return the
	// buffer for any request up to its capacity.
	c := bits.Len(uint(cap(b))) - 1
	if c > maxBufClass {
		return
	}
	p := &bufClasses[c]
	p.mu.Lock()
	p.free = append(p.free, b[:cap(b)])
	p.mu.Unlock()
}
