package mpi

import (
	"sync"
	"testing"
)

func TestSendOwnedRecvTakeRoundTrip(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := GetBuffer(3)
			buf[0], buf[1], buf[2] = 4, 5, 6
			c.SendOwned(1, 9, buf)
			// Ownership transferred: sender must not touch buf again.
		} else {
			got, st := c.MustRecvTake(0, 9)
			if st.Source != 0 || st.Tag != 9 || st.Count != 3 {
				t.Errorf("status = %+v", st)
			}
			if got[0] != 4 || got[1] != 5 || got[2] != 6 {
				t.Errorf("data = %v", got)
			}
			PutBuffer(got)
		}
	})
}

func TestSendOwnedDoesNotCopy(t *testing.T) {
	// The whole point of the lending path: the receiver observes the very
	// slice the sender lent (same backing array), not a copy.
	w := NewWorld(2)
	probe := make([]float32, 1, 8)
	probe[0] = 1
	done := make(chan []float32, 1)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SendOwned(1, 0, probe)
		} else {
			got, _ := c.MustRecvTake(0, 0)
			done <- got
		}
	})
	got := <-done
	if &got[0] != &probe[0] {
		t.Error("RecvTake returned a different backing array; message was copied")
	}
}

func TestIsendOwnedIrecvTakeData(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := GetBuffer(2)
			buf[0], buf[1] = 7, 8
			c.IsendOwned(1, 3, buf).Wait()
		} else {
			req := c.IrecvTake(0, 3)
			st := req.Wait()
			if st.Count != 2 {
				t.Errorf("count = %d", st.Count)
			}
			data := req.Data()
			if data[0] != 7 || data[1] != 8 {
				t.Errorf("data = %v", data)
			}
			PutBuffer(data)
		}
	})
}

func TestBufferPoolRecycles(t *testing.T) {
	// Drain-then-observe: after a Put, the next Get of a size in the same
	// power-of-two class returns the recycled backing array.
	b := GetBuffer(100)
	base := &b[0]
	if cap(b) != 128 {
		t.Fatalf("cap = %d, want the 128 half-step class", cap(b))
	}
	PutBuffer(b)
	c := GetBuffer(110) // same class: 96 < 110 <= 128
	if &c[0] != base {
		t.Error("buffer not recycled within its size class")
	}
	if len(c) != 110 {
		t.Errorf("len = %d, want 110", len(c))
	}
	PutBuffer(c)
}

func TestGetBufferCapacityInvariant(t *testing.T) {
	for _, n := range []int{1, 2, 3, 64, 65, 1000} {
		b := GetBuffer(n)
		if len(b) != n {
			t.Fatalf("len = %d, want %d", len(b), n)
		}
		PutBuffer(b)
		// Refetch the full class capacity: must still satisfy the request.
		b2 := GetBuffer(cap(b))
		if len(b2) != cap(b) {
			t.Fatalf("class-capacity refetch: len = %d, want %d", len(b2), cap(b))
		}
		PutBuffer(b2)
	}
}

func TestBufferPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 + (seed*31+i*7)%500
				b := GetBuffer(n)
				if len(b) != n {
					t.Errorf("len = %d, want %d", len(b), n)
					return
				}
				b[0] = float32(n)
				PutBuffer(b)
			}
		}(g)
	}
	wg.Wait()
}
