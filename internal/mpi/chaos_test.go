package mpi

import (
	"errors"
	"math"
	"testing"
	"time"
)

// pingPong runs a 2-rank ping-pong of n round trips and returns rank 0's
// received payload sums (one per round trip) for bit-identity checks.
func pingPong(w *World, n int) []float32 {
	sums := make([]float32, n)
	w.Run(func(c *Comm) {
		buf := make([]float32, 4)
		for i := 0; i < n; i++ {
			if c.Rank() == 0 {
				c.Send(1, i, []float32{float32(i), 2, 3, 4})
				c.MustRecv(buf, 1, i)
				sums[i] = buf[0] + buf[1] + buf[2] + buf[3]
			} else {
				c.MustRecv(buf, 0, i)
				for j := range buf {
					buf[j] *= 2
				}
				c.Send(0, i, buf)
			}
		}
	})
	return sums
}

func TestChaosDropRetryDelivers(t *testing.T) {
	clean := pingPong(NewWorld(2), 50)

	w := NewWorld(2)
	w.InjectChaos(ChaosPlan{Seed: 42, DropProb: 0.3, RetryBackoff: time.Microsecond})
	got := pingPong(w, 50)

	for i := range clean {
		if got[i] != clean[i] {
			t.Fatalf("round %d: got %v, want %v (drop+retry must be transparent)", i, got[i], clean[i])
		}
	}
	st := w.ChaosStats()
	if st.Dropped == 0 {
		t.Fatal("expected some dropped transmissions at DropProb=0.3")
	}
	if st.Retries < st.Dropped {
		t.Fatalf("every drop needs a retry: dropped=%d retries=%d", st.Dropped, st.Retries)
	}
	if st.Delivered == 0 {
		t.Fatal("no messages delivered")
	}
}

func TestChaosCorruptionCaughtByChecksum(t *testing.T) {
	clean := pingPong(NewWorld(2), 50)

	w := NewWorld(2)
	w.InjectChaos(ChaosPlan{Seed: 7, CorruptProb: 0.25, RetryBackoff: time.Microsecond})
	got := pingPong(w, 50)

	for i := range clean {
		if got[i] != clean[i] {
			t.Fatalf("round %d: got %v, want %v (corruption must never reach the app)", i, got[i], clean[i])
		}
	}
	st := w.ChaosStats()
	if st.Corrupted == 0 {
		t.Fatal("expected some corrupted transmissions at CorruptProb=0.25")
	}
	if st.ChecksumRejects == 0 {
		t.Fatal("receiver never rejected a corrupt payload")
	}
	if st.ChecksumRejects > st.Corrupted {
		t.Fatalf("rejects=%d > corrupted=%d", st.ChecksumRejects, st.Corrupted)
	}
}

func TestChaosDelayOnlyPerturbsTiming(t *testing.T) {
	clean := pingPong(NewWorld(2), 30)

	w := NewWorld(2)
	w.InjectChaos(ChaosPlan{Seed: 3, DelayProb: 0.5, MaxDelay: 50 * time.Microsecond})
	got := pingPong(w, 30)

	for i := range clean {
		if got[i] != clean[i] {
			t.Fatalf("round %d: got %v, want %v", i, got[i], clean[i])
		}
	}
	if st := w.ChaosStats(); st.Delayed == 0 {
		t.Fatal("expected some delayed transmissions at DelayProb=0.5")
	}
}

func TestChaosDeterministicStats(t *testing.T) {
	run := func() ChaosStats {
		w := NewWorld(2)
		w.InjectChaos(ChaosPlan{Seed: 99, DropProb: 0.2, CorruptProb: 0.1, DelayProb: 0.1,
			MaxDelay: time.Microsecond, RetryBackoff: time.Microsecond})
		pingPong(w, 40)
		return w.ChaosStats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault sequences:\n a=%+v\n b=%+v", a, b)
	}
	if a.Dropped == 0 || a.Corrupted == 0 || a.Delayed == 0 {
		t.Fatalf("expected all armed fault classes to fire: %+v", a)
	}
}

func TestChaosCrashSurfacesAsCrashError(t *testing.T) {
	w := NewWorld(2)
	w.InjectChaos(ChaosPlan{Seed: 1, CrashAtSend: map[int]uint64{1: 3}})
	err := w.RunErr(func(c *Comm) error {
		buf := make([]float32, 1)
		for i := 0; i < 10; i++ {
			if c.Rank() == 0 {
				c.Send(1, i, []float32{1})
				if _, err := c.Recv(buf, 1, i); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(buf, 0, i); err != nil {
					return err
				}
				c.Send(0, i, buf)
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected RunErr to surface the injected crash")
	}
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("error chain lacks *CrashError: %v", err)
	}
	if ce.Rank != 1 || ce.SendOp != 3 {
		t.Fatalf("CrashError = %+v, want rank 1 at send op 3", ce)
	}
	var we *WorldError
	if !errors.As(err, &we) {
		t.Fatalf("error is not a *WorldError: %v", err)
	}
	if st := w.ChaosStats(); st.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", st.Crashes)
	}
}

func TestChaosCrashFiresOnceAcrossReset(t *testing.T) {
	w := NewWorld(2)
	w.InjectChaos(ChaosPlan{Seed: 1, CrashAtSend: map[int]uint64{0: 2}})

	body := func(c *Comm) error {
		buf := make([]float32, 1)
		for i := 0; i < 5; i++ {
			if c.Rank() == 0 {
				c.Send(1, i, []float32{float32(i)})
			} else {
				if _, err := c.Recv(buf, 0, i); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if err := w.RunErr(body); err == nil {
		t.Fatal("first run should crash")
	}
	w.Reset()
	if err := w.RunErr(body); err != nil {
		t.Fatalf("replay after Reset should be clean (crash already fired): %v", err)
	}
	if st := w.ChaosStats(); st.Crashes != 1 {
		t.Fatalf("Crashes = %d, want exactly 1 across Reset", st.Crashes)
	}
}

func TestResetRestoresAbortedWorld(t *testing.T) {
	w := NewWorld(2)
	err := w.RunErr(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("boom")
		}
		buf := make([]float32, 1)
		_, err := c.Recv(buf, 0, 0) // woken by abort with an error
		return err
	})
	if err == nil {
		t.Fatal("expected first run to fail")
	}
	var re *RankError
	if !errors.As(err, &re) || !re.Panicked {
		t.Fatalf("expected a panicked *RankError, got %v", err)
	}
	if !errors.Is(err, ErrWorldAborted) && len(err.(*WorldError).Errs) < 1 {
		t.Fatalf("unexpected error shape: %v", err)
	}

	w.Reset()
	if err := w.RunErr(func(c *Comm) error {
		buf := make([]float32, 1)
		if c.Rank() == 0 {
			c.Send(1, 0, []float32{5})
		} else {
			if _, err := c.Recv(buf, 0, 0); err != nil {
				return err
			}
			if buf[0] != 5 {
				t.Errorf("payload = %v, want 5", buf[0])
			}
		}
		c.Barrier()
		return nil
	}); err != nil {
		t.Fatalf("world unusable after Reset: %v", err)
	}
}

func TestChaosCollectivesSurvive(t *testing.T) {
	// Collectives ride the same chaos transport; drop+corrupt must stay
	// invisible to Bcast/Allreduce/Gather semantics.
	w := NewWorld(4)
	w.InjectChaos(ChaosPlan{Seed: 11, DropProb: 0.15, CorruptProb: 0.1, RetryBackoff: time.Microsecond})
	w.Run(func(c *Comm) {
		buf := []float32{0}
		if c.Rank() == 0 {
			buf[0] = 42
		}
		c.Bcast(buf, 0)
		if buf[0] != 42 {
			t.Errorf("rank %d: Bcast got %v", c.Rank(), buf[0])
		}
		sum := c.Allreduce([]float64{1}, Sum)
		if sum[0] != 4 {
			t.Errorf("rank %d: Allreduce got %v, want 4", c.Rank(), sum[0])
		}
		got := c.Gather([]float32{float32(c.Rank())}, 0)
		if c.Rank() == 0 {
			for r := 0; r < 4; r++ {
				if got[r][0] != float32(r) {
					t.Errorf("Gather[%d] = %v", r, got[r])
				}
			}
		}
	})
	st := w.ChaosStats()
	if st.Dropped+st.Corrupted == 0 {
		t.Fatal("chaos never fired on collectives")
	}
}

func TestChecksumZeroRemap(t *testing.T) {
	if checksum(nil) == 0 {
		t.Fatal("checksum must never return the unchecked sentinel 0")
	}
	a := checksum([]float32{1, 2, 3})
	b := checksum([]float32{1, 2, 4})
	if a == b {
		t.Fatal("checksum failed to distinguish different payloads")
	}
}

func TestChaosTreeCollectivesParity(t *testing.T) {
	// The tree collectives multiplied the distinct (sender, receiver)
	// pairs a collective exercises — every tree edge, not just
	// root-to-leaf — so each edge now runs the reliable-transport
	// simulation independently. Parity check: a chaos-hammered world
	// must produce bit-identical collective results to a fault-free
	// one, across ragged world sizes, rotating roots, and interleaved
	// barriers (which are message-free and must neither trip chaos nor
	// be perturbed by it).
	run := func(w *World, P int) [][]float64 {
		out := make([][]float64, P)
		w.Run(func(c *Comm) {
			var acc []float64
			for round := 0; round < 4; round++ {
				root := (round * 5) % P
				buf := make([]float32, 3)
				if c.Rank() == root {
					buf[0], buf[1], buf[2] = float32(round), 2, 3
				}
				c.Bcast(buf, root)
				acc = append(acc, float64(buf[0]), float64(buf[1]), float64(buf[2]))
				c.Barrier()
				red := c.Reduce([]float64{float64(c.Rank() + round)}, Sum, root)
				if c.Rank() == root {
					acc = append(acc, red...)
				}
				all := c.Allreduce([]float64{float64(c.Rank()), -float64(c.Rank())}, Min)
				acc = append(acc, all...)
				c.Barrier()
			}
			out[c.Rank()] = acc
		})
		return out
	}
	for _, P := range []int{3, 8, 23} {
		clean := run(NewWorld(P), P)
		chaotic := NewWorld(P)
		chaotic.InjectChaos(ChaosPlan{
			Seed: 77, DropProb: 0.12, CorruptProb: 0.1, DelayProb: 0.05,
			MaxDelay: 50 * time.Microsecond, RetryBackoff: time.Microsecond,
		})
		dirty := run(chaotic, P)
		for r := 0; r < P; r++ {
			if len(clean[r]) != len(dirty[r]) {
				t.Fatalf("P=%d rank %d: result length diverged", P, r)
			}
			for i := range clean[r] {
				if math.Float64bits(clean[r][i]) != math.Float64bits(dirty[r][i]) {
					t.Fatalf("P=%d rank %d lane %d: chaos-on %v != chaos-off %v",
						P, r, i, dirty[r][i], clean[r][i])
				}
			}
		}
		if st := chaotic.ChaosStats(); st.Dropped+st.Corrupted == 0 {
			t.Fatalf("P=%d: chaos never fired on the tree collectives", P)
		}
	}
}
