package mpi

import (
	"math/rand"
	"sync"
	"testing"
)

// TestBufpoolConcurrentGetPut hammers the sharded free lists from many
// goroutines mixing sizes that map to the same and different classes.
// Run under -race this exercises the shard locks and the round-robin
// cursor; the assertions catch cross-class leaks (a Get that returns a
// buffer with less capacity than requested).
func TestBufpoolConcurrentGetPut(t *testing.T) {
	sizes := []int{1, 3, 96, 97, 128, 1000, 1024, 1536, 1537, 4096}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			held := make([][]float32, 0, 16)
			for i := 0; i < 4000; i++ {
				n := sizes[rng.Intn(len(sizes))]
				b := GetBuffer(n)
				if len(b) != n || cap(b) < n {
					t.Errorf("GetBuffer(%d): len %d cap %d", n, len(b), cap(b))
					return
				}
				b[0] = float32(n) // touch, so -race sees any sharing
				held = append(held, b)
				// Return buffers in bursts and out of order to keep the
				// free lists churning across shards.
				if len(held) == cap(held) || rng.Intn(4) == 0 {
					rng.Shuffle(len(held), func(i, j int) {
						held[i], held[j] = held[j], held[i]
					})
					for _, h := range held {
						PutBuffer(h)
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				PutBuffer(h)
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestConcurrentTaggedReceives runs many receiver goroutines on one rank,
// each matching its own tag, against a sender that emits the tags in a
// shuffled order every round. This drives takeMatch's head-cursor inbox
// down both paths (head-of-queue pop and interior extraction) under
// contention, and checks the per-(source, tag) FIFO guarantee: round
// numbers must arrive in order within a tag even though tags interleave
// arbitrarily. Run with -race to check the inbox and bufpool locking.
func TestConcurrentTaggedReceives(t *testing.T) {
	const (
		tags   = 16
		rounds = 50
	)
	NewWorld(2).Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			rng := rand.New(rand.NewSource(42))
			order := make([]int, tags)
			for i := range order {
				order[i] = i
			}
			for round := 0; round < rounds; round++ {
				rng.Shuffle(len(order), func(i, j int) {
					order[i], order[j] = order[j], order[i]
				})
				for _, tag := range order {
					b := GetBuffer(3)
					b[0] = float32(tag)
					b[1] = float32(round)
					b[2] = float32(tag*rounds + round)
					c.SendOwned(1, tag, b)
				}
			}
		case 1:
			var wg sync.WaitGroup
			for tag := 0; tag < tags; tag++ {
				wg.Add(1)
				go func(tag int) {
					defer wg.Done()
					buf := make([]float32, 3)
					for round := 0; round < rounds; round++ {
						var got []float32
						// Alternate the copying and zero-copy receive
						// paths; both must preserve FIFO order.
						if round%2 == 0 {
							st := c.MustRecv(buf, 0, tag)
							if st.Count != 3 {
								t.Errorf("tag %d: count %d", tag, st.Count)
								return
							}
							got = buf
						} else {
							taken, st := c.MustRecvTake(0, tag)
							if st.Count != 3 {
								t.Errorf("tag %d: count %d", tag, st.Count)
								return
							}
							got = taken
						}
						if got[0] != float32(tag) || got[1] != float32(round) ||
							got[2] != float32(tag*rounds+round) {
							t.Errorf("tag %d round %d: got (%g,%g,%g)",
								tag, round, got[0], got[1], got[2])
							return
						}
						if round%2 == 1 {
							PutBuffer(got)
						}
					}
				}(tag)
			}
			wg.Wait()
		}
	})
}
