package mpi

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// scaleRanks returns the rank count for the 10k-rank tests: 10,240
// normally, shrunk under the race detector, whose per-goroutine shadow
// state makes full scale needlessly slow in CI's -race lane (the
// bounded soak there still runs the same code paths).
func scaleRanks() int {
	if telemetry.RaceEnabled {
		return 2048
	}
	return 10240
}

// heapAlloc returns the live heap after a full GC.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestWorld10kRanks is the scale smoke: a 10,240-rank world runs tree
// barriers, a split-float Allreduce, and a ring halo exchange, then the
// steady-state heap attributable to the world is gated at < 10 KB per
// rank. The gate measures heap after Run returns (rank goroutines dead,
// their stacks returned), so what remains is the World's own state:
// lazy inboxes, the barrier tree, and whatever the bounded buffer pool
// retained.
func TestWorld10kRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-rank smoke skipped in -short")
	}
	P := scaleRanks()
	base := heapAlloc()

	w := NewWorld(P)
	var phase atomic.Int64
	w.Run(func(c *Comm) {
		// Three barrier rounds with a shared-counter correctness check:
		// no rank may observe a counter from a later phase than its own
		// next one.
		for round := 1; round <= 3; round++ {
			phase.Add(1)
			c.Barrier()
			if got := phase.Load(); got != int64(round*P) {
				// Between the barrier's release and this load, ranks of
				// the NEXT round may already have bumped the counter —
				// but never beyond (round+1)*P - 1, and never below
				// round*P.
				if got < int64(round*P) || got >= int64((round+1)*P) {
					panic("barrier did not separate phases")
				}
			}
			c.Barrier()
		}

		// Split-float Allreduce across all ranks: Max over a vector
		// that includes a sentinel-zero lane (the LTS wire format).
		vals := []float64{float64(c.Rank()), 0, -float64(c.Rank())}
		out := c.Allreduce(vals, Max)
		if out[0] != float64(P-1) || out[1] != 0 || out[2] != 0 {
			panic("allreduce wrong at scale")
		}

		// Ring halo: each rank lends a pooled buffer to its successor
		// and takes one from its predecessor — the zero-copy path.
		next, prev := (c.Rank()+1)%P, (c.Rank()-1+P)%P
		buf := GetBuffer(16)
		for i := range buf {
			buf[i] = float32(c.Rank())
		}
		c.SendOwned(next, 7, buf)
		got, _ := c.MustRecvTake(prev, 7)
		if got[0] != float32(prev) {
			panic("ring halo wrong at scale")
		}
		PutBuffer(got)
	})

	steady := heapAlloc()
	perRank := float64(steady-base) / float64(P)
	t.Logf("P=%d steady-state heap: %d B total, %.0f B/rank", P, steady-base, perRank)
	if perRank >= 10*1024 {
		t.Fatalf("per-rank steady-state heap %.0f B >= 10 KB", perRank)
	}
}

// TestIdleWorldUnder1KBPerRank pins the satellite claim directly: a
// freshly created world — no rank has sent, received, or synchronized —
// costs under 1 KB per rank, because inboxes and barrier nodes are
// allocated on first use rather than in NewWorld.
func TestIdleWorldUnder1KBPerRank(t *testing.T) {
	const P = 10240
	base := heapAlloc()
	worlds := make([]*World, 8)
	for i := range worlds {
		worlds[i] = NewWorld(P)
	}
	perRank := float64(heapAlloc()-base) / float64(P*len(worlds))
	t.Logf("idle world: %.1f B/rank", perRank)
	if perRank >= 1024 {
		t.Fatalf("idle world costs %.0f B/rank >= 1 KB", perRank)
	}
	runtime.KeepAlive(worlds)
}

// BenchmarkNewWorld10k proves the O(P)-inbox fix: world creation is one
// slice of atomic pointers, not 10,240 mutex+cond inbox allocations.
func BenchmarkNewWorld10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWorld(10240)
		runtime.KeepAlive(w)
	}
}

// TestTreeBarrierStress hammers the combining tree with randomized
// arrival order on a non-power-of-two world (ragged tree shape) — run
// under -race in CI. Each rank jitters before arriving, and a shared
// epoch counter catches any rank escaping a barrier early.
func TestTreeBarrierStress(t *testing.T) {
	const P = 97
	const rounds = 50
	w := NewWorld(P)
	var before atomic.Int64
	rng := rand.New(rand.NewSource(42))
	jitter := make([][]time.Duration, P)
	for r := range jitter {
		jitter[r] = make([]time.Duration, rounds)
		for i := range jitter[r] {
			jitter[r][i] = time.Duration(rng.Intn(200)) * time.Microsecond
		}
	}
	w.Run(func(c *Comm) {
		for i := 0; i < rounds; i++ {
			time.Sleep(jitter[c.Rank()][i])
			before.Add(1)
			c.Barrier()
			if n := before.Load(); n < int64((i+1)*P) {
				panic("rank escaped barrier before all arrived")
			}
			c.Barrier()
		}
	})
}

// TestTreeBarrierGenerationWraparound drives the per-node release
// generations across the uint32 boundary: waiters compare generations
// with != against a value read at entry, so wrapping past MaxUint32
// must be invisible.
func TestTreeBarrierGenerationWraparound(t *testing.T) {
	const P = 5
	w := NewWorld(P)
	// Build the tree, then push every node's release generation to the
	// brink so the next few barriers wrap it.
	w.Run(func(c *Comm) { c.Barrier() })
	nodes := w.barrier.Load().nodes
	for i := range nodes {
		nodes[i].mu.Lock()
		nodes[i].release = math.MaxUint32 - 1
		nodes[i].mu.Unlock()
	}
	var steps atomic.Int64
	w.Run(func(c *Comm) {
		for i := 0; i < 8; i++ {
			steps.Add(1)
			c.Barrier()
			if n := steps.Load(); n < int64((i+1)*P) {
				panic("barrier broke across generation wraparound")
			}
			c.Barrier()
		}
	})
	// Every node's release is bumped once per barrier — the root's by
	// the completing goroutine, the rest by the release wave — so all
	// of them must have wrapped past MaxUint32.
	for i := 0; i < len(nodes); i++ {
		if nodes[i].release > math.MaxUint32/2 {
			t.Fatalf("node %d release generation did not wrap: %d", i, nodes[i].release)
		}
	}
}

// TestBarrierConvoyStillWorks keeps the legacy centralized barrier
// honest while it exists for benchmarking.
func TestBarrierConvoyStillWorks(t *testing.T) {
	const P = 16
	w := NewWorld(P)
	var n atomic.Int64
	w.Run(func(c *Comm) {
		for i := 0; i < 10; i++ {
			n.Add(1)
			c.BarrierConvoy()
			if got := n.Load(); got < int64((i+1)*P) {
				panic("convoy barrier released early")
			}
			c.BarrierConvoy()
		}
	})
}

// TestBarrierAbortReleasesTree verifies Abort wakes tree-barrier
// waiters into ErrWorldAborted panics instead of deadlock, and that
// Reset rearms the tree for a subsequent Run.
func TestBarrierAbortReleasesTree(t *testing.T) {
	const P = 9
	w := NewWorld(P)
	err := w.RunErr(func(c *Comm) error {
		if c.Rank() == 0 {
			// Give the others time to block in the barrier, then die.
			time.Sleep(10 * time.Millisecond)
			panic("rank 0 dies")
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("expected a WorldError")
	}
	w.Reset()
	var n atomic.Int64
	if err := w.RunErr(func(c *Comm) error {
		n.Add(1)
		c.Barrier()
		if n.Load() < P {
			panic("post-Reset barrier released early")
		}
		return nil
	}); err != nil {
		t.Fatalf("post-Reset run failed: %v", err)
	}
}

// TestTreeCollectivesMessageStats pins the wire-compatibility claim:
// the binomial Bcast/Reduce and the tree Allreduce carry exactly the
// message counts and float volumes of the flat schedules they replaced.
func TestTreeCollectivesMessageStats(t *testing.T) {
	for _, P := range []int{2, 5, 8, 13} {
		w := NewWorld(P)
		w.Run(func(c *Comm) {
			buf := make([]float32, 3)
			if c.Rank() == 1%P {
				buf = []float32{1, 2, 3}
			}
			c.Bcast(buf, 1%P)
			if buf[2] != 3 {
				panic("bcast payload wrong")
			}
		})
		msgs, floats := w.MessageStats()
		if msgs != uint64(P-1) || floats != uint64(3*(P-1)) {
			t.Fatalf("P=%d Bcast: %d msgs %d floats, want %d/%d", P, msgs, floats, P-1, 3*(P-1))
		}
		w.ResetMessageStats()
		w.Run(func(c *Comm) {
			out := c.Allreduce([]float64{float64(c.Rank() + 1)}, Sum)
			want := float64(P*(P+1)) / 2
			if math.Abs(out[0]-want) > 1e-9 {
				panic("allreduce sum wrong")
			}
		})
		msgs, floats = w.MessageStats()
		if msgs != uint64(2*(P-1)) || floats != uint64(2*2*(P-1)) {
			t.Fatalf("P=%d Allreduce: %d msgs %d floats, want %d/%d", P, msgs, floats, 2*(P-1), 4*(P-1))
		}
	}
}

// TestBarrierSendsNoMessages pins the property the halo benchmarks
// depend on: Barrier never touches the message path or its counters.
func TestBarrierSendsNoMessages(t *testing.T) {
	w := NewWorld(32)
	w.Run(func(c *Comm) {
		for i := 0; i < 5; i++ {
			c.Barrier()
		}
	})
	if msgs, floats := w.MessageStats(); msgs != 0 || floats != 0 {
		t.Fatalf("barrier sent messages: %d msgs %d floats", msgs, floats)
	}
}

// TestLazyInboxAbortRace races inbox creation against Abort: whichever
// side wins the CAS publication race, no send may block or succeed on
// an open inbox of an aborted world.
func TestLazyInboxAbortRace(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		w := NewWorld(64)
		var wg sync.WaitGroup
		wg.Add(2)
		errs := make(chan error, 1)
		go func() {
			defer wg.Done()
			err := w.RunErr(func(c *Comm) error {
				// Every rank sends to a previously untouched inbox.
				c.Send((c.Rank()+31)%64, 1, []float32{1})
				_, err := c.Recv(make([]float32, 1), AnySource, 1)
				return err
			})
			select {
			case errs <- err:
			default:
			}
		}()
		go func() {
			defer wg.Done()
			w.Abort()
		}()
		wg.Wait()
		// Outcome may be success (abort lost every race) or a
		// WorldError — but never a hang (reaching here proves that).
		<-errs
	}
}
