// Package mpi is an in-process message-passing runtime with MPI-like
// semantics. It is the substrate standing in for the MPI library the paper's
// AWP-ODC code runs on: ranks are goroutines, point-to-point messages are
// matched by (source, tag) with per-pair FIFO ordering, and both blocking
// (Send/Recv) and non-blocking (Isend/Irecv/Wait/Waitall) operations are
// provided, along with barriers and the collectives the tool chain needs.
//
// Send has buffered (eager) semantics: it copies the payload and returns
// immediately, exactly like a small-message MPI_Send on a real
// implementation. This preserves the property the paper's asynchronous
// communication redesign (§IV.A) relies on: messages from different sources
// arrive in arbitrary interleaving, and only unique tags keep data
// integrity.
package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// ErrWorldAborted is the cause of operations attempted on an aborted
// world (a rank panicked, or Abort was called). Must-style operations
// panic with it; error-returning operations wrap it.
var ErrWorldAborted = errors.New("mpi: operation on aborted world")

// AnySource matches a message from any source rank in Recv/Irecv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv/Irecv.
const AnyTag = -1

// message is one in-flight point-to-point payload.
type message struct {
	src, tag int
	data     []float32
	seq      uint64 // per-destination arrival sequence, for FIFO matching
	sent     int64  // telemetry.Now() at submission; 0 when telemetry is off
	sum      uint64 // per-message checksum; 0 on chaos-free worlds (unchecked)
}

// inbox holds undelivered messages and pending receivers for one rank.
// The queue is stored in arrival order with a head cursor: queue[head:]
// are the live messages. Popping the oldest match is O(1) at the head
// (the overwhelmingly common case — per-pair FIFO with matching tags)
// instead of an O(len) slice shift, which matters when an eager sender
// runs ahead of its receiver and the backlog grows to thousands of
// messages (the BENCH_1 zero-copy regression: every Recv shifted the
// whole backlog with memmove).
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	head   int
	seq    uint64
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// World is a set of ranks that can communicate.
type World struct {
	size int
	// inboxes are allocated lazily, on a rank's first send or receive:
	// at O(10^4) ranks the eager per-rank inbox (mutex + cond + queue
	// header) dominated NewWorld cost, and most ranks of a sparse
	// communication pattern (ring halos, tree collectives) only ever
	// talk to a handful of peers. An idle rank costs one atomic pointer
	// word here plus one barrier-tree node — well under 1 KB.
	inboxes []atomic.Pointer[inbox]
	chaos   *chaosEngine // nil: fault-free transport
	aborted atomic.Bool

	// linkAlphaNs, when positive, charges every transmission a fixed
	// per-message sender overhead (see SetLinkLatency).
	linkAlphaNs atomic.Int64

	// Message-traffic counters (point-to-point only, collectives
	// included): the measured side of the perfmodel's per-message
	// latency term. Read with MessageStats, zero with ResetMessageStats.
	sentMsgs   atomic.Uint64
	sentFloats atomic.Uint64

	// Legacy centralized barrier (one mutex + one condvar shared by all
	// ranks). Kept as BarrierConvoy so benchtab -exp scale can measure
	// the convoy against the combining tree that Barrier now uses; the
	// tree itself lives in barrier (collectives.go), built lazily under
	// barrierMu.
	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierCnt  int
	barrierGen  int
	barrier     atomic.Pointer[barrierTree]
}

// NewWorld creates a world with the given number of ranks. Creation is
// O(1) allocations and O(size) words: per-rank state (inboxes, barrier
// tree nodes) materializes on first use.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &World{size: size, inboxes: make([]atomic.Pointer[inbox], size)}
	w.barrierCond = sync.NewCond(&w.barrierMu)
	return w
}

// inboxAt returns rank r's inbox, creating it on first use. Creation
// races with Abort: the CAS publishes the inbox first, then re-checks
// the aborted flag, so either Abort's sweep observes the published
// inbox and closes it, or the creator observes aborted and closes it
// itself — a send/recv can never block on an open inbox of an aborted
// world.
func (w *World) inboxAt(r int) *inbox {
	if b := w.inboxes[r].Load(); b != nil {
		return b
	}
	b := newInbox()
	if !w.inboxes[r].CompareAndSwap(nil, b) {
		return w.inboxes[r].Load()
	}
	if w.aborted.Load() {
		b.mu.Lock()
		b.closed = true
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	return b
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetLinkLatency arms per-message latency emulation: every point-to-point
// transmission (collective legs included — they ride the same deliver
// path) charges the sending rank a busy-wait of d before the payload is
// enqueued. The in-process transport's own per-message startup cost is
// ~0.1µs, two orders of magnitude below the α ≈ 3–8µs of the perfmodel
// machine descriptions, so protocols that trade message count against
// message volume — coalesced halos, temporal tiling's deep exchange —
// cannot be separated on the raw transport. The charge is a calibrated
// busy-wait rather than a Sleep: the emulated cluster's per-rank sender
// overhead is CPU time, and on a time-shared host it must consume CPU to
// appear in wall clock at all (a Sleep yields the processor and the
// charges of concurrent ranks collapse onto each other). d ≤ 0 disables
// emulation. Unlike InjectChaos this leaves payloads unstamped: no
// checksum is computed, so the per-float cost of the transport is
// unchanged and only the per-message term moves.
func (w *World) SetLinkLatency(d time.Duration) {
	w.linkAlphaNs.Store(int64(d))
}

// chargeLink spins for the armed per-message latency, if any.
func (w *World) chargeLink() {
	d := time.Duration(w.linkAlphaNs.Load())
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// MessageStats returns the total point-to-point messages and float32
// values delivered since creation (or the last ResetMessageStats),
// summed over all ranks. Used by the halo benchmarks and tests to verify
// message-count claims (coalescing reduces counts, never float volume).
func (w *World) MessageStats() (msgs, floats uint64) {
	return w.sentMsgs.Load(), w.sentFloats.Load()
}

// ResetMessageStats zeroes the message-traffic counters.
func (w *World) ResetMessageStats() {
	w.sentMsgs.Store(0)
	w.sentFloats.Store(0)
}

// RankError is one rank's failure inside RunErr: either the error the
// rank body returned, or its recovered panic value (Panicked true). The
// wrapped error survives errors.Is/As, so injected *CrashError values
// remain inspectable at the caller.
type RankError struct {
	Rank     int
	Err      error
	Panicked bool
}

func (e *RankError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("mpi: rank %d panicked: %v", e.Rank, e.Err)
	}
	return fmt.Sprintf("mpi: rank %d: %v", e.Rank, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// WorldError aggregates the per-rank failures of one RunErr execution.
type WorldError struct {
	Errs []*RankError // ordered by rank
}

func (e *WorldError) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0].Error()
	}
	return fmt.Sprintf("%v (and %d more ranks failed)", e.Errs[0], len(e.Errs)-1)
}

// Unwrap exposes the per-rank errors to errors.Is/As.
func (e *WorldError) Unwrap() []error {
	out := make([]error, len(e.Errs))
	for i, re := range e.Errs {
		out[i] = re
	}
	return out
}

// Run executes body concurrently on every rank and blocks until all ranks
// return. If any rank panics, Run re-panics with the first panic value
// after the others finish or deadlock is broken by closing inboxes.
func (w *World) Run(body func(c *Comm)) {
	err := w.RunErr(func(c *Comm) error {
		body(c)
		return nil
	})
	var we *WorldError
	if errors.As(err, &we) {
		panic(we.Errs[0].Error())
	}
}

// RunErr executes body concurrently on every rank and blocks until all
// ranks return, converting rank panics (including injected chaos
// crashes) into errors at this boundary instead of taking the whole
// process down. It returns nil when every rank returned nil, or a
// *WorldError listing each failed rank. A panicking rank aborts the
// world so blocked peers fail fast instead of deadlocking; the caller
// may Reset the world and run again (the recovery harness in
// internal/ft does exactly that).
func (w *World) RunErr(body func(c *Comm) error) error {
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	panicked := make([]bool, w.size)
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = panicToError(p)
					panicked[rank] = true
					// Wake everything so blocked ranks can fail fast
					// instead of deadlocking.
					w.Abort()
				}
			}()
			errs[rank] = body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	var we *WorldError
	for r, e := range errs {
		if e != nil {
			if we == nil {
				we = &WorldError{}
			}
			we.Errs = append(we.Errs, &RankError{Rank: r, Err: e, Panicked: panicked[r]})
		}
	}
	if we == nil {
		return nil
	}
	return we
}

// panicToError converts a recovered panic value into an error, keeping
// error values (e.g. *CrashError, ErrWorldAborted) unwrappable.
func panicToError(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return fmt.Errorf("%v", p)
}

// Abort closes all inboxes and releases barrier waiters, so that a
// failed rank does not deadlock the rest: every subsequent or blocked
// Send/Recv/Barrier on the world panics with ErrWorldAborted (converted
// to an error at the RunErr boundary). The world stays aborted until
// Reset.
func (w *World) Abort() {
	w.aborted.Store(true)
	for i := range w.inboxes {
		b := w.inboxes[i].Load()
		if b == nil {
			continue
		}
		b.mu.Lock()
		b.closed = true
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	w.barrierMu.Lock()
	w.barrierGen++
	w.barrierCnt = 0
	w.barrierCond.Broadcast()
	w.barrierMu.Unlock()
	if t := w.barrier.Load(); t != nil {
		t.abort()
	}
}

// Reset rearms an aborted world for another Run: all queued messages are
// discarded, inboxes reopen, and the barrier state clears. The caller
// must guarantee no rank is inside an mpi operation during Reset (the
// ft recovery coordinator resets only after every rank has quiesced).
// Chaos state is preserved: already-fired scheduled crashes stay fired
// and the per-rank decision streams continue, so a replay does not
// re-suffer identical faults forever.
func (w *World) Reset() {
	for i := range w.inboxes {
		b := w.inboxes[i].Load()
		if b == nil {
			continue
		}
		b.mu.Lock()
		clear(b.queue)
		b.queue = b.queue[:0]
		b.head = 0
		b.closed = false
		b.mu.Unlock()
	}
	w.barrierMu.Lock()
	w.barrierGen++
	w.barrierCnt = 0
	w.barrierMu.Unlock()
	if t := w.barrier.Load(); t != nil {
		t.reset()
	}
	w.aborted.Store(false)
}

// Comm is one rank's endpoint into the world.
type Comm struct {
	world *World
	rank  int
	tel   *telemetry.Recorder
}

// SetTelemetry attaches a per-rank recorder: every subsequent message
// this endpoint sends is stamped and counted per destination, and every
// receive is counted per source with its send-to-match latency. nil
// detaches (the default; the transport then skips all probes).
func (c *Comm) SetTelemetry(rec *telemetry.Recorder) { c.tel = rec }

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers a copy of data to dst with the given tag. It has buffered
// semantics: the caller may reuse data immediately after Send returns.
func (c *Comm) Send(dst, tag int, data []float32) {
	cp := make([]float32, len(data))
	copy(cp, data)
	c.deliver(dst, tag, cp)
}

// SendOwned delivers data to dst without copying: ownership of the slice
// transfers to the runtime and then to the receiver. The caller must not
// touch data after the call. Paired with RecvTake/IrecvTake and the
// GetBuffer/PutBuffer pool, a message costs one pack and zero further
// copies — the zero-copy halo path of the execution-engine redesign.
func (c *Comm) SendOwned(dst, tag int, data []float32) {
	c.deliver(dst, tag, data)
}

// deliver enqueues data (already owned by the runtime) at dst's inbox.
// On a chaos-armed world it runs the reliable-transport simulation:
// checksum stamping, seeded drop/corrupt/delay decisions, sender-side
// retransmission with exponential backoff, and scheduled rank crashes.
func (c *Comm) deliver(dst, tag int, data []float32) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", dst, c.world.size))
	}
	c.world.chargeLink()
	ch := c.world.chaos
	if ch == nil {
		c.enqueue(dst, tag, data, 0)
		return
	}
	op, crash := ch.beginSend(c.rank)
	if crash {
		ch.crashes.Add(1)
		panic(&CrashError{Rank: c.rank, SendOp: op})
	}
	sum := checksum(data)
	backoff := ch.plan.RetryBackoff
	consec := 0
	for attempt := 0; ; attempt++ {
		f, delay := ch.draw(c.rank, consec, len(data))
		switch f {
		case fateDrop:
			// Lost on the wire: the sender times out and retransmits
			// after backoff.
			ch.dropped.Add(1)
		case fateCorrupt:
			// Bit flip on the wire: the corrupted copy is enqueued with
			// the original checksum, the receiver detects the mismatch
			// and discards it, and the sender retransmits.
			ch.corrupted.Add(1)
			c.enqueue(dst, tag, ch.corruptCopy(c.rank, data), sum)
		case fateDelay:
			ch.delayed.Add(1)
			time.Sleep(delay)
			fallthrough
		default:
			ch.delivered.Add(1)
			c.enqueue(dst, tag, data, sum)
			return
		}
		if attempt >= ch.plan.MaxRetries {
			panic(&RetryExhaustedError{Rank: c.rank, Dst: dst, Tag: tag, Attempts: attempt + 1})
		}
		consec++
		ch.retries.Add(1)
		time.Sleep(backoff)
		if backoff < time.Millisecond {
			backoff *= 2
		}
	}
}

// enqueue appends one wire payload to dst's inbox.
func (c *Comm) enqueue(dst, tag int, data []float32, sum uint64) {
	var sent int64
	if c.tel != nil {
		sent = telemetry.Now()
		c.tel.CountSent(dst, len(data))
	}
	b := c.world.inboxAt(dst)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		panic(fmt.Errorf("mpi: send: %w", ErrWorldAborted))
	}
	// Reclaim the dead prefix before growing the queue, so steady-state
	// pipelining reuses capacity instead of appending forever.
	if b.head > 32 && b.head*2 >= len(b.queue) {
		n := copy(b.queue, b.queue[b.head:])
		clear(b.queue[n:])
		b.queue = b.queue[:n]
		b.head = 0
	}
	b.seq++
	b.queue = append(b.queue, message{src: c.rank, tag: tag, data: data, seq: b.seq, sent: sent, sum: sum})
	b.cond.Broadcast()
	b.mu.Unlock()
	c.world.sentMsgs.Add(1)
	c.world.sentFloats.Add(uint64(len(data)))
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Recv blocks until a message matching (src, tag) is available, copies
// its payload into buf, and returns the receive status. src may be
// AnySource and tag may be AnyTag. It returns an error — never panics —
// when src is not a valid rank, when the message is longer than buf
// (the message is consumed and lost, matching MPI_ERR_TRUNCATE), or
// when the world is aborted mid-wait; a chaos-crashed peer therefore
// surfaces as an error at this rank instead of taking the whole process
// down. Hot paths that treat these as programming errors use MustRecv.
func (c *Comm) Recv(buf []float32, src, tag int) (Status, error) {
	if src != AnySource && (src < 0 || src >= c.world.size) {
		return Status{}, fmt.Errorf("mpi: Recv from invalid rank %d (size %d)", src, c.world.size)
	}
	m, err := c.takeMatch(src, tag)
	if err != nil {
		return Status{}, err
	}
	c.noteRecv(m)
	if len(m.data) > len(buf) {
		return Status{}, fmt.Errorf("mpi: Recv overflow: message %d > buffer %d", len(m.data), len(buf))
	}
	copy(buf, m.data)
	return Status{Source: m.src, Tag: m.tag, Count: len(m.data)}, nil
}

// MustRecv is Recv for call sites where a receive failure is a
// programming error or is handled at the Run/RunErr boundary: it panics
// on any Recv error (the runner converts the panic back into a per-rank
// error instead of crashing the process).
func (c *Comm) MustRecv(buf []float32, src, tag int) Status {
	st, err := c.Recv(buf, src, tag)
	if err != nil {
		panic(err)
	}
	return st
}

// RecvTake blocks until a message matching (src, tag) is available and
// returns its payload without copying — the receiver takes ownership of
// the sender's lent buffer. Recycle it with PutBuffer when done. Errors
// follow the Recv contract (minus overflow, which cannot occur).
func (c *Comm) RecvTake(src, tag int) ([]float32, Status, error) {
	if src != AnySource && (src < 0 || src >= c.world.size) {
		return nil, Status{}, fmt.Errorf("mpi: RecvTake from invalid rank %d (size %d)", src, c.world.size)
	}
	m, err := c.takeMatch(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	c.noteRecv(m)
	return m.data, Status{Source: m.src, Tag: m.tag, Count: len(m.data)}, nil
}

// MustRecvTake is RecvTake with the MustRecv panic contract.
func (c *Comm) MustRecvTake(src, tag int) ([]float32, Status) {
	data, st, err := c.RecvTake(src, tag)
	if err != nil {
		panic(err)
	}
	return data, st
}

// noteRecv records a matched message on the telemetry recorder. Called
// after takeMatch returns, outside the inbox lock.
func (c *Comm) noteRecv(m message) {
	if c.tel == nil {
		return
	}
	var lat int64
	if m.sent > 0 {
		lat = telemetry.Now() - m.sent
	}
	c.tel.CountRecv(m.src, len(m.data), lat)
}

// takeMatch removes and returns the earliest-arrived message matching
// (src, tag) from this rank's inbox, blocking until one exists. The
// queue is in arrival (seq) order, so the first match is the earliest;
// the scan stops there. A head-of-queue match — the common case — pops
// in O(1) by advancing the head cursor; an interior match (out-of-order
// tag arrival) shifts only the messages ahead of it.
//
// On a chaos-armed world each matched payload is verified against its
// per-message checksum first; a corrupted message is discarded and the
// scan resumes, waiting for the sender's retransmission — the receiver
// half of the reliable-transport simulation.
func (c *Comm) takeMatch(src, tag int) (message, error) {
	b := c.world.inboxAt(c.rank)
	b.mu.Lock()
	defer b.mu.Unlock()
rescan:
	for {
		for i := b.head; i < len(b.queue); i++ {
			m := b.queue[i]
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				if i == b.head {
					b.queue[i] = message{} // release the payload reference
					b.head++
					if b.head == len(b.queue) {
						b.queue = b.queue[:0]
						b.head = 0
					}
				} else {
					copy(b.queue[b.head+1:i+1], b.queue[b.head:i])
					b.queue[b.head] = message{}
					b.head++
				}
				if ch := c.world.chaos; ch != nil && m.sum != 0 && checksum(m.data) != m.sum {
					ch.checksumRejects.Add(1)
					continue rescan // discard; the retransmission follows
				}
				return m, nil
			}
		}
		if b.closed {
			return message{}, fmt.Errorf("mpi: recv: %w", ErrWorldAborted)
		}
		b.cond.Wait()
	}
}

// Request is a handle to a non-blocking operation.
type Request struct {
	done   bool
	isRecv bool
	take   bool // zero-copy receive: claim the message buffer on Wait
	comm   *Comm
	buf    []float32
	src    int
	tag    int
	status Status
}

// Isend starts a non-blocking send. With the eager transport the operation
// completes immediately; the returned request exists so call sites mirror
// the structure of the original MPI code (unique tags + MPI_Waitall).
func (c *Comm) Isend(dst, tag int, data []float32) *Request {
	c.Send(dst, tag, data)
	return &Request{done: true, comm: c}
}

// IsendOwned is Isend with SendOwned semantics: no copy, the runtime takes
// ownership of data.
func (c *Comm) IsendOwned(dst, tag int, data []float32) *Request {
	c.SendOwned(dst, tag, data)
	return &Request{done: true, comm: c}
}

// Irecv posts a non-blocking receive into buf. The receive is matched and
// completed when Wait (or Waitall) is called on the returned request.
func (c *Comm) Irecv(buf []float32, src, tag int) *Request {
	return &Request{isRecv: true, comm: c, buf: buf, src: src, tag: tag}
}

// IrecvTake posts a non-blocking zero-copy receive: no buffer is supplied,
// and after Wait the message payload is available from Data(). The
// receiver owns the buffer; recycle it with PutBuffer after unpacking.
func (c *Comm) IrecvTake(src, tag int) *Request {
	return &Request{isRecv: true, take: true, comm: c, src: src, tag: tag}
}

// Wait blocks until the request completes and returns its status. Like
// MustRecv, it panics on receive errors (aborted world, overflow); the
// Run/RunErr boundary converts the panic into a per-rank error.
func (r *Request) Wait() Status {
	if r.done {
		return r.status
	}
	if r.isRecv {
		if r.take {
			r.buf, r.status = r.comm.MustRecvTake(r.src, r.tag)
		} else {
			r.status = r.comm.MustRecv(r.buf, r.src, r.tag)
		}
	}
	r.done = true
	return r.status
}

// Data returns the payload of a completed zero-copy receive (IrecvTake
// after Wait); nil otherwise.
func (r *Request) Data() []float32 {
	if !r.done || !r.take {
		return nil
	}
	return r.buf
}

// Waitall completes every request in reqs.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// BarrierConvoy is the legacy centralized barrier: one mutex, one
// condvar, one generation counter shared by every rank. At O(10^4)
// ranks the single lock serializes arrival and the final Broadcast
// wakes all P-1 waiters into a convoy on that same lock. Kept so the
// scale benchmark (benchtab -exp scale) can measure it against the
// combining tree that Barrier uses; new code should call Barrier.
func (c *Comm) BarrierConvoy() {
	w := c.world
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierCnt++
	if w.barrierCnt == w.size {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierCond.Broadcast()
		w.barrierMu.Unlock()
		return
	}
	for gen == w.barrierGen {
		w.barrierCond.Wait()
	}
	w.barrierMu.Unlock()
	if w.aborted.Load() {
		panic(fmt.Errorf("mpi: barrier: %w", ErrWorldAborted))
	}
}

// Reserved internal tag space for collectives; user tags must be >= 0, so
// negatives below AnyTag are safe.
const (
	tagBcast  = -100
	tagReduce = -101
	tagGather = -102
	tagAll    = -103
)

// Op is a reduction operator.
type Op func(a, b float64) float64

// Standard reduction operators.
var (
	Sum Op = func(a, b float64) float64 { return a + b }
	Max Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	Min Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Gather collects each rank's data at root. Root receives a slice of
// per-rank payloads indexed by rank; other ranks receive nil. Gather
// stays flat (every rank sends directly to root): the payloads are
// unequal-sized and root materializes all of them anyway, so a tree
// would only add store-and-forward copies without reducing root's O(P)
// memory or message count.
func (c *Comm) Gather(data []float32, root int) [][]float32 {
	if c.rank != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([][]float32, c.world.size)
	out[root] = append([]float32(nil), data...)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		// Probe-free gather with potentially unequal sizes: use a large
		// temporary sized by a first-class length exchange.
		m := c.takeMatchFrom(r, tagGather)
		out[r] = m.data
	}
	return out
}

func (c *Comm) takeMatchFrom(src, tag int) message {
	m, err := c.takeMatch(src, tag)
	if err != nil {
		panic(err)
	}
	c.noteRecv(m)
	return m
}

// packF64 encodes float64 values into pairs of float32 (hi/lo split) so the
// float32 transport can carry them without precision loss beyond ~1e-14.
func packF64(src []float64, dst []float32) {
	for i, v := range src {
		hi := float32(v)
		lo := float32(v - float64(hi))
		dst[2*i] = hi
		dst[2*i+1] = lo
	}
}

func unpackF64(src []float32, dst []float64) {
	for i := range dst {
		dst[i] = float64(src[2*i]) + float64(src[2*i+1])
	}
}

// SortedTags returns the distinct tags currently queued in this rank's
// inbox, sorted; a test/debug helper.
func (c *Comm) SortedTags() []int {
	b := c.world.inboxAt(c.rank)
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := map[int]bool{}
	for _, m := range b.queue[b.head:] {
		seen[m.tag] = true
	}
	tags := make([]int, 0, len(seen))
	for t := range seen {
		tags = append(tags, t)
	}
	sort.Ints(tags)
	return tags
}
