package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Collectives for O(10^4)-rank worlds.
//
// Barrier is a combining tree: each rank owns one node of an implicit
// binary tree (children of r are 2r+1 and 2r+2), arrival propagates up
// by the arriving goroutine carrying subtree completions toward the
// root, release propagates down by bumping per-node generation words.
// Each rank parks exactly once (on its own node's release) and both
// directions touch only a rank's own node and its parent/children, so
// a barrier is O(log P) lock handoffs deep instead of P-1 waiters
// convoying on one mutex and one condvar (the legacy BarrierConvoy,
// kept for comparison). Like the
// convoy, the tree barrier sends no messages: it never touches the
// inbox path, is never charged by SetLinkLatency, never appears in
// MessageStats, and composes with chaos injection trivially (there is
// nothing to drop or corrupt).
//
// Bcast and Reduce are binomial trees (the classic MPICH recursive-
// halving schedule), and Allreduce remains tree-Reduce-to-0 plus
// tree-Bcast. Each carries exactly the message count and float volume
// of the flat versions they replace — P-1 messages for Bcast/Reduce,
// 2(P-1) for Allreduce — so MessageStats-based tests and the perfmodel
// fit are unaffected; only the critical path drops from O(P) to
// O(log P). The payloads ride the ordinary Send path, so link-latency
// charging, telemetry counters, and chaos (drop/corrupt/delay/crash +
// checksum retransmission) all apply to collectives exactly as to
// point-to-point traffic.

// barrierNode is one rank's slot in the combining tree.
type barrierNode struct {
	mu   sync.Mutex
	cond sync.Cond // L set to &mu when the tree is built
	// arrived counts the arrivals this node has absorbed for the
	// current barrier: the owning rank's own entry plus one completed
	// subtree per child. Whoever's increment makes the node full zeroes
	// it and carries the completion to the parent, so no goroutine ever
	// sleeps waiting for children — each rank parks exactly once, on
	// its own node's release.
	arrived int
	// release is a per-node generation word. A waiter records its value
	// at entry and sleeps until it changes; the parent's owner bumps it
	// to release the subtree. Comparison is by != (not <), so the uint32
	// wrapping past MaxUint32 is benign — only one bump can happen
	// between a waiter's read and its wake.
	release uint32
}

// barrierTree is the lazily built set of nodes; one per rank.
type barrierTree struct {
	nodes []barrierNode
}

// barrierNodes returns the world's combining tree, building it on first
// use (one slice allocation, ~100 B/rank, charged to the first Barrier
// call rather than to NewWorld).
func (w *World) barrierNodes() []barrierNode {
	if t := w.barrier.Load(); t != nil {
		return t.nodes
	}
	w.barrierMu.Lock()
	defer w.barrierMu.Unlock()
	if t := w.barrier.Load(); t != nil {
		return t.nodes
	}
	t := &barrierTree{nodes: make([]barrierNode, w.size)}
	for i := range t.nodes {
		t.nodes[i].cond.L = &t.nodes[i].mu
	}
	w.barrier.Store(t)
	return t.nodes
}

// abort wakes every waiter; they observe w.aborted and panic.
func (t *barrierTree) abort() {
	for i := range t.nodes {
		n := &t.nodes[i]
		n.mu.Lock()
		n.release++
		n.cond.Broadcast()
		n.mu.Unlock()
	}
}

// reset clears arrival state for a quiesced world. Release generations
// are left wherever they are: waiters compare them relatively, so
// absolute values never need to agree across resets.
func (t *barrierTree) reset() {
	for i := range t.nodes {
		n := &t.nodes[i]
		n.mu.Lock()
		n.arrived = 0
		n.mu.Unlock()
	}
}

// Barrier blocks until every rank in the world has entered it. On an
// aborted world it panics with ErrWorldAborted (a released waiter must
// not proceed as if the barrier completed), converted to an error at
// the Run/RunErr boundary.
func (c *Comm) Barrier() {
	w := c.world
	if w.aborted.Load() {
		panic(fmt.Errorf("mpi: barrier: %w", ErrWorldAborted))
	}
	if w.size == 1 {
		return
	}
	nodes := w.barrierNodes()
	r := c.rank
	n := &nodes[r]
	// weight is the arrivals that complete node i: the owner's own entry
	// plus one completed subtree per child.
	weight := func(i int) int {
		wt := 1
		if 2*i+1 < w.size {
			wt++
		}
		if 2*i+2 < w.size {
			wt++
		}
		return wt
	}

	// Arrive: the generation is recorded in the same critical section as
	// the arrival — our node's release can only be bumped after the root
	// completes, which needs this arrival, so the bump always lands
	// after the read.
	n.mu.Lock()
	gen := n.release
	n.arrived++
	full := n.arrived == weight(r)
	if full {
		n.arrived = 0
	}
	n.mu.Unlock()

	// Combine up: the goroutine whose arrival completed a node carries
	// the completion to the parent, and so on — nobody sleeps on the way
	// up. Reaching the top as the root's completer means every rank has
	// arrived; that goroutine starts the release cascade.
	if full {
		cur := r
		for cur != 0 {
			p := (cur - 1) / 2
			pn := &nodes[p]
			pn.mu.Lock()
			pn.arrived++
			pfull := pn.arrived == weight(p)
			if pfull {
				pn.arrived = 0
			}
			pn.mu.Unlock()
			if !pfull {
				break
			}
			cur = p
		}
		if cur == 0 {
			root := &nodes[0]
			root.mu.Lock()
			root.release++
			root.cond.Broadcast()
			root.mu.Unlock()
		}
	}

	// Park once on our own node until the release wave reaches it. The
	// root's completer may be waking itself here (gen was read before
	// its own bump, so the loop condition is already false).
	n.mu.Lock()
	for n.release == gen && !w.aborted.Load() {
		n.cond.Wait()
	}
	n.mu.Unlock()
	if w.aborted.Load() {
		panic(fmt.Errorf("mpi: barrier: %w", ErrWorldAborted))
	}

	// Release down: every released rank forwards the wave to its
	// children, giving an O(log P) wake chain with no shared lock.
	for _, ch := range [2]int{2*r + 1, 2*r + 2} {
		if ch >= w.size {
			continue
		}
		cn := &nodes[ch]
		cn.mu.Lock()
		cn.release++
		cn.cond.Broadcast()
		cn.mu.Unlock()
	}
}

// collectiveSpan starts timing a collective on this rank's telemetry
// recorder; the returned func folds the elapsed time into the
// Collective phase. Barriers are excluded: the solver already wraps
// them in Sync spans, and double counting would skew the Eq. 7 split.
func (c *Comm) collectiveSpan() func() {
	if c.tel == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { c.tel.AddDur(telemetry.Collective, time.Since(t0)) }
}

// Bcast broadcasts buf from root to all ranks; every rank returns with
// buf holding root's data. Binomial tree: rank r (relative to root)
// receives from the rank that differs in its lowest set bit, then
// forwards to the ranks it dominates — P-1 messages total, ceil(log2 P)
// rounds on the critical path.
func (c *Comm) Bcast(buf []float32, root int) {
	if c.world.size == 1 {
		return
	}
	done := c.collectiveSpan()
	defer done()
	size := c.world.size
	rel := (c.rank - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := (rel - mask + root) % size
			c.MustRecv(buf, src, tagBcast)
			break
		}
		mask <<= 1
	}
	// mask is now rel's lowest set bit (or >= size at the root); the
	// ranks below it are this rank's subtree.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < size {
			dst := (rel + mask + root) % size
			c.Send(dst, tagBcast, buf)
		}
	}
}

// Reduce combines elementwise values from all ranks at root with op.
// Non-root ranks return their input unchanged; root returns the
// reduction. Binomial tree, mirroring Bcast upside down: each rank
// folds in its subtree's partials, then sends one message up. The
// combine order differs from the old flat rank-0..P-1 scan, so
// floating-point Sum results may differ in the last bits between the
// two schedules — but the tree order is deterministic for a given
// (size, root), which is what the repo's bit-identity tests pin.
func (c *Comm) Reduce(vals []float64, op Op, root int) []float64 {
	if c.world.size == 1 {
		return append([]float64(nil), vals...)
	}
	done := c.collectiveSpan()
	defer done()
	size := c.world.size
	rel := (c.rank - root + size) % size
	acc := append([]float64(nil), vals...)
	f32 := make([]float32, 2*len(vals))
	other := make([]float64, len(vals))
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			dst := (rel - mask + root) % size
			packF64(acc, f32)
			c.Send(dst, tagReduce, f32)
			return vals
		}
		if rel+mask < size {
			src := (rel + mask + root) % size
			c.MustRecv(f32, src, tagReduce)
			unpackF64(f32, other)
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
	}
	return acc
}

// Allreduce performs Reduce at rank 0 then broadcasts the result; both
// halves run on the binomial trees above, so the critical path is
// 2·ceil(log2 P) rounds while the wire traffic (2(P-1) messages, the
// same split-float payloads) matches the flat implementation.
func (c *Comm) Allreduce(vals []float64, op Op) []float64 {
	res := c.Reduce(vals, op, 0)
	f32 := make([]float32, 2*len(vals))
	if c.rank == 0 {
		packF64(res, f32)
	}
	c.Bcast(f32, 0)
	out := make([]float64, len(vals))
	unpackF64(f32, out)
	return out
}
