// Chaos: deterministic, seeded fault injection for the in-process MPI
// runtime — the message-layer half of the distributed chaos harness
// (§III.F). A ChaosPlan injected into a World before Run perturbs the
// transport with four fault classes, mirroring what long petascale runs
// actually see:
//
//   - message delay: the send stalls for a bounded, seeded duration;
//   - message drop: the payload is lost on the wire and the sender
//     retries after an exponential backoff (the timeout/retransmit loop
//     of a reliable transport), bounded so delivery always converges;
//   - payload corruption: a single bit of the wire copy is flipped; the
//     receiver detects the damage through the per-message checksum the
//     chaos transport stamps on every payload, discards the message, and
//     the sender's proactive retransmit supplies the clean copy;
//   - whole-rank crash: the rank's goroutine aborts via panic at a
//     scheduled send operation; Run/RunErr convert the panic into a
//     *CrashError at the runner boundary so the surviving ranks (and the
//     recovery harness in internal/ft) can coordinate a rollback instead
//     of the whole process dying.
//
// Every decision is drawn from a per-rank rand.Rand seeded from
// Plan.Seed, so a given (plan, program) pair injects the same faults at
// the same operations on every run — the property the chaos soak tests
// pin their bit-identity guarantees on.
package mpi

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosPlan configures deterministic fault injection on a World. The
// zero value of each field disables that fault class.
type ChaosPlan struct {
	// Seed drives every per-rank random decision. Two runs with the same
	// seed and the same per-rank operation sequence inject identical
	// faults.
	Seed int64

	// DropProb is the per-transmission probability that the payload is
	// lost and the sender must retry.
	DropProb float64
	// CorruptProb is the per-transmission probability that a single bit
	// of the wire copy is flipped (caught by the per-message checksum).
	CorruptProb float64
	// DelayProb is the per-transmission probability that the send stalls
	// for a random duration up to MaxDelay.
	DelayProb float64
	// MaxDelay bounds injected delays. 0 defaults to 200µs.
	MaxDelay time.Duration

	// RetryBackoff is the base sender backoff after a lost or rejected
	// transmission; it doubles per consecutive retry. 0 defaults to 20µs.
	RetryBackoff time.Duration
	// MaxRetries bounds the sender's retransmissions per message; past
	// it the sender gives up with a *RetryExhaustedError panic (converted
	// to an error at the Run boundary). 0 defaults to 8.
	MaxRetries int
	// MaxConsecutiveFaults bounds how many consecutive transmissions of
	// one message the plan may fault (default 3), so retry always
	// converges before MaxRetries under the default settings.
	MaxConsecutiveFaults int

	// CrashAtSend schedules whole-rank crashes: rank r panics with a
	// *CrashError when it begins its CrashAtSend[r]-th send operation
	// (1-based, counting every point-to-point or collective payload it
	// submits). Each scheduled crash fires exactly once per World, even
	// if the world is Reset and the run replayed — the semantics of a
	// hardware failure followed by recovery.
	CrashAtSend map[int]uint64
}

// ChaosStats counts injected faults and transport reactions since the
// plan was injected. All counters are cumulative across World.Reset.
type ChaosStats struct {
	Delivered       uint64 // messages enqueued clean
	Dropped         uint64 // transmissions lost on the wire
	Corrupted       uint64 // transmissions enqueued with a flipped bit
	ChecksumRejects uint64 // receiver-side discards of corrupt payloads
	Delayed         uint64 // transmissions stalled by injected delay
	Retries         uint64 // sender retransmissions (drops + corruptions)
	Crashes         uint64 // whole-rank crashes fired
}

// CrashError is the panic value of an injected whole-rank crash; RunErr
// surfaces it unwrapped inside the per-rank error so callers can
// errors.As for it.
type CrashError struct {
	Rank   int
	SendOp uint64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("mpi: injected crash of rank %d at send op %d", e.Rank, e.SendOp)
}

// RetryExhaustedError reports a sender that ran out of retransmission
// budget (only possible when a plan's MaxConsecutiveFaults is raised to
// MaxRetries or beyond).
type RetryExhaustedError struct {
	Rank, Dst, Tag int
	Attempts       int
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("mpi: rank %d exhausted %d send retries to rank %d tag %d",
		e.Rank, e.Attempts, e.Dst, e.Tag)
}

// chaosEngine is the per-World injection state.
type chaosEngine struct {
	plan  ChaosPlan
	ranks []*chaosRank

	delivered       atomic.Uint64
	dropped         atomic.Uint64
	corrupted       atomic.Uint64
	checksumRejects atomic.Uint64
	delayed         atomic.Uint64
	retries         atomic.Uint64
	crashes         atomic.Uint64
}

// chaosRank is one rank's decision state. The mutex makes the injectors
// safe even if a rank's comm endpoint is (incorrectly but plausibly)
// shared across goroutines.
type chaosRank struct {
	mu      sync.Mutex
	rng     *rand.Rand
	sends   uint64
	crashed bool
}

// fate is one transmission outcome decision.
type fate int

const (
	fateOK fate = iota
	fateDrop
	fateCorrupt
	fateDelay
)

func newChaosEngine(plan ChaosPlan, size int) *chaosEngine {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 200 * time.Microsecond
	}
	if plan.RetryBackoff <= 0 {
		plan.RetryBackoff = 20 * time.Microsecond
	}
	if plan.MaxRetries <= 0 {
		plan.MaxRetries = 8
	}
	if plan.MaxConsecutiveFaults <= 0 {
		plan.MaxConsecutiveFaults = 3
	}
	e := &chaosEngine{plan: plan, ranks: make([]*chaosRank, size)}
	for r := range e.ranks {
		// Distinct deterministic stream per rank: the decision sequence
		// depends only on (seed, rank, per-rank op order), never on the
		// goroutine interleaving across ranks.
		e.ranks[r] = &chaosRank{rng: rand.New(rand.NewSource(plan.Seed ^ int64(uint64(r)*0x9e3779b97f4a7c15)))}
	}
	return e
}

func (e *chaosEngine) stats() ChaosStats {
	return ChaosStats{
		Delivered:       e.delivered.Load(),
		Dropped:         e.dropped.Load(),
		Corrupted:       e.corrupted.Load(),
		ChecksumRejects: e.checksumRejects.Load(),
		Delayed:         e.delayed.Load(),
		Retries:         e.retries.Load(),
		Crashes:         e.crashes.Load(),
	}
}

// beginSend counts one send operation of rank and reports whether the
// scheduled crash fires at it.
func (e *chaosEngine) beginSend(rank int) (op uint64, crash bool) {
	cr := e.ranks[rank]
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.sends++
	op = cr.sends
	if !cr.crashed && e.plan.CrashAtSend[rank] == op {
		cr.crashed = true
		crash = true
	}
	return
}

// draw decides the fate of one transmission attempt. consec is the
// number of consecutive faulted attempts so far for this message; at
// MaxConsecutiveFaults the draw is forced clean so delivery converges.
func (e *chaosEngine) draw(rank, consec, payloadLen int) (fate, time.Duration) {
	if consec >= e.plan.MaxConsecutiveFaults {
		return fateOK, 0
	}
	cr := e.ranks[rank]
	cr.mu.Lock()
	defer cr.mu.Unlock()
	u := cr.rng.Float64()
	switch {
	case u < e.plan.DropProb:
		return fateDrop, 0
	case u < e.plan.DropProb+e.plan.CorruptProb && payloadLen > 0:
		return fateCorrupt, 0
	case u < e.plan.DropProb+e.plan.CorruptProb+e.plan.DelayProb:
		return fateDelay, time.Duration(cr.rng.Int63n(int64(e.plan.MaxDelay) + 1))
	}
	return fateOK, 0
}

// corruptCopy returns a copy of data with one seeded bit flipped.
func (e *chaosEngine) corruptCopy(rank int, data []float32) []float32 {
	cp := append([]float32(nil), data...)
	cr := e.ranks[rank]
	cr.mu.Lock()
	i := cr.rng.Intn(len(cp))
	bit := uint(cr.rng.Intn(32))
	cr.mu.Unlock()
	cp[i] = math.Float32frombits(math.Float32bits(cp[i]) ^ 1<<bit)
	return cp
}

// checksum is the per-message FNV-1a digest over the payload bit
// patterns and length. It is computed only on chaos-enabled worlds; the
// fault-free transport never pays for it.
func checksum(data []float32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(len(data))) * prime
	for _, v := range data {
		h = (h ^ uint64(math.Float32bits(v))) * prime
	}
	// 0 is the "unchecked" sentinel on message.sum; remap the (1 in 2^64)
	// collision so a stamped message never looks unchecked.
	if h == 0 {
		h = 1
	}
	return h
}

// InjectChaos arms the world with a fault-injection plan. It must be
// called before Run/RunErr; messages sent before injection carry no
// checksum and would be rejected once verification turns on. Injection
// survives Reset — scheduled crashes that already fired stay fired, and
// the per-rank decision streams continue where they left off, so a
// recovered replay does not re-suffer the same scheduled faults.
func (w *World) InjectChaos(plan ChaosPlan) {
	w.chaos = newChaosEngine(plan, w.size)
}

// ChaosStats returns the cumulative injected-fault counters, or the zero
// stats when no plan is armed.
func (w *World) ChaosStats() ChaosStats {
	if w.chaos == nil {
		return ChaosStats{}
	}
	return w.chaos.stats()
}
