package srcgen

import (
	"math"
	"testing"

	"repro/internal/core/source"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/pfs"
)

func demoSources(t *testing.T) []source.SampledSource {
	t.Helper()
	spec := source.HaskellSpec{
		GJ: 8, I0: 2, I1: 22, K0: 1, K1: 9, HypoI: 10, HypoK: 5,
		H: 200, Mw: 6.5, Vr: 2800, RiseTime: 0.6, Mu: 3e10,
		Dt: 0.02, NT: 150, TaperCells: 2,
	}
	srcs, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return srcs
}

func TestSourceFileRoundTrip(t *testing.T) {
	fsys := pfs.New(pfs.Config{OSTs: 4, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 8})
	srcs := demoSources(t)
	st := WriteSourceFile(fsys, "in/source.bin", srcs)
	if st.Bytes == 0 {
		t.Error("no bytes priced")
	}
	got, err := ReadSourceFile(fsys, "in/source.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(srcs) {
		t.Fatalf("count %d, want %d", len(got), len(srcs))
	}
	for i := range srcs {
		a, b := &srcs[i], &got[i]
		// Dt travels as float32 in the file, so compare with tolerance.
		if a.GI != b.GI || a.GJ != b.GJ || a.GK != b.GK ||
			math.Abs(a.Dt-b.Dt) > 1e-8 || len(a.Rate) != len(b.Rate) {
			t.Fatalf("source %d header mismatch: %+v vs %+v", i, a.GI, b.GI)
		}
		for n := range a.Rate {
			if a.Rate[n] != b.Rate[n] {
				t.Fatalf("source %d sample %d differs", i, n)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	fsys := pfs.New(pfs.Config{OSTs: 4, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 8})
	if _, err := ReadSourceFile(fsys, "missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPartitionSpatialCoversAll(t *testing.T) {
	srcs := demoSources(t)
	g := grid.Dims{NX: 24, NY: 16, NZ: 12}
	dc, err := decomp.New(g, mpi.NewCart(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	parts := PartitionSpatial(srcs, dc)
	total := 0
	for r, list := range parts {
		total += len(list)
		sub := dc.SubFor(r)
		for i := range list {
			if _, _, _, ok := sub.Contains(list[i].GI, list[i].GJ, list[i].GK); !ok {
				t.Fatalf("rank %d assigned foreign source", r)
			}
		}
	}
	if total != len(srcs) {
		t.Fatalf("partitioned %d of %d sources", total, len(srcs))
	}
}

func TestPartitionTemporalRoundTripAndMemory(t *testing.T) {
	srcs := demoSources(t)
	nLoops := 6
	segs, err := PartitionTemporal(srcs, nLoops)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != nLoops {
		t.Fatalf("segments %d, want %d", len(segs), nLoops)
	}
	// Windows tile [0, nt) exactly.
	for l := 1; l < len(segs); l++ {
		if segs[l].StartStep != segs[l-1].EndStep {
			t.Fatal("segments do not tile")
		}
	}
	// Reassembly identity.
	re := Reassemble(segs)
	if len(re) != len(srcs) {
		t.Fatalf("reassembled %d, want %d", len(re), len(srcs))
	}
	byKey := map[[3]int]*source.SampledSource{}
	for i := range re {
		byKey[[3]int{re[i].GI, re[i].GJ, re[i].GK}] = &re[i]
	}
	for i := range srcs {
		b := byKey[[3]int{srcs[i].GI, srcs[i].GJ, srcs[i].GK}]
		if b == nil {
			t.Fatal("source lost in reassembly")
		}
		if len(b.Rate) != len(srcs[i].Rate) {
			t.Fatalf("length %d, want %d", len(b.Rate), len(srcs[i].Rate))
		}
		for n := range b.Rate {
			if b.Rate[n] != srcs[i].Rate[n] {
				t.Fatalf("sample %d differs after reassembly", n)
			}
		}
	}
	// Memory high water ~ total/nLoops (within 2x for header overheads).
	total := MemoryBytes(srcs)
	hw := HighWater(segs)
	if float64(hw) > 2*float64(total)/float64(nLoops) {
		t.Fatalf("high water %d vs total %d / %d loops", hw, total, nLoops)
	}
}

func TestPartitionTemporalValidation(t *testing.T) {
	if _, err := PartitionTemporal(nil, 0); err == nil {
		t.Error("nLoops=0 accepted")
	}
	// More loops than samples: clamps, still correct.
	srcs := []source.SampledSource{{GI: 1, Dt: 0.1, Rate: make([][6]float32, 3)}}
	segs, err := PartitionTemporal(srcs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments %d, want clamped 3", len(segs))
	}
}

func TestMemoryBytesScalesWithSamples(t *testing.T) {
	a := []source.SampledSource{{Rate: make([][6]float32, 100)}}
	b := []source.SampledSource{{Rate: make([][6]float32, 200)}}
	ra, rb := MemoryBytes(a), MemoryBytes(b)
	if math.Abs(float64(rb)/float64(ra)-2) > 0.1 {
		t.Fatalf("memory not ~linear in samples: %d vs %d", ra, rb)
	}
}
