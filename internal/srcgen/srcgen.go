// Package srcgen implements the kinematic source tool chain of §III.D:
// dSrcG writes the moment-rate file; PetaSrcP partitions it spatially onto
// solver ranks and temporally into loops, bounding the per-rank memory
// high-water mark (M8: the 2.1 TB source fit into 228 MB/core only after
// splitting into 36 temporal segments).
package srcgen

import (
	"fmt"

	"repro/internal/core/source"
	"repro/internal/decomp"
	"repro/internal/mpiio"
	"repro/internal/pfs"
)

// WriteSourceFile stores sources in the dSrcG binary format: for each
// sub-fault a header (gi, gj, gk, nt, dt) followed by nt records of six
// moment-rate components.
func WriteSourceFile(fsys *pfs.FS, path string, srcs []source.SampledSource) pfs.PhaseStats {
	var buf []float32
	buf = append(buf, float32(len(srcs)))
	for i := range srcs {
		s := &srcs[i]
		buf = append(buf, float32(s.GI), float32(s.GJ), float32(s.GK),
			float32(len(s.Rate)), float32(s.Dt))
		for _, r := range s.Rate {
			buf = append(buf, r[0], r[1], r[2], r[3], r[4], r[5])
		}
	}
	data := mpiio.PutFloat32s(buf)
	fsys.WriteAt(path, 0, data)
	return fsys.SimulatePhase([]pfs.Op{{Path: path, Bytes: len(data), Write: true, Open: true}})
}

// ReadSourceFile loads a dSrcG file.
func ReadSourceFile(fsys *pfs.FS, path string) ([]source.SampledSource, error) {
	sz := fsys.Size(path)
	if sz < 4 {
		return nil, fmt.Errorf("srcgen: %s missing or empty", path)
	}
	raw := make([]byte, sz)
	if err := fsys.ReadAt(path, 0, raw); err != nil {
		return nil, err
	}
	vals := mpiio.GetFloat32s(raw)
	n := int(vals[0])
	p := 1
	out := make([]source.SampledSource, 0, n)
	for s := 0; s < n; s++ {
		if p+5 > len(vals) {
			return nil, fmt.Errorf("srcgen: truncated header at source %d", s)
		}
		src := source.SampledSource{
			GI: int(vals[p]), GJ: int(vals[p+1]), GK: int(vals[p+2]),
			Dt: float64(vals[p+4]),
		}
		nt := int(vals[p+3])
		p += 5
		if p+6*nt > len(vals) {
			return nil, fmt.Errorf("srcgen: truncated rates at source %d", s)
		}
		src.Rate = make([][6]float32, nt)
		for t := 0; t < nt; t++ {
			copy(src.Rate[t][:], vals[p:p+6])
			p += 6
		}
		out = append(out, src)
	}
	return out, nil
}

// PartitionSpatial splits sources by owning rank (PetaSrcP stage 1).
func PartitionSpatial(srcs []source.SampledSource, dc decomp.Decomp) map[int][]source.SampledSource {
	out := map[int][]source.SampledSource{}
	for i := range srcs {
		r := dc.Owner(srcs[i].GI, srcs[i].GJ, srcs[i].GK)
		out[r] = append(out[r], srcs[i])
	}
	return out
}

// Segment is one temporal loop of a partitioned source: the sources carry
// only the samples of [StartStep, EndStep), to be injected with the time
// offset StartStep*Dt.
type Segment struct {
	Loop               int
	StartStep, EndStep int
	Sources            []source.SampledSource
}

// PartitionTemporal splits each source's history into nLoops contiguous
// windows (PetaSrcP stage 2), bounding the in-memory footprint to ~1/nLoops
// of the full source.
func PartitionTemporal(srcs []source.SampledSource, nLoops int) ([]Segment, error) {
	if nLoops <= 0 {
		return nil, fmt.Errorf("srcgen: nLoops must be positive")
	}
	nt := 0
	for i := range srcs {
		if len(srcs[i].Rate) > nt {
			nt = len(srcs[i].Rate)
		}
	}
	if nLoops > nt {
		nLoops = nt
	}
	segs := make([]Segment, 0, nLoops)
	for l := 0; l < nLoops; l++ {
		s0 := l * nt / nLoops
		s1 := (l + 1) * nt / nLoops
		seg := Segment{Loop: l, StartStep: s0, EndStep: s1}
		for i := range srcs {
			src := &srcs[i]
			if s0 >= len(src.Rate) {
				continue
			}
			e := min(s1, len(src.Rate))
			window := source.SampledSource{
				GI: src.GI, GJ: src.GJ, GK: src.GK, Dt: src.Dt,
				Rate: src.Rate[s0:e],
			}
			seg.Sources = append(seg.Sources, window)
		}
		segs = append(segs, seg)
	}
	return segs, nil
}

// Reassemble restores full histories from temporal segments (inverse of
// PartitionTemporal), for verification.
func Reassemble(segs []Segment) []source.SampledSource {
	type key [3]int
	order := []key{}
	acc := map[key]*source.SampledSource{}
	for _, seg := range segs {
		for i := range seg.Sources {
			s := &seg.Sources[i]
			k := key{s.GI, s.GJ, s.GK}
			a := acc[k]
			if a == nil {
				a = &source.SampledSource{GI: s.GI, GJ: s.GJ, GK: s.GK, Dt: s.Dt}
				acc[k] = a
				order = append(order, k)
			}
			// Segments arrive in loop order; pad any gap with zeros.
			for len(a.Rate) < seg.StartStep {
				a.Rate = append(a.Rate, [6]float32{})
			}
			a.Rate = append(a.Rate, s.Rate...)
		}
	}
	out := make([]source.SampledSource, 0, len(acc))
	for _, k := range order {
		out = append(out, *acc[k])
	}
	return out
}

// MemoryBytes estimates the in-memory footprint of a source list (the
// quantity the temporal split bounds).
func MemoryBytes(srcs []source.SampledSource) int {
	total := 0
	for i := range srcs {
		total += 5*4 + len(srcs[i].Rate)*6*4
	}
	return total
}

// HighWater returns the maximum per-segment memory across segments.
func HighWater(segs []Segment) int {
	m := 0
	for _, seg := range segs {
		if b := MemoryBytes(seg.Sources); b > m {
			m = b
		}
	}
	return m
}
