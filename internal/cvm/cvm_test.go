package cvm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHomogeneousQuery(t *testing.T) {
	want := Material{Vp: 6000, Vs: 3464, Rho: 2700}
	m := Homogeneous(want)
	for _, p := range [][3]float64{{0, 0, 0}, {1e5, 2e5, 5e4}, {-10, -10, 1}} {
		got := m.Query(p[0], p[1], p[2])
		if math.Abs(got.Vs-want.Vs) > 1e-9 || math.Abs(got.Vp-want.Vp) > 1e-6 {
			t.Fatalf("Query(%v) = %+v, want Vp/Vs %g/%g", p, got, want.Vp, want.Vs)
		}
	}
}

func TestSoCalBackgroundIncreasesWithDepth(t *testing.T) {
	m := SoCal(810e3, 405e3, 85e3, 400)
	// Probe a point far from all basins.
	x, y := 50e3, 350e3
	prev := m.Query(x, y, 0)
	for _, z := range []float64{500, 2000, 8000, 30000, 80000} {
		cur := m.Query(x, y, z)
		if cur.Vs < prev.Vs {
			t.Fatalf("Vs decreased with depth: %g at %g -> %g", prev.Vs, z, cur.Vs)
		}
		if cur.Vp <= cur.Vs {
			t.Fatalf("Vp <= Vs at depth %g", z)
		}
		prev = cur
	}
	if prev.Vs > m.MaxVs {
		t.Fatalf("Vs exceeded cap: %g", prev.Vs)
	}
}

func TestSoCalBasinsAreSlow(t *testing.T) {
	m := SoCal(810e3, 405e3, 85e3, 400)
	for _, b := range m.Basins {
		center := m.Query(b.CX, b.CY, 0)
		outside := m.Query(b.CX+2*b.RX, b.CY+2*b.RY, 0)
		if center.Vs >= outside.Vs {
			t.Errorf("basin %s: center Vs %g not slower than background %g", b.Name, center.Vs, outside.Vs)
		}
		if center.Vs < m.MinVs {
			t.Errorf("basin %s: Vs %g below floor %g", b.Name, center.Vs, m.MinVs)
		}
	}
}

func TestVsFloorApplied(t *testing.T) {
	m := SoCal(810e3, 405e3, 85e3, 760) // higher floor
	for _, b := range m.Basins {
		got := m.Query(b.CX, b.CY, 0)
		if got.Vs < 760 {
			t.Errorf("basin %s: Vs %g below requested floor", b.Name, got.Vs)
		}
	}
}

func TestQueryClampsOutside(t *testing.T) {
	m := SoCal(810e3, 405e3, 85e3, 400)
	in := m.Query(0, 0, 0)
	out := m.Query(-5000, -5000, -100)
	if in != out {
		t.Fatalf("clamped query differs: %+v vs %+v", in, out)
	}
}

func TestQuality(t *testing.T) {
	qp, qs := (Material{Vs: 2000}).Quality()
	if qs != 100 || qp != 200 {
		t.Fatalf("Quality = %g,%g, want 200,100", qp, qs)
	}
}

func TestNafeDrakeMonotoneInRange(t *testing.T) {
	prev := 0.0
	for vp := 1500.0; vp <= 8000; vp += 100 {
		rho := nafeDrake(vp)
		if rho <= prev {
			t.Fatalf("density not increasing at Vp=%g: %g <= %g", vp, rho, prev)
		}
		if rho < 1500 || rho > 3500 {
			t.Fatalf("implausible density %g at Vp=%g", rho, vp)
		}
		prev = rho
	}
}

func TestLayeredValidation(t *testing.T) {
	if _, err := NewLayered(nil, nil); err == nil {
		t.Error("accepted empty table")
	}
	if _, err := NewLayered([]float64{100}, []Material{{}}); err == nil {
		t.Error("accepted first depth != 0")
	}
	if _, err := NewLayered([]float64{0, 0}, []Material{{}, {}}); err == nil {
		t.Error("accepted non-ascending depths")
	}
	if _, err := NewLayered([]float64{0, 1}, []Material{{}}); err == nil {
		t.Error("accepted length mismatch")
	}
}

func TestLayeredInterpolation(t *testing.T) {
	l := HardRock()
	top := l.Query(0, 0, 0)
	if top.Vs != 1800 {
		t.Fatalf("surface Vs = %g", top.Vs)
	}
	mid := l.Query(0, 0, 500)
	if mid.Vs <= 1800 || mid.Vs >= 2800 {
		t.Fatalf("midpoint Vs = %g, want in (1800,2800)", mid.Vs)
	}
	deep := l.Query(0, 0, 1e6)
	if deep.Vs != 3900 {
		t.Fatalf("deep Vs = %g, want last layer", deep.Vs)
	}
	// Exactly at a boundary: continuous.
	at := l.Query(0, 0, 1000)
	if math.Abs(at.Vs-2800) > 1e-9 {
		t.Fatalf("Vs at layer top = %g, want 2800", at.Vs)
	}
}

func TestLayeredLateralInvariance(t *testing.T) {
	l := HardRock()
	a := l.Query(0, 0, 3000)
	b := l.Query(1e9, -1e9, 3000)
	if a != b {
		t.Fatal("layered model should be laterally invariant")
	}
}

// Property: any query anywhere in the SoCal model returns physically
// plausible values (Vs floor respected, Vp > Vs, density plausible).
func TestQuickSoCalPlausibility(t *testing.T) {
	m := SoCal(810e3, 405e3, 85e3, 400)
	prop := func(fx, fy, fz float64) bool {
		x := math.Abs(math.Mod(fx, 1)) * m.LX
		y := math.Abs(math.Mod(fy, 1)) * m.LY
		z := math.Abs(math.Mod(fz, 1)) * m.LZ
		mat := m.Query(x, y, z)
		return mat.Vs >= 400 && mat.Vp > mat.Vs &&
			mat.Rho >= 1000 && mat.Rho < 4000 &&
			mat.Vs <= m.MaxVs*1.01
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the quality-factor relations hold exactly for any material.
func TestQuickQualityRelations(t *testing.T) {
	prop := func(vsk float64) bool {
		vs := 400 + math.Abs(math.Mod(vsk, 1))*4000
		qp, qs := (Material{Vs: vs}).Quality()
		return math.Abs(qs-50*vs/1000) < 1e-9 && math.Abs(qp-2*qs) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
