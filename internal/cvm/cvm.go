// Package cvm provides synthetic community velocity models standing in for
// the proprietary SCEC CVM4 and Harvard CVM-H databases the paper's mesh
// generator queries (§III.B). Two backends are provided, mirroring the two
// the paper supports:
//
//   - Model: a rule-based model (CVM4-like) with a depth-dependent crustal
//     background, embedded low-velocity sedimentary basins, and the M8
//     production constraints (Vs floor, Qs = 50·Vs, Qp = 2·Qs);
//   - Layered: a static depth-profile database queried by interpolation
//     (CVM-H-like).
//
// Coordinates are meters in a local Cartesian frame: x east, y north,
// z depth (positive down), with (0,0) at the model's southwest corner —
// the analogue of the UTM projection used for M8.
package cvm

import (
	"fmt"
	"math"
)

// Material is the property triple extracted per mesh point.
type Material struct {
	Vp  float64 // P-wave speed, m/s
	Vs  float64 // S-wave speed, m/s
	Rho float64 // density, kg/m^3
}

// Quality returns anelastic quality factors from the empirical relations
// used for M8 (§VII.B): Qs = 50·Vs with Vs in km/s, Qp = 2·Qs.
func (m Material) Quality() (qp, qs float64) {
	qs = 50 * m.Vs / 1000
	qp = 2 * qs
	return qp, qs
}

// Model is a queryable 3D velocity model.
type Querier interface {
	// Query returns material properties at (x, y, depth) in meters.
	Query(x, y, z float64) Material
}

// Basin is an ellipsoidal low-velocity sedimentary body whose velocity
// reduction tapers from full strength at the surface center to zero at the
// ellipsoid boundary.
type Basin struct {
	Name     string
	CX, CY   float64 // center, m
	RX, RY   float64 // horizontal semi-axes, m
	Depth    float64 // maximum depth extent, m
	SurfVs   float64 // Vs at the basin center surface, m/s
	SurfVpVs float64 // Vp/Vs ratio inside the basin
	SurfRho  float64 // density at center surface, kg/m^3
}

// Model is the rule-based (CVM4-like) synthetic model.
type Model struct {
	// Extent of the model region, m. Queries are clamped inside.
	LX, LY, LZ float64
	// Background crust parameters.
	SurfaceVs float64 // background Vs at the free surface, m/s
	GradVs    float64 // Vs gradient scale: Vs(z) = SurfaceVs + GradVs*sqrt(z)
	MaxVs     float64 // Vs cap at depth, m/s
	VpVs      float64 // background Vp/Vs ratio
	MinVs     float64 // floor applied after basins (400 m/s for M8)
	FixedRho  float64 // if > 0, overrides the Nafe–Drake density everywhere
	Basins    []Basin
}

// SoCal returns a southern-California-like model spanning lx×ly×lz meters,
// with analogues of the Los Angeles, San Bernardino, Ventura and Coachella
// basins placed at the fractional positions they occupy in the 810×405 km
// M8 domain (Fig. 20). minVs is the Vs floor (400 m/s for M8, larger for
// cheaper runs).
func SoCal(lx, ly, lz, minVs float64) *Model {
	frac := func(fx, fy float64) (float64, float64) { return fx * lx, fy * ly }
	lax, lay := frac(0.52, 0.40)
	sbx, sby := frac(0.62, 0.52)
	vnx, vny := frac(0.40, 0.47)
	cox, coy := frac(0.78, 0.33)
	return &Model{
		LX: lx, LY: ly, LZ: lz,
		SurfaceVs: 1700,
		GradVs:    38, // m/s per sqrt(m): ~2.9 km/s at 1 km, capped below
		MaxVs:     4500,
		VpVs:      math.Sqrt(3),
		MinVs:     minVs,
		Basins: []Basin{
			{Name: "LA", CX: lax, CY: lay, RX: 0.09 * lx, RY: 0.07 * ly, Depth: 8000, SurfVs: 450, SurfVpVs: 2.0, SurfRho: 1900},
			{Name: "SanBernardino", CX: sbx, CY: sby, RX: 0.045 * lx, RY: 0.05 * ly, Depth: 2000, SurfVs: 500, SurfVpVs: 2.0, SurfRho: 1950},
			{Name: "Ventura", CX: vnx, CY: vny, RX: 0.06 * lx, RY: 0.045 * ly, Depth: 6000, SurfVs: 480, SurfVpVs: 2.0, SurfRho: 1900},
			{Name: "Coachella", CX: cox, CY: coy, RX: 0.05 * lx, RY: 0.04 * ly, Depth: 4000, SurfVs: 520, SurfVpVs: 2.0, SurfRho: 1950},
		},
	}
}

// Homogeneous returns a model with uniform properties, for analytic tests.
func Homogeneous(m Material) *Model {
	return &Model{
		LX: math.Inf(1), LY: math.Inf(1), LZ: math.Inf(1),
		SurfaceVs: m.Vs, GradVs: 0, MaxVs: m.Vs,
		VpVs:     m.Vp / m.Vs,
		MinVs:    0,
		FixedRho: m.Rho,
	}
}

// clamp limits v to [0, max]; infinite extents pass through.
func clamp(v, max float64) float64 {
	if v < 0 {
		return 0
	}
	if !math.IsInf(max, 1) && v > max {
		return max
	}
	return v
}

// Query implements Querier.
func (m *Model) Query(x, y, z float64) Material {
	x = clamp(x, m.LX)
	y = clamp(y, m.LY)
	z = clamp(z, m.LZ)

	vs := m.SurfaceVs + m.GradVs*math.Sqrt(z)
	if vs > m.MaxVs {
		vs = m.MaxVs
	}
	vp := vs * m.VpVs
	rho := nafeDrake(vp)

	// Basin override: take the strongest (lowest-Vs) basin influence.
	for i := range m.Basins {
		b := &m.Basins[i]
		if bvs, bvp, brho, in := b.sample(x, y, z, vs); in && bvs < vs {
			vs, vp, rho = bvs, bvp, brho
		}
	}
	if vs < m.MinVs {
		ratio := m.MinVs / vs
		vs = m.MinVs
		vp *= ratio
	}
	if m.FixedRho > 0 {
		rho = m.FixedRho
	}
	return Material{Vp: vp, Vs: vs, Rho: rho}
}

// sample evaluates the basin's material at (x,y,z). The basin velocity
// grades from SurfVs at the center surface toward the background velocity
// bg at the ellipsoid boundary.
func (b *Basin) sample(x, y, z, bg float64) (vs, vp, rho float64, in bool) {
	dx := (x - b.CX) / b.RX
	dy := (y - b.CY) / b.RY
	dz := z / b.Depth
	r2 := dx*dx + dy*dy + dz*dz
	if r2 >= 1 {
		return 0, 0, 0, false
	}
	// Smooth taper: w=1 at center-surface, 0 at boundary.
	w := (1 - r2) * (1 - r2)
	vs = b.SurfVs*w + bg*(1-w)
	vp = vs * (b.SurfVpVs*w + math.Sqrt(3)*(1-w))
	rho = b.SurfRho*w + nafeDrake(vp)*(1-w)
	return vs, vp, rho, true
}

// nafeDrake is the Nafe–Drake curve relating density to Vp (Brocher 2005
// regression), the standard rule CVM4 applies. vp in m/s, rho in kg/m^3.
func nafeDrake(vp float64) float64 {
	v := vp / 1000 // km/s
	rho := 1.6612*v - 0.4721*v*v + 0.0671*v*v*v - 0.0043*v*v*v*v + 0.000106*v*v*v*v*v
	if rho < 1.0 {
		rho = 1.0
	}
	return rho * 1000
}

// Layered is the CVM-H-like backend: a static table of depth-indexed
// material layers with piecewise-linear interpolation, available at a
// configurable vertical resolution (the real CVM-H ships three).
type Layered struct {
	// Depths are layer-top depths in meters, ascending from 0.
	Depths []float64
	Props  []Material
}

// NewLayered validates the table.
func NewLayered(depths []float64, props []Material) (*Layered, error) {
	if len(depths) == 0 || len(depths) != len(props) {
		return nil, fmt.Errorf("cvm: need equal non-empty depths/props, got %d/%d", len(depths), len(props))
	}
	if depths[0] != 0 {
		return nil, fmt.Errorf("cvm: first layer must start at depth 0, got %g", depths[0])
	}
	for i := 1; i < len(depths); i++ {
		if depths[i] <= depths[i-1] {
			return nil, fmt.Errorf("cvm: depths not ascending at %d", i)
		}
	}
	return &Layered{Depths: depths, Props: props}, nil
}

// HardRock returns a generic four-layer hard-rock profile.
func HardRock() *Layered {
	l, err := NewLayered(
		[]float64{0, 1000, 5000, 16000},
		[]Material{
			{Vp: 3200, Vs: 1800, Rho: 2300},
			{Vp: 4800, Vs: 2800, Rho: 2550},
			{Vp: 6000, Vs: 3460, Rho: 2700},
			{Vp: 6800, Vs: 3900, Rho: 2900},
		})
	if err != nil {
		panic(err)
	}
	return l
}

// Query implements Querier with linear interpolation between layer tops;
// properties are constant laterally.
func (l *Layered) Query(_, _ float64, z float64) Material {
	if z <= l.Depths[0] {
		return l.Props[0]
	}
	last := len(l.Depths) - 1
	if z >= l.Depths[last] {
		return l.Props[last]
	}
	i := 0
	for i < last && l.Depths[i+1] <= z {
		i++
	}
	t := (z - l.Depths[i]) / (l.Depths[i+1] - l.Depths[i])
	a, b := l.Props[i], l.Props[i+1]
	return Material{
		Vp:  a.Vp + t*(b.Vp-a.Vp),
		Vs:  a.Vs + t*(b.Vs-a.Vs),
		Rho: a.Rho + t*(b.Rho-a.Rho),
	}
}
